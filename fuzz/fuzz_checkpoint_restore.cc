// Fuzzes checkpoint::Restore (storage/checkpoint.h) from arbitrary bytes
// against a real DeltaMainStore. Asserts the restore contract:
//   * a rejected checkpoint leaves the store exactly as it was — empty
//     (all-or-nothing; no partially populated store survives an error);
//   * an accepted checkpoint never exceeds the store's capacity;
//   * no input crashes, aborts a DCHECK, or triggers a giant allocation
//     (a hostile count claim fails before any buffer is sized — ASan's
//     allocator would abort the run on a multi-GiB request).

#include <cstdint>
#include <memory>

#include "aim/common/binary_io.h"
#include "aim/schema/schema.h"
#include "aim/storage/checkpoint.h"
#include "aim/storage/delta_main.h"
#include "aim/workload/benchmark_schema.h"
#include "fuzz_util.h"

using aim::BinaryReader;
using aim::DeltaMainStore;
using aim::Schema;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  // The schema is fixed (the compact benchmark schema every unit test
  // uses); the store is rebuilt per input because Restore requires an
  // empty target. Small capacity keeps per-input cost low and makes the
  // capacity rejection path reachable.
  static const std::unique_ptr<Schema> schema = aim::MakeCompactSchema();
  DeltaMainStore::Options options;
  options.max_records = 1024;
  DeltaMainStore store(schema.get(), options);

  BinaryReader in(data, size);
  const aim::Status st = aim::checkpoint::Restore(&in, &store);
  if (!st.ok()) {
    AIM_FUZZ_REQUIRE(store.main_records() == 0);
    AIM_FUZZ_REQUIRE(store.delta_size() == 0);
  } else {
    AIM_FUZZ_REQUIRE(store.main_records() <= store.main_capacity());
  }
  return 0;
}
