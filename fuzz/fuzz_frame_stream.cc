// Stateful fuzz of the server-side receive path: the exact FrameAssembler
// that TcpServer::ServeConnection feeds (net/frame_assembler.h), driven
// with arbitrary bytes in arbitrary split sizes, then every reassembled
// payload pushed through the payload decoder its frame type selects — the
// full set of parses a byte on the wire can reach.
//
// Asserted invariants:
//   * buffered bytes never exceed one incomplete frame (bounded
//     allocation: header + kMaxFramePayload) plus the push that completed
//     it;
//   * every delivered payload is exactly header.payload_size bytes;
//   * a poisoned assembler stays poisoned, holds no memory, and delivers
//     nothing;
//   * no payload decoder crashes, whatever the bytes.

#include <cstdint>
#include <vector>

#include "aim/common/binary_io.h"
#include "aim/esp/event.h"
#include "aim/net/frame.h"
#include "aim/net/frame_assembler.h"
#include "aim/net/message.h"
#include "aim/rta/partial_result.h"
#include "aim/rta/query.h"
#include "fuzz_util.h"

using aim::BinaryReader;
using aim::net::FrameAssembler;
using aim::net::FrameHeader;
using aim::net::FrameType;
using aim::net::kFrameHeaderSize;
using aim::net::kMaxFramePayload;

namespace {

void DecodePayload(const FrameHeader& header,
                   const std::vector<std::uint8_t>& payload) {
  BinaryReader in(payload);
  switch (header.type) {
    case FrameType::kHello: {
      std::uint32_t version = 0;
      (void)aim::net::DecodeHello(&in, &version);
      break;
    }
    case FrameType::kHelloReply: {
      aim::NodeChannel::NodeInfo info;
      (void)aim::net::DecodeHelloReply(&in, &info);
      break;
    }
    case FrameType::kEvent: {
      if (payload.size() == aim::kEventWireSize) {
        (void)aim::Event::Deserialize(&in);
      }
      break;
    }
    case FrameType::kEventReply: {
      aim::Status status;
      std::vector<std::uint32_t> fired;
      (void)aim::net::DecodeEventReply(&in, &status, &fired);
      break;
    }
    case FrameType::kQuery: {
      (void)aim::Query::Deserialize(&in);
      break;
    }
    case FrameType::kQueryReply: {
      if (!payload.empty()) {
        (void)aim::PartialResult::Deserialize(&in);
      }
      break;
    }
    case FrameType::kRecordRequest: {
      aim::RecordRequest request;
      (void)aim::net::DecodeRecordRequest(&in, &request);
      break;
    }
    case FrameType::kRecordReply: {
      aim::Status status;
      std::vector<std::uint8_t> row;
      aim::Version version = 0;
      (void)aim::net::DecodeRecordReply(&in, &status, &row, &version);
      break;
    }
    case FrameType::kEventBatch: {
      std::vector<std::vector<std::uint8_t>> events;
      const aim::Status st = aim::net::DecodeEventBatch(&in, &events);
      if (st.ok()) {
        for (const std::vector<std::uint8_t>& e : events) {
          AIM_FUZZ_REQUIRE(e.size() == aim::net::kEventBatchEntrySize);
        }
      }
      break;
    }
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) return 0;
  // The last byte seeds the split schedule (so the mutator can explore
  // reassembly boundaries); the rest is the stream.
  const std::uint32_t seed = data[size - 1];
  const std::size_t stream_size = size - 1;

  FrameAssembler assembler;
  FrameHeader header;
  std::vector<std::uint8_t> payload;

  std::size_t pos = 0;
  std::uint32_t step = 0;
  while (pos < stream_size) {
    // Chunks of 1..128 bytes in a seed-dependent pattern: byte-at-a-time
    // trickles, header-straddling splits, and big gulps all occur.
    std::size_t chunk = ((seed + step * 2654435761u) % 128) + 1;
    ++step;
    if (chunk > stream_size - pos) chunk = stream_size - pos;
    assembler.Push(data + pos, chunk);
    pos += chunk;

    while (assembler.Next(&header, &payload)) {
      AIM_FUZZ_REQUIRE(payload.size() == header.payload_size);
      AIM_FUZZ_REQUIRE(payload.size() <= kMaxFramePayload);
      DecodePayload(header, payload);
    }
    if (!assembler.ok()) {
      // Poisoned: sticky, empty, and silent from here on.
      AIM_FUZZ_REQUIRE(assembler.buffered() == 0);
      assembler.Push(data, stream_size < 16 ? stream_size : 16);
      AIM_FUZZ_REQUIRE(!assembler.Next(&header, &payload));
      AIM_FUZZ_REQUIRE(assembler.buffered() == 0);
      return 0;
    }
    // Bounded buffering: drained after every push, the residue is at most
    // one incomplete frame plus the chunk that carried its tail.
    AIM_FUZZ_REQUIRE(assembler.buffered() <
                     kFrameHeaderSize + kMaxFramePayload + 128);
  }
  return 0;
}
