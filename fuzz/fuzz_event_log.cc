// Fuzzes the event-log read path (storage/event_log.h) from arbitrary
// bytes: EventLog::ScanImage — the pure in-memory scan Open() and Replay()
// build on, i.e. exactly what recovery runs against whatever a crash left
// on disk — and DecodeLogPayload over every payload the scan delivers.
//
// Asserted invariants:
//   * the scan never reads outside the image: every delivered payload lies
//     within the input bytes and its LSN is consistent with its position;
//   * delivered records form a strictly advancing prefix (LSNs increase by
//     exactly the record's framed size; end_lsn is the last record's LSN);
//   * a file shorter than its header, or with a foreign magic, delivers
//     nothing and reports the tear;
//   * DecodeLogPayload either rejects a payload or returns a view whose
//     spans alias the payload bytes (count * size == span length, row
//     inside the payload) — no crash, whatever the bytes.

#include <cstdint>
#include <cstring>
#include <span>

#include "aim/storage/event_log.h"
#include "fuzz_util.h"

using aim::DecodeLogPayload;
using aim::EventLog;
using aim::LogPayloadView;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::span<const std::uint8_t> image(data, size);

  EventLog::Lsn prev_lsn = EventLog::kHeaderSize;
  std::uint64_t delivered = 0;
  const EventLog::ReplayStats stats = EventLog::ScanImage(
      image, 0, [&](EventLog::Lsn lsn, std::span<const std::uint8_t> p) {
        ++delivered;
        // The payload aliases the image, inside bounds.
        AIM_FUZZ_REQUIRE(p.data() >= data);
        AIM_FUZZ_REQUIRE(p.data() + p.size() <= data + size);
        // LSN is the offset after the record: header (8 bytes) + payload.
        AIM_FUZZ_REQUIRE(lsn == prev_lsn + 8 + p.size());
        AIM_FUZZ_REQUIRE(p.data() == data + (lsn - p.size()));
        prev_lsn = lsn;

        LogPayloadView view;
        if (DecodeLogPayload(p, &view).ok()) {
          if (view.kind == LogPayloadView::Kind::kEventBatch) {
            AIM_FUZZ_REQUIRE(view.events.size() ==
                             static_cast<std::uint64_t>(view.event_count) *
                                 view.event_size);
            AIM_FUZZ_REQUIRE(view.events.empty() ||
                             (view.events.data() >= p.data() &&
                              view.events.data() + view.events.size() <=
                                  p.data() + p.size()));
          } else {
            AIM_FUZZ_REQUIRE(view.kind == LogPayloadView::Kind::kRecordPut ||
                             view.kind ==
                                 LogPayloadView::Kind::kRecordInsert);
            AIM_FUZZ_REQUIRE(view.row.empty() ||
                             (view.row.data() >= p.data() &&
                              view.row.data() + view.row.size() <=
                                  p.data() + p.size()));
          }
        }
      });

  AIM_FUZZ_REQUIRE(stats.records == delivered);
  AIM_FUZZ_REQUIRE(delivered == 0 || stats.end == prev_lsn);
  AIM_FUZZ_REQUIRE(stats.end <= size);
  if (size < EventLog::kHeaderSize ||
      std::memcmp(data, "AIMLOG1\0", EventLog::kHeaderSize) != 0) {
    // Short or foreign image: nothing may be delivered.
    AIM_FUZZ_REQUIRE(delivered == 0);
    AIM_FUZZ_REQUIRE(size == 0 || stats.torn);
  }
  return 0;
}
