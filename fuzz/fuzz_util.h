#ifndef AIM_FUZZ_FUZZ_UTIL_H_
#define AIM_FUZZ_FUZZ_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

// Shared helpers for the libFuzzer harnesses (and their corpus-replay
// drivers — the same LLVMFuzzerTestOneInput is linked into both, see
// fuzz/CMakeLists.txt).

// Harness invariant check. abort()-based, NOT assert(): the replay tier
// also runs in Release configs where NDEBUG would strip assert and turn a
// violated invariant into a silent pass.
#define AIM_FUZZ_REQUIRE(cond)                                          \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::fprintf(stderr, "AIM_FUZZ_REQUIRE failed: %s at %s:%d\n",    \
                   #cond, __FILE__, __LINE__);                          \
      std::abort();                                                     \
    }                                                                   \
  } while (0)

namespace aim {
namespace fuzz {

/// Structure-aware input splitter: consumes typed values off the front of
/// the fuzzer's byte string so "build a valid object, then mutate it"
/// harnesses stay deterministic in the input bytes. Reads past the end
/// return zeroes (never UB) — libFuzzer shrinks inputs aggressively and a
/// harness must accept any length.
class FuzzInput {
 public:
  FuzzInput(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::size_t remaining() const { return size_ - pos_; }
  bool empty() const { return pos_ == size_; }

  template <typename T>
  T Get() {
    T v{};
    const std::size_t n = remaining() < sizeof(T) ? remaining() : sizeof(T);
    std::memcpy(&v, data_ + pos_, n);
    pos_ += n;
    return v;
  }

  std::uint8_t GetByte() { return Get<std::uint8_t>(); }

  /// Up to `max` of the remaining bytes as a vector.
  std::vector<std::uint8_t> GetBytes(std::size_t max) {
    const std::size_t n = remaining() < max ? remaining() : max;
    std::vector<std::uint8_t> out(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
    return out;
  }

  /// Everything left, without copying.
  const std::uint8_t* rest() const { return data_ + pos_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace fuzz
}  // namespace aim

#endif  // AIM_FUZZ_FUZZ_UTIL_H_
