// Round-trip fuzz of the query and partial-result wire codecs (rta/query.h,
// rta/partial_result.h) — the two domain objects that cross the network
// whole (RTA front ends ship queries to every storage node and merge the
// partials that come back).
//
// Three modes, selected by the first input byte:
//   0: structure-aware build-then-mutate — the input bytes populate a
//      *valid* Query (every enum in range), which must round-trip to
//      identical bytes; then input-chosen byte flips are applied to the
//      wire form, whose decode may fail but must not crash, and must
//      re-encode stably when it succeeds.
//   1: Query::Deserialize from arbitrary bytes, with the stability check
//      encode(decode(b)) == encode(decode(encode(decode(b)))).
//   2: the same for PartialResult::Deserialize.

#include <cstdint>
#include <vector>

#include "aim/common/binary_io.h"
#include "aim/rta/partial_result.h"
#include "aim/rta/query.h"
#include "fuzz_util.h"

using aim::AggOp;
using aim::BinaryReader;
using aim::BinaryWriter;
using aim::CmpOp;
using aim::DimFilter;
using aim::GroupBy;
using aim::PartialResult;
using aim::Query;
using aim::ScanFilter;
using aim::SelectItem;
using aim::TopKTarget;
using aim::Value;
using aim::ValueType;
using aim::fuzz::FuzzInput;

namespace {

Value BuildValue(FuzzInput* in) {
  switch (static_cast<ValueType>(in->GetByte() % aim::kNumValueTypes)) {
    case ValueType::kInt32:
      return Value::Int32(in->Get<std::int32_t>());
    case ValueType::kUInt32:
      return Value::UInt32(in->Get<std::uint32_t>());
    case ValueType::kInt64:
      return Value::Int64(in->Get<std::int64_t>());
    case ValueType::kUInt64:
      return Value::UInt64(in->Get<std::uint64_t>());
    case ValueType::kFloat:
      return Value::Float(in->Get<float>());
    case ValueType::kDouble:
      return Value::Double(in->Get<double>());
  }
  return Value();
}

Query BuildQuery(FuzzInput* in) {
  Query q;
  q.id = in->Get<std::uint32_t>();
  q.kind = static_cast<Query::Kind>(in->GetByte() % 3);
  const std::size_t nsel = (in->GetByte() % 3) + 1;
  for (std::size_t i = 0; i < nsel; ++i) {
    SelectItem s;
    s.op = static_cast<AggOp>(in->GetByte() % 5);
    s.attr = in->Get<std::uint16_t>();
    s.is_sum_ratio = (in->GetByte() % 2) != 0;
    s.den_attr = in->Get<std::uint16_t>();
    q.select.push_back(s);
  }
  const std::size_t nwhere = in->GetByte() % 3;
  for (std::size_t i = 0; i < nwhere; ++i) {
    ScanFilter f;
    f.attr = in->Get<std::uint16_t>();
    f.op = static_cast<CmpOp>(in->GetByte() % 6);
    f.constant = BuildValue(in);
    q.where.push_back(f);
  }
  const std::size_t ndim = in->GetByte() % 2;
  for (std::size_t i = 0; i < ndim; ++i) {
    DimFilter f;
    f.fk_attr = in->Get<std::uint16_t>();
    f.dim_table = in->Get<std::uint16_t>();
    f.dim_column = in->Get<std::uint16_t>();
    f.op = static_cast<CmpOp>(in->GetByte() % 6);
    f.constant = in->Get<std::uint32_t>();
    const std::vector<std::uint8_t> s = in->GetBytes(in->GetByte() % 16);
    f.str_constant.assign(s.begin(), s.end());
    q.dim_where.push_back(f);
  }
  q.group_by.kind = static_cast<GroupBy::Kind>(in->GetByte() % 3);
  q.group_by.attr = in->Get<std::uint16_t>();
  q.group_by.fk_attr = in->Get<std::uint16_t>();
  q.group_by.dim_table = in->Get<std::uint16_t>();
  q.group_by.dim_column = in->Get<std::uint16_t>();
  q.limit = in->Get<std::uint32_t>();
  const std::size_t ntopk = in->GetByte() % 3;
  for (std::size_t i = 0; i < ntopk; ++i) {
    TopKTarget t;
    t.attr = in->Get<std::uint16_t>();
    t.den_attr = in->Get<std::uint16_t>();
    t.ascending = (in->GetByte() % 2) != 0;
    q.topk.push_back(t);
  }
  q.k = in->Get<std::uint32_t>();
  q.entity_attr = in->Get<std::uint16_t>();
  return q;
}

/// decode(bytes) must be stable: when it succeeds, its re-encoding decodes
/// to the same bytes again (the canonical form is a fixed point).
template <typename T>
void CheckDecodeStability(const std::uint8_t* data, std::size_t size) {
  BinaryReader r(data, size);
  aim::StatusOr<T> first = T::Deserialize(&r);
  if (!first.ok()) return;
  BinaryWriter w1;
  first.value().Serialize(&w1);
  BinaryReader r2(w1.buffer());
  aim::StatusOr<T> second = T::Deserialize(&r2);
  AIM_FUZZ_REQUIRE(second.ok());
  BinaryWriter w2;
  second.value().Serialize(&w2);
  AIM_FUZZ_REQUIRE(w1.buffer() == w2.buffer());
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) return 0;
  FuzzInput in(data + 1, size - 1);
  switch (data[0] % 3) {
    case 0: {
      const Query q = BuildQuery(&in);
      BinaryWriter w;
      q.Serialize(&w);
      BinaryReader r(w.buffer());
      aim::StatusOr<Query> back = Query::Deserialize(&r);
      AIM_FUZZ_REQUIRE(back.ok());
      BinaryWriter w2;
      back.value().Serialize(&w2);
      AIM_FUZZ_REQUIRE(w.buffer() == w2.buffer());

      // Mutate the valid wire form and decode again.
      std::vector<std::uint8_t> wire = w.TakeBuffer();
      const std::size_t flips = (in.GetByte() % 8) + 1;
      for (std::size_t i = 0; i < flips && !wire.empty(); ++i) {
        wire[in.Get<std::uint32_t>() % wire.size()] ^= in.GetByte();
      }
      CheckDecodeStability<Query>(wire.data(), wire.size());
      break;
    }
    case 1:
      CheckDecodeStability<Query>(in.rest(), in.remaining());
      break;
    case 2:
      CheckDecodeStability<PartialResult>(in.rest(), in.remaining());
      break;
  }
  return 0;
}
