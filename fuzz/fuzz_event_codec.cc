// Round-trip fuzz of the event wire codec (esp/event.h) and the
// EVENT_BATCH payload codec (net/frame.h). Structure-aware
// build-then-mutate: the input bytes first *populate* valid events (so
// every field pattern round-trips, not just the ones a blind mutator
// stumbles into), then select mutations applied to the serialized form
// before it is decoded again.
//
// Asserts decode(encode(x)) == x via byte equality of the re-encoding —
// bytes, not field comparison, so NaN cost/data_mb patterns (never equal
// to themselves as floats) are still pinned exactly.

#include <cstdint>
#include <cstring>
#include <vector>

#include "aim/common/binary_io.h"
#include "aim/esp/event.h"
#include "aim/net/frame.h"
#include "aim/net/message.h"
#include "fuzz_util.h"

using aim::BinaryReader;
using aim::BinaryWriter;
using aim::Event;
using aim::EventMessage;
using aim::kEventWireSize;
using aim::fuzz::FuzzInput;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  FuzzInput in(data, size);

  // Build 1..4 events from the input bytes and round-trip each.
  const std::size_t count = (in.GetByte() % 4) + 1;
  std::vector<EventMessage> batch;
  for (std::size_t i = 0; i < count; ++i) {
    Event e;
    e.caller = in.Get<std::uint64_t>();
    e.callee = in.Get<std::uint64_t>();
    e.timestamp = in.Get<std::int64_t>();
    e.duration = in.Get<std::uint32_t>();
    e.cost = in.Get<float>();
    e.data_mb = in.Get<float>();
    e.flags = in.Get<std::uint32_t>();
    e.sequence = in.Get<std::uint64_t>();

    BinaryWriter w;
    e.Serialize(&w);
    AIM_FUZZ_REQUIRE(w.size() == kEventWireSize);

    BinaryReader r(w.buffer());
    const Event back = Event::Deserialize(&r);
    AIM_FUZZ_REQUIRE(r.ok() && r.AtEnd());
    BinaryWriter w2;
    back.Serialize(&w2);
    AIM_FUZZ_REQUIRE(w2.buffer() == w.buffer());

    EventMessage msg;
    msg.bytes = w.TakeBuffer();
    batch.push_back(std::move(msg));
  }

  // Batch round trip.
  BinaryWriter bw;
  aim::net::EncodeEventBatch(batch, &bw);
  std::vector<std::uint8_t> wire = bw.TakeBuffer();
  {
    BinaryReader br(wire);
    std::vector<std::vector<std::uint8_t>> events;
    AIM_FUZZ_REQUIRE(aim::net::DecodeEventBatch(&br, &events).ok());
    AIM_FUZZ_REQUIRE(events.size() == batch.size());
    for (std::size_t i = 0; i < events.size(); ++i) {
      AIM_FUZZ_REQUIRE(events[i] == batch[i].bytes);
    }
  }

  // Mutate: input-chosen byte flips (count field, entry bytes, truncation)
  // — the decoder must reject or accept without crashing, and an accepted
  // batch must still consist of exact 64-byte entries.
  const std::size_t flips = in.GetByte() % 8;
  for (std::size_t i = 0; i < flips && !wire.empty(); ++i) {
    wire[in.Get<std::uint32_t>() % wire.size()] ^= in.GetByte();
  }
  std::size_t cut = wire.size();
  if (in.GetByte() % 2 == 1) cut = in.Get<std::uint32_t>() % (wire.size() + 1);
  BinaryReader br(wire.data(), cut);
  std::vector<std::vector<std::uint8_t>> events;
  if (aim::net::DecodeEventBatch(&br, &events).ok()) {
    for (const std::vector<std::uint8_t>& e : events) {
      AIM_FUZZ_REQUIRE(e.size() == aim::net::kEventBatchEntrySize);
    }
  }
  return 0;
}
