// Deterministic seed-corpus generator: writes the committed seeds under
// fuzz/corpus/<harness>/. The corpus is checked in (fuzzing starts from
// real protocol bytes instead of rediscovering the magic numbers), so this
// tool only needs re-running when a wire format changes:
//
//   build/fuzz/gen_seeds fuzz/corpus
//
// Regression entries for fixed bugs are written alongside the plain seeds;
// fuzz/corpus/README.md names each one and the fix it pins.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "aim/common/binary_io.h"
#include "aim/esp/event.h"
#include "aim/net/frame.h"
#include "aim/net/message.h"
#include "aim/rta/partial_result.h"
#include "aim/rta/query.h"
#include "aim/schema/schema.h"
#include "aim/storage/checkpoint.h"
#include "aim/storage/delta_main.h"
#include "aim/storage/event_log.h"
#include "aim/workload/benchmark_schema.h"

namespace {

using aim::BinaryWriter;
using aim::Event;

bool WriteSeed(const std::string& dir, const std::string& name,
               const std::vector<std::uint8_t>& bytes) {
  const std::string path = dir + "/" + name;
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s (directory missing?)\n",
                 path.c_str());
    return false;
  }
  const bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) ==
                  bytes.size();
  std::fclose(f);
  if (ok) std::printf("wrote %s (%zu bytes)\n", path.c_str(), bytes.size());
  return ok;
}

std::vector<std::uint8_t> Str(const std::string& s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

std::vector<std::uint8_t> EventBytes(std::uint64_t caller) {
  Event e;
  e.caller = caller;
  e.callee = caller + 1;
  e.timestamp = 1700000000000;
  e.duration = 120;
  e.cost = 1.5f;
  e.data_mb = 0.0f;
  e.flags = Event::kLongDistance;
  e.sequence = caller;
  BinaryWriter w;
  e.Serialize(&w);
  return w.TakeBuffer();
}

std::vector<std::uint8_t> QueryBytes() {
  aim::Query q;
  q.id = 7;
  q.kind = aim::Query::Kind::kGroupBy;
  q.select.push_back(aim::SelectItem::Agg(aim::AggOp::kSum, 3));
  aim::ScanFilter f;
  f.attr = 4;
  f.op = aim::CmpOp::kGt;
  f.constant = aim::Value::Int32(10);
  q.where.push_back(f);
  q.group_by.kind = aim::GroupBy::Kind::kMatrixAttr;
  q.group_by.attr = 5;
  q.limit = 16;
  BinaryWriter w;
  q.Serialize(&w);
  return w.TakeBuffer();
}

std::vector<std::uint8_t> Frame(aim::net::FrameType type, std::uint8_t flags,
                                std::uint64_t request_id,
                                const std::vector<std::uint8_t>& payload) {
  return aim::net::BuildFrame(type, flags, request_id, payload.data(),
                              payload.size());
}

void Append(std::vector<std::uint8_t>* out,
            const std::vector<std::uint8_t>& more) {
  out->insert(out->end(), more.begin(), more.end());
}

bool GenFrameHeader(const std::string& dir) {
  bool ok = true;
  std::vector<std::uint8_t> valid =
      Frame(aim::net::FrameType::kHello, 0, 1, {});
  valid.resize(aim::net::kFrameHeaderSize);
  ok &= WriteSeed(dir, "hello_header", valid);

  std::vector<std::uint8_t> bad_magic = valid;
  bad_magic[0] ^= 0xFF;
  ok &= WriteSeed(dir, "bad_magic", bad_magic);

  std::vector<std::uint8_t> bad_type = valid;
  bad_type[4] = 0;
  ok &= WriteSeed(dir, "bad_type", bad_type);

  // Regression: payload_size over kMaxFramePayload must be rejected at the
  // header — before any payload buffer could be sized off it.
  std::vector<std::uint8_t> oversize = valid;
  const std::uint32_t huge = aim::net::kMaxFramePayload + 1;
  std::memcpy(oversize.data() + 16, &huge, sizeof(huge));
  ok &= WriteSeed(dir, "oversize_payload_claim", oversize);
  return ok;
}

bool GenFrameStream(const std::string& dir) {
  bool ok = true;
  // The harness consumes the LAST byte as its split-schedule seed; every
  // stream seed ends with one seed byte.
  BinaryWriter hello;
  aim::net::EncodeHello(&hello);

  std::vector<std::uint8_t> stream =
      Frame(aim::net::FrameType::kHello, 0, 1, hello.TakeBuffer());
  Append(&stream, Frame(aim::net::FrameType::kEvent, 0, 2, EventBytes(42)));
  std::vector<aim::EventMessage> batch(2);
  batch[0].bytes = EventBytes(1);
  batch[1].bytes = EventBytes(2);
  BinaryWriter bw;
  aim::net::EncodeEventBatch(batch, &bw);
  Append(&stream,
         Frame(aim::net::FrameType::kEventBatch, 0, 3, bw.TakeBuffer()));
  Append(&stream, Frame(aim::net::FrameType::kQuery, 0, 4, QueryBytes()));
  stream.push_back(0x05);  // split seed
  ok &= WriteSeed(dir, "hello_event_batch_query", stream);

  std::vector<std::uint8_t> truncated =
      Frame(aim::net::FrameType::kEvent, 0, 9, EventBytes(7));
  truncated.resize(aim::net::kFrameHeaderSize + 10);
  truncated.push_back(0x01);
  ok &= WriteSeed(dir, "truncated_event", truncated);

  std::vector<std::uint8_t> garbage =
      Frame(aim::net::FrameType::kHello, 0, 1, {});
  Append(&garbage, Str("not a frame at all"));
  garbage.push_back(0x03);
  ok &= WriteSeed(dir, "garbage_after_hello", garbage);

  // Regression: a header announcing kMaxFramePayload+1 poisons the
  // assembler without buffering anything (allocation-bounded reassembly).
  std::vector<std::uint8_t> oversize =
      Frame(aim::net::FrameType::kQuery, 0, 1, {});
  const std::uint32_t huge = aim::net::kMaxFramePayload + 1;
  std::memcpy(oversize.data() + 16, &huge, sizeof(huge));
  oversize.push_back(0x07);
  ok &= WriteSeed(dir, "oversize_payload_claim", oversize);
  return ok;
}

bool GenCheckpoint(const std::string& dir) {
  bool ok = true;
  const std::unique_ptr<aim::Schema> schema = aim::MakeCompactSchema();
  aim::DeltaMainStore::Options options;
  options.max_records = 1024;
  aim::DeltaMainStore store(schema.get(), options);

  // Rows with the entity id stored in attribute 0 (entity_id), as the
  // ForEachVisible serialization pass expects.
  const std::size_t row_size = schema->record_size();
  const std::size_t entity_off = schema->attribute(0).row_offset;
  std::vector<std::uint8_t> row(row_size, 0xAB);
  for (std::uint64_t entity = 10; entity < 13; ++entity) {
    std::memcpy(row.data() + entity_off, &entity, sizeof(entity));
    if (!store.BulkInsert(entity, row.data()).ok()) return false;
  }
  BinaryWriter w;
  if (!aim::checkpoint::Write(store, 0, &w).ok()) return false;
  const std::vector<std::uint8_t> valid = w.TakeBuffer();
  ok &= WriteSeed(dir, "valid_3_records", valid);

  std::vector<std::uint8_t> truncated(valid.begin(), valid.begin() + 30);
  ok &= WriteSeed(dir, "truncated", truncated);

  // Regression: a 100-byte checkpoint claiming 2^32 records must fail
  // before allocating (BinaryReader::GetCountU64 validates the claim
  // against the bytes present).
  BinaryWriter huge;
  huge.PutBytes("AIMCKPT1", 8);
  huge.PutU32(static_cast<std::uint32_t>(row_size));
  huge.PutU64(1ull << 32);
  ok &= WriteSeed(dir, "huge_count_claim", huge.TakeBuffer());

  // Regression: entity id ~0 is the dense-map empty-slot sentinel;
  // restoring it used to abort a DCHECK in debug builds (and corrupt the
  // index in release). Restore now rejects it up front.
  const std::size_t header = 8 + 4 + 8;
  std::vector<std::uint8_t> sentinel = valid;
  std::memset(sentinel.data() + header, 0xFF, 8);
  ok &= WriteSeed(dir, "sentinel_entity_id", sentinel);

  // Regression: duplicate entity ids are rejected in the validation pass,
  // keeping the restore all-or-nothing instead of failing half-inserted.
  std::vector<std::uint8_t> dup = valid;
  std::memcpy(dup.data() + header + 16 + row_size, dup.data() + header, 8);
  ok &= WriteSeed(dir, "duplicate_entity", dup);

  // v2 chained images (the format recovery reads): same record body, the
  // richer header in front. The v1 body starts after magic + record_size.
  auto v2 = [&](std::uint8_t kind, std::uint64_t epoch, std::uint64_t base,
                std::uint64_t log_lsn) {
    BinaryWriter h2;
    h2.PutBytes("AIMCKPT2", 8);
    h2.PutU32(static_cast<std::uint32_t>(row_size));
    h2.PutU8(kind);
    h2.PutU64(epoch);
    h2.PutU64(base);
    h2.PutU64(log_lsn);
    std::vector<std::uint8_t> out = h2.TakeBuffer();
    out.insert(out.end(), valid.begin() + 12, valid.end());
    return out;
  };
  ok &= WriteSeed(dir, "v2_full", v2(0, 1, 0, 42));
  ok &= WriteSeed(dir, "v2_delta", v2(1, 2, 1, 99));
  // Regression: inconsistent chain fields (a full carrying a base epoch, a
  // delta whose base is not older) are structural errors, not data.
  ok &= WriteSeed(dir, "v2_full_with_base", v2(0, 1, 1, 42));
  ok &= WriteSeed(dir, "v2_delta_base_not_older", v2(1, 2, 2, 99));
  return ok;
}

bool GenEventLog(const std::string& dir) {
  bool ok = true;
  const char magic[8] = {'A', 'I', 'M', 'L', 'O', 'G', '1', '\0'};
  auto fresh = [&] {
    return std::vector<std::uint8_t>(magic, magic + 8);
  };

  // A log exactly as the node writes it: an event-batch record (one
  // ProcessBatch run) followed by a record-op record.
  std::vector<std::uint8_t> image = fresh();
  BinaryWriter batch;
  aim::EncodeEventBatchHeader(2, 64, &batch);
  for (std::uint64_t i = 0; i < 2; ++i) {
    const std::vector<std::uint8_t> ev = EventBytes(i + 1);
    batch.PutBytes(ev.data(), ev.size());
  }
  aim::EventLog::EncodeRecord(batch.buffer(), &image);
  BinaryWriter put;
  std::vector<std::uint8_t> row(32, 0xCD);
  aim::EncodeRecordOpPayload(aim::LogPayloadView::Kind::kRecordPut, 17, 3,
                             row, &put);
  aim::EventLog::EncodeRecord(put.buffer(), &image);
  ok &= WriteSeed(dir, "batch_then_record_op", image);

  // Regression: a torn tail — a record header whose payload never hit the
  // disk (the exact artifact of a crash between the two appends) — ends
  // the valid prefix instead of reading past the file.
  std::vector<std::uint8_t> torn = image;
  const std::uint32_t claim = 64;
  const std::uint32_t bogus_crc = 0xDEADBEEF;
  torn.insert(torn.end(), reinterpret_cast<const std::uint8_t*>(&claim),
              reinterpret_cast<const std::uint8_t*>(&claim) + 4);
  torn.insert(torn.end(), reinterpret_cast<const std::uint8_t*>(&bogus_crc),
              reinterpret_cast<const std::uint8_t*>(&bogus_crc) + 4);
  ok &= WriteSeed(dir, "torn_tail_header_only", torn);

  // Regression: a flipped payload byte must fail the record's CRC, not
  // deliver the corrupt record (CRC is seeded over the length field, so
  // corrupt lengths cannot pair with valid-looking windows either).
  std::vector<std::uint8_t> flipped = image;
  flipped[flipped.size() - 5] ^= 0x40;
  ok &= WriteSeed(dir, "flipped_payload_byte", flipped);

  // A foreign file (wrong magic) delivers nothing.
  std::vector<std::uint8_t> foreign = Str("AIMCKPT1 is not a log");
  ok &= WriteSeed(dir, "foreign_magic", foreign);

  // Header only: a freshly created, never-appended log.
  ok &= WriteSeed(dir, "empty_log", fresh());
  return ok;
}

bool GenSql(const std::string& dir) {
  bool ok = true;
  ok &= WriteSeed(dir, "count_star",
                  Str("SELECT COUNT(*) FROM AnalyticsMatrix"));
  // Attribute names from the compact schema the harness parses against.
  const std::unique_ptr<aim::Schema> schema = aim::MakeCompactSchema();
  const std::string a3 = schema->attribute(3).name;
  const std::string a4 = schema->attribute(4).name;
  ok &= WriteSeed(dir, "sum_where_group",
                  Str("SELECT SUM(" + a3 + ") FROM AnalyticsMatrix WHERE " +
                      a4 + " > 10 GROUP BY " + a4 + " LIMIT 5"));
  ok &= WriteSeed(dir, "join_dim",
                  Str("SELECT COUNT(*) FROM AnalyticsMatrix a, RegionInfo r "
                      "WHERE a.zip = r.zip AND r.country = 'C0'"));
  ok &= WriteSeed(dir, "ratio", Str("SELECT SUM(" + a3 + ") / SUM(" + a4 +
                                    ") AS ratio FROM AnalyticsMatrix"));

  // Regression: embedded NUL and non-ASCII bytes reach the tokenizer; the
  // error path must escape them and std::toupper must never see a negative
  // char (UB before the unsigned-char cast fix).
  std::vector<std::uint8_t> nul = Str("SELECT COUNT(*) FROM x");
  nul.push_back(0);
  nul.push_back('y');
  ok &= WriteSeed(dir, "embedded_nul", nul);
  std::vector<std::uint8_t> high = Str("SELECT ");
  for (int b = 0x80; b <= 0xFF; b += 7) {
    high.push_back(static_cast<std::uint8_t>(b));
  }
  ok &= WriteSeed(dir, "non_ascii_bytes", high);
  return ok;
}

bool GenEventCodec(const std::string& dir) {
  bool ok = true;
  // The harness consumes these as field material; give it full events plus
  // mutation bytes.
  std::vector<std::uint8_t> one;
  one.push_back(1);
  Append(&one, EventBytes(99));
  ok &= WriteSeed(dir, "one_event", one);

  std::vector<std::uint8_t> multi;
  multi.push_back(4);
  for (std::uint64_t i = 0; i < 4; ++i) Append(&multi, EventBytes(i));
  Append(&multi, Str("\x07\x01\x02\x03\x04\x05\x06\x07"));
  ok &= WriteSeed(dir, "four_events_mutated", multi);
  return ok;
}

bool GenQueryCodec(const std::string& dir) {
  bool ok = true;
  std::vector<std::uint8_t> build;
  build.push_back(0);  // mode 0: build-then-mutate
  for (int i = 0; i < 64; ++i) build.push_back(static_cast<std::uint8_t>(i));
  ok &= WriteSeed(dir, "build_mutate", build);

  std::vector<std::uint8_t> decode;
  decode.push_back(1);  // mode 1: decode arbitrary query bytes
  Append(&decode, QueryBytes());
  ok &= WriteSeed(dir, "valid_query", decode);

  std::vector<std::uint8_t> partial;
  partial.push_back(2);  // mode 2: decode partial-result bytes
  aim::PartialResult pr;
  pr.query_id = 7;
  aim::PartialResult::Group g;
  g.key = 3;
  g.slots.resize(2);
  g.slots[0].sum = 10.0;
  g.slots[0].count = 4;
  pr.groups.push_back(g);
  BinaryWriter w;
  pr.Serialize(&w);
  Append(&partial, w.buffer());
  ok &= WriteSeed(dir, "valid_partial", partial);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <corpus-root>\n", argv[0]);
    return 2;
  }
  const std::string root = argv[1];
  bool ok = true;
  ok &= GenFrameHeader(root + "/frame_header");
  ok &= GenFrameStream(root + "/frame_stream");
  ok &= GenCheckpoint(root + "/checkpoint_restore");
  ok &= GenEventLog(root + "/event_log");
  ok &= GenSql(root + "/sql_parser");
  ok &= GenEventCodec(root + "/event_codec");
  ok &= GenQueryCodec(root + "/query_codec");
  return ok ? 0 : 1;
}
