// Fuzzes DecodeFrameHeader (net/frame.h): the first 20 bytes every peer
// sends are the most exposed parse in the system. Asserts the decoder's
// documented postconditions — on success every field is in range and the
// header re-encodes to the exact input bytes (no tolerated-then-lost
// garbage); on failure nothing was accepted.

#include <cstdint>
#include <cstring>

#include "aim/common/binary_io.h"
#include "aim/net/frame.h"
#include "fuzz_util.h"

using aim::BinaryWriter;
using aim::net::DecodeFrameHeader;
using aim::net::FrameHeader;
using aim::net::FrameType;
using aim::net::kFrameHeaderSize;
using aim::net::kMaxFramePayload;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size < kFrameHeaderSize) return 0;  // decoder contract: exactly 20 B

  FrameHeader header;
  const aim::Status st = DecodeFrameHeader(data, &header);
  if (!st.ok()) return 0;

  AIM_FUZZ_REQUIRE(header.type >= FrameType::kHello &&
                   header.type <= FrameType::kEventBatch);
  AIM_FUZZ_REQUIRE(header.payload_size <= kMaxFramePayload);

  // Round trip: an accepted header must re-encode byte-identically, except
  // the reserved u16 (bytes 6-7), which the decoder skips and the encoder
  // zeroes.
  BinaryWriter out;
  EncodeFrameHeader(header, &out);
  AIM_FUZZ_REQUIRE(out.size() == kFrameHeaderSize);
  const std::uint8_t* enc = out.buffer().data();
  AIM_FUZZ_REQUIRE(std::memcmp(enc, data, 6) == 0);
  AIM_FUZZ_REQUIRE(std::memcmp(enc + 8, data + 8, kFrameHeaderSize - 8) == 0);
  return 0;
}
