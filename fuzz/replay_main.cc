// Corpus-replay driver: links any fuzz harness's LLVMFuzzerTestOneInput
// into a plain main() so the committed corpus (including minimized crash
// inputs) runs as a ctest regression on every toolchain — including GCC,
// where libFuzzer itself is unavailable. Usage:
//
//   replay_<harness> <file-or-directory>...
//
// Directories are scanned one level deep (corpus layout is flat); dotfiles
// and README.md are skipped. Exits non-zero when no input was executed —
// a silently empty corpus directory must fail the regression, not pass it.

#include <dirent.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

bool RunFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<std::uint8_t> buf(size > 0 ? static_cast<std::size_t>(size) : 0);
  const std::size_t read = std::fread(buf.data(), 1, buf.size(), f);
  std::fclose(f);
  if (read != buf.size()) {
    std::fprintf(stderr, "short read from %s\n", path.c_str());
    return false;
  }
  LLVMFuzzerTestOneInput(buf.data(), buf.size());
  return true;
}

bool SkipName(const char* name) {
  return name[0] == '.' || std::strcmp(name, "README.md") == 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <file-or-directory>...\n", argv[0]);
    return 2;
  }
  int executed = 0;
  for (int i = 1; i < argc; ++i) {
    DIR* dir = ::opendir(argv[i]);
    if (dir == nullptr) {
      if (!RunFile(argv[i])) return 1;
      ++executed;
      continue;
    }
    std::vector<std::string> entries;
    for (struct dirent* e = ::readdir(dir); e != nullptr;
         e = ::readdir(dir)) {
      if (!SkipName(e->d_name)) entries.push_back(e->d_name);
    }
    ::closedir(dir);
    for (const std::string& name : entries) {
      if (!RunFile(std::string(argv[i]) + "/" + name)) return 1;
      ++executed;
    }
  }
  if (executed == 0) {
    std::fprintf(stderr, "no corpus inputs found\n");
    return 1;
  }
  std::printf("replayed %d input(s)\n", executed);
  return 0;
}
