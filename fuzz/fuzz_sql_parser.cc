// Fuzzes SqlParser::Parse (rta/sql_parser.h) with arbitrary byte strings
// against the fixed compact schema + benchmark dimension catalog — the
// configuration every SQL-speaking front end runs. Paired with
// fuzz/dict/sql.dict so the mutator reaches deep grammar states instead of
// bouncing off the tokenizer.
//
// Asserts the parser contract: any input yields either a Query or a
// kInvalidArgument with a non-empty message — including inputs with
// embedded NULs and non-ASCII bytes (the tokenizer must not pass negative
// chars to ctype functions: UB the UBSan leg would catch here).

#include <cstdint>
#include <memory>
#include <string>

#include "aim/rta/sql_parser.h"
#include "aim/schema/schema.h"
#include "aim/workload/benchmark_schema.h"
#include "aim/workload/dimension_data.h"
#include "fuzz_util.h"

using aim::Schema;
using aim::SqlParser;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  static const std::unique_ptr<Schema> schema = aim::MakeCompactSchema();
  static const aim::BenchmarkDims* dims = [] {
    aim::BenchmarkDimsOptions options;
    options.num_zips = 64;  // small tables parse the same, build faster
    return new aim::BenchmarkDims(aim::MakeBenchmarkDims(options));
  }();

  const std::string sql(reinterpret_cast<const char*>(data), size);
  SqlParser parser(schema.get(), &dims->catalog);
  aim::StatusOr<aim::Query> result = parser.Parse(sql);
  if (!result.ok()) {
    AIM_FUZZ_REQUIRE(result.status().IsInvalidArgument());
    AIM_FUZZ_REQUIRE(!result.status().message().empty());
  }
  return 0;
}
