// bench_baselines_esp — paper §5.1/§5.3 update-path comparison: AIM's
// event processing rate versus the commercial systems' (System M could do
// ~100 ev/s, System D ~200 ev/s, HyPer ~5.5k in isolation / ~1.9k with one
// RTA client; AIM 10k+/node — two orders of magnitude over M/D).
//
// The decisive ingredient is CONCURRENT analytics — the paper's workload
// always has ad-hoc queries in flight. Architecturally:
//   AIM        updates land in the delta; scans read the main — updates
//              never wait for queries (delta-main, Appendix A handshake);
//   System M   pure column store: every scan holds a reader lock for its
//              full pass, starving the writer, which additionally pays the
//              ~550-column gather/scatter per event;
//   System D   row store: scans block the writer too, plus secondary-index
//              maintenance per update;
//   HyPer-CoW  writers never block, but pay a page copy for every first
//              touch while any snapshot is live.
//
// Each system is measured twice: update-only (isolation) and with two
// closed-loop analyst threads running the Q1-style scan mix.

#include <atomic>
#include <memory>
#include <thread>

#include "aim/baselines/cow_store.h"
#include "aim/baselines/indexed_row_store.h"
#include "aim/baselines/pure_column_store.h"
#include "bench_common.h"

using namespace aim;
using namespace aim::bench;

namespace {

constexpr std::uint64_t kEntities = 5000;
constexpr double kSeconds = 2.0;
constexpr int kAnalysts = 2;

/// Update throughput of a BaselineStore, optionally under analyst load.
double MeasureBaseline(const WorkloadSetup& setup, BaselineStore* store,
                       bool with_analysts) {
  std::atomic<bool> stop{false};
  std::vector<std::thread> analysts;
  if (with_analysts) {
    for (int a = 0; a < kAnalysts; ++a) {
      analysts.emplace_back([&, a] {
        QueryWorkload workload(setup.schema.get(), &setup.dims, 600 + a);
        while (!stop.load(std::memory_order_acquire)) {
          (void)store->Execute(workload.Next());
        }
      });
    }
  }
  CdrGenerator::Options gopts;
  gopts.num_entities = kEntities;
  CdrGenerator gen(gopts);
  Timestamp now = 0;
  Stopwatch sw;
  std::uint64_t n = 0;
  while (sw.ElapsedSeconds() < kSeconds) {
    AIM_CHECK(store->ApplyEvent(gen.Next(now += 10)).ok());
    ++n;
  }
  const double eps = static_cast<double>(n) / sw.ElapsedSeconds();
  stop.store(true, std::memory_order_release);
  for (auto& t : analysts) t.join();
  return eps;
}

/// AIM measured on its threaded storage node (1 partition, 1 ESP thread),
/// optionally with closed-loop clients — the deployment whose concurrency
/// story is under test.
double MeasureAim(const WorkloadSetup& setup, bool with_analysts) {
  auto cluster = MakeCluster(setup, kEntities, /*nodes=*/1, /*partitions=*/1,
                             /*esp_threads=*/1);
  MixedOptions opts;
  opts.entities = kEntities;
  opts.target_eps = 0;  // as fast as the node accepts
  opts.clients = with_analysts ? kAnalysts : 0;
  opts.seconds = kSeconds;
  const MixedResult r = RunMixedWorkload(cluster.get(), setup, opts);
  cluster->Stop();
  return r.esp_eps;
}

}  // namespace

int main() {
  std::printf(
      "=== bench_baselines_esp (paper §5.1: event rates, isolation and "
      "under concurrent analytics) ===\n");
  WorkloadSetup setup = MakeSetup(/*full_schema=*/true, /*num_rules=*/0);

  std::vector<std::uint8_t> row(setup.schema->record_size(), 0);
  auto load = [&](BaselineStore* store) {
    for (EntityId e = 1; e <= kEntities; ++e) {
      std::fill(row.begin(), row.end(), 0);
      PopulateEntityProfile(*setup.schema, setup.dims, e, kEntities,
                            row.data());
      AIM_CHECK(store->Load(e, row.data()).ok());
    }
  };

  std::printf("%-22s %16s %22s %10s\n", "system", "isolated ev/s",
              "with analytics ev/s", "vs AIM");

  const double aim_isolated = MeasureAim(setup, false);
  const double aim_mixed = MeasureAim(setup, true);
  std::printf("%-22s %16.0f %22.0f %9.2fx\n", "AIM (delta-main)",
              aim_isolated, aim_mixed, 1.0);

  {
    PureColumnStore::Options opts;
    opts.max_records = kEntities + 64;
    PureColumnStore store(setup.schema.get(), &setup.dims.catalog, opts);
    load(&store);
    const double isolated = MeasureBaseline(setup, &store, false);
    const double mixed = MeasureBaseline(setup, &store, true);
    std::printf("%-22s %16.0f %22.0f %9.2fx\n", store.name().c_str(),
                isolated, mixed, mixed / aim_mixed);
  }
  {
    IndexedRowStore::Options opts;
    opts.max_records = kEntities + 64;
    for (const char* attr :
         {"number_of_local_calls_this_week", "number_of_calls_this_week",
          "total_duration_of_local_calls_this_week", "zip",
          "subscription_type", "category", "cell_value_type"}) {
      opts.indexed_attrs.push_back(setup.schema->FindAttribute(attr));
    }
    IndexedRowStore store(setup.schema.get(), &setup.dims.catalog, opts);
    load(&store);
    const double isolated = MeasureBaseline(setup, &store, false);
    const double mixed = MeasureBaseline(setup, &store, true);
    std::printf("%-22s %16.0f %22.0f %9.2fx\n", store.name().c_str(),
                isolated, mixed, mixed / aim_mixed);
  }
  {
    CowStore::Options opts;
    opts.max_records = kEntities + 64;
    CowStore store(setup.schema.get(), &setup.dims.catalog, opts);
    load(&store);
    const double isolated = MeasureBaseline(setup, &store, false);
    const double mixed = MeasureBaseline(setup, &store, true);
    std::printf("%-22s %16.0f %22.0f %9.2fx  (%llu pages copied)\n",
                store.name().c_str(), isolated, mixed, mixed / aim_mixed,
                static_cast<unsigned long long>(store.pages_copied()));
  }

  std::printf(
      "\nExpected shape: under concurrent analytics AIM keeps (most of) its "
      "isolated rate — updates never wait for scans; the lock-coupled "
      "column/row stores collapse by orders of magnitude; CoW lands in "
      "between, paying page copies (paper §5.1/§5.3).\n");
  return 0;
}
