// bench_merge — paper §4.6 ablation: the differential-updates machinery.
//   * Put throughput into the delta (the ESP-visible write cost)
//   * merge cost as a function of the accumulated delta size (decides how
//     often the RTA thread should interleave merge steps: merge time is the
//     freshness floor)
//   * hot-spot compaction: skewed Puts overwrite in place, so the merged
//     record count is far below the Put count
//   * delta-switch handshake cost (Algorithms 6/7) with a live ESP thread

#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <benchmark/benchmark.h>

#include "aim/storage/delta_main.h"
#include "aim/workload/benchmark_schema.h"
#include "aim/workload/cdr_generator.h"
#include "aim/workload/dimension_data.h"

namespace aim {
namespace {

constexpr std::uint64_t kEntities = 20000;

struct StoreFixture {
  std::unique_ptr<Schema> schema;
  BenchmarkDims dims;
  std::unique_ptr<DeltaMainStore> store;
  std::vector<std::uint8_t> row;

  /// google-benchmark re-invokes benchmark functions while calibrating
  /// iteration counts; the 20k-record fixture must be built once, not per
  /// calibration pass. Leaked deliberately (trivial-destruction-at-exit
  /// rule for static storage).
  static StoreFixture& Shared() {
    static StoreFixture& fx = *new StoreFixture();
    fx.store->Merge();  // drain any delta left by the previous benchmark
    return fx;
  }

  StoreFixture() : schema(MakeBenchmarkSchema()), dims(MakeBenchmarkDims()) {
    DeltaMainStore::Options opts;
    opts.max_records = kEntities + 64;
    store = std::make_unique<DeltaMainStore>(schema.get(), opts);
    row.resize(schema->record_size());
    for (EntityId e = 1; e <= kEntities; ++e) {
      std::fill(row.begin(), row.end(), 0);
      PopulateEntityProfile(*schema, dims, e, kEntities, row.data());
      AIM_CHECK(store->BulkInsert(e, row.data()).ok());
    }
  }

  void PutOne(EntityId e) {
    Version v = 0;
    AIM_CHECK(store->Get(e, row.data(), &v).ok());
    AIM_CHECK(store->Put(e, row.data(), v).ok());
  }
};

void BM_DeltaPut(benchmark::State& state) {
  StoreFixture& fx = StoreFixture::Shared();
  Random rng(1);
  for (auto _ : state) {
    fx.PutOne(rng.Uniform(kEntities) + 1);
    // Keep the delta bounded so we measure Put, not allocation drift.
    if (fx.store->delta_size() > 4096) {
      state.PauseTiming();
      fx.store->Merge();
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DeltaPut);

/// Merge cost vs delta size (uniform keys: every Put hits a distinct-ish
/// record).
void BM_MergeByDeltaSize(benchmark::State& state) {
  const std::uint64_t delta_records =
      static_cast<std::uint64_t>(state.range(0));
  StoreFixture& fx = StoreFixture::Shared();
  Random rng(2);
  for (auto _ : state) {
    state.PauseTiming();
    fx.store->Merge();  // drain
    for (std::uint64_t i = 0; i < delta_records; ++i) {
      fx.PutOne((i * 37 % kEntities) + 1);
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(fx.store->Merge());
  }
  state.SetItemsProcessed(state.iterations() * delta_records);
}
BENCHMARK(BM_MergeByDeltaSize)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384);

/// Hot-spot compaction: 100k Puts over 128 hot entities merge as 128
/// records (paper §4.6: "AIM favors hot spot entities").
void BM_MergeHotSpot(benchmark::State& state) {
  StoreFixture& fx = StoreFixture::Shared();
  Random rng(3);
  std::size_t merged_total = 0;
  std::size_t puts_total = 0;
  for (auto _ : state) {
    state.PauseTiming();
    fx.store->Merge();
    for (int i = 0; i < 10000; ++i) {
      fx.PutOne(rng.Uniform(128) + 1);  // hot set
    }
    puts_total += 10000;
    state.ResumeTiming();
    merged_total += fx.store->Merge();
  }
  state.counters["puts_per_merged_record"] =
      static_cast<double>(puts_total) /
      static_cast<double>(merged_total == 0 ? 1 : merged_total);
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_MergeHotSpot);

/// Delta-switch handshake latency with a live checkpointing ESP thread.
void BM_DeltaSwitchHandshake(benchmark::State& state) {
  StoreFixture& fx = StoreFixture::Shared();
  fx.store->set_esp_attached(true);
  std::atomic<bool> stop{false};
  std::thread esp([&] {
    std::vector<std::uint8_t> buf(fx.schema->record_size());
    Random rng(4);
    while (!stop.load(std::memory_order_acquire)) {
      fx.store->EspCheckpoint();
      Version v = 0;
      const EntityId e = rng.Uniform(kEntities) + 1;
      if (fx.store->Get(e, buf.data(), &v).ok()) {
        (void)fx.store->Put(e, buf.data(), v);
      }
    }
    fx.store->set_esp_attached(false);
  });
  for (auto _ : state) {
    fx.store->SwitchDeltas();   // the only moment ESP blocks
    fx.store->MergeStep();
  }
  stop.store(true, std::memory_order_release);
  esp.join();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DeltaSwitchHandshake);

}  // namespace
}  // namespace aim

/// Custom main instead of benchmark_main: maps the repo-wide `--json=PATH`
/// flag onto google-benchmark's JSON reporter so every bench binary shares
/// one machine-readable output convention (see bench_common.h).
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag;
  constexpr char kJsonPrefix[] = "--json=";
  constexpr char kJsonFormat[] = "--benchmark_out_format=json";
  char format_flag[sizeof(kJsonFormat)];
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (std::strncmp(args[i], kJsonPrefix, sizeof(kJsonPrefix) - 1) == 0) {
      out_flag = std::string("--benchmark_out=") +
                 (args[i] + sizeof(kJsonPrefix) - 1);
      std::memcpy(format_flag, kJsonFormat, sizeof(kJsonFormat));
      args[i] = format_flag;
      args.push_back(out_flag.data());
      break;
    }
  }
  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(adjusted_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
