// bench_deployment — paper §4.2 design experiment: the two physical layouts
// for ESP and storage.
//   (a) fully separated tiers: a remote ESP node drives the storage node
//       through its Get/Put record interface — full Entity Records
//       (multi-KB) cross the simulated network twice per event;
//   (b) co-located (the paper's measured configuration): ESP logic runs on
//       the storage node's cores, so only the 64-byte event crosses once.
//
// Paper finding to reproduce: option (b) performs better because shipping
// ~3 KB records costs far more than shipping 64 B events; option (a) buys
// deployment flexibility instead.

#include "aim/server/esp_tier.h"
#include "bench_common.h"

using namespace aim;
using namespace aim::bench;

namespace {

struct DeployResult {
  double eps;
  double mean_ms;
  double bytes_per_event;
};

DeployResult RunColocated(const WorkloadSetup& setup,
                          std::uint64_t entities, double seconds) {
  auto cluster = MakeCluster(setup, entities, 1, /*partitions=*/1,
                             /*esp_threads=*/1);
  CdrGenerator::Options gopts;
  gopts.num_entities = entities;
  CdrGenerator gen(gopts);
  Timestamp now = 0;
  LatencyRecorder lat;
  Stopwatch run, sw;
  std::uint64_t n = 0;
  EventCompletion done;
  while (run.ElapsedSeconds() < seconds) {
    const bool sample = n % 32 == 0;
    if (sample) {
      done.Reset();
      sw.Restart();
      AIM_CHECK(cluster->IngestEvent(gen.Next(now += 10), &done));
      done.Wait();
      lat.Record(sw.ElapsedMicros());
    } else {
      AIM_CHECK(cluster->IngestEvent(gen.Next(now += 10), nullptr));
    }
    ++n;
  }
  // Wait for the queue to drain before stopping the clock's meaning.
  const double elapsed = run.ElapsedSeconds();
  cluster->Stop();
  return {static_cast<double>(n) / elapsed, lat.MeanMicros() / 1e3,
          static_cast<double>(kEventWireSize)};
}

DeployResult RunSeparated(const WorkloadSetup& setup, std::uint64_t entities,
                          double seconds) {
  AimCluster::Options copts;
  copts.num_nodes = 1;
  copts.node.num_partitions = 1;
  copts.node.num_esp_threads = 1;
  copts.node.max_records_per_partition = entities * 2 + 4096;
  AimCluster cluster(setup.schema.get(), &setup.dims.catalog, &setup.rules,
                     copts);
  LoadCluster(&cluster, setup, entities);
  AIM_CHECK(cluster.Start().ok());

  EspTierNode::Options topts;
  topts.num_threads = 1;
  EspTierNode tier(setup.schema.get(), &cluster.node(0), &setup.rules,
                   topts);
  AIM_CHECK(tier.Start().ok());

  CdrGenerator::Options gopts;
  gopts.num_entities = entities;
  CdrGenerator gen(gopts);
  Timestamp now = 0;
  LatencyRecorder lat;
  Stopwatch run, sw;
  std::uint64_t n = 0;
  EventCompletion done;
  while (run.ElapsedSeconds() < seconds) {
    // Closed loop: the tier worker is synchronous anyway (each event is a
    // Get + Put round trip).
    done.Reset();
    BinaryWriter w;
    gen.Next(now += 10).Serialize(&w);
    sw.Restart();
    AIM_CHECK(tier.SubmitEvent(w.TakeBuffer(), &done));
    done.Wait();
    lat.Record(sw.ElapsedMicros());
    ++n;
  }
  const double elapsed = run.ElapsedSeconds();
  const EspTierNode::Stats stats = tier.stats();
  tier.Stop();
  cluster.Stop();
  return {static_cast<double>(n) / elapsed, lat.MeanMicros() / 1e3,
          static_cast<double>(stats.record_bytes_shipped + n * kEventWireSize) /
              static_cast<double>(stats.events_processed == 0
                                      ? 1
                                      : stats.events_processed)};
}

}  // namespace

int main() {
  std::printf("=== bench_deployment (paper §4.2: tier layout options) ===\n");
  const std::uint64_t entities = 5000;
  const double seconds = 2.5;
  WorkloadSetup setup = MakeSetup();
  std::printf("record size: %u bytes, event size: %zu bytes\n\n",
              setup.schema->record_size(), kEventWireSize);

  const DeployResult colocated = RunColocated(setup, entities, seconds);
  const DeployResult separated = RunSeparated(setup, entities, seconds);

  std::printf("%-28s %14s %16s %18s\n", "layout", "events/s",
              "event_mean_ms", "wire bytes/event");
  std::printf("%-28s %14.0f %16.3f %18.0f\n",
              "(b) co-located ESP+storage", colocated.eps, colocated.mean_ms,
              colocated.bytes_per_event);
  std::printf("%-28s %14.0f %16.3f %18.0f\n", "(a) separate ESP tier",
              separated.eps, separated.mean_ms, separated.bytes_per_event);
  std::printf("\nExpected shape: (b) wins on throughput and latency because "
              "it ships 64 B events instead of %u B records twice per event "
              "(paper §4.2 chose (b) for the evaluation).\n",
              setup.schema->record_size());
  return 0;
}
