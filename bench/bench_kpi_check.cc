// bench_kpi_check — paper Table 4: verifies the SLA set at the default
// configuration (scaled: 10k entities on one simulated storage node with
// the full 546-indicator schema, 300 rules, seven-query mix, c=4).
//
// Paper reference: t_ESP <= 10 ms, t_RTA <= 100 ms, f_RTA >= 100 q/s,
// t_fresh <= 1 s at 10M entities / 10k events/s on an 8-core server. Our
// single-core VM scales the data down; the check is that the latency SLAs
// hold and throughput saturates gracefully, not the absolute numbers.
//
// Flags: --entities=N --seconds=S --eps=R --clients=C scale the run;
// --json=PATH additionally writes the KPIs, verdicts and provenance
// (git sha, build type, scale) as one JSON document (see WriteKpiJson).

#include "bench_common.h"

using namespace aim;
using namespace aim::bench;

int main(int argc, char** argv) {
  std::printf("=== bench_kpi_check (paper Table 4 / §5.1 defaults) ===\n");
  const std::uint64_t entities = FlagUint(argc, argv, "entities", 10000);
  const double seconds = FlagDouble(argc, argv, "seconds", 4.0);
  const double target_eps = FlagDouble(argc, argv, "eps", 2000.0);
  const int clients =
      static_cast<int>(FlagUint(argc, argv, "clients", 4));
  const char* json_path = FlagValue(argc, argv, "json");

  WorkloadSetup setup = MakeSetup();
  std::printf("schema: %u indicators, %u-byte records; rules: %zu\n",
              setup.schema->num_indicators(), setup.schema->record_size(),
              setup.rules.size());

  auto cluster = MakeCluster(setup, entities, /*nodes=*/1, /*partitions=*/2,
                             /*esp_threads=*/1);

  // The live monitor watches the cluster's always-on metrics — including
  // the traced t_fresh distribution stamped by the delta-main stores
  // themselves (write -> merge-publication, not query polling).
  const KpiTargets targets;
  KpiMonitor monitor = cluster->MakeKpiMonitor(entities, targets);

  MixedOptions opts;
  opts.entities = entities;
  opts.target_eps = target_eps;  // scaled-down f_ESP x entities
  opts.clients = clients;
  opts.seconds = seconds;
  const MixedResult r = RunMixedWorkload(cluster.get(), setup, opts);

  const KpiSample live = monitor.Sample();
  std::printf("\n--- live KpiMonitor (internal metrics, traced t_fresh) ---\n");
  std::printf("%s", live.Render(targets).c_str());

  // Freshness probe: time from an event burst to query visibility — the
  // external (black-box) cross-check of the traced distribution above.
  Query count_q = *QueryBuilder(setup.schema.get())
                       .Select(AggOp::kSum, "number_of_calls_this_month")
                       .Build();
  const QueryResult before = cluster->ExecuteQuery(count_q);
  CdrGenerator::Options gopts;
  gopts.num_entities = entities;
  gopts.seed = 999;
  CdrGenerator gen(gopts);
  for (int i = 0; i < 100; ++i) {
    cluster->IngestEvent(gen.Next(1000000 + i), nullptr);
  }
  Stopwatch fresh;
  double fresh_ms = -1;
  while (fresh.ElapsedSeconds() < 5.0) {
    const QueryResult now = cluster->ExecuteQuery(count_q);
    if (now.rows[0].values[0] >= before.rows[0].values[0] + 100) {
      fresh_ms = fresh.ElapsedMillis();
      break;
    }
  }
  cluster->Stop();

  const KpiReport report = KpiReport::FromRecorders(
      r.esp_lat, r.rta_lat, r.esp_eps, r.rta_qps, fresh_ms);
  const double elapsed_hours = seconds / 3600.0;
  const double f_esp = entities > 0 && elapsed_hours > 0
                           ? static_cast<double>(r.events) /
                                 static_cast<double>(entities) / elapsed_hours
                           : 0.0;

  std::printf("\n%-28s %12s %12s %s\n", "KPI", "target", "measured", "verdict");
  auto line = [](const char* name, double target, double measured, bool ok,
                 const char* unit) {
    std::printf("%-28s %9.1f %s %9.1f %s %s\n", name, target, unit, measured,
                unit, ok ? "PASS" : "MISS");
  };
  line("t_ESP (mean event latency)", targets.t_esp_ms, report.esp_mean_ms,
       report.MeetsEsp(targets), "ms");
  line("t_RTA (mean query latency)", targets.t_rta_ms, report.rta_mean_ms,
       report.rta_mean_ms <= targets.t_rta_ms, "ms");
  line("f_RTA (query throughput)", targets.f_rta_qps,
       report.rta_throughput_qps,
       report.rta_throughput_qps >= targets.f_rta_qps, "q/s");
  line("t_fresh (visibility lag)", targets.t_fresh_ms, fresh_ms,
       fresh_ms >= 0 && fresh_ms <= targets.t_fresh_ms, "ms");
  std::printf("\nESP sustained %.0f events/s (target %.0f); latency %s\n",
              r.esp_eps, target_eps, r.esp_lat.SummaryMillis().c_str());
  std::printf("RTA %.1f q/s over mix Q1..Q7; latency %s\n", r.rta_qps,
              r.rta_lat.SummaryMillis().c_str());

  if (json_path != nullptr) {
    BenchRunInfo info;
    info.bench_name = "bench_kpi_check";
    info.entities = entities;
    info.nodes = 1;
    info.partitions = 2;
    info.esp_threads = 1;
    info.seconds = seconds;
    info.target_eps = target_eps;
    info.clients = clients;
    if (!WriteKpiJson(json_path, info, report, targets, f_esp)) return 1;
    std::printf("\nwrote %s\n", json_path);
  }
  return 0;
}
