// bench_kpi_check — paper Table 4: verifies the SLA set at the default
// configuration (scaled: 10k entities on one simulated storage node with
// the full 546-indicator schema, 300 rules, seven-query mix, c=4).
//
// Paper reference: t_ESP <= 10 ms, t_RTA <= 100 ms, f_RTA >= 100 q/s,
// t_fresh <= 1 s at 10M entities / 10k events/s on an 8-core server. Our
// single-core VM scales the data down; the check is that the latency SLAs
// hold and throughput saturates gracefully, not the absolute numbers.

#include "bench_common.h"

using namespace aim;
using namespace aim::bench;

int main() {
  std::printf("=== bench_kpi_check (paper Table 4 / §5.1 defaults) ===\n");
  const std::uint64_t entities = 10000;
  WorkloadSetup setup = MakeSetup();
  std::printf("schema: %u indicators, %u-byte records; rules: %zu\n",
              setup.schema->num_indicators(), setup.schema->record_size(),
              setup.rules.size());

  auto cluster = MakeCluster(setup, entities, /*nodes=*/1, /*partitions=*/2,
                             /*esp_threads=*/1);

  MixedOptions opts;
  opts.entities = entities;
  opts.target_eps = 2000;  // scaled-down f_ESP x entities
  opts.clients = 4;
  opts.seconds = 4.0;
  const MixedResult r = RunMixedWorkload(cluster.get(), setup, opts);

  // Freshness probe: time from an event burst to query visibility.
  Query count_q = *QueryBuilder(setup.schema.get())
                       .Select(AggOp::kSum, "number_of_calls_this_month")
                       .Build();
  const QueryResult before = cluster->ExecuteQuery(count_q);
  CdrGenerator::Options gopts;
  gopts.num_entities = entities;
  gopts.seed = 999;
  CdrGenerator gen(gopts);
  for (int i = 0; i < 100; ++i) {
    cluster->IngestEvent(gen.Next(1000000 + i), nullptr);
  }
  Stopwatch fresh;
  double fresh_ms = -1;
  while (fresh.ElapsedSeconds() < 5.0) {
    const QueryResult now = cluster->ExecuteQuery(count_q);
    if (now.rows[0].values[0] >= before.rows[0].values[0] + 100) {
      fresh_ms = fresh.ElapsedMillis();
      break;
    }
  }
  cluster->Stop();

  const KpiTargets t;
  const KpiReport report = KpiReport::FromRecorders(
      r.esp_lat, r.rta_lat, r.esp_eps, r.rta_qps, fresh_ms);

  std::printf("\n%-28s %12s %12s %s\n", "KPI", "target", "measured", "verdict");
  auto line = [](const char* name, double target, double measured, bool ok,
                 const char* unit) {
    std::printf("%-28s %9.1f %s %9.1f %s %s\n", name, target, unit, measured,
                unit, ok ? "PASS" : "MISS");
  };
  line("t_ESP (mean event latency)", t.t_esp_ms, report.esp_mean_ms,
       report.MeetsEsp(t), "ms");
  line("t_RTA (mean query latency)", t.t_rta_ms, report.rta_mean_ms,
       report.rta_mean_ms <= t.t_rta_ms, "ms");
  line("f_RTA (query throughput)", t.f_rta_qps, report.rta_throughput_qps,
       report.rta_throughput_qps >= t.f_rta_qps, "q/s");
  line("t_fresh (visibility lag)", t.t_fresh_ms, fresh_ms,
       fresh_ms >= 0 && fresh_ms <= t.t_fresh_ms, "ms");
  std::printf("\nESP sustained %.0f events/s (target %.0f); latency %s\n",
              r.esp_eps, 2000.0, r.esp_lat.SummaryMillis().c_str());
  std::printf("RTA %.1f q/s over mix Q1..Q7; latency %s\n", r.rta_qps,
              r.rta_lat.SummaryMillis().c_str());
  return 0;
}
