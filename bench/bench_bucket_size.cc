// bench_bucket_size — paper §4.5/§5.2: ColumnMap Bucket Size sweep for the
// two sides of the trade-off:
//   * scan:   a full filtered-aggregation pass over all buckets (RTA side)
//   * update: Get (materialize) + Put (scatter) of one record (ESP/merge)
//
// Expected shape: scans need bucket_size >= SIMD width (32) and then go
// flat, with PAX (1024-3072) at least matching the pure column store;
// bucket_size = 1 (row store) loses badly on scans but is competitive on
// updates — the paper's argument for the tunable hybrid.

#include <map>
#include <memory>
#include <vector>

#include <benchmark/benchmark.h>

#include "aim/rta/compiled_query.h"
#include "aim/storage/column_map.h"
#include "aim/workload/benchmark_schema.h"
#include "aim/workload/cdr_generator.h"
#include "aim/workload/dimension_data.h"

namespace aim {
namespace {

constexpr std::uint64_t kRecords = 20000;

struct MapFixture {
  std::unique_ptr<Schema> schema;
  BenchmarkDims dims;
  std::unique_ptr<ColumnMap> map;

  /// Cached per bucket size: google-benchmark re-invokes the function while
  /// calibrating, and the 20k-record load must not repeat. Leaked
  /// deliberately.
  static MapFixture& Shared(std::uint32_t bucket_size) {
    static std::map<std::uint32_t, MapFixture*>& cache =
        *new std::map<std::uint32_t, MapFixture*>();
    auto [it, inserted] = cache.emplace(bucket_size, nullptr);
    if (inserted) it->second = new MapFixture(bucket_size);
    return *it->second;
  }

  explicit MapFixture(std::uint32_t bucket_size)
      : schema(MakeBenchmarkSchema()), dims(MakeBenchmarkDims()) {
    map = std::make_unique<ColumnMap>(schema.get(), bucket_size, kRecords);
    std::vector<std::uint8_t> row(schema->record_size(), 0);
    Random rng(3);
    const std::uint16_t calls =
        schema->FindAttribute("number_of_calls_this_week");
    const std::uint16_t dur =
        schema->FindAttribute("total_duration_this_week");
    for (EntityId e = 1; e <= kRecords; ++e) {
      std::fill(row.begin(), row.end(), 0);
      PopulateEntityProfile(*schema, dims, e, kRecords, row.data());
      RecordView rec(schema.get(), row.data());
      rec.Set(calls, Value::Int32(static_cast<std::int32_t>(rng.Uniform(20))));
      rec.Set(dur, Value::Float(static_cast<float>(rng.Uniform(10000))));
      AIM_CHECK(map->Insert(e, row.data(), 1).ok());
    }
  }
};

void BM_Scan(benchmark::State& state) {
  const std::uint32_t bucket_size =
      state.range(0) == 0 ? kRecords : static_cast<std::uint32_t>(
                                           state.range(0));
  MapFixture& fx = MapFixture::Shared(bucket_size);
  Query q = *QueryBuilder(fx.schema.get())
                 .Select(AggOp::kAvg, "total_duration_this_week")
                 .Where("number_of_calls_this_week", CmpOp::kGt,
                        Value::Int32(5))
                 .Build();
  ScanScratch scratch;
  for (auto _ : state) {
    CompiledQuery cq =
        *CompiledQuery::Compile(q, fx.schema.get(), &fx.dims.catalog);
    for (std::uint32_t b = 0; b < fx.map->num_buckets(); ++b) {
      cq.ProcessBucket(*fx.map, fx.map->bucket(b), &scratch);
    }
    benchmark::DoNotOptimize(cq.TakePartial());
  }
  state.SetItemsProcessed(state.iterations() * kRecords);
  state.SetLabel(state.range(0) == 0 ? "bucket=all" : "");
}
BENCHMARK(BM_Scan)->Arg(1)->Arg(32)->Arg(1024)->Arg(3072)->Arg(8192)->Arg(0);

void BM_GetPut(benchmark::State& state) {
  const std::uint32_t bucket_size =
      state.range(0) == 0 ? kRecords : static_cast<std::uint32_t>(
                                           state.range(0));
  MapFixture& fx = MapFixture::Shared(bucket_size);
  std::vector<std::uint8_t> row(fx.schema->record_size());
  Random rng(7);
  for (auto _ : state) {
    const RecordId id = fx.map->Lookup(rng.Uniform(kRecords) + 1);
    fx.map->MaterializeRow(id, row.data());  // Get: gather
    benchmark::DoNotOptimize(row.data());
    fx.map->ScatterRow(id, row.data());  // Put/merge: scatter
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(state.range(0) == 0 ? "bucket=all" : "");
}
BENCHMARK(BM_GetPut)->Arg(1)->Arg(32)->Arg(1024)->Arg(3072)->Arg(8192)->Arg(0);

}  // namespace
}  // namespace aim
