// bench_ingest — what event-ingest batching buys (docs/DESIGN.md, "Ingest
// batching & prefetching"): sweeps submit batch size {1, 8, 32, 128} x
// {scalar, prefetch} x {in-process, TCP loopback} and reports events/sec
// plus sampled end-to-end event latency (submit -> completion, an upper
// bound on per-event t_ESP that includes the event's whole batch).
//
// Each configuration runs against a fresh StorageNode whose max_event_batch
// and prefetch_distance match the swept point, so batch=1/scalar is the true
// sequential baseline: one event per queue operation, one ProcessEvent per
// wakeup, no lookahead.
//
//   $ ./bench_ingest [--entities=N] [--events=N] [--json=PATH]
//                    [--min-local-speedup=X] [--min-tcp-speedup=X]
//
// The speedup gates compare batch=32+prefetch against batch=1+scalar on the
// same transport and exit non-zero below the bound (CI smoke gates tcp at
// 1.1 — wire batching must win — and local at 0.9, the run-to-run noise
// floor, since a lone core gains nothing from prefetch lookahead).

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "aim/net/tcp_client.h"
#include "aim/net/tcp_server.h"
#include "aim/server/local_node_channel.h"
#include "bench_common.h"

using namespace aim;
using namespace aim::bench;

namespace {

struct Config {
  const char* transport;  // "local" | "tcp"
  const char* mode;       // "scalar" | "prefetch"
  std::uint32_t batch;
};

struct RunResult {
  double events_per_sec = 0;
  double rtt_p50_us = 0;
  double rtt_p99_us = 0;
};

/// Throughput phase: pumps `total` events in submit batches of `batch`
/// under credit-based flow control — every kMarkerIntervalEvents events one
/// event carries a completion ("marker"), and at most kMaxOutstandingMarkers
/// markers may be un-acked. That caps in-flight bytes well below the TCP
/// receive-buffer floor, so the loopback server never advertises a zero
/// window (an uncapped fire-and-forget flood parks the connection in
/// zero-window persist state, which this host's kernel occasionally fails
/// to leave). A final completion event drains the run (FIFO per ESP thread:
/// its completion proves everything before it processed), so the wall clock
/// covers full processing, not just submission. Latency phase: 200
/// closed-loop batches, each waiting on its last event — submit -> done for
/// the *last* event of a batch bounds any member's t_ESP from above.
RunResult RunConfig(NodeChannel* channel, StorageNode* node,
                    std::uint64_t entities, std::uint64_t total,
                    std::uint32_t batch) {
  RunResult result;
  CdrGenerator::Options gopts;
  gopts.num_entities = entities;
  CdrGenerator gen(gopts);
  Timestamp now = 0;
  BufferPool& pool = node->event_buffer_pool();

  std::vector<EventMessage> msgs;
  auto fill_batch = [&](std::uint32_t k) {
    msgs.clear();
    for (std::uint32_t i = 0; i < k; ++i) {
      BinaryWriter writer(pool.Acquire());
      gen.Next(now += 10).Serialize(&writer);
      EventMessage msg;
      msg.bytes = writer.TakeBuffer();
      msgs.push_back(std::move(msg));
    }
  };

  constexpr std::uint64_t kMarkerIntervalEvents = 256;
  constexpr std::size_t kMaxOutstandingMarkers = 4;
  std::deque<std::unique_ptr<EventCompletion>> markers;
  std::uint64_t since_marker = 0;

  std::uint64_t sent = 0;
  Stopwatch wall;
  while (sent < total) {
    const std::uint32_t k = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(batch, total - sent));
    fill_batch(k);
    std::unique_ptr<EventCompletion> marker;
    since_marker += k;
    if (since_marker >= kMarkerIntervalEvents) {
      since_marker = 0;
      marker = std::make_unique<EventCompletion>();
      msgs.back().completion = marker.get();
    }
    AIM_CHECK(channel->SubmitEventBatch(std::move(msgs)) == k);
    sent += k;
    if (marker != nullptr) markers.push_back(std::move(marker));
    while (markers.size() > kMaxOutstandingMarkers) {
      markers.front()->Wait();
      AIM_CHECK_MSG(markers.front()->status.ok(), "%s",
                    markers.front()->status.message().c_str());
      markers.pop_front();
    }
  }
  for (auto& marker : markers) {
    marker->Wait();
    AIM_CHECK_MSG(marker->status.ok(), "%s", marker->status.message().c_str());
  }
  markers.clear();
  {
    BinaryWriter writer;
    gen.Next(now += 10).Serialize(&writer);
    EventCompletion done;
    AIM_CHECK(channel->SubmitEvent(writer.TakeBuffer(), &done));
    done.Wait();
    AIM_CHECK_MSG(done.status.ok(), "%s", done.status.message().c_str());
  }
  result.events_per_sec = static_cast<double>(sent) / wall.ElapsedSeconds();

  LatencyRecorder rtt;
  EventCompletion sampled;
  Stopwatch sample_timer;
  for (int s = 0; s < 200; ++s) {
    fill_batch(batch);
    sampled.Reset();
    msgs.back().completion = &sampled;
    sample_timer.Restart();
    AIM_CHECK(channel->SubmitEventBatch(std::move(msgs)) == batch);
    sampled.Wait();
    AIM_CHECK_MSG(sampled.status.ok(), "%s",
                  sampled.status.message().c_str());
    rtt.Record(sample_timer.ElapsedMicros());
  }
  result.rtt_p50_us = rtt.PercentileMicros(0.5);
  result.rtt_p99_us = rtt.PercentileMicros(0.99);
  return result;
}

/// Builds a node for one swept point, runs it, tears it down.
RunResult RunPoint(const WorkloadSetup& setup, std::uint64_t entities,
                   std::uint64_t events, const Config& cfg) {
  MetricsRegistry metrics;
  StorageNode::Options nopts;
  nopts.num_partitions = 2;
  nopts.max_records_per_partition = entities + 4096;
  nopts.max_event_batch = cfg.batch;
  nopts.metrics = &metrics;
  nopts.esp.prefetch_distance =
      std::string(cfg.mode) == "prefetch" ? 8 : 0;
  StorageNode node(setup.schema.get(), &setup.dims.catalog, &setup.rules,
                   nopts);
  std::vector<std::uint8_t> row(setup.schema->record_size(), 0);
  for (EntityId e = 1; e <= entities; ++e) {
    std::fill(row.begin(), row.end(), 0);
    PopulateEntityProfile(*setup.schema, setup.dims, e, entities, row.data());
    AIM_CHECK(node.BulkLoad(e, row.data()).ok());
  }
  AIM_CHECK(node.Start().ok());
  LocalNodeChannel local(&node);

  RunResult result;
  if (std::string(cfg.transport) == "local") {
    RunConfig(&local, &node, entities, events / 8, cfg.batch);  // warmup
    result = RunConfig(&local, &node, entities, events, cfg.batch);
  } else {
    net::TcpServer::Options sopts;
    sopts.metrics = &metrics;
    net::TcpServer server(&local, sopts);
    AIM_CHECK(server.Start().ok());
    net::TcpClient::Options copts;
    copts.port = server.port();
    copts.metrics = &metrics;
    net::TcpClient client(copts);
    AIM_CHECK(client.Connect().ok());
    RunConfig(&client, &node, entities, events / 8, cfg.batch);  // warmup
    result = RunConfig(&client, &node, entities, events, cfg.batch);
    client.Close();
    server.Stop();
  }
  node.Stop();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t entities = FlagUint(argc, argv, "entities", 50000);
  const std::uint64_t events = FlagUint(argc, argv, "events", 150000);
  const double min_local = FlagDouble(argc, argv, "min-local-speedup", 0);
  const double min_tcp = FlagDouble(argc, argv, "min-tcp-speedup", 0);
  const char* json_path = FlagValue(argc, argv, "json");

  std::printf("bench_ingest: %llu entities, %llu events per configuration\n",
              static_cast<unsigned long long>(entities),
              static_cast<unsigned long long>(events));

  WorkloadSetup setup = MakeSetup(/*full_schema=*/false, 10);

  std::vector<Config> configs;
  for (const char* transport : {"local", "tcp"}) {
    for (const char* mode : {"scalar", "prefetch"}) {
      for (std::uint32_t batch : {1u, 8u, 32u, 128u}) {
        configs.push_back({transport, mode, batch});
      }
    }
  }

  std::printf("\n%-8s %-9s %6s %14s %12s %12s\n", "transport", "mode",
              "batch", "events/sec", "rtt p50 us", "rtt p99 us");
  std::vector<RunResult> results;
  for (const Config& cfg : configs) {
    results.push_back(RunPoint(setup, entities, events, cfg));
    const RunResult& r = results.back();
    std::printf("%-8s %-9s %6u %14.0f %12.1f %12.1f\n", cfg.transport,
                cfg.mode, cfg.batch, r.events_per_sec, r.rtt_p50_us,
                r.rtt_p99_us);
  }

  auto find = [&](const char* transport, const char* mode,
                  std::uint32_t batch) -> const RunResult& {
    for (std::size_t i = 0; i < configs.size(); ++i) {
      if (std::string(configs[i].transport) == transport &&
          std::string(configs[i].mode) == mode &&
          configs[i].batch == batch) {
        return results[i];
      }
    }
    AIM_CHECK_MSG(false, "config not found");
    return results[0];
  };

  const double local_speedup =
      find("local", "prefetch", 32).events_per_sec /
      find("local", "scalar", 1).events_per_sec;
  const double tcp_speedup = find("tcp", "prefetch", 32).events_per_sec /
                             find("tcp", "scalar", 1).events_per_sec;
  std::printf("\nspeedup batch=32+prefetch vs batch=1+scalar: local %.2fx, "
              "tcp %.2fx\n",
              local_speedup, tcp_speedup);

  if (json_path != nullptr) {
    FILE* f = std::fopen(json_path, "w");
    AIM_CHECK_MSG(f != nullptr, "cannot open --json path");
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"bench_ingest\",\n");
    std::fprintf(f, "  \"git_sha\": \"%s\",\n", GitSha().c_str());
    std::fprintf(f, "  \"build_type\": \"%s\",\n", BuildType());
    std::fprintf(f,
                 "  \"scale\": {\"entities\": %llu, \"events\": %llu},\n",
                 static_cast<unsigned long long>(entities),
                 static_cast<unsigned long long>(events));
    std::fprintf(f, "  \"results\": [\n");
    for (std::size_t i = 0; i < configs.size(); ++i) {
      std::fprintf(f,
                   "    {\"transport\": \"%s\", \"mode\": \"%s\", "
                   "\"batch\": %u, \"events_per_sec\": %.1f, "
                   "\"rtt_p50_us\": %.1f, \"rtt_p99_us\": %.1f}%s\n",
                   configs[i].transport, configs[i].mode, configs[i].batch,
                   results[i].events_per_sec, results[i].rtt_p50_us,
                   results[i].rtt_p99_us,
                   i + 1 < configs.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"local_speedup_b32_prefetch\": %.3f,\n",
                 local_speedup);
    std::fprintf(f, "  \"tcp_speedup_b32_prefetch\": %.3f\n", tcp_speedup);
    std::fprintf(f, "}\n");
    std::fclose(f);
  }

  bool ok = true;
  if (min_local > 0 && local_speedup < min_local) {
    std::fprintf(stderr, "FAIL: local speedup %.2f < %.2f\n", local_speedup,
                 min_local);
    ok = false;
  }
  if (min_tcp > 0 && tcp_speedup < min_tcp) {
    std::fprintf(stderr, "FAIL: tcp speedup %.2f < %.2f\n", tcp_speedup,
                 min_tcp);
    ok = false;
  }
  return ok ? 0 : 1;
}
