// bench_scaleout — paper Figures 9c / 10c: fixed workload (entity count and
// event rate), growing number of storage servers. The paper sees near-linear
// throughput improvement and better response times, with small overhead from
// result merging at the RTA node.
//
// On the 1-core VM the simulated nodes timeshare one CPU, so *aggregate* CPU
// does not grow with the node count — instead this bench demonstrates the
// per-node work split: each node scans 1/k of the matrix, so per-node scan
// time (and thus response time under low contention) drops near-linearly,
// while coordination/merging overhead grows with k, exactly the two forces
// the paper's Figure 11 discussion names.

#include "bench_common.h"

using namespace aim;
using namespace aim::bench;

int main() {
  std::printf("=== bench_scaleout (paper Fig 9c/10c) ===\n");
  const std::uint64_t entities = 12000;
  WorkloadSetup setup = MakeSetup();

  std::printf("%-8s %12s %14s %16s %14s %18s\n", "nodes", "rec/node",
              "rta_mean_ms", "rta_qps", "esp_eps", "scan_work/node");
  for (std::uint32_t nodes : {1u, 2u, 3u, 4u}) {
    auto cluster = MakeCluster(setup, entities, nodes, /*partitions=*/1,
                               /*esp_threads=*/1);
    MixedOptions opts;
    opts.entities = entities;
    opts.target_eps = 800;
    opts.clients = 4;
    opts.seconds = 2.5;
    const MixedResult r = RunMixedWorkload(cluster.get(), setup, opts);
    const std::uint64_t per_node = cluster->node(0).total_records();
    cluster->Stop();
    std::printf("%-8u %12llu %14.2f %16.1f %14.0f %17.0f%%\n", nodes,
                static_cast<unsigned long long>(per_node),
                r.rta_lat.MeanMicros() / 1e3, r.rta_qps, r.esp_eps,
                100.0 * static_cast<double>(per_node) / entities);
  }
  std::printf("\nExpected shape: per-node share of the matrix shrinks ~1/k "
              "(the scan parallelism the paper's cluster exploits); "
              "front-end merge overhead grows mildly with k.\n");
  return 0;
}
