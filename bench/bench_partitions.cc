// bench_partitions — paper Figures 9a / 10a: RTA response time and
// throughput for different numbers of data partitions (= RTA scan threads)
// n and different ColumnMap Bucket Sizes, on a single storage server with a
// fixed event rate. Plus the scan-executor sweep: {SIMD dispatch tier} x
// {scan-pool workers} x {morsel size}, written as BENCH_scan.json via
// --json=PATH.
//
// Paper shape to reproduce: performance improves with n until the node's
// cores are oversubscribed, and Bucket Size barely matters once it is large
// enough to saturate the SIMD registers (>= 32), with PAX slightly ahead of
// the pure column store ("all"). On our 1-core VM the n-sweep saturates at
// n=1-2 — the oversubscription penalty appears immediately, which is the
// same effect the paper sees at n=6 on 8 cores. The same caveat governs
// the pool sweep: pool workers timeshare the single core, so pool_threads
// > 0 measures the coordination overhead of the morsel board, not a
// speedup — the cooperative path's correctness is covered by tests
// (scan_pool_test, scan_pool_stress_test); its scaling needs multi-core
// hardware. The JSON records the host's core count so readers can tell
// which regime a row was measured in.
//
// Flags: --entities=N --seconds=S --eps=R --json=PATH --scan-only
// (--scan-only skips the Fig 9a/10a table, used by the CI bench job).

#include <thread>

#include "aim/rta/simd.h"
#include "bench_common.h"

using namespace aim;
using namespace aim::bench;

namespace {

struct ScanPoint {
  simd::SimdLevel tier;
  std::uint32_t pool_threads;
  std::uint32_t morsel_buckets;
  double rta_mean_ms = 0;
  double rta_p99_ms = 0;
  double rta_qps = 0;
  double esp_eps = 0;
};

/// MakeCluster with the scan-executor knobs exposed (the shared helper
/// deliberately keeps its signature small).
std::unique_ptr<AimCluster> MakeScanCluster(const WorkloadSetup& s,
                                            std::uint64_t entities,
                                            std::uint32_t pool_threads,
                                            std::uint32_t morsel_buckets) {
  AimCluster::Options copts;
  copts.num_nodes = 1;
  copts.node.num_partitions = 2;
  copts.node.num_esp_threads = 1;
  // Small buckets so a partition decomposes into enough morsels for the
  // board to matter (~40 buckets per partition at the default scale).
  copts.node.bucket_size = 256;
  copts.node.max_records_per_partition = entities + 4096;
  copts.node.scan_pool_threads = pool_threads;
  copts.node.scan_morsel_buckets = morsel_buckets;
  auto cluster = std::make_unique<AimCluster>(s.schema.get(), &s.dims.catalog,
                                              &s.rules, copts);
  LoadCluster(cluster.get(), s, entities);
  AIM_CHECK(cluster->Start().ok());
  return cluster;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t entities = FlagUint(argc, argv, "entities", 8000);
  const double seconds = FlagDouble(argc, argv, "seconds", 2.5);
  const double target_eps = FlagDouble(argc, argv, "eps", 1000);
  const char* json_path = FlagValue(argc, argv, "json");
  const bool scan_only = FlagValue(argc, argv, "scan-only") != nullptr;

  WorkloadSetup setup = MakeSetup();

  if (!scan_only) {
    std::printf("=== bench_partitions (paper Fig 9a/10a) ===\n");
    struct BucketChoice {
      const char* label;
      std::uint32_t size;  // 0 = "all": one bucket spanning the partition
    };
    const BucketChoice buckets[] = {
        {"1024", 1024},
        {"3072", 3072},
        {"all", 0},  // pure column store: bucket covers the whole partition
    };

    std::printf("%-10s %-6s %14s %16s %14s\n", "bucket", "n", "rta_mean_ms",
                "rta_qps", "esp_eps");
    for (const BucketChoice& bucket : buckets) {
      for (std::uint32_t n : {1u, 2u, 3u, 4u}) {
        // "all" must size the single bucket to the partition's actual record
        // capacity — a fixed huge constant would allocate the whole bucket
        // (bucket_size x record_size bytes) up front.
        const std::uint32_t bucket_size =
            bucket.size != 0
                ? bucket.size
                : static_cast<std::uint32_t>(entities * 2 / n + 4096);
        auto cluster = MakeCluster(setup, entities, /*nodes=*/1,
                                   /*partitions=*/n, /*esp_threads=*/1,
                                   bucket_size);
        MixedOptions opts;
        opts.entities = entities;
        opts.target_eps = target_eps;
        opts.clients = 4;
        opts.seconds = seconds;
        const MixedResult r = RunMixedWorkload(cluster.get(), setup, opts);
        cluster->Stop();
        std::printf("%-10s %-6u %14.2f %16.1f %14.0f\n", bucket.label, n,
                    r.rta_lat.MeanMicros() / 1e3, r.rta_qps, r.esp_eps);
      }
    }
    std::printf("\nExpected shape: bucket size has minor impact (>=32); more "
                "partitions than cores degrades both sides (thread "
                "thrashing, paper §5.2).\n\n");
  }

  // --- Scan-executor sweep: {dispatch tier} x {pool workers} x {morsel} ---
  std::printf("=== scan-executor sweep (tier x pool x morsel) ===\n");
  const simd::SimdLevel max_tier = simd::MaxSupportedLevel();
  const simd::SimdLevel startup_tier = simd::ActiveLevel();
  std::vector<ScanPoint> sweep;

  std::printf("%-8s %-8s %-8s %14s %12s %14s %12s\n", "tier", "pool",
              "morsel", "rta_mean_ms", "rta_p99_ms", "rta_qps", "esp_eps");
  for (std::uint32_t pool_threads : {0u, 1u, 2u}) {
    for (std::uint32_t morsel : {4u, 16u, 64u}) {
      // One cluster per (pool, morsel) point; the dispatch tier is a
      // process-wide runtime switch, so all tiers share the loaded state.
      auto cluster =
          MakeScanCluster(setup, entities, pool_threads, morsel);
      for (int t = 0; t <= static_cast<int>(max_tier); ++t) {
        ScanPoint p;
        p.tier = static_cast<simd::SimdLevel>(t);
        p.pool_threads = pool_threads;
        p.morsel_buckets = morsel;
        AIM_CHECK(simd::SetLevel(p.tier) == p.tier);
        MixedOptions opts;
        opts.entities = entities;
        opts.target_eps = target_eps;
        opts.clients = 4;
        opts.seconds = seconds;
        const MixedResult r = RunMixedWorkload(cluster.get(), setup, opts);
        p.rta_mean_ms = r.rta_lat.MeanMicros() / 1e3;
        p.rta_p99_ms = r.rta_lat.PercentileMicros(0.99) / 1e3;
        p.rta_qps = r.rta_qps;
        p.esp_eps = r.esp_eps;
        sweep.push_back(p);
        std::printf("%-8s %-8u %-8u %14.2f %12.2f %14.1f %12.0f\n",
                    simd::SimdLevelName(p.tier), pool_threads, morsel,
                    p.rta_mean_ms, p.rta_p99_ms, p.rta_qps, p.esp_eps);
      }
      simd::SetLevel(startup_tier);
      cluster->Stop();
    }
  }

  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("\nhost cores: %u. On a single-core host pool_threads > 0 "
              "measures morsel-board coordination overhead, not speedup; "
              "cooperative-execution correctness is test-verified "
              "(scan_pool_test, scan_pool_stress_test).\n",
              cores);

  if (json_path != nullptr) {
    FILE* f = std::fopen(json_path, "w");
    AIM_CHECK_MSG(f != nullptr, "cannot open --json path");
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"bench_partitions_scan_sweep\",\n");
    std::fprintf(f, "  \"git_sha\": \"%s\",\n", GitSha().c_str());
    std::fprintf(f, "  \"build_type\": \"%s\",\n", BuildType());
    std::fprintf(f,
                 "  \"scale\": {\"entities\": %llu, \"partitions\": 2, "
                 "\"bucket_size\": 256, \"seconds\": %g, \"target_eps\": "
                 "%g, \"clients\": 4},\n",
                 static_cast<unsigned long long>(entities), seconds,
                 target_eps);
    std::fprintf(f, "  \"host_cores\": %u,\n", cores);
    std::fprintf(f, "  \"max_simd_tier\": \"%s\",\n",
                 simd::SimdLevelName(max_tier));
    std::fprintf(f,
                 "  \"caveat\": \"single-core hosts timeshare pool workers "
                 "with the coordinator and the ESP thread, so pool_threads "
                 "> 0 rows measure morsel-board coordination overhead, not "
                 "parallel speedup; cooperative execution is "
                 "correctness-verified by scan_pool_test and "
                 "scan_pool_stress_test, and the scaling claim needs "
                 "host_cores > 2\",\n");
    std::fprintf(f, "  \"sweep\": [\n");
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      const ScanPoint& p = sweep[i];
      std::fprintf(f,
                   "    {\"tier\": \"%s\", \"pool_threads\": %u, "
                   "\"morsel_buckets\": %u, \"rta_mean_ms\": %.3f, "
                   "\"rta_p99_ms\": %.3f, \"rta_qps\": %.1f, "
                   "\"esp_eps\": %.0f}%s\n",
                   simd::SimdLevelName(p.tier), p.pool_threads,
                   p.morsel_buckets, p.rta_mean_ms, p.rta_p99_ms, p.rta_qps,
                   p.esp_eps, i + 1 < sweep.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n");
    std::fprintf(f, "}\n");
    std::fclose(f);
  }
  return 0;
}
