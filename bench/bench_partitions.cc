// bench_partitions — paper Figures 9a / 10a: RTA response time and
// throughput for different numbers of data partitions (= RTA scan threads)
// n and different ColumnMap Bucket Sizes, on a single storage server with a
// fixed event rate.
//
// Paper shape to reproduce: performance improves with n until the node's
// cores are oversubscribed, and Bucket Size barely matters once it is large
// enough to saturate the SIMD registers (>= 32), with PAX slightly ahead of
// the pure column store ("all"). On our 1-core VM the n-sweep saturates at
// n=1-2 — the oversubscription penalty appears immediately, which is the
// same effect the paper sees at n=6 on 8 cores.

#include "bench_common.h"

using namespace aim;
using namespace aim::bench;

int main() {
  std::printf("=== bench_partitions (paper Fig 9a/10a) ===\n");
  const std::uint64_t entities = 8000;
  WorkloadSetup setup = MakeSetup();

  struct BucketChoice {
    const char* label;
    std::uint32_t size;  // 0 = "all": one bucket spanning the partition
  };
  const BucketChoice buckets[] = {
      {"1024", 1024},
      {"3072", 3072},
      {"all", 0},  // pure column store: bucket covers the whole partition
  };

  std::printf("%-10s %-6s %14s %16s %14s\n", "bucket", "n", "rta_mean_ms",
              "rta_qps", "esp_eps");
  for (const BucketChoice& bucket : buckets) {
    for (std::uint32_t n : {1u, 2u, 3u, 4u}) {
      // "all" must size the single bucket to the partition's actual record
      // capacity — a fixed huge constant would allocate the whole bucket
      // (bucket_size x record_size bytes) up front.
      const std::uint32_t bucket_size =
          bucket.size != 0
              ? bucket.size
              : static_cast<std::uint32_t>(entities * 2 / n + 4096);
      auto cluster = MakeCluster(setup, entities, /*nodes=*/1,
                                 /*partitions=*/n, /*esp_threads=*/1,
                                 bucket_size);
      MixedOptions opts;
      opts.entities = entities;
      opts.target_eps = 1000;
      opts.clients = 4;
      opts.seconds = 2.5;
      const MixedResult r = RunMixedWorkload(cluster.get(), setup, opts);
      cluster->Stop();
      std::printf("%-10s %-6u %14.2f %16.1f %14.0f\n", bucket.label, n,
                  r.rta_lat.MeanMicros() / 1e3, r.rta_qps, r.esp_eps);
    }
  }
  std::printf("\nExpected shape: bucket size has minor impact (>=32); more "
              "partitions than cores degrades both sides (thread "
              "thrashing, paper §5.2).\n");
  return 0;
}
