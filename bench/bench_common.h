#ifndef AIM_BENCH_BENCH_COMMON_H_
#define AIM_BENCH_BENCH_COMMON_H_

// Shared driver for the system-level benches: loads a cluster with the
// benchmark workload and runs the paper's mixed workload — a paced CDR
// stream plus c closed-loop RTA clients drawing uniformly from the seven
// Table-5 queries — reporting throughput and latency for both sides.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "aim/common/clock.h"
#include "aim/common/latency_recorder.h"
#include "aim/server/aim_cluster.h"
#include "aim/workload/benchmark_schema.h"
#include "aim/workload/cdr_generator.h"
#include "aim/workload/dimension_data.h"
#include "aim/workload/kpi.h"
#include "aim/workload/query_workload.h"
#include "aim/workload/rules_generator.h"

namespace aim {
namespace bench {

struct WorkloadSetup {
  std::unique_ptr<Schema> schema;
  BenchmarkDims dims;
  std::vector<Rule> rules;
};

/// Builds the full 546-indicator benchmark environment (schema, dimension
/// data, 300 rules).
inline WorkloadSetup MakeSetup(bool full_schema = true,
                               std::size_t num_rules = 300) {
  WorkloadSetup s;
  s.schema = full_schema ? MakeBenchmarkSchema() : MakeCompactSchema();
  s.dims = MakeBenchmarkDims();
  RulesGeneratorOptions ropts;
  ropts.num_rules = num_rules;
  s.rules = MakeBenchmarkRules(*s.schema, ropts);
  return s;
}

/// Loads `entities` profiles into the cluster (pre-Start).
inline void LoadCluster(AimCluster* cluster, const WorkloadSetup& s,
                        std::uint64_t entities) {
  std::vector<std::uint8_t> row(s.schema->record_size(), 0);
  for (EntityId e = 1; e <= entities; ++e) {
    std::fill(row.begin(), row.end(), 0);
    PopulateEntityProfile(*s.schema, s.dims, e, entities, row.data());
    AIM_CHECK(cluster->LoadEntity(e, row.data()).ok());
  }
}

struct MixedResult {
  double esp_eps = 0;  // achieved event throughput
  double rta_qps = 0;  // achieved query throughput
  LatencyRecorder esp_lat;
  LatencyRecorder rta_lat;
  std::uint64_t events = 0;
  std::uint64_t queries = 0;
};

struct MixedOptions {
  std::uint64_t entities = 10000;
  double target_eps = 0;  // 0 = as fast as possible
  int clients = 4;        // closed-loop RTA clients (paper's c)
  double seconds = 3.0;
  /// Q numbers drawn round-robin; default = the full seven-query mix.
  std::vector<int> query_mix = {1, 2, 3, 4, 5, 6, 7};
};

/// Runs the mixed workload against a started cluster.
inline MixedResult RunMixedWorkload(AimCluster* cluster,
                                    const WorkloadSetup& s,
                                    const MixedOptions& opts) {
  MixedResult result;
  std::atomic<bool> stop{false};

  std::thread esp_driver([&] {
    CdrGenerator::Options gopts;
    gopts.num_entities = opts.entities;
    CdrGenerator gen(gopts);
    Timestamp now = 0;
    EventCompletion done;
    Stopwatch sw;
    Stopwatch pace;
    std::uint64_t sent = 0;
    while (!stop.load(std::memory_order_acquire)) {
      if (opts.target_eps > 0) {
        // Open-loop pacing: do not run ahead of the target rate.
        const double due = static_cast<double>(sent) / opts.target_eps;
        if (pace.ElapsedSeconds() < due) {
          std::this_thread::sleep_for(std::chrono::microseconds(50));
          continue;
        }
      }
      const bool sample = sent % 64 == 0;
      if (sample) {
        done.Reset();
        sw.Restart();
        if (!cluster->IngestEvent(gen.Next(now += 10), &done)) break;
        done.Wait();
        result.esp_lat.Record(sw.ElapsedMicros());
      } else if (!cluster->IngestEvent(gen.Next(now += 10), nullptr)) {
        break;
      }
      ++sent;
    }
    result.events = sent;
  });

  std::vector<LatencyRecorder> client_lat(opts.clients);
  std::atomic<std::uint64_t> queries{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < opts.clients; ++c) {
    clients.emplace_back([&, c] {
      QueryWorkload workload(s.schema.get(), &s.dims, 9000 + c);
      Stopwatch sw;
      std::size_t i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const Query q =
            workload.Make(opts.query_mix[i++ % opts.query_mix.size()]);
        sw.Restart();
        const QueryResult r = cluster->ExecuteQuery(q);
        if (!r.status.ok()) break;
        client_lat[c].Record(sw.ElapsedMicros());
        queries.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  Stopwatch run;
  while (run.ElapsedSeconds() < opts.seconds) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  stop.store(true, std::memory_order_release);
  esp_driver.join();
  for (auto& t : clients) t.join();
  const double elapsed = run.ElapsedSeconds();

  for (const auto& l : client_lat) result.rta_lat.Merge(l);
  result.queries = queries.load();
  result.esp_eps = static_cast<double>(result.events) / elapsed;
  result.rta_qps = static_cast<double>(result.queries) / elapsed;
  return result;
}

// ---------------------------------------------------------------------------
// Machine-readable output: a small flag parser plus a KPI JSON writer, so CI
// (and any dashboard) can consume bench results without scraping stdout.
// ---------------------------------------------------------------------------

/// Looks up `--name=value` in argv; returns nullptr when absent.
inline const char* FlagValue(int argc, char** argv, const char* name) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return nullptr;
}

inline double FlagDouble(int argc, char** argv, const char* name,
                         double fallback) {
  const char* v = FlagValue(argc, argv, name);
  return v != nullptr ? std::atof(v) : fallback;
}

inline std::uint64_t FlagUint(int argc, char** argv, const char* name,
                              std::uint64_t fallback) {
  const char* v = FlagValue(argc, argv, name);
  return v != nullptr ? std::strtoull(v, nullptr, 10) : fallback;
}

/// Current commit sha (best effort — "unknown" outside a git checkout).
inline std::string GitSha() {
  std::string sha = "unknown";
#if !defined(_WIN32)
  if (FILE* p = popen("git rev-parse HEAD 2>/dev/null", "r")) {
    char buf[64] = {0};
    if (std::fgets(buf, sizeof(buf), p) != nullptr) {
      std::string s(buf);
      while (!s.empty() && (s.back() == '\n' || s.back() == '\r')) s.pop_back();
      if (s.size() == 40) sha = s;
    }
    pclose(p);
  }
#endif
  return sha;
}

inline const char* BuildType() {
#if defined(NDEBUG)
  return "Release";
#else
  return "Debug";
#endif
}

struct BenchRunInfo {
  std::string bench_name;
  std::uint64_t entities = 0;
  std::uint32_t nodes = 1;
  std::uint32_t partitions = 1;
  std::uint32_t esp_threads = 1;
  double seconds = 0;
  double target_eps = 0;
  int clients = 0;
};

/// Writes the run's KPIs + verdicts + provenance as one JSON document. The
/// schema is stable (consumed by the CI bench-kpi job and committed as
/// BENCH_kpi.json at the repo root); extend, do not rename.
inline bool WriteKpiJson(const char* path, const BenchRunInfo& info,
                         const KpiReport& report, const KpiTargets& targets,
                         double f_esp_per_entity_hour) {
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return false;
  }
  const bool esp_ok = report.MeetsEsp(targets);
  const bool f_esp_ok = f_esp_per_entity_hour >= targets.f_esp_per_hour;
  const bool rta_lat_ok = report.rta_mean_ms <= targets.t_rta_ms;
  const bool rta_qps_ok = report.rta_throughput_qps >= targets.f_rta_qps;
  const bool fresh_ok = report.fresh_ms >= 0 && report.MeetsFreshness(targets);
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"%s\",\n", info.bench_name.c_str());
  std::fprintf(f, "  \"git_sha\": \"%s\",\n", GitSha().c_str());
  std::fprintf(f, "  \"build_type\": \"%s\",\n", BuildType());
  std::fprintf(f,
               "  \"scale\": {\"entities\": %llu, \"nodes\": %u, "
               "\"partitions\": %u, \"esp_threads\": %u, \"seconds\": %g, "
               "\"target_eps\": %g, \"clients\": %d},\n",
               static_cast<unsigned long long>(info.entities), info.nodes,
               info.partitions, info.esp_threads, info.seconds,
               info.target_eps, info.clients);
  std::fprintf(f, "  \"kpis\": {\n");
  std::fprintf(f,
               "    \"t_esp_ms\": {\"value\": %.4f, \"p99\": %.4f, "
               "\"target\": %.4f, \"pass\": %s},\n",
               report.esp_mean_ms, report.esp_p99_ms, targets.t_esp_ms,
               esp_ok ? "true" : "false");
  std::fprintf(f,
               "    \"f_esp_per_entity_hour\": {\"value\": %.4f, "
               "\"target\": %.4f, \"pass\": %s},\n",
               f_esp_per_entity_hour, targets.f_esp_per_hour,
               f_esp_ok ? "true" : "false");
  std::fprintf(f,
               "    \"t_rta_ms\": {\"value\": %.4f, \"p99\": %.4f, "
               "\"target\": %.4f, \"pass\": %s},\n",
               report.rta_mean_ms, report.rta_p99_ms, targets.t_rta_ms,
               rta_lat_ok ? "true" : "false");
  std::fprintf(f,
               "    \"f_rta_qps\": {\"value\": %.4f, \"target\": %.4f, "
               "\"pass\": %s},\n",
               report.rta_throughput_qps, targets.f_rta_qps,
               rta_qps_ok ? "true" : "false");
  std::fprintf(f,
               "    \"t_fresh_ms\": {\"value\": %.4f, \"target\": %.4f, "
               "\"pass\": %s}\n",
               report.fresh_ms, targets.t_fresh_ms,
               fresh_ok ? "true" : "false");
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"esp_throughput_eps\": %.2f,\n",
               report.esp_throughput_eps);
  std::fprintf(f, "  \"all_pass\": %s\n",
               (esp_ok && f_esp_ok && rta_lat_ok && rta_qps_ok && fresh_ok)
                   ? "true"
                   : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  return true;
}

/// Convenience: builds, loads and starts a cluster.
inline std::unique_ptr<AimCluster> MakeCluster(
    const WorkloadSetup& s, std::uint64_t entities, std::uint32_t nodes,
    std::uint32_t partitions, std::uint32_t esp_threads,
    std::uint32_t bucket_size = ColumnMap::kDefaultBucketSize) {
  AimCluster::Options copts;
  copts.num_nodes = nodes;
  copts.node.num_partitions = partitions;
  copts.node.num_esp_threads = esp_threads;
  copts.node.bucket_size = bucket_size;
  copts.node.max_records_per_partition =
      entities * 2 / (nodes * partitions) + 4096;
  auto cluster = std::make_unique<AimCluster>(s.schema.get(), &s.dims.catalog,
                                              &s.rules, copts);
  LoadCluster(cluster.get(), s, entities);
  AIM_CHECK(cluster->Start().ok());
  return cluster;
}

}  // namespace bench
}  // namespace aim

#endif  // AIM_BENCH_BENCH_COMMON_H_
