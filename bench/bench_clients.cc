// bench_clients — paper Figures 9b / 10b: RTA response time and throughput
// as the number of closed-loop RTA clients c grows from 1 to 16 on one
// storage server. The client count bounds the shared-scan batch size, so
// this is also the batch-size robustness experiment.
//
// Paper shape to reproduce: throughput rises with c until saturation, then
// stays FLAT (robustness: no drop past saturation); response time grows
// roughly linearly with c, not exponentially.

#include "bench_common.h"

using namespace aim;
using namespace aim::bench;

int main() {
  std::printf("=== bench_clients (paper Fig 9b/10b) ===\n");
  const std::uint64_t entities = 8000;
  WorkloadSetup setup = MakeSetup();

  std::printf("%-6s %14s %14s %16s %14s\n", "c", "rta_mean_ms", "rta_p95_ms",
              "rta_qps", "esp_eps");
  for (int c : {1, 2, 4, 8, 12, 16}) {
    auto cluster = MakeCluster(setup, entities, /*nodes=*/1, /*partitions=*/2,
                               /*esp_threads=*/1);
    MixedOptions opts;
    opts.entities = entities;
    opts.target_eps = 1000;
    opts.clients = c;
    opts.seconds = 2.5;
    const MixedResult r = RunMixedWorkload(cluster.get(), setup, opts);
    cluster->Stop();
    std::printf("%-6d %14.2f %14.2f %16.1f %14.0f\n", c,
                r.rta_lat.MeanMicros() / 1e3,
                r.rta_lat.PercentileMicros(0.95) / 1e3, r.rta_qps, r.esp_eps);
  }
  std::printf("\nExpected shape: throughput saturates then stays flat; "
              "latency grows linearly with c (paper §5.3).\n");
  return 0;
}
