// bench_scalability — paper Figure 11: grow servers AND load together (per
// added server: +10M entities, +10k events/s in the paper; scaled here to
// +4000 entities, +400 events/s per node). Ideal scalability = flat lines.
// The paper's deviation comes from synchronization + result merging, which
// it compensates by raising the client count c from 8 to 12 for the larger
// configurations — reproduced here with the c=4 vs c=6 pair.

#include "bench_common.h"

using namespace aim;
using namespace aim::bench;

int main() {
  std::printf("=== bench_scalability (paper Fig 11) ===\n");
  WorkloadSetup setup = MakeSetup();

  std::printf("%-8s %10s %10s %6s %14s %16s %14s\n", "nodes", "entities",
              "ev/s", "c", "rta_mean_ms", "rta_qps", "esp_eps");
  for (std::uint32_t nodes : {1u, 2u, 3u, 4u}) {
    const std::uint64_t entities = 4000ull * nodes;
    const double eps = 400.0 * nodes;
    for (int c : {4, 6}) {
      auto cluster = MakeCluster(setup, entities, nodes, /*partitions=*/1,
                                 /*esp_threads=*/1);
      MixedOptions opts;
      opts.entities = entities;
      opts.target_eps = eps;
      opts.clients = c;
      opts.seconds = 2.5;
      const MixedResult r = RunMixedWorkload(cluster.get(), setup, opts);
      cluster->Stop();
      std::printf("%-8u %10llu %10.0f %6d %14.2f %16.1f %14.0f\n", nodes,
                  static_cast<unsigned long long>(entities), eps, c,
                  r.rta_lat.MeanMicros() / 1e3, r.rta_qps, r.esp_eps);
    }
  }
  std::printf("\nExpected shape: per-configuration KPIs stay within bounds; "
              "response time creeps up with the node count (merge overhead) "
              "and the larger c recovers throughput at a response-time cost "
              "(paper §5.5).\n");
  return 0;
}
