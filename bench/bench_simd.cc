// bench_simd — paper §4.7.1 ablation: SIMD versus scalar scan kernels
// (filter and masked aggregation) at the default bucket size, swept across
// every dispatch tier the host supports (scalar / AVX2 / AVX-512 via
// simd::SetLevel). The paper's motivation for ColumnMap is precisely that
// these kernels need contiguous column data; the expected shape is a
// multi-x win per ISA generation on 4-byte columns.
//
// Each benchmark takes the tier as its range argument (0 = scalar,
// 1 = AVX2, 2 = AVX-512); unsupported tiers are skipped at run time, so
// the same binary sweeps whatever the host offers. `--json=PATH` emits
// google-benchmark's JSON report (custom main below).

#include <cstring>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "aim/common/random.h"
#include "aim/rta/simd.h"

namespace aim {
namespace {

constexpr std::uint32_t kBucket = 3072;  // paper default bucket size

std::vector<std::uint8_t> MakeColumn(ValueType type, std::uint32_t n) {
  Random rng(9);
  std::vector<std::uint8_t> col(n * ValueTypeSize(type));
  for (std::uint32_t i = 0; i < n; ++i) {
    if (type == ValueType::kInt32) {
      const std::int32_t v = static_cast<std::int32_t>(rng.Uniform(100));
      std::memcpy(col.data() + i * 4, &v, 4);
    } else {
      const float v = static_cast<float>(rng.Uniform(1000)) / 10.0f;
      std::memcpy(col.data() + i * 4, &v, 4);
    }
  }
  return col;
}

/// Pins the dispatch tier for one benchmark run; restores on destruction so
/// tiers do not leak across benchmarks. Returns false (after SkipWithError)
/// when the host cannot run the requested tier.
class TierGuard {
 public:
  explicit TierGuard(benchmark::State& state)
      : prev_(simd::ActiveLevel()) {
    const auto want = static_cast<simd::SimdLevel>(state.range(0));
    if (simd::SetLevel(want) != want) {
      state.SkipWithError("tier unsupported on this host");
      ok_ = false;
    }
    state.SetLabel(simd::SimdLevelName(want));
  }
  ~TierGuard() { simd::SetLevel(prev_); }
  bool ok() const { return ok_; }

 private:
  simd::SimdLevel prev_;
  bool ok_ = true;
};

void BM_FilterI32(benchmark::State& state) {
  TierGuard tier(state);
  if (!tier.ok()) return;
  const auto col = MakeColumn(ValueType::kInt32, kBucket);
  std::vector<std::uint8_t> mask(kBucket);
  for (auto _ : state) {
    simd::FilterColumn(ValueType::kInt32, col.data(), kBucket, CmpOp::kGt,
                       Value::Int32(50), mask.data(), false);
    benchmark::DoNotOptimize(mask.data());
  }
  state.SetItemsProcessed(state.iterations() * kBucket);
}
BENCHMARK(BM_FilterI32)->DenseRange(0, 2);

void BM_FilterF32(benchmark::State& state) {
  TierGuard tier(state);
  if (!tier.ok()) return;
  const auto col = MakeColumn(ValueType::kFloat, kBucket);
  std::vector<std::uint8_t> mask(kBucket);
  for (auto _ : state) {
    simd::FilterColumn(ValueType::kFloat, col.data(), kBucket, CmpOp::kLt,
                       Value::Float(42.0f), mask.data(), false);
    benchmark::DoNotOptimize(mask.data());
  }
  state.SetItemsProcessed(state.iterations() * kBucket);
}
BENCHMARK(BM_FilterF32)->DenseRange(0, 2);

void BM_MaskedAggF32(benchmark::State& state) {
  TierGuard tier(state);
  if (!tier.ok()) return;
  const auto col = MakeColumn(ValueType::kFloat, kBucket);
  std::vector<std::uint8_t> mask(kBucket, 0xff);
  for (std::uint32_t i = 0; i < kBucket; i += 3) mask[i] = 0;
  for (auto _ : state) {
    simd::AggAccum acc;
    simd::MaskedAggregate(ValueType::kFloat, col.data(), mask.data(),
                          kBucket, &acc);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * kBucket);
}
BENCHMARK(BM_MaskedAggF32)->DenseRange(0, 2);

void BM_MaskedAggI32(benchmark::State& state) {
  TierGuard tier(state);
  if (!tier.ok()) return;
  const auto col = MakeColumn(ValueType::kInt32, kBucket);
  std::vector<std::uint8_t> mask(kBucket, 0xff);
  for (auto _ : state) {
    simd::AggAccum acc;
    simd::MaskedAggregate(ValueType::kInt32, col.data(), mask.data(),
                          kBucket, &acc);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * kBucket);
}
BENCHMARK(BM_MaskedAggI32)->DenseRange(0, 2);

void BM_CountMask(benchmark::State& state) {
  TierGuard tier(state);
  if (!tier.ok()) return;
  std::vector<std::uint8_t> mask(kBucket);
  Random rng(11);
  for (auto& b : mask) b = rng.Uniform(2) ? 0xff : 0x00;
  for (auto _ : state) {
    benchmark::DoNotOptimize(simd::CountMask(mask.data(), kBucket));
  }
  state.SetItemsProcessed(state.iterations() * kBucket);
}
BENCHMARK(BM_CountMask)->DenseRange(0, 2);

}  // namespace
}  // namespace aim

/// Custom main instead of benchmark_main: maps the repo-wide `--json=PATH`
/// flag onto google-benchmark's JSON reporter so every bench binary shares
/// one machine-readable output convention (see bench_common.h).
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag;
  constexpr char kJsonPrefix[] = "--json=";
  constexpr char kJsonFormat[] = "--benchmark_out_format=json";
  char format_flag[sizeof(kJsonFormat)];
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (std::strncmp(args[i], kJsonPrefix, sizeof(kJsonPrefix) - 1) == 0) {
      out_flag = std::string("--benchmark_out=") +
                 (args[i] + sizeof(kJsonPrefix) - 1);
      std::memcpy(format_flag, kJsonFormat, sizeof(kJsonFormat));
      args[i] = format_flag;
      args.push_back(out_flag.data());
      break;
    }
  }
  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(adjusted_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
