// bench_simd — paper §4.7.1 ablation: SIMD versus scalar scan kernels
// (filter and masked aggregation) at the default bucket size. The paper's
// motivation for ColumnMap is precisely that these kernels need contiguous
// column data; the expected shape is a multi-x win for AVX2 on 4-byte
// columns.

#include <cstring>
#include <vector>

#include <benchmark/benchmark.h>

#include "aim/common/random.h"
#include "aim/rta/simd.h"

namespace aim {
namespace {

constexpr std::uint32_t kBucket = 3072;  // paper default bucket size

std::vector<std::uint8_t> MakeColumn(ValueType type, std::uint32_t n) {
  Random rng(9);
  std::vector<std::uint8_t> col(n * ValueTypeSize(type));
  for (std::uint32_t i = 0; i < n; ++i) {
    if (type == ValueType::kInt32) {
      const std::int32_t v = static_cast<std::int32_t>(rng.Uniform(100));
      std::memcpy(col.data() + i * 4, &v, 4);
    } else {
      const float v = static_cast<float>(rng.Uniform(1000)) / 10.0f;
      std::memcpy(col.data() + i * 4, &v, 4);
    }
  }
  return col;
}

void BM_FilterI32_Simd(benchmark::State& state) {
  const auto col = MakeColumn(ValueType::kInt32, kBucket);
  std::vector<std::uint8_t> mask(kBucket);
  for (auto _ : state) {
    simd::FilterColumn(ValueType::kInt32, col.data(), kBucket, CmpOp::kGt,
                       Value::Int32(50), mask.data(), false);
    benchmark::DoNotOptimize(mask.data());
  }
  state.SetItemsProcessed(state.iterations() * kBucket);
}
BENCHMARK(BM_FilterI32_Simd);

void BM_FilterI32_Scalar(benchmark::State& state) {
  const auto col = MakeColumn(ValueType::kInt32, kBucket);
  std::vector<std::uint8_t> mask(kBucket);
  for (auto _ : state) {
    simd::FilterColumnScalar(ValueType::kInt32, col.data(), kBucket,
                             CmpOp::kGt, Value::Int32(50), mask.data(),
                             false);
    benchmark::DoNotOptimize(mask.data());
  }
  state.SetItemsProcessed(state.iterations() * kBucket);
}
BENCHMARK(BM_FilterI32_Scalar);

void BM_FilterF32_Simd(benchmark::State& state) {
  const auto col = MakeColumn(ValueType::kFloat, kBucket);
  std::vector<std::uint8_t> mask(kBucket);
  for (auto _ : state) {
    simd::FilterColumn(ValueType::kFloat, col.data(), kBucket, CmpOp::kLt,
                       Value::Float(42.0f), mask.data(), false);
    benchmark::DoNotOptimize(mask.data());
  }
  state.SetItemsProcessed(state.iterations() * kBucket);
}
BENCHMARK(BM_FilterF32_Simd);

void BM_FilterF32_Scalar(benchmark::State& state) {
  const auto col = MakeColumn(ValueType::kFloat, kBucket);
  std::vector<std::uint8_t> mask(kBucket);
  for (auto _ : state) {
    simd::FilterColumnScalar(ValueType::kFloat, col.data(), kBucket,
                             CmpOp::kLt, Value::Float(42.0f), mask.data(),
                             false);
    benchmark::DoNotOptimize(mask.data());
  }
  state.SetItemsProcessed(state.iterations() * kBucket);
}
BENCHMARK(BM_FilterF32_Scalar);

void BM_MaskedAggF32_Simd(benchmark::State& state) {
  const auto col = MakeColumn(ValueType::kFloat, kBucket);
  std::vector<std::uint8_t> mask(kBucket, 0xff);
  for (std::uint32_t i = 0; i < kBucket; i += 3) mask[i] = 0;
  for (auto _ : state) {
    simd::AggAccum acc;
    simd::MaskedAggregate(ValueType::kFloat, col.data(), mask.data(),
                          kBucket, &acc);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * kBucket);
}
BENCHMARK(BM_MaskedAggF32_Simd);

void BM_MaskedAggF32_Scalar(benchmark::State& state) {
  const auto col = MakeColumn(ValueType::kFloat, kBucket);
  std::vector<std::uint8_t> mask(kBucket, 0xff);
  for (std::uint32_t i = 0; i < kBucket; i += 3) mask[i] = 0;
  for (auto _ : state) {
    simd::AggAccum acc;
    simd::MaskedAggregateScalar(ValueType::kFloat, col.data(), mask.data(),
                                kBucket, &acc);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * kBucket);
}
BENCHMARK(BM_MaskedAggF32_Scalar);

void BM_MaskedAggI32_Simd(benchmark::State& state) {
  const auto col = MakeColumn(ValueType::kInt32, kBucket);
  std::vector<std::uint8_t> mask(kBucket, 0xff);
  for (auto _ : state) {
    simd::AggAccum acc;
    simd::MaskedAggregate(ValueType::kInt32, col.data(), mask.data(),
                          kBucket, &acc);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * kBucket);
}
BENCHMARK(BM_MaskedAggI32_Simd);

void BM_MaskedAggI32_Scalar(benchmark::State& state) {
  const auto col = MakeColumn(ValueType::kInt32, kBucket);
  std::vector<std::uint8_t> mask(kBucket, 0xff);
  for (auto _ : state) {
    simd::AggAccum acc;
    simd::MaskedAggregateScalar(ValueType::kInt32, col.data(), mask.data(),
                                kBucket, &acc);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * kBucket);
}
BENCHMARK(BM_MaskedAggI32_Scalar);

}  // namespace
}  // namespace aim
