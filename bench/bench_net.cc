// bench_net — what the real TCP transport costs on loopback: per-event and
// per-query round-trip latency through TcpClient -> TcpServer -> StorageNode
// against the identical requests through the in-process channel. The gap is
// pure transport overhead (framing, syscalls, loopback stack), the floor any
// distributed deployment of the cluster pays per §4.2 round trip.
//
//   $ ./bench_net [--entities=N] [--events=N] [--queries=N]
//
// Ends with a Prometheus snapshot of the registry so the aim_net_* series
// (frames, bytes, reconnects, timeouts) are visible alongside the node
// metrics.

#include "aim/net/tcp_client.h"
#include "aim/net/tcp_server.h"
#include "aim/server/local_node_channel.h"
#include "bench_common.h"

using namespace aim;
using namespace aim::bench;

namespace {

/// One synchronous query round trip through any channel.
double QueryRoundTripMicros(NodeChannel* channel,
                            const std::vector<std::uint8_t>& wire) {
  std::atomic<bool> done{false};
  Stopwatch sw;
  AIM_CHECK(channel->SubmitQuery(
      wire, [&done](std::vector<std::uint8_t>&& bytes) {
        AIM_CHECK(!bytes.empty());
        done.store(true, std::memory_order_release);
      }));
  while (!done.load(std::memory_order_acquire)) std::this_thread::yield();
  return sw.ElapsedMicros();
}

struct RttResult {
  LatencyRecorder event_rtt;
  LatencyRecorder query_rtt;
};

RttResult MeasureChannel(NodeChannel* channel, const WorkloadSetup& setup,
                         std::uint64_t entities, std::uint64_t events,
                         std::uint64_t queries) {
  RttResult result;

  CdrGenerator::Options gopts;
  gopts.num_entities = entities;
  CdrGenerator gen(gopts);
  Timestamp now = 0;
  Stopwatch sw;
  for (std::uint64_t i = 0; i < events; ++i) {
    BinaryWriter writer;
    gen.Next(now += 10).Serialize(&writer);
    EventCompletion completion;
    sw.Restart();
    AIM_CHECK(channel->SubmitEvent(writer.TakeBuffer(), &completion));
    // Both channels guarantee completion: the in-process node drains its
    // queues, the TCP client fails lost replies at its request deadline.
    completion.Wait();
    AIM_CHECK(completion.status.ok());
    result.event_rtt.Record(sw.ElapsedMicros());
  }

  QueryWorkload workload(setup.schema.get(), &setup.dims, 4242);
  const int qnums[] = {1, 2, 3, 4, 5, 7};
  for (std::uint64_t i = 0; i < queries; ++i) {
    BinaryWriter writer;
    workload.Make(qnums[i % 6]).Serialize(&writer);
    result.query_rtt.Record(
        QueryRoundTripMicros(channel, writer.TakeBuffer()));
  }
  return result;
}

void PrintRow(const char* transport, const RttResult& r) {
  std::printf("%-12s %10.1f %10.1f %12.1f %12.1f\n", transport,
              r.event_rtt.PercentileMicros(0.5),
              r.event_rtt.PercentileMicros(0.99),
              r.query_rtt.PercentileMicros(0.5),
              r.query_rtt.PercentileMicros(0.99));
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t entities = FlagUint(argc, argv, "entities", 10000);
  const std::uint64_t events = FlagUint(argc, argv, "events", 20000);
  const std::uint64_t queries = FlagUint(argc, argv, "queries", 200);

  std::printf("bench_net: %llu entities, %llu events, %llu queries per "
              "transport\n",
              static_cast<unsigned long long>(entities),
              static_cast<unsigned long long>(events),
              static_cast<unsigned long long>(queries));

  WorkloadSetup setup = MakeSetup(/*full_schema=*/false);
  MetricsRegistry metrics;
  StorageNode::Options nopts;
  nopts.num_partitions = 2;
  nopts.max_records_per_partition = entities + 4096;
  nopts.metrics = &metrics;
  StorageNode node(setup.schema.get(), &setup.dims.catalog, &setup.rules,
                   nopts);
  std::vector<std::uint8_t> row(setup.schema->record_size(), 0);
  for (EntityId e = 1; e <= entities; ++e) {
    std::fill(row.begin(), row.end(), 0);
    PopulateEntityProfile(*setup.schema, setup.dims, e, entities, row.data());
    AIM_CHECK(node.BulkLoad(e, row.data()).ok());
  }
  AIM_CHECK(node.Start().ok());
  LocalNodeChannel local(&node);

  net::TcpServer::Options sopts;
  sopts.metrics = &metrics;
  net::TcpServer server(&local, sopts);
  AIM_CHECK(server.Start().ok());
  net::TcpClient::Options copts;
  copts.port = server.port();
  copts.metrics = &metrics;
  net::TcpClient client(copts);
  AIM_CHECK(client.Connect().ok());

  // Warm both paths (first scan cycles, page faults, TCP slow start).
  MeasureChannel(&local, setup, entities, 256, 8);
  MeasureChannel(&client, setup, entities, 256, 8);

  const RttResult in_process =
      MeasureChannel(&local, setup, entities, events, queries);
  const RttResult loopback =
      MeasureChannel(&client, setup, entities, events, queries);

  std::printf("\n%-12s %10s %10s %12s %12s  (micros)\n", "transport",
              "event p50", "event p99", "query p50", "query p99");
  PrintRow("in-process", in_process);
  PrintRow("tcp-loop", loopback);
  std::printf("\nper-event transport overhead (p50): %.1f us\n",
              loopback.event_rtt.PercentileMicros(0.5) -
                  in_process.event_rtt.PercentileMicros(0.5));

  client.Close();
  server.Stop();
  node.Stop();

  std::printf("\n=== metrics snapshot (Prometheus text format) ===\n%s",
              metrics.RenderPrometheus().c_str());
  return 0;
}
