// bench_rule_index — paper §4.4 micro-benchmark: straight-forward DNF
// evaluation (Algorithm 2) versus the Fabre-style predicate-counting rule
// index, varying the rule set size.
//
// Paper finding to reproduce: for the 300-rule benchmark set the index does
// NOT pay off; the crossover sits around a thousand rules ([13] p.26).

#include <cstdio>

#include "aim/common/clock.h"
#include "aim/esp/rule_eval.h"
#include "aim/esp/rule_index.h"
#include "aim/workload/benchmark_schema.h"
#include "aim/workload/cdr_generator.h"
#include "aim/workload/dimension_data.h"
#include "aim/workload/rules_generator.h"

using namespace aim;

namespace {

/// Builds a representative updated record + event stream to evaluate on.
struct EvalInput {
  std::vector<std::vector<std::uint8_t>> records;
  std::vector<Event> events;
};

EvalInput MakeInput(const Schema& schema, int n) {
  EvalInput in;
  Random rng(5);
  CdrGenerator::Options gopts;
  gopts.num_entities = 1000;
  CdrGenerator gen(gopts);
  for (int i = 0; i < n; ++i) {
    std::vector<std::uint8_t> row(schema.record_size(), 0);
    RecordView rec(&schema, row.data());
    for (std::uint16_t a = 0; a < schema.num_attributes(); ++a) {
      const Attribute& attr = schema.attribute(a);
      if (attr.kind != AttrKind::kIndicator) continue;
      if (attr.type == ValueType::kInt32) {
        rec.Set(a, Value::Int32(static_cast<std::int32_t>(rng.Uniform(30))));
      } else {
        rec.Set(a, Value::Float(static_cast<float>(rng.Uniform(8000))));
      }
    }
    in.records.push_back(std::move(row));
    in.events.push_back(gen.Next(1000 + i));
  }
  return in;
}

}  // namespace

int main() {
  std::printf("=== bench_rule_index (paper §4.4 micro-benchmark) ===\n");
  auto schema = MakeBenchmarkSchema();
  const EvalInput input = MakeInput(*schema, 200);

  std::printf("%-10s %18s %18s %10s\n", "#rules", "straight (ev/s)",
              "indexed (ev/s)", "speedup");
  for (std::size_t num_rules : {10u, 50u, 100u, 300u, 1000u, 2000u, 5000u}) {
    RulesGeneratorOptions ropts;
    ropts.num_rules = num_rules;
    const std::vector<Rule> rules = MakeBenchmarkRules(*schema, ropts);
    RuleEvaluator straight(&rules);
    RuleIndex index(&rules);
    RuleIndex::Scratch scratch;
    std::vector<std::uint32_t> matched;

    const int reps = num_rules >= 2000 ? 3 : 10;
    Stopwatch sw;
    std::uint64_t evals = 0;
    for (int r = 0; r < reps; ++r) {
      for (std::size_t i = 0; i < input.events.size(); ++i) {
        ConstRecordView rec(schema.get(), input.records[i].data());
        straight.Evaluate(input.events[i], rec, &matched);
        ++evals;
      }
    }
    const double straight_eps =
        static_cast<double>(evals) / sw.ElapsedSeconds();

    sw.Restart();
    evals = 0;
    for (int r = 0; r < reps; ++r) {
      for (std::size_t i = 0; i < input.events.size(); ++i) {
        ConstRecordView rec(schema.get(), input.records[i].data());
        index.Evaluate(input.events[i], rec, &scratch, &matched);
        ++evals;
      }
    }
    const double indexed_eps =
        static_cast<double>(evals) / sw.ElapsedSeconds();

    std::printf("%-10zu %18.0f %18.0f %9.2fx\n", num_rules, straight_eps,
                indexed_eps, indexed_eps / straight_eps);
  }
  std::printf("\nExpected shape: speedup < 1 for small rule sets (index "
              "overhead loses to Algorithm 2's early abort), crossing above "
              "1 somewhere near 10^3 rules (paper §4.4).\n");
  return 0;
}
