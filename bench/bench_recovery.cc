// bench_recovery — measures the recovery time objective (RTO) of the
// durability subsystem (docs/DURABILITY.md) at benchmark scale: how long a
// storage node takes from process start to serving again, for the two
// operational recovery shapes:
//
//   full                a checkpoint chain current through the end of the
//                       event log (the clean-shutdown case): recovery is
//                       checkpoint restore only, zero replay.
//   incremental_replay  an initial full checkpoint plus a mid-run
//                       incremental (delta) checkpoint, with the tail of
//                       the run only in the event log (the crash case):
//                       recovery is chain restore + log replay from the
//                       delta's recorded LSN.
//
// Both scenarios run the identical workload — bulk load, then a stream of
// CDR events through the real durable ingest path — so the reported RTOs
// are directly comparable. --json=PATH writes the rows as one JSON
// document (committed as BENCH_recovery.json, consumed by CI).
//
// Flags: --entities=N (10000) --events=K (20000) --partitions=P (4)
//        --json=PATH

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "aim/server/storage_node.h"
#include "aim/storage/fs_util.h"
#include "bench_common.h"

using namespace aim;
using namespace aim::bench;

namespace {

struct ScenarioResult {
  double rto_ms = 0;          // ctor + Recover + Start on the fresh node
  double recover_ms = 0;      // the Recover() call alone
  StorageNode::RecoveryStats stats;
};

void RemoveTreeRec(const std::string& root, std::uint32_t partitions) {
  for (std::uint32_t p = 0; p < partitions; ++p) {
    const std::string dir = root + "/p" + std::to_string(p);
    StatusOr<std::vector<std::string>> names = fs::ListDir(dir);
    if (names.ok()) {
      for (const std::string& n : *names) {
        std::remove((dir + "/" + n).c_str());
      }
    }
    ::rmdir(dir.c_str());
  }
  ::rmdir(root.c_str());
}

StorageNode::Options NodeOptions(const std::string& dir,
                                 std::uint32_t partitions,
                                 std::uint64_t entities) {
  StorageNode::Options opts;
  opts.node_id = 0;
  opts.num_partitions = partitions;
  opts.num_esp_threads = 2;
  opts.max_records_per_partition = entities * 2 + 1024;
  opts.scan_poll_micros = 200;
  opts.durability.dir = dir;
  return opts;
}

// Runs the workload into `dir`: bulk load + initial full checkpoint, then
// `events` CDR events through the durable ingest path. When
// `mid_run_checkpoint` an incremental checkpoint is requested at the half
// point; when `final_checkpoint` the chain is brought current at Stop.
void Populate(const WorkloadSetup& setup, const std::string& dir,
              std::uint64_t entities, std::uint64_t events,
              std::uint32_t partitions, bool mid_run_checkpoint,
              bool final_checkpoint) {
  StorageNode node(setup.schema.get(), &setup.dims.catalog, &setup.rules,
                   NodeOptions(dir, partitions, entities));
  AIM_CHECK(node.Recover().ok());
  std::vector<std::uint8_t> row(setup.schema->record_size(), 0);
  for (EntityId e = 1; e <= entities; ++e) {
    std::fill(row.begin(), row.end(), 0);
    PopulateEntityProfile(*setup.schema, setup.dims, e, entities, row.data());
    AIM_CHECK(node.BulkLoad(e, row.data()).ok());
  }
  AIM_CHECK(node.CheckpointNow().ok());  // epoch 1: the full base image
  AIM_CHECK(node.Start().ok());

  CdrGenerator::Options gopts;
  gopts.num_entities = entities;
  CdrGenerator gen(gopts);
  const std::uint64_t half = events / 2;
  for (std::uint64_t i = 0; i < events; ++i) {
    Event event = gen.Next(static_cast<Timestamp>(1000000 + i));
    BinaryWriter w;
    event.Serialize(&w);
    // A completion slot only where we synchronize — it must outlive the
    // ESP thread's write into it, so no slot for fire-and-forget events.
    const bool waits =
        (i + 1 == half && mid_run_checkpoint) || i + 1 == events;
    EventCompletion done;
    AIM_CHECK(node.SubmitEvent(w.TakeBuffer(), waits ? &done : nullptr));
    if (!waits) continue;
    done.Wait();
    AIM_CHECK(done.status.ok());
    if (i + 1 == half && mid_run_checkpoint) {
      const std::uint64_t want =
          node.checkpoints_completed() + partitions;
      node.RequestCheckpoint();
      while (node.checkpoints_completed() < want) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    }
  }
  node.Stop();
  if (final_checkpoint) AIM_CHECK(node.CheckpointNow().ok());
}

ScenarioResult MeasureRecovery(const WorkloadSetup& setup,
                               const std::string& dir,
                               std::uint64_t entities,
                               std::uint32_t partitions) {
  ScenarioResult r;
  Stopwatch total;
  StorageNode node(setup.schema.get(), &setup.dims.catalog, &setup.rules,
                   NodeOptions(dir, partitions, entities));
  Stopwatch recover;
  StatusOr<StorageNode::RecoveryStats> stats = node.Recover();
  r.recover_ms = recover.ElapsedMillis();
  AIM_CHECK(stats.ok());
  AIM_CHECK(!stats->cold_start);
  AIM_CHECK(node.Start().ok());
  r.rto_ms = total.ElapsedMillis();
  r.stats = *stats;
  node.Stop();
  return r;
}

void PrintScenario(const char* name, const ScenarioResult& r) {
  std::printf(
      "%-20s rto %8.2f ms  (recover %8.2f ms)  ckpts %llu  records %llu  "
      "batches %llu  events %llu\n",
      name, r.rto_ms, r.recover_ms,
      static_cast<unsigned long long>(r.stats.checkpoints_applied),
      static_cast<unsigned long long>(r.stats.records_restored),
      static_cast<unsigned long long>(r.stats.batches_replayed),
      static_cast<unsigned long long>(r.stats.events_replayed));
}

void JsonScenario(FILE* f, const char* name, const ScenarioResult& r,
                  bool last) {
  std::fprintf(
      f,
      "    \"%s\": {\"rto_ms\": %.3f, \"recover_ms\": %.3f, "
      "\"checkpoints_applied\": %llu, \"records_restored\": %llu, "
      "\"batches_replayed\": %llu, \"events_replayed\": %llu}%s\n",
      name, r.rto_ms, r.recover_ms,
      static_cast<unsigned long long>(r.stats.checkpoints_applied),
      static_cast<unsigned long long>(r.stats.records_restored),
      static_cast<unsigned long long>(r.stats.batches_replayed),
      static_cast<unsigned long long>(r.stats.events_replayed),
      last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== bench_recovery (durability RTO, docs/DURABILITY.md) ===\n");
  const std::uint64_t entities = FlagUint(argc, argv, "entities", 10000);
  const std::uint64_t events = FlagUint(argc, argv, "events", 20000);
  const std::uint32_t partitions =
      static_cast<std::uint32_t>(FlagUint(argc, argv, "partitions", 4));
  const char* json_path = FlagValue(argc, argv, "json");

  WorkloadSetup setup = MakeSetup();
  std::printf("schema: %u-byte records; %llu entities, %llu events, "
              "%u partitions\n",
              setup.schema->record_size(),
              static_cast<unsigned long long>(entities),
              static_cast<unsigned long long>(events), partitions);

  const std::string root =
      std::string(::getenv("TMPDIR") != nullptr ? ::getenv("TMPDIR")
                                                : "/tmp") +
      "/aim_bench_recovery_" + std::to_string(::getpid());

  // Scenario 1: clean shutdown — the chain is current, nothing replays.
  const std::string full_dir = root + "_full";
  RemoveTreeRec(full_dir, partitions);
  Populate(setup, full_dir, entities, events, partitions,
           /*mid_run_checkpoint=*/false, /*final_checkpoint=*/true);
  const ScenarioResult full =
      MeasureRecovery(setup, full_dir, entities, partitions);
  AIM_CHECK(full.stats.batches_replayed == 0);
  RemoveTreeRec(full_dir, partitions);

  // Scenario 2: crash — an incremental checkpoint from mid-run plus the
  // log tail; recovery restores the chain then replays the tail.
  const std::string incr_dir = root + "_incr";
  RemoveTreeRec(incr_dir, partitions);
  Populate(setup, incr_dir, entities, events, partitions,
           /*mid_run_checkpoint=*/true, /*final_checkpoint=*/false);
  const ScenarioResult incr =
      MeasureRecovery(setup, incr_dir, entities, partitions);
  AIM_CHECK(incr.stats.batches_replayed > 0);
  RemoveTreeRec(incr_dir, partitions);

  std::printf("\n--- recovery time objective ---\n");
  PrintScenario("full", full);
  PrintScenario("incremental_replay", incr);

  if (json_path != nullptr) {
    FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_path);
      return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"bench_recovery\",\n");
    std::fprintf(f, "  \"git_sha\": \"%s\",\n", GitSha().c_str());
    std::fprintf(f, "  \"build_type\": \"%s\",\n", BuildType());
    std::fprintf(f,
                 "  \"scale\": {\"entities\": %llu, \"events\": %llu, "
                 "\"partitions\": %u},\n",
                 static_cast<unsigned long long>(entities),
                 static_cast<unsigned long long>(events), partitions);
    std::fprintf(f, "  \"scenarios\": {\n");
    JsonScenario(f, "full", full, /*last=*/false);
    JsonScenario(f, "incremental_replay", incr, /*last=*/true);
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }
  return 0;
}
