// bench_baselines_rta — paper Figures 9b/10b comparison rows: AIM versus
// System M / System D / HyPer-CoW on the seven-query analytical mix, with
// the event stream running concurrently (the paper's operating point; it
// notes the competitors were measured read-only and still lost by >= 2.5x).
//
// Setup: c = 4 closed-loop analyst clients per system + one update thread
// paced at a fixed event rate. AIM runs its threaded storage node (shared
// scans batch the concurrent clients); the baselines execute one query at
// a time under their own concurrency control.
//
// Shape to reproduce: AIM delivers the best mixed-workload throughput and
// response times; the row-organized stores lose on scan speed, the column
// store loses ground to writer/reader lock coupling.

#include <atomic>
#include <memory>
#include <thread>

#include "aim/baselines/cow_store.h"
#include "aim/baselines/indexed_row_store.h"
#include "aim/baselines/pure_column_store.h"
#include "bench_common.h"

using namespace aim;
using namespace aim::bench;

namespace {

constexpr std::uint64_t kEntities = 5000;
constexpr int kWarmEvents = 20000;
constexpr double kSeconds = 2.0;
constexpr int kClients = 4;
constexpr double kEventRate = 1000.0;

struct RtaScore {
  double mean_ms = 0;
  double p95_ms = 0;
  double qps = 0;
  double esp_eps = 0;
};

RtaScore MeasureBaseline(const WorkloadSetup& setup, BaselineStore* store) {
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> events{0};

  std::thread updater([&] {
    CdrGenerator::Options gopts;
    gopts.num_entities = kEntities;
    gopts.seed = 77;
    CdrGenerator gen(gopts);
    Timestamp now = 1000000;
    Stopwatch pace;
    std::uint64_t sent = 0;
    while (!stop.load(std::memory_order_acquire)) {
      if (pace.ElapsedSeconds() < static_cast<double>(sent) / kEventRate) {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        continue;
      }
      AIM_CHECK(store->ApplyEvent(gen.Next(now += 10)).ok());
      events.fetch_add(1, std::memory_order_relaxed);
      ++sent;
    }
  });

  std::vector<LatencyRecorder> lat(kClients);
  std::atomic<std::uint64_t> queries{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      QueryWorkload workload(setup.schema.get(), &setup.dims, 4242 + c);
      Stopwatch sw;
      while (!stop.load(std::memory_order_acquire)) {
        const Query q = workload.Next();
        sw.Restart();
        const QueryResult r = store->Execute(q);
        AIM_CHECK(r.status.ok());
        lat[c].Record(sw.ElapsedMicros());
        queries.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  Stopwatch run;
  while (run.ElapsedSeconds() < kSeconds) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  stop.store(true, std::memory_order_release);
  updater.join();
  for (auto& t : clients) t.join();
  const double elapsed = run.ElapsedSeconds();

  LatencyRecorder all;
  for (const auto& l : lat) all.Merge(l);
  RtaScore s;
  s.mean_ms = all.MeanMicros() / 1e3;
  s.p95_ms = all.PercentileMicros(0.95) / 1e3;
  s.qps = static_cast<double>(queries.load()) / elapsed;
  s.esp_eps = static_cast<double>(events.load()) / elapsed;
  return s;
}

RtaScore MeasureAim(const WorkloadSetup& setup) {
  auto cluster = MakeCluster(setup, kEntities, /*nodes=*/1, /*partitions=*/2,
                             /*esp_threads=*/1);
  // Warm with the same history the baselines get.
  CdrGenerator::Options gopts;
  gopts.num_entities = kEntities;
  CdrGenerator gen(gopts);
  Timestamp now = 0;
  EventCompletion done;
  for (int i = 0; i < kWarmEvents; ++i) {
    EventCompletion* d = (i == kWarmEvents - 1) ? &done : nullptr;
    AIM_CHECK(cluster->IngestEvent(gen.Next(now += 10), d));
  }
  done.Wait();

  MixedOptions opts;
  opts.entities = kEntities;
  opts.target_eps = kEventRate;
  opts.clients = kClients;
  opts.seconds = kSeconds;
  const MixedResult r = RunMixedWorkload(cluster.get(), setup, opts);
  cluster->Stop();
  RtaScore s;
  s.mean_ms = r.rta_lat.MeanMicros() / 1e3;
  s.p95_ms = r.rta_lat.PercentileMicros(0.95) / 1e3;
  s.qps = r.rta_qps;
  s.esp_eps = r.esp_eps;
  return s;
}

}  // namespace

int main() {
  std::printf(
      "=== bench_baselines_rta (paper Fig 9b/10b baselines; c=%d clients + "
      "%.0f ev/s stream) ===\n",
      kClients, kEventRate);
  WorkloadSetup setup = MakeSetup(/*full_schema=*/true, /*num_rules=*/0);

  std::vector<std::uint8_t> row(setup.schema->record_size(), 0);
  auto warm = [&](BaselineStore* store) {
    for (EntityId e = 1; e <= kEntities; ++e) {
      std::fill(row.begin(), row.end(), 0);
      PopulateEntityProfile(*setup.schema, setup.dims, e, kEntities,
                            row.data());
      AIM_CHECK(store->Load(e, row.data()).ok());
    }
    CdrGenerator::Options gopts;
    gopts.num_entities = kEntities;
    CdrGenerator gen(gopts);
    Timestamp now = 0;
    for (int i = 0; i < kWarmEvents; ++i) {
      AIM_CHECK(store->ApplyEvent(gen.Next(now += 10)).ok());
    }
  };

  std::printf("%-22s %12s %12s %12s %12s\n", "system", "rta_mean_ms",
              "rta_p95_ms", "rta_qps", "esp_eps");
  const RtaScore aim = MeasureAim(setup);
  std::printf("%-22s %12.2f %12.2f %12.1f %12.0f\n", "AIM (shared scans)",
              aim.mean_ms, aim.p95_ms, aim.qps, aim.esp_eps);

  {
    PureColumnStore::Options opts;
    opts.max_records = kEntities + 64;
    PureColumnStore store(setup.schema.get(), &setup.dims.catalog, opts);
    warm(&store);
    const RtaScore s = MeasureBaseline(setup, &store);
    std::printf("%-22s %12.2f %12.2f %12.1f %12.0f\n", store.name().c_str(),
                s.mean_ms, s.p95_ms, s.qps, s.esp_eps);
  }
  {
    IndexedRowStore::Options opts;
    opts.max_records = kEntities + 64;
    for (const char* attr :
         {"number_of_local_calls_this_week", "number_of_calls_this_week",
          "total_duration_of_local_calls_this_week"}) {
      opts.indexed_attrs.push_back(setup.schema->FindAttribute(attr));
    }
    IndexedRowStore store(setup.schema.get(), &setup.dims.catalog, opts);
    warm(&store);
    const RtaScore s = MeasureBaseline(setup, &store);
    std::printf("%-22s %12.2f %12.2f %12.1f %12.0f\n", store.name().c_str(),
                s.mean_ms, s.p95_ms, s.qps, s.esp_eps);
  }
  {
    CowStore::Options opts;
    opts.max_records = kEntities + 64;
    CowStore store(setup.schema.get(), &setup.dims.catalog, opts);
    warm(&store);
    const RtaScore s = MeasureBaseline(setup, &store);
    std::printf("%-22s %12.2f %12.2f %12.1f %12.0f\n", store.name().c_str(),
                s.mean_ms, s.p95_ms, s.qps, s.esp_eps);
  }

  std::printf(
      "\nExpected shape: AIM leads the mixed workload on both axes while "
      "also holding its event rate; the paper reports >= 2.5x over the best "
      "competitor even with the competitors running read-only (§5.3).\n");
  return 0;
}
