file(REMOVE_RECURSE
  "CMakeFiles/aim_sql_shell.dir/aim_sql_shell.cpp.o"
  "CMakeFiles/aim_sql_shell.dir/aim_sql_shell.cpp.o.d"
  "aim_sql_shell"
  "aim_sql_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aim_sql_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
