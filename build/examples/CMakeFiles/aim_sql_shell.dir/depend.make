# Empty dependencies file for aim_sql_shell.
# This may be replaced when dependencies are built.
