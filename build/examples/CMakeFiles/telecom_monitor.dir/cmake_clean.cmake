file(REMOVE_RECURSE
  "CMakeFiles/telecom_monitor.dir/telecom_monitor.cpp.o"
  "CMakeFiles/telecom_monitor.dir/telecom_monitor.cpp.o.d"
  "telecom_monitor"
  "telecom_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telecom_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
