# Empty compiler generated dependencies file for telecom_monitor.
# This may be replaced when dependencies are built.
