# Empty compiler generated dependencies file for fraud_alerts.
# This may be replaced when dependencies are built.
