file(REMOVE_RECURSE
  "CMakeFiles/fraud_alerts.dir/fraud_alerts.cpp.o"
  "CMakeFiles/fraud_alerts.dir/fraud_alerts.cpp.o.d"
  "fraud_alerts"
  "fraud_alerts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fraud_alerts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
