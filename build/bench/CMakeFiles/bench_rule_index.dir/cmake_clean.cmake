file(REMOVE_RECURSE
  "CMakeFiles/bench_rule_index.dir/bench_rule_index.cc.o"
  "CMakeFiles/bench_rule_index.dir/bench_rule_index.cc.o.d"
  "bench_rule_index"
  "bench_rule_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rule_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
