file(REMOVE_RECURSE
  "CMakeFiles/bench_baselines_rta.dir/bench_baselines_rta.cc.o"
  "CMakeFiles/bench_baselines_rta.dir/bench_baselines_rta.cc.o.d"
  "bench_baselines_rta"
  "bench_baselines_rta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baselines_rta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
