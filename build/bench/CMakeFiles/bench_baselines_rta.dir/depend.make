# Empty dependencies file for bench_baselines_rta.
# This may be replaced when dependencies are built.
