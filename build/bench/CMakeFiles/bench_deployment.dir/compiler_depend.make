# Empty compiler generated dependencies file for bench_deployment.
# This may be replaced when dependencies are built.
