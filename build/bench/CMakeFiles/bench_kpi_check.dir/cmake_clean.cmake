file(REMOVE_RECURSE
  "CMakeFiles/bench_kpi_check.dir/bench_kpi_check.cc.o"
  "CMakeFiles/bench_kpi_check.dir/bench_kpi_check.cc.o.d"
  "bench_kpi_check"
  "bench_kpi_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kpi_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
