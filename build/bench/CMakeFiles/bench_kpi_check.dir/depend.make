# Empty dependencies file for bench_kpi_check.
# This may be replaced when dependencies are built.
