# Empty dependencies file for bench_bucket_size.
# This may be replaced when dependencies are built.
