file(REMOVE_RECURSE
  "CMakeFiles/bench_bucket_size.dir/bench_bucket_size.cc.o"
  "CMakeFiles/bench_bucket_size.dir/bench_bucket_size.cc.o.d"
  "bench_bucket_size"
  "bench_bucket_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bucket_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
