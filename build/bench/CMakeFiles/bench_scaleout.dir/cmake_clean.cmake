file(REMOVE_RECURSE
  "CMakeFiles/bench_scaleout.dir/bench_scaleout.cc.o"
  "CMakeFiles/bench_scaleout.dir/bench_scaleout.cc.o.d"
  "bench_scaleout"
  "bench_scaleout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scaleout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
