file(REMOVE_RECURSE
  "CMakeFiles/bench_baselines_esp.dir/bench_baselines_esp.cc.o"
  "CMakeFiles/bench_baselines_esp.dir/bench_baselines_esp.cc.o.d"
  "bench_baselines_esp"
  "bench_baselines_esp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baselines_esp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
