# Empty compiler generated dependencies file for bench_baselines_esp.
# This may be replaced when dependencies are built.
