file(REMOVE_RECURSE
  "CMakeFiles/bench_clients.dir/bench_clients.cc.o"
  "CMakeFiles/bench_clients.dir/bench_clients.cc.o.d"
  "bench_clients"
  "bench_clients.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_clients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
