# Empty dependencies file for bench_clients.
# This may be replaced when dependencies are built.
