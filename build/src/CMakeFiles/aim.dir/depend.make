# Empty dependencies file for aim.
# This may be replaced when dependencies are built.
