file(REMOVE_RECURSE
  "libaim.a"
)
