
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/aim/baselines/cow_store.cc" "src/CMakeFiles/aim.dir/aim/baselines/cow_store.cc.o" "gcc" "src/CMakeFiles/aim.dir/aim/baselines/cow_store.cc.o.d"
  "/root/repo/src/aim/baselines/indexed_row_store.cc" "src/CMakeFiles/aim.dir/aim/baselines/indexed_row_store.cc.o" "gcc" "src/CMakeFiles/aim.dir/aim/baselines/indexed_row_store.cc.o.d"
  "/root/repo/src/aim/baselines/pure_column_store.cc" "src/CMakeFiles/aim.dir/aim/baselines/pure_column_store.cc.o" "gcc" "src/CMakeFiles/aim.dir/aim/baselines/pure_column_store.cc.o.d"
  "/root/repo/src/aim/baselines/row_query.cc" "src/CMakeFiles/aim.dir/aim/baselines/row_query.cc.o" "gcc" "src/CMakeFiles/aim.dir/aim/baselines/row_query.cc.o.d"
  "/root/repo/src/aim/common/latency_recorder.cc" "src/CMakeFiles/aim.dir/aim/common/latency_recorder.cc.o" "gcc" "src/CMakeFiles/aim.dir/aim/common/latency_recorder.cc.o.d"
  "/root/repo/src/aim/common/status.cc" "src/CMakeFiles/aim.dir/aim/common/status.cc.o" "gcc" "src/CMakeFiles/aim.dir/aim/common/status.cc.o.d"
  "/root/repo/src/aim/esp/esp_engine.cc" "src/CMakeFiles/aim.dir/aim/esp/esp_engine.cc.o" "gcc" "src/CMakeFiles/aim.dir/aim/esp/esp_engine.cc.o.d"
  "/root/repo/src/aim/esp/event.cc" "src/CMakeFiles/aim.dir/aim/esp/event.cc.o" "gcc" "src/CMakeFiles/aim.dir/aim/esp/event.cc.o.d"
  "/root/repo/src/aim/esp/event_archive.cc" "src/CMakeFiles/aim.dir/aim/esp/event_archive.cc.o" "gcc" "src/CMakeFiles/aim.dir/aim/esp/event_archive.cc.o.d"
  "/root/repo/src/aim/esp/rule.cc" "src/CMakeFiles/aim.dir/aim/esp/rule.cc.o" "gcc" "src/CMakeFiles/aim.dir/aim/esp/rule.cc.o.d"
  "/root/repo/src/aim/esp/rule_index.cc" "src/CMakeFiles/aim.dir/aim/esp/rule_index.cc.o" "gcc" "src/CMakeFiles/aim.dir/aim/esp/rule_index.cc.o.d"
  "/root/repo/src/aim/esp/update_kernel.cc" "src/CMakeFiles/aim.dir/aim/esp/update_kernel.cc.o" "gcc" "src/CMakeFiles/aim.dir/aim/esp/update_kernel.cc.o.d"
  "/root/repo/src/aim/rta/compiled_query.cc" "src/CMakeFiles/aim.dir/aim/rta/compiled_query.cc.o" "gcc" "src/CMakeFiles/aim.dir/aim/rta/compiled_query.cc.o.d"
  "/root/repo/src/aim/rta/dimension.cc" "src/CMakeFiles/aim.dir/aim/rta/dimension.cc.o" "gcc" "src/CMakeFiles/aim.dir/aim/rta/dimension.cc.o.d"
  "/root/repo/src/aim/rta/parallel_scan.cc" "src/CMakeFiles/aim.dir/aim/rta/parallel_scan.cc.o" "gcc" "src/CMakeFiles/aim.dir/aim/rta/parallel_scan.cc.o.d"
  "/root/repo/src/aim/rta/partial_result.cc" "src/CMakeFiles/aim.dir/aim/rta/partial_result.cc.o" "gcc" "src/CMakeFiles/aim.dir/aim/rta/partial_result.cc.o.d"
  "/root/repo/src/aim/rta/query.cc" "src/CMakeFiles/aim.dir/aim/rta/query.cc.o" "gcc" "src/CMakeFiles/aim.dir/aim/rta/query.cc.o.d"
  "/root/repo/src/aim/rta/simd.cc" "src/CMakeFiles/aim.dir/aim/rta/simd.cc.o" "gcc" "src/CMakeFiles/aim.dir/aim/rta/simd.cc.o.d"
  "/root/repo/src/aim/rta/sql_parser.cc" "src/CMakeFiles/aim.dir/aim/rta/sql_parser.cc.o" "gcc" "src/CMakeFiles/aim.dir/aim/rta/sql_parser.cc.o.d"
  "/root/repo/src/aim/schema/schema.cc" "src/CMakeFiles/aim.dir/aim/schema/schema.cc.o" "gcc" "src/CMakeFiles/aim.dir/aim/schema/schema.cc.o.d"
  "/root/repo/src/aim/schema/value.cc" "src/CMakeFiles/aim.dir/aim/schema/value.cc.o" "gcc" "src/CMakeFiles/aim.dir/aim/schema/value.cc.o.d"
  "/root/repo/src/aim/schema/window.cc" "src/CMakeFiles/aim.dir/aim/schema/window.cc.o" "gcc" "src/CMakeFiles/aim.dir/aim/schema/window.cc.o.d"
  "/root/repo/src/aim/server/aim_cluster.cc" "src/CMakeFiles/aim.dir/aim/server/aim_cluster.cc.o" "gcc" "src/CMakeFiles/aim.dir/aim/server/aim_cluster.cc.o.d"
  "/root/repo/src/aim/server/aim_db.cc" "src/CMakeFiles/aim.dir/aim/server/aim_db.cc.o" "gcc" "src/CMakeFiles/aim.dir/aim/server/aim_db.cc.o.d"
  "/root/repo/src/aim/server/esp_tier.cc" "src/CMakeFiles/aim.dir/aim/server/esp_tier.cc.o" "gcc" "src/CMakeFiles/aim.dir/aim/server/esp_tier.cc.o.d"
  "/root/repo/src/aim/server/rta_front_end.cc" "src/CMakeFiles/aim.dir/aim/server/rta_front_end.cc.o" "gcc" "src/CMakeFiles/aim.dir/aim/server/rta_front_end.cc.o.d"
  "/root/repo/src/aim/server/storage_node.cc" "src/CMakeFiles/aim.dir/aim/server/storage_node.cc.o" "gcc" "src/CMakeFiles/aim.dir/aim/server/storage_node.cc.o.d"
  "/root/repo/src/aim/storage/checkpoint.cc" "src/CMakeFiles/aim.dir/aim/storage/checkpoint.cc.o" "gcc" "src/CMakeFiles/aim.dir/aim/storage/checkpoint.cc.o.d"
  "/root/repo/src/aim/storage/column_map.cc" "src/CMakeFiles/aim.dir/aim/storage/column_map.cc.o" "gcc" "src/CMakeFiles/aim.dir/aim/storage/column_map.cc.o.d"
  "/root/repo/src/aim/storage/delta.cc" "src/CMakeFiles/aim.dir/aim/storage/delta.cc.o" "gcc" "src/CMakeFiles/aim.dir/aim/storage/delta.cc.o.d"
  "/root/repo/src/aim/storage/delta_main.cc" "src/CMakeFiles/aim.dir/aim/storage/delta_main.cc.o" "gcc" "src/CMakeFiles/aim.dir/aim/storage/delta_main.cc.o.d"
  "/root/repo/src/aim/storage/mv_delta.cc" "src/CMakeFiles/aim.dir/aim/storage/mv_delta.cc.o" "gcc" "src/CMakeFiles/aim.dir/aim/storage/mv_delta.cc.o.d"
  "/root/repo/src/aim/workload/benchmark_schema.cc" "src/CMakeFiles/aim.dir/aim/workload/benchmark_schema.cc.o" "gcc" "src/CMakeFiles/aim.dir/aim/workload/benchmark_schema.cc.o.d"
  "/root/repo/src/aim/workload/cdr_generator.cc" "src/CMakeFiles/aim.dir/aim/workload/cdr_generator.cc.o" "gcc" "src/CMakeFiles/aim.dir/aim/workload/cdr_generator.cc.o.d"
  "/root/repo/src/aim/workload/dimension_data.cc" "src/CMakeFiles/aim.dir/aim/workload/dimension_data.cc.o" "gcc" "src/CMakeFiles/aim.dir/aim/workload/dimension_data.cc.o.d"
  "/root/repo/src/aim/workload/query_workload.cc" "src/CMakeFiles/aim.dir/aim/workload/query_workload.cc.o" "gcc" "src/CMakeFiles/aim.dir/aim/workload/query_workload.cc.o.d"
  "/root/repo/src/aim/workload/rules_generator.cc" "src/CMakeFiles/aim.dir/aim/workload/rules_generator.cc.o" "gcc" "src/CMakeFiles/aim.dir/aim/workload/rules_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
