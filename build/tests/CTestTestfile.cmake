# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/dense_map_test[1]_include.cmake")
include("/root/repo/build/tests/schema_test[1]_include.cmake")
include("/root/repo/build/tests/update_kernel_test[1]_include.cmake")
include("/root/repo/build/tests/rule_test[1]_include.cmake")
include("/root/repo/build/tests/rule_index_test[1]_include.cmake")
include("/root/repo/build/tests/column_map_test[1]_include.cmake")
include("/root/repo/build/tests/delta_main_test[1]_include.cmake")
include("/root/repo/build/tests/simd_test[1]_include.cmake")
include("/root/repo/build/tests/query_test[1]_include.cmake")
include("/root/repo/build/tests/compiled_query_test[1]_include.cmake")
include("/root/repo/build/tests/partial_result_test[1]_include.cmake")
include("/root/repo/build/tests/dimension_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/esp_engine_test[1]_include.cmake")
include("/root/repo/build/tests/aim_db_test[1]_include.cmake")
include("/root/repo/build/tests/storage_node_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/esp_tier_test[1]_include.cmake")
include("/root/repo/build/tests/event_archive_test[1]_include.cmake")
include("/root/repo/build/tests/checkpoint_test[1]_include.cmake")
include("/root/repo/build/tests/mv_delta_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_scan_test[1]_include.cmake")
include("/root/repo/build/tests/sql_parser_test[1]_include.cmake")
