file(REMOVE_RECURSE
  "CMakeFiles/parallel_scan_test.dir/parallel_scan_test.cc.o"
  "CMakeFiles/parallel_scan_test.dir/parallel_scan_test.cc.o.d"
  "parallel_scan_test"
  "parallel_scan_test.pdb"
  "parallel_scan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_scan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
