# Empty dependencies file for compiled_query_test.
# This may be replaced when dependencies are built.
