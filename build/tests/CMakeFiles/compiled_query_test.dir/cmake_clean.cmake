file(REMOVE_RECURSE
  "CMakeFiles/compiled_query_test.dir/compiled_query_test.cc.o"
  "CMakeFiles/compiled_query_test.dir/compiled_query_test.cc.o.d"
  "compiled_query_test"
  "compiled_query_test.pdb"
  "compiled_query_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compiled_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
