# Empty dependencies file for partial_result_test.
# This may be replaced when dependencies are built.
