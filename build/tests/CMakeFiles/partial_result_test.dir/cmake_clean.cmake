file(REMOVE_RECURSE
  "CMakeFiles/partial_result_test.dir/partial_result_test.cc.o"
  "CMakeFiles/partial_result_test.dir/partial_result_test.cc.o.d"
  "partial_result_test"
  "partial_result_test.pdb"
  "partial_result_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partial_result_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
