file(REMOVE_RECURSE
  "CMakeFiles/update_kernel_test.dir/update_kernel_test.cc.o"
  "CMakeFiles/update_kernel_test.dir/update_kernel_test.cc.o.d"
  "update_kernel_test"
  "update_kernel_test.pdb"
  "update_kernel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/update_kernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
