# Empty dependencies file for update_kernel_test.
# This may be replaced when dependencies are built.
