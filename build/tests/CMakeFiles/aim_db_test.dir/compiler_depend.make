# Empty compiler generated dependencies file for aim_db_test.
# This may be replaced when dependencies are built.
