file(REMOVE_RECURSE
  "CMakeFiles/aim_db_test.dir/aim_db_test.cc.o"
  "CMakeFiles/aim_db_test.dir/aim_db_test.cc.o.d"
  "aim_db_test"
  "aim_db_test.pdb"
  "aim_db_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aim_db_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
