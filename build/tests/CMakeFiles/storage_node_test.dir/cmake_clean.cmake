file(REMOVE_RECURSE
  "CMakeFiles/storage_node_test.dir/storage_node_test.cc.o"
  "CMakeFiles/storage_node_test.dir/storage_node_test.cc.o.d"
  "storage_node_test"
  "storage_node_test.pdb"
  "storage_node_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_node_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
