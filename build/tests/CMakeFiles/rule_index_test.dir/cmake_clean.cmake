file(REMOVE_RECURSE
  "CMakeFiles/rule_index_test.dir/rule_index_test.cc.o"
  "CMakeFiles/rule_index_test.dir/rule_index_test.cc.o.d"
  "rule_index_test"
  "rule_index_test.pdb"
  "rule_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rule_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
