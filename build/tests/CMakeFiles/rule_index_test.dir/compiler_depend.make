# Empty compiler generated dependencies file for rule_index_test.
# This may be replaced when dependencies are built.
