file(REMOVE_RECURSE
  "CMakeFiles/esp_engine_test.dir/esp_engine_test.cc.o"
  "CMakeFiles/esp_engine_test.dir/esp_engine_test.cc.o.d"
  "esp_engine_test"
  "esp_engine_test.pdb"
  "esp_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esp_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
