# Empty compiler generated dependencies file for esp_engine_test.
# This may be replaced when dependencies are built.
