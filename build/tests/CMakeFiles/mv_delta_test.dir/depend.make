# Empty dependencies file for mv_delta_test.
# This may be replaced when dependencies are built.
