file(REMOVE_RECURSE
  "CMakeFiles/mv_delta_test.dir/mv_delta_test.cc.o"
  "CMakeFiles/mv_delta_test.dir/mv_delta_test.cc.o.d"
  "mv_delta_test"
  "mv_delta_test.pdb"
  "mv_delta_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mv_delta_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
