# Empty dependencies file for delta_main_test.
# This may be replaced when dependencies are built.
