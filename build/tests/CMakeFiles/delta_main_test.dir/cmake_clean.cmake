file(REMOVE_RECURSE
  "CMakeFiles/delta_main_test.dir/delta_main_test.cc.o"
  "CMakeFiles/delta_main_test.dir/delta_main_test.cc.o.d"
  "delta_main_test"
  "delta_main_test.pdb"
  "delta_main_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delta_main_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
