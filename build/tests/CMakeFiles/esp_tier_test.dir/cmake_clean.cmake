file(REMOVE_RECURSE
  "CMakeFiles/esp_tier_test.dir/esp_tier_test.cc.o"
  "CMakeFiles/esp_tier_test.dir/esp_tier_test.cc.o.d"
  "esp_tier_test"
  "esp_tier_test.pdb"
  "esp_tier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esp_tier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
