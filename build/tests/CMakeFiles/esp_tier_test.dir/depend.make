# Empty dependencies file for esp_tier_test.
# This may be replaced when dependencies are built.
