# Empty dependencies file for column_map_test.
# This may be replaced when dependencies are built.
