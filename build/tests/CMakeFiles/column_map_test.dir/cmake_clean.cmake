file(REMOVE_RECURSE
  "CMakeFiles/column_map_test.dir/column_map_test.cc.o"
  "CMakeFiles/column_map_test.dir/column_map_test.cc.o.d"
  "column_map_test"
  "column_map_test.pdb"
  "column_map_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/column_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
