# Empty dependencies file for event_archive_test.
# This may be replaced when dependencies are built.
