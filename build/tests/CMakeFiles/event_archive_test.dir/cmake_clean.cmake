file(REMOVE_RECURSE
  "CMakeFiles/event_archive_test.dir/event_archive_test.cc.o"
  "CMakeFiles/event_archive_test.dir/event_archive_test.cc.o.d"
  "event_archive_test"
  "event_archive_test.pdb"
  "event_archive_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_archive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
