# Empty dependencies file for dense_map_test.
# This may be replaced when dependencies are built.
