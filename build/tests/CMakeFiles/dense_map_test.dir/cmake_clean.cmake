file(REMOVE_RECURSE
  "CMakeFiles/dense_map_test.dir/dense_map_test.cc.o"
  "CMakeFiles/dense_map_test.dir/dense_map_test.cc.o.d"
  "dense_map_test"
  "dense_map_test.pdb"
  "dense_map_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dense_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
