// fraud_alerts: business-rule evaluation in action (paper §2.2, Table 2).
// Simulates a compromised handset making many very short calls; the
// "phone_misuse_alert" rule detects it and the firing policy throttles the
// alert to once per subscriber per day.
//
//   $ ./fraud_alerts

#include <cstdio>

#include "aim/server/aim_db.h"
#include "aim/workload/benchmark_schema.h"
#include "aim/workload/rules_generator.h"

using namespace aim;

int main() {
  std::unique_ptr<Schema> schema = MakeCompactSchema();
  std::vector<Rule> rules = MakePaperTable2Rules(*schema);
  std::printf("rule set:\n");
  for (const Rule& r : rules) {
    std::printf("  %s\n", r.ToString(schema.get()).c_str());
  }

  AimDb::Options options;
  options.max_records = 1024;
  AimDb db(schema.get(), nullptr, &rules, options);

  // A normal subscriber and a compromised one.
  std::vector<std::uint8_t> row(schema->record_size(), 0);
  for (EntityId e : {1001, 2002}) {
    std::fill(row.begin(), row.end(), 0);
    RecordView(schema.get(), row.data())
        .SetAs<std::uint64_t>(schema->FindAttribute("entity_id"), e);
    if (!db.LoadEntity(e, row.data()).ok()) return 1;
  }

  std::vector<std::uint32_t> fired;
  int alerts = 0;

  // Normal usage: a handful of ordinary calls.
  Event call;
  call.caller = 1001;
  call.callee = 55;
  for (int i = 0; i < 5; ++i) {
    call.timestamp = 1000 + i * 60'000;
    call.duration = 120 + i * 30;
    call.cost = 0.2f;
    db.ProcessEvent(call, &fired);
    alerts += static_cast<int>(fired.size());
  }
  std::printf("\nnormal subscriber 1001: %d alerts after 5 calls\n", alerts);

  // Compromised phone: 40 calls of ~3 seconds in a burst.
  call.caller = 2002;
  alerts = 0;
  int first_alert_at = -1;
  for (int i = 0; i < 40; ++i) {
    call.timestamp = 5000 + i * 1000;
    call.duration = 3;
    call.cost = 0.05f;
    db.ProcessEvent(call, &fired);
    for (std::uint32_t rule_id : fired) {
      alerts++;
      if (first_alert_at < 0) first_alert_at = i + 1;
      std::printf("  ALERT after call %2d: rule '%s' -> %s\n", i + 1,
                  rules[rule_id].name.c_str(), rules[rule_id].action.c_str());
    }
  }
  std::printf("compromised subscriber 2002: %d alert(s), first after %d "
              "calls; firing policy suppressed the other %d matches\n",
              alerts, first_alert_at,
              static_cast<int>(db.engine().stats().rules_suppressed));

  std::printf("\nindicators for 2002: calls_today=%d avg_duration=%.1fs\n",
              db.GetAttribute(2002, "number_of_calls_today")->i32(),
              db.GetAttribute(2002, "avg_duration_today")->AsDouble());
  return alerts >= 1 && first_alert_at == 31 ? 0 : 1;
}
