// aim_sql_shell: an interactive SQL shell over a live AIM instance. Loads
// subscribers, replays a CDR stream, then answers the SQL subset of paper
// Table 5 from stdin (or one-shot via -c "...").
//
//   $ ./aim_sql_shell
//   aim> SELECT AVG(total_duration_this_week) FROM AnalyticsMatrix
//        WHERE number_of_local_calls_this_week > 1;
//
//   $ ./aim_sql_shell -c "SELECT COUNT(*) FROM AnalyticsMatrix"
//
// Shell commands: \metrics dumps the live registry in Prometheus text
// format, \metrics json as JSON (docs/OBSERVABILITY.md).

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "aim/common/clock.h"
#include "aim/rta/sql_parser.h"
#include "aim/server/aim_db.h"
#include "aim/workload/benchmark_schema.h"
#include "aim/workload/cdr_generator.h"
#include "aim/workload/dimension_data.h"

using namespace aim;

namespace {

void PrintResult(const Query& query, const QueryResult& result,
                 double millis) {
  if (!result.status.ok()) {
    std::printf("error: %s\n", result.status.ToString().c_str());
    return;
  }
  for (const QueryResult::Row& row : result.rows) {
    if (!row.group_label.empty()) {
      std::printf("%-20s", row.group_label.c_str());
    } else if (query.kind == Query::Kind::kGroupBy) {
      std::printf("%-20llu", static_cast<unsigned long long>(row.group_key));
    }
    for (double v : row.values) std::printf(" %14.4f", v);
    std::printf("\n");
  }
  std::printf("(%zu row%s, %.2f ms)\n", result.rows.size(),
              result.rows.size() == 1 ? "" : "s", millis);
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t entities = 10000;
  const int warm_events = 50000;

  std::unique_ptr<Schema> schema = MakeCompactSchema();
  BenchmarkDims dims = MakeBenchmarkDims();
  AimDb::Options options;
  options.max_records = entities + 64;
  AimDb db(schema.get(), &dims.catalog, nullptr, options);

  std::fprintf(stderr, "loading %llu subscribers + %d CDRs...\n",
               static_cast<unsigned long long>(entities), warm_events);
  std::vector<std::uint8_t> row(schema->record_size(), 0);
  for (EntityId e = 1; e <= entities; ++e) {
    std::fill(row.begin(), row.end(), 0);
    PopulateEntityProfile(*schema, dims, e, entities, row.data());
    if (!db.LoadEntity(e, row.data()).ok()) return 1;
  }
  CdrGenerator::Options gopts;
  gopts.num_entities = entities;
  CdrGenerator gen(gopts);
  Timestamp now = 0;
  for (int i = 0; i < warm_events; ++i) {
    if (!db.ProcessEvent(gen.Next(now += 20)).ok()) return 1;
  }

  SqlParser parser(schema.get(), &dims.catalog);
  auto run_one = [&](const std::string& sql) {
    // Shell commands (not SQL): \metrics [json].
    const std::size_t start = sql.find_first_not_of(" \t");
    if (start != std::string::npos && sql[start] == '\\') {
      if (sql.compare(start, 8, "\\metrics") == 0) {
        const bool json = sql.find("json", start + 8) != std::string::npos;
        std::printf("%s\n", json ? db.metrics().RenderJson().c_str()
                                 : db.metrics().RenderPrometheus().c_str());
      } else {
        std::printf("unknown command; try \\metrics [json]\n");
      }
      return;
    }
    StatusOr<Query> query = parser.Parse(sql);
    if (!query.ok()) {
      std::printf("%s\n", query.status().ToString().c_str());
      return;
    }
    Stopwatch sw;
    const QueryResult result = db.Execute(*query);
    PrintResult(*query, result, sw.ElapsedMillis());
  };

  if (argc > 2 && std::strcmp(argv[1], "-c") == 0) {
    run_one(argv[2]);
    return 0;
  }

  std::fprintf(stderr,
               "AIM SQL shell — tables: AnalyticsMatrix, RegionInfo, "
               "SubscriptionType, Category, CellValueType. "
               "End statements with ';'. Ctrl-D quits.\n");
  std::string buffer;
  std::string line;
  std::fprintf(stderr, "aim> ");
  while (std::getline(std::cin, line)) {
    // Backslash commands execute immediately, no ';' needed.
    if (buffer.find_first_not_of(' ') == std::string::npos &&
        line.find_first_not_of(" \t") != std::string::npos &&
        line[line.find_first_not_of(" \t")] == '\\') {
      run_one(line);
      std::fprintf(stderr, "aim> ");
      continue;
    }
    buffer += line;
    buffer += ' ';
    if (line.find(';') != std::string::npos) {
      if (buffer.find_first_not_of(" ;") != std::string::npos) {
        run_one(buffer);
      }
      buffer.clear();
      std::fprintf(stderr, "aim> ");
    }
  }
  return 0;
}
