// Quickstart: build an Analytics Matrix schema, ingest a few CDR events and
// run analytical queries over fresh data — all embedded, no threads.
//
//   $ ./quickstart

#include <cstdio>

#include "aim/server/aim_db.h"
#include "aim/workload/benchmark_schema.h"
#include "aim/workload/dimension_data.h"
#include "aim/workload/rules_generator.h"

using namespace aim;

int main() {
  // 1. Schema: raw profile attributes + event-maintained indicator groups.
  //    MakeCompactSchema() is a ready-made small telecom schema; you can
  //    also build your own with Schema::AddRawAttribute / AddCountGroup /
  //    AddMetricGroup.
  std::unique_ptr<Schema> schema = MakeCompactSchema();
  std::printf("schema: %u attributes, %u indicators, %u-byte records\n",
              schema->num_attributes(), schema->num_indicators(),
              schema->record_size());

  // 2. Dimension tables (replicated, joined locally during scans).
  BenchmarkDims dims = MakeBenchmarkDims();

  // 3. Business rules: Table 2 of the paper (campaign + misuse alert).
  std::vector<Rule> rules = MakePaperTable2Rules(*schema);

  // 4. The embedded database.
  AimDb::Options options;
  options.max_records = 10000;
  AimDb db(schema.get(), &dims.catalog, &rules, options);

  // 5. Load three subscribers.
  std::vector<std::uint8_t> row(schema->record_size(), 0);
  for (EntityId subscriber : {134525, 585210, 346732}) {
    std::fill(row.begin(), row.end(), 0);
    RecordView rec(schema.get(), row.data());
    rec.SetAs<std::uint64_t>(schema->FindAttribute("entity_id"), subscriber);
    rec.SetAs<std::uint32_t>(schema->FindAttribute("zip"), 8001 % 1000);
    if (!db.LoadEntity(subscriber, row.data()).ok()) return 1;
  }

  // 6. Ingest events (the paper's Figure 2 walk-through).
  Event call;
  call.caller = 134525;
  call.callee = 461345;
  call.timestamp = 13589390;
  call.duration = 583;
  call.cost = 0.50f;
  std::vector<std::uint32_t> fired;
  if (!db.ProcessEvent(call, &fired).ok()) return 1;

  call.duration = 120;
  call.cost = 0.10f;
  call.timestamp += 60'000;
  db.ProcessEvent(call, &fired);

  // 7. Point lookup: per-subscriber indicators are maintained in real time.
  std::printf("subscriber 134525: calls_today=%d, duration_today=%gs, "
              "cost_today=$%.2f\n",
              db.GetAttribute(134525, "number_of_calls_today")->i32(),
              db.GetAttribute(134525, "duration_today_sum")->AsDouble(),
              db.GetAttribute(134525, "total_cost_today")->AsDouble());

  // 8. Ad-hoc analytics over the whole matrix (Table 3 of the paper).
  Query q = *QueryBuilder(schema.get())
                 .WithId(1)
                 .Select(AggOp::kSum, "total_cost_today")
                 .SelectCount()
                 .Where("number_of_calls_today", CmpOp::kGt, Value::Int32(0))
                 .Build();
  QueryResult result = db.Execute(q);
  std::printf("query: %s\n  -> %s\n", q.ToString(schema.get()).c_str(),
              result.ToString().c_str());
  return 0;
}
