// campaign_analytics: the marketing-analyst view — ad-hoc decision-support
// queries with dimension joins and group-bys over live data (paper §2.3,
// Table 3/Table 5), served by shared scans.
//
//   $ ./campaign_analytics [entities] [events]

#include <cstdio>
#include <cstdlib>

#include "aim/common/clock.h"

#include "aim/server/aim_db.h"
#include "aim/workload/benchmark_schema.h"
#include "aim/workload/cdr_generator.h"
#include "aim/workload/dimension_data.h"
#include "aim/workload/query_workload.h"

using namespace aim;

int main(int argc, char** argv) {
  const std::uint64_t entities = argc > 1 ? std::atoll(argv[1]) : 20000;
  const int events = argc > 2 ? std::atoi(argv[2]) : 100000;

  std::unique_ptr<Schema> schema = MakeCompactSchema();
  BenchmarkDims dims = MakeBenchmarkDims();

  AimDb::Options options;
  options.max_records = entities + 16;
  AimDb db(schema.get(), &dims.catalog, nullptr, options);

  std::printf("loading %llu subscribers, replaying %d CDRs...\n",
              static_cast<unsigned long long>(entities), events);
  std::vector<std::uint8_t> row(schema->record_size(), 0);
  for (EntityId e = 1; e <= entities; ++e) {
    std::fill(row.begin(), row.end(), 0);
    PopulateEntityProfile(*schema, dims, e, entities, row.data());
    if (!db.LoadEntity(e, row.data()).ok()) return 1;
  }
  CdrGenerator::Options gopts;
  gopts.num_entities = entities;
  CdrGenerator gen(gopts);
  Timestamp now = 0;
  for (int i = 0; i < events; ++i) {
    if (!db.ProcessEvent(gen.Next(now += 50)).ok()) return 1;
  }

  // A batch of analyst questions answered by ONE shared scan pass.
  std::vector<Query> batch;
  // Which regions drive long-distance spend this week?
  batch.push_back(
      *QueryBuilder(schema.get())
           .WithId(1)
           .Select(AggOp::kSum, "total_cost_of_long_distance_calls_this_week")
           .Select(AggOp::kSum, "total_cost_of_local_calls_this_week")
           .GroupByDim("zip", dims.region_info, dims.region_region)
           .Build());
  // Who are the heavy postpaid callers? (dim filter via FK join)
  batch.push_back(
      *QueryBuilder(schema.get())
           .WithId(2)
           .SelectCount()
           .Select(AggOp::kAvg, "total_duration_this_week")
           .Where("number_of_calls_this_week", CmpOp::kGt, Value::Int32(3))
           .WhereDimLabel("subscription_type", dims.subscription_type,
                          dims.subscription_type_name, "postpaid")
           .Build());
  // Cost efficiency by call-count segment (paper Q3).
  batch.push_back(*QueryBuilder(schema.get())
                       .WithId(3)
                       .SelectSumRatio("total_cost_this_week",
                                       "total_duration_this_week")
                       .GroupByAttr("number_of_calls_this_week")
                       .Limit(10)
                       .Build());
  // Best flat-rate candidates (paper Q7): smallest cost/duration ratio.
  batch.push_back(*QueryBuilder(schema.get())
                       .WithId(4)
                       .TopKRatio("total_cost_this_week",
                                  "total_duration_this_week",
                                  /*ascending=*/true, 3)
                       .WithEntityAttr("entity_id")
                       .Build());

  db.Merge();  // fold the replayed events so timings measure pure scans

  Stopwatch sw;
  std::vector<QueryResult> results = db.ExecuteBatch(batch);
  const double batch_ms = sw.ElapsedMillis();

  std::printf("\nshared scan answered %zu queries in %.1f ms "
              "(%.1f ms/query amortized)\n\n",
              batch.size(), batch_ms, batch_ms / batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    std::printf("%s\n  -> %s\n\n",
                batch[i].ToString(schema.get()).c_str(),
                results[i].ToString().c_str());
  }

  // Compare against one-at-a-time execution to show the shared-scan win.
  sw.Restart();
  for (const Query& q : batch) (void)db.Execute(q);
  const double solo_ms = sw.ElapsedMillis();
  std::printf("one-at-a-time total: %.1f ms  |  shared batch: %.1f ms  "
              "(%.2fx)\n",
              solo_ms, batch_ms, solo_ms / batch_ms);
  return 0;
}
