// telecom_monitor: the paper's headline scenario end-to-end on the threaded
// system — a storage node cluster sustaining a CDR stream while closed-loop
// analysts fire the seven benchmark queries, with live KPI reporting
// (Table 4: t_ESP <= 10ms, t_RTA <= 100ms, f_RTA >= 100 q/s, t_fresh <= 1s).
//
//   $ ./telecom_monitor [entities] [seconds] [nodes]
//
// Driver mode: point the same workload at remote aim_server processes over
// the real TCP transport instead of an in-process cluster —
//
//   $ ./telecom_monitor --connect=host:port[,host:port...] [entities] [seconds]

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "aim/common/clock.h"
#include "aim/common/hash.h"
#include "aim/common/latency_recorder.h"
#include "aim/net/tcp_client.h"
#include "aim/server/aim_cluster.h"
#include "aim/workload/benchmark_schema.h"
#include "aim/workload/cdr_generator.h"
#include "aim/workload/dimension_data.h"
#include "aim/workload/kpi.h"
#include "aim/workload/query_workload.h"
#include "aim/workload/rules_generator.h"

using namespace aim;

namespace {

/// Drives remote aim_server nodes over TCP with the same workload the
/// in-process path runs: an ESP event stream (sampled round trips measure
/// end-to-end latency) plus closed-loop RTA clients fanning out through
/// RtaFrontEnd over TcpClient channels. The servers own the node metrics;
/// this prints the client-observed latencies and the aim_net_* client
/// series.
int RunTcpDriver(const std::string& endpoints, std::uint64_t entities,
                 int seconds) {
  MetricsRegistry metrics;
  std::vector<std::unique_ptr<net::TcpClient>> clients;
  std::size_t start = 0;
  while (start < endpoints.size()) {
    std::size_t comma = endpoints.find(',', start);
    if (comma == std::string::npos) comma = endpoints.size();
    const std::string endpoint = endpoints.substr(start, comma - start);
    start = comma + 1;
    const std::size_t colon = endpoint.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "bad endpoint '%s' (want host:port)\n",
                   endpoint.c_str());
      return 1;
    }
    net::TcpClient::Options copts;
    copts.host = endpoint.substr(0, colon);
    copts.port =
        static_cast<std::uint16_t>(std::atoi(endpoint.c_str() + colon + 1));
    copts.metrics = &metrics;
    clients.push_back(std::make_unique<net::TcpClient>(copts));
    Status st = clients.back()->Connect();
    if (!st.ok()) {
      std::fprintf(stderr, "connect %s failed: %s\n", endpoint.c_str(),
                   st.ToString().c_str());
      return 1;
    }
  }
  const std::uint32_t nodes = static_cast<std::uint32_t>(clients.size());
  std::printf("AIM telecom monitor (TCP driver): %llu entities, %u remote "
              "node(s), %ds run\n",
              static_cast<unsigned long long>(entities), nodes, seconds);

  std::unique_ptr<Schema> schema = MakeCompactSchema();
  BenchmarkDims dims = MakeBenchmarkDims();
  std::vector<NodeChannel*> channels;
  for (auto& c : clients) channels.push_back(c.get());
  RtaFrontEnd front_end(channels, schema.get(), &dims.catalog, &metrics);

  std::atomic<bool> stop{false};

  LatencyRecorder esp_latency;
  std::atomic<std::uint64_t> events_sent{0};
  std::thread esp_driver([&] {
    CdrGenerator::Options gopts;
    gopts.num_entities = entities;
    CdrGenerator gen(gopts);
    Timestamp now = 0;
    Stopwatch sw;
    while (!stop.load(std::memory_order_acquire)) {
      const Event event = gen.Next(now += 10);
      BinaryWriter writer;
      event.Serialize(&writer);
      net::TcpClient* client = clients[NodeHash(event.caller, nodes)].get();
      const bool sample =
          events_sent.load(std::memory_order_relaxed) % 64 == 0;
      if (sample) {
        sw.Restart();
        if (!client->EventRoundTrip(writer.TakeBuffer(), nullptr).ok()) {
          break;
        }
        esp_latency.Record(sw.ElapsedMicros());
      } else {
        if (!client->SubmitEvent(writer.TakeBuffer(), nullptr)) break;
      }
      events_sent.fetch_add(1, std::memory_order_relaxed);
    }
  });

  constexpr int kClients = 4;
  LatencyRecorder rta_latency[kClients];
  std::atomic<std::uint64_t> queries_done{0};
  std::vector<std::thread> rta_clients;
  for (int c = 0; c < kClients; ++c) {
    rta_clients.emplace_back([&, c] {
      QueryWorkload workload(schema.get(), &dims, 7000 + c);
      Stopwatch sw;
      while (!stop.load(std::memory_order_acquire)) {
        const int qnums[] = {1, 2, 3, 4, 5, 7};
        Query q = workload.Make(qnums[queries_done.load() % 6]);
        sw.Restart();
        QueryResult r = front_end.Execute(q);
        if (!r.status.ok()) break;
        rta_latency[c].Record(sw.ElapsedMicros());
        queries_done.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  Stopwatch run;
  while (run.ElapsedSeconds() < seconds) {
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
    std::printf("  t=%4.1fs  events=%llu  queries=%llu\n",
                run.ElapsedSeconds(),
                static_cast<unsigned long long>(events_sent.load()),
                static_cast<unsigned long long>(queries_done.load()));
  }
  stop.store(true, std::memory_order_release);
  esp_driver.join();
  for (auto& t : rta_clients) t.join();
  const double elapsed = run.ElapsedSeconds();
  const std::uint64_t total_events = events_sent.load();
  const std::uint64_t total_queries = queries_done.load();
  for (auto& c : clients) c->Close();

  LatencyRecorder rta_all;
  for (const auto& r : rta_latency) rta_all.Merge(r);

  std::printf("\n=== results (client-observed, over TCP) ===\n");
  std::printf("ESP: %.0f events/s, sampled round trip %s\n",
              total_events / elapsed, esp_latency.SummaryMillis().c_str());
  std::printf("RTA: %.1f queries/s, latency %s\n", total_queries / elapsed,
              rta_all.SummaryMillis().c_str());
  std::printf("\n=== client metrics snapshot (Prometheus text format) ===\n%s",
              metrics.RenderPrometheus().c_str());
  return total_events > 0 && total_queries > 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strncmp(argv[1], "--connect=", 10) == 0) {
    const std::string endpoints = argv[1] + 10;
    const std::uint64_t tcp_entities = argc > 2 ? std::atoll(argv[2]) : 20000;
    const int tcp_seconds = argc > 3 ? std::atoi(argv[3]) : 5;
    return RunTcpDriver(endpoints, tcp_entities, tcp_seconds);
  }
  const std::uint64_t entities = argc > 1 ? std::atoll(argv[1]) : 20000;
  const int seconds = argc > 2 ? std::atoi(argv[2]) : 5;
  const std::uint32_t nodes = argc > 3 ? std::atoi(argv[3]) : 1;

  std::printf("AIM telecom monitor: %llu entities, %u node(s), %ds run\n",
              static_cast<unsigned long long>(entities), nodes, seconds);

  std::unique_ptr<Schema> schema = MakeCompactSchema();
  BenchmarkDims dims = MakeBenchmarkDims();
  RulesGeneratorOptions ropts;
  ropts.num_rules = 300;
  std::vector<Rule> rules = MakeBenchmarkRules(*schema, ropts);

  AimCluster::Options copts;
  copts.num_nodes = nodes;
  copts.node.num_partitions = 2;
  copts.node.num_esp_threads = 1;
  copts.node.max_records_per_partition = entities * 2 / copts.node.num_partitions + 1024;
  AimCluster cluster(schema.get(), &dims.catalog, &rules, copts);

  std::printf("loading %llu entity profiles...\n",
              static_cast<unsigned long long>(entities));
  std::vector<std::uint8_t> row(schema->record_size(), 0);
  for (EntityId e = 1; e <= entities; ++e) {
    std::fill(row.begin(), row.end(), 0);
    PopulateEntityProfile(*schema, dims, e, entities, row.data());
    if (!cluster.LoadEntity(e, row.data()).ok()) return 1;
  }
  if (!cluster.Start().ok()) return 1;

  // Live SLA monitor over the cluster's always-on metrics; its t_fresh is
  // traced inside the stores (write -> merge publication), not inferred.
  KpiTargets targets;
  KpiMonitor monitor = cluster.MakeKpiMonitor(entities, targets);

  std::atomic<bool> stop{false};

  // ESP driver: pump events as fast as the node accepts them, measuring
  // end-to-end latency on a sample of them.
  LatencyRecorder esp_latency;
  std::atomic<std::uint64_t> events_sent{0};
  std::thread esp_driver([&] {
    CdrGenerator::Options gopts;
    gopts.num_entities = entities;
    CdrGenerator gen(gopts);
    Timestamp now = 0;
    EventCompletion done;
    Stopwatch sw;
    while (!stop.load(std::memory_order_acquire)) {
      const bool sample = events_sent.load(std::memory_order_relaxed) % 64 == 0;
      if (sample) {
        done.Reset();
        sw.Restart();
        if (!cluster.IngestEvent(gen.Next(now += 10), &done)) break;
        done.Wait();
        esp_latency.Record(sw.ElapsedMicros());
      } else {
        if (!cluster.IngestEvent(gen.Next(now += 10), nullptr)) break;
      }
      events_sent.fetch_add(1, std::memory_order_relaxed);
    }
  });

  // RTA clients in closed loops (c = 4), uniform Q1..Q7 mix.
  constexpr int kClients = 4;
  LatencyRecorder rta_latency[kClients];
  std::atomic<std::uint64_t> queries_done{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      QueryWorkload workload(schema.get(), &dims, 7000 + c);
      Stopwatch sw;
      while (!stop.load(std::memory_order_acquire)) {
        // The compact schema lacks Q6's longest-call indicators; run the
        // other six benchmark queries.
        const int qnums[] = {1, 2, 3, 4, 5, 7};
        Query q = workload.Make(qnums[queries_done.load() % 6]);
        sw.Restart();
        QueryResult r = cluster.ExecuteQuery(q);
        if (!r.status.ok()) break;
        rta_latency[c].Record(sw.ElapsedMicros());
        queries_done.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  Stopwatch run;
  Stopwatch since_kpi;
  while (run.ElapsedSeconds() < seconds) {
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
    std::printf("  t=%4.1fs  events=%llu  queries=%llu\n",
                run.ElapsedSeconds(),
                static_cast<unsigned long long>(events_sent.load()),
                static_cast<unsigned long long>(queries_done.load()));
    // Periodic live SLA check (every ~2s window).
    if (since_kpi.ElapsedSeconds() >= 2.0) {
      since_kpi.Restart();
      const KpiSample live = monitor.Sample();
      std::printf("  [kpi %d/5] t_ESP=%.2fms f_ESP=%.0f/h t_RTA=%.1fms "
                  "f_RTA=%.0fq/s t_fresh=%.0fms%s\n",
                  live.NumPass(), live.t_esp_ms, live.f_esp_per_entity_hour,
                  live.t_rta_ms, live.f_rta_qps, live.t_fresh_ms,
                  live.fresh_traced ? "" : " (untraced)");
    }
  }
  const KpiSample final_window = monitor.Sample();
  stop.store(true, std::memory_order_release);
  esp_driver.join();
  for (auto& t : clients) t.join();
  const double elapsed = run.ElapsedSeconds();
  cluster.Stop();

  LatencyRecorder rta_all;
  for (const auto& r : rta_latency) rta_all.Merge(r);

  const KpiReport report = KpiReport::FromRecorders(
      esp_latency, rta_all, events_sent.load() / elapsed,
      queries_done.load() / elapsed, /*fresh_ms=*/0.0);

  std::printf("\n=== results ===\n");
  std::printf("ESP: %.0f events/s, latency %s  [t_ESP<=%.0fms: %s]\n",
              report.esp_throughput_eps, esp_latency.SummaryMillis().c_str(),
              targets.t_esp_ms, report.MeetsEsp(targets) ? "PASS" : "miss");
  std::printf("RTA: %.1f queries/s, latency %s  [t_RTA<=%.0fms: %s]\n",
              report.rta_throughput_qps, rta_all.SummaryMillis().c_str(),
              targets.t_rta_ms,
              report.rta_mean_ms <= targets.t_rta_ms ? "PASS" : "miss");
  const StorageNode::NodeStats stats = cluster.TotalStats();
  std::printf("cluster: %llu events processed, %llu rules fired, "
              "%llu scan cycles, %llu records merged\n",
              static_cast<unsigned long long>(stats.events_processed),
              static_cast<unsigned long long>(stats.rules_fired),
              static_cast<unsigned long long>(stats.scan_cycles),
              static_cast<unsigned long long>(stats.records_merged));

  std::printf("\n=== live SLA monitor (final window, traced t_fresh) ===\n");
  std::printf("%s", final_window.Render(targets).c_str());
  std::printf("\n=== metrics snapshot (Prometheus text format) ===\n%s",
              cluster.metrics().RenderPrometheus().c_str());
  return 0;
}
