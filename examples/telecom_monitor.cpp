// telecom_monitor: the paper's headline scenario end-to-end on the threaded
// system — a storage node cluster sustaining a CDR stream while closed-loop
// analysts fire the seven benchmark queries, with live KPI reporting
// (Table 4: t_ESP <= 10ms, t_RTA <= 100ms, f_RTA >= 100 q/s, t_fresh <= 1s).
//
//   $ ./telecom_monitor [entities] [seconds] [nodes]

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "aim/common/clock.h"
#include "aim/common/latency_recorder.h"
#include "aim/server/aim_cluster.h"
#include "aim/workload/benchmark_schema.h"
#include "aim/workload/cdr_generator.h"
#include "aim/workload/dimension_data.h"
#include "aim/workload/kpi.h"
#include "aim/workload/query_workload.h"
#include "aim/workload/rules_generator.h"

using namespace aim;

int main(int argc, char** argv) {
  const std::uint64_t entities = argc > 1 ? std::atoll(argv[1]) : 20000;
  const int seconds = argc > 2 ? std::atoi(argv[2]) : 5;
  const std::uint32_t nodes = argc > 3 ? std::atoi(argv[3]) : 1;

  std::printf("AIM telecom monitor: %llu entities, %u node(s), %ds run\n",
              static_cast<unsigned long long>(entities), nodes, seconds);

  std::unique_ptr<Schema> schema = MakeCompactSchema();
  BenchmarkDims dims = MakeBenchmarkDims();
  RulesGeneratorOptions ropts;
  ropts.num_rules = 300;
  std::vector<Rule> rules = MakeBenchmarkRules(*schema, ropts);

  AimCluster::Options copts;
  copts.num_nodes = nodes;
  copts.node.num_partitions = 2;
  copts.node.num_esp_threads = 1;
  copts.node.max_records_per_partition = entities * 2 / copts.node.num_partitions + 1024;
  AimCluster cluster(schema.get(), &dims.catalog, &rules, copts);

  std::printf("loading %llu entity profiles...\n",
              static_cast<unsigned long long>(entities));
  std::vector<std::uint8_t> row(schema->record_size(), 0);
  for (EntityId e = 1; e <= entities; ++e) {
    std::fill(row.begin(), row.end(), 0);
    PopulateEntityProfile(*schema, dims, e, entities, row.data());
    if (!cluster.LoadEntity(e, row.data()).ok()) return 1;
  }
  if (!cluster.Start().ok()) return 1;

  // Live SLA monitor over the cluster's always-on metrics; its t_fresh is
  // traced inside the stores (write -> merge publication), not inferred.
  KpiTargets targets;
  KpiMonitor monitor = cluster.MakeKpiMonitor(entities, targets);

  std::atomic<bool> stop{false};

  // ESP driver: pump events as fast as the node accepts them, measuring
  // end-to-end latency on a sample of them.
  LatencyRecorder esp_latency;
  std::atomic<std::uint64_t> events_sent{0};
  std::thread esp_driver([&] {
    CdrGenerator::Options gopts;
    gopts.num_entities = entities;
    CdrGenerator gen(gopts);
    Timestamp now = 0;
    EventCompletion done;
    Stopwatch sw;
    while (!stop.load(std::memory_order_acquire)) {
      const bool sample = events_sent.load(std::memory_order_relaxed) % 64 == 0;
      if (sample) {
        done.Reset();
        sw.Restart();
        if (!cluster.IngestEvent(gen.Next(now += 10), &done)) break;
        done.Wait();
        esp_latency.Record(sw.ElapsedMicros());
      } else {
        if (!cluster.IngestEvent(gen.Next(now += 10), nullptr)) break;
      }
      events_sent.fetch_add(1, std::memory_order_relaxed);
    }
  });

  // RTA clients in closed loops (c = 4), uniform Q1..Q7 mix.
  constexpr int kClients = 4;
  LatencyRecorder rta_latency[kClients];
  std::atomic<std::uint64_t> queries_done{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      QueryWorkload workload(schema.get(), &dims, 7000 + c);
      Stopwatch sw;
      while (!stop.load(std::memory_order_acquire)) {
        // The compact schema lacks Q6's longest-call indicators; run the
        // other six benchmark queries.
        const int qnums[] = {1, 2, 3, 4, 5, 7};
        Query q = workload.Make(qnums[queries_done.load() % 6]);
        sw.Restart();
        QueryResult r = cluster.ExecuteQuery(q);
        if (!r.status.ok()) break;
        rta_latency[c].Record(sw.ElapsedMicros());
        queries_done.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  Stopwatch run;
  Stopwatch since_kpi;
  while (run.ElapsedSeconds() < seconds) {
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
    std::printf("  t=%4.1fs  events=%llu  queries=%llu\n",
                run.ElapsedSeconds(),
                static_cast<unsigned long long>(events_sent.load()),
                static_cast<unsigned long long>(queries_done.load()));
    // Periodic live SLA check (every ~2s window).
    if (since_kpi.ElapsedSeconds() >= 2.0) {
      since_kpi.Restart();
      const KpiSample live = monitor.Sample();
      std::printf("  [kpi %d/5] t_ESP=%.2fms f_ESP=%.0f/h t_RTA=%.1fms "
                  "f_RTA=%.0fq/s t_fresh=%.0fms%s\n",
                  live.NumPass(), live.t_esp_ms, live.f_esp_per_entity_hour,
                  live.t_rta_ms, live.f_rta_qps, live.t_fresh_ms,
                  live.fresh_traced ? "" : " (untraced)");
    }
  }
  const KpiSample final_window = monitor.Sample();
  stop.store(true, std::memory_order_release);
  esp_driver.join();
  for (auto& t : clients) t.join();
  const double elapsed = run.ElapsedSeconds();
  cluster.Stop();

  LatencyRecorder rta_all;
  for (const auto& r : rta_latency) rta_all.Merge(r);

  const KpiReport report = KpiReport::FromRecorders(
      esp_latency, rta_all, events_sent.load() / elapsed,
      queries_done.load() / elapsed, /*fresh_ms=*/0.0);

  std::printf("\n=== results ===\n");
  std::printf("ESP: %.0f events/s, latency %s  [t_ESP<=%.0fms: %s]\n",
              report.esp_throughput_eps, esp_latency.SummaryMillis().c_str(),
              targets.t_esp_ms, report.MeetsEsp(targets) ? "PASS" : "miss");
  std::printf("RTA: %.1f queries/s, latency %s  [t_RTA<=%.0fms: %s]\n",
              report.rta_throughput_qps, rta_all.SummaryMillis().c_str(),
              targets.t_rta_ms,
              report.rta_mean_ms <= targets.t_rta_ms ? "PASS" : "miss");
  const StorageNode::NodeStats stats = cluster.TotalStats();
  std::printf("cluster: %llu events processed, %llu rules fired, "
              "%llu scan cycles, %llu records merged\n",
              static_cast<unsigned long long>(stats.events_processed),
              static_cast<unsigned long long>(stats.rules_fired),
              static_cast<unsigned long long>(stats.scan_cycles),
              static_cast<unsigned long long>(stats.records_merged));

  std::printf("\n=== live SLA monitor (final window, traced t_fresh) ===\n");
  std::printf("%s", final_window.Render(targets).c_str());
  std::printf("\n=== metrics snapshot (Prometheus text format) ===\n%s",
              cluster.metrics().RenderPrometheus().c_str());
  return 0;
}
