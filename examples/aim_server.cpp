// aim_server: one AIM storage node behind the real TCP transport — the
// cluster's network-facing deployment (paper §4.2, Figure 4). Loads the
// benchmark schema / dimensions / rules, preloads entity profiles, then
// serves the frame protocol (docs/NETWORKING.md) until the duration ends.
//
//   $ ./aim_server [--port=N] [--entities=N] [--seconds=N]
//                  [--node-id=I] [--num-nodes=N] [--partitions=N]
//                  [--data-dir=PATH] [--checkpoint-secs=N]
//                  [--group-commit-micros=N]
//
// Defaults: ephemeral port (printed), 20000 entities, run for 30s.
// For a multi-node cluster start one aim_server per node with the same
// --num-nodes and distinct --node-id: each preloads only the entities the
// drivers' NodeHash routing will send it.
//
// With --data-dir the node is durable (docs/DURABILITY.md): it recovers
// from the directory's checkpoint chains + event logs on startup (first
// run cold-starts: preload, then an initial full checkpoint), requests an
// incremental checkpoint every --checkpoint-secs (default 10), and can be
// SIGKILLed at any point without losing an acknowledged event.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "aim/common/clock.h"
#include "aim/common/hash.h"
#include "aim/net/tcp_server.h"
#include "aim/server/local_node_channel.h"
#include "aim/server/storage_node.h"
#include "aim/workload/benchmark_schema.h"
#include "aim/workload/cdr_generator.h"
#include "aim/workload/dimension_data.h"
#include "aim/workload/rules_generator.h"

using namespace aim;

namespace {

std::int64_t FlagValue(int argc, char** argv, const char* name,
                       std::int64_t fallback) {
  const std::size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
      return std::atoll(argv[i] + len + 1);
    }
  }
  return fallback;
}

std::string StringFlag(int argc, char** argv, const char* name,
                       const char* fallback) {
  const std::size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
      return argv[i] + len + 1;
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint16_t port =
      static_cast<std::uint16_t>(FlagValue(argc, argv, "--port", 0));
  const std::uint64_t entities =
      static_cast<std::uint64_t>(FlagValue(argc, argv, "--entities", 20000));
  const int seconds =
      static_cast<int>(FlagValue(argc, argv, "--seconds", 30));
  const std::uint32_t node_id =
      static_cast<std::uint32_t>(FlagValue(argc, argv, "--node-id", 0));
  const std::uint32_t num_nodes =
      static_cast<std::uint32_t>(FlagValue(argc, argv, "--num-nodes", 1));
  const std::uint32_t partitions =
      static_cast<std::uint32_t>(FlagValue(argc, argv, "--partitions", 2));
  const std::string data_dir = StringFlag(argc, argv, "--data-dir", "");
  const std::int64_t checkpoint_secs =
      FlagValue(argc, argv, "--checkpoint-secs", 10);
  const std::int64_t group_commit_micros =
      FlagValue(argc, argv, "--group-commit-micros", 0);

  std::unique_ptr<Schema> schema = MakeCompactSchema();
  BenchmarkDims dims = MakeBenchmarkDims();
  RulesGeneratorOptions ropts;
  ropts.num_rules = 300;
  std::vector<Rule> rules = MakeBenchmarkRules(*schema, ropts);

  StorageNode::Options nopts;
  nopts.node_id = node_id;
  nopts.num_partitions = partitions;
  nopts.max_records_per_partition = entities * 2 / partitions + 1024;
  nopts.durability.dir = data_dir;
  nopts.durability.group_commit_micros = group_commit_micros;
  StorageNode node(schema.get(), &dims.catalog, &rules, nopts);

  bool preload = true;
  if (node.durable()) {
    StatusOr<StorageNode::RecoveryStats> rec = node.Recover();
    if (!rec.ok()) {
      std::fprintf(stderr, "recovery failed: %s\n",
                   rec.status().ToString().c_str());
      return 1;
    }
    if (!rec->cold_start) {
      preload = false;
      // Scripts (recovery smoke) grep for this exact line.
      std::printf("aim_server: recovered %llu records from %llu checkpoint "
                  "files, replayed %llu batches / %llu events / %llu record "
                  "ops; %llu records live\n",
                  static_cast<unsigned long long>(rec->records_restored),
                  static_cast<unsigned long long>(rec->checkpoints_applied),
                  static_cast<unsigned long long>(rec->batches_replayed),
                  static_cast<unsigned long long>(rec->events_replayed),
                  static_cast<unsigned long long>(rec->record_ops_replayed),
                  static_cast<unsigned long long>(node.total_records()));
    }
  }

  std::uint64_t loaded = 0;
  if (preload) {
    std::printf("aim_server: node %u/%u, loading %llu entity profiles...\n",
                node_id, num_nodes, static_cast<unsigned long long>(entities));
    std::vector<std::uint8_t> row(schema->record_size(), 0);
    for (EntityId e = 1; e <= entities; ++e) {
      if (NodeHash(e, num_nodes) != node_id) continue;
      std::fill(row.begin(), row.end(), 0);
      PopulateEntityProfile(*schema, dims, e, entities, row.data());
      if (!node.BulkLoad(e, row.data()).ok()) {
        std::fprintf(stderr, "bulk load failed at entity %llu\n",
                     static_cast<unsigned long long>(e));
        return 1;
      }
      ++loaded;
    }
    if (node.durable()) {
      // Initial full checkpoint: recovery always has a base image, so a
      // crash on the very first run replays the log on top of this rather
      // than on an unpopulated store.
      Status ck = node.CheckpointNow();
      if (!ck.ok()) {
        std::fprintf(stderr, "initial checkpoint failed: %s\n",
                     ck.ToString().c_str());
        return 1;
      }
    }
  } else {
    loaded = node.total_records();
  }
  if (!node.Start().ok()) {
    std::fprintf(stderr, "node start failed\n");
    return 1;
  }

  LocalNodeChannel channel(&node);
  net::TcpServer::Options sopts;
  sopts.port = port;
  sopts.metrics = &node.metrics();
  net::TcpServer server(&channel, sopts);
  Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", st.ToString().c_str());
    node.Stop();
    return 1;
  }
  // Scripts wait for this exact line to learn the (ephemeral) port.
  std::printf("aim_server: %llu records, listening on 127.0.0.1:%u\n",
              static_cast<unsigned long long>(loaded), server.port());
  std::fflush(stdout);

  Stopwatch run;
  double next_checkpoint = static_cast<double>(checkpoint_secs);
  while (run.ElapsedSeconds() < seconds) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    if (node.durable() && checkpoint_secs > 0 &&
        run.ElapsedSeconds() >= next_checkpoint) {
      node.RequestCheckpoint();  // incremental, written by the RTA threads
      next_checkpoint += static_cast<double>(checkpoint_secs);
    }
  }

  server.Stop();
  node.Stop();
  if (node.durable()) {
    // Final checkpoint with the threads parked: the next start restores it
    // and replays nothing.
    Status ck = node.CheckpointNow();
    if (!ck.ok()) {
      std::fprintf(stderr, "final checkpoint failed: %s\n",
                   ck.ToString().c_str());
    }
  }

  const StorageNode::NodeStats stats = node.stats();
  std::printf("aim_server: served %llu events, %llu queries\n",
              static_cast<unsigned long long>(stats.events_processed),
              static_cast<unsigned long long>(stats.queries_processed));
  std::printf("\n=== metrics snapshot (Prometheus text format) ===\n%s",
              node.metrics().RenderPrometheus().c_str());
  return 0;
}
