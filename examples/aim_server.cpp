// aim_server: one AIM storage node behind the real TCP transport — the
// cluster's network-facing deployment (paper §4.2, Figure 4). Loads the
// benchmark schema / dimensions / rules, preloads entity profiles, then
// serves the frame protocol (docs/NETWORKING.md) until the duration ends.
//
//   $ ./aim_server [--port=N] [--entities=N] [--seconds=N]
//                  [--node-id=I] [--num-nodes=N] [--partitions=N]
//
// Defaults: ephemeral port (printed), 20000 entities, run for 30s.
// For a multi-node cluster start one aim_server per node with the same
// --num-nodes and distinct --node-id: each preloads only the entities the
// drivers' NodeHash routing will send it.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "aim/common/clock.h"
#include "aim/common/hash.h"
#include "aim/net/tcp_server.h"
#include "aim/server/local_node_channel.h"
#include "aim/server/storage_node.h"
#include "aim/workload/benchmark_schema.h"
#include "aim/workload/cdr_generator.h"
#include "aim/workload/dimension_data.h"
#include "aim/workload/rules_generator.h"

using namespace aim;

namespace {

std::int64_t FlagValue(int argc, char** argv, const char* name,
                       std::int64_t fallback) {
  const std::size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
      return std::atoll(argv[i] + len + 1);
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint16_t port =
      static_cast<std::uint16_t>(FlagValue(argc, argv, "--port", 0));
  const std::uint64_t entities =
      static_cast<std::uint64_t>(FlagValue(argc, argv, "--entities", 20000));
  const int seconds =
      static_cast<int>(FlagValue(argc, argv, "--seconds", 30));
  const std::uint32_t node_id =
      static_cast<std::uint32_t>(FlagValue(argc, argv, "--node-id", 0));
  const std::uint32_t num_nodes =
      static_cast<std::uint32_t>(FlagValue(argc, argv, "--num-nodes", 1));
  const std::uint32_t partitions =
      static_cast<std::uint32_t>(FlagValue(argc, argv, "--partitions", 2));

  std::unique_ptr<Schema> schema = MakeCompactSchema();
  BenchmarkDims dims = MakeBenchmarkDims();
  RulesGeneratorOptions ropts;
  ropts.num_rules = 300;
  std::vector<Rule> rules = MakeBenchmarkRules(*schema, ropts);

  StorageNode::Options nopts;
  nopts.node_id = node_id;
  nopts.num_partitions = partitions;
  nopts.max_records_per_partition = entities * 2 / partitions + 1024;
  StorageNode node(schema.get(), &dims.catalog, &rules, nopts);

  std::printf("aim_server: node %u/%u, loading %llu entity profiles...\n",
              node_id, num_nodes, static_cast<unsigned long long>(entities));
  std::vector<std::uint8_t> row(schema->record_size(), 0);
  std::uint64_t loaded = 0;
  for (EntityId e = 1; e <= entities; ++e) {
    if (NodeHash(e, num_nodes) != node_id) continue;
    std::fill(row.begin(), row.end(), 0);
    PopulateEntityProfile(*schema, dims, e, entities, row.data());
    if (!node.BulkLoad(e, row.data()).ok()) {
      std::fprintf(stderr, "bulk load failed at entity %llu\n",
                   static_cast<unsigned long long>(e));
      return 1;
    }
    ++loaded;
  }
  if (!node.Start().ok()) {
    std::fprintf(stderr, "node start failed\n");
    return 1;
  }

  LocalNodeChannel channel(&node);
  net::TcpServer::Options sopts;
  sopts.port = port;
  sopts.metrics = &node.metrics();
  net::TcpServer server(&channel, sopts);
  Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", st.ToString().c_str());
    node.Stop();
    return 1;
  }
  // Scripts wait for this exact line to learn the (ephemeral) port.
  std::printf("aim_server: %llu records, listening on 127.0.0.1:%u\n",
              static_cast<unsigned long long>(loaded), server.port());
  std::fflush(stdout);

  Stopwatch run;
  while (run.ElapsedSeconds() < seconds) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }

  server.Stop();
  node.Stop();

  const StorageNode::NodeStats stats = node.stats();
  std::printf("aim_server: served %llu events, %llu queries\n",
              static_cast<unsigned long long>(stats.events_processed),
              static_cast<unsigned long long>(stats.queries_processed));
  std::printf("\n=== metrics snapshot (Prometheus text format) ===\n%s",
              node.metrics().RenderPrometheus().c_str());
  return 0;
}
