#!/usr/bin/env bash
# Lint gate for the AIM tree. Five checks:
#
#   1. memory-order audits (always run, no toolchain dependency): every
#      `memory_order_relaxed` in src/aim/** must carry a `// relaxed: ...`
#      justification and every `memory_order_seq_cst` a `// seq_cst: ...`
#      one — on the same line, within the 3 preceding lines, or chained
#      from an immediately preceding justified line (one comment may cover
#      a contiguous block). Relaxed is suspect because it may be *too weak*;
#      seq_cst because it may be papering over an unexplained protocol (or
#      adding fence cost for nothing) — the default in this tree is
#      acquire/release with a reason. See docs/CORRECTNESS.md.
#
#   1c. raw-mutex audit (always run): std::mutex / std::lock_guard /
#      std::unique_lock and friends are forbidden in src/aim/** outside
#      common/annotated_mutex.h, common/sync_provider.h, and mc/ — all
#      locking goes through the thread-safety-annotated wrappers so the
#      Clang analysis sees every acquisition (docs/CORRECTNESS.md,
#      "Thread-safety annotations").
#
#   1d. fuzz-coverage audit (always run): every public Decode*/Parse*/
#      Restore* entry point declared in src/aim/net/*.h, src/aim/storage/*.h
#      or src/aim/rta/sql_parser.h must be claimed by a harness listed in
#      fuzz/HARNESSES (docs/CORRECTNESS.md, "Fuzzing").
#
#   2. clang-tidy over src/aim/**/*.cc with the repo .clang-tidy config.
#      Skipped with a notice when clang-tidy or compile_commands.json is
#      unavailable (the CI lint job provides both).
#
#   2b. clang-tidy over src/aim/**/*.h via a generated umbrella TU with an
#      explicit --header-filter, so header-only classes (MpscQueue,
#      BufferPool, the annotated wrappers) get tidy coverage even though
#      no .cc of their own ever lands them in the compile database.
#
# Environment:
#   AIM_LINT_ROOT       root of the tree to lint (default: this repo) —
#                       used by tests/lint/ to point the audits at fixture
#                       trees with planted violations.
#   AIM_LINT_BUILD_DIR  build dir holding compile_commands.json (default:
#                       build).
#   AIM_LINT_SKIP_TIDY  set to 1 to skip the clang-tidy checks (the
#                       self-test uses this for toolchain-independent,
#                       byte-exact output).
#
# Exit status is non-zero iff a check that ran found a violation.

set -u

SCRIPT_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
REPO_ROOT="${AIM_LINT_ROOT:-$SCRIPT_ROOT}"
cd "$REPO_ROOT"

STATUS=0

# ---------------------------------------------------------------------------
# Check 1: relaxed-ordering justifications.
# ---------------------------------------------------------------------------
echo "== memory_order_relaxed justification audit =="

RELAXED_VIOLATIONS=$(
  find src/aim -name '*.h' -o -name '*.cc' | sort | xargs awk '
    FNR == 1 { last_justify = -10; last_ok_relaxed = -10 }
    /relaxed:/ { last_justify = FNR }
    /memory_order_relaxed/ {
      if (/relaxed:/ || FNR - last_justify <= 3 ||
          FNR - last_ok_relaxed <= 2) {
        last_ok_relaxed = FNR
      } else {
        printf "%s:%d: memory_order_relaxed without a \"// relaxed:\" justification\n", FILENAME, FNR
      }
    }
  '
)

if [ -n "$RELAXED_VIOLATIONS" ]; then
  echo "$RELAXED_VIOLATIONS"
  COUNT=$(printf '%s\n' "$RELAXED_VIOLATIONS" | wc -l)
  echo "FAIL: $COUNT unjustified memory_order_relaxed use(s)."
  echo "Add an adjacent '// relaxed: <why no ordering is needed>' comment."
  STATUS=1
else
  echo "OK: all memory_order_relaxed uses are justified."
fi

# ---------------------------------------------------------------------------
# Check 1b: seq_cst-ordering justifications (mirror of the relaxed audit —
# seq_cst is the other end of the "not plain acquire/release, explain
# yourself" spectrum: it usually means a Dekker-style store/load protocol
# that deserves a comment, or an accidental full fence that should be
# weakened).
# ---------------------------------------------------------------------------
echo
echo "== memory_order_seq_cst justification audit =="

SEQCST_VIOLATIONS=$(
  find src/aim -name '*.h' -o -name '*.cc' | sort | xargs awk '
    FNR == 1 { last_justify = -10; last_ok_seqcst = -10 }
    /seq_cst:/ { last_justify = FNR }
    /memory_order_seq_cst/ {
      if (/seq_cst:/ || FNR - last_justify <= 3 ||
          FNR - last_ok_seqcst <= 2) {
        last_ok_seqcst = FNR
      } else {
        printf "%s:%d: memory_order_seq_cst without a \"// seq_cst:\" justification\n", FILENAME, FNR
      }
    }
  '
)

if [ -n "$SEQCST_VIOLATIONS" ]; then
  echo "$SEQCST_VIOLATIONS"
  COUNT=$(printf '%s\n' "$SEQCST_VIOLATIONS" | wc -l)
  echo "FAIL: $COUNT unjustified memory_order_seq_cst use(s)."
  echo "Add an adjacent '// seq_cst: <why a total order is required>' comment"
  echo "or weaken the ordering."
  STATUS=1
else
  echo "OK: all memory_order_seq_cst uses are justified."
fi

# ---------------------------------------------------------------------------
# Check 1c: raw synchronization primitives outside the annotation layer.
# Comments are stripped before matching (prose may mention the std types);
# the allowlist is exactly the layer that implements the wrappers plus the
# model checker, whose shims ARE the instrumented primitives.
# ---------------------------------------------------------------------------
echo
echo "== raw-mutex audit =="

MUTEX_VIOLATIONS=$(
  find src/aim \( -path 'src/aim/mc' -o -path 'src/aim/mc/*' \) -prune \
       -o \( -name '*.h' -o -name '*.cc' \) -print | sort |
  grep -v -e '^src/aim/common/annotated_mutex\.h$' \
          -e '^src/aim/common/sync_provider\.h$' |
  xargs -r awk '
    {
      line = $0
      sub(/\/\/.*/, "", line)  # strip line comments
      if (match(line, /std::(mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|shared_mutex|shared_timed_mutex|lock_guard|unique_lock|scoped_lock|shared_lock|condition_variable_any|condition_variable)/)) {
        printf "%s:%d: raw %s outside the annotation layer\n", FILENAME, FNR, substr(line, RSTART, RLENGTH)
      } else if (match(line, /#[ \t]*include[ \t]*<(mutex|shared_mutex|condition_variable)>/)) {
        printf "%s:%d: raw %s outside the annotation layer\n", FILENAME, FNR, substr(line, RSTART, RLENGTH)
      }
    }
  '
)

if [ -n "$MUTEX_VIOLATIONS" ]; then
  echo "$MUTEX_VIOLATIONS"
  COUNT=$(printf '%s\n' "$MUTEX_VIOLATIONS" | wc -l)
  echo "FAIL: $COUNT raw mutex/lock/condvar use(s) outside the annotation layer."
  echo "Use the annotated wrappers from aim/common/annotated_mutex.h"
  echo "(aim::Mutex, MutexLock, SharedMutex, Reader/WriterLock, CondVar) so"
  echo "-Wthread-safety can check the locking."
  STATUS=1
else
  echo "OK: no raw mutex use outside the annotation layer."
fi

# ---------------------------------------------------------------------------
# Check 1d: fuzz-coverage audit. Every public Decode*/Parse*/Restore* entry
# point declared in the untrusted-input headers (net/, storage/, the SQL
# parser) must be claimed by a harness in fuzz/HARNESSES — adding a decoder
# without fuzzing it fails the gate. Comments are stripped before matching,
# and a word boundary is required before the name so e.g. a `SqlParser(...)`
# constructor does not count as a `Parser` entry point.
# ---------------------------------------------------------------------------
echo
echo "== fuzz-coverage audit =="

FUZZ_SURFACES=$(
  { find src/aim/net src/aim/storage -name '*.h' 2>/dev/null
    [ -f src/aim/rta/sql_parser.h ] && echo src/aim/rta/sql_parser.h
  } | sort
)

if [ -z "$FUZZ_SURFACES" ]; then
  echo "OK: no untrusted-decoder headers in this tree."
else
  COVERED=$(grep -v '^[ \t]*#' fuzz/HARNESSES 2>/dev/null |
            sed 's/^[^:]*://' | tr -s ' \t' '  ')
  # shellcheck disable=SC2086
  FUZZ_VIOLATIONS=$(printf '%s\n' "$FUZZ_SURFACES" | xargs awk -v covered="$COVERED" '
    BEGIN {
      n = split(covered, a, " ")
      for (i = 1; i <= n; i++) if (a[i] != "") cov[a[i]] = 1
    }
    {
      line = $0
      sub(/\/\/.*/, "", line)  # strip line comments
      while (match(line, /(^|[^A-Za-z0-9_])(Decode|Parse|Restore)[A-Za-z0-9_]*[ \t]*\(/)) {
        name = substr(line, RSTART, RLENGTH)
        sub(/^[^A-Za-z0-9_]/, "", name)  # drop the boundary char, if any
        sub(/[ \t]*\($/, "", name)
        if (!(name in cov) && !((FILENAME SUBSEP name) in seen)) {
          seen[FILENAME, name] = 1
          printf "%s:%d: decoder %s is not claimed by any fuzz harness (add it to fuzz/HARNESSES)\n", FILENAME, FNR, name
        }
        line = substr(line, RSTART + RLENGTH)
      }
    }
  ')

  if [ -n "$FUZZ_VIOLATIONS" ]; then
    echo "$FUZZ_VIOLATIONS"
    COUNT=$(printf '%s\n' "$FUZZ_VIOLATIONS" | wc -l)
    echo "FAIL: $COUNT unfuzzed decoder entry point(s)."
    echo "Every Decode*/Parse*/Restore* in net/, storage/ and rta/sql_parser.h"
    echo "must be exercised by a harness listed in fuzz/HARNESSES (see"
    echo "docs/CORRECTNESS.md, \"Fuzzing\")."
    STATUS=1
  else
    echo "OK: every decoder entry point is claimed by a fuzz harness."
  fi
fi

# ---------------------------------------------------------------------------
# Check 2: clang-tidy (when available).
# ---------------------------------------------------------------------------
echo
echo "== clang-tidy =="

BUILD_DIR="${AIM_LINT_BUILD_DIR:-build}"
if [ "${AIM_LINT_SKIP_TIDY:-0}" = "1" ]; then
  echo "SKIP: AIM_LINT_SKIP_TIDY=1."
elif ! command -v clang-tidy >/dev/null 2>&1; then
  echo "SKIP: clang-tidy not installed (install LLVM or run the CI lint job)."
elif [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "SKIP: $BUILD_DIR/compile_commands.json not found."
  echo "      Configure first: cmake -B $BUILD_DIR -S . (exports compile commands)."
else
  # shellcheck disable=SC2046
  if ! clang-tidy -p "$BUILD_DIR" --quiet $(find src/aim -name '*.cc' | sort); then
    echo "FAIL: clang-tidy reported warnings (treated as errors)."
    STATUS=1
  else
    echo "OK: clang-tidy clean."
  fi

  # Check 2b: header umbrella. Every header in src/aim/** must be
  # self-contained, so one generated TU that includes them all gives tidy
  # a compilation to diagnose headers through; --header-filter opts every
  # included repo header into the diagnostics.
  echo
  echo "== clang-tidy (header umbrella) =="
  UMBRELLA="$(mktemp -t aim_lint_umbrella_XXXXXX.cc)"
  trap 'rm -f "$UMBRELLA"' EXIT
  find src/aim -name '*.h' | sort |
    sed -e 's|^src/|#include "|' -e 's|$|"|' > "$UMBRELLA"
  if ! clang-tidy --quiet --header-filter='src/aim/.*' "$UMBRELLA" -- \
       -std=c++20 -I "$REPO_ROOT/src" -Wno-pragma-once-outside-header; then
    echo "FAIL: clang-tidy reported warnings in headers (treated as errors)."
    STATUS=1
  else
    echo "OK: clang-tidy clean over all src/aim headers."
  fi
fi

exit $STATUS
