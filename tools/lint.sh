#!/usr/bin/env bash
# Lint gate for the AIM tree. Three checks:
#
#   1. memory-order audits (always run, no toolchain dependency): every
#      `memory_order_relaxed` in src/aim/** must carry a `// relaxed: ...`
#      justification and every `memory_order_seq_cst` a `// seq_cst: ...`
#      one — on the same line, within the 3 preceding lines, or chained
#      from an immediately preceding justified line (one comment may cover
#      a contiguous block). Relaxed is suspect because it may be *too weak*;
#      seq_cst because it may be papering over an unexplained protocol (or
#      adding fence cost for nothing) — the default in this tree is
#      acquire/release with a reason. See docs/CORRECTNESS.md.
#
#   2. clang-tidy over src/aim/**/*.cc with the repo .clang-tidy config.
#      Skipped with a notice when clang-tidy or compile_commands.json is
#      unavailable (the CI lint job provides both).
#
# Exit status is non-zero iff a check that ran found a violation.

set -u

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"

STATUS=0

# ---------------------------------------------------------------------------
# Check 1: relaxed-ordering justifications.
# ---------------------------------------------------------------------------
echo "== memory_order_relaxed justification audit =="

RELAXED_VIOLATIONS=$(
  find src/aim -name '*.h' -o -name '*.cc' | sort | xargs awk '
    FNR == 1 { last_justify = -10; last_ok_relaxed = -10 }
    /relaxed:/ { last_justify = FNR }
    /memory_order_relaxed/ {
      if (/relaxed:/ || FNR - last_justify <= 3 ||
          FNR - last_ok_relaxed <= 2) {
        last_ok_relaxed = FNR
      } else {
        printf "%s:%d: memory_order_relaxed without a \"// relaxed:\" justification\n", FILENAME, FNR
      }
    }
  '
)

if [ -n "$RELAXED_VIOLATIONS" ]; then
  echo "$RELAXED_VIOLATIONS"
  COUNT=$(printf '%s\n' "$RELAXED_VIOLATIONS" | wc -l)
  echo "FAIL: $COUNT unjustified memory_order_relaxed use(s)."
  echo "Add an adjacent '// relaxed: <why no ordering is needed>' comment."
  STATUS=1
else
  echo "OK: all memory_order_relaxed uses are justified."
fi

# ---------------------------------------------------------------------------
# Check 1b: seq_cst-ordering justifications (mirror of the relaxed audit —
# seq_cst is the other end of the "not plain acquire/release, explain
# yourself" spectrum: it usually means a Dekker-style store/load protocol
# that deserves a comment, or an accidental full fence that should be
# weakened).
# ---------------------------------------------------------------------------
echo
echo "== memory_order_seq_cst justification audit =="

SEQCST_VIOLATIONS=$(
  find src/aim -name '*.h' -o -name '*.cc' | sort | xargs awk '
    FNR == 1 { last_justify = -10; last_ok_seqcst = -10 }
    /seq_cst:/ { last_justify = FNR }
    /memory_order_seq_cst/ {
      if (/seq_cst:/ || FNR - last_justify <= 3 ||
          FNR - last_ok_seqcst <= 2) {
        last_ok_seqcst = FNR
      } else {
        printf "%s:%d: memory_order_seq_cst without a \"// seq_cst:\" justification\n", FILENAME, FNR
      }
    }
  '
)

if [ -n "$SEQCST_VIOLATIONS" ]; then
  echo "$SEQCST_VIOLATIONS"
  COUNT=$(printf '%s\n' "$SEQCST_VIOLATIONS" | wc -l)
  echo "FAIL: $COUNT unjustified memory_order_seq_cst use(s)."
  echo "Add an adjacent '// seq_cst: <why a total order is required>' comment"
  echo "or weaken the ordering."
  STATUS=1
else
  echo "OK: all memory_order_seq_cst uses are justified."
fi

# ---------------------------------------------------------------------------
# Check 2: clang-tidy (when available).
# ---------------------------------------------------------------------------
echo
echo "== clang-tidy =="

BUILD_DIR="${AIM_LINT_BUILD_DIR:-build}"
if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "SKIP: clang-tidy not installed (install LLVM or run the CI lint job)."
elif [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "SKIP: $BUILD_DIR/compile_commands.json not found."
  echo "      Configure first: cmake -B $BUILD_DIR -S . (exports compile commands)."
else
  # shellcheck disable=SC2046
  if ! clang-tidy -p "$BUILD_DIR" --quiet $(find src/aim -name '*.cc' | sort); then
    echo "FAIL: clang-tidy reported warnings (treated as errors)."
    STATUS=1
  else
    echo "OK: clang-tidy clean."
  fi
fi

exit $STATUS
