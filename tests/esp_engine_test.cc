#include <algorithm>

#include <gtest/gtest.h>

#include "aim/esp/esp_engine.h"
#include "test_util.h"

namespace aim {
namespace {

using testing_util::MakeTinySchema;

class EspEngineTest : public ::testing::Test {
 protected:
  EspEngineTest() : schema_(MakeTinySchema()) {
    DeltaMainStore::Options opts;
    opts.bucket_size = 8;
    opts.max_records = 1024;
    store_ = std::make_unique<DeltaMainStore>(schema_.get(), opts);
    sys_.entity_id = schema_->FindAttribute("entity_id");
    sys_.last_event_ts = schema_->FindAttribute("last_event_ts");
    sys_.preferred_number = schema_->FindAttribute("preferred_number");
  }

  EspEngine MakeEngine(EspEngine::Options opts = {}) {
    return EspEngine(schema_.get(), store_.get(), &rules_, sys_, opts);
  }

  Event CallEvent(EntityId caller, Timestamp ts, std::uint32_t duration,
                  float cost = 1.0f, bool long_distance = false) {
    Event e;
    e.caller = caller;
    e.callee = 2;
    e.timestamp = ts;
    e.duration = duration;
    e.cost = cost;
    if (long_distance) e.flags |= Event::kLongDistance;
    return e;
  }

  std::unique_ptr<Schema> schema_;
  std::unique_ptr<DeltaMainStore> store_;
  std::vector<Rule> rules_;
  SystemAttrs sys_;
};

TEST_F(EspEngineTest, CreatesMissingEntityAndUpdates) {
  EspEngine engine = MakeEngine();
  ASSERT_TRUE(engine.ProcessEvent(CallEvent(5, 1000, 60), nullptr).ok());
  ASSERT_TRUE(engine.ProcessEvent(CallEvent(5, 2000, 40), nullptr).ok());

  EXPECT_EQ(engine.stats().events_processed, 2u);
  EXPECT_EQ(engine.stats().entities_created, 1u);
  EXPECT_EQ(
      store_->GetAttribute(5, schema_->FindAttribute("calls_today"))->i32(),
      2);
  EXPECT_FLOAT_EQ(
      store_->GetAttribute(5, schema_->FindAttribute("dur_today_sum"))->f32(),
      100.0f);
  EXPECT_EQ(store_->GetAttribute(5, sys_.entity_id)->u64(), 5u);
  EXPECT_EQ(store_->GetAttribute(5, sys_.last_event_ts)->i64(), 2000);
}

TEST_F(EspEngineTest, MissingEntityRejectedWhenCreateDisabled) {
  EspEngine::Options opts;
  opts.create_missing_entities = false;
  EspEngine engine = MakeEngine(opts);
  EXPECT_TRUE(
      engine.ProcessEvent(CallEvent(5, 1000, 60), nullptr).IsNotFound());
}

TEST_F(EspEngineTest, UpdatesExistingBulkLoadedEntity) {
  std::vector<std::uint8_t> row(schema_->record_size(), 0);
  RecordView rec(schema_.get(), row.data());
  rec.SetAs<std::uint64_t>(sys_.entity_id, 9);
  ASSERT_TRUE(store_->BulkInsert(9, row.data()).ok());

  EspEngine engine = MakeEngine();
  ASSERT_TRUE(engine.ProcessEvent(CallEvent(9, 500, 30), nullptr).ok());
  EXPECT_EQ(engine.stats().entities_created, 0u);
  EXPECT_EQ(
      store_->GetAttribute(9, schema_->FindAttribute("calls_today"))->i32(),
      1);
}

TEST_F(EspEngineTest, RulesFireOnUpdatedRecord) {
  const std::uint16_t calls = schema_->FindAttribute("calls_today");
  rules_.push_back(
      RuleBuilder(0, "threshold").Where(calls, CmpOp::kGe, 3).Build());
  EspEngine engine = MakeEngine();

  std::vector<std::uint32_t> fired;
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(engine.ProcessEvent(CallEvent(1, 100 + i, 10), &fired).ok());
    EXPECT_TRUE(fired.empty()) << "event " << i;
  }
  // Third call today: count reaches 3, rule fires.
  ASSERT_TRUE(engine.ProcessEvent(CallEvent(1, 102, 10), &fired).ok());
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 0u);
  EXPECT_EQ(engine.stats().rules_fired, 1u);
}

TEST_F(EspEngineTest, FiringPolicySuppressesRepeats) {
  const std::uint16_t calls = schema_->FindAttribute("calls_today");
  rules_.push_back(RuleBuilder(0, "capped")
                       .Where(calls, CmpOp::kGe, 1)
                       .WithPolicy(FiringPolicy::PerWindow(2, kMillisPerDay))
                       .Build());
  EspEngine engine = MakeEngine();

  std::vector<std::uint32_t> fired;
  int total_fired = 0;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(engine.ProcessEvent(CallEvent(1, 100 + i, 10), &fired).ok());
    total_fired += static_cast<int>(fired.size());
  }
  EXPECT_EQ(total_fired, 2);
  EXPECT_EQ(engine.stats().rules_suppressed, 3u);
}

TEST_F(EspEngineTest, RuleIndexModeAgreesWithStraightEvaluation) {
  const std::uint16_t calls = schema_->FindAttribute("calls_today");
  const std::uint16_t sum = schema_->FindAttribute("dur_today_sum");
  rules_.push_back(
      RuleBuilder(0, "a").Where(calls, CmpOp::kGe, 2).Build());
  rules_.push_back(RuleBuilder(1, "b")
                       .Where(sum, CmpOp::kGt, 100)
                       .AndEvent(EventFieldId::kDuration, CmpOp::kGt, 50)
                       .Build());

  // Two engines over two stores processing identical events.
  DeltaMainStore::Options opts;
  opts.bucket_size = 8;
  opts.max_records = 1024;
  DeltaMainStore store2(schema_.get(), opts);
  EspEngine straight = MakeEngine();
  EspEngine::Options iopts;
  iopts.use_rule_index = true;
  EspEngine indexed(schema_.get(), &store2, &rules_, sys_, iopts);

  Random rng(4);
  std::vector<std::uint32_t> f1, f2;
  for (int i = 0; i < 200; ++i) {
    Event e = testing_util::RandomEvent(&rng, rng.Uniform(5) + 1, 1000 + i);
    ASSERT_TRUE(straight.ProcessEvent(e, &f1).ok());
    ASSERT_TRUE(indexed.ProcessEvent(e, &f2).ok());
    std::sort(f1.begin(), f1.end());
    std::sort(f2.begin(), f2.end());
    ASSERT_EQ(f1, f2) << "event " << i;
  }
}

TEST_F(EspEngineTest, ArchiveRetainsProcessedEvents) {
  EspEngine::Options opts;
  opts.keep_event_archive = true;
  opts.archive_retention_ms = kMillisPerDay;
  EspEngine engine = MakeEngine(opts);
  ASSERT_NE(engine.archive(), nullptr);
  ASSERT_TRUE(engine.ProcessEvent(CallEvent(4, 100, 10), nullptr).ok());
  ASSERT_TRUE(engine.ProcessEvent(CallEvent(4, 200, 20), nullptr).ok());
  ASSERT_TRUE(engine.ProcessEvent(CallEvent(5, 300, 30), nullptr).ok());
  EXPECT_EQ(engine.archive()->TotalEvents(), 3u);
  EXPECT_EQ(engine.archive()->EventsOf(4), 2u);

  // No archive unless requested.
  EspEngine plain = MakeEngine();
  EXPECT_EQ(plain.archive(), nullptr);
}

// The ProcessBatch contract: batched processing — with or without group
// prefetching — is bit-identical to N sequential ProcessEvent calls. One
// engine replays the stream event at a time, a second replays it in random
// batch splits; statuses, fired-rule sets, counter accounting, record
// bytes AND versions must all match exactly. The entity universe is tiny
// (8) so nearly every batch holds same-entity collisions, the case where a
// reordering or stale-prefetch bug would surface, and both stores merge at
// identical stream positions to exercise the frozen-delta path too.
TEST_F(EspEngineTest, BatchEquivalentToSequentialBitForBit) {
  const std::uint16_t calls = schema_->FindAttribute("calls_today");
  const std::uint16_t sum = schema_->FindAttribute("dur_today_sum");
  rules_.push_back(
      RuleBuilder(0, "ge2").Where(calls, CmpOp::kGe, 2).Build());
  rules_.push_back(RuleBuilder(1, "cap")
                       .Where(sum, CmpOp::kGt, 50)
                       .WithPolicy(FiringPolicy::PerWindow(3, kMillisPerDay))
                       .Build());

  for (int distance : {0, 3, 8}) {
    DeltaMainStore::Options sopts;
    sopts.bucket_size = 8;
    sopts.max_records = 1024;
    DeltaMainStore seq_store(schema_.get(), sopts);
    DeltaMainStore batch_store(schema_.get(), sopts);
    EspEngine seq(schema_.get(), &seq_store, &rules_, sys_, {});
    EspEngine::Options bopts;
    bopts.prefetch_distance = distance;
    EspEngine batched(schema_.get(), &batch_store, &rules_, sys_, bopts);

    Random rng(1234 + distance);
    std::vector<Event> stream;
    for (int i = 0; i < 600; ++i) {
      stream.push_back(
          testing_util::RandomEvent(&rng, rng.Uniform(8) + 1, 1000 + i));
    }

    EspEngine::BatchResult result;
    std::vector<std::uint32_t> fired;
    std::size_t pos = 0;
    while (pos < stream.size()) {
      const std::size_t k = std::min<std::size_t>(
          rng.Uniform(48) + 1, stream.size() - pos);
      batched.ProcessBatch({stream.data() + pos, k}, &result);
      for (std::size_t i = 0; i < k; ++i) {
        const Status s = seq.ProcessEvent(stream[pos + i], &fired);
        ASSERT_EQ(s.code(), result.statuses[i].code())
            << "event " << pos + i << " distance " << distance;
        ASSERT_EQ(fired, result.fired[i])
            << "event " << pos + i << " distance " << distance;
      }
      pos += k;
      if (rng.Uniform(4) == 0) {
        seq_store.Merge();
        batch_store.Merge();
      }
    }

    std::vector<std::uint8_t> row_seq(schema_->record_size());
    std::vector<std::uint8_t> row_batch(schema_->record_size());
    for (EntityId e = 1; e <= 8; ++e) {
      Version v_seq = 0;
      Version v_batch = 0;
      ASSERT_TRUE(seq_store.Get(e, row_seq.data(), &v_seq).ok());
      ASSERT_TRUE(batch_store.Get(e, row_batch.data(), &v_batch).ok());
      EXPECT_EQ(row_seq, row_batch) << "entity " << e;
      EXPECT_EQ(v_seq, v_batch) << "entity " << e;
    }
    const EspEngine::Stats a = seq.stats();
    const EspEngine::Stats b = batched.stats();
    EXPECT_EQ(a.events_processed, b.events_processed);
    EXPECT_EQ(a.txn_conflicts, b.txn_conflicts);
    EXPECT_EQ(a.rules_fired, b.rules_fired);
    EXPECT_EQ(a.rules_suppressed, b.rules_suppressed);
    EXPECT_EQ(a.entities_created, b.entities_created);
  }
}

TEST_F(EspEngineTest, IndicatorsVisibleAfterMergeToo) {
  EspEngine engine = MakeEngine();
  ASSERT_TRUE(engine.ProcessEvent(CallEvent(3, 100, 25), nullptr).ok());
  store_->Merge();
  ASSERT_TRUE(engine.ProcessEvent(CallEvent(3, 200, 25), nullptr).ok());
  EXPECT_EQ(
      store_->GetAttribute(3, schema_->FindAttribute("calls_today"))->i32(),
      2);
}

}  // namespace
}  // namespace aim
