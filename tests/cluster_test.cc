#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "aim/server/aim_cluster.h"
#include "aim/server/aim_db.h"
#include "aim/workload/benchmark_schema.h"
#include "aim/workload/cdr_generator.h"
#include "aim/workload/dimension_data.h"
#include "aim/workload/query_workload.h"

namespace aim {
namespace {

class ClusterTest : public ::testing::Test {
 protected:
  ClusterTest() : schema_(MakeCompactSchema()), dims_(MakeBenchmarkDims()) {}

  AimCluster::Options ClusterOptions(std::uint32_t nodes) {
    AimCluster::Options opts;
    opts.num_nodes = nodes;
    opts.node.num_partitions = 2;
    opts.node.num_esp_threads = 1;
    opts.node.bucket_size = 64;
    opts.node.max_records_per_partition = 1 << 14;
    opts.node.scan_poll_micros = 200;
    return opts;
  }

  void LoadEntities(AimCluster* cluster, AimDb* reference, std::uint64_t n) {
    std::vector<std::uint8_t> row(schema_->record_size(), 0);
    for (EntityId e = 1; e <= n; ++e) {
      std::fill(row.begin(), row.end(), 0);
      PopulateEntityProfile(*schema_, dims_, e, n, row.data());
      ASSERT_TRUE(cluster->LoadEntity(e, row.data()).ok());
      if (reference != nullptr) {
        ASSERT_TRUE(reference->LoadEntity(e, row.data()).ok());
      }
    }
  }

  /// Waits until the cluster has processed `n` events.
  void AwaitEvents(AimCluster* cluster, std::uint64_t n) {
    for (int attempt = 0; attempt < 2000; ++attempt) {
      if (cluster->TotalStats().events_processed >= n) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    FAIL() << "cluster never drained " << n << " events";
  }

  /// Polls a query until consecutive results agree and the delta has
  /// drained (freshness settled).
  QueryResult SettledQuery(AimCluster* cluster, const Query& q,
                           double expected_first_value) {
    QueryResult r;
    for (int attempt = 0; attempt < 500; ++attempt) {
      r = cluster->ExecuteQuery(q);
      if (r.status.ok() && !r.rows.empty() &&
          r.rows[0].values[0] == expected_first_value) {
        return r;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return r;
  }

  std::unique_ptr<Schema> schema_;
  BenchmarkDims dims_;
  std::vector<Rule> rules_;
};

TEST_F(ClusterTest, RoutesEntitiesAcrossNodes) {
  AimCluster cluster(schema_.get(), &dims_.catalog, &rules_,
                     ClusterOptions(3));
  LoadEntities(&cluster, nullptr, 300);
  EXPECT_EQ(cluster.total_records(), 300u);
  // Every node got a reasonable share.
  for (std::uint32_t i = 0; i < cluster.num_nodes(); ++i) {
    EXPECT_GT(cluster.node(i).total_records(), 50u);
  }
}

TEST_F(ClusterTest, ClusterMatchesEmbeddedReference) {
  // The same event stream processed by the threaded 2-node cluster and the
  // single-threaded embedded AimDb must converge to identical analytics.
  AimCluster cluster(schema_.get(), &dims_.catalog, &rules_,
                     ClusterOptions(2));
  AimDb::Options ropts;
  ropts.bucket_size = 64;
  ropts.max_records = 1 << 14;
  AimDb reference(schema_.get(), &dims_.catalog, &rules_, ropts);

  constexpr std::uint64_t kEntities = 200;
  constexpr int kEvents = 2000;
  LoadEntities(&cluster, &reference, kEntities);
  ASSERT_TRUE(cluster.Start().ok());

  CdrGenerator::Options gopts;
  gopts.num_entities = kEntities;
  CdrGenerator gen(gopts);
  for (int i = 0; i < kEvents; ++i) {
    const Event e = gen.Next(10000 + i);
    ASSERT_TRUE(reference.ProcessEvent(e).ok());
    ASSERT_TRUE(cluster.IngestEvent(e, nullptr));
  }
  AwaitEvents(&cluster, kEvents);

  // Compare several deterministic queries.
  std::vector<Query> queries;
  queries.push_back(*QueryBuilder(schema_.get())
                         .Select(AggOp::kSum, "number_of_calls_today")
                         .SelectCount()
                         .Build());
  queries.push_back(*QueryBuilder(schema_.get())
                         .Select(AggOp::kMax, "cost_this_week_max")
                         .Select(AggOp::kSum, "total_duration_this_week")
                         .Build());
  queries.push_back(
      *QueryBuilder(schema_.get())
           .SelectCount()
           .GroupByDim("zip", dims_.region_info, dims_.region_region)
           .Build());

  for (const Query& q : queries) {
    const QueryResult want = reference.Execute(q);
    ASSERT_TRUE(want.status.ok());
    const QueryResult got =
        SettledQuery(&cluster, q, want.rows[0].values[0]);
    ASSERT_TRUE(got.status.ok());
    ASSERT_EQ(got.rows.size(), want.rows.size()) << q.ToString(schema_.get());
    for (std::size_t r = 0; r < want.rows.size(); ++r) {
      EXPECT_EQ(got.rows[r].group_key, want.rows[r].group_key);
      ASSERT_EQ(got.rows[r].values.size(), want.rows[r].values.size());
      for (std::size_t v = 0; v < want.rows[r].values.size(); ++v) {
        EXPECT_NEAR(got.rows[r].values[v], want.rows[r].values[v],
                    1e-3 * (1.0 + std::abs(want.rows[r].values[v])))
            << q.ToString(schema_.get()) << " row " << r << " val " << v;
      }
    }
  }
  cluster.Stop();
}

TEST_F(ClusterTest, ConcurrentClientsInClosedLoop) {
  AimCluster cluster(schema_.get(), &dims_.catalog, &rules_,
                     ClusterOptions(2));
  LoadEntities(&cluster, nullptr, 100);
  ASSERT_TRUE(cluster.Start().ok());

  // Event feeder thread + c=4 closed-loop query clients.
  std::atomic<bool> stop{false};
  std::thread feeder([&] {
    CdrGenerator::Options gopts;
    gopts.num_entities = 100;
    CdrGenerator gen(gopts);
    Timestamp now = 0;
    while (!stop.load(std::memory_order_acquire)) {
      cluster.IngestEvent(gen.Next(now++), nullptr);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  std::atomic<std::uint64_t> ok_queries{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      QueryWorkload workload(schema_.get(), &dims_, 100 + c);
      Query q = *QueryBuilder(schema_.get())
                     .SelectCount()
                     .Where("number_of_calls_today", CmpOp::kGe,
                            Value::Int32(c))
                     .Build();
      for (int i = 0; i < 20; ++i) {
        const QueryResult r = cluster.ExecuteQuery(q);
        if (r.status.ok()) ok_queries.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  stop.store(true, std::memory_order_release);
  feeder.join();
  cluster.Stop();
  EXPECT_EQ(ok_queries.load(), 80u);
  EXPECT_GT(cluster.TotalStats().queries_processed, 0u);
}

TEST_F(ClusterTest, QueryAfterStopReportsShutdown) {
  AimCluster cluster(schema_.get(), &dims_.catalog, &rules_,
                     ClusterOptions(1));
  LoadEntities(&cluster, nullptr, 10);
  ASSERT_TRUE(cluster.Start().ok());
  cluster.Stop();
  Query q = *QueryBuilder(schema_.get()).SelectCount().Build();
  const QueryResult r = cluster.ExecuteQuery(q);
  EXPECT_TRUE(r.status.IsShutdown());
}

}  // namespace
}  // namespace aim
