#include <thread>

#include <gtest/gtest.h>

#include "aim/common/binary_io.h"
#include "aim/common/clock.h"
#include "aim/common/hash.h"
#include "aim/common/latency_recorder.h"
#include "aim/common/mpsc_queue.h"
#include "aim/common/random.h"
#include "aim/common/status.h"

namespace aim {
namespace {

// ---------------------------------------------------------------------------
// Status / StatusOr
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCodesAndMessages) {
  Status s = Status::NotFound("key 42");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "key 42");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: key 42");

  EXPECT_TRUE(Status::Conflict().IsConflict());
  EXPECT_TRUE(Status::InvalidArgument().IsInvalidArgument());
  EXPECT_TRUE(Status::Capacity().IsCapacity());
  EXPECT_TRUE(Status::Unsupported().IsUnsupported());
  EXPECT_TRUE(Status::Internal().IsInternal());
  EXPECT_TRUE(Status::TimedOut().IsTimedOut());
  EXPECT_TRUE(Status::Shutdown().IsShutdown());
}

TEST(StatusTest, EqualityComparesCodesOnly) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound() == Status::Conflict());
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("gone");
  EXPECT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsNotFound());
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> owned = std::move(v).value();
  EXPECT_EQ(*owned, 7);
}

// ---------------------------------------------------------------------------
// Random
// ---------------------------------------------------------------------------

TEST(RandomTest, DeterministicFromSeed) {
  Random a(123), b(123), c(124);
  bool differs_from_c = false;
  for (int i = 0; i < 100; ++i) {
    std::uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    if (va != c.Next()) differs_from_c = true;
  }
  EXPECT_TRUE(differs_from_c);
}

TEST(RandomTest, UniformInRange) {
  Random rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
    std::int64_t v = rng.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, RoughlyUniformBuckets) {
  Random rng(99);
  int buckets[10] = {};
  const int n = 100000;
  for (int i = 0; i < n; ++i) buckets[rng.Uniform(10)]++;
  for (int b = 0; b < 10; ++b) {
    EXPECT_GT(buckets[b], n / 10 - n / 50);
    EXPECT_LT(buckets[b], n / 10 + n / 50);
  }
}

// ---------------------------------------------------------------------------
// Hashing
// ---------------------------------------------------------------------------

TEST(HashTest, NodeRoutingIsStableAndInRange) {
  for (std::uint64_t k = 0; k < 1000; ++k) {
    std::uint32_t n = NodeHash(k, 7);
    EXPECT_LT(n, 7u);
    EXPECT_EQ(n, NodeHash(k, 7));
  }
}

TEST(HashTest, SequentialKeysSpreadAcrossPartitions) {
  // The benchmark uses sequential entity ids; routing must still balance.
  int counts[4] = {};
  for (std::uint64_t k = 1; k <= 4000; ++k) {
    counts[PartitionHash(k, /*node_id=*/0, 4)]++;
  }
  for (int c : counts) {
    EXPECT_GT(c, 800);
    EXPECT_LT(c, 1200);
  }
}

TEST(HashTest, NodeAndPartitionHashesAreIndependent) {
  // Keys all landing on node 0 must still spread over node 0's partitions.
  int counts[4] = {};
  int total = 0;
  for (std::uint64_t k = 1; k <= 20000; ++k) {
    if (NodeHash(k, 4) != 0) continue;
    counts[PartitionHash(k, 0, 4)]++;
    total++;
  }
  ASSERT_GT(total, 3000);
  for (int c : counts) EXPECT_GT(c, total / 8);
}

// ---------------------------------------------------------------------------
// Clocks
// ---------------------------------------------------------------------------

TEST(ClockTest, VirtualClockAdvances) {
  VirtualClock clock(100);
  EXPECT_EQ(clock.NowMillis(), 100);
  clock.Advance(50);
  EXPECT_EQ(clock.NowMillis(), 150);
  clock.Set(10);
  EXPECT_EQ(clock.NowMillis(), 10);
}

TEST(ClockTest, WallClockMonotonic) {
  WallClock clock;
  Timestamp a = clock.NowMillis();
  Timestamp b = clock.NowMillis();
  EXPECT_LE(a, b);
}

TEST(ClockTest, StopwatchMeasuresElapsed) {
  Stopwatch sw;
  volatile std::uint64_t sink = 0;
  for (std::uint64_t i = 0; i < 100000; ++i) sink += i;
  EXPECT_GT(sw.ElapsedNanos(), 0);
  EXPECT_GE(sw.ElapsedMillis(), 0.0);
}

// ---------------------------------------------------------------------------
// LatencyRecorder
// ---------------------------------------------------------------------------

TEST(LatencyRecorderTest, EmptyRecorder) {
  LatencyRecorder r;
  EXPECT_EQ(r.count(), 0u);
  EXPECT_EQ(r.MeanMicros(), 0.0);
  EXPECT_EQ(r.PercentileMicros(0.5), 0.0);
}

TEST(LatencyRecorderTest, MeanAndExtremes) {
  LatencyRecorder r;
  r.Record(100.0);
  r.Record(200.0);
  r.Record(300.0);
  EXPECT_EQ(r.count(), 3u);
  EXPECT_DOUBLE_EQ(r.MeanMicros(), 200.0);
  EXPECT_DOUBLE_EQ(r.MaxMicros(), 300.0);
  EXPECT_DOUBLE_EQ(r.MinMicros(), 100.0);
}

TEST(LatencyRecorderTest, PercentilesBracketTrueValue) {
  LatencyRecorder r;
  for (int i = 1; i <= 1000; ++i) r.Record(static_cast<double>(i));
  // Log-bucketed: p50 should be near 500 within one bucket (~19%).
  const double p50 = r.PercentileMicros(0.50);
  EXPECT_GT(p50, 500.0 * 0.8);
  EXPECT_LT(p50, 500.0 * 1.3);
  const double p99 = r.PercentileMicros(0.99);
  EXPECT_GT(p99, 990.0 * 0.8);
  EXPECT_LT(p99, 990.0 * 1.3);
}

TEST(LatencyRecorderTest, MergeCombines) {
  LatencyRecorder a, b;
  a.Record(10.0);
  b.Record(1000.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.MaxMicros(), 1000.0);
  EXPECT_DOUBLE_EQ(a.MinMicros(), 10.0);
  EXPECT_FALSE(a.SummaryMillis().empty());
}

// ---------------------------------------------------------------------------
// MpscQueue
// ---------------------------------------------------------------------------

TEST(MpscQueueTest, PushPopFifo) {
  MpscQueue<int> q;
  EXPECT_TRUE(q.Push(1));
  EXPECT_TRUE(q.Push(2));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.Pop().value(), 2);
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(MpscQueueTest, CloseDrainsThenEmpty) {
  MpscQueue<int> q;
  q.Push(1);
  q.Close();
  EXPECT_FALSE(q.Push(2));
  EXPECT_EQ(q.Pop().value(), 1);  // drains remaining
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(MpscQueueTest, BoundedTryPush) {
  MpscQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));
  q.TryPop();
  EXPECT_TRUE(q.TryPush(3));
}

TEST(MpscQueueTest, DrainInto) {
  MpscQueue<int> q;
  for (int i = 0; i < 5; ++i) q.Push(i);
  std::vector<int> out;
  EXPECT_EQ(q.DrainInto(&out), 5u);
  EXPECT_EQ(out.size(), 5u);
  EXPECT_EQ(q.size(), 0u);
}

TEST(MpscQueueTest, DrainIntoBoundedTakesPrefixAndAppends) {
  MpscQueue<int> q;
  for (int i = 0; i < 7; ++i) q.Push(i);
  std::vector<int> out;
  // Bounded drain takes exactly max_items in FIFO order...
  EXPECT_EQ(q.DrainInto(&out, 3), 3u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(q.size(), 4u);
  // ...appends to the output instead of clearing it...
  EXPECT_EQ(q.DrainInto(&out, 2), 2u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4}));
  // ...returns fewer when the queue holds fewer, and 0 = no limit.
  EXPECT_EQ(q.DrainInto(&out, 100), 2u);
  EXPECT_EQ(q.DrainInto(&out, 0), 0u);
  EXPECT_EQ(out.size(), 7u);
}

TEST(MpscQueueTest, PushAllEnqueuesBatchInOrder) {
  MpscQueue<int> q;
  std::vector<int> batch = {1, 2, 3, 4};
  ASSERT_TRUE(q.PushAll(batch.begin(), batch.end()));
  std::vector<int> empty;
  ASSERT_TRUE(q.PushAll(empty.begin(), empty.end()));  // no-op, still ok
  std::vector<int> out;
  EXPECT_EQ(q.DrainInto(&out), 4u);
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3, 4}));
}

TEST(MpscQueueTest, PushAllAfterCloseIsAllOrNothing) {
  MpscQueue<int> q;
  q.Push(9);
  q.Close();
  std::vector<int> batch = {1, 2, 3};
  EXPECT_FALSE(q.PushAll(batch.begin(), batch.end()));
  // Nothing from the rejected batch may have landed.
  auto v = q.Pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 9);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(MpscQueueTest, PushAllOverflowsBoundedQueueInsteadOfDeadlocking) {
  // Capacity is a pacing hint for PushAll: a batch larger than the bound
  // must still be admitted whole (blocking mid-batch would deadlock the
  // single-consumer loops that drain in batches).
  MpscQueue<int> q(2);
  std::vector<int> batch = {1, 2, 3, 4, 5};
  ASSERT_TRUE(q.PushAll(batch.begin(), batch.end()));
  std::vector<int> out;
  EXPECT_EQ(q.DrainInto(&out), 5u);
  EXPECT_EQ(out, batch);
}

TEST(MpscQueueTest, MultiProducerSingleConsumer) {
  MpscQueue<int> q;
  constexpr int kPerProducer = 2000;
  std::vector<std::thread> producers;
  for (int p = 0; p < 3; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) q.Push(p * kPerProducer + i);
    });
  }
  std::int64_t sum = 0;
  int got = 0;
  while (got < 3 * kPerProducer) {
    auto v = q.Pop();
    ASSERT_TRUE(v.has_value());
    sum += *v;
    got++;
  }
  for (auto& t : producers) t.join();
  const std::int64_t n = 3 * kPerProducer;
  EXPECT_EQ(sum, n * (n - 1) / 2);
}

// ---------------------------------------------------------------------------
// Binary IO
// ---------------------------------------------------------------------------

TEST(BinaryIoTest, RoundTripAllTypes) {
  BinaryWriter w;
  w.PutU8(0xab);
  w.PutU16(0x1234);
  w.PutU32(0xdeadbeef);
  w.PutU64(0x0123456789abcdefULL);
  w.PutI32(-42);
  w.PutI64(-1234567890123LL);
  w.PutF32(3.5f);
  w.PutF64(-2.25);
  w.PutString("hello");

  BinaryReader r(w.buffer());
  EXPECT_EQ(r.GetU8(), 0xab);
  EXPECT_EQ(r.GetU16(), 0x1234);
  EXPECT_EQ(r.GetU32(), 0xdeadbeefu);
  EXPECT_EQ(r.GetU64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.GetI32(), -42);
  EXPECT_EQ(r.GetI64(), -1234567890123LL);
  EXPECT_EQ(r.GetF32(), 3.5f);
  EXPECT_EQ(r.GetF64(), -2.25);
  EXPECT_EQ(r.GetString(), "hello");
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.AtEnd());
}

TEST(BinaryIoTest, TruncatedReadSetsError) {
  BinaryWriter w;
  w.PutU16(7);
  BinaryReader r(w.buffer());
  EXPECT_EQ(r.GetU64(), 0u);  // too short
  EXPECT_FALSE(r.ok());
}

TEST(BinaryIoTest, TruncatedStringSetsError) {
  BinaryWriter w;
  w.PutU32(100);  // claims 100 bytes follow
  w.PutU8('x');
  BinaryReader r(w.buffer());
  EXPECT_EQ(r.GetString(), "");
  EXPECT_FALSE(r.ok());
}

TEST(BinaryIoTest, GetCountValidatesAgainstRemainingBytes) {
  BinaryWriter w;
  w.PutU32(3);
  w.PutU64(2);
  for (int i = 0; i < 3 * 4 + 2 * 8; ++i) w.PutU8(0);
  BinaryReader r(w.buffer());
  // Both counts are backed by enough bytes for their elements.
  EXPECT_EQ(r.GetCountU32(4), 3u);
  EXPECT_EQ(r.GetCountU64(8), 2u);
  EXPECT_TRUE(r.ok());

  // A count whose elements cannot possibly fit in the remaining input is
  // rejected BEFORE the caller gets a chance to reserve() for it.
  BinaryWriter huge;
  huge.PutU32(0xFFFFFFFFu);
  BinaryReader r2(huge.buffer());
  EXPECT_EQ(r2.GetCountU32(4), 0u);
  EXPECT_FALSE(r2.ok());

  // Same for 64-bit counts: count * stride must not be computed naively
  // (it would overflow); the division form catches ~0 counts too.
  BinaryWriter huge64;
  huge64.PutU64(~std::uint64_t{0});
  BinaryReader r3(huge64.buffer());
  EXPECT_EQ(r3.GetCountU64(16), 0u);
  EXPECT_FALSE(r3.ok());
}

TEST(BinaryIoTest, GetCountZeroStrideTreatedAsOne) {
  // min_element_size 0 must not divide by zero; a zero-size element still
  // needs its count bounded by the remaining byte count.
  BinaryWriter w;
  w.PutU32(2);
  w.PutU8(0);
  w.PutU8(0);
  BinaryReader r(w.buffer());
  EXPECT_EQ(r.GetCountU32(0), 2u);
  EXPECT_TRUE(r.ok());
}

TEST(BinaryIoTest, GetSizedBytesChecksLengthBeforeAllocating) {
  BinaryWriter w;
  w.PutU32(3);
  w.PutU8('a');
  w.PutU8('b');
  w.PutU8('c');
  BinaryReader r(w.buffer());
  std::vector<std::uint8_t> out;
  EXPECT_TRUE(r.GetSizedBytes(&out));
  EXPECT_EQ(out, (std::vector<std::uint8_t>{'a', 'b', 'c'}));
  EXPECT_TRUE(r.AtEnd());

  BinaryWriter bad;
  bad.PutU32(0x40000000u);  // 1 GiB claim over a 1-byte payload
  bad.PutU8('x');
  BinaryReader r2(bad.buffer());
  out.assign(1, 0xEE);
  EXPECT_FALSE(r2.GetSizedBytes(&out));
  EXPECT_FALSE(r2.ok());
  EXPECT_TRUE(out.empty());  // no partial output on failure
}

TEST(BinaryIoTest, FailPoisonsAllSubsequentReads) {
  BinaryWriter w;
  w.PutU32(7);
  BinaryReader r(w.buffer());
  r.Fail();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.GetU32(), 0u);  // sticky: data is present but unreadable
  EXPECT_FALSE(r.ok());
}

TEST(BinaryIoTest, PeekDoesNotConsumeAndBoundsChecks) {
  BinaryWriter w;
  w.PutU32(0x11223344u);
  BinaryReader r(w.buffer());
  const std::uint8_t* p = r.Peek(0, 4);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p[0], 0x44);  // little-endian wire order
  EXPECT_EQ(r.remaining(), 4u);  // nothing consumed
  EXPECT_EQ(r.Peek(1, 4), nullptr);  // window past the end
  EXPECT_TRUE(r.ok());  // a failed Peek is a query, not an error
  EXPECT_EQ(r.GetU32(), 0x11223344u);
}

}  // namespace
}  // namespace aim
