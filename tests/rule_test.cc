#include <gtest/gtest.h>

#include "aim/esp/firing_policy.h"
#include "aim/esp/rule.h"
#include "aim/esp/rule_eval.h"
#include "test_util.h"

namespace aim {
namespace {

using testing_util::MakeTinySchema;

class RuleTest : public ::testing::Test {
 protected:
  RuleTest() : schema_(MakeTinySchema()), buf_(schema_.get()) {
    calls_today_ = schema_->FindAttribute("calls_today");
    dur_sum_ = schema_->FindAttribute("dur_today_sum");
  }

  void SetAttr(std::uint16_t attr, const Value& v) { buf_.view().Set(attr, v); }

  ConstRecordView Record() const { return buf_.const_view(); }

  std::unique_ptr<Schema> schema_;
  RecordBuffer buf_;
  std::uint16_t calls_today_;
  std::uint16_t dur_sum_;
};

TEST_F(RuleTest, PredicateOnRecordAttr) {
  SetAttr(calls_today_, Value::Int32(5));
  Event e;
  EXPECT_TRUE(Predicate::OnAttr(calls_today_, CmpOp::kGt, 4).Evaluate(
      e, Record()));
  EXPECT_FALSE(Predicate::OnAttr(calls_today_, CmpOp::kGt, 5).Evaluate(
      e, Record()));
  EXPECT_TRUE(Predicate::OnAttr(calls_today_, CmpOp::kGe, 5).Evaluate(
      e, Record()));
  EXPECT_TRUE(Predicate::OnAttr(calls_today_, CmpOp::kEq, 5).Evaluate(
      e, Record()));
  EXPECT_TRUE(Predicate::OnAttr(calls_today_, CmpOp::kNe, 4).Evaluate(
      e, Record()));
  EXPECT_TRUE(Predicate::OnAttr(calls_today_, CmpOp::kLt, 6).Evaluate(
      e, Record()));
  EXPECT_FALSE(Predicate::OnAttr(calls_today_, CmpOp::kLe, 4).Evaluate(
      e, Record()));
}

TEST_F(RuleTest, PredicateOnEventFields) {
  Event e;
  e.duration = 301;
  e.cost = 2.5f;
  e.flags = Event::kLongDistance | Event::kRoaming;
  EXPECT_TRUE(Predicate::OnEvent(EventFieldId::kDuration, CmpOp::kGt, 300)
                  .Evaluate(e, Record()));
  EXPECT_TRUE(Predicate::OnEvent(EventFieldId::kCost, CmpOp::kLe, 2.5)
                  .Evaluate(e, Record()));
  EXPECT_TRUE(Predicate::OnEvent(EventFieldId::kLongDistance, CmpOp::kEq, 1)
                  .Evaluate(e, Record()));
  EXPECT_TRUE(Predicate::OnEvent(EventFieldId::kRoaming, CmpOp::kEq, 1)
                  .Evaluate(e, Record()));
  EXPECT_TRUE(Predicate::OnEvent(EventFieldId::kInternational, CmpOp::kEq, 0)
                  .Evaluate(e, Record()));
  EXPECT_TRUE(Predicate::OnEvent(EventFieldId::kDataVolume, CmpOp::kEq, 0)
                  .Evaluate(e, Record()));
}

TEST_F(RuleTest, BuilderBuildsDnf) {
  Rule r = RuleBuilder(3, "test")
               .Where(calls_today_, CmpOp::kGt, 1)
               .And(dur_sum_, CmpOp::kLt, 100)
               .Or()
               .WhereEvent(EventFieldId::kDuration, CmpOp::kGt, 50)
               .WithAction("act")
               .Build();
  EXPECT_EQ(r.id, 3u);
  ASSERT_EQ(r.conjuncts.size(), 2u);
  EXPECT_EQ(r.conjuncts[0].predicates.size(), 2u);
  EXPECT_EQ(r.conjuncts[1].predicates.size(), 1u);
  EXPECT_EQ(r.action, "act");
  EXPECT_FALSE(r.ToString(schema_.get()).empty());
}

TEST_F(RuleTest, EvaluatorEarlySuccessAcrossConjuncts) {
  SetAttr(calls_today_, Value::Int32(10));
  std::vector<Rule> rules;
  // First conjunct fails, second matches.
  rules.push_back(RuleBuilder(0, "r0")
                      .Where(calls_today_, CmpOp::kGt, 100)
                      .Or()
                      .Where(calls_today_, CmpOp::kGt, 5)
                      .Build());
  // Never matches.
  rules.push_back(RuleBuilder(1, "r1")
                      .Where(calls_today_, CmpOp::kLt, 0)
                      .Build());
  RuleEvaluator eval(&rules);
  Event e;
  std::vector<std::uint32_t> matched;
  eval.Evaluate(e, Record(), &matched);
  ASSERT_EQ(matched.size(), 1u);
  EXPECT_EQ(matched[0], 0u);
}

TEST_F(RuleTest, EvaluatorMixedEventAndRecordPredicates) {
  SetAttr(calls_today_, Value::Int32(21));
  SetAttr(schema_->FindAttribute("cost_week_sum"), Value::Float(101.0f));
  std::vector<Rule> rules;
  rules.push_back(RuleBuilder(0, "campaign")
                      .Where(calls_today_, CmpOp::kGt, 20)
                      .And(schema_->FindAttribute("cost_week_sum"),
                           CmpOp::kGt, 100)
                      .AndEvent(EventFieldId::kDuration, CmpOp::kGt, 300)
                      .Build());
  RuleEvaluator eval(&rules);
  std::vector<std::uint32_t> matched;

  Event e;
  e.duration = 299;
  eval.Evaluate(e, Record(), &matched);
  EXPECT_TRUE(matched.empty());

  e.duration = 301;
  eval.Evaluate(e, Record(), &matched);
  ASSERT_EQ(matched.size(), 1u);
}

TEST_F(RuleTest, EmptyRuleSetMatchesNothing) {
  std::vector<Rule> rules;
  RuleEvaluator eval(&rules);
  std::vector<std::uint32_t> matched = {99};
  Event e;
  eval.Evaluate(e, Record(), &matched);
  EXPECT_TRUE(matched.empty());  // cleared
}

// ---------------------------------------------------------------------------
// Firing policy
// ---------------------------------------------------------------------------

TEST(FiringPolicyTest, UnlimitedAlwaysAllows) {
  FiringPolicyTracker tracker;
  Rule r;
  r.id = 1;
  r.policy = FiringPolicy::Unlimited();
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(tracker.Allow(r, 42, 1000 + i));
  }
  EXPECT_EQ(tracker.tracked_pairs(), 0u);
}

TEST(FiringPolicyTest, CapsFiringsPerWindow) {
  FiringPolicyTracker tracker;
  Rule r;
  r.id = 1;
  r.policy = FiringPolicy::PerWindow(2, kMillisPerDay);
  EXPECT_TRUE(tracker.Allow(r, 42, 100));
  EXPECT_TRUE(tracker.Allow(r, 42, 200));
  EXPECT_FALSE(tracker.Allow(r, 42, 300));
  // Other entity unaffected.
  EXPECT_TRUE(tracker.Allow(r, 43, 300));
  // Next day resets.
  EXPECT_TRUE(tracker.Allow(r, 42, kMillisPerDay + 1));
}

TEST(FiringPolicyTest, FilterRemovesSuppressed) {
  FiringPolicyTracker tracker;
  std::vector<Rule> rules(2);
  rules[0].id = 0;
  rules[0].policy = FiringPolicy::PerWindow(1, kMillisPerDay);
  rules[1].id = 1;
  rules[1].policy = FiringPolicy::Unlimited();

  std::vector<std::uint32_t> matched = {0, 1};
  tracker.Filter(rules, 7, 100, &matched);
  EXPECT_EQ(matched.size(), 2u);  // first firing allowed

  matched = {0, 1};
  tracker.Filter(rules, 7, 200, &matched);
  ASSERT_EQ(matched.size(), 1u);  // rule 0 suppressed now
  EXPECT_EQ(matched[0], 1u);
}

TEST(FiringPolicyTest, ExpireDropsOldWindows) {
  FiringPolicyTracker tracker;
  Rule r;
  r.id = 1;
  r.policy = FiringPolicy::PerWindow(1, kMillisPerDay);
  tracker.Allow(r, 42, 100);
  EXPECT_EQ(tracker.tracked_pairs(), 1u);
  tracker.Expire(10 * kMillisPerDay);
  EXPECT_EQ(tracker.tracked_pairs(), 0u);
}

}  // namespace
}  // namespace aim
