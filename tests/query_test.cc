#include <gtest/gtest.h>

#include "aim/rta/query.h"
#include "test_util.h"

namespace aim {
namespace {

using testing_util::MakeTinySchema;

TEST(QueryBuilderTest, SimpleAggregate) {
  auto schema = MakeTinySchema();
  StatusOr<Query> q = QueryBuilder(schema.get())
                          .WithId(9)
                          .Select(AggOp::kAvg, "dur_today_sum")
                          .Where("calls_today", CmpOp::kGt, Value::Int32(2))
                          .Build();
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->id, 9u);
  EXPECT_EQ(q->kind, Query::Kind::kAggregate);
  ASSERT_EQ(q->select.size(), 1u);
  EXPECT_EQ(q->select[0].op, AggOp::kAvg);
  ASSERT_EQ(q->where.size(), 1u);
  EXPECT_EQ(q->where[0].op, CmpOp::kGt);
  EXPECT_FALSE(q->ToString(schema.get()).empty());
}

TEST(QueryBuilderTest, UnknownAttributeFails) {
  auto schema = MakeTinySchema();
  StatusOr<Query> q = QueryBuilder(schema.get())
                          .Select(AggOp::kSum, "no_such_attr")
                          .Build();
  EXPECT_FALSE(q.ok());
  EXPECT_TRUE(q.status().IsInvalidArgument());
}

TEST(QueryBuilderTest, EmptySelectFails) {
  auto schema = MakeTinySchema();
  EXPECT_FALSE(QueryBuilder(schema.get()).Build().ok());
}

TEST(QueryBuilderTest, TopKNeedsEntityAttr) {
  auto schema = MakeTinySchema();
  EXPECT_FALSE(QueryBuilder(schema.get())
                   .TopK("dur_today_max", false)
                   .Build()
                   .ok());
  EXPECT_TRUE(QueryBuilder(schema.get())
                  .TopK("dur_today_max", false)
                  .WithEntityAttr("entity_id")
                  .Build()
                  .ok());
}

TEST(QueryBuilderTest, GroupByAndLimit) {
  auto schema = MakeTinySchema();
  StatusOr<Query> q = QueryBuilder(schema.get())
                          .SelectSumRatio("cost_week_sum", "dur_today_sum")
                          .GroupByAttr("calls_today")
                          .Limit(100)
                          .Build();
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->kind, Query::Kind::kGroupBy);
  EXPECT_EQ(q->group_by.kind, GroupBy::Kind::kMatrixAttr);
  EXPECT_EQ(q->limit, 100u);
  EXPECT_TRUE(q->select[0].is_sum_ratio);
}

TEST(QuerySerializationTest, RoundTripAllFields) {
  auto schema = MakeTinySchema();
  StatusOr<Query> built =
      QueryBuilder(schema.get())
          .WithId(1234)
          .Select(AggOp::kSum, "dur_today_sum")
          .SelectCount()
          .SelectSumRatio("cost_week_sum", "dur_today_sum")
          .Where("calls_today", CmpOp::kGe, Value::Int32(3))
          .Where("dur_today_avg", CmpOp::kLt, Value::Float(10.5f))
          .WhereDim("zip", 0, 1, CmpOp::kEq, 77)
          .WhereDimLabel("zip", 0, 2, "city_3")
          .GroupByDim("zip", 0, 1)
          .Limit(10)
          .Build();
  ASSERT_TRUE(built.ok());

  BinaryWriter w;
  built->Serialize(&w);
  BinaryReader r(w.buffer());
  StatusOr<Query> parsed = Query::Deserialize(&r);
  ASSERT_TRUE(parsed.ok());

  EXPECT_EQ(parsed->id, built->id);
  EXPECT_EQ(parsed->kind, built->kind);
  ASSERT_EQ(parsed->select.size(), built->select.size());
  for (std::size_t i = 0; i < built->select.size(); ++i) {
    EXPECT_EQ(parsed->select[i].op, built->select[i].op);
    EXPECT_EQ(parsed->select[i].attr, built->select[i].attr);
    EXPECT_EQ(parsed->select[i].is_sum_ratio, built->select[i].is_sum_ratio);
    EXPECT_EQ(parsed->select[i].den_attr, built->select[i].den_attr);
  }
  ASSERT_EQ(parsed->where.size(), built->where.size());
  for (std::size_t i = 0; i < built->where.size(); ++i) {
    EXPECT_EQ(parsed->where[i].attr, built->where[i].attr);
    EXPECT_EQ(parsed->where[i].op, built->where[i].op);
    EXPECT_EQ(parsed->where[i].constant, built->where[i].constant);
  }
  ASSERT_EQ(parsed->dim_where.size(), 2u);
  EXPECT_EQ(parsed->dim_where[0].constant, 77u);
  EXPECT_EQ(parsed->dim_where[1].str_constant, "city_3");
  EXPECT_EQ(parsed->group_by.kind, GroupBy::Kind::kDimColumn);
  EXPECT_EQ(parsed->limit, 10u);
}

TEST(QuerySerializationTest, RoundTripTopK) {
  auto schema = MakeTinySchema();
  StatusOr<Query> built = QueryBuilder(schema.get())
                              .WithId(5)
                              .TopK("dur_today_max", false, 3)
                              .TopKRatio("cost_week_sum", "dur_today_sum",
                                         true, 3)
                              .WithEntityAttr("entity_id")
                              .Build();
  ASSERT_TRUE(built.ok());
  BinaryWriter w;
  built->Serialize(&w);
  BinaryReader r(w.buffer());
  StatusOr<Query> parsed = Query::Deserialize(&r);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->kind, Query::Kind::kTopK);
  ASSERT_EQ(parsed->topk.size(), 2u);
  EXPECT_FALSE(parsed->topk[0].ascending);
  EXPECT_TRUE(parsed->topk[1].ascending);
  EXPECT_EQ(parsed->topk[1].den_attr, built->topk[1].den_attr);
  EXPECT_EQ(parsed->k, 3u);
  EXPECT_EQ(parsed->entity_attr, built->entity_attr);
}

TEST(QuerySerializationTest, TruncatedFails) {
  auto schema = MakeTinySchema();
  StatusOr<Query> built = QueryBuilder(schema.get())
                              .Select(AggOp::kSum, "dur_today_sum")
                              .Build();
  ASSERT_TRUE(built.ok());
  BinaryWriter w;
  built->Serialize(&w);
  for (std::size_t cut : {std::size_t{0}, w.size() / 2, w.size() - 1}) {
    BinaryReader r(w.buffer().data(), cut);
    StatusOr<Query> parsed = Query::Deserialize(&r);
    EXPECT_FALSE(parsed.ok()) << "cut=" << cut;
  }
}

}  // namespace
}  // namespace aim
