#ifndef AIM_TESTS_TEST_UTIL_H_
#define AIM_TESTS_TEST_UTIL_H_

#include <memory>
#include <vector>

#include "aim/common/random.h"
#include "aim/esp/event.h"
#include "aim/schema/record.h"
#include "aim/schema/schema.h"

namespace aim {
namespace testing_util {

/// Minimal schema used by precise-reference tests: the three system raw
/// attributes plus a handful of groups covering every window kind.
inline std::unique_ptr<Schema> MakeTinySchema() {
  auto schema = std::make_unique<Schema>();
  schema->AddRawAttribute("entity_id", ValueType::kUInt64);
  schema->AddRawAttribute("last_event_ts", ValueType::kInt64);
  schema->AddRawAttribute("preferred_number", ValueType::kUInt64);
  schema->AddRawAttribute("zip", ValueType::kUInt32);

  schema->AddCountGroup("calls_today", CallFilter::kAny,
                        WindowSpec::Today());
  schema->AddMetricGroup("dur_today", CallFilter::kAny,
                         EventMetric::kDuration, WindowSpec::Today(),
                         Schema::kAllMetricAggs);
  schema->AddMetricGroup("cost_week", CallFilter::kAny, EventMetric::kCost,
                         WindowSpec::ThisWeek(), Schema::kAllMetricAggs);
  schema->AddCountGroup("local_calls_today", CallFilter::kLocal,
                        WindowSpec::Today());
  schema->AddMetricGroup("ld_dur_24h", CallFilter::kLongDistance,
                         EventMetric::kDuration,
                         WindowSpec::Sliding(kMillisPerDay, 6),
                         Schema::kAllMetricAggs);
  schema->AddMetricGroup("dur_last5", CallFilter::kAny,
                         EventMetric::kDuration, WindowSpec::LastNEvents(5),
                         Schema::kAllMetricAggs);
  schema->AddCountGroup("pref_calls_today", CallFilter::kPreferred,
                        WindowSpec::Today());
  AIM_CHECK(schema->Finalize().ok());
  return schema;
}

/// Random event with controllable caller and timestamp.
inline Event RandomEvent(Random* rng, EntityId caller, Timestamp ts) {
  Event e;
  e.caller = caller;
  e.callee = rng->Uniform(100) + 1;
  e.timestamp = ts;
  e.duration = static_cast<std::uint32_t>(rng->Uniform(1000) + 1);
  e.cost = static_cast<float>(rng->Uniform(500)) / 100.0f;
  e.data_mb = static_cast<float>(rng->Uniform(100)) / 10.0f;
  if (rng->OneIn(3)) e.flags |= Event::kLongDistance;
  if (rng->OneIn(10)) e.flags |= Event::kInternational;
  if (rng->OneIn(20)) e.flags |= Event::kRoaming;
  return e;
}

/// Fills a row with random-but-valid values in every attribute (used by
/// storage round-trip tests).
inline void FillRandomRow(const Schema& schema, Random* rng,
                          std::uint8_t* row) {
  RecordView rec(&schema, row);
  for (std::uint16_t i = 0; i < schema.num_attributes(); ++i) {
    switch (schema.attribute(i).type) {
      case ValueType::kInt32:
        rec.Set(i, Value::Int32(static_cast<std::int32_t>(
                       rng->UniformRange(-1000, 1000))));
        break;
      case ValueType::kUInt32:
        rec.Set(i, Value::UInt32(static_cast<std::uint32_t>(
                       rng->Uniform(100000))));
        break;
      case ValueType::kInt64:
        rec.Set(i, Value::Int64(rng->UniformRange(-1000000, 1000000)));
        break;
      case ValueType::kUInt64:
        rec.Set(i, Value::UInt64(rng->Uniform(1u << 30)));
        break;
      case ValueType::kFloat:
        rec.Set(i, Value::Float(static_cast<float>(rng->NextDouble()) *
                                1000.0f));
        break;
      case ValueType::kDouble:
        rec.Set(i, Value::Double(rng->NextDouble() * 1000.0));
        break;
    }
  }
  // Random state bytes too, so scatter/materialize round-trips are checked
  // over the full record.
  std::uint8_t* state = row + schema.state_area_offset();
  for (std::uint32_t b = 0; b < schema.state_area_size(); ++b) {
    state[b] = static_cast<std::uint8_t>(rng->Uniform(256));
  }
}

}  // namespace testing_util
}  // namespace aim

#endif  // AIM_TESTS_TEST_UTIL_H_
