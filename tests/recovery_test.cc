#include "aim/storage/recovery.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <map>

#include <gtest/gtest.h>

#include "aim/server/storage_node.h"
#include "aim/storage/checkpoint.h"
#include "aim/storage/fs_util.h"
#include "aim/workload/benchmark_schema.h"
#include "aim/workload/cdr_generator.h"
#include "aim/workload/dimension_data.h"
#include "test_util.h"

namespace aim {
namespace {

using testing_util::FillRandomRow;
using testing_util::MakeTinySchema;

// Canonical store snapshot for equivalence checks: entity -> (version, row).
// ForEachVisible's iteration order depends on record-id allocation order,
// which differs between an original store and one rebuilt from checkpoints,
// so equivalence is by content, not serialization order.
using Snapshot =
    std::map<EntityId, std::pair<Version, std::vector<std::uint8_t>>>;

Snapshot Snap(const DeltaMainStore& store, std::uint16_t entity_attr) {
  Snapshot snap;
  store.ForEachVisible(entity_attr,
                       [&](EntityId e, Version v, const std::uint8_t* row) {
                         auto [it, inserted] = snap.emplace(
                             e, std::make_pair(
                                    v, std::vector<std::uint8_t>(
                                           row, row + store.schema()
                                                          .record_size())));
                         EXPECT_TRUE(inserted) << "entity visited twice: " << e;
                       });
  return snap;
}

void RemoveTree(const std::string& dir) {
  StatusOr<std::vector<std::string>> names = fs::ListDir(dir);
  if (names.ok()) {
    for (const std::string& n : *names) std::remove((dir + "/" + n).c_str());
  }
  ::rmdir(dir.c_str());
}

class RecoveryChainTest : public ::testing::Test {
 protected:
  RecoveryChainTest() : schema_(MakeTinySchema()) {
    entity_attr_ = schema_->FindAttribute("entity_id");
    dir_ = ::testing::TempDir() + "/aim_chain_" +
           std::to_string(::getpid()) + "_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    RemoveTree(dir_);
    store_ = MakeStore();
  }
  ~RecoveryChainTest() override { RemoveTree(dir_); }

  std::unique_ptr<DeltaMainStore> MakeStore() {
    DeltaMainStore::Options opts;
    opts.bucket_size = 8;
    opts.max_records = 2048;
    return std::make_unique<DeltaMainStore>(schema_.get(), opts);
  }

  void InsertFresh(EntityId e) {
    std::vector<std::uint8_t> row(schema_->record_size());
    FillRandomRow(*schema_, &rng_, row.data());
    RecordView(schema_.get(), row.data())
        .SetAs<std::uint64_t>(entity_attr_, e);
    ASSERT_TRUE(store_->Insert(e, row.data()).ok()) << e;
  }

  void Mutate(EntityId e) {
    std::vector<std::uint8_t> row(schema_->record_size());
    Version v = 0;
    ASSERT_TRUE(store_->Get(e, row.data(), &v).ok()) << e;
    RecordView(schema_.get(), row.data())
        .Set(schema_->FindAttribute("calls_today"),
             Value::Int32(static_cast<std::int32_t>(rng_.Uniform(1 << 20))));
    ASSERT_TRUE(store_->Put(e, row.data(), v).ok()) << e;
  }

  checkpoint::ChainTip Checkpoint(std::uint64_t log_lsn,
                                  bool force_full = false) {
    StatusOr<checkpoint::ChainTip> tip = checkpoint::WriteChained(
        store_.get(), entity_attr_, dir_, log_lsn, force_full);
    EXPECT_TRUE(tip.ok()) << tip.status().ToString();
    return *tip;
  }

  // Bypassing the tmp/rename commit protocol, cut a committed file short —
  // the on-disk artifact of a lost write. (Payload bytes carry no checksum;
  // structural validation — count vs bytes present — is what must catch a
  // damaged chain member.)
  void TruncateFile(const std::string& path) {
    StatusOr<std::uint64_t> size = fs::FileSize(path);
    ASSERT_TRUE(size.ok()) << path;
    ASSERT_EQ(::truncate(path.c_str(), static_cast<long>(*size / 2)), 0);
  }

  std::unique_ptr<Schema> schema_;
  std::uint16_t entity_attr_;
  std::string dir_;
  std::unique_ptr<DeltaMainStore> store_;
  Random rng_{1234};
};

TEST_F(RecoveryChainTest, FirstCheckpointIsFullThenDeltasChain) {
  for (EntityId e = 1; e <= 100; ++e) InsertFresh(e);
  store_->Merge();
  const checkpoint::ChainTip t1 = Checkpoint(11);
  EXPECT_EQ(t1.kind, checkpoint::CheckpointHeader::Kind::kFull);
  EXPECT_EQ(t1.epoch, 1u);

  for (EntityId e = 1; e <= 7; ++e) Mutate(e);
  store_->Merge();
  const checkpoint::ChainTip t2 = Checkpoint(22);
  EXPECT_EQ(t2.kind, checkpoint::CheckpointHeader::Kind::kDelta);
  EXPECT_EQ(t2.epoch, 2u);

  // The delta persists only dirtied buckets: far smaller than the full.
  StatusOr<std::uint64_t> full_size =
      fs::FileSize(checkpoint::ChainFileName(dir_, 1));
  StatusOr<std::uint64_t> delta_size =
      fs::FileSize(checkpoint::ChainFileName(dir_, 2));
  ASSERT_TRUE(full_size.ok());
  ASSERT_TRUE(delta_size.ok());
  EXPECT_LT(*delta_size, *full_size / 2);

  auto restored = MakeStore();
  StatusOr<checkpoint::ChainTip> tip =
      checkpoint::RecoverChain(dir_, restored.get());
  ASSERT_TRUE(tip.ok()) << tip.status().ToString();
  EXPECT_EQ(tip->epoch, 2u);
  EXPECT_EQ(tip->log_lsn, 22u);
  EXPECT_EQ(tip->files_applied, 2u);
  EXPECT_EQ(Snap(*restored, entity_attr_), Snap(*store_, entity_attr_));
  // Recovery primes the next epoch past the tip.
  EXPECT_EQ(restored->next_checkpoint_epoch(), 3u);
}

// The core incremental-checkpoint property: after any number of
// mutate/merge/checkpoint rounds (deltas, with occasional forced fulls),
// recovering the chain yields a store byte-equivalent to the original.
TEST_F(RecoveryChainTest, IncrementalChainEquivalentToLiveStoreProperty) {
  for (EntityId e = 1; e <= 300; ++e) InsertFresh(e);
  store_->Merge();
  Checkpoint(1);
  EntityId next_new = 1000;
  for (int round = 1; round <= 12; ++round) {
    // Random mutations: scattered updates plus some brand-new entities.
    const int updates = static_cast<int>(rng_.Uniform(40));
    for (int i = 0; i < updates; ++i) {
      Mutate(static_cast<EntityId>(rng_.Uniform(300) + 1));
    }
    const int inserts = static_cast<int>(rng_.Uniform(5));
    for (int i = 0; i < inserts; ++i) InsertFresh(next_new++);
    // Sometimes checkpoint with the delta still unmerged (delta entries
    // must be captured regardless of bucket stamps), sometimes merged.
    if (!rng_.OneIn(3)) store_->Merge();
    Checkpoint(static_cast<std::uint64_t>(round) * 100,
               /*force_full=*/rng_.OneIn(5));

    auto restored = MakeStore();
    StatusOr<checkpoint::ChainTip> tip =
        checkpoint::RecoverChain(dir_, restored.get());
    ASSERT_TRUE(tip.ok()) << "round " << round << ": "
                          << tip.status().ToString();
    EXPECT_EQ(tip->log_lsn, static_cast<std::uint64_t>(round) * 100)
        << "round " << round;
    ASSERT_EQ(Snap(*restored, entity_attr_), Snap(*store_, entity_attr_))
        << "round " << round;
  }
}

TEST_F(RecoveryChainTest, CorruptNewestFullFallsBackToOlderChain) {
  for (EntityId e = 1; e <= 60; ++e) InsertFresh(e);
  store_->Merge();
  Checkpoint(10);  // full, epoch 1
  for (EntityId e = 1; e <= 5; ++e) Mutate(e);
  store_->Merge();
  Checkpoint(20);  // delta, epoch 2
  const Snapshot at_epoch2 = Snap(*store_, entity_attr_);
  for (EntityId e = 6; e <= 9; ++e) Mutate(e);
  store_->Merge();
  Checkpoint(30, /*force_full=*/true);  // full, epoch 3
  // Damage the newest full: recovery must fall back to full(1) + delta(2)
  // and report the older chain's replay cursor.
  TruncateFile(checkpoint::ChainFileName(dir_, 3));

  auto restored = MakeStore();
  StatusOr<checkpoint::ChainTip> tip =
      checkpoint::RecoverChain(dir_, restored.get());
  ASSERT_TRUE(tip.ok()) << tip.status().ToString();
  EXPECT_EQ(tip->epoch, 2u);
  EXPECT_EQ(tip->log_lsn, 20u);
  EXPECT_EQ(Snap(*restored, entity_attr_), at_epoch2);
  // The unusable epoch-3 file must be gone: the next checkpoint reuses
  // epoch 3, and a stale file there would graft the old history onto the
  // new chain on a later recovery.
  EXPECT_TRUE(
      fs::FileSize(checkpoint::ChainFileName(dir_, 3)).status().IsNotFound());
  EXPECT_EQ(restored->next_checkpoint_epoch(), 3u);
}

TEST_F(RecoveryChainTest, BrokenDeltaLinkEndsChainAtLastGoodMember) {
  for (EntityId e = 1; e <= 40; ++e) InsertFresh(e);
  store_->Merge();
  Checkpoint(10);  // full, epoch 1
  const Snapshot at_epoch1 = Snap(*store_, entity_attr_);
  for (EntityId e = 1; e <= 3; ++e) Mutate(e);
  store_->Merge();
  Checkpoint(20);  // delta, epoch 2
  for (EntityId e = 4; e <= 6; ++e) Mutate(e);
  store_->Merge();
  Checkpoint(30);  // delta, epoch 3
  TruncateFile(checkpoint::ChainFileName(dir_, 2));

  auto restored = MakeStore();
  StatusOr<checkpoint::ChainTip> tip =
      checkpoint::RecoverChain(dir_, restored.get());
  ASSERT_TRUE(tip.ok()) << tip.status().ToString();
  // Chain ends at the full: delta 2 is corrupt, so delta 3 (which chains
  // onto 2) is unreachable too. Log replay from lsn 10 covers the rest.
  EXPECT_EQ(tip->epoch, 1u);
  EXPECT_EQ(tip->log_lsn, 10u);
  EXPECT_EQ(Snap(*restored, entity_attr_), at_epoch1);
  EXPECT_TRUE(
      fs::FileSize(checkpoint::ChainFileName(dir_, 2)).status().IsNotFound());
  EXPECT_TRUE(
      fs::FileSize(checkpoint::ChainFileName(dir_, 3)).status().IsNotFound());
}

TEST_F(RecoveryChainTest, EmptyDirectoryIsColdStart) {
  auto restored = MakeStore();
  EXPECT_TRUE(checkpoint::RecoverChain(dir_, restored.get())
                  .status()
                  .IsNotFound());
  ASSERT_TRUE(fs::EnsureDir(dir_).ok());
  EXPECT_TRUE(checkpoint::RecoverChain(dir_, restored.get())
                  .status()
                  .IsNotFound());
  EXPECT_EQ(restored->main_records(), 0u);
}

// ---------------------------------------------------------------------------
// Node-level recovery: a durable StorageNode processes acknowledged events,
// goes away without a shutdown checkpoint (the log is the only record of
// the tail), and a fresh node rebuilds identical visible state.
// ---------------------------------------------------------------------------

class NodeRecoveryTest : public ::testing::Test {
 protected:
  NodeRecoveryTest() : schema_(MakeCompactSchema()), dims_(MakeBenchmarkDims()) {
    dir_ = ::testing::TempDir() + "/aim_node_rec_" +
           std::to_string(::getpid()) + "_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    NukeDataDir();
  }
  ~NodeRecoveryTest() override { NukeDataDir(); }

  void NukeDataDir() {
    for (std::uint32_t p = 0; p < 8; ++p) {
      RemoveTree(dir_ + "/p" + std::to_string(p));
    }
    ::rmdir(dir_.c_str());
  }

  StorageNode::Options NodeOptions() {
    StorageNode::Options opts;
    opts.node_id = 0;
    opts.num_partitions = 2;
    opts.num_esp_threads = 2;
    opts.bucket_size = 64;
    opts.max_records_per_partition = 1 << 14;
    opts.scan_poll_micros = 200;
    opts.durability.dir = dir_;
    return opts;
  }

  void LoadEntities(StorageNode* node, std::uint64_t n) {
    std::vector<std::uint8_t> row(schema_->record_size(), 0);
    for (EntityId e = 1; e <= n; ++e) {
      std::fill(row.begin(), row.end(), 0);
      PopulateEntityProfile(*schema_, dims_, e, n, row.data());
      ASSERT_TRUE(node->BulkLoad(e, row.data()).ok());
    }
  }

  static std::vector<std::uint8_t> Wire(const Event& e) {
    BinaryWriter w;
    e.Serialize(&w);
    return w.TakeBuffer();
  }

  Snapshot SnapNode(const StorageNode& node) {
    Snapshot snap;
    const std::uint16_t entity_attr = schema_->FindAttribute("entity_id");
    for (std::uint32_t p = 0; p < NodeOptions().num_partitions; ++p) {
      Snapshot part = Snap(node.partition(p), entity_attr);
      snap.insert(part.begin(), part.end());
    }
    return snap;
  }

  std::unique_ptr<Schema> schema_;
  BenchmarkDims dims_;
  std::vector<Rule> rules_;
  std::string dir_;
};

TEST_F(NodeRecoveryTest, RecoverReplaysAcknowledgedEventsExactly) {
  constexpr std::uint64_t kEntities = 64;
  constexpr int kEvents = 400;
  Snapshot before;
  {
    StorageNode node(schema_.get(), &dims_.catalog, &rules_, NodeOptions());
    StatusOr<StorageNode::RecoveryStats> rec = node.Recover();
    ASSERT_TRUE(rec.ok());
    EXPECT_TRUE(rec->cold_start);
    LoadEntities(&node, kEntities);
    ASSERT_TRUE(node.CheckpointNow().ok());  // initial full images
    ASSERT_TRUE(node.Start().ok());

    CdrGenerator::Options gopts;
    gopts.num_entities = kEntities;
    CdrGenerator gen(gopts);
    for (int i = 0; i < kEvents; ++i) {
      EventCompletion done;
      ASSERT_TRUE(node.SubmitEvent(Wire(gen.Next(1000 + i)), &done));
      done.Wait();
      ASSERT_TRUE(done.status.ok()) << done.status.ToString();
      // Mid-stream: ask the live RTA threads for an incremental checkpoint
      // so recovery exercises full + delta + log-tail replay together.
      if (i == kEvents / 2) {
        const std::uint64_t want =
            node.checkpoints_completed() + NodeOptions().num_partitions;
        node.RequestCheckpoint();
        while (node.checkpoints_completed() < want) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      }
    }
    node.Stop();
    before = SnapNode(node);
    ASSERT_EQ(before.size(), kEntities);
    // No shutdown checkpoint: the events after the incremental checkpoint
    // exist only in the logs. The node (and its logs) now goes away.
  }

  StorageNode node(schema_.get(), &dims_.catalog, &rules_, NodeOptions());
  StatusOr<StorageNode::RecoveryStats> rec = node.Recover();
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_FALSE(rec->cold_start);
  EXPECT_GT(rec->checkpoints_applied, 0u);
  EXPECT_GT(rec->batches_replayed, 0u);
  EXPECT_EQ(SnapNode(node), before);

  // The recovered node is a fully functional durable node: it serves new
  // events and can checkpoint again.
  ASSERT_TRUE(node.Start().ok());
  CdrGenerator::Options gopts;
  gopts.num_entities = kEntities;
  CdrGenerator gen(gopts);
  EventCompletion done;
  ASSERT_TRUE(node.SubmitEvent(Wire(gen.Next(99999)), &done));
  done.Wait();
  ASSERT_TRUE(done.status.ok());
  node.Stop();
  ASSERT_TRUE(node.CheckpointNow().ok());
}

TEST_F(NodeRecoveryTest, RecordServiceMutationsSurviveRecovery) {
  constexpr std::uint64_t kEntities = 32;
  Snapshot before;
  {
    StorageNode node(schema_.get(), &dims_.catalog, &rules_, NodeOptions());
    ASSERT_TRUE(node.Recover().ok());
    LoadEntities(&node, kEntities);
    ASSERT_TRUE(node.CheckpointNow().ok());
    ASSERT_TRUE(node.Start().ok());

    // Remote-ESP-style Get/Put round trips: the Put is acknowledged only
    // after its log record is durable, so it must survive.
    for (EntityId e = 1; e <= kEntities; e += 3) {
      EventCompletion sync;
      RecordRequest get;
      get.kind = RecordRequest::Kind::kGet;
      get.entity = e;
      std::vector<std::uint8_t> row;
      Version version = 0;
      Status status = Status::Internal("no reply");
      get.reply = [&](Status st, std::vector<std::uint8_t>&& r, Version v) {
        status = st;
        row = std::move(r);
        version = v;
        sync.done.store(true, std::memory_order_release);
      };
      ASSERT_TRUE(node.SubmitRecordRequest(std::move(get)));
      sync.Wait();
      ASSERT_TRUE(status.ok());

      RecordView(schema_.get(), row.data())
          .SetAs<std::uint64_t>(schema_->FindAttribute("preferred_number"),
                                e * 777);
      sync.Reset();
      RecordRequest put;
      put.kind = RecordRequest::Kind::kPut;
      put.entity = e;
      put.row = row;
      put.expected_version = version;
      put.reply = [&](Status st, std::vector<std::uint8_t>&&, Version) {
        status = st;
        sync.done.store(true, std::memory_order_release);
      };
      ASSERT_TRUE(node.SubmitRecordRequest(std::move(put)));
      sync.Wait();
      ASSERT_TRUE(status.ok());
    }
    node.Stop();
    before = SnapNode(node);
  }

  StorageNode node(schema_.get(), &dims_.catalog, &rules_, NodeOptions());
  StatusOr<StorageNode::RecoveryStats> rec = node.Recover();
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_GT(rec->record_ops_replayed, 0u);
  EXPECT_EQ(SnapNode(node), before);
}

TEST_F(NodeRecoveryTest, GroupCommitIntervalStillAcksEverything) {
  // With a (large) group-commit interval the flush rides the idle path;
  // every submitted event must still be acknowledged and must still be on
  // disk afterwards.
  constexpr std::uint64_t kEntities = 16;
  constexpr int kEvents = 120;
  Snapshot before;
  {
    StorageNode::Options opts = NodeOptions();
    opts.durability.group_commit_micros = 2000;
    StorageNode node(schema_.get(), &dims_.catalog, &rules_, opts);
    ASSERT_TRUE(node.Recover().ok());
    LoadEntities(&node, kEntities);
    ASSERT_TRUE(node.CheckpointNow().ok());
    ASSERT_TRUE(node.Start().ok());
    CdrGenerator::Options gopts;
    gopts.num_entities = kEntities;
    CdrGenerator gen(gopts);
    std::vector<std::unique_ptr<EventCompletion>> completions;
    for (int i = 0; i < kEvents; ++i) {
      completions.push_back(std::make_unique<EventCompletion>());
      ASSERT_TRUE(
          node.SubmitEvent(Wire(gen.Next(5000 + i)), completions.back().get()));
    }
    for (auto& c : completions) {
      c->Wait();
      ASSERT_TRUE(c->status.ok());
    }
    node.Stop();
    before = SnapNode(node);
  }
  StorageNode node(schema_.get(), &dims_.catalog, &rules_, NodeOptions());
  ASSERT_TRUE(node.Recover().ok());
  EXPECT_EQ(SnapNode(node), before);
}

}  // namespace
}  // namespace aim
