#!/usr/bin/env bash
# Self-test for tools/lint.sh: runs the always-on audits over two fixture
# trees and asserts
#   1. the violation tree fails with EXACTLY the planted violations
#      (expected_violations.txt) — no misses, no over-flagging, and the
#      allowlisted fakes (src/aim/mc/, common/annotated_mutex.h,
#      common/sync_provider.h) stay exempt;
#   2. the clean tree passes with exit 0.
# clang-tidy is skipped (AIM_LINT_SKIP_TIDY=1) so the result is
# toolchain-independent and byte-exact.

set -u

HERE="$(cd "$(dirname "$0")" && pwd)"
REPO_ROOT="$(cd "$HERE/../.." && pwd)"
LINT="$REPO_ROOT/tools/lint.sh"
FAIL=0

echo "== lint self-test: violation tree =="
OUT=$(AIM_LINT_ROOT="$HERE/fixtures/violation_tree" AIM_LINT_SKIP_TIDY=1 \
      "$LINT" 2>&1)
RC=$?
if [ "$RC" -eq 0 ]; then
  echo "FAIL: lint exited 0 on the violation tree"
  FAIL=1
fi
GOT=$(printf '%s\n' "$OUT" | grep -E '^src/aim/[^ ]+:[0-9]+: ' | sort)
WANT=$(sort "$HERE/expected_violations.txt")
if [ "$GOT" != "$WANT" ]; then
  echo "FAIL: flagged violations differ from expected_violations.txt"
  echo "--- expected"
  printf '%s\n' "$WANT"
  echo "--- got"
  printf '%s\n' "$GOT"
  FAIL=1
else
  echo "OK: exactly the planted violations were flagged (exit $RC)."
fi

echo
echo "== lint self-test: clean tree =="
OUT=$(AIM_LINT_ROOT="$HERE/fixtures/clean_tree" AIM_LINT_SKIP_TIDY=1 \
      "$LINT" 2>&1)
RC=$?
if [ "$RC" -ne 0 ]; then
  echo "FAIL: lint exited $RC on the clean tree"
  printf '%s\n' "$OUT"
  FAIL=1
else
  echo "OK: clean tree passes (exit 0)."
fi

if [ "$FAIL" -eq 0 ]; then
  echo
  echo "PASS: lint self-test"
fi
exit $FAIL
