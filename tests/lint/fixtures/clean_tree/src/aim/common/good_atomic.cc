// Lint self-test fixture (clean tree): a fully justified file — the lint
// run over this tree must exit 0.
#include <atomic>

namespace aim::lint_fixture {

inline int LoadGood(const std::atomic<int>& v) {
  // relaxed: monotonic stats snapshot; readers tolerate staleness.
  return v.load(std::memory_order_relaxed);
}

inline void StoreGood(std::atomic<int>& v, int x) {
  // seq_cst: Dekker-style store/load pairing with the drain flag needs a
  // total order.
  v.store(x, std::memory_order_seq_cst);
}

}  // namespace aim::lint_fixture
