#ifndef AIM_LINT_FIXTURE_GOOD_MUTEX_H_
#define AIM_LINT_FIXTURE_GOOD_MUTEX_H_

// Lint self-test fixture (clean tree): locking through the annotated
// wrappers — nothing to flag. (Prose mentioning std::mutex is fine.)

namespace aim::lint_fixture {

class GoodCounter {
 public:
  void Bump() {
    // In the real tree this would be aim::MutexLock lock(mu_); the
    // self-test fixture only needs the absence of raw primitives.
    ++count_;
  }

 private:
  int count_ = 0;
};

}  // namespace aim::lint_fixture

#endif  // AIM_LINT_FIXTURE_GOOD_MUTEX_H_
