// Clean-tree fixture for the fuzz-coverage audit: every decoder declared
// here is claimed by this fixture's fuzz/HARNESSES, so the audit passes.
#pragma once

namespace aim {

class GoodParser {
 public:
  GoodParser();  // constructor "Parser(" must not trip the audit
};

bool DecodeGoodFrame(const unsigned char* data, unsigned long size);
bool RestoreGoodState(const unsigned char* data, unsigned long size);

}  // namespace aim
