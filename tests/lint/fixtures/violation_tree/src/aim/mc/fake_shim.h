#ifndef AIM_LINT_FIXTURE_FAKE_SHIM_H_
#define AIM_LINT_FIXTURE_FAKE_SHIM_H_

// Lint self-test fixture: mc/ is allowlisted (the model checker's shims
// ARE the instrumented primitives), so nothing here may be flagged even
// though it uses the raw types.
#include <condition_variable>
#include <mutex>

namespace aim::lint_fixture {

struct FakeShim {
  std::mutex mu;
  std::condition_variable cv;
};

}  // namespace aim::lint_fixture

#endif  // AIM_LINT_FIXTURE_FAKE_SHIM_H_
