#ifndef AIM_LINT_FIXTURE_BAD_MUTEX_H_
#define AIM_LINT_FIXTURE_BAD_MUTEX_H_

// Lint self-test fixture: raw synchronization primitives outside the
// annotation layer. Every raw use below must be flagged; the mention of
// std::mutex in this comment must NOT be (comments are stripped).
#include <mutex>

namespace aim::lint_fixture {

class BadCounter {
 public:
  void Bump() {
    std::lock_guard<std::mutex> lock(mu_);
    ++count_;
  }

 private:
  std::mutex mu_;
  int count_ = 0;
};

}  // namespace aim::lint_fixture

#endif  // AIM_LINT_FIXTURE_BAD_MUTEX_H_
