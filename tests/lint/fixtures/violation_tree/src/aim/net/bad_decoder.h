// Planted violation for the fuzz-coverage audit: DecodeSneaky is a public
// decoder entry point that no harness in this fixture's fuzz/HARNESSES
// claims. DecodeCovered IS listed and must not be flagged.
#pragma once

namespace aim {

class FrameParser {
 public:
  // The constructor mentions "Parser(" — the audit requires a word boundary
  // before the matched name, so this must not count as a `Parser` decoder.
  FrameParser();
};

bool DecodeCovered(const unsigned char* data, unsigned long size);

// Decoders in comments are prose, not declarations: DecodeCommented(...)
bool DecodeSneaky(const unsigned char* data, unsigned long size);

}  // namespace aim
