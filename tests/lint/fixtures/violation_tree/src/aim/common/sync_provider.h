#ifndef AIM_LINT_FIXTURE_SYNC_PROVIDER_H_
#define AIM_LINT_FIXTURE_SYNC_PROVIDER_H_

// Lint self-test fixture standing in for the real sync provider:
// common/sync_provider.h is allowlisted by path, so the raw
// condition_variable below must NOT be flagged.
#include <condition_variable>

namespace aim::lint_fixture {

struct FakeSyncProvider {
  std::condition_variable cv;
};

}  // namespace aim::lint_fixture

#endif  // AIM_LINT_FIXTURE_SYNC_PROVIDER_H_
