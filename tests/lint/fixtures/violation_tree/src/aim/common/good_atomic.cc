// Lint self-test fixture: justified orderings — the audit must NOT flag
// anything in this file (over-flagging is as much a bug as missing one).
#include <atomic>

namespace aim::lint_fixture {

inline int LoadGood(const std::atomic<int>& v) {
  // relaxed: monotonic stats snapshot; readers tolerate staleness.
  return v.load(std::memory_order_relaxed);
}

inline void StoreGood(std::atomic<int>& v, int x) {
  // seq_cst: Dekker-style store/load pairing with the drain flag needs a
  // total order.
  v.store(x, std::memory_order_seq_cst);
}

inline int ChainedGood(const std::atomic<int>& v) {
  // relaxed: one comment covers the contiguous block below.
  int a = v.load(std::memory_order_relaxed);
  int b = v.load(std::memory_order_relaxed);
  return a + b;
}

}  // namespace aim::lint_fixture
