#ifndef AIM_LINT_FIXTURE_ANNOTATED_MUTEX_H_
#define AIM_LINT_FIXTURE_ANNOTATED_MUTEX_H_

// Lint self-test fixture standing in for the real annotation layer:
// common/annotated_mutex.h is allowlisted by path, so its raw std::mutex
// member below must NOT be flagged.
#include <mutex>

namespace aim::lint_fixture {

class FakeAnnotatedMutex {
 private:
  std::mutex mu_;
};

}  // namespace aim::lint_fixture

#endif  // AIM_LINT_FIXTURE_ANNOTATED_MUTEX_H_
