// Lint self-test fixture: planted memory-order violations. The driver
// asserts tools/lint.sh flags EXACTLY the lines marked BAD below.
#include <atomic>

namespace aim::lint_fixture {

inline int LoadBad(const std::atomic<int>& v) {
  return v.load(std::memory_order_relaxed);  // BAD: no justification
}

inline void StoreBad(std::atomic<int>& v, int x) {
  v.store(x, std::memory_order_seq_cst);  // BAD: no justification
}

}  // namespace aim::lint_fixture
