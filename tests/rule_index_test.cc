#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "aim/esp/rule_eval.h"
#include "aim/esp/rule_index.h"
#include "aim/workload/rules_generator.h"
#include "test_util.h"

namespace aim {
namespace {

using testing_util::MakeTinySchema;
using testing_util::RandomEvent;

std::set<std::uint32_t> AsSet(const std::vector<std::uint32_t>& v) {
  return std::set<std::uint32_t>(v.begin(), v.end());
}

TEST(RuleIndexTest, SimpleRuleMatches) {
  auto schema = MakeTinySchema();
  const std::uint16_t calls = schema->FindAttribute("calls_today");
  std::vector<Rule> rules;
  rules.push_back(RuleBuilder(0, "gt").Where(calls, CmpOp::kGt, 5).Build());
  rules.push_back(RuleBuilder(1, "lt").Where(calls, CmpOp::kLt, 3).Build());

  RuleIndex index(&rules);
  RuleIndex::Scratch scratch;
  RecordBuffer buf(schema.get());
  Event e;
  std::vector<std::uint32_t> matched;

  buf.view().Set(calls, Value::Int32(10));
  index.Evaluate(e, buf.const_view(), &scratch, &matched);
  EXPECT_EQ(AsSet(matched), (std::set<std::uint32_t>{0}));

  buf.view().Set(calls, Value::Int32(1));
  index.Evaluate(e, buf.const_view(), &scratch, &matched);
  EXPECT_EQ(AsSet(matched), (std::set<std::uint32_t>{1}));

  buf.view().Set(calls, Value::Int32(4));
  index.Evaluate(e, buf.const_view(), &scratch, &matched);
  EXPECT_TRUE(matched.empty());
}

TEST(RuleIndexTest, EqualityAndNotEqual) {
  auto schema = MakeTinySchema();
  const std::uint16_t calls = schema->FindAttribute("calls_today");
  std::vector<Rule> rules;
  rules.push_back(RuleBuilder(0, "eq").Where(calls, CmpOp::kEq, 7).Build());
  // Rule with only != predicates exercises the unindexed-conjunct path.
  rules.push_back(RuleBuilder(1, "ne").Where(calls, CmpOp::kNe, 7).Build());
  // Mixed: indexed predicate plus a != residual.
  rules.push_back(RuleBuilder(2, "mixed")
                      .Where(calls, CmpOp::kGt, 0)
                      .And(calls, CmpOp::kNe, 9)
                      .Build());

  RuleIndex index(&rules);
  RuleIndex::Scratch scratch;
  RecordBuffer buf(schema.get());
  Event e;
  std::vector<std::uint32_t> matched;

  buf.view().Set(calls, Value::Int32(7));
  index.Evaluate(e, buf.const_view(), &scratch, &matched);
  EXPECT_EQ(AsSet(matched), (std::set<std::uint32_t>{0, 2}));

  buf.view().Set(calls, Value::Int32(9));
  index.Evaluate(e, buf.const_view(), &scratch, &matched);
  EXPECT_EQ(AsSet(matched), (std::set<std::uint32_t>{1}));

  buf.view().Set(calls, Value::Int32(3));
  index.Evaluate(e, buf.const_view(), &scratch, &matched);
  EXPECT_EQ(AsSet(matched), (std::set<std::uint32_t>{1, 2}));
}

TEST(RuleIndexTest, SharedPredicatesAcrossRules) {
  auto schema = MakeTinySchema();
  const std::uint16_t calls = schema->FindAttribute("calls_today");
  const std::uint16_t sum = schema->FindAttribute("dur_today_sum");
  // Identical atomic predicate (calls > 5) in three different rules must be
  // deduplicated but still bump every owner conjunct.
  std::vector<Rule> rules;
  for (std::uint32_t i = 0; i < 3; ++i) {
    rules.push_back(RuleBuilder(i, "r" + std::to_string(i))
                        .Where(calls, CmpOp::kGt, 5)
                        .And(sum, CmpOp::kGt, static_cast<double>(i * 100))
                        .Build());
  }
  RuleIndex index(&rules);
  RuleIndex::Scratch scratch;
  RecordBuffer buf(schema.get());
  buf.view().Set(calls, Value::Int32(6));
  buf.view().Set(sum, Value::Float(150.0f));
  Event e;
  std::vector<std::uint32_t> matched;
  index.Evaluate(e, buf.const_view(), &scratch, &matched);
  EXPECT_EQ(AsSet(matched), (std::set<std::uint32_t>{0, 1}));
}

class RuleIndexEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(RuleIndexEquivalenceTest, IndexAgreesWithAlgorithm2) {
  auto schema = MakeTinySchema();
  Random rng(500 + GetParam());

  RulesGeneratorOptions opts;
  opts.num_rules = 60;
  opts.seed = 900 + GetParam();
  opts.max_conjuncts = 4;
  opts.max_predicates = 4;
  std::vector<Rule> rules = MakeBenchmarkRules(*schema, opts);

  // Add hand-built edge-case rules: != only, == thresholds.
  const std::uint16_t calls = schema->FindAttribute("calls_today");
  rules.push_back(RuleBuilder(1000, "ne_only")
                      .Where(calls, CmpOp::kNe, 3)
                      .Build());
  rules.push_back(
      RuleBuilder(1001, "eq").Where(calls, CmpOp::kEq, 2).Build());

  RuleEvaluator eval(&rules);
  RuleIndex index(&rules);
  RuleIndex::Scratch scratch;

  RecordBuffer buf(schema.get());
  std::vector<std::uint32_t> matched_eval, matched_index;
  for (int i = 0; i < 300; ++i) {
    // Random record state + random event.
    buf.view().Set(calls, Value::Int32(static_cast<std::int32_t>(
                              rng.Uniform(40))));
    buf.view().Set(schema->FindAttribute("dur_today_sum"),
                   Value::Float(static_cast<float>(rng.Uniform(12000))));
    buf.view().Set(schema->FindAttribute("dur_today_avg"),
                   Value::Float(static_cast<float>(rng.Uniform(3000))));
    buf.view().Set(schema->FindAttribute("cost_week_sum"),
                   Value::Float(static_cast<float>(rng.Uniform(12000))));
    Event e = RandomEvent(&rng, 1, 1000 + i);

    eval.Evaluate(e, buf.const_view(), &matched_eval);
    index.Evaluate(e, buf.const_view(), &scratch, &matched_index);
    ASSERT_EQ(AsSet(matched_eval), AsSet(matched_index)) << "iteration " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RuleIndexEquivalenceTest,
                         ::testing::Range(0, 8));

TEST(RuleIndexTest, EmptyRuleSet) {
  std::vector<Rule> rules;
  RuleIndex index(&rules);
  RuleIndex::Scratch scratch;
  auto schema = MakeTinySchema();
  RecordBuffer buf(schema.get());
  Event e;
  std::vector<std::uint32_t> matched;
  index.Evaluate(e, buf.const_view(), &scratch, &matched);
  EXPECT_TRUE(matched.empty());
  EXPECT_EQ(index.num_conjuncts(), 0u);
}

}  // namespace
}  // namespace aim
