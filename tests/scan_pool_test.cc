#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "aim/rta/scan_pool.h"
#include "test_util.h"

namespace aim {
namespace {

using testing_util::MakeTinySchema;

/// Pool-vs-single-thread equivalence is checked with EXPECT_DOUBLE_EQ, not
/// a tolerance: every stored value is integer-valued, so all double-typed
/// partial sums are exact (< 2^53) and merging in any executor order must
/// produce byte-identical aggregates.
class ScanPoolTest : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kRecords = 2000;

  ScanPoolTest() : schema_(MakeTinySchema()) {
    map_ = std::make_unique<ColumnMap>(schema_.get(), /*bucket_size=*/64,
                                       kRecords);
    Random rng(77);
    std::vector<std::uint8_t> row(schema_->record_size(), 0);
    const std::uint16_t calls = schema_->FindAttribute("calls_today");
    const std::uint16_t dur = schema_->FindAttribute("dur_today_sum");
    const std::uint16_t entity = schema_->FindAttribute("entity_id");
    for (EntityId e = 1; e <= kRecords; ++e) {
      RecordView rec(schema_.get(), row.data());
      rec.Set(entity, Value::UInt64(e));
      rec.Set(calls, Value::Int32(static_cast<std::int32_t>(rng.Uniform(20))));
      // Distinct integer-valued floats: exact sums and a unique top-k order.
      rec.Set(dur, Value::Float(static_cast<float>(e)));
      AIM_CHECK(map_->Insert(e, row.data(), 1).ok());
    }
  }

  std::vector<Query> MakeBatch() {
    std::vector<Query> batch;
    batch.push_back(*QueryBuilder(schema_.get())
                         .Select(AggOp::kSum, "dur_today_sum")
                         .Select(AggOp::kMin, "dur_today_sum")
                         .Select(AggOp::kMax, "dur_today_sum")
                         .SelectCount()
                         .Where("calls_today", CmpOp::kGt, Value::Int32(5))
                         .Build());
    batch.push_back(*QueryBuilder(schema_.get())
                         .SelectCount()
                         .GroupByAttr("calls_today")
                         .Build());
    batch.push_back(*QueryBuilder(schema_.get())
                         .TopK("dur_today_sum", false, 3)
                         .WithEntityAttr("entity_id")
                         .Build());
    return batch;
  }

  std::vector<CompiledQuery> CompileBatch(const std::vector<Query>& batch) {
    std::vector<CompiledQuery> compiled;
    for (const Query& q : batch) {
      compiled.push_back(*CompiledQuery::Compile(q, schema_.get(), nullptr));
    }
    return compiled;
  }

  std::vector<QueryResult> SingleThreadReference(
      const std::vector<Query>& batch) {
    std::vector<QueryResult> out;
    ScanScratch scratch;
    for (const Query& q : batch) {
      CompiledQuery cq = *CompiledQuery::Compile(q, schema_.get(), nullptr);
      for (std::uint32_t b = 0; b < map_->num_buckets(); ++b) {
        cq.ProcessBucket(*map_, map_->bucket(b), &scratch);
      }
      out.push_back(FinalizeResult(q, nullptr, cq.TakePartial()));
    }
    return out;
  }

  void ExpectMatchesReference(const std::vector<Query>& batch,
                              std::vector<PartialResult> got,
                              const std::vector<QueryResult>& want) {
    ASSERT_EQ(got.size(), batch.size());
    for (std::size_t q = 0; q < batch.size(); ++q) {
      QueryResult r = FinalizeResult(batch[q], nullptr, std::move(got[q]));
      ASSERT_EQ(r.rows.size(), want[q].rows.size()) << "query " << q;
      for (std::size_t i = 0; i < want[q].rows.size(); ++i) {
        EXPECT_EQ(r.rows[i].group_key, want[q].rows[i].group_key);
        ASSERT_EQ(r.rows[i].values.size(), want[q].rows[i].values.size());
        for (std::size_t v = 0; v < want[q].rows[i].values.size(); ++v) {
          EXPECT_DOUBLE_EQ(r.rows[i].values[v], want[q].rows[i].values[v])
              << "query " << q << " row " << i << " value " << v;
        }
      }
      ASSERT_EQ(r.topk.size(), want[q].topk.size());
      for (std::size_t t = 0; t < want[q].topk.size(); ++t) {
        ASSERT_EQ(r.topk[t].size(), want[q].topk[t].size());
        for (std::size_t k = 0; k < want[q].topk[t].size(); ++k) {
          EXPECT_EQ(r.topk[t][k].entity, want[q].topk[t][k].entity);
          EXPECT_DOUBLE_EQ(r.topk[t][k].value, want[q].topk[t][k].value);
        }
      }
    }
  }

  std::unique_ptr<Schema> schema_;
  std::unique_ptr<ColumnMap> map_;
};

TEST_F(ScanPoolTest, MatchesSingleThreadedSharedScanExactly) {
  const std::vector<Query> batch = MakeBatch();
  const std::vector<QueryResult> want = SingleThreadReference(batch);

  for (std::size_t workers : {0u, 1u, 2u}) {
    ScanPool::Options popts;
    popts.num_threads = workers;
    ScanPool pool(popts);
    for (std::uint32_t morsel : {1u, 4u, 16u, 1000u}) {
      const std::vector<CompiledQuery> prototype = CompileBatch(batch);
      ScanPool::ScanOptions sopts;
      sopts.morsel_buckets = morsel;
      std::vector<PartialResult> results;
      const ScanPool::ScanStats stats =
          pool.ScanPartition(*map_, prototype, sopts, &results);
      EXPECT_EQ(stats.morsels,
                (map_->num_buckets() + morsel - 1) / morsel);
      EXPECT_EQ(stats.executed_by_coordinator + stats.executed_by_workers,
                stats.morsels)
          << "workers " << workers << " morsel " << morsel;
      ExpectMatchesReference(batch, std::move(results), want);
    }
  }
}

TEST_F(ScanPoolTest, WorkersCarryWholeScanWhenCoordinatorAbstains) {
  const std::vector<Query> batch = MakeBatch();
  const std::vector<QueryResult> want = SingleThreadReference(batch);

  ScanPool::Options popts;
  popts.num_threads = 2;
  ScanPool pool(popts);
  const std::vector<CompiledQuery> prototype = CompileBatch(batch);

  ScanPool::ScanOptions sopts;
  sopts.morsel_buckets = 4;
  sopts.coordinator_participates = false;
  std::vector<PartialResult> results;
  const ScanPool::ScanStats stats =
      pool.ScanPartition(*map_, prototype, sopts, &results);

  // Deterministic proof the pool executed the scan: the coordinator never
  // took a morsel, yet every morsel completed and the results are exact.
  EXPECT_GT(stats.morsels, 0u);
  EXPECT_EQ(stats.executed_by_coordinator, 0u);
  EXPECT_EQ(stats.executed_by_workers, stats.morsels);
  ExpectMatchesReference(batch, std::move(results), want);
}

TEST_F(ScanPoolTest, ZeroWorkerPoolForcesCoordinatorExecution) {
  const std::vector<Query> batch = MakeBatch();
  ScanPool pool(ScanPool::Options{});
  ASSERT_EQ(pool.num_threads(), 0u);
  const std::vector<CompiledQuery> prototype = CompileBatch(batch);

  ScanPool::ScanOptions sopts;
  sopts.coordinator_participates = false;  // must be overridden, or deadlock
  std::vector<PartialResult> results;
  const ScanPool::ScanStats stats =
      pool.ScanPartition(*map_, prototype, sopts, &results);
  EXPECT_EQ(stats.executed_by_coordinator, stats.morsels);
  EXPECT_EQ(stats.executed_by_workers, 0u);
}

TEST_F(ScanPoolTest, PerExecutorCountsSumToMorsels) {
  const std::vector<Query> batch = MakeBatch();
  ScanPool::Options popts;
  popts.num_threads = 2;
  ScanPool pool(popts);
  const std::vector<CompiledQuery> prototype = CompileBatch(batch);

  ScanPool::ScanOptions sopts;
  sopts.morsel_buckets = 2;
  std::vector<PartialResult> results;
  const ScanPool::ScanStats stats =
      pool.ScanPartition(*map_, prototype, sopts, &results);
  ASSERT_EQ(stats.per_executor.size(), pool.num_threads() + 1);
  std::uint32_t total = 0;
  for (std::uint32_t n : stats.per_executor) total += n;
  EXPECT_EQ(total, stats.morsels);
  EXPECT_EQ(stats.per_executor.back(), stats.executed_by_coordinator);
}

TEST_F(ScanPoolTest, EmptyPartitionYieldsWellFormedPartials) {
  ColumnMap empty(schema_.get(), /*bucket_size=*/64, /*max_records=*/128);
  const std::vector<Query> batch = {*QueryBuilder(schema_.get())
                                         .Select(AggOp::kSum, "dur_today_sum")
                                         .SelectCount()
                                         .Build()};
  ScanPool::Options popts;
  popts.num_threads = 1;
  ScanPool pool(popts);
  const std::vector<CompiledQuery> prototype = CompileBatch(batch);

  std::vector<PartialResult> results;
  const ScanPool::ScanStats stats =
      pool.ScanPartition(empty, prototype, ScanPool::ScanOptions{}, &results);
  EXPECT_EQ(stats.morsels, 0u);
  ASSERT_EQ(results.size(), 1u);
  QueryResult r = FinalizeResult(batch[0], nullptr, std::move(results[0]));
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(r.rows[0].values[1], 0.0);  // COUNT(*) = 0
}

TEST_F(ScanPoolTest, MorselAndStealCountersAreWired) {
  MetricsRegistry registry;
  ScanPool::Options popts;
  popts.num_threads = 2;
  popts.metrics = &registry;
  popts.node_label = "7";
  ScanPool pool(popts);

  const std::vector<Query> batch = MakeBatch();
  const std::vector<CompiledQuery> prototype = CompileBatch(batch);
  ScanPool::ScanOptions sopts;
  sopts.morsel_buckets = 2;
  std::vector<PartialResult> results;
  const ScanPool::ScanStats stats =
      pool.ScanPartition(*map_, prototype, sopts, &results);

  Counter* morsels =
      registry.GetCounter("aim_scan_morsels_total", {{"node", "7"}});
  Counter* steals =
      registry.GetCounter("aim_scan_steals_total", {{"node", "7"}});
  EXPECT_EQ(morsels->Value(), stats.morsels);
  EXPECT_EQ(morsels->Value(), pool.morsels());
  EXPECT_EQ(steals->Value(), pool.steals());
  // Per-worker scan histograms exist (registered at pool construction).
  EXPECT_NE(registry.GetHistogram("aim_scan_worker_morsel_micros",
                                  {{"node", "7"}, {"worker", "0"}}),
            nullptr);
}

TEST_F(ScanPoolTest, SharedPoolIsASingleton) {
  ScanPool* a = ScanPool::Shared();
  ScanPool* b = ScanPool::Shared();
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace aim
