#include <gtest/gtest.h>

#include "aim/rta/dimension.h"
#include "aim/workload/dimension_data.h"

namespace aim {
namespace {

TEST(DimensionTableTest, BuildAndLookup) {
  DimensionTable t("RegionInfo");
  const std::uint16_t city = t.AddStringColumn("city");
  const std::uint16_t pop = t.AddUInt32Column("population");
  EXPECT_EQ(t.FindColumn("city"), city);
  EXPECT_EQ(t.FindColumn("population"), pop);
  EXPECT_EQ(t.FindColumn("nope"), DimensionTable::kNoColumn);

  const std::uint32_t r0 = t.AddRow(8001, {350000}, {"Zurich"});
  const std::uint32_t r1 = t.AddRow(8400, {110000}, {"Winterthur"});
  const std::uint32_t r2 = t.AddRow(8002, {350000}, {"Zurich"});
  EXPECT_EQ(t.num_rows(), 3u);

  EXPECT_EQ(t.LookupRow(8001), r0);
  EXPECT_EQ(t.LookupRow(8400), r1);
  EXPECT_EQ(t.LookupRow(9999), DimensionTable::kNoRow);

  EXPECT_EQ(t.string_value(r0, city), "Zurich");
  EXPECT_EQ(t.u32_value(r1, pop), 110000u);
  EXPECT_EQ(t.row_key(r2), 8002u);
}

TEST(DimensionTableTest, GroupKeysShareLabels) {
  DimensionTable t("RegionInfo");
  const std::uint16_t city = t.AddStringColumn("city");
  const std::uint32_t r0 = t.AddRow(1, {}, {"A"});
  const std::uint32_t r1 = t.AddRow(2, {}, {"B"});
  const std::uint32_t r2 = t.AddRow(3, {}, {"A"});
  // Same label -> same group key.
  EXPECT_EQ(t.GroupKey(r0, city), t.GroupKey(r2, city));
  EXPECT_NE(t.GroupKey(r0, city), t.GroupKey(r1, city));
  EXPECT_EQ(t.GroupLabel(t.GroupKey(r0, city), city), "A");
  EXPECT_EQ(t.GroupLabel(t.GroupKey(r1, city), city), "B");
}

TEST(DimensionTableTest, NumericGroupKeysAreValues) {
  DimensionTable t("T");
  const std::uint16_t c = t.AddUInt32Column("v");
  const std::uint32_t r0 = t.AddRow(1, {42}, {});
  EXPECT_EQ(t.GroupKey(r0, c), 42u);
  EXPECT_EQ(t.GroupLabel(42, c), "42");
}

TEST(DimensionCatalogTest, AddAndFind) {
  DimensionCatalog catalog;
  DimensionTable a("A"), b("B");
  const std::uint16_t ia = catalog.AddTable(std::move(a));
  const std::uint16_t ib = catalog.AddTable(std::move(b));
  EXPECT_EQ(catalog.num_tables(), 2u);
  EXPECT_EQ(catalog.FindTable("A"), ia);
  EXPECT_EQ(catalog.FindTable("B"), ib);
  EXPECT_EQ(catalog.FindTable("C"), DimensionCatalog::kNoTable);
  EXPECT_EQ(catalog.table(ia).name(), "A");
}

TEST(BenchmarkDimsTest, DeterministicFromSeed) {
  BenchmarkDimsOptions opts;
  opts.seed = 5;
  const BenchmarkDims a = MakeBenchmarkDims(opts);
  const BenchmarkDims b = MakeBenchmarkDims(opts);
  ASSERT_EQ(a.catalog.num_tables(), 4u);
  const DimensionTable& ra = a.catalog.table(a.region_info);
  const DimensionTable& rb = b.catalog.table(b.region_info);
  ASSERT_EQ(ra.num_rows(), rb.num_rows());
  for (std::uint32_t i = 0; i < ra.num_rows(); ++i) {
    EXPECT_EQ(ra.string_value(i, a.region_city),
              rb.string_value(i, b.region_city));
  }
}

TEST(BenchmarkDimsTest, GeographyRollsUpConsistently) {
  const BenchmarkDims dims = MakeBenchmarkDims();
  const DimensionTable& region = dims.catalog.table(dims.region_info);
  EXPECT_EQ(region.num_rows(), dims.num_zips);
  // Every zip has non-empty city/region/country, and a given city always
  // maps to the same region (1:n rollup).
  std::unordered_map<std::string, std::string> city_to_region;
  for (std::uint32_t r = 0; r < region.num_rows(); ++r) {
    const std::string city = region.string_value(r, dims.region_city);
    const std::string reg = region.string_value(r, dims.region_region);
    ASSERT_FALSE(city.empty());
    ASSERT_FALSE(reg.empty());
    auto [it, inserted] = city_to_region.emplace(city, reg);
    EXPECT_EQ(it->second, reg) << "city " << city << " spans regions";
  }
}

TEST(BenchmarkDimsTest, AuxiliaryTablesSized) {
  BenchmarkDimsOptions opts;
  opts.num_subscription_types = 4;
  opts.num_categories = 5;
  opts.num_cell_value_types = 3;
  const BenchmarkDims dims = MakeBenchmarkDims(opts);
  EXPECT_EQ(dims.catalog.table(dims.subscription_type).num_rows(), 4u);
  EXPECT_EQ(dims.catalog.table(dims.category).num_rows(), 5u);
  EXPECT_EQ(dims.catalog.table(dims.cell_value_type).num_rows(), 3u);
  EXPECT_EQ(dims.subscription_types.size(), 4u);
  EXPECT_EQ(dims.categories.size(), 5u);
  EXPECT_EQ(dims.cell_value_types.size(), 3u);
}

}  // namespace
}  // namespace aim
