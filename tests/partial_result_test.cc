#include <gtest/gtest.h>

#include "aim/rta/partial_result.h"
#include "test_util.h"

namespace aim {
namespace {

using testing_util::MakeTinySchema;

simd::AggAccum Acc(double sum, double mn, double mx, std::int64_t n) {
  simd::AggAccum a;
  a.sum = sum;
  a.min = mn;
  a.max = mx;
  a.count = n;
  return a;
}

Query AggQuery(const Schema* schema) {
  return *QueryBuilder(const_cast<Schema*>(schema))
              .WithId(7)
              .Select(AggOp::kAvg, "dur_today_sum")
              .SelectCount()
              .Build();
}

TEST(PartialResultTest, NumAggSlotsCountsRatioTwice) {
  auto schema = MakeTinySchema();
  Query q = *QueryBuilder(schema.get())
                 .Select(AggOp::kSum, "dur_today_sum")
                 .SelectSumRatio("cost_week_sum", "dur_today_sum")
                 .SelectCount()
                 .Build();
  EXPECT_EQ(NumAggSlots(q), 4u);
}

TEST(PartialResultTest, SerializeRoundTrip) {
  PartialResult p;
  p.query_id = 12;
  p.groups.push_back({5, {Acc(10, 1, 9, 3), Acc(0, 0, 0, 7)}});
  p.groups.push_back({9, {Acc(-2.5, -5, 0, 2), Acc(0, 0, 0, 1)}});
  p.topk.push_back({{101, 3.5}, {102, 2.0}});

  BinaryWriter w;
  p.Serialize(&w);
  BinaryReader r(w.buffer());
  StatusOr<PartialResult> parsed = PartialResult::Deserialize(&r);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->groups.size(), 2u);
  EXPECT_EQ(parsed->groups[0].key, 5u);
  EXPECT_DOUBLE_EQ(parsed->groups[0].slots[0].sum, 10.0);
  EXPECT_EQ(parsed->groups[1].slots[1].count, 1);
  ASSERT_EQ(parsed->topk.size(), 1u);
  EXPECT_EQ(parsed->topk[0][0].entity, 101u);
  EXPECT_DOUBLE_EQ(parsed->topk[0][1].value, 2.0);
}

TEST(PartialResultTest, DeserializeTruncatedFails) {
  PartialResult p;
  p.query_id = 1;
  p.groups.push_back({0, {Acc(1, 1, 1, 1)}});
  BinaryWriter w;
  p.Serialize(&w);
  BinaryReader r(w.buffer().data(), w.size() - 4);
  EXPECT_FALSE(PartialResult::Deserialize(&r).ok());
}

TEST(PartialResultTest, MergeCombinesGroupsByKey) {
  auto schema = MakeTinySchema();
  const Query q = AggQuery(schema.get());

  PartialResult a, b;
  a.groups.push_back({1, {Acc(10, 2, 8, 4), Acc(0, 0, 0, 4)}});
  a.groups.push_back({2, {Acc(5, 5, 5, 1), Acc(0, 0, 0, 1)}});
  b.groups.push_back({1, {Acc(20, 1, 30, 2), Acc(0, 0, 0, 2)}});
  b.groups.push_back({3, {Acc(7, 7, 7, 1), Acc(0, 0, 0, 1)}});

  a.MergeFrom(b, q);
  ASSERT_EQ(a.groups.size(), 3u);
  const auto& g1 = a.groups[0];
  EXPECT_EQ(g1.key, 1u);
  EXPECT_DOUBLE_EQ(g1.slots[0].sum, 30.0);
  EXPECT_DOUBLE_EQ(g1.slots[0].min, 1.0);
  EXPECT_DOUBLE_EQ(g1.slots[0].max, 30.0);
  EXPECT_EQ(g1.slots[0].count, 6);
}

TEST(PartialResultTest, MergeTopKKeepsBestK) {
  auto schema = MakeTinySchema();
  Query q = *QueryBuilder(schema.get())
                 .TopK("dur_today_max", /*ascending=*/false, 2)
                 .WithEntityAttr("entity_id")
                 .Build();
  PartialResult a, b;
  a.topk.push_back({{1, 10.0}, {2, 5.0}});
  b.topk.push_back({{3, 7.0}, {4, 20.0}});
  a.MergeFrom(b, q);
  ASSERT_EQ(a.topk[0].size(), 2u);
  EXPECT_EQ(a.topk[0][0].entity, 4u);  // 20.0
  EXPECT_EQ(a.topk[0][1].entity, 1u);  // 10.0
}

TEST(FinalizeResultTest, AvgAndCountSemantics) {
  auto schema = MakeTinySchema();
  const Query q = AggQuery(schema.get());
  PartialResult p;
  p.query_id = q.id;
  p.groups.push_back({0, {Acc(30, 1, 20, 4), Acc(0, 0, 0, 4)}});
  QueryResult r = FinalizeResult(q, nullptr, std::move(p));
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(r.rows[0].values[0], 7.5);  // avg = 30/4
  EXPECT_DOUBLE_EQ(r.rows[0].values[1], 4.0);  // count
  EXPECT_EQ(r.query_id, q.id);
  EXPECT_FALSE(r.ToString().empty());
}

TEST(FinalizeResultTest, EmptyAggregateGetsZeroRow) {
  auto schema = MakeTinySchema();
  const Query q = AggQuery(schema.get());
  QueryResult r = FinalizeResult(q, nullptr, PartialResult{});
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(r.rows[0].values[0], 0.0);
  EXPECT_DOUBLE_EQ(r.rows[0].values[1], 0.0);
}

TEST(FinalizeResultTest, RatioWithZeroDenominatorIsZero) {
  auto schema = MakeTinySchema();
  Query q = *QueryBuilder(schema.get())
                 .SelectSumRatio("cost_week_sum", "dur_today_sum")
                 .Build();
  PartialResult p;
  p.groups.push_back({0, {Acc(42, 0, 0, 3), Acc(0, 0, 0, 0)}});
  QueryResult r = FinalizeResult(q, nullptr, std::move(p));
  EXPECT_DOUBLE_EQ(r.rows[0].values[0], 0.0);
}

TEST(FinalizeResultTest, GroupRowsSortedAndLimited) {
  auto schema = MakeTinySchema();
  Query q = *QueryBuilder(schema.get())
                 .SelectCount()
                 .GroupByAttr("calls_today")
                 .Limit(2)
                 .Build();
  PartialResult p;
  p.groups.push_back({30, {Acc(0, 0, 0, 1)}});
  p.groups.push_back({10, {Acc(0, 0, 0, 2)}});
  p.groups.push_back({20, {Acc(0, 0, 0, 3)}});
  QueryResult r = FinalizeResult(q, nullptr, std::move(p));
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0].group_key, 10u);
  EXPECT_EQ(r.rows[1].group_key, 20u);
}

}  // namespace
}  // namespace aim
