#include "aim/storage/event_log.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <thread>

#include <gtest/gtest.h>

#include "aim/common/crc32c.h"
#include "aim/storage/fs_util.h"

namespace aim {
namespace {

std::string TestPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<std::uint8_t> Payload(std::initializer_list<std::uint8_t> bytes) {
  return std::vector<std::uint8_t>(bytes);
}

std::vector<std::uint8_t> ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<std::uint8_t> buf(static_cast<std::size_t>(size));
  EXPECT_EQ(std::fread(buf.data(), 1, buf.size(), f), buf.size());
  std::fclose(f);
  return buf;
}

void WriteFile(const std::string& path, const std::vector<std::uint8_t>& b) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(b.data(), 1, b.size(), f), b.size());
  std::fclose(f);
}

struct Replayed {
  EventLog::Lsn lsn;
  std::vector<std::uint8_t> payload;
};

std::vector<Replayed> ReplayAll(const std::string& path,
                                EventLog::Lsn from = 0) {
  std::vector<Replayed> out;
  StatusOr<EventLog::ReplayStats> stats = EventLog::Replay(
      path, from, [&](EventLog::Lsn lsn, std::span<const std::uint8_t> p) {
        out.push_back({lsn, {p.begin(), p.end()}});
      });
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  return out;
}

TEST(EventLogTest, AppendSyncReplayRoundTrip) {
  const std::string path = TestPath("event_log_roundtrip.log");
  std::remove(path.c_str());
  EventLog log;
  StatusOr<EventLog::OpenStats> opened = log.Open(path);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened->end, EventLog::kHeaderSize);
  EXPECT_EQ(opened->records, 0u);
  EXPECT_FALSE(opened->truncated_tear);

  const std::vector<std::vector<std::uint8_t>> payloads = {
      Payload({1}), Payload({2, 3, 4}), Payload({}), Payload({5, 6})};
  EventLog::Lsn last = 0;
  for (const auto& p : payloads) {
    StatusOr<EventLog::Lsn> lsn = log.Append(p);
    ASSERT_TRUE(lsn.ok());
    EXPECT_GT(*lsn, last);
    last = *lsn;
  }
  EXPECT_EQ(log.end_lsn(), last);
  EXPECT_LT(log.durable_lsn(), last);  // Append never syncs
  ASSERT_TRUE(log.Sync(last).ok());
  EXPECT_EQ(log.durable_lsn(), last);
  ASSERT_TRUE(log.Close().ok());

  const std::vector<Replayed> seen = ReplayAll(path);
  ASSERT_EQ(seen.size(), payloads.size());
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    EXPECT_EQ(seen[i].payload, payloads[i]) << i;
  }
  EXPECT_EQ(seen.back().lsn, last);

  // Replay from a recorded mid-log LSN delivers exactly the suffix.
  const std::vector<Replayed> suffix = ReplayAll(path, seen[1].lsn);
  ASSERT_EQ(suffix.size(), 2u);
  EXPECT_EQ(suffix[0].payload, payloads[2]);
  EXPECT_EQ(suffix[1].payload, payloads[3]);
  std::remove(path.c_str());
}

TEST(EventLogTest, ReopenExtendsExistingLog) {
  const std::string path = TestPath("event_log_reopen.log");
  std::remove(path.c_str());
  {
    EventLog log;
    ASSERT_TRUE(log.Open(path).ok());
    ASSERT_TRUE(log.Append(Payload({10})).ok());
    ASSERT_TRUE(log.Close().ok());  // Close syncs
  }
  EventLog log;
  StatusOr<EventLog::OpenStats> opened = log.Open(path);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened->records, 1u);
  StatusOr<EventLog::Lsn> lsn = log.Append(Payload({11}));
  ASSERT_TRUE(lsn.ok());
  ASSERT_TRUE(log.Sync(*lsn).ok());
  ASSERT_TRUE(log.Close().ok());
  const std::vector<Replayed> seen = ReplayAll(path);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].payload, Payload({10}));
  EXPECT_EQ(seen[1].payload, Payload({11}));
  std::remove(path.c_str());
}

TEST(EventLogTest, MissingFileIsNotFoundAndForeignFileIsRefused) {
  const std::string path = TestPath("event_log_absent.log");
  std::remove(path.c_str());
  EXPECT_TRUE(EventLog::Replay(path, 0, [](EventLog::Lsn,
                                           std::span<const std::uint8_t>) {})
                  .status()
                  .IsNotFound());
  // A file that is not a log must not be appended over.
  WriteFile(path, {'n', 'o', 't', ' ', 'a', ' ', 'l', 'o', 'g', '!'});
  EventLog log;
  EXPECT_TRUE(log.Open(path).status().IsInvalidArgument());
  std::remove(path.c_str());
}

// The torn-tail property: truncating a valid log at EVERY byte boundary
// must replay a clean prefix of whole records — never an error, never a
// partial or corrupted record, never a record past the cut.
TEST(EventLogTest, TruncationAtEveryByteReplaysCleanPrefix) {
  const std::string path = TestPath("event_log_trunc.log");
  std::remove(path.c_str());
  std::vector<EventLog::Lsn> boundaries;  // LSN after each record
  {
    EventLog log;
    ASSERT_TRUE(log.Open(path).ok());
    for (std::uint8_t i = 0; i < 9; ++i) {
      std::vector<std::uint8_t> payload(static_cast<std::size_t>(i) * 3 + 1,
                                        i);
      StatusOr<EventLog::Lsn> lsn = log.Append(payload);
      ASSERT_TRUE(lsn.ok());
      boundaries.push_back(*lsn);
    }
    ASSERT_TRUE(log.Close().ok());
  }
  const std::vector<std::uint8_t> full = ReadFile(path);
  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    WriteFile(path, {full.begin(), full.begin() + cut});
    // How many whole records fit under the cut?
    std::size_t expect = 0;
    while (expect < boundaries.size() && boundaries[expect] <= cut) ++expect;
    if (cut < EventLog::kHeaderSize) {
      // Short of even the magic: Open rewrites a fresh header (size < 8 is
      // treated as a never-initialized file), Replay sees zero records.
      EventLog log;
      StatusOr<EventLog::OpenStats> opened = log.Open(path);
      ASSERT_TRUE(opened.ok()) << "cut " << cut;
      EXPECT_EQ(opened->records, 0u) << "cut " << cut;
      ASSERT_TRUE(log.Close().ok());
      continue;
    }
    const std::vector<Replayed> seen = ReplayAll(path);
    ASSERT_EQ(seen.size(), expect) << "cut " << cut;
    for (std::size_t i = 0; i < seen.size(); ++i) {
      EXPECT_EQ(seen[i].payload.size(), i * 3 + 1) << "cut " << cut;
      EXPECT_EQ(seen[i].lsn, boundaries[i]) << "cut " << cut;
    }
    // Open truncates the tear and the log stays appendable.
    EventLog log;
    StatusOr<EventLog::OpenStats> opened = log.Open(path);
    ASSERT_TRUE(opened.ok()) << "cut " << cut;
    EXPECT_EQ(opened->records, expect) << "cut " << cut;
    EXPECT_EQ(opened->truncated_tear,
              cut != (expect == 0 ? EventLog::kHeaderSize
                                  : boundaries[expect - 1]))
        << "cut " << cut;
    StatusOr<EventLog::Lsn> lsn = log.Append(Payload({0xEE}));
    ASSERT_TRUE(lsn.ok()) << "cut " << cut;
    ASSERT_TRUE(log.Close().ok());
    const std::vector<Replayed> extended = ReplayAll(path);
    ASSERT_EQ(extended.size(), expect + 1) << "cut " << cut;
    EXPECT_EQ(extended.back().payload, Payload({0xEE})) << "cut " << cut;
  }
  std::remove(path.c_str());
}

TEST(EventLogTest, TrailingGarbageIsATearNotASuccess) {
  const std::string path = TestPath("event_log_garbage.log");
  std::remove(path.c_str());
  EventLog::Lsn good_end = 0;
  {
    EventLog log;
    ASSERT_TRUE(log.Open(path).ok());
    StatusOr<EventLog::Lsn> lsn = log.Append(Payload({7, 8, 9}));
    ASSERT_TRUE(lsn.ok());
    good_end = *lsn;
    ASSERT_TRUE(log.Close().ok());
  }
  std::vector<std::uint8_t> image = ReadFile(path);
  for (int i = 0; i < 24; ++i) image.push_back(0xAB);
  WriteFile(path, image);

  EventLog::ReplayStats scanned = EventLog::ScanImage(
      image, 0, [](EventLog::Lsn, std::span<const std::uint8_t>) {});
  EXPECT_TRUE(scanned.torn);  // never reported as a clean end-of-log
  EXPECT_EQ(scanned.end, good_end);
  EXPECT_EQ(scanned.records, 1u);

  // Open truncates the garbage; the file shrinks back to the valid prefix.
  EventLog log;
  StatusOr<EventLog::OpenStats> opened = log.Open(path);
  ASSERT_TRUE(opened.ok());
  EXPECT_TRUE(opened->truncated_tear);
  EXPECT_EQ(opened->end, good_end);
  ASSERT_TRUE(log.Close().ok());
  EXPECT_EQ(ReadFile(path).size(), good_end);
  std::remove(path.c_str());
}

TEST(EventLogTest, CorruptedByteAnywhereEndsReplayAtThatRecord) {
  const std::string path = TestPath("event_log_corrupt.log");
  std::remove(path.c_str());
  std::vector<EventLog::Lsn> boundaries;
  {
    EventLog log;
    ASSERT_TRUE(log.Open(path).ok());
    for (std::uint8_t i = 0; i < 4; ++i) {
      StatusOr<EventLog::Lsn> lsn = log.Append(Payload({i, i, i, i, i}));
      ASSERT_TRUE(lsn.ok());
      boundaries.push_back(*lsn);
    }
    ASSERT_TRUE(log.Close().ok());
  }
  const std::vector<std::uint8_t> clean = ReadFile(path);
  for (std::size_t pos = EventLog::kHeaderSize; pos < clean.size(); ++pos) {
    std::vector<std::uint8_t> image = clean;
    image[pos] ^= 0x40;
    // The record containing the flipped byte (and everything after it) must
    // not be delivered; everything before it must be.
    std::size_t expect = 0;
    while (expect < boundaries.size() && boundaries[expect] <= pos) ++expect;
    std::size_t delivered = 0;
    EventLog::ReplayStats scanned = EventLog::ScanImage(
        image, 0, [&](EventLog::Lsn, std::span<const std::uint8_t> p) {
          ++delivered;
          ASSERT_EQ(p.size(), 5u);
          for (std::uint8_t b : p) ASSERT_EQ(b, p[0]);
        });
    EXPECT_EQ(delivered, expect) << "pos " << pos;
    EXPECT_TRUE(scanned.torn) << "pos " << pos;
  }
  std::remove(path.c_str());
}

TEST(EventLogTest, ReplayFromBeyondFileIsInvalid) {
  const std::string path = TestPath("event_log_beyond.log");
  std::remove(path.c_str());
  {
    EventLog log;
    ASSERT_TRUE(log.Open(path).ok());
    ASSERT_TRUE(log.Close().ok());
  }
  EXPECT_TRUE(
      EventLog::Replay(path, 1u << 20,
                       [](EventLog::Lsn, std::span<const std::uint8_t>) {})
          .status()
          .IsInvalidArgument());
  std::remove(path.c_str());
}

TEST(EventLogTest, ConcurrentSyncersAllObserveDurability) {
  // Group commit: many threads wait on Sync for their own LSN while one
  // appender keeps writing; every Sync must return ok with durable_lsn
  // at or past the requested point.
  const std::string path = TestPath("event_log_group.log");
  std::remove(path.c_str());
  EventLog log;
  ASSERT_TRUE(log.Open(path).ok());
  constexpr int kRecords = 200;
  std::vector<EventLog::Lsn> lsns(kRecords);
  for (int i = 0; i < kRecords; ++i) {
    StatusOr<EventLog::Lsn> lsn =
        log.Append(Payload({static_cast<std::uint8_t>(i)}));
    ASSERT_TRUE(lsn.ok());
    lsns[static_cast<std::size_t>(i)] = *lsn;
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = t; i < kRecords; i += 8) {
        const EventLog::Lsn want = lsns[static_cast<std::size_t>(i)];
        ASSERT_TRUE(log.Sync(want).ok());
        ASSERT_GE(log.durable_lsn(), want);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_TRUE(log.Close().ok());
  EXPECT_EQ(ReplayAll(path).size(), static_cast<std::size_t>(kRecords));
  std::remove(path.c_str());
}

// --- payload codec ---------------------------------------------------------

TEST(LogPayloadTest, EventBatchRoundTrip) {
  BinaryWriter writer;
  const std::vector<std::uint8_t> events = {1, 2, 3, 4, 5, 6, 7, 8};
  EncodeEventBatchHeader(2, 4, &writer);
  writer.PutBytes(events.data(), events.size());
  LogPayloadView view;
  ASSERT_TRUE(DecodeLogPayload(writer.buffer(), &view).ok());
  EXPECT_EQ(view.kind, LogPayloadView::Kind::kEventBatch);
  EXPECT_EQ(view.event_count, 2u);
  EXPECT_EQ(view.event_size, 4u);
  ASSERT_EQ(view.events.size(), events.size());
  EXPECT_EQ(std::memcmp(view.events.data(), events.data(), events.size()), 0);
}

TEST(LogPayloadTest, RecordOpRoundTrip) {
  BinaryWriter writer;
  const std::vector<std::uint8_t> row = {9, 9, 9};
  EncodeRecordOpPayload(LogPayloadView::Kind::kRecordPut, 42, 7, row,
                        &writer);
  LogPayloadView view;
  ASSERT_TRUE(DecodeLogPayload(writer.buffer(), &view).ok());
  EXPECT_EQ(view.kind, LogPayloadView::Kind::kRecordPut);
  EXPECT_EQ(view.entity, 42u);
  EXPECT_EQ(view.expected_version, 7u);
  ASSERT_EQ(view.row.size(), row.size());
  EXPECT_EQ(std::memcmp(view.row.data(), row.data(), row.size()), 0);
}

TEST(LogPayloadTest, MalformedPayloadsAreRejectedNotCrashed) {
  LogPayloadView view;
  EXPECT_TRUE(DecodeLogPayload({}, &view).IsInvalidArgument());
  // Unknown kind.
  std::vector<std::uint8_t> bad = {9};
  EXPECT_TRUE(DecodeLogPayload(bad, &view).IsInvalidArgument());
  // Event batch whose count*size disagrees with the bytes present.
  BinaryWriter writer;
  EncodeEventBatchHeader(1000, 64, &writer);
  writer.PutU8(0);
  EXPECT_TRUE(DecodeLogPayload(writer.buffer(), &view).IsInvalidArgument());
  // count*size overflow must not wrap into a small "valid" total.
  BinaryWriter overflow;
  EncodeEventBatchHeader(0xFFFFFFFFu, 0xFFFFFFFFu, &overflow);
  EXPECT_TRUE(
      DecodeLogPayload(overflow.buffer(), &view).IsInvalidArgument());
  // Record op with an empty row.
  BinaryWriter empty_row;
  EncodeRecordOpPayload(LogPayloadView::Kind::kRecordInsert, 1, 0, {},
                        &empty_row);
  EXPECT_TRUE(
      DecodeLogPayload(empty_row.buffer(), &view).IsInvalidArgument());
}

TEST(Crc32cTest, KnownVectorsAndIncrementalChaining) {
  // RFC 3720 test vector: crc32c of 32 zero bytes.
  std::uint8_t zeros[32] = {0};
  EXPECT_EQ(Crc32c(zeros, sizeof(zeros)), 0x8A9136AAu);
  const char* s = "123456789";
  EXPECT_EQ(Crc32c(s, 9), 0xE3069283u);
  // Incremental: crc(a+b) == crc(b, seed=crc(a)).
  EXPECT_EQ(Crc32c(s + 4, 5, Crc32c(s, 4)), 0xE3069283u);
}

}  // namespace
}  // namespace aim
