// TSA negative fixture: touching an AIM_GUARDED_BY field without holding
// its mutex. Must FAIL to compile under -Wthread-safety -Werror (asserted
// by tests/tsa/CMakeLists.txt with WILL_FAIL); compiles as plain C++
// everywhere else, which keeps the fixture honest about being valid code
// whose only defect is the lock discipline.
#include "aim/common/annotated_mutex.h"

namespace aim::tsa_fixture {

class Account {
 public:
  void Deposit(int amount) {
    balance_ += amount;  // BAD: mu_ not held
  }

  int balance() const {
    MutexLock lock(mu_);
    return balance_;
  }

 private:
  mutable Mutex mu_;
  int balance_ AIM_GUARDED_BY(mu_) = 0;
};

int Drive(int amount) {
  Account account;
  account.Deposit(amount);
  return account.balance();
}

}  // namespace aim::tsa_fixture
