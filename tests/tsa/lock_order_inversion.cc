// TSA negative fixture: lock-ordering violations. Two independent defects
// so the fixture fails to build regardless of whether the beta
// lock-ordering checks are active in the toolchain's Clang:
//   1. re-acquiring a capability already held (always diagnosed), and
//   2. acquiring mu_a_ after mu_b_ against the declared
//      AIM_ACQUIRED_AFTER order (diagnosed under -Wthread-safety-beta).
// Must FAIL to compile under -Wthread-safety -Wthread-safety-beta -Werror.
#include "aim/common/annotated_mutex.h"

namespace aim::tsa_fixture {

class Transfer {
 public:
  void DoubleAcquire() {
    mu_a_.lock();
    mu_a_.lock();  // BAD: mu_a_ is already held
    mu_a_.unlock();
    mu_a_.unlock();
  }

  void InvertedOrder() {
    mu_b_.lock();
    mu_a_.lock();  // BAD: mu_b_ is declared acquired-after mu_a_
    mu_a_.unlock();
    mu_b_.unlock();
  }

 private:
  Mutex mu_a_;
  Mutex mu_b_ AIM_ACQUIRED_AFTER(mu_a_);
};

void Drive() {
  Transfer transfer;
  transfer.DoubleAcquire();
  transfer.InvertedOrder();
}

}  // namespace aim::tsa_fixture
