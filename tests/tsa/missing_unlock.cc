// TSA negative fixture: a path that returns while still holding the
// mutex (the classic early-return leak that scoped locks exist to
// prevent). Must FAIL to compile under -Wthread-safety -Werror.
#include "aim/common/annotated_mutex.h"

namespace aim::tsa_fixture {

class Latch {
 public:
  bool Arm() {
    mu_.lock();
    if (armed_) {
      return false;  // BAD: returns with mu_ still held
    }
    armed_ = true;
    mu_.unlock();
    return true;
  }

 private:
  Mutex mu_;
  bool armed_ AIM_GUARDED_BY(mu_) = false;
};

bool Drive() {
  Latch latch;
  return latch.Arm();
}

}  // namespace aim::tsa_fixture
