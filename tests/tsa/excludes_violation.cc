// TSA negative fixture: calling an AIM_EXCLUDES function while holding
// the mutex it acquires itself — a guaranteed self-deadlock with
// non-recursive mutexes. Must FAIL to compile under -Wthread-safety
// -Werror.
#include "aim/common/annotated_mutex.h"

namespace aim::tsa_fixture {

class Registry {
 public:
  void Refresh() {
    MutexLock lock(mu_);
    Rebuild();  // BAD: Rebuild re-locks mu_, which this thread holds
  }

  void Rebuild() AIM_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    ++generation_;
  }

 private:
  Mutex mu_;
  int generation_ AIM_GUARDED_BY(mu_) = 0;
};

void Drive() {
  Registry registry;
  registry.Refresh();
}

}  // namespace aim::tsa_fixture
