// TSA positive control: correct lock discipline over every wrapper in
// annotated_mutex.h. Must COMPILE CLEANLY under the exact flags the
// negative fixtures are built with (-Wthread-safety -Wthread-safety-beta
// -Werror) — if this target ever fails, the negative tests' failures are
// meaningless (the flags, not the defects, would be doing the failing).
#include <deque>

#include "aim/common/annotated_mutex.h"

namespace aim::tsa_fixture {

class BoundedBox {
 public:
  void Put(int v) {
    MutexLock lock(mu_);
    while (items_.size() >= kCapacity) {
      not_full_.wait(lock);
    }
    items_.push_back(v);
  }

  bool TryTake(int* out) {
    MutexLock lock(mu_);
    if (items_.empty()) return false;
    *out = items_.front();
    items_.pop_front();
    not_full_.notify_one();
    return true;
  }

  void Clear() AIM_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    ClearLocked();
  }

 private:
  void ClearLocked() AIM_REQUIRES(mu_) { items_.clear(); }

  static constexpr std::size_t kCapacity = 8;
  Mutex mu_;
  CondVar not_full_;
  std::deque<int> items_ AIM_GUARDED_BY(mu_);
};

class Snapshot {
 public:
  void Set(int v) {
    WriterLock lock(mu_);
    value_ = v;
  }

  int Get() const {
    ReaderLock lock(mu_);
    return value_;
  }

  void Bump() {
    mu_.lock();
    ++value_;
    mu_.unlock();
  }

 private:
  mutable SharedMutex mu_;
  int value_ AIM_GUARDED_BY(mu_) = 0;
};

int Drive(int v) {
  BoundedBox box;
  box.Put(v);
  int out = 0;
  box.TryTake(&out);
  box.Clear();

  Snapshot snapshot;
  snapshot.Set(out);
  snapshot.Bump();
  return snapshot.Get();
}

}  // namespace aim::tsa_fixture
