// TSA negative fixture: calling an AIM_REQUIRES function without holding
// the required mutex. Must FAIL to compile under -Wthread-safety -Werror.
#include "aim/common/annotated_mutex.h"

namespace aim::tsa_fixture {

class Journal {
 public:
  void Append(int v) {
    AppendLocked(v);  // BAD: caller does not hold mu_
  }

  void AppendSafely(int v) {
    MutexLock lock(mu_);
    AppendLocked(v);
  }

 private:
  void AppendLocked(int v) AIM_REQUIRES(mu_) { tail_ = v; }

  Mutex mu_;
  int tail_ AIM_GUARDED_BY(mu_) = 0;
};

void Drive(int v) {
  Journal journal;
  journal.Append(v);
  journal.AppendSafely(v);
}

}  // namespace aim::tsa_fixture
