#include <gtest/gtest.h>

#include "aim/esp/event_archive.h"
#include "aim/esp/update_kernel.h"
#include "test_util.h"

namespace aim {
namespace {

using testing_util::MakeTinySchema;

Event Call(EntityId caller, Timestamp ts, std::uint32_t duration,
           bool long_distance = true) {
  Event e;
  e.caller = caller;
  e.callee = 2;
  e.timestamp = ts;
  e.duration = duration;
  e.cost = duration * 0.01f;
  if (long_distance) e.flags |= Event::kLongDistance;
  return e;
}

TEST(EventArchiveTest, AppendAndIterate) {
  EventArchive archive;
  archive.Append(Call(1, 100, 10));
  archive.Append(Call(1, 200, 20));
  archive.Append(Call(2, 300, 30));
  EXPECT_EQ(archive.TotalEvents(), 3u);
  EXPECT_EQ(archive.EventsOf(1), 2u);
  EXPECT_EQ(archive.EventsOf(2), 1u);
  EXPECT_EQ(archive.EventsOf(3), 0u);

  std::vector<Timestamp> seen;
  archive.ForEachOf(1, [&](const Event& e) { seen.push_back(e.timestamp); });
  EXPECT_EQ(seen, (std::vector<Timestamp>{100, 200}));
}

TEST(EventArchiveTest, RetentionDropsOldEvents) {
  EventArchive::Options opts;
  opts.retention_ms = 1000;
  EventArchive archive(opts);
  archive.Append(Call(1, 100, 10));
  archive.Append(Call(1, 500, 20));
  archive.Append(Call(1, 1600, 30));  // horizon moves to 600: drops ts=100,500
  EXPECT_EQ(archive.EventsOf(1), 1u);
  std::vector<Timestamp> seen;
  archive.ForEachOf(1, [&](const Event& e) { seen.push_back(e.timestamp); });
  EXPECT_EQ(seen, (std::vector<Timestamp>{1600}));
}

TEST(EventArchiveTest, PerEntityCap) {
  EventArchive::Options opts;
  opts.max_events_per_entity = 5;
  EventArchive archive(opts);
  for (int i = 0; i < 20; ++i) archive.Append(Call(1, 100 + i, 1));
  EXPECT_EQ(archive.EventsOf(1), 5u);
}

TEST(EventArchiveTest, RangeQueries) {
  EventArchive archive;
  for (Timestamp ts : {100, 200, 300, 400}) {
    archive.Append(Call(1, ts, 1));
  }
  int n = 0;
  archive.ForEachInRange(1, 200, 400, [&](const Event&) { ++n; });
  EXPECT_EQ(n, 2);  // 200 and 300; 400 excluded
}

/// Footnote 1 scenario: the pane approximation can over-report a sliding
/// max whose true extremum already left the window; the archive rebuild is
/// exact.
TEST(EventArchiveTest, ExactSlidingRebuildBeatsPaneApproximation) {
  auto schema = MakeTinySchema();
  // ld_dur_24h: long-distance duration over 24h in 6 panes of 4h.
  std::uint16_t group_id = 0xffff;
  for (std::uint16_t g = 0; g < schema->num_groups(); ++g) {
    if (schema->group(g).name == "ld_dur_24h") group_id = g;
  }
  ASSERT_NE(group_id, 0xffff);
  const AttributeGroupSpec& group = schema->group(group_id);
  const std::uint16_t max_attr = group.max_attr;

  UpdateProgram program(*schema, kInvalidAttr);
  EventArchive archive;
  RecordBuffer buf(schema.get());

  // A huge call at t=0h, small calls at t=3h59 (same pane!) and t=5h.
  const Event big = Call(1, 0, 3000);
  const Event small1 = Call(1, 4 * kMillisPerHour - 1000, 10);
  const Event small2 = Call(1, 5 * kMillisPerHour, 20);
  for (const Event& e : {big, small1, small2}) {
    program.Apply(e, buf.data());
    archive.Append(e);
  }

  // 26 hours later: the big call is outside the true 24h window, but its
  // pane also contains small1... advance to a time where the pane of the
  // big call has been evicted but some panes survive.
  const Event late = Call(1, 26 * kMillisPerHour, 30);
  program.Apply(late, buf.data());
  archive.Append(late);

  const float pane_max = buf.const_view().Get(max_attr).f32();

  // Exact rebuild from the archive over (late.ts - 24h, late.ts].
  RecordBuffer exact(schema.get());
  ASSERT_TRUE(RebuildSlidingFromArchive(*schema, group_id, archive, 1,
                                        late.timestamp, exact.data())
                  .ok());
  const float exact_max = exact.const_view().Get(max_attr).f32();

  // True window contains small1 (t=3h59m? no — 26h-24h = 2h: small1 at
  // ~4h IS inside), small2 and late: exact max = 30... compute directly:
  // events in (2h, 26h]: small1 (3h59m, dur 10), small2 (5h, dur 20),
  // late (26h, dur 30) -> max 30.
  EXPECT_FLOAT_EQ(exact_max, 30.0f);
  // The pane approximation keeps whole panes, so results may differ from
  // the exact value; it must never be smaller than the exact one here
  // (panes only over-include).
  EXPECT_GE(pane_max, exact_max);
}

TEST(EventArchiveTest, RebuildRejectsNonSlidingGroups) {
  auto schema = MakeTinySchema();
  EventArchive archive;
  RecordBuffer buf(schema.get());
  // Group 0 is calls_today (tumbling).
  EXPECT_TRUE(RebuildSlidingFromArchive(*schema, 0, archive, 1, 0,
                                        buf.data())
                  .IsInvalidArgument());
  EXPECT_TRUE(RebuildSlidingFromArchive(*schema, 9999, archive, 1, 0,
                                        buf.data())
                  .IsInvalidArgument());
}

TEST(EventArchiveTest, RebuildMatchesKernelWhenWindowAligned) {
  // When every event is recent (nothing expired), the pane fold and the
  // exact rebuild agree.
  auto schema = MakeTinySchema();
  std::uint16_t group_id = 0xffff;
  for (std::uint16_t g = 0; g < schema->num_groups(); ++g) {
    if (schema->group(g).name == "ld_dur_24h") group_id = g;
  }
  ASSERT_NE(group_id, 0xffff);
  const AttributeGroupSpec& group = schema->group(group_id);

  UpdateProgram program(*schema, kInvalidAttr);
  EventArchive archive;
  RecordBuffer live(schema.get());
  Random rng(8);
  Timestamp now = 0;
  for (int i = 0; i < 50; ++i) {
    now += rng.Uniform(30 * 60 * 1000);  // <= 30 min steps: nothing expires
    Event e = Call(1, now, static_cast<std::uint32_t>(rng.Uniform(500) + 1));
    program.Apply(e, live.data());
    archive.Append(e);
  }
  RecordBuffer exact(schema.get());
  ASSERT_TRUE(RebuildSlidingFromArchive(*schema, group_id, archive, 1, now,
                                        exact.data())
                  .ok());
  for (std::uint16_t attr :
       {group.count_attr, group.sum_attr, group.min_attr, group.max_attr}) {
    if (attr == kInvalidAttr) continue;
    EXPECT_NEAR(live.const_view().Get(attr).AsDouble(),
                exact.const_view().Get(attr).AsDouble(), 1e-2)
        << schema->attribute(attr).name;
  }
}

}  // namespace
}  // namespace aim
