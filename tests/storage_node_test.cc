#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "aim/server/storage_node.h"
#include "aim/workload/benchmark_schema.h"
#include "aim/workload/cdr_generator.h"
#include "aim/workload/dimension_data.h"
#include "test_util.h"

namespace aim {
namespace {

class StorageNodeTest : public ::testing::Test {
 protected:
  StorageNodeTest()
      : schema_(MakeCompactSchema()), dims_(MakeBenchmarkDims()) {}

  StorageNode::Options NodeOptions(std::uint32_t partitions,
                                   std::uint32_t esp_threads) {
    StorageNode::Options opts;
    opts.node_id = 0;
    opts.num_partitions = partitions;
    opts.num_esp_threads = esp_threads;
    opts.bucket_size = 64;
    opts.max_records_per_partition = 1 << 14;
    opts.scan_poll_micros = 200;
    return opts;
  }

  void LoadEntities(StorageNode* node, std::uint64_t n) {
    std::vector<std::uint8_t> row(schema_->record_size(), 0);
    for (EntityId e = 1; e <= n; ++e) {
      std::fill(row.begin(), row.end(), 0);
      PopulateEntityProfile(*schema_, dims_, e, n, row.data());
      ASSERT_TRUE(node->BulkLoad(e, row.data()).ok());
    }
  }

  static std::vector<std::uint8_t> Wire(const Event& e) {
    BinaryWriter w;
    e.Serialize(&w);
    return w.TakeBuffer();
  }

  QueryResult RunQuery(StorageNode* node, const Query& q) {
    BinaryWriter w;
    q.Serialize(&w);
    MpscQueue<std::vector<std::uint8_t>> replies;
    EXPECT_TRUE(node->SubmitQuery(
        w.TakeBuffer(),
        [&replies](std::vector<std::uint8_t>&& b) { replies.Push(std::move(b)); }));
    std::optional<std::vector<std::uint8_t>> bytes = replies.Pop();
    QueryResult result;
    if (!bytes.has_value() || bytes->empty()) {
      result.status = Status::Shutdown();
      return result;
    }
    BinaryReader r(*bytes);
    StatusOr<PartialResult> partial = PartialResult::Deserialize(&r);
    EXPECT_TRUE(partial.ok());
    return FinalizeResult(q, &dims_.catalog, std::move(partial).value());
  }

  std::unique_ptr<Schema> schema_;
  BenchmarkDims dims_;
  std::vector<Rule> rules_;
};

TEST_F(StorageNodeTest, StartStopIsClean) {
  StorageNode node(schema_.get(), &dims_.catalog, &rules_,
                   NodeOptions(2, 1));
  ASSERT_TRUE(node.Start().ok());
  EXPECT_TRUE(node.running());
  EXPECT_FALSE(node.Start().ok());  // double start rejected
  node.Stop();
  EXPECT_FALSE(node.running());
}

TEST_F(StorageNodeTest, EventsProcessedWithCompletion) {
  StorageNode node(schema_.get(), &dims_.catalog, &rules_,
                   NodeOptions(2, 1));
  LoadEntities(&node, 50);
  ASSERT_TRUE(node.Start().ok());

  CdrGenerator::Options gopts;
  gopts.num_entities = 50;
  CdrGenerator gen(gopts);
  constexpr int kEvents = 500;
  for (int i = 0; i < kEvents; ++i) {
    EventCompletion done;
    ASSERT_TRUE(node.SubmitEvent(Wire(gen.Next(1000 + i)), &done));
    done.Wait();
    ASSERT_TRUE(done.status.ok()) << done.status.ToString();
  }
  node.Stop();
  EXPECT_EQ(node.stats().events_processed, kEvents);
  EXPECT_EQ(node.stats().txn_conflicts, 0u);
}

TEST_F(StorageNodeTest, EventBatchSubmitRoutesWholeBatch) {
  MetricsRegistry metrics;
  StorageNode::Options opts = NodeOptions(2, 2);
  opts.max_event_batch = 32;
  opts.metrics = &metrics;
  StorageNode node(schema_.get(), &dims_.catalog, &rules_, opts);
  LoadEntities(&node, 50);
  ASSERT_TRUE(node.Start().ok());

  CdrGenerator::Options gopts;
  gopts.num_entities = 50;
  CdrGenerator gen(gopts);
  constexpr std::size_t kBatches = 20;
  constexpr std::size_t kBatchSize = 25;
  Timestamp ts = 1000;
  for (std::size_t b = 0; b < kBatches; ++b) {
    std::vector<EventMessage> batch;
    for (std::size_t i = 0; i < kBatchSize; ++i) {
      EventMessage msg;
      msg.bytes = Wire(gen.Next(ts += 10));
      batch.push_back(std::move(msg));
    }
    EventCompletion last;
    batch.back().completion = &last;
    // The whole batch is accepted even though its events interleave across
    // both ESP threads (the router splits it into same-thread runs).
    ASSERT_EQ(node.SubmitEventBatch(std::move(batch)), kBatchSize);
    last.Wait();
    ASSERT_TRUE(last.status.ok()) << last.status.ToString();
  }
  for (int attempt = 0; attempt < 2000; ++attempt) {
    if (node.stats().events_processed >= kBatches * kBatchSize) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(node.stats().events_processed, kBatches * kBatchSize);
  // The drain loop really batched: the per-wakeup batch-size histogram saw
  // samples (one per ESP wakeup).
  EXPECT_GT(
      metrics.GetHistogram("aim_esp_batch_size", {{"node", "0"}})->Count(),
      0u);

  // A malformed (short) event stops acceptance at that prefix.
  {
    std::vector<EventMessage> bad;
    for (int i = 0; i < 5; ++i) {
      EventMessage msg;
      msg.bytes = i == 2 ? std::vector<std::uint8_t>{1, 2, 3}
                         : Wire(gen.Next(ts += 10));
      bad.push_back(std::move(msg));
    }
    EXPECT_EQ(node.SubmitEventBatch(std::move(bad)), 2u);
  }

  node.Stop();
  std::vector<EventMessage> after_stop;
  EventMessage msg;
  msg.bytes = Wire(gen.Next(ts += 10));
  after_stop.push_back(std::move(msg));
  EXPECT_EQ(node.SubmitEventBatch(std::move(after_stop)), 0u);
}

TEST_F(StorageNodeTest, QueriesSeeAllEventsAfterFreshnessWindow) {
  StorageNode node(schema_.get(), &dims_.catalog, &rules_,
                   NodeOptions(3, 1));
  LoadEntities(&node, 100);
  ASSERT_TRUE(node.Start().ok());

  CdrGenerator::Options gopts;
  gopts.num_entities = 100;
  CdrGenerator gen(gopts);
  constexpr int kEvents = 1000;
  EventCompletion last;
  for (int i = 0; i < kEvents; ++i) {
    EventCompletion* done = (i == kEvents - 1) ? &last : nullptr;
    ASSERT_TRUE(node.SubmitEvent(Wire(gen.Next(1000 + i)), done));
  }
  last.Wait();

  // One scan/merge cycle bounds freshness; poll until visible (t_fresh).
  Query q = *QueryBuilder(schema_.get())
                 .Select(AggOp::kSum, "number_of_calls_today")
                 .Build();
  double seen = 0;
  for (int attempt = 0; attempt < 200; ++attempt) {
    const QueryResult r = RunQuery(&node, q);
    ASSERT_TRUE(r.status.ok());
    seen = r.rows[0].values[0];
    if (seen == kEvents) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_DOUBLE_EQ(seen, kEvents);
  node.Stop();
  EXPECT_GT(node.stats().scan_cycles, 0u);
  EXPECT_GT(node.stats().records_merged, 0u);
  EXPECT_GE(node.stats().queries_processed, 1u);
}

TEST_F(StorageNodeTest, MultipleEspThreadsPartitionOwnership) {
  StorageNode node(schema_.get(), &dims_.catalog, &rules_,
                   NodeOptions(4, 2));
  LoadEntities(&node, 200);
  ASSERT_TRUE(node.Start().ok());
  CdrGenerator::Options gopts;
  gopts.num_entities = 200;
  CdrGenerator gen(gopts);
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(node.SubmitEvent(Wire(gen.Next(1000 + i)), nullptr));
  }
  // Wait for all events to drain.
  for (int attempt = 0; attempt < 400; ++attempt) {
    if (node.stats().events_processed == 400) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(node.stats().events_processed, 400u);
  node.Stop();
}

TEST_F(StorageNodeTest, PartitionRoutingIsStable) {
  StorageNode node(schema_.get(), &dims_.catalog, &rules_,
                   NodeOptions(4, 1));
  for (EntityId e = 1; e <= 100; ++e) {
    const std::uint32_t p = node.PartitionOf(e);
    EXPECT_LT(p, 4u);
    EXPECT_EQ(p, node.PartitionOf(e));
  }
}

TEST_F(StorageNodeTest, GroupByQueryAcrossPartitions) {
  StorageNode node(schema_.get(), &dims_.catalog, &rules_,
                   NodeOptions(3, 1));
  LoadEntities(&node, 300);
  ASSERT_TRUE(node.Start().ok());

  // Group-by over a profile attribute: counts must cover all 300 entities
  // regardless of partitioning.
  Query q = *QueryBuilder(schema_.get())
                 .SelectCount()
                 .GroupByDim("zip", dims_.region_info, dims_.region_city)
                 .Build();
  const QueryResult r = RunQuery(&node, q);
  ASSERT_TRUE(r.status.ok());
  double total = 0;
  for (const auto& row : r.rows) total += row.values[0];
  EXPECT_DOUBLE_EQ(total, 300.0);
  node.Stop();
}

TEST_F(StorageNodeTest, LiveKpiMonitorReportsAllFiveSlasWithTracedFreshness) {
  constexpr std::uint64_t kEntities = 100;
  StorageNode node(schema_.get(), &dims_.catalog, &rules_,
                   NodeOptions(2, 1));
  LoadEntities(&node, kEntities);
  ASSERT_TRUE(node.Start().ok());

  KpiTargets targets;
  KpiMonitor monitor = node.MakeKpiMonitor(kEntities, targets);

  // Drive both sides of the mixed workload: a burst of events (each one
  // lands in a delta, so merges will publish traced-staleness samples) and
  // a stream of queries.
  CdrGenerator::Options gopts;
  gopts.num_entities = kEntities;
  CdrGenerator gen(gopts);
  Query q = *QueryBuilder(schema_.get())
                 .Select(AggOp::kSum, "number_of_calls_today")
                 .Build();
  constexpr int kEvents = 2000;
  for (int i = 0; i < kEvents; ++i) {
    EventCompletion done;
    ASSERT_TRUE(node.SubmitEvent(Wire(gen.Next(1000 + i)), &done));
    done.Wait();
    if (i % 10 == 0) {
      ASSERT_TRUE(RunQuery(&node, q).status.ok());
    }
  }
  // Let at least one more merge cycle publish so the freshness histogram
  // has samples for this window.
  const std::uint64_t fresh_before =
      node.metrics().GetHistogram("aim_fresh_staleness_millis",
                                  {{"node", "0"}})->Count();
  for (int attempt = 0; attempt < 200 && fresh_before == 0; ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    if (node.metrics().GetHistogram("aim_fresh_staleness_millis",
                                    {{"node", "0"}})->Count() > 0) {
      break;
    }
  }

  const KpiSample s = monitor.Sample();
  // The point of the test: t_fresh comes from the in-store trace (write ->
  // merge publication), not from query polling — and every SLA has a live
  // measured value.
  EXPECT_TRUE(s.fresh_traced) << s.Render(targets);
  EXPECT_GT(s.t_fresh_ms, 0.0);
  EXPECT_TRUE(s.t_fresh_ok) << s.Render(targets);
  EXPECT_TRUE(s.t_esp_ok) << s.Render(targets);
  EXPECT_TRUE(s.f_esp_ok) << s.Render(targets);
  EXPECT_TRUE(s.t_rta_ok) << s.Render(targets);
  EXPECT_GT(s.f_rta_qps, 0.0);
  EXPECT_EQ(s.NumPass() >= 4, true) << s.Render(targets);

  // The registry view agrees with the legacy aggregate.
  const StorageNode::NodeStats stats = node.stats();
  EXPECT_EQ(stats.events_processed, kEvents);
  EXPECT_GE(stats.queries_processed, 1u);
  const std::string prom = node.metrics().RenderPrometheus();
  EXPECT_NE(prom.find("aim_esp_events_total"), std::string::npos);
  EXPECT_NE(prom.find("aim_fresh_staleness_millis_count"), std::string::npos);
  node.Stop();
}

// A node running its RTA scans on a shared ScanPool (scan_pool_threads > 0)
// must answer queries identically to the default single-threaded SharedScan
// node over the same load — and the morsel counter must prove the scans
// actually ran cooperatively on the pool.
TEST_F(StorageNodeTest, ScanPoolNodeAnswersQueriesIdentically) {
  constexpr std::uint64_t kEntities = 120;
  constexpr int kEvents = 600;

  MetricsRegistry pooled_metrics;
  StorageNode::Options pooled_opts = NodeOptions(3, 1);
  pooled_opts.metrics = &pooled_metrics;
  pooled_opts.scan_pool_threads = 2;
  pooled_opts.scan_morsel_buckets = 2;

  StorageNode baseline(schema_.get(), &dims_.catalog, &rules_,
                       NodeOptions(3, 1));
  StorageNode pooled(schema_.get(), &dims_.catalog, &rules_, pooled_opts);
  LoadEntities(&baseline, kEntities);
  LoadEntities(&pooled, kEntities);
  ASSERT_TRUE(baseline.Start().ok());
  ASSERT_TRUE(pooled.Start().ok());

  // Identical event stream into both nodes (same generator seed).
  for (StorageNode* node : {&baseline, &pooled}) {
    CdrGenerator::Options gopts;
    gopts.num_entities = kEntities;
    CdrGenerator gen(gopts);
    EventCompletion last;
    for (int i = 0; i < kEvents; ++i) {
      EventCompletion* done = (i == kEvents - 1) ? &last : nullptr;
      ASSERT_TRUE(node->SubmitEvent(Wire(gen.Next(1000 + i)), done));
    }
    last.Wait();

    // Poll until all events are visible to scans (freshness window).
    Query sum = *QueryBuilder(schema_.get())
                     .Select(AggOp::kSum, "number_of_calls_today")
                     .Build();
    double seen = 0;
    for (int attempt = 0; attempt < 400; ++attempt) {
      const QueryResult r = RunQuery(node, sum);
      ASSERT_TRUE(r.status.ok());
      seen = r.rows[0].values[0];
      if (seen == kEvents) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_DOUBLE_EQ(seen, kEvents);
  }

  // Both nodes hold the same state; every query shape must agree exactly
  // (integer-valued aggregates, so double sums are exact).
  std::vector<Query> batch;
  batch.push_back(*QueryBuilder(schema_.get())
                       .Select(AggOp::kSum, "total_duration_this_week")
                       .Select(AggOp::kMax, "number_of_calls_today")
                       .SelectCount()
                       .Build());
  batch.push_back(*QueryBuilder(schema_.get())
                       .SelectCount()
                       .GroupByDim("zip", dims_.region_info,
                                   dims_.region_city)
                       .Build());
  for (const Query& q : batch) {
    const QueryResult want = RunQuery(&baseline, q);
    const QueryResult got = RunQuery(&pooled, q);
    ASSERT_TRUE(want.status.ok());
    ASSERT_TRUE(got.status.ok());
    ASSERT_EQ(got.rows.size(), want.rows.size());
    for (std::size_t i = 0; i < want.rows.size(); ++i) {
      EXPECT_EQ(got.rows[i].group_key, want.rows[i].group_key);
      ASSERT_EQ(got.rows[i].values.size(), want.rows[i].values.size());
      for (std::size_t v = 0; v < want.rows[i].values.size(); ++v) {
        EXPECT_DOUBLE_EQ(got.rows[i].values[v], want.rows[i].values[v]);
      }
    }
  }

  baseline.Stop();
  pooled.Stop();

  // Cooperative execution is observable: the pooled node's scans went
  // through the morsel board, the baseline path records no such metric.
  Counter* morsels =
      pooled_metrics.GetCounter("aim_scan_morsels_total", {{"node", "0"}});
  EXPECT_GT(morsels->Value(), 0u);
}

TEST_F(StorageNodeTest, PendingQueriesGetShutdownReplies) {
  StorageNode node(schema_.get(), &dims_.catalog, &rules_,
                   NodeOptions(2, 1));
  LoadEntities(&node, 10);
  ASSERT_TRUE(node.Start().ok());
  node.Stop();
  // Submitting after stop fails cleanly.
  EXPECT_FALSE(node.SubmitQuery({1, 2, 3}, [](std::vector<std::uint8_t>&&) {}));
  EXPECT_FALSE(node.SubmitEvent(std::vector<std::uint8_t>(64, 0), nullptr));
}

}  // namespace
}  // namespace aim
