// Multi-producer torture for MpscQueue: conservation (nothing lost, nothing
// duplicated), per-producer FIFO order, bounded-capacity backpressure, and
// the Close() drain semantics — all under ThreadSanitizer in the stress
// tier.

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "aim/common/mpsc_queue.h"
#include "stress_util.h"

namespace aim {
namespace {

struct Item {
  std::uint32_t producer = 0;
  std::uint64_t seq = 0;
};

// Blocking Push from several producers; the consumer must see every item
// exactly once and each producer's items in submission order.
TEST(MpscQueueStressTest, MultiProducerConservationAndFifo) {
  constexpr std::uint32_t kProducers = 4;
  const std::uint64_t kPerProducer = stress::Scaled(8000);
  MpscQueue<Item> queue(/*capacity=*/64);

  std::vector<std::thread> producers;
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p, kPerProducer] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(queue.Push({p, i}));
      }
    });
  }

  std::vector<std::uint64_t> next_seq(kProducers, 0);
  std::uint64_t received = 0;
  while (received < kProducers * kPerProducer) {
    std::optional<Item> item = queue.Pop();
    ASSERT_TRUE(item.has_value());
    ASSERT_LT(item->producer, kProducers);
    ASSERT_EQ(item->seq, next_seq[item->producer]) << "per-producer FIFO";
    next_seq[item->producer]++;
    received++;
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(queue.size(), 0u);
}

// TryPush against a tiny bound with a slow consumer: successful pushes plus
// rejected pushes must account for every attempt, and the consumer must
// drain exactly the successful ones.
TEST(MpscQueueStressTest, TryPushBackpressureConservation) {
  constexpr std::uint32_t kProducers = 3;
  const std::uint64_t kAttempts = stress::Scaled(20000);
  MpscQueue<Item> queue(/*capacity=*/8);

  std::atomic<std::uint64_t> accepted{0};
  std::atomic<bool> producers_done{false};
  std::vector<std::thread> producers;
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kAttempts; ++i) {
        if (queue.TryPush({p, i})) {
          accepted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  std::uint64_t drained = 0;
  std::thread consumer([&] {
    while (true) {
      if (std::optional<Item> item = queue.TryPop()) {
        drained++;
        continue;
      }
      if (producers_done.load(std::memory_order_acquire) &&
          queue.size() == 0) {
        break;
      }
      std::this_thread::yield();
    }
  });

  for (auto& t : producers) t.join();
  producers_done.store(true, std::memory_order_release);
  consumer.join();

  EXPECT_EQ(drained, accepted.load(std::memory_order_acquire));
}

// Close() racing active producers: every Push that reported success must be
// delivered; every Push after the close must report failure. The consumer
// drains the backlog after close (documented Close semantics).
TEST(MpscQueueStressTest, CloseRaceDrainsBacklog) {
  constexpr std::uint32_t kProducers = 4;
  MpscQueue<Item> queue(/*capacity=*/32);

  std::atomic<std::uint64_t> accepted{0};
  std::vector<std::thread> producers;
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t i = 0;; ++i) {
        if (!queue.Push({p, i})) return;  // closed
        accepted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Let the producers build up steam, then close under load.
  std::uint64_t drained = 0;
  const std::uint64_t close_after = stress::Scaled(5000);
  while (drained < close_after) {
    if (queue.Pop().has_value()) drained++;
  }
  queue.Close();
  for (auto& t : producers) t.join();
  while (queue.Pop().has_value()) drained++;

  EXPECT_EQ(drained, accepted.load(std::memory_order_acquire));
  EXPECT_TRUE(queue.closed());
}

// DrainInto batch consumption (the shared-scan ingestion pattern) against
// concurrent producers.
TEST(MpscQueueStressTest, DrainIntoBatchesConserve) {
  constexpr std::uint32_t kProducers = 2;
  const std::uint64_t kPerProducer = stress::Scaled(10000);
  MpscQueue<Item> queue(/*capacity=*/128);

  std::vector<std::thread> producers;
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p, kPerProducer] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(queue.Push({p, i}));
      }
    });
  }

  std::vector<Item> batch;
  std::vector<std::uint64_t> next_seq(kProducers, 0);
  std::uint64_t received = 0;
  while (received < kProducers * kPerProducer) {
    batch.clear();
    if (queue.DrainInto(&batch) == 0) {
      std::this_thread::yield();
      continue;
    }
    for (const Item& item : batch) {
      ASSERT_EQ(item.seq, next_seq[item.producer]);
      next_seq[item.producer]++;
    }
    received += batch.size();
  }
  for (auto& t : producers) t.join();
}

}  // namespace
}  // namespace aim
