// Loopback TCP stress: many submitter threads drive events, queries and
// record Get/Puts through one TcpClient against a TcpServer + StorageNode,
// while the client's single receiver thread dispatches all replies.
// Validates the transport's exactly-once completion contract under
// contention — every accepted request completes exactly once (reply,
// deadline or disconnect), no completion is lost and none fires twice.

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "aim/esp/event.h"
#include "aim/net/tcp_client.h"
#include "aim/net/tcp_server.h"
#include "aim/server/local_node_channel.h"
#include "aim/server/storage_node.h"
#include "aim/workload/benchmark_schema.h"
#include "aim/workload/cdr_generator.h"
#include "aim/workload/dimension_data.h"
#include "aim/workload/query_workload.h"
#include "stress_util.h"

namespace aim {
namespace {

constexpr std::uint64_t kEntities = 512;

class NetStressTest : public ::testing::Test {
 protected:
  NetStressTest() : schema_(MakeCompactSchema()), dims_(MakeBenchmarkDims()) {}

  void StartCluster() {
    StorageNode::Options opts;
    opts.num_partitions = 2;
    opts.bucket_size = 64;
    opts.max_records_per_partition = 1 << 14;
    opts.scan_poll_micros = 200;
    opts.metrics = &metrics_;
    node_ = std::make_unique<StorageNode>(schema_.get(), &dims_.catalog,
                                          &rules_, opts);
    std::vector<std::uint8_t> row(schema_->record_size(), 0);
    for (EntityId e = 1; e <= kEntities; ++e) {
      std::fill(row.begin(), row.end(), 0);
      PopulateEntityProfile(*schema_, dims_, e, kEntities, row.data());
      ASSERT_TRUE(node_->BulkLoad(e, row.data()).ok());
    }
    ASSERT_TRUE(node_->Start().ok());
    channel_ = std::make_unique<LocalNodeChannel>(node_.get());

    net::TcpServer::Options sopts;
    sopts.metrics = &metrics_;
    server_ = std::make_unique<net::TcpServer>(channel_.get(), sopts);
    ASSERT_TRUE(server_->Start().ok());

    net::TcpClient::Options copts;
    copts.port = server_->port();
    copts.request_timeout_millis = 30'000;
    copts.metrics = &metrics_;
    client_ = std::make_unique<net::TcpClient>(copts);
    ASSERT_TRUE(client_->Connect().ok());
  }

  void TearDown() override {
    if (client_ != nullptr) client_->Close();
    if (server_ != nullptr) server_->Stop();
    if (node_ != nullptr) node_->Stop();
  }

  std::vector<std::uint8_t> Wire(EntityId caller, Timestamp ts) {
    Event event;
    event.caller = caller;
    event.callee = caller + 1;
    event.timestamp = ts;
    event.duration = 30;
    event.cost = 0.5f;
    BinaryWriter w;
    event.Serialize(&w);
    return w.TakeBuffer();
  }

  std::unique_ptr<Schema> schema_;
  BenchmarkDims dims_;
  std::vector<Rule> rules_;
  MetricsRegistry metrics_;
  std::unique_ptr<StorageNode> node_;
  std::unique_ptr<LocalNodeChannel> channel_;
  std::unique_ptr<net::TcpServer> server_;
  std::unique_ptr<net::TcpClient> client_;
};

TEST_F(NetStressTest, MixedTrafficCompletesExactlyOnce) {
  StartCluster();

  const std::uint64_t events_per_thread = stress::Scaled(400);
  const std::uint64_t queries_per_thread = stress::Scaled(40);
  const std::uint64_t records_per_thread = stress::Scaled(100);
  constexpr int kEventThreads = 4;
  constexpr int kQueryThreads = 2;
  constexpr int kRecordThreads = 2;

  std::atomic<std::uint64_t> event_completions{0};
  std::atomic<std::uint64_t> event_failures{0};
  std::atomic<std::uint64_t> query_replies{0};
  std::atomic<std::uint64_t> empty_query_replies{0};
  std::atomic<std::uint64_t> record_replies{0};
  std::atomic<std::uint64_t> record_errors{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kEventThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < events_per_thread; ++i) {
        const EntityId caller = 1 + ((t * events_per_thread + i) % kEntities);
        EventCompletion completion;
        if (!client_->SubmitEvent(
                Wire(caller, static_cast<Timestamp>(i * 10)), &completion)) {
          continue;  // not accepted => completion must never fire
        }
        // The transport guarantees a bounded completion; 60s of slack on a
        // 30s request deadline means a false return is a lost completion,
        // not a slow machine.
        ASSERT_TRUE(completion.WaitFor(60'000));
        if (completion.status.ok()) {
          event_completions.fetch_add(1, std::memory_order_relaxed);
        } else {
          event_failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int t = 0; t < kQueryThreads; ++t) {
    threads.emplace_back([&, t] {
      QueryWorkload workload(schema_.get(), &dims_,
                             static_cast<std::uint64_t>(1000 + t));
      // Q6 needs the full schema's window attributes; the compact schema
      // serves the rest (same set the cluster driver uses).
      constexpr int kQnums[] = {1, 2, 3, 4, 5, 7};
      for (std::uint64_t i = 0; i < queries_per_thread; ++i) {
        BinaryWriter w;
        workload.Make(kQnums[i % 6]).Serialize(&w);
        std::atomic<bool> done{false};
        if (!client_->SubmitQuery(
                w.TakeBuffer(), [&](std::vector<std::uint8_t>&& bytes) {
                  if (bytes.empty()) {
                    empty_query_replies.fetch_add(1,
                                                  std::memory_order_relaxed);
                  } else {
                    query_replies.fetch_add(1, std::memory_order_relaxed);
                  }
                  done.store(true, std::memory_order_release);
                })) {
          continue;
        }
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::seconds(60);
        while (!done.load(std::memory_order_acquire)) {
          ASSERT_LT(std::chrono::steady_clock::now(), deadline)
              << "query reply lost";
          std::this_thread::yield();
        }
      }
    });
  }
  for (int t = 0; t < kRecordThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < records_per_thread; ++i) {
        RecordRequest request;
        request.kind = RecordRequest::Kind::kGet;
        request.entity = 1 + ((t * records_per_thread + i) % kEntities);
        std::atomic<bool> done{false};
        request.reply = [&](Status st, std::vector<std::uint8_t>&& row,
                            Version) {
          if (st.ok() && row.size() == schema_->record_size()) {
            record_replies.fetch_add(1, std::memory_order_relaxed);
          } else {
            record_errors.fetch_add(1, std::memory_order_relaxed);
          }
          done.store(true, std::memory_order_release);
        };
        if (!client_->SubmitRecordRequest(std::move(request))) continue;
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::seconds(60);
        while (!done.load(std::memory_order_acquire)) {
          ASSERT_LT(std::chrono::steady_clock::now(), deadline)
              << "record reply lost";
          std::this_thread::yield();
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();

  // Steady-state loopback: nothing disconnects, so every request must have
  // completed successfully and the node must have processed every event
  // whose completion reported OK.
  EXPECT_EQ(event_failures.load(), 0u);
  EXPECT_EQ(event_completions.load(),
            static_cast<std::uint64_t>(kEventThreads) * events_per_thread);
  EXPECT_EQ(empty_query_replies.load(), 0u);
  EXPECT_EQ(query_replies.load(),
            static_cast<std::uint64_t>(kQueryThreads) * queries_per_thread);
  EXPECT_EQ(record_errors.load(), 0u);
  EXPECT_EQ(record_replies.load(),
            static_cast<std::uint64_t>(kRecordThreads) * records_per_thread);
  EXPECT_GE(node_->stats().events_processed, event_completions.load());
}

TEST_F(NetStressTest, SubmittersRaceDisconnectWithoutLosingCompletions) {
  StartCluster();

  // Submitters race a server that stops and restarts on the same port.
  // Every accepted submit must still complete (ok or failed) — never hang,
  // never double-complete (the per-thread WaitFor + reuse of one stack slot
  // would corrupt on a double fire, which TSan flags).
  const std::uint64_t per_thread = stress::Scaled(300);
  constexpr int kThreads = 4;
  std::atomic<std::uint64_t> completed_ok{0};
  std::atomic<std::uint64_t> completed_failed{0};
  std::atomic<std::uint64_t> rejected{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < per_thread; ++i) {
        const EntityId caller = 1 + ((t * per_thread + i) % kEntities);
        EventCompletion completion;
        if (!client_->SubmitEvent(
                Wire(caller, static_cast<Timestamp>(i * 10)), &completion)) {
          rejected.fetch_add(1, std::memory_order_relaxed);
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          continue;
        }
        ASSERT_TRUE(completion.WaitFor(60'000)) << "completion lost";
        if (completion.status.ok()) {
          completed_ok.fetch_add(1, std::memory_order_relaxed);
        } else {
          completed_failed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // Bounce the server a few times while the submitters run.
  const std::uint16_t port = server_->port();
  for (int bounce = 0; bounce < 3; ++bounce) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    server_->Stop();
    server_.reset();
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    net::TcpServer::Options sopts;
    sopts.port = port;
    sopts.metrics = &metrics_;
    server_ = std::make_unique<net::TcpServer>(channel_.get(), sopts);
    ASSERT_TRUE(server_->Start().ok());
  }
  for (std::thread& th : threads) th.join();

  const std::uint64_t total =
      completed_ok.load() + completed_failed.load() + rejected.load();
  EXPECT_EQ(total, static_cast<std::uint64_t>(kThreads) * per_thread);
  // The bounces are brief; the bulk of the traffic must get through.
  EXPECT_GT(completed_ok.load(), 0u);
}

}  // namespace
}  // namespace aim
