// ParallelSharedScan racing concurrent ingest: worker threads scan the main
// while a live ESP writer puts into the delta and the RTA role interleaves
// switch/merge cycles between scans (the paper's Figure 6 loop). Scan
// results must stay snapshot-consistent — COUNT(*) exact, SUM monotone
// under increment-only updates — and TSan must observe no unsynchronized
// access between scan workers and the writer.

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "aim/rta/parallel_scan.h"
#include "aim/storage/delta_main.h"
#include "stress_util.h"
#include "test_util.h"

namespace aim {
namespace {

using testing_util::MakeTinySchema;

class ParallelScanStressTest : public ::testing::Test {
 protected:
  static constexpr EntityId kEntities = 1500;

  ParallelScanStressTest() : schema_(MakeTinySchema()) {
    DeltaMainStore::Options opts;
    opts.bucket_size = 32;
    opts.max_records = 1u << 16;
    store_ = std::make_unique<DeltaMainStore>(schema_.get(), opts);
    calls_ = schema_->FindAttribute("calls_today");
    entity_ = schema_->FindAttribute("entity_id");

    std::vector<std::uint8_t> row(schema_->record_size(), 0);
    for (EntityId e = 1; e <= kEntities; ++e) {
      RecordView rec(schema_.get(), row.data());
      rec.Set(entity_, Value::UInt64(e));
      rec.Set(calls_, Value::Int32(0));
      AIM_CHECK(store_->BulkInsert(e, row.data()).ok());
    }
  }

  std::vector<Query> SumCountBatch() {
    std::vector<Query> batch;
    batch.push_back(*QueryBuilder(schema_.get())
                         .Select(AggOp::kSum, "calls_today")
                         .SelectCount()
                         .Build());
    return batch;
  }

  std::unique_ptr<Schema> schema_;
  std::unique_ptr<DeltaMainStore> store_;
  std::uint16_t calls_ = 0;
  std::uint16_t entity_ = 0;
};

TEST_F(ParallelScanStressTest, ScansStayConsistentUnderIngest) {
  const int kCycles = static_cast<int>(stress::Scaled(40));
  const std::vector<Query> batch = SumCountBatch();
  store_->set_esp_attached(true);

  std::atomic<bool> esp_stop{false};
  std::atomic<std::uint64_t> increments{0};
  std::thread esp([&] {
    std::vector<std::uint8_t> buf(schema_->record_size());
    Random rng(41);
    while (!esp_stop.load(std::memory_order_acquire)) {
      store_->EspCheckpoint();
      const EntityId e = rng.Uniform(kEntities) + 1;
      Version v = 0;
      ASSERT_TRUE(store_->Get(e, buf.data(), &v).ok());
      RecordView rec(schema_.get(), buf.data());
      rec.Set(calls_, Value::Int32(rec.Get(calls_).i32() + 1));
      ASSERT_TRUE(store_->Put(e, buf.data(), v).ok());
      increments.fetch_add(1, std::memory_order_relaxed);
    }
    store_->set_esp_attached(false);
  });

  // RTA role (this thread): merge then scan, per Figure 6 — the merge and
  // the scan never overlap, but scan workers race the ESP writer.
  double last_sum = 0.0;
  for (int cycle = 0; cycle < kCycles; ++cycle) {
    store_->SwitchDeltas();
    store_->MergeStep();

    ParallelSharedScan::Options opts;
    opts.num_threads = 3;
    opts.chunk_buckets = 2;
    StatusOr<std::vector<PartialResult>> partials =
        ParallelSharedScan::Execute(store_->main(), schema_.get(), nullptr,
                                    batch, opts);
    ASSERT_TRUE(partials.ok());
    QueryResult r =
        FinalizeResult(batch[0], nullptr, std::move((*partials)[0]));
    ASSERT_EQ(r.rows.size(), 1u);
    const double sum = r.rows[0].values[0];
    const double count = r.rows[0].values[1];
    // Snapshot consistency: the scan sees every preloaded record exactly
    // once, and increment-only updates keep the sum monotone across
    // merge boundaries.
    ASSERT_EQ(count, static_cast<double>(kEntities));
    ASSERT_GE(sum, last_sum) << "scan observed a regressing aggregate";
    last_sum = sum;
  }

  esp_stop.store(true, std::memory_order_release);
  esp.join();
  store_->Merge();

  // Final accounting: after the last merge the matrix must hold exactly the
  // number of increments applied.
  std::uint64_t total = 0;
  for (EntityId e = 1; e <= kEntities; ++e) {
    total +=
        static_cast<std::uint64_t>(store_->GetAttribute(e, calls_)->i32());
  }
  EXPECT_EQ(total, increments.load(std::memory_order_acquire));
}

// Inserts alongside updates: COUNT(*) grows monotonically as new entities
// merge in, never shrinking and never exceeding the number of successful
// inserts.
TEST_F(ParallelScanStressTest, CountMonotoneUnderInserts) {
  const int kCycles = static_cast<int>(stress::Scaled(30));
  const std::vector<Query> batch = SumCountBatch();
  store_->set_esp_attached(true);

  // Bound the inserts so the store (max_records = 1<<16, minus preload)
  // cannot fill mid-merge regardless of how fast this thread spins.
  const EntityId kMaxInserts = 50000;
  std::atomic<bool> esp_stop{false};
  std::atomic<std::uint64_t> inserts{0};
  std::thread esp([&] {
    std::vector<std::uint8_t> row(schema_->record_size(), 0);
    EntityId next = kEntities + 1;
    while (!esp_stop.load(std::memory_order_acquire) &&
           next <= kEntities + kMaxInserts) {
      store_->EspCheckpoint();
      RecordView rec(schema_.get(), row.data());
      rec.Set(entity_, Value::UInt64(next));
      ASSERT_TRUE(store_->Insert(next, row.data()).ok());
      inserts.fetch_add(1, std::memory_order_release);
      ++next;
    }
    store_->set_esp_attached(false);
  });

  double last_count = kEntities;
  for (int cycle = 0; cycle < kCycles; ++cycle) {
    store_->SwitchDeltas();
    store_->MergeStep();

    ParallelSharedScan::Options opts;
    opts.num_threads = 2;
    opts.chunk_buckets = 1;
    StatusOr<std::vector<PartialResult>> partials =
        ParallelSharedScan::Execute(store_->main(), schema_.get(), nullptr,
                                    batch, opts);
    ASSERT_TRUE(partials.ok());
    QueryResult r =
        FinalizeResult(batch[0], nullptr, std::move((*partials)[0]));
    const double count = r.rows[0].values[1];
    ASSERT_GE(count, last_count);
    ASSERT_LE(count, static_cast<double>(
                         kEntities + inserts.load(std::memory_order_acquire)));
    last_count = count;
  }

  esp_stop.store(true, std::memory_order_release);
  esp.join();
  store_->Merge();
  EXPECT_EQ(store_->main_records(),
            kEntities + inserts.load(std::memory_order_acquire));
}

}  // namespace
}  // namespace aim
