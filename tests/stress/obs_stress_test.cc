// Stress: many threads hammer one AtomicHistogram and one ShardedCounter
// with no pacing, while a reader thread snapshots concurrently. Validates
// the conservation invariants the lock-free telemetry promises (no lost
// samples, bucket/count agreement at quiescence) and gives TSan real
// concurrent Record/Snapshot interleavings to chew on.

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "aim/obs/histogram.h"
#include "aim/obs/metric.h"
#include "aim/obs/registry.h"
#include "stress_util.h"

namespace aim {
namespace {

TEST(ObsStress, HistogramConservesSamplesUnderContention) {
  const int threads = 8;
  const std::uint64_t per_thread = stress::Scaled(50000);

  AtomicHistogram hist;
  std::atomic<bool> stop_reader{false};
  std::uint64_t snapshots_taken = 0;

  // Concurrent reader: every snapshot must be internally sane — the bucket
  // total can momentarily exceed none of the invariants (counts monotone,
  // bucket sum <= in-flight count window).
  std::thread reader([&] {
    std::uint64_t last_count = 0;
    while (!stop_reader.load(std::memory_order_acquire)) {
      const HistogramSnapshot s = hist.Snapshot();
      ASSERT_GE(s.count, last_count) << "count regressed";
      last_count = s.count;
      ++snapshots_taken;
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < threads; ++t) {
    writers.emplace_back([&, t] {
      // Distinct value ranges per thread so several buckets see traffic.
      const double base = 1 << (t + 1);
      for (std::uint64_t i = 0; i < per_thread; ++i) {
        hist.Record(base + static_cast<double>(i % 7));
      }
    });
  }
  for (auto& w : writers) w.join();
  stop_reader.store(true, std::memory_order_release);
  reader.join();

  const std::uint64_t expected =
      static_cast<std::uint64_t>(threads) * per_thread;
  const HistogramSnapshot s = hist.Snapshot();
  EXPECT_EQ(s.count, expected) << "lost Record()s under contention";
  std::uint64_t bucket_total = 0;
  for (int i = 0; i < HistogramSnapshot::kNumBuckets; ++i) {
    bucket_total += s.buckets[i];
  }
  EXPECT_EQ(bucket_total, expected) << "bucket/count divergence";
  EXPECT_GT(s.min, 0.0);
  EXPECT_GE(s.max, s.min);
  EXPECT_GT(snapshots_taken, 0u);
}

TEST(ObsStress, ShardedCounterConservesUnderContention) {
  const int threads = 8;
  const std::uint64_t per_thread = stress::Scaled(200000);

  ShardedCounter counter;
  std::atomic<bool> stop_reader{false};
  std::thread reader([&] {
    std::uint64_t last = 0;
    while (!stop_reader.load(std::memory_order_acquire)) {
      const std::uint64_t v = counter.Value();
      ASSERT_GE(v, last) << "sharded counter regressed";
      last = v;
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < threads; ++t) {
    writers.emplace_back([&] {
      for (std::uint64_t i = 0; i < per_thread; ++i) counter.Add();
    });
  }
  for (auto& w : writers) w.join();
  stop_reader.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(counter.Value(),
            static_cast<std::uint64_t>(threads) * per_thread);
}

TEST(ObsStress, RegistryConcurrentGetAndRender) {
  // Threads race registration of overlapping series against renders; every
  // thread must get the same pointer for the same name+labels, and renders
  // must never crash on a half-registered catalogue.
  const int threads = 8;
  const int series = 32;
  MetricsRegistry reg;
  std::vector<Counter*> seen(static_cast<std::size_t>(threads * series));

  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < series; ++i) {
        Counter* c = reg.GetCounter("aim_stress_total",
                                    {{"series", std::to_string(i)}});
        c->Add();
        seen[static_cast<std::size_t>(t * series + i)] = c;
        if (i % 8 == 0) {
          (void)reg.RenderPrometheus();
          (void)reg.RenderJson();
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_EQ(reg.NumMetrics(), static_cast<std::size_t>(series));
  for (int i = 0; i < series; ++i) {
    Counter* canonical =
        reg.GetCounter("aim_stress_total", {{"series", std::to_string(i)}});
    EXPECT_EQ(canonical->Value(), static_cast<std::uint64_t>(threads));
    for (int t = 0; t < threads; ++t) {
      EXPECT_EQ(seen[static_cast<std::size_t>(t * series + i)], canonical);
    }
  }
}

TEST(ObsStress, RegistryMixedTypeRegistrationWhileRendering) {
  // A dedicated render thread snapshots continuously while worker threads
  // grow the catalogue with all four metric types under distinct names.
  // Every pointer handed out must stay valid and re-fetchable (the
  // registry's entries-never-move guarantee), and renders must never see
  // a torn entry.
  const int threads = 8;
  const int per_thread = 16;
  MetricsRegistry reg;
  std::atomic<bool> stop_render{false};
  std::uint64_t renders = 0;

  std::thread render([&] {
    while (!stop_render.load(std::memory_order_acquire)) {
      const std::string prom = reg.RenderPrometheus();
      const std::string json = reg.RenderJson();
      ASSERT_FALSE(json.empty());
      (void)prom;
      ++renders;
    }
  });

  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      const std::string who = std::to_string(t);
      for (int i = 0; i < per_thread; ++i) {
        const std::string idx = std::to_string(i);
        Counter* c =
            reg.GetCounter("aim_stress_mixed_total", {{"t", who}, {"i", idx}});
        Gauge* g =
            reg.GetGauge("aim_stress_mixed_gauge", {{"t", who}, {"i", idx}});
        AtomicHistogram* h = reg.GetHistogram("aim_stress_mixed_micros",
                                              {{"t", who}, {"i", idx}});
        ShardedCounter* s = reg.GetShardedCounter("aim_stress_mixed_sharded",
                                                  {{"t", who}, {"i", idx}});
        c->Add();
        g->Set(i);
        h->Record(1.5 * i);
        s->Add();
        // Same name+labels must come back as the same object even while
        // other threads are appending entries.
        ASSERT_EQ(c, reg.GetCounter("aim_stress_mixed_total",
                                    {{"t", who}, {"i", idx}}));
        ASSERT_EQ(s, reg.GetShardedCounter("aim_stress_mixed_sharded",
                                           {{"t", who}, {"i", idx}}));
      }
    });
  }
  for (auto& w : workers) w.join();
  stop_render.store(true, std::memory_order_release);
  render.join();

  EXPECT_EQ(reg.NumMetrics(),
            static_cast<std::size_t>(threads) * per_thread * 4);
  EXPECT_GT(renders, 0u);
  for (int t = 0; t < threads; ++t) {
    for (int i = 0; i < per_thread; ++i) {
      Counter* c = reg.GetCounter(
          "aim_stress_mixed_total",
          {{"t", std::to_string(t)}, {"i", std::to_string(i)}});
      EXPECT_EQ(c->Value(), 1u);
    }
  }
}

}  // namespace
}  // namespace aim
