// Concurrency stress for the delta-swap protocol (paper Algorithms 6/7,
// epoch formulation in delta_main.h). Each test runs a real ESP writer
// thread against an RTA thread doing switch/merge cycles with *no* pacing,
// so any ordering hole in the handshake shows up either as a ThreadSanitizer
// report (delta bytes written while merged) or as a lost update the final
// accounting catches. The boolean two-flag protocol this replaced fails
// RapidSwitchVsWriter: its dangling-acknowledgement window lets a switch
// run against an unparked writer.

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "aim/storage/delta_main.h"
#include "stress_util.h"
#include "test_util.h"

namespace aim {
namespace {

using testing_util::MakeTinySchema;

class DeltaSwapStressTest : public ::testing::Test {
 protected:
  DeltaSwapStressTest() : schema_(MakeTinySchema()) {
    DeltaMainStore::Options opts;
    opts.bucket_size = 16;
    opts.max_records = 1u << 16;
    store_ = std::make_unique<DeltaMainStore>(schema_.get(), opts);
    calls_ = schema_->FindAttribute("calls_today");
  }

  void Preload(EntityId entities) {
    std::vector<std::uint8_t> row(schema_->record_size(), 0);
    for (EntityId e = 1; e <= entities; ++e) {
      ASSERT_TRUE(store_->BulkInsert(e, row.data()).ok());
    }
  }

  std::unique_ptr<Schema> schema_;
  std::unique_ptr<DeltaMainStore> store_;
  std::uint16_t calls_ = 0;
};

// The core torture: back-to-back SwitchDeltas/MergeStep cycles with zero
// delay between rounds, racing a writer that checkpoints before every
// read-modify-write. Validates total increment conservation at the end.
TEST_F(DeltaSwapStressTest, RapidSwitchVsWriter) {
  constexpr EntityId kEntities = 48;
  const std::uint64_t kIncrements = stress::Scaled(20000);
  Preload(kEntities);
  store_->set_esp_attached(true);

  std::atomic<bool> esp_done{false};
  std::thread esp([&] {
    std::vector<std::uint8_t> buf(schema_->record_size());
    Random rng(7);
    for (std::uint64_t i = 0; i < kIncrements; ++i) {
      store_->EspCheckpoint();
      const EntityId e = rng.Uniform(kEntities) + 1;
      Version v = 0;
      ASSERT_TRUE(store_->Get(e, buf.data(), &v).ok());
      RecordView rec(schema_.get(), buf.data());
      rec.Set(calls_, Value::Int32(rec.Get(calls_).i32() + 1));
      Status put = store_->Put(e, buf.data(), v);
      ASSERT_TRUE(put.ok()) << put.ToString();
    }
    store_->set_esp_attached(false);
    esp_done.store(true, std::memory_order_release);
  });

  std::thread rta([&] {
    while (!esp_done.load(std::memory_order_acquire)) {
      store_->SwitchDeltas();  // no pacing: maximize handshake pressure
      store_->MergeStep();
    }
  });

  esp.join();
  rta.join();
  store_->Merge();

  std::uint64_t total = 0;
  for (EntityId e = 1; e <= kEntities; ++e) {
    total +=
        static_cast<std::uint64_t>(store_->GetAttribute(e, calls_)->i32());
  }
  EXPECT_EQ(total, kIncrements);
  EXPECT_GT(store_->merge_epoch(), 0u);
}

// New entities flow through the delta while switches race the inserts;
// every insert must survive exactly once.
TEST_F(DeltaSwapStressTest, InsertsSurviveSwitchRaces) {
  const EntityId kInserts = static_cast<EntityId>(stress::Scaled(8000));
  store_->set_esp_attached(true);

  std::atomic<bool> esp_done{false};
  std::thread esp([&] {
    std::vector<std::uint8_t> row(schema_->record_size(), 0);
    for (EntityId e = 1; e <= kInserts; ++e) {
      store_->EspCheckpoint();
      RecordView rec(schema_.get(), row.data());
      rec.Set(calls_, Value::Int32(static_cast<std::int32_t>(e % 1000)));
      Status st = store_->Insert(e, row.data());
      ASSERT_TRUE(st.ok()) << st.ToString();
    }
    store_->set_esp_attached(false);
    esp_done.store(true, std::memory_order_release);
  });

  std::thread rta([&] {
    while (!esp_done.load(std::memory_order_acquire)) {
      store_->SwitchDeltas();
      store_->MergeStep();
    }
  });

  esp.join();
  rta.join();
  store_->Merge();

  EXPECT_EQ(store_->main_records(), kInserts);
  for (EntityId e = 1; e <= kInserts; e += 97) {  // spot-check values
    ASSERT_EQ(store_->GetAttribute(e, calls_)->i32(),
              static_cast<std::int32_t>(e % 1000));
  }
}

// The ESP thread must never observe a value older than one it already saw:
// Algorithm 3's read path (active delta -> frozen delta -> main) has to
// stay monotone across switch and merge boundaries.
TEST_F(DeltaSwapStressTest, ReadsNeverTravelBackInTime) {
  constexpr EntityId kEntities = 16;
  const std::uint64_t kIncrements = stress::Scaled(12000);
  Preload(kEntities);
  store_->set_esp_attached(true);

  std::atomic<bool> esp_done{false};
  std::thread esp([&] {
    std::vector<std::uint8_t> buf(schema_->record_size());
    std::vector<std::int32_t> last_seen(kEntities + 1, 0);
    Random rng(23);
    for (std::uint64_t i = 0; i < kIncrements; ++i) {
      store_->EspCheckpoint();
      const EntityId e = rng.Uniform(kEntities) + 1;
      Version v = 0;
      ASSERT_TRUE(store_->Get(e, buf.data(), &v).ok());
      RecordView rec(schema_.get(), buf.data());
      const std::int32_t seen = rec.Get(calls_).i32();
      // Single writer: the read must return exactly the last value written.
      ASSERT_EQ(seen, last_seen[e]) << "stale read for entity " << e;
      rec.Set(calls_, Value::Int32(seen + 1));
      ASSERT_TRUE(store_->Put(e, buf.data(), v).ok());
      last_seen[e] = seen + 1;
    }
    store_->set_esp_attached(false);
    esp_done.store(true, std::memory_order_release);
  });

  std::thread rta([&] {
    while (!esp_done.load(std::memory_order_acquire)) {
      store_->SwitchDeltas();
      store_->MergeStep();
    }
  });

  esp.join();
  rta.join();
}

// Attach/detach churn, modelled on storage-node start/stop: each round
// attaches the ESP writer *before* the RTA thread starts switching (the
// protocol's contract), then detaches while the RTA side is still mid-
// cycle. Exercises both the detached fast path and the detach-while-
// waiting escape in SwitchDeltas.
TEST_F(DeltaSwapStressTest, AttachDetachChurn) {
  constexpr EntityId kEntities = 8;
  const int kRounds = static_cast<int>(stress::Scaled(60));
  Preload(kEntities);

  std::uint64_t increments = 0;
  std::vector<std::uint8_t> buf(schema_->record_size());
  for (int round = 0; round < kRounds; ++round) {
    store_->set_esp_attached(true);
    std::atomic<bool> rta_stop{false};
    std::thread esp([&] {
      Random rng(round);
      for (int i = 0; i < 100; ++i) {
        store_->EspCheckpoint();
        const EntityId e = rng.Uniform(kEntities) + 1;
        Version v = 0;
        ASSERT_TRUE(store_->Get(e, buf.data(), &v).ok());
        RecordView rec(schema_.get(), buf.data());
        rec.Set(calls_, Value::Int32(rec.Get(calls_).i32() + 1));
        ASSERT_TRUE(store_->Put(e, buf.data(), v).ok());
      }
      store_->set_esp_attached(false);  // detach races the RTA's wait loop
    });
    std::thread rta([&] {
      while (!rta_stop.load(std::memory_order_acquire)) {
        store_->SwitchDeltas();
        store_->MergeStep();
      }
    });
    esp.join();
    rta_stop.store(true, std::memory_order_release);
    rta.join();
    increments += 100;
  }

  store_->Merge();

  std::uint64_t total = 0;
  for (EntityId e = 1; e <= kEntities; ++e) {
    total +=
        static_cast<std::uint64_t>(store_->GetAttribute(e, calls_)->i32());
  }
  EXPECT_EQ(total, increments);
}

}  // namespace
}  // namespace aim
