// End-to-end ingest-while-query stress: a full StorageNode (ESP service
// threads + RTA scan threads + coordinator) under concurrent multi-producer
// event submission and a live query stream, plus the same workload driven
// through the separate-ESP-tier deployment (EspTierNode, paper §4.2 option
// a). Every submitted event must be processed exactly once, and aggregates
// observed mid-flight must be monotone.

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "aim/server/esp_tier.h"
#include "aim/server/storage_node.h"
#include "aim/workload/benchmark_schema.h"
#include "aim/workload/cdr_generator.h"
#include "aim/workload/dimension_data.h"
#include "stress_util.h"
#include "test_util.h"

namespace aim {
namespace {

class StorageNodeStressTest : public ::testing::Test {
 protected:
  StorageNodeStressTest()
      : schema_(MakeCompactSchema()), dims_(MakeBenchmarkDims()) {}

  StorageNode::Options NodeOptions(std::uint32_t partitions,
                                   std::uint32_t esp_threads) {
    StorageNode::Options opts;
    opts.node_id = 0;
    opts.num_partitions = partitions;
    opts.num_esp_threads = esp_threads;
    opts.bucket_size = 64;
    opts.max_records_per_partition = 1 << 14;
    opts.scan_poll_micros = 200;
    return opts;
  }

  void LoadEntities(StorageNode* node, std::uint64_t n) {
    std::vector<std::uint8_t> row(schema_->record_size(), 0);
    for (EntityId e = 1; e <= n; ++e) {
      std::fill(row.begin(), row.end(), 0);
      PopulateEntityProfile(*schema_, dims_, e, n, row.data());
      ASSERT_TRUE(node->BulkLoad(e, row.data()).ok());
    }
  }

  static std::vector<std::uint8_t> Wire(const Event& e) {
    BinaryWriter w;
    e.Serialize(&w);
    return w.TakeBuffer();
  }

  QueryResult RunQuery(StorageNode* node, const Query& q) {
    BinaryWriter w;
    q.Serialize(&w);
    MpscQueue<std::vector<std::uint8_t>> replies;
    EXPECT_TRUE(node->SubmitQuery(w.TakeBuffer(),
                                  [&replies](std::vector<std::uint8_t>&& b) {
                                    replies.Push(std::move(b));
                                  }));
    std::optional<std::vector<std::uint8_t>> bytes = replies.Pop();
    QueryResult result;
    if (!bytes.has_value() || bytes->empty()) {
      result.status = Status::Shutdown();
      return result;
    }
    BinaryReader r(*bytes);
    StatusOr<PartialResult> partial = PartialResult::Deserialize(&r);
    EXPECT_TRUE(partial.ok());
    return FinalizeResult(q, &dims_.catalog, std::move(partial).value());
  }

  /// Polls the SUM(number_of_calls_today) aggregate until it reaches
  /// `expected` or the attempt budget runs out; returns the last value.
  double AwaitSum(StorageNode* node, double expected) {
    Query q = *QueryBuilder(schema_.get())
                   .Select(AggOp::kSum, "number_of_calls_today")
                   .Build();
    double seen = 0;
    for (int attempt = 0; attempt < 2000; ++attempt) {
      const QueryResult r = RunQuery(node, q);
      EXPECT_TRUE(r.status.ok());
      seen = r.rows[0].values[0];
      if (seen == expected) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return seen;
  }

  std::unique_ptr<Schema> schema_;
  BenchmarkDims dims_;
  std::vector<Rule> rules_;
};

// Co-located deployment (paper §4.2 option b): several producers submit
// events while a query thread streams SUM/COUNT aggregates. The query
// stream must stay monotone (increment-only workload) and the final tally
// must account for every submitted event exactly once.
TEST_F(StorageNodeStressTest, IngestWhileQuery) {
  constexpr std::uint64_t kEntities = 64;
  constexpr std::uint32_t kProducers = 3;
  const std::uint64_t kPerProducer = stress::Scaled(2000);

  StorageNode node(schema_.get(), &dims_.catalog, &rules_, NodeOptions(2, 1));
  LoadEntities(&node, kEntities);
  ASSERT_TRUE(node.Start().ok());

  std::atomic<std::uint64_t> submitted{0};
  std::vector<std::thread> producers;
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      CdrGenerator::Options gopts;
      gopts.num_entities = kEntities;
      gopts.seed = 100 + p;
      CdrGenerator gen(gopts);
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(node.SubmitEvent(Wire(gen.Next(1000 + i)), nullptr));
        submitted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Query stream racing the ingest: SUM(number_of_calls_today) counts one
  // per processed event, so it must be monotone and bounded by submissions.
  std::atomic<bool> stop_queries{false};
  std::thread querier([&] {
    Query q = *QueryBuilder(schema_.get())
                   .Select(AggOp::kSum, "number_of_calls_today")
                   .Build();
    double last = 0;
    while (!stop_queries.load(std::memory_order_acquire)) {
      const QueryResult r = RunQuery(&node, q);
      ASSERT_TRUE(r.status.ok());
      const double sum = r.rows[0].values[0];
      ASSERT_GE(sum, last) << "aggregate regressed mid-ingest";
      ASSERT_LE(sum, static_cast<double>(
                         submitted.load(std::memory_order_acquire)));
      last = sum;
    }
  });

  for (auto& t : producers) t.join();
  const std::uint64_t total = submitted.load(std::memory_order_acquire);
  EXPECT_EQ(AwaitSum(&node, static_cast<double>(total)),
            static_cast<double>(total));
  stop_queries.store(true, std::memory_order_release);
  querier.join();
  node.Stop();

  EXPECT_EQ(node.stats().events_processed, total);
  EXPECT_GT(node.stats().scan_cycles, 0u);
}

// Same workload through the separate ESP tier (option a): events enter
// EspTierNode workers, which drive the storage node via its record-level
// Get/Put service. Conservation must hold across the extra hop, and the
// tier must report record traffic.
TEST_F(StorageNodeStressTest, EspTierIngestWhileQuery) {
  constexpr std::uint64_t kEntities = 64;
  constexpr std::uint32_t kProducers = 2;
  const std::uint64_t kPerProducer = stress::Scaled(1500);

  StorageNode node(schema_.get(), &dims_.catalog, &rules_, NodeOptions(2, 1));
  LoadEntities(&node, kEntities);
  ASSERT_TRUE(node.Start().ok());

  EspTierNode::Options topts;
  topts.num_threads = 2;
  EspTierNode tier(schema_.get(), &node, &rules_, topts);
  ASSERT_TRUE(tier.Start().ok());

  std::atomic<std::uint64_t> submitted{0};
  std::vector<std::thread> producers;
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      CdrGenerator::Options gopts;
      gopts.num_entities = kEntities;
      gopts.seed = 300 + p;
      CdrGenerator gen(gopts);
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        EventCompletion done;
        ASSERT_TRUE(tier.SubmitEvent(Wire(gen.Next(1000 + i)), &done));
        done.Wait();
        ASSERT_TRUE(done.status.ok()) << done.status.ToString();
        submitted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::atomic<bool> stop_queries{false};
  std::thread querier([&] {
    Query q = *QueryBuilder(schema_.get())
                   .Select(AggOp::kSum, "number_of_calls_today")
                   .Build();
    double last = 0;
    while (!stop_queries.load(std::memory_order_acquire)) {
      const QueryResult r = RunQuery(&node, q);
      ASSERT_TRUE(r.status.ok());
      const double sum = r.rows[0].values[0];
      ASSERT_GE(sum, last);
      last = sum;
    }
  });

  for (auto& t : producers) t.join();
  const std::uint64_t total = submitted.load(std::memory_order_acquire);
  EXPECT_EQ(AwaitSum(&node, static_cast<double>(total)),
            static_cast<double>(total));
  stop_queries.store(true, std::memory_order_release);
  querier.join();
  tier.Stop();
  node.Stop();

  EXPECT_EQ(tier.stats().events_processed, total);
  EXPECT_GT(tier.stats().record_bytes_shipped, 0u);
}

}  // namespace
}  // namespace aim
