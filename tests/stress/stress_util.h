#ifndef AIM_TESTS_STRESS_STRESS_UTIL_H_
#define AIM_TESTS_STRESS_STRESS_UTIL_H_

#include <cstdint>
#include <cstdlib>

namespace aim {
namespace stress {

/// Iteration multiplier for the stress tier. Defaults to 1 so the tier
/// stays quick under plain `ctest`; the CI TSan job (and anyone hunting a
/// rare interleaving locally) raises it via AIM_STRESS_SCALE. The tests are
/// designed so that *correctness* never depends on the scale — a larger
/// scale only buys more interleavings.
inline std::uint64_t Scale() {
  const char* s = std::getenv("AIM_STRESS_SCALE");
  if (s == nullptr) return 1;
  const long v = std::atol(s);
  return v > 0 ? static_cast<std::uint64_t>(v) : 1;
}

inline std::uint64_t Scaled(std::uint64_t base) { return base * Scale(); }

}  // namespace stress
}  // namespace aim

#endif  // AIM_TESTS_STRESS_STRESS_UTIL_H_
