// ScanPool under contention: several RTA coordinators submit morsel jobs to
// one shared pool at once (the node-wide deployment shape), and a pool-driven
// scan races a live ESP writer through the delta/main switch-merge cycle.
// Every job must complete exactly (coordinator + worker morsel counts add
// up), every result must match the per-partition ground truth, and TSan must
// observe no unsynchronized access on the board, the tickets, or the
// executor-local scratch contexts.

#include <atomic>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "aim/rta/scan_pool.h"
#include "aim/storage/delta_main.h"
#include "stress_util.h"
#include "test_util.h"

namespace aim {
namespace {

using testing_util::MakeTinySchema;

class ScanPoolStressTest : public ::testing::Test {
 protected:
  static constexpr EntityId kEntities = 1200;

  ScanPoolStressTest() : schema_(MakeTinySchema()) {
    calls_ = schema_->FindAttribute("calls_today");
    entity_ = schema_->FindAttribute("entity_id");
  }

  // A standalone partition whose calls_today values are all `fill`, so each
  // coordinator can verify its own scans against a closed-form answer.
  std::unique_ptr<ColumnMap> MakePartition(std::int32_t fill) {
    auto map = std::make_unique<ColumnMap>(schema_.get(), /*bucket_size=*/32,
                                           kEntities);
    std::vector<std::uint8_t> row(schema_->record_size(), 0);
    for (EntityId e = 1; e <= kEntities; ++e) {
      RecordView rec(schema_.get(), row.data());
      rec.Set(entity_, Value::UInt64(e));
      rec.Set(calls_, Value::Int32(fill));
      AIM_CHECK(map->Insert(e, row.data(), 1).ok());
    }
    return map;
  }

  std::vector<Query> SumCountBatch() {
    std::vector<Query> batch;
    batch.push_back(*QueryBuilder(schema_.get())
                         .Select(AggOp::kSum, "calls_today")
                         .SelectCount()
                         .Build());
    return batch;
  }

  std::vector<CompiledQuery> CompileBatch(const std::vector<Query>& batch) {
    std::vector<CompiledQuery> compiled;
    for (const Query& q : batch) {
      compiled.push_back(*CompiledQuery::Compile(q, schema_.get(), nullptr));
    }
    return compiled;
  }

  std::unique_ptr<Schema> schema_;
  std::uint16_t calls_ = 0;
  std::uint16_t entity_ = 0;
};

// Many coordinators, one pool: each thread owns a partition with a distinct
// fill value and hammers ScanPartition; any cross-job mixup on the board
// (a morsel charged to the wrong ticket, a context reused across jobs)
// corrupts a closed-form aggregate immediately.
TEST_F(ScanPoolStressTest, ConcurrentCoordinatorsShareOnePool) {
  const int kCoordinators = 4;
  const int kRounds = static_cast<int>(stress::Scaled(60));

  ScanPool::Options popts;
  popts.num_threads = 3;
  ScanPool pool(popts);

  std::vector<std::thread> coordinators;
  coordinators.reserve(kCoordinators);
  for (int c = 0; c < kCoordinators; ++c) {
    coordinators.emplace_back([&, c] {
      const std::int32_t fill = c + 1;
      std::unique_ptr<ColumnMap> map = MakePartition(fill);
      const std::vector<Query> batch = SumCountBatch();
      for (int round = 0; round < kRounds; ++round) {
        const std::vector<CompiledQuery> prototype = CompileBatch(batch);
        ScanPool::ScanOptions sopts;
        // Vary morsel size and participation across coordinators so the
        // board sees mixed job shapes in flight simultaneously.
        sopts.morsel_buckets = (c % 2 == 0) ? 1 : 4;
        sopts.coordinator_participates = (c % 2 == 0);
        std::vector<PartialResult> results;
        const ScanPool::ScanStats stats =
            pool.ScanPartition(*map, prototype, sopts, &results);
        ASSERT_EQ(stats.executed_by_coordinator + stats.executed_by_workers,
                  stats.morsels)
            << "coordinator " << c << " round " << round;
        if (!sopts.coordinator_participates) {
          ASSERT_EQ(stats.executed_by_coordinator, 0u);
        }
        QueryResult r =
            FinalizeResult(batch[0], nullptr, std::move(results[0]));
        ASSERT_EQ(r.rows.size(), 1u);
        ASSERT_EQ(r.rows[0].values[1], static_cast<double>(kEntities))
            << "coordinator " << c << " round " << round;
        ASSERT_EQ(r.rows[0].values[0],
                  static_cast<double>(fill) * kEntities)
            << "coordinator " << c << " round " << round;
      }
    });
  }
  for (std::thread& t : coordinators) t.join();

  // Lifetime accounting stays coherent across all concurrent jobs.
  EXPECT_GT(pool.morsels(), 0u);
}

// Pool-driven scan racing a live ESP writer (the storage-node shape): the
// coordinator switches and merges deltas between scans while the writer
// keeps incrementing through the active delta. Snapshot consistency must
// hold — COUNT(*) exact, SUM monotone — with scan morsels executing on
// pool workers instead of the coordinator's own SharedScan loop.
TEST_F(ScanPoolStressTest, PoolScanStaysConsistentUnderIngest) {
  const int kCycles = static_cast<int>(stress::Scaled(40));

  DeltaMainStore::Options sopts;
  sopts.bucket_size = 32;
  sopts.max_records = 1u << 16;
  DeltaMainStore store(schema_.get(), sopts);
  std::vector<std::uint8_t> row(schema_->record_size(), 0);
  for (EntityId e = 1; e <= kEntities; ++e) {
    RecordView rec(schema_.get(), row.data());
    rec.Set(entity_, Value::UInt64(e));
    rec.Set(calls_, Value::Int32(0));
    ASSERT_TRUE(store.BulkInsert(e, row.data()).ok());
  }

  ScanPool::Options popts;
  popts.num_threads = 2;
  ScanPool pool(popts);
  const std::vector<Query> batch = SumCountBatch();
  store.set_esp_attached(true);

  std::atomic<bool> esp_stop{false};
  std::atomic<std::uint64_t> increments{0};
  std::thread esp([&] {
    std::vector<std::uint8_t> buf(schema_->record_size());
    Random rng(43);
    while (!esp_stop.load(std::memory_order_acquire)) {
      store.EspCheckpoint();
      const EntityId e = rng.Uniform(kEntities) + 1;
      Version v = 0;
      ASSERT_TRUE(store.Get(e, buf.data(), &v).ok());
      RecordView rec(schema_.get(), buf.data());
      rec.Set(calls_, Value::Int32(rec.Get(calls_).i32() + 1));
      ASSERT_TRUE(store.Put(e, buf.data(), v).ok());
      increments.fetch_add(1, std::memory_order_relaxed);
    }
    store.set_esp_attached(false);
  });

  double last_sum = 0.0;
  for (int cycle = 0; cycle < kCycles; ++cycle) {
    store.SwitchDeltas();
    store.MergeStep();

    const std::vector<CompiledQuery> prototype = CompileBatch(batch);
    ScanPool::ScanOptions scan_opts;
    scan_opts.morsel_buckets = 2;
    std::vector<PartialResult> results;
    pool.ScanPartition(store.main(), prototype, scan_opts, &results);
    QueryResult r = FinalizeResult(batch[0], nullptr, std::move(results[0]));
    ASSERT_EQ(r.rows.size(), 1u);
    const double sum = r.rows[0].values[0];
    const double count = r.rows[0].values[1];
    ASSERT_EQ(count, static_cast<double>(kEntities));
    ASSERT_GE(sum, last_sum) << "pool scan observed a regressing aggregate";
    last_sum = sum;
  }

  esp_stop.store(true, std::memory_order_release);
  esp.join();
  store.Merge();

  std::uint64_t total = 0;
  for (EntityId e = 1; e <= kEntities; ++e) {
    total += static_cast<std::uint64_t>(store.GetAttribute(e, calls_)->i32());
  }
  EXPECT_EQ(total, increments.load(std::memory_order_acquire));
}

}  // namespace
}  // namespace aim
