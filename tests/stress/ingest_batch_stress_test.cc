// Drain-batched ingest stress: multiple producers pump SubmitEventBatch
// into a running StorageNode while queries stream, so the ESP loop's
// DrainInto batching, the router's same-thread run splitting and the RTA
// scan race under TSan. A second test floods the separate ESP tier whose
// workers drain up to max_event_batch events per wakeup. Both assert exact
// conservation: every accepted event processed exactly once.

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "aim/server/esp_tier.h"
#include "aim/server/storage_node.h"
#include "aim/workload/benchmark_schema.h"
#include "aim/workload/cdr_generator.h"
#include "aim/workload/dimension_data.h"
#include "stress_util.h"
#include "test_util.h"

namespace aim {
namespace {

class IngestBatchStressTest : public ::testing::Test {
 protected:
  IngestBatchStressTest()
      : schema_(MakeCompactSchema()), dims_(MakeBenchmarkDims()) {}

  StorageNode::Options NodeOptions(std::uint32_t partitions,
                                   std::uint32_t esp_threads) {
    StorageNode::Options opts;
    opts.node_id = 0;
    opts.num_partitions = partitions;
    opts.num_esp_threads = esp_threads;
    opts.bucket_size = 64;
    opts.max_records_per_partition = 1 << 14;
    opts.scan_poll_micros = 200;
    opts.max_event_batch = 32;
    opts.esp.prefetch_distance = 8;
    return opts;
  }

  void LoadEntities(StorageNode* node, std::uint64_t n) {
    std::vector<std::uint8_t> row(schema_->record_size(), 0);
    for (EntityId e = 1; e <= n; ++e) {
      std::fill(row.begin(), row.end(), 0);
      PopulateEntityProfile(*schema_, dims_, e, n, row.data());
      ASSERT_TRUE(node->BulkLoad(e, row.data()).ok());
    }
  }

  static std::vector<std::uint8_t> Wire(const Event& e) {
    BinaryWriter w;
    e.Serialize(&w);
    return w.TakeBuffer();
  }

  QueryResult RunQuery(StorageNode* node, const Query& q) {
    BinaryWriter w;
    q.Serialize(&w);
    MpscQueue<std::vector<std::uint8_t>> replies;
    EXPECT_TRUE(node->SubmitQuery(w.TakeBuffer(),
                                  [&replies](std::vector<std::uint8_t>&& b) {
                                    replies.Push(std::move(b));
                                  }));
    std::optional<std::vector<std::uint8_t>> bytes = replies.Pop();
    QueryResult result;
    if (!bytes.has_value() || bytes->empty()) {
      result.status = Status::Shutdown();
      return result;
    }
    BinaryReader r(*bytes);
    StatusOr<PartialResult> partial = PartialResult::Deserialize(&r);
    EXPECT_TRUE(partial.ok());
    return FinalizeResult(q, &dims_.catalog, std::move(partial).value());
  }

  double AwaitSum(StorageNode* node, double expected) {
    Query q = *QueryBuilder(schema_.get())
                   .Select(AggOp::kSum, "number_of_calls_today")
                   .Build();
    double seen = 0;
    for (int attempt = 0; attempt < 2000; ++attempt) {
      const QueryResult r = RunQuery(node, q);
      EXPECT_TRUE(r.status.ok());
      seen = r.rows[0].values[0];
      if (seen == expected) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return seen;
  }

  std::unique_ptr<Schema> schema_;
  BenchmarkDims dims_;
  std::vector<Rule> rules_;
};

// Multi-producer batch submission against two ESP threads: each submitted
// batch mixes entities from both partitions, so SubmitEventBatch splits it
// into same-thread runs pushed with PushAll while the ESP loops drain with
// DrainInto and a query stream scans concurrently. Every few batches a
// producer attaches a completion to the last event and waits on it (the
// FIFO drain proves that thread's prefix processed), which also paces the
// flood so the unbounded queues stay small.
TEST_F(IngestBatchStressTest, BatchedIngestWhileQuery) {
  constexpr std::uint64_t kEntities = 64;
  constexpr std::uint32_t kProducers = 3;
  constexpr std::uint64_t kBatchSize = 24;
  const std::uint64_t kBatchesPerProducer = stress::Scaled(120);

  StorageNode node(schema_.get(), &dims_.catalog, &rules_, NodeOptions(2, 2));
  LoadEntities(&node, kEntities);
  ASSERT_TRUE(node.Start().ok());

  std::atomic<std::uint64_t> submitted{0};
  std::vector<std::thread> producers;
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      CdrGenerator::Options gopts;
      gopts.num_entities = kEntities;
      gopts.seed = 500 + p;
      CdrGenerator gen(gopts);
      Timestamp ts = 1000;
      for (std::uint64_t b = 0; b < kBatchesPerProducer; ++b) {
        std::vector<EventMessage> batch;
        for (std::uint64_t i = 0; i < kBatchSize; ++i) {
          EventMessage msg;
          msg.bytes = Wire(gen.Next(ts += 10));
          batch.push_back(std::move(msg));
        }
        EventCompletion pace;
        const bool paced = b % 4 == 3;
        if (paced) batch.back().completion = &pace;
        ASSERT_EQ(node.SubmitEventBatch(std::move(batch)), kBatchSize);
        submitted.fetch_add(kBatchSize, std::memory_order_relaxed);
        if (paced) {
          pace.Wait();
          ASSERT_TRUE(pace.status.ok()) << pace.status.ToString();
        }
      }
    });
  }

  std::atomic<bool> stop_queries{false};
  std::thread querier([&] {
    Query q = *QueryBuilder(schema_.get())
                   .Select(AggOp::kSum, "number_of_calls_today")
                   .Build();
    double last = 0;
    while (!stop_queries.load(std::memory_order_acquire)) {
      const QueryResult r = RunQuery(&node, q);
      ASSERT_TRUE(r.status.ok());
      const double sum = r.rows[0].values[0];
      ASSERT_GE(sum, last) << "aggregate regressed mid-ingest";
      ASSERT_LE(sum, static_cast<double>(
                         submitted.load(std::memory_order_acquire)));
      last = sum;
    }
  });

  for (auto& t : producers) t.join();
  const std::uint64_t total = submitted.load(std::memory_order_acquire);
  EXPECT_EQ(AwaitSum(&node, static_cast<double>(total)),
            static_cast<double>(total));
  stop_queries.store(true, std::memory_order_release);
  querier.join();
  node.Stop();

  EXPECT_EQ(node.stats().events_processed, total);
  EXPECT_EQ(node.stats().txn_conflicts, 0u);
}

// The separate-tier deployment under a fire-and-forget flood: tier workers
// drain up to max_event_batch queued events per wakeup and drive the node
// through its record Get/Put service while producers keep the queue full.
// Light pacing (a completion every 64 events per producer) bounds memory
// without ever leaving the drain loop idle.
TEST_F(IngestBatchStressTest, EspTierDrainBatchedFlood) {
  constexpr std::uint64_t kEntities = 64;
  constexpr std::uint32_t kProducers = 2;
  const std::uint64_t kPerProducer = stress::Scaled(1500);

  StorageNode node(schema_.get(), &dims_.catalog, &rules_, NodeOptions(2, 1));
  LoadEntities(&node, kEntities);
  ASSERT_TRUE(node.Start().ok());

  EspTierNode::Options topts;
  topts.num_threads = 2;
  topts.max_event_batch = 16;
  EspTierNode tier(schema_.get(), &node, &rules_, topts);
  ASSERT_TRUE(tier.Start().ok());

  std::atomic<std::uint64_t> submitted{0};
  std::vector<std::thread> producers;
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      CdrGenerator::Options gopts;
      gopts.num_entities = kEntities;
      gopts.seed = 700 + p;
      CdrGenerator gen(gopts);
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const bool paced = i % 64 == 63;
        EventCompletion pace;
        ASSERT_TRUE(tier.SubmitEvent(Wire(gen.Next(1000 + i)),
                                     paced ? &pace : nullptr));
        submitted.fetch_add(1, std::memory_order_relaxed);
        if (paced) {
          pace.Wait();
          ASSERT_TRUE(pace.status.ok()) << pace.status.ToString();
        }
      }
    });
  }

  for (auto& t : producers) t.join();
  const std::uint64_t total = submitted.load(std::memory_order_acquire);
  EXPECT_EQ(AwaitSum(&node, static_cast<double>(total)),
            static_cast<double>(total));
  tier.Stop();
  node.Stop();

  EXPECT_EQ(tier.stats().events_processed, total);
  EXPECT_GT(tier.stats().record_bytes_shipped, 0u);
}

}  // namespace
}  // namespace aim
