// Stress for DenseMap's single-writer / multi-reader contract: growth under
// load with concurrent probes, Clear() racing readers, and retired-table
// reclamation at quiescence. Readers validate values against a published
// watermark, so a torn or lost publication fails the test even without
// TSan; with TSan, any unsynchronized slot access is reported directly.

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "aim/storage/dense_map.h"
#include "stress_util.h"

namespace aim {
namespace {

std::uint32_t ExpectedValue(std::uint64_t key) {
  return static_cast<std::uint32_t>(key * 2654435761u);
}

// Writer inserts an increasing key range (forcing several growth/retire
// cycles from the small initial capacity); readers must find every key at
// or below the watermark with its exact value.
TEST(DenseMapStressTest, ReadersVsWriterGrowth) {
  const std::uint64_t kKeys = stress::Scaled(30000);
  DenseMap map(/*initial_capacity=*/64);

  std::atomic<std::uint64_t> watermark{0};
  std::atomic<bool> done{false};

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      std::uint64_t x = 88172645463325252ull + r;
      while (!done.load(std::memory_order_acquire)) {
        const std::uint64_t w = watermark.load(std::memory_order_acquire);
        if (w == 0) continue;
        // xorshift64 — cheap thread-local PRNG.
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        const std::uint64_t key = x % w + 1;
        const std::uint32_t got = map.Find(key);
        ASSERT_EQ(got, ExpectedValue(key)) << "key " << key;
      }
    });
  }

  for (std::uint64_t k = 1; k <= kKeys; ++k) {
    map.Upsert(k, ExpectedValue(k));
    watermark.store(k, std::memory_order_release);
  }
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  // Growth from capacity 64 to >= kKeys must have retired tables; with the
  // readers quiesced we may reclaim them.
  EXPECT_GT(map.retired_tables(), 0u);
  map.ReclaimRetired();
  EXPECT_EQ(map.retired_tables(), 0u);
  for (std::uint64_t k = 1; k <= kKeys; k += 101) {
    ASSERT_EQ(map.Find(k), ExpectedValue(k));
  }
}

// Clear() racing readers: a reader may see a key's value or kNotFound, but
// never a value the key was not mapped to.
TEST(DenseMapStressTest, ClearVsReadersNeverFabricates) {
  constexpr std::uint64_t kKeys = 512;
  const int kRounds = static_cast<int>(stress::Scaled(200));
  DenseMap map(/*initial_capacity=*/2048);  // no growth: isolate Clear races

  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      std::uint64_t x = 1442695040888963407ull + r;
      while (!done.load(std::memory_order_acquire)) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        const std::uint64_t key = x % kKeys + 1;
        const std::uint32_t got = map.Find(key);
        if (got != DenseMap::kNotFound) {
          ASSERT_EQ(got, ExpectedValue(key)) << "fabricated value";
        }
      }
    });
  }

  for (int round = 0; round < kRounds; ++round) {
    for (std::uint64_t k = 1; k <= kKeys; ++k) {
      map.Upsert(k, ExpectedValue(k));
    }
    map.Clear();
  }
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_EQ(map.size(), 0u);
}

}  // namespace
}  // namespace aim
