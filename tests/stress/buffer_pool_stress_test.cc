// Stress: producer/consumer threads hammer one BufferPool with no pacing
// while a reader polls free_count(). Validates the pool's two promises
// under contention: a buffer is exclusively owned between Acquire() and
// Release() (checked by tagging every byte and re-verifying before
// release — a double-handout shows up as a torn tag), and the free list
// never exceeds max_buffers no matter how many threads release at once.
// Runs under the TSan tier, where the aim::Mutex wrapper's locking gets
// the same scrutiny the raw std::mutex used to.

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "aim/common/buffer_pool.h"
#include "stress_util.h"

namespace aim {
namespace {

TEST(BufferPoolStress, ExclusiveOwnershipUnderContention) {
  const std::size_t max_buffers = 64;
  const int threads = 8;
  const std::uint64_t per_thread = stress::Scaled(20000);
  const std::size_t wire_bytes = 64;  // event frame size the pool serves

  BufferPool pool(max_buffers);
  std::atomic<bool> stop_reader{false};

  // Concurrent reader: the free list must never exceed its bound, even
  // mid-release-storm.
  std::thread reader([&] {
    while (!stop_reader.load(std::memory_order_acquire)) {
      ASSERT_LE(pool.free_count(), max_buffers);
      // Keep the pool's mutex contended but don't monopolize a starved
      // machine (CI runners can drop to one usable core).
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < per_thread; ++i) {
        std::vector<std::uint8_t> buf = pool.Acquire();
        ASSERT_TRUE(buf.empty()) << "Acquire() handed out a dirty buffer";
        const auto tag = static_cast<std::uint8_t>(
            (static_cast<std::uint64_t>(t) * 131 + i) & 0xff);
        buf.assign(wire_bytes, tag);
        // Re-verify after the write completes: if another thread was
        // handed the same vector, its concurrent assign tears the tag.
        for (std::size_t b = 0; b < wire_bytes; ++b) {
          ASSERT_EQ(buf[b], tag) << "buffer shared between owners";
        }
        pool.Release(std::move(buf));
      }
    });
  }
  for (auto& w : workers) w.join();
  stop_reader.store(true, std::memory_order_release);
  reader.join();

  EXPECT_LE(pool.free_count(), max_buffers);
  // With 8 threads cycling through a 64-buffer pool, recycling must have
  // kicked in: the pool cannot end empty.
  EXPECT_GT(pool.free_count(), 0u);
}

TEST(BufferPoolStress, OverflowFallsToAllocatorNotThePool) {
  // More in-flight buffers than pool slots: releases beyond max_buffers
  // must be dropped to the allocator, never corrupt the free list.
  const std::size_t max_buffers = 4;
  const int threads = 8;
  const std::uint64_t per_thread = stress::Scaled(20000);

  BufferPool pool(max_buffers);
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (std::uint64_t i = 0; i < per_thread; ++i) {
        // Hold two buffers at once so the thread population overcommits
        // the pool; release order varies with scheduling.
        std::vector<std::uint8_t> a = pool.Acquire();
        std::vector<std::uint8_t> b = pool.Acquire();
        a.assign(32, 0xa5);
        b.assign(32, 0x5a);
        pool.Release(std::move(b));
        pool.Release(std::move(a));
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_LE(pool.free_count(), max_buffers);
}

}  // namespace
}  // namespace aim
