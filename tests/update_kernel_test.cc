#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "aim/esp/update_kernel.h"
#include "aim/schema/record.h"
#include "aim/workload/benchmark_schema.h"
#include "aim/workload/cdr_generator.h"
#include "test_util.h"

namespace aim {
namespace {

using testing_util::MakeTinySchema;
using testing_util::RandomEvent;

bool MatchesFilter(CallFilter f, const Event& e, std::uint64_t preferred) {
  switch (f) {
    case CallFilter::kAny:
      return true;
    case CallFilter::kLocal:
      return !e.long_distance();
    case CallFilter::kLongDistance:
      return e.long_distance();
    case CallFilter::kInternational:
      return e.international();
    case CallFilter::kRoaming:
      return e.roaming();
    case CallFilter::kPreferred:
      return preferred != 0 && e.callee == preferred;
  }
  return false;
}

/// Brute-force reference for one group over a (time-ordered) event list.
struct Expected {
  std::int32_t count = 0;
  double sum = 0, min = 0, max = 0, avg = 0;
};

Expected ReferenceIndicators(const AttributeGroupSpec& g,
                             const std::vector<Event>& events,
                             std::uint64_t preferred) {
  std::vector<const Event*> matching;
  for (const Event& e : events) {
    if (MatchesFilter(g.filter, e, preferred)) matching.push_back(&e);
  }
  Expected out;
  if (matching.empty()) return out;

  std::vector<const Event*> in_window;
  switch (g.window.kind) {
    case WindowKind::kTumbling: {
      const Timestamp ws = WindowSpec::AlignDown(matching.back()->timestamp,
                                                 g.window.length_ms);
      for (const Event* e : matching) {
        if (WindowSpec::AlignDown(e->timestamp, g.window.length_ms) == ws) {
          in_window.push_back(e);
        }
      }
      break;
    }
    case WindowKind::kSliding: {
      const Timestamp slot_len = g.window.SlotLengthMs();
      const Timestamp cur =
          WindowSpec::AlignDown(matching.back()->timestamp, slot_len);
      const Timestamp oldest = cur - slot_len * (g.window.num_slots - 1);
      for (const Event* e : matching) {
        const Timestamp slot = WindowSpec::AlignDown(e->timestamp, slot_len);
        if (slot >= oldest && slot <= cur) in_window.push_back(e);
      }
      break;
    }
    case WindowKind::kEventBased: {
      const std::size_t n =
          std::min<std::size_t>(matching.size(), g.window.num_slots);
      in_window.assign(matching.end() - n, matching.end());
      break;
    }
  }
  if (in_window.empty()) return out;

  out.count = static_cast<std::int32_t>(in_window.size());
  bool first = true;
  float fsum = 0;
  for (const Event* e : in_window) {
    const float v = e->Metric(g.metric);
    fsum += v;
    if (first) {
      out.min = v;
      out.max = v;
      first = false;
    } else {
      out.min = std::min(out.min, static_cast<double>(v));
      out.max = std::max(out.max, static_cast<double>(v));
    }
  }
  out.sum = fsum;
  out.avg = fsum / static_cast<float>(out.count);
  return out;
}

void CheckGroup(const Schema& schema, const AttributeGroupSpec& g,
                const ConstRecordView& rec, const Expected& want,
                const std::string& ctx) {
  auto get = [&](std::uint16_t attr) {
    return rec.Get(attr).AsDouble();
  };
  if (g.count_attr != kInvalidAttr) {
    EXPECT_EQ(get(g.count_attr), want.count) << ctx << " count " << g.name;
  }
  if (!g.has_metric) return;
  const double tol = 1e-3 * (1.0 + std::abs(want.sum));
  if (g.sum_attr != kInvalidAttr) {
    EXPECT_NEAR(get(g.sum_attr), want.sum, tol) << ctx << " sum " << g.name;
  }
  if (g.min_attr != kInvalidAttr) {
    EXPECT_NEAR(get(g.min_attr), want.min, 1e-3) << ctx << " min " << g.name;
  }
  if (g.max_attr != kInvalidAttr) {
    EXPECT_NEAR(get(g.max_attr), want.max, 1e-3) << ctx << " max " << g.name;
  }
  if (g.avg_attr != kInvalidAttr) {
    EXPECT_NEAR(get(g.avg_attr), want.avg,
                1e-3 * (1.0 + std::abs(want.avg)))
        << ctx << " avg " << g.name;
  }
}

class UpdateKernelPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(UpdateKernelPropertyTest, MatchesReferenceModel) {
  auto schema = MakeTinySchema();
  UpdateProgram program(*schema, schema->FindAttribute("preferred_number"));
  Random rng(1000 + GetParam());

  RecordBuffer buf(schema.get());
  const std::uint64_t preferred = rng.Uniform(100) + 1;
  buf.view().SetAs<std::uint64_t>(schema->FindAttribute("preferred_number"),
                                  preferred);

  std::vector<Event> events;
  Timestamp now = static_cast<Timestamp>(rng.Uniform(1000000));
  const int steps = 200;
  for (int i = 0; i < steps; ++i) {
    // Advance time by 0 .. ~1.5 days to exercise rollovers and full
    // window expiry.
    now += static_cast<Timestamp>(rng.Uniform(kMillisPerDay * 3 / 2));
    Event e = RandomEvent(&rng, /*caller=*/1, now);
    events.push_back(e);
    program.Apply(e, buf.data());

    if (i % 17 == 0 || i == steps - 1) {
      for (const AttributeGroupSpec& g : schema->groups()) {
        const Expected want = ReferenceIndicators(g, events, preferred);
        CheckGroup(*schema, g, buf.const_view(), want,
                   "step " + std::to_string(i));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UpdateKernelPropertyTest,
                         ::testing::Range(0, 12));

class BenchmarkSchemaKernelTest : public ::testing::TestWithParam<int> {};

/// The same reference-model property over the full 546-indicator benchmark
/// schema: all 168 groups (6 filters x 7 windows x 4 group kinds) checked
/// against brute force.
TEST_P(BenchmarkSchemaKernelTest, FullSchemaMatchesReference) {
  auto schema = MakeBenchmarkSchema();
  UpdateProgram program(*schema, schema->FindAttribute("preferred_number"));
  Random rng(7700 + GetParam());

  RecordBuffer buf(schema.get());
  const std::uint64_t preferred = rng.Uniform(50) + 1;
  buf.view().SetAs<std::uint64_t>(schema->FindAttribute("preferred_number"),
                                  preferred);

  CdrGenerator::Options gopts;
  gopts.num_entities = 50;
  gopts.seed = 7800 + GetParam();
  CdrGenerator gen(gopts);

  std::vector<Event> events;
  Timestamp now = static_cast<Timestamp>(rng.Uniform(1000000));
  for (int i = 0; i < 60; ++i) {
    now += static_cast<Timestamp>(rng.Uniform(kMillisPerDay));
    Event e = gen.Next(now);
    e.caller = 1;  // one record under test
    events.push_back(e);
    program.Apply(e, buf.data());
  }
  for (const AttributeGroupSpec& g : schema->groups()) {
    const Expected want = ReferenceIndicators(g, events, preferred);
    CheckGroup(*schema, g, buf.const_view(), want, "full schema");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BenchmarkSchemaKernelTest,
                         ::testing::Range(0, 4));

TEST(UpdateKernelTest, TumblingWindowResetsAtBoundary) {
  auto schema = MakeTinySchema();
  UpdateProgram program(*schema, kInvalidAttr);
  RecordBuffer buf(schema.get());
  const std::uint16_t calls = schema->FindAttribute("calls_today");
  const std::uint16_t sum = schema->FindAttribute("dur_today_sum");

  Event e;
  e.caller = 1;
  e.duration = 100;
  e.timestamp = kMillisPerDay + 10;
  program.Apply(e, buf.data());
  program.Apply(e, buf.data());
  EXPECT_EQ(buf.const_view().Get(calls).i32(), 2);
  EXPECT_FLOAT_EQ(buf.const_view().Get(sum).f32(), 200.0f);

  e.timestamp = 2 * kMillisPerDay + 10;  // next day: reset
  e.duration = 7;
  program.Apply(e, buf.data());
  EXPECT_EQ(buf.const_view().Get(calls).i32(), 1);
  EXPECT_FLOAT_EQ(buf.const_view().Get(sum).f32(), 7.0f);
}

TEST(UpdateKernelTest, LateEventFoldsIntoCurrentWindow) {
  auto schema = MakeTinySchema();
  UpdateProgram program(*schema, kInvalidAttr);
  RecordBuffer buf(schema.get());
  const std::uint16_t calls = schema->FindAttribute("calls_today");

  Event e;
  e.caller = 1;
  e.duration = 10;
  e.timestamp = 5 * kMillisPerDay;
  program.Apply(e, buf.data());
  // An hour-old event from the previous day must not resurrect that day.
  e.timestamp = 5 * kMillisPerDay - kMillisPerHour;
  program.Apply(e, buf.data());
  EXPECT_EQ(buf.const_view().Get(calls).i32(), 2);
}

TEST(UpdateKernelTest, EmptyMinMaxReadZeroAfterReset) {
  auto schema = MakeTinySchema();
  UpdateProgram program(*schema, kInvalidAttr);
  RecordBuffer buf(schema.get());
  const std::uint16_t mn = schema->FindAttribute("dur_today_min");
  const std::uint16_t mx = schema->FindAttribute("dur_today_max");

  Event e;
  e.caller = 1;
  e.duration = 55;
  e.timestamp = 100;
  program.Apply(e, buf.data());
  EXPECT_FLOAT_EQ(buf.const_view().Get(mn).f32(), 55.0f);
  EXPECT_FLOAT_EQ(buf.const_view().Get(mx).f32(), 55.0f);

  e.timestamp = kMillisPerDay + 1;
  e.duration = 77;
  program.Apply(e, buf.data());
  EXPECT_FLOAT_EQ(buf.const_view().Get(mn).f32(), 77.0f);
  EXPECT_FLOAT_EQ(buf.const_view().Get(mx).f32(), 77.0f);
}

TEST(UpdateKernelTest, SlidingWindowExpiresOldSlots) {
  auto schema = MakeTinySchema();
  UpdateProgram program(*schema, kInvalidAttr);
  RecordBuffer buf(schema.get());
  // ld_dur_24h: long-distance duration, 24h window in 6 slots of 4h.
  const std::uint16_t sum = schema->FindAttribute("ld_dur_24h_sum");

  Event e;
  e.caller = 1;
  e.flags = Event::kLongDistance;
  e.duration = 100;
  e.timestamp = 0;
  program.Apply(e, buf.data());
  EXPECT_FLOAT_EQ(buf.const_view().Get(sum).f32(), 100.0f);

  // 12 hours later: first event still in window.
  e.timestamp = 12 * kMillisPerHour;
  program.Apply(e, buf.data());
  EXPECT_FLOAT_EQ(buf.const_view().Get(sum).f32(), 200.0f);

  // 30 hours after start: the first event's slot has expired.
  e.timestamp = 30 * kMillisPerHour;
  program.Apply(e, buf.data());
  const float sum_now = buf.const_view().Get(sum).f32();
  EXPECT_FLOAT_EQ(sum_now, 200.0f);  // events at 12h and 30h

  // Far future: everything expired but the new event.
  e.timestamp += 10 * kMillisPerDay;
  program.Apply(e, buf.data());
  EXPECT_FLOAT_EQ(buf.const_view().Get(sum).f32(), 100.0f);
}

TEST(UpdateKernelTest, EventRingKeepsLastN) {
  auto schema = MakeTinySchema();
  UpdateProgram program(*schema, kInvalidAttr);
  RecordBuffer buf(schema.get());
  const std::uint16_t sum = schema->FindAttribute("dur_last5_sum");
  const std::uint16_t mx = schema->FindAttribute("dur_last5_max");

  Event e;
  e.caller = 1;
  for (int i = 1; i <= 8; ++i) {
    e.duration = static_cast<std::uint32_t>(i * 10);
    e.timestamp = i * 1000;
    program.Apply(e, buf.data());
  }
  // Last 5 events: durations 40..80.
  EXPECT_FLOAT_EQ(buf.const_view().Get(sum).f32(), 40 + 50 + 60 + 70 + 80);
  EXPECT_FLOAT_EQ(buf.const_view().Get(mx).f32(), 80.0f);
}

TEST(UpdateKernelTest, FiltersRouteEvents) {
  auto schema = MakeTinySchema();
  UpdateProgram program(*schema, schema->FindAttribute("preferred_number"));
  RecordBuffer buf(schema.get());
  buf.view().SetAs<std::uint64_t>(schema->FindAttribute("preferred_number"),
                                  777);
  const std::uint16_t all = schema->FindAttribute("calls_today");
  const std::uint16_t local = schema->FindAttribute("local_calls_today");
  const std::uint16_t pref = schema->FindAttribute("pref_calls_today");

  Event e;
  e.caller = 1;
  e.callee = 5;
  e.timestamp = 100;
  program.Apply(e, buf.data());  // local, not preferred
  e.flags = Event::kLongDistance;
  program.Apply(e, buf.data());  // long-distance
  e.callee = 777;
  program.Apply(e, buf.data());  // long-distance + preferred

  EXPECT_EQ(buf.const_view().Get(all).i32(), 3);
  EXPECT_EQ(buf.const_view().Get(local).i32(), 1);
  EXPECT_EQ(buf.const_view().Get(pref).i32(), 1);
}

TEST(UpdateKernelTest, PreferredFilterWithoutAttributeNeverMatches) {
  auto schema = MakeTinySchema();
  UpdateProgram program(*schema, kInvalidAttr);  // no preferred column
  RecordBuffer buf(schema.get());
  const std::uint16_t pref = schema->FindAttribute("pref_calls_today");
  Event e;
  e.caller = 1;
  e.callee = 777;
  e.timestamp = 5;
  program.Apply(e, buf.data());
  EXPECT_EQ(buf.const_view().Get(pref).i32(), 0);
}

TEST(UpdateKernelTest, GroupCountMatchesSchema) {
  auto schema = MakeTinySchema();
  UpdateProgram program(*schema, kInvalidAttr);
  EXPECT_EQ(program.num_groups(), schema->num_groups());
}

}  // namespace
}  // namespace aim
