#include <gtest/gtest.h>

#include "aim/storage/mv_delta.h"
#include "test_util.h"

namespace aim {
namespace {

using testing_util::MakeTinySchema;

class MvDeltaTest : public ::testing::Test {
 protected:
  MvDeltaTest() : schema_(MakeTinySchema()), delta_(schema_.get()) {
    calls_ = schema_->FindAttribute("calls_today");
    row_.resize(schema_->record_size(), 0);
  }

  const std::uint8_t* RowWith(std::int32_t calls) {
    RecordView(schema_.get(), row_.data()).Set(calls_, Value::Int32(calls));
    return row_.data();
  }

  std::int32_t CallsOf(const std::uint8_t* row) {
    return ConstRecordView(schema_.get(), row).Get(calls_).i32();
  }

  std::unique_ptr<Schema> schema_;
  MvDelta delta_;
  std::uint16_t calls_;
  std::vector<std::uint8_t> row_;
};

TEST_F(MvDeltaTest, SnapshotSeesOnlyCommittedVersions) {
  const MvDelta::Snapshot s0 = delta_.LatestSnapshot();
  ASSERT_TRUE(delta_.Put(7, RowWith(1)).ok());
  const MvDelta::Snapshot s1 = delta_.LatestSnapshot();
  ASSERT_TRUE(delta_.Put(7, RowWith(2)).ok());
  const MvDelta::Snapshot s2 = delta_.LatestSnapshot();

  EXPECT_EQ(delta_.Get(7, s0), nullptr);  // before first commit
  EXPECT_EQ(CallsOf(delta_.Get(7, s1)), 1);
  EXPECT_EQ(CallsOf(delta_.Get(7, s2)), 2);
  EXPECT_EQ(delta_.Get(8, s2), nullptr);
  EXPECT_EQ(delta_.total_versions(), 2u);
}

TEST_F(MvDeltaTest, MultiRecordCommitIsAtomic) {
  // The §7 motivation: update two Entity Records in one transaction.
  const MvDelta::Snapshot before = delta_.LatestSnapshot();
  ASSERT_TRUE(delta_.Begin().ok());
  ASSERT_TRUE(delta_.Write(1, RowWith(10)).ok());
  ASSERT_TRUE(delta_.Write(2, RowWith(20)).ok());
  // Nothing visible until commit — even at the "latest" snapshot.
  EXPECT_EQ(delta_.Get(1, delta_.LatestSnapshot()), nullptr);
  EXPECT_EQ(delta_.Get(2, delta_.LatestSnapshot()), nullptr);

  StatusOr<MvDelta::Snapshot> committed = delta_.Commit();
  ASSERT_TRUE(committed.ok());
  // Old snapshot still sees nothing (repeatable reads).
  EXPECT_EQ(delta_.Get(1, before), nullptr);
  // New snapshot sees both writes together.
  EXPECT_EQ(CallsOf(delta_.Get(1, *committed)), 10);
  EXPECT_EQ(CallsOf(delta_.Get(2, *committed)), 20);
}

TEST_F(MvDeltaTest, LastWriteWinsWithinTransaction) {
  ASSERT_TRUE(delta_.Begin().ok());
  ASSERT_TRUE(delta_.Write(1, RowWith(5)).ok());
  ASSERT_TRUE(delta_.Write(1, RowWith(6)).ok());
  const MvDelta::Snapshot s = *delta_.Commit();
  EXPECT_EQ(CallsOf(delta_.Get(1, s)), 6);
  EXPECT_EQ(delta_.total_versions(), 1u);
}

TEST_F(MvDeltaTest, RollbackDiscards) {
  ASSERT_TRUE(delta_.Begin().ok());
  ASSERT_TRUE(delta_.Write(1, RowWith(5)).ok());
  delta_.Rollback();
  EXPECT_EQ(delta_.Get(1, delta_.LatestSnapshot()), nullptr);
  EXPECT_EQ(delta_.total_versions(), 0u);
  // A new transaction can start after rollback.
  EXPECT_TRUE(delta_.Begin().ok());
  delta_.Rollback();
}

TEST_F(MvDeltaTest, TransactionDisciplineEnforced) {
  EXPECT_TRUE(delta_.Write(1, RowWith(1)).IsInvalidArgument());
  EXPECT_FALSE(delta_.Commit().ok());
  ASSERT_TRUE(delta_.Begin().ok());
  EXPECT_TRUE(delta_.Begin().IsInvalidArgument());
  delta_.Rollback();
}

TEST_F(MvDeltaTest, ForEachNewestVisitsLatestVersions) {
  ASSERT_TRUE(delta_.Put(1, RowWith(1)).ok());
  ASSERT_TRUE(delta_.Put(1, RowWith(2)).ok());
  ASSERT_TRUE(delta_.Put(2, RowWith(9)).ok());
  std::map<EntityId, std::int32_t> seen;
  delta_.ForEachNewest([&](EntityId e, MvDelta::Snapshot,
                           const std::uint8_t* row) {
    seen[e] = CallsOf(row);
  });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[1], 2);
  EXPECT_EQ(seen[2], 9);
}

TEST_F(MvDeltaTest, TruncateDropsUnreachableVersions) {
  ASSERT_TRUE(delta_.Put(1, RowWith(1)).ok());  // ts 1
  ASSERT_TRUE(delta_.Put(1, RowWith(2)).ok());  // ts 2
  ASSERT_TRUE(delta_.Put(1, RowWith(3)).ok());  // ts 3
  EXPECT_EQ(delta_.total_versions(), 3u);

  // Oldest active snapshot = 2: version 1 is unreachable, version 2 must
  // stay (snapshot 2 reads it).
  EXPECT_EQ(delta_.Truncate(2), 1u);
  EXPECT_EQ(delta_.total_versions(), 2u);
  EXPECT_EQ(CallsOf(delta_.Get(1, 2)), 2);
  EXPECT_EQ(CallsOf(delta_.Get(1, 3)), 3);

  // All snapshots past 3: only the newest survives.
  EXPECT_EQ(delta_.Truncate(99), 1u);
  EXPECT_EQ(delta_.total_versions(), 1u);
  EXPECT_EQ(CallsOf(delta_.Get(1, 99)), 3);
}

TEST_F(MvDeltaTest, ClearResets) {
  ASSERT_TRUE(delta_.Put(1, RowWith(1)).ok());
  delta_.Clear();
  EXPECT_EQ(delta_.num_entities(), 0u);
  EXPECT_EQ(delta_.total_versions(), 0u);
  EXPECT_EQ(delta_.Get(1, delta_.LatestSnapshot()), nullptr);
}

TEST_F(MvDeltaTest, PropertySnapshotReadsAreRepeatable) {
  // Random committed history; every historical snapshot keeps returning
  // exactly what it saw when it was current.
  Random rng(13);
  std::map<std::pair<EntityId, MvDelta::Snapshot>, std::int32_t> oracle;
  std::map<EntityId, std::int32_t> current;
  for (int txn = 0; txn < 60; ++txn) {
    ASSERT_TRUE(delta_.Begin().ok());
    const int writes = 1 + static_cast<int>(rng.Uniform(3));
    for (int w = 0; w < writes; ++w) {
      const EntityId e = rng.Uniform(6) + 1;
      const std::int32_t v = static_cast<std::int32_t>(rng.Uniform(1000));
      ASSERT_TRUE(delta_.Write(e, RowWith(v)).ok());
      current[e] = v;
    }
    const MvDelta::Snapshot s = *delta_.Commit();
    for (const auto& [e, v] : current) oracle[{e, s}] = v;
  }
  // Verify every (entity, snapshot) pair recorded along the way.
  for (const auto& [key, want] : oracle) {
    const std::uint8_t* row = delta_.Get(key.first, key.second);
    ASSERT_NE(row, nullptr);
    EXPECT_EQ(CallsOf(row), want);
  }
}

}  // namespace
}  // namespace aim
