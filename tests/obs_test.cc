#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "aim/common/clock.h"
#include "aim/obs/freshness_tracer.h"
#include "aim/obs/histogram.h"
#include "aim/obs/kpi_monitor.h"
#include "aim/obs/metric.h"
#include "aim/obs/registry.h"

namespace aim {
namespace {

// ---------------------------------------------------------------------------
// Counter / Gauge / ShardedCounter
// ---------------------------------------------------------------------------

TEST(CounterTest, AddAndValue) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(GaugeTest, SetAddValue) {
  Gauge g;
  g.Set(7);
  EXPECT_EQ(g.Value(), 7);
  g.Add(-10);
  EXPECT_EQ(g.Value(), -3);
}

TEST(ShardedCounterTest, SumsAcrossThreads) {
  ShardedCounter c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.Add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
}

// ---------------------------------------------------------------------------
// AtomicHistogram / HistogramSnapshot
// ---------------------------------------------------------------------------

TEST(AtomicHistogramTest, CountSumMinMax) {
  AtomicHistogram h;
  h.Record(10.0);
  h.Record(20.0);
  h.Record(30.0);
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_NEAR(s.sum, 60.0, 0.01);
  EXPECT_NEAR(s.Mean(), 20.0, 0.01);
  EXPECT_NEAR(s.min, 10.0, 0.01);
  EXPECT_NEAR(s.max, 30.0, 0.01);
}

TEST(AtomicHistogramTest, BucketLayoutMatchesLatencyRecorder) {
  // Bucket i covers values up to 2^((i+1)/4) — ~19% resolution, the same
  // log-bucket layout as LatencyRecorder.
  EXPECT_EQ(AtomicHistogram::BucketFor(0.0), 0);
  EXPECT_EQ(AtomicHistogram::BucketFor(1.0), 0);
  EXPECT_EQ(AtomicHistogram::BucketFor(2.0), 4);
  EXPECT_EQ(AtomicHistogram::BucketFor(4.0), 8);
  EXPECT_EQ(AtomicHistogram::BucketFor(1e30),
            AtomicHistogram::kNumBuckets - 1);  // clamps to the last bucket
}

TEST(AtomicHistogramTest, PercentileBrackets) {
  AtomicHistogram h;
  for (int i = 0; i < 99; ++i) h.Record(10.0);
  h.Record(1000.0);
  const HistogramSnapshot s = h.Snapshot();
  // p50 lands in 10's bucket: upper edge within +19% of 10.
  const double p50 = s.Percentile(0.50);
  EXPECT_GE(p50, 10.0);
  EXPECT_LE(p50, 10.0 * 1.2);
  // p100 lands in 1000's bucket.
  const double p100 = s.Percentile(1.0);
  EXPECT_GE(p100, 1000.0);
  EXPECT_LE(p100, 1000.0 * 1.2);
  // The outlier dominates the max but not the median.
  EXPECT_LT(p50, p100);
}

TEST(HistogramSnapshotTest, MergeAddsSamples) {
  AtomicHistogram a, b;
  a.Record(5.0);
  a.Record(7.0);
  b.Record(100.0);
  HistogramSnapshot m = a.Snapshot();
  m.Merge(b.Snapshot());
  EXPECT_EQ(m.count, 3u);
  EXPECT_NEAR(m.sum, 112.0, 0.01);
  EXPECT_NEAR(m.min, 5.0, 0.01);
  EXPECT_NEAR(m.max, 100.0, 0.01);
}

TEST(HistogramSnapshotTest, DeltaIsolatesWindow) {
  AtomicHistogram h;
  h.Record(10.0);
  const HistogramSnapshot before = h.Snapshot();
  h.Record(500.0);
  h.Record(500.0);
  const HistogramSnapshot d = h.Snapshot().Delta(before);
  EXPECT_EQ(d.count, 2u);
  EXPECT_NEAR(d.Mean(), 500.0, 0.5);
  // Only the window's samples contribute to the delta percentiles.
  EXPECT_GE(d.Percentile(0.0), 400.0);
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(RegistryTest, SameNameAndLabelsReturnsSameObject) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("aim_test_total", {{"node", "0"}});
  Counter* b = reg.GetCounter("aim_test_total", {{"node", "0"}});
  EXPECT_EQ(a, b);
  EXPECT_EQ(reg.NumMetrics(), 1u);
}

TEST(RegistryTest, LabelOrderDoesNotCreateDuplicateSeries) {
  MetricsRegistry reg;
  Counter* a =
      reg.GetCounter("aim_test_total", {{"a", "1"}, {"b", "2"}});
  Counter* b =
      reg.GetCounter("aim_test_total", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(a, b);
  EXPECT_EQ(reg.NumMetrics(), 1u);
}

TEST(RegistryTest, DifferentLabelsAreDistinctSeries) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("aim_test_total", {{"node", "0"}});
  Counter* b = reg.GetCounter("aim_test_total", {{"node", "1"}});
  EXPECT_NE(a, b);
  a->Add(3);
  b->Add(5);
  EXPECT_EQ(a->Value(), 3u);
  EXPECT_EQ(b->Value(), 5u);
  EXPECT_EQ(reg.NumMetrics(), 2u);
}

TEST(RegistryTest, PointersStableAcrossManyRegistrations) {
  MetricsRegistry reg;
  Counter* first = reg.GetCounter("aim_first_total", {});
  for (int i = 0; i < 200; ++i) {
    reg.GetCounter("aim_other_total", {{"i", std::to_string(i)}});
  }
  EXPECT_EQ(first, reg.GetCounter("aim_first_total", {}));
  first->Add();
  EXPECT_EQ(first->Value(), 1u);
}

TEST(RegistryTest, PrometheusRendering) {
  MetricsRegistry reg;
  reg.GetCounter("aim_events_total", {{"node", "0"}})->Add(12);
  reg.GetGauge("aim_queue_depth", {})->Set(-4);
  reg.GetHistogram("aim_lat_micros", {})->Record(2.0);

  const std::string text = reg.RenderPrometheus();
  EXPECT_NE(text.find("# TYPE aim_events_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("aim_events_total{node=\"0\"} 12\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE aim_queue_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("aim_queue_depth -4\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE aim_lat_micros histogram\n"), std::string::npos);
  // 2.0 lands in bucket 4, upper edge 2^(5/4) ≈ 2.37841.
  EXPECT_NE(text.find("aim_lat_micros_bucket{le=\"2.37841\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("aim_lat_micros_bucket{le=\"+Inf\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("aim_lat_micros_sum 2\n"), std::string::npos);
  EXPECT_NE(text.find("aim_lat_micros_count 1\n"), std::string::npos);
}

TEST(RegistryTest, JsonRendering) {
  MetricsRegistry reg;
  reg.GetCounter("aim_events_total", {{"node", "0"}})->Add(3);
  reg.GetGauge("aim_depth", {})->Set(9);
  reg.GetHistogram("aim_lat_micros", {})->Record(4.0);

  const std::string json = reg.RenderJson();
  EXPECT_NE(json.find("\"counters\":[{\"name\":\"aim_events_total\","
                      "\"labels\":{\"node\":\"0\"},\"value\":3}]"),
            std::string::npos);
  EXPECT_NE(json.find("\"gauges\":[{\"name\":\"aim_depth\",\"labels\":{},"
                      "\"value\":9}]"),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"aim_lat_micros\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
}

TEST(RegistryTest, ShardedCounterRendersAsCounter) {
  MetricsRegistry reg;
  reg.GetShardedCounter("aim_shared_total", {})->Add(6);
  const std::string text = reg.RenderPrometheus();
  EXPECT_NE(text.find("# TYPE aim_shared_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("aim_shared_total 6\n"), std::string::npos);
}

// ---------------------------------------------------------------------------
// FreshnessTracer
// ---------------------------------------------------------------------------

TEST(FreshnessTracerTest, TracesOldestWritePerMergeWindow) {
  AtomicHistogram staleness;
  FreshnessTracer tracer(&staleness);

  // Window 0 receives writes at t=1ms and t=2ms; only the first sticks.
  tracer.OnWrite(1'000'000);
  tracer.OnWrite(2'000'000);
  tracer.OnSwap();                // freeze window 0
  tracer.OnWrite(5'000'000);      // lands in window 1
  tracer.OnPublish(11'000'000);   // window 0 published at t=11ms

  ASSERT_EQ(staleness.Count(), 1u);
  // Staleness = publish - first write = 10ms.
  EXPECT_NEAR(staleness.Snapshot().max, 10.0, 0.01);

  // Next cycle publishes window 1: staleness = 20 - 5 = 15ms.
  tracer.OnSwap();
  tracer.OnPublish(20'000'000);
  ASSERT_EQ(staleness.Count(), 2u);
  EXPECT_NEAR(staleness.Snapshot().max, 15.0, 0.01);
}

TEST(FreshnessTracerTest, EmptyWindowRecordsNothing) {
  AtomicHistogram staleness;
  FreshnessTracer tracer(&staleness);
  tracer.OnSwap();
  tracer.OnPublish(1'000'000);  // no writes happened
  EXPECT_EQ(staleness.Count(), 0u);
}

// ---------------------------------------------------------------------------
// KpiMonitor
// ---------------------------------------------------------------------------

TEST(KpiMonitorTest, EvaluatesAllFiveSlas) {
  Counter events, queries;
  AtomicHistogram esp_lat, rta_lat, fresh;

  KpiTargets targets;
  KpiMonitor::Inputs in;
  in.events = {&events};
  in.esp_latency_micros = {&esp_lat};
  in.queries = {&queries};
  in.rta_latency_micros = {&rta_lat};
  in.freshness_millis = {&fresh};
  in.entities = 10;
  KpiMonitor monitor(in, targets);

  // Drive a healthy window: sub-ms event latency, fast queries, fresh
  // merges. Rates are huge relative to the tiny window duration.
  for (int i = 0; i < 100; ++i) {
    events.Add();
    esp_lat.Record(500.0);  // 0.5 ms
  }
  for (int i = 0; i < 50; ++i) {
    queries.Add();
    rta_lat.Record(20000.0);  // 20 ms
  }
  fresh.Record(40.0);  // one traced merge, 40 ms staleness

  const KpiSample s = monitor.Sample();
  EXPECT_TRUE(s.t_esp_ok) << s.Render(targets);
  EXPECT_TRUE(s.f_esp_ok);
  EXPECT_TRUE(s.t_rta_ok);
  EXPECT_TRUE(s.f_rta_ok);
  EXPECT_TRUE(s.t_fresh_ok);
  EXPECT_TRUE(s.fresh_traced);
  EXPECT_TRUE(s.AllPass());
  EXPECT_EQ(s.NumPass(), 5);
  EXPECT_NEAR(s.t_esp_ms, 0.5, 0.1);
  EXPECT_NEAR(s.t_rta_ms, 20.0, 4.0);  // bucket resolution ~19%
}

TEST(KpiMonitorTest, WindowsAreDifferenced) {
  Counter events;
  AtomicHistogram esp_lat;
  KpiMonitor::Inputs in;
  in.events = {&events};
  in.esp_latency_micros = {&esp_lat};
  in.entities = 1;
  KpiMonitor monitor(in);

  esp_lat.Record(100000.0);  // 100 ms — violates t_ESP in window 1
  const KpiSample first = monitor.Sample();
  EXPECT_FALSE(first.t_esp_ok);

  esp_lat.Record(1000.0);  // 1 ms — window 2 must not see the old sample
  const KpiSample second = monitor.Sample();
  EXPECT_TRUE(second.t_esp_ok);
  EXPECT_NEAR(second.t_esp_ms, 1.0, 0.3);
}

TEST(KpiMonitorTest, UntracedFreshnessFails) {
  // No merge published in the window -> freshness cannot be certified.
  AtomicHistogram fresh;
  KpiMonitor::Inputs in;
  in.freshness_millis = {&fresh};
  KpiMonitor monitor(in);
  const KpiSample s = monitor.Sample();
  EXPECT_FALSE(s.fresh_traced);
  EXPECT_FALSE(s.t_fresh_ok);
  EXPECT_NE(s.Render(KpiTargets{}).find("no merge in window"),
            std::string::npos);
}

TEST(KpiMonitorTest, AggregatesMultipleSources) {
  Counter e0, e1;
  AtomicHistogram h0, h1;
  KpiMonitor::Inputs in;
  in.events = {&e0, &e1};
  in.esp_latency_micros = {&h0, &h1};
  in.entities = 1;
  KpiMonitor monitor(in);

  e0.Add(10);
  e1.Add(20);
  h0.Record(1000.0);
  h1.Record(3000.0);
  const KpiSample s = monitor.Sample();
  // Mean over both sources: (1ms + 3ms) / 2 = 2ms.
  EXPECT_NEAR(s.t_esp_ms, 2.0, 0.5);
  EXPECT_GT(s.f_esp_per_entity_hour, 0.0);
}

}  // namespace
}  // namespace aim
