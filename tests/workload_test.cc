#include <set>

#include <gtest/gtest.h>

#include "aim/rta/compiled_query.h"
#include "aim/workload/benchmark_schema.h"
#include "aim/workload/cdr_generator.h"
#include "aim/workload/query_workload.h"
#include "aim/workload/rules_generator.h"

namespace aim {
namespace {

TEST(BenchmarkSchemaTest, Has546Indicators) {
  auto schema = MakeBenchmarkSchema();
  EXPECT_EQ(schema->num_indicators(), 546u);
  EXPECT_EQ(schema->num_groups(),
            6u * 7u * 4u);  // filters x windows x (1 count + 3 metric)
  // Record size should be in the single-digit-KB class the paper targets
  // (ours is larger than 3 KB because sliding/event window state is kept
  // inline — see DESIGN.md).
  EXPECT_GT(schema->record_size(), 3000u);
  EXPECT_LT(schema->record_size(), 16384u);
}

TEST(BenchmarkSchemaTest, PaperAliasesResolve) {
  auto schema = MakeBenchmarkSchema();
  for (const char* name :
       {"total_duration_this_week", "most_expensive_call_this_week",
        "total_cost_this_week", "number_of_calls_this_week",
        "number_of_local_calls_this_week",
        "total_duration_of_local_calls_this_week",
        "total_cost_of_local_calls_this_week",
        "total_cost_of_long_distance_calls_this_week",
        "longest_local_call_today", "longest_long_distance_call_this_week",
        "number_of_calls_today", "total_cost_today", "avg_duration_today",
        "entity_id", "zip", "subscription_type", "category",
        "cell_value_type", "preferred_number"}) {
    EXPECT_NE(schema->FindAttribute(name), kInvalidAttr) << name;
  }
}

TEST(BenchmarkSchemaTest, NamingHelpers) {
  EXPECT_EQ(CountIndicatorName(CallFilter::kAny, "today"),
            "number_of_calls_today");
  EXPECT_EQ(CountIndicatorName(CallFilter::kLocal, "this_week"),
            "number_of_local_calls_this_week");
  EXPECT_EQ(MetricIndicatorName(CallFilter::kAny, EventMetric::kCost,
                                "this_week", AggFn::kMax),
            "cost_this_week_max");
  EXPECT_EQ(MetricIndicatorName(CallFilter::kLongDistance,
                                EventMetric::kDuration, "today", AggFn::kSum),
            "long_distance_duration_today_sum");
}

TEST(BenchmarkSchemaTest, CompactSchemaIsSmaller) {
  auto compact = MakeCompactSchema();
  auto full = MakeBenchmarkSchema();
  EXPECT_LT(compact->num_indicators(), full->num_indicators());
  EXPECT_LT(compact->record_size(), full->record_size());
  EXPECT_NE(compact->FindAttribute("total_cost_this_week"), kInvalidAttr);
}

TEST(CdrGeneratorTest, DeterministicAndWellFormed) {
  CdrGenerator::Options opts;
  opts.num_entities = 1000;
  opts.seed = 3;
  CdrGenerator a(opts), b(opts);
  for (int i = 0; i < 1000; ++i) {
    const Event ea = a.Next(1000 + i);
    const Event eb = b.Next(1000 + i);
    EXPECT_EQ(ea.caller, eb.caller);
    EXPECT_EQ(ea.cost, eb.cost);
    ASSERT_GE(ea.caller, 1u);
    ASSERT_LE(ea.caller, 1000u);
    ASSERT_GE(ea.duration, 1u);
    ASSERT_LE(ea.duration, 3600u);
    ASSERT_GE(ea.cost, 0.0f);
    EXPECT_EQ(ea.timestamp, 1000 + i);
  }
  EXPECT_EQ(a.events_generated(), 1000u);
}

TEST(CdrGeneratorTest, FlagRatesRoughlyMatchConfig) {
  CdrGenerator::Options opts;
  opts.num_entities = 100;
  opts.long_distance_pct = 30;
  CdrGenerator gen(opts);
  int ld = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (gen.Next(i).long_distance()) ld++;
  }
  EXPECT_NEAR(static_cast<double>(ld) / n, 0.30, 0.02);
}

TEST(CdrGeneratorTest, EventWireSizeIs64Bytes) {
  Event e;
  BinaryWriter w;
  e.Serialize(&w);
  EXPECT_EQ(w.size(), kEventWireSize);
  EXPECT_EQ(w.size(), 64u);
}

TEST(CdrGeneratorTest, PreferredOfIsStableAndInRange) {
  for (EntityId e = 1; e <= 500; ++e) {
    const EntityId p = CdrGenerator::PreferredOf(e, 500);
    EXPECT_GE(p, 1u);
    EXPECT_LE(p, 500u);
    EXPECT_EQ(p, CdrGenerator::PreferredOf(e, 500));
  }
}

TEST(ProfileTest, PopulateEntityProfileSetsFields) {
  auto schema = MakeCompactSchema();
  const BenchmarkDims dims = MakeBenchmarkDims();
  std::vector<std::uint8_t> row(schema->record_size(), 0);
  PopulateEntityProfile(*schema, dims, 42, 1000, row.data());
  ConstRecordView rec(schema.get(), row.data());
  EXPECT_EQ(rec.Get(schema->FindAttribute("entity_id")).u64(), 42u);
  EXPECT_LT(rec.Get(schema->FindAttribute("zip")).u32(), dims.num_zips);
  EXPECT_LT(rec.Get(schema->FindAttribute("subscription_type")).u32(),
            dims.num_subscription_types);
  EXPECT_EQ(rec.Get(schema->FindAttribute("preferred_number")).u64(),
            CdrGenerator::PreferredOf(42, 1000));
}

TEST(RulesGeneratorTest, ShapeMatchesPaper) {
  auto schema = MakeBenchmarkSchema();
  RulesGeneratorOptions opts;
  opts.num_rules = 300;
  const std::vector<Rule> rules = MakeBenchmarkRules(*schema, opts);
  ASSERT_EQ(rules.size(), 300u);
  for (const Rule& r : rules) {
    ASSERT_GE(r.conjuncts.size(), 1u);
    ASSERT_LE(r.conjuncts.size(), 10u);
    for (const Conjunct& c : r.conjuncts) {
      ASSERT_GE(c.predicates.size(), 1u);
      ASSERT_LE(c.predicates.size(), 10u);
    }
  }
  // Deterministic.
  const std::vector<Rule> again = MakeBenchmarkRules(*schema, opts);
  ASSERT_EQ(again.size(), rules.size());
  EXPECT_EQ(again[17].conjuncts.size(), rules[17].conjuncts.size());
}

TEST(RulesGeneratorTest, PaperTable2RulesBuild) {
  auto schema = MakeBenchmarkSchema();
  const std::vector<Rule> rules = MakePaperTable2Rules(*schema);
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_EQ(rules[0].conjuncts.size(), 1u);
  EXPECT_EQ(rules[0].conjuncts[0].predicates.size(), 3u);
  EXPECT_EQ(rules[1].conjuncts[0].predicates.size(), 2u);
}

TEST(QueryWorkloadTest, AllSevenQueriesBuildAndCompile) {
  auto schema = MakeBenchmarkSchema();
  const BenchmarkDims dims = MakeBenchmarkDims();
  QueryWorkload workload(schema.get(), &dims, 11);
  for (int qnum = 1; qnum <= 7; ++qnum) {
    const Query q = workload.Make(qnum);
    StatusOr<CompiledQuery> cq =
        CompiledQuery::Compile(q, schema.get(), &dims.catalog);
    ASSERT_TRUE(cq.ok()) << "Q" << qnum << ": " << cq.status().ToString();
  }
}

TEST(QueryWorkloadTest, QueryShapesMatchTable5) {
  auto schema = MakeBenchmarkSchema();
  const BenchmarkDims dims = MakeBenchmarkDims();
  QueryWorkload workload(schema.get(), &dims, 11);

  const Query q1 = workload.Make(1);
  EXPECT_EQ(q1.kind, Query::Kind::kAggregate);
  EXPECT_EQ(q1.select.size(), 1u);
  EXPECT_EQ(q1.select[0].op, AggOp::kAvg);
  ASSERT_EQ(q1.where.size(), 1u);
  const double alpha = q1.where[0].constant.AsDouble();
  EXPECT_GE(alpha, 0);
  EXPECT_LE(alpha, 2);

  const Query q3 = workload.Make(3);
  EXPECT_EQ(q3.kind, Query::Kind::kGroupBy);
  EXPECT_EQ(q3.limit, 100u);
  EXPECT_TRUE(q3.select[0].is_sum_ratio);

  const Query q4 = workload.Make(4);
  EXPECT_EQ(q4.group_by.kind, GroupBy::Kind::kDimColumn);
  EXPECT_EQ(q4.where.size(), 2u);

  const Query q5 = workload.Make(5);
  EXPECT_EQ(q5.dim_where.size(), 2u);

  const Query q6 = workload.Make(6);
  EXPECT_EQ(q6.kind, Query::Kind::kTopK);
  EXPECT_EQ(q6.topk.size(), 4u);
  EXPECT_EQ(q6.dim_where.size(), 1u);

  const Query q7 = workload.Make(7);
  EXPECT_EQ(q7.kind, Query::Kind::kTopK);
  ASSERT_EQ(q7.topk.size(), 1u);
  EXPECT_TRUE(q7.topk[0].ascending);
  EXPECT_NE(q7.topk[0].den_attr, kInvalidAttr);
}

TEST(QueryWorkloadTest, MixCoversAllSeven) {
  auto schema = MakeBenchmarkSchema();
  const BenchmarkDims dims = MakeBenchmarkDims();
  QueryWorkload workload(schema.get(), &dims, 23);
  std::set<Query::Kind> kinds;
  std::set<std::size_t> select_shapes;
  for (int i = 0; i < 200; ++i) {
    const Query q = workload.Next();
    kinds.insert(q.kind);
    select_shapes.insert(q.select.size() * 10 + q.topk.size());
  }
  EXPECT_EQ(kinds.size(), 3u);          // aggregate, group-by, top-k
  EXPECT_GE(select_shapes.size(), 4u);  // several distinct query shapes
}

}  // namespace
}  // namespace aim
