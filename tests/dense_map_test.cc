#include <thread>
#include <unordered_map>

#include <gtest/gtest.h>

#include "aim/common/random.h"
#include "aim/storage/dense_map.h"

namespace aim {
namespace {

TEST(DenseMapTest, EmptyFinds) {
  DenseMap map;
  EXPECT_EQ(map.Find(1), DenseMap::kNotFound);
  EXPECT_FALSE(map.Contains(0));
  EXPECT_EQ(map.size(), 0u);
}

TEST(DenseMapTest, InsertFindOverwrite) {
  DenseMap map;
  map.Upsert(10, 100);
  map.Upsert(11, 101);
  EXPECT_EQ(map.Find(10), 100u);
  EXPECT_EQ(map.Find(11), 101u);
  EXPECT_EQ(map.size(), 2u);
  map.Upsert(10, 200);  // overwrite, no size change
  EXPECT_EQ(map.Find(10), 200u);
  EXPECT_EQ(map.size(), 2u);
}

TEST(DenseMapTest, ZeroKeyWorks) {
  DenseMap map;
  map.Upsert(0, 7);
  EXPECT_EQ(map.Find(0), 7u);
}

TEST(DenseMapTest, GrowthPreservesEntries) {
  DenseMap map(64);
  for (std::uint64_t k = 0; k < 10000; ++k) {
    map.Upsert(k * 3 + 1, static_cast<std::uint32_t>(k));
  }
  EXPECT_EQ(map.size(), 10000u);
  EXPECT_GT(map.retired_tables(), 0u);
  for (std::uint64_t k = 0; k < 10000; ++k) {
    ASSERT_EQ(map.Find(k * 3 + 1), k);
  }
  map.ReclaimRetired();
  EXPECT_EQ(map.retired_tables(), 0u);
  EXPECT_EQ(map.Find(4), 1u);
}

TEST(DenseMapTest, ClearKeepsCapacity) {
  DenseMap map;
  for (std::uint64_t k = 1; k <= 100; ++k) map.Upsert(k, 1);
  const std::size_t cap = map.capacity();
  map.Clear();
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.capacity(), cap);
  EXPECT_EQ(map.Find(50), DenseMap::kNotFound);
  map.Upsert(50, 2);
  EXPECT_EQ(map.Find(50), 2u);
}

TEST(DenseMapTest, ReserveAvoidsGrowth) {
  DenseMap map;
  map.Reserve(100000);
  map.ReclaimRetired();  // drop the initial tiny table
  const std::size_t cap = map.capacity();
  for (std::uint64_t k = 0; k < 100000; ++k) map.Upsert(k + 1, 0);
  EXPECT_EQ(map.capacity(), cap);
  EXPECT_EQ(map.retired_tables(), 0u);
}

TEST(DenseMapTest, FuzzAgainstUnorderedMap) {
  Random rng(77);
  DenseMap map;
  std::unordered_map<std::uint64_t, std::uint32_t> ref;
  for (int i = 0; i < 50000; ++i) {
    const std::uint64_t key = rng.Uniform(5000);
    if (rng.OneIn(10)) {
      // Clear both occasionally.
      map.Clear();
      ref.clear();
      continue;
    }
    const std::uint32_t value = static_cast<std::uint32_t>(rng.Uniform(1u << 30));
    map.Upsert(key, value);
    ref[key] = value;
    // Random probe.
    const std::uint64_t probe = rng.Uniform(5000);
    auto it = ref.find(probe);
    if (it == ref.end()) {
      ASSERT_EQ(map.Find(probe), DenseMap::kNotFound);
    } else {
      ASSERT_EQ(map.Find(probe), it->second);
    }
  }
  EXPECT_EQ(map.size(), ref.size());
}

TEST(DenseMapTest, ConcurrentReadersDuringWrites) {
  // Readers race with a writer; they may miss fresh keys but must never
  // crash or return a value that was never stored for that key.
  DenseMap map;
  constexpr std::uint64_t kKeys = 20000;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> anomalies{0};

  std::thread reader([&] {
    Random rng(5);
    while (!stop.load(std::memory_order_acquire)) {
      const std::uint64_t k = rng.Uniform(kKeys) + 1;
      const std::uint32_t v = map.Find(k);
      // Writer stores value = key; anything else (except NotFound) is
      // corruption.
      if (v != DenseMap::kNotFound && v != k) {
        anomalies.fetch_add(1);
      }
    }
  });

  for (std::uint64_t k = 1; k <= kKeys; ++k) {
    map.Upsert(k, static_cast<std::uint32_t>(k));
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(anomalies.load(), 0u);
  // Reclaim is safe once readers are quiesced.
  map.ReclaimRetired();
  for (std::uint64_t k = 1; k <= kKeys; ++k) {
    ASSERT_EQ(map.Find(k), k);
  }
}

}  // namespace
}  // namespace aim
