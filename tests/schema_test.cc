#include <gtest/gtest.h>

#include "aim/schema/record.h"
#include "aim/schema/schema.h"
#include "aim/schema/value.h"
#include "aim/schema/window.h"
#include "test_util.h"

namespace aim {
namespace {

TEST(ValueTest, TypeSizes) {
  EXPECT_EQ(ValueTypeSize(ValueType::kInt32), 4u);
  EXPECT_EQ(ValueTypeSize(ValueType::kUInt32), 4u);
  EXPECT_EQ(ValueTypeSize(ValueType::kFloat), 4u);
  EXPECT_EQ(ValueTypeSize(ValueType::kInt64), 8u);
  EXPECT_EQ(ValueTypeSize(ValueType::kUInt64), 8u);
  EXPECT_EQ(ValueTypeSize(ValueType::kDouble), 8u);
}

TEST(ValueTest, ConstructorsAndAccessors) {
  EXPECT_EQ(Value::Int32(-5).i32(), -5);
  EXPECT_EQ(Value::UInt32(5).u32(), 5u);
  EXPECT_EQ(Value::Int64(-7).i64(), -7);
  EXPECT_EQ(Value::UInt64(7).u64(), 7u);
  EXPECT_EQ(Value::Float(1.5f).f32(), 1.5f);
  EXPECT_EQ(Value::Double(2.5).f64(), 2.5);
}

TEST(ValueTest, Widening) {
  EXPECT_DOUBLE_EQ(Value::Int32(-3).AsDouble(), -3.0);
  EXPECT_DOUBLE_EQ(Value::Float(1.5f).AsDouble(), 1.5);
  EXPECT_EQ(Value::Double(9.9).AsInt64(), 9);
  EXPECT_EQ(Value::UInt32(12).AsInt64(), 12);
}

TEST(ValueTest, LoadStoreRoundTrip) {
  std::uint8_t buf[8];
  Value::Float(3.25f).Store(buf);
  EXPECT_EQ(Value::Load(ValueType::kFloat, buf).f32(), 3.25f);
  Value::Int64(-99).Store(buf);
  EXPECT_EQ(Value::Load(ValueType::kInt64, buf).i64(), -99);
}

TEST(ValueTest, EqualitySameTypeOnly) {
  EXPECT_EQ(Value::Int32(1), Value::Int32(1));
  EXPECT_FALSE(Value::Int32(1) == Value::Int64(1));
}

TEST(WindowTest, AlignDown) {
  EXPECT_EQ(WindowSpec::AlignDown(0, 10), 0);
  EXPECT_EQ(WindowSpec::AlignDown(9, 10), 0);
  EXPECT_EQ(WindowSpec::AlignDown(10, 10), 10);
  EXPECT_EQ(WindowSpec::AlignDown(25, 10), 20);
  EXPECT_EQ(WindowSpec::AlignDown(-1, 10), -10);  // rounds toward -inf
  EXPECT_EQ(WindowSpec::AlignDown(-10, 10), -10);
}

TEST(WindowTest, Factories) {
  EXPECT_EQ(WindowSpec::Today().kind, WindowKind::kTumbling);
  EXPECT_EQ(WindowSpec::Today().length_ms, kMillisPerDay);
  const WindowSpec sliding = WindowSpec::Last24Hours();
  EXPECT_EQ(sliding.kind, WindowKind::kSliding);
  EXPECT_EQ(sliding.num_slots, 24);
  EXPECT_EQ(sliding.SlotLengthMs(), kMillisPerHour);
  EXPECT_EQ(WindowSpec::LastNEvents(10).kind, WindowKind::kEventBased);
  EXPECT_FALSE(WindowSpec::Today().ToString().empty());
}

TEST(SchemaTest, BuildAndFinalize) {
  Schema schema;
  const std::uint16_t id_attr =
      schema.AddRawAttribute("entity_id", ValueType::kUInt64);
  const std::uint16_t zip = schema.AddRawAttribute("zip", ValueType::kUInt32);
  const std::uint16_t g0 =
      schema.AddCountGroup("calls_today", CallFilter::kAny,
                           WindowSpec::Today());
  const std::uint16_t g1 = schema.AddMetricGroup(
      "dur_today", CallFilter::kAny, EventMetric::kDuration,
      WindowSpec::Today(), Schema::kAllMetricAggs);
  ASSERT_TRUE(schema.Finalize().ok());

  EXPECT_TRUE(schema.finalized());
  EXPECT_EQ(schema.num_groups(), 2);
  EXPECT_EQ(schema.num_indicators(), 5u);  // count + sum/min/max/avg
  EXPECT_EQ(schema.FindAttribute("entity_id"), id_attr);
  EXPECT_EQ(schema.FindAttribute("zip"), zip);
  EXPECT_EQ(schema.FindAttribute("nope"), kInvalidAttr);
  EXPECT_NE(schema.FindAttribute("dur_today_sum"), kInvalidAttr);
  EXPECT_NE(schema.FindAttribute("dur_today_avg"), kInvalidAttr);

  // Count group wiring.
  const AttributeGroupSpec& count_group = schema.group(g0);
  EXPECT_FALSE(count_group.has_metric);
  EXPECT_NE(count_group.count_attr, kInvalidAttr);
  EXPECT_EQ(schema.attribute(count_group.count_attr).type, ValueType::kInt32);

  // Metric group wiring.
  const AttributeGroupSpec& metric_group = schema.group(g1);
  EXPECT_TRUE(metric_group.has_metric);
  EXPECT_NE(metric_group.sum_attr, kInvalidAttr);
  EXPECT_EQ(schema.attribute(metric_group.sum_attr).agg, AggFn::kSum);
  EXPECT_EQ(schema.attribute(metric_group.sum_attr).kind,
            AttrKind::kIndicator);
}

TEST(SchemaTest, LayoutIsAlignedAndNonOverlapping) {
  auto schema = testing_util::MakeTinySchema();
  // 8-byte attributes first, aligned; then 4-byte; state area 8-aligned.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> ranges;
  for (std::uint16_t i = 0; i < schema->num_attributes(); ++i) {
    const Attribute& a = schema->attribute(i);
    const std::uint32_t w =
        static_cast<std::uint32_t>(ValueTypeSize(a.type));
    EXPECT_EQ(a.row_offset % w, 0u) << a.name;
    ranges.push_back({a.row_offset, a.row_offset + w});
  }
  EXPECT_EQ(schema->state_area_offset() % 8, 0u);
  for (const AttributeGroupSpec& g : schema->groups()) {
    EXPECT_EQ(g.state_offset % 8, 0u);
    EXPECT_GE(g.state_offset, schema->state_area_offset());
    ranges.push_back({g.state_offset, g.state_offset + g.state_size});
  }
  // No overlaps.
  std::sort(ranges.begin(), ranges.end());
  for (std::size_t i = 1; i < ranges.size(); ++i) {
    EXPECT_LE(ranges[i - 1].second, ranges[i].first);
  }
  EXPECT_LE(ranges.back().second, schema->record_size());
}

TEST(SchemaTest, StateSizes) {
  AttributeGroupSpec tumbling;
  tumbling.window = WindowSpec::Today();
  tumbling.has_metric = true;
  EXPECT_EQ(GroupStateSize(tumbling), sizeof(TumblingState));

  AttributeGroupSpec sliding;
  sliding.window = WindowSpec::Sliding(kMillisPerDay, 6);
  sliding.has_metric = true;
  EXPECT_EQ(GroupStateSize(sliding),
            sizeof(SlidingHeader) + 6 * sizeof(SlidingSlot));

  AttributeGroupSpec ring;
  ring.window = WindowSpec::LastNEvents(10);
  ring.has_metric = true;
  EXPECT_EQ(GroupStateSize(ring), sizeof(EventRingHeader) + 10 * 4);
  ring.has_metric = false;
  EXPECT_EQ(GroupStateSize(ring), sizeof(EventRingHeader));
}

TEST(SchemaTest, AliasResolution) {
  Schema schema;
  const std::uint16_t a = schema.AddRawAttribute("x", ValueType::kInt32);
  EXPECT_TRUE(schema.AddAlias("alias_x", a).ok());
  EXPECT_FALSE(schema.AddAlias("x", a).ok());       // name taken
  EXPECT_FALSE(schema.AddAlias("bad", 999).ok());   // out of range
  ASSERT_TRUE(schema.Finalize().ok());
  EXPECT_EQ(schema.FindAttribute("alias_x"), a);
}

TEST(SchemaTest, FinalizeTwiceFails) {
  Schema schema;
  schema.AddRawAttribute("x", ValueType::kInt32);
  ASSERT_TRUE(schema.Finalize().ok());
  EXPECT_FALSE(schema.Finalize().ok());
}

TEST(SchemaTest, FinalizeEmptyFails) {
  Schema schema;
  EXPECT_FALSE(schema.Finalize().ok());
}

TEST(SchemaTest, FinalizeRejectsBadWindows) {
  {
    Schema schema;
    schema.AddCountGroup("bad", CallFilter::kAny, WindowSpec::Tumbling(0));
    EXPECT_FALSE(schema.Finalize().ok());
  }
  {
    Schema schema;
    WindowSpec w = WindowSpec::Sliding(kMillisPerDay, 6);
    w.num_slots = 0;
    schema.AddCountGroup("bad", CallFilter::kAny, w);
    EXPECT_FALSE(schema.Finalize().ok());
  }
}

TEST(RecordTest, ViewGetSet) {
  auto schema = testing_util::MakeTinySchema();
  RecordBuffer buf(schema.get());
  RecordView rec = buf.view();
  const std::uint16_t id_attr = schema->FindAttribute("entity_id");
  rec.Set(id_attr, Value::UInt64(42));
  EXPECT_EQ(rec.Get(id_attr).u64(), 42u);
  EXPECT_EQ(rec.GetAs<std::uint64_t>(id_attr), 42u);
  rec.SetAs<std::uint64_t>(id_attr, 43);
  EXPECT_EQ(buf.const_view().GetAs<std::uint64_t>(id_attr), 43u);
}

TEST(RecordTest, FreshRecordReadsZero) {
  auto schema = testing_util::MakeTinySchema();
  RecordBuffer buf(schema.get());
  for (std::uint16_t i = 0; i < schema->num_attributes(); ++i) {
    EXPECT_DOUBLE_EQ(buf.const_view().Get(i).AsDouble(), 0.0);
  }
}

TEST(RecordTest, GroupStatePointers) {
  auto schema = testing_util::MakeTinySchema();
  RecordBuffer buf(schema.get());
  RecordView rec = buf.view();
  for (std::uint16_t g = 0; g < schema->num_groups(); ++g) {
    EXPECT_EQ(rec.GroupState(g),
              buf.data() + schema->group(g).state_offset);
  }
}

}  // namespace
}  // namespace aim
