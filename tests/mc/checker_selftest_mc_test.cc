// Self-tests for the aim::mc model checker itself: before trusting the
// checker's verdicts on the delta-swap protocols, prove that it (a) finds
// textbook interleaving bugs, (b) certifies textbook-correct code with a
// complete search, (c) detects deadlocks, (d) respects the preemption
// bound, and (e) is deterministic and replayable — the properties every
// other mc test leans on.

#include <memory>
#include <mutex>

#include <gtest/gtest.h>

#include "aim/mc/checker.h"
#include "aim/mc/shim.h"

namespace aim {
namespace {

// ---------------------------------------------------------------------
// Bug finding: the canonical lost update (load; store) must be found.
// ---------------------------------------------------------------------

mc::Result RunLostUpdate(int preemption_bound) {
  mc::Options opts;
  opts.preemption_bound = preemption_bound;
  return mc::Check(opts, [](mc::Sim& sim) {
    auto counter = std::make_shared<mc::Atomic<int>>(0);
    auto inc = [counter] {
      int v = counter->load();
      counter->store(v + 1);
    };
    sim.Spawn("inc-a", inc);
    sim.Spawn("inc-b", inc);
    sim.OnFinal([counter] {
      mc::McAssert(counter->load() == 2, "lost update: counter != 2");
    });
  });
}

TEST(CheckerSelftest, FindsLostUpdate) {
  mc::Result r = RunLostUpdate(/*preemption_bound=*/2);
  EXPECT_TRUE(r.violation_found) << r.Report();
  EXPECT_NE(r.failure.find("lost update"), std::string::npos) << r.Report();
  EXPECT_FALSE(r.failing_schedule.empty()) << r.Report();
  EXPECT_FALSE(r.trace.empty()) << r.Report();
}

// The lost update needs one preemption (switch away from a thread that
// has loaded but not yet stored). At bound 0 threads only switch when
// they block or finish, so each increment is atomic in effect.
TEST(CheckerSelftest, PreemptionBoundZeroMissesLostUpdate) {
  mc::Result r = RunLostUpdate(/*preemption_bound=*/0);
  EXPECT_TRUE(r.ok()) << r.Report();
  EXPECT_TRUE(r.complete) << r.Report();
}

// ---------------------------------------------------------------------
// Certification: a genuinely atomic increment explores clean + complete.
// ---------------------------------------------------------------------

TEST(CheckerSelftest, CertifiesAtomicIncrement) {
  mc::Options opts;
  opts.preemption_bound = 3;
  mc::Result r = mc::Check(opts, [](mc::Sim& sim) {
    auto counter = std::make_shared<mc::Atomic<int>>(0);
    auto inc = [counter] { counter->fetch_add(1); };
    sim.Spawn("inc-a", inc);
    sim.Spawn("inc-b", inc);
    sim.OnFinal([counter] {
      mc::McAssert(counter->load() == 2, "atomic increment lost");
    });
  });
  EXPECT_TRUE(r.ok()) << r.Report();
  EXPECT_TRUE(r.complete) << r.Report();
  EXPECT_GT(r.executions, 1u) << r.Report();
}

// ---------------------------------------------------------------------
// Deadlock detection: the AB-BA lock-order inversion.
// ---------------------------------------------------------------------

TEST(CheckerSelftest, FindsLockOrderDeadlock) {
  mc::Options opts;
  opts.preemption_bound = 2;
  mc::Result r = mc::Check(opts, [](mc::Sim& sim) {
    struct Locks {
      mc::Mutex a;
      mc::Mutex b;
    };
    auto locks = std::make_shared<Locks>();
    sim.Spawn("ab", [locks] {
      locks->a.lock();
      locks->b.lock();
      locks->b.unlock();
      locks->a.unlock();
    });
    sim.Spawn("ba", [locks] {
      locks->b.lock();
      locks->a.lock();
      locks->a.unlock();
      locks->b.unlock();
    });
  });
  EXPECT_TRUE(r.violation_found) << r.Report();
  EXPECT_NE(r.failure.find("deadlock"), std::string::npos) << r.Report();
}

// ---------------------------------------------------------------------
// Determinism + replay: the backbone of "a failing schedule is a
// re-runnable artifact" (docs/CORRECTNESS.md).
// ---------------------------------------------------------------------

TEST(CheckerSelftest, DeterministicAcrossRuns) {
  mc::Result r1 = RunLostUpdate(2);
  mc::Result r2 = RunLostUpdate(2);
  ASSERT_TRUE(r1.violation_found);
  EXPECT_EQ(r1.failing_schedule, r2.failing_schedule);
  EXPECT_EQ(r1.trace, r2.trace);
  EXPECT_EQ(r1.executions, r2.executions);
}

TEST(CheckerSelftest, ReplayReproducesTheViolation) {
  mc::Result found = RunLostUpdate(2);
  ASSERT_TRUE(found.violation_found);

  mc::Options opts;
  opts.preemption_bound = 2;
  opts.replay = found.failing_schedule;
  mc::Result replayed = mc::Check(opts, [](mc::Sim& sim) {
    auto counter = std::make_shared<mc::Atomic<int>>(0);
    auto inc = [counter] {
      int v = counter->load();
      counter->store(v + 1);
    };
    sim.Spawn("inc-a", inc);
    sim.Spawn("inc-b", inc);
    sim.OnFinal([counter] {
      mc::McAssert(counter->load() == 2, "lost update: counter != 2");
    });
  });
  EXPECT_TRUE(replayed.violation_found) << replayed.Report();
  EXPECT_EQ(replayed.failure, found.failure);
  EXPECT_EQ(replayed.executions, 1u);
}

// ---------------------------------------------------------------------
// Condvar semantics: a notify wakes the waiter; waiting with a predicate
// that can never become true is reported as a deadlock, not a hang.
// ---------------------------------------------------------------------

TEST(CheckerSelftest, CondVarHandoffWorks) {
  mc::Options opts;
  opts.preemption_bound = 2;
  mc::Result r = mc::Check(opts, [](mc::Sim& sim) {
    struct Chan {
      mc::Mutex mu;
      mc::CondVar cv;
      mc::Atomic<int> value{0};
    };
    auto ch = std::make_shared<Chan>();
    sim.Spawn("producer", [ch] {
      std::unique_lock<mc::Mutex> lock(ch->mu);
      ch->value.store(42);
      ch->cv.notify_one();
    });
    sim.Spawn("consumer", [ch] {
      std::unique_lock<mc::Mutex> lock(ch->mu);
      ch->cv.wait(lock, [&] { return ch->value.load() != 0; });
      mc::McAssert(ch->value.load() == 42, "woke without the value");
    });
  });
  EXPECT_TRUE(r.ok()) << r.Report();
  EXPECT_TRUE(r.complete) << r.Report();
}

TEST(CheckerSelftest, MissedWakeupReportedAsDeadlock) {
  mc::Options opts;
  opts.preemption_bound = 2;
  mc::Result r = mc::Check(opts, [](mc::Sim& sim) {
    struct Chan {
      mc::Mutex mu;
      mc::CondVar cv;
      mc::Atomic<int> value{0};
    };
    auto ch = std::make_shared<Chan>();
    // Nobody ever notifies: the consumer's wait can never return.
    sim.Spawn("consumer", [ch] {
      std::unique_lock<mc::Mutex> lock(ch->mu);
      ch->cv.wait(lock, [&] { return ch->value.load() != 0; });
    });
  });
  EXPECT_TRUE(r.violation_found) << r.Report();
  EXPECT_NE(r.failure.find("deadlock"), std::string::npos) << r.Report();
}

}  // namespace
}  // namespace aim
