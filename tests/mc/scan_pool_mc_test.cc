// Exhaustive interleaving checks for ScanTaskBoard — the work-distribution
// protocol of the scan pool — instantiated with the model checker's sync
// provider (the production template, not a re-implementation).
//
// Properties proven over every schedule within the preemption bound:
//   1. every distributed morsel executes exactly once, whether a worker
//      pops it, steals it, or the coordinator grabs it via AcquireJobTask;
//   2. AwaitJob returns only after the final CompleteTask — the
//      coordinator's merge observes every executor's context writes
//      (release fetch_sub / acquire load pairing, including the RMW
//      release sequence when different executors finish in any order);
//   3. the final CompleteTask's notify-under-lock leaves no lost wakeup:
//      a coordinator already blocked in AwaitJob always wakes.

#include <memory>

#include <gtest/gtest.h>

#include "aim/mc/checker.h"
#include "aim/mc/shim.h"
#include "aim/rta/scan_task_board.h"

namespace aim {
namespace {

using ModelBoard = ScanTaskBoard<mc::ModelSyncProvider>;

// ---------------------------------------------------------------------
// Two workers draining one job while the coordinator blocks in AwaitJob.
// Each worker writes its task's result slot *before* CompleteTask; the
// coordinator asserts every slot is visible after AwaitJob returns, with
// relaxed loads — the only ordering is the ticket countdown itself.
// ---------------------------------------------------------------------

TEST(ScanPoolMc, WorkersCompleteJobExactlyOnceBeforeAwaitReturns) {
  mc::Options opts;
  opts.preemption_bound = 2;
  mc::Result r = mc::Check(opts, [](mc::Sim& sim) {
    constexpr std::uint32_t kTasks = 3;
    struct State {
      ModelBoard board{2};
      ModelBoard::JobTicket job;
      mc::Atomic<int> executed[kTasks] = {};
      mc::Atomic<int> result[kTasks] = {};
    };
    auto st = std::make_shared<State>();

    for (std::size_t w = 0; w < 2; ++w) {
      sim.Spawn(w == 0 ? "worker0" : "worker1", [st, w] {
        ModelBoard::Task task;
        while (st->board.AcquireTask(w, &task, nullptr)) {
          // relaxed: exactly-once bookkeeping, checked in OnFinal.
          st->executed[task.seq].fetch_add(1, std::memory_order_relaxed);
          // relaxed: the context write CompleteTask's release publishes.
          st->result[task.seq].store(1 + static_cast<int>(task.seq),
                                     std::memory_order_relaxed);
          st->board.CompleteTask(task.job);
        }
      });
    }
    sim.Spawn("coordinator", [st] {
      st->board.Distribute(&st->job, kTasks);
      st->board.AwaitJob(&st->job);
      // The merge step: every executor's writes must be visible here via
      // the release-sequence of CompleteTask countdowns alone.
      for (std::uint32_t s = 0; s < kTasks; ++s) {
        mc::McAssert(
            st->result[s].load(std::memory_order_relaxed) ==
                1 + static_cast<int>(s),
            "AwaitJob returned before a task's context write was visible");
      }
      st->board.Stop();
    });

    sim.OnFinal([st] {
      for (std::uint32_t s = 0; s < kTasks; ++s) {
        mc::McAssert(st->executed[s].load() == 1,
                     "a morsel executed zero or multiple times");
      }
      mc::McAssert(st->board.queued() == 0, "board drained but tasks remain");
    });
  });
  EXPECT_TRUE(r.ok()) << r.Report();
  EXPECT_TRUE(r.complete) << r.Report();
  EXPECT_GT(r.executions, 1u);
}

// ---------------------------------------------------------------------
// Coordinator-participates shape: one worker and the submitting
// coordinator race to drain the same job, the coordinator via the
// non-blocking job-filtered AcquireJobTask path (which erases from any
// deque — i.e. it steals). Exactly-once must hold across the two acquire
// paths, and AwaitJob must terminate in every schedule — including the
// one where the worker finishes last and the one where the coordinator
// drains everything before the worker ever wakes.
// ---------------------------------------------------------------------

TEST(ScanPoolMc, CoordinatorAndWorkerDrainSameJobExactlyOnce) {
  mc::Options opts;
  opts.preemption_bound = 2;
  mc::Result r = mc::Check(opts, [](mc::Sim& sim) {
    constexpr std::uint32_t kTasks = 2;
    struct State {
      ModelBoard board{1};
      ModelBoard::JobTicket job;
      mc::Atomic<int> executed[kTasks] = {};
    };
    auto st = std::make_shared<State>();

    sim.Spawn("worker", [st] {
      ModelBoard::Task task;
      while (st->board.AcquireTask(0, &task, nullptr)) {
        st->executed[task.seq].fetch_add(1, std::memory_order_relaxed);
        st->board.CompleteTask(task.job);
      }
    });
    sim.Spawn("coordinator", [st] {
      st->board.Distribute(&st->job, kTasks);
      ModelBoard::Task task;
      while (!st->board.JobDone(&st->job)) {
        if (st->board.AcquireJobTask(&st->job, &task)) {
          st->executed[task.seq].fetch_add(1, std::memory_order_relaxed);
          st->board.CompleteTask(&st->job);
        } else {
          st->board.AwaitJob(&st->job);
        }
      }
      st->board.Stop();
    });

    sim.OnFinal([st] {
      for (std::uint32_t s = 0; s < kTasks; ++s) {
        mc::McAssert(st->executed[s].load() == 1,
                     "a morsel executed zero or multiple times");
      }
    });
  });
  EXPECT_TRUE(r.ok()) << r.Report();
  EXPECT_TRUE(r.complete) << r.Report();
}

// ---------------------------------------------------------------------
// Zero-worker board: the coordinator is the entire pool. AcquireJobTask
// must surface every task and AwaitJob must return immediately once the
// coordinator has completed them — with nobody else around to notify,
// any wait here would be a permanent hang the checker flags.
// ---------------------------------------------------------------------

TEST(ScanPoolMc, ZeroWorkerBoardDrainsOnCoordinatorAlone) {
  mc::Options opts;
  opts.preemption_bound = 2;
  mc::Result r = mc::Check(opts, [](mc::Sim& sim) {
    struct State {
      ModelBoard board{0};
      ModelBoard::JobTicket job;
      mc::Atomic<int> drained{0};
    };
    auto st = std::make_shared<State>();

    sim.Spawn("coordinator", [st] {
      st->board.Distribute(&st->job, 2);
      ModelBoard::Task task;
      while (st->board.AcquireJobTask(&st->job, &task)) {
        st->drained.fetch_add(1, std::memory_order_relaxed);
        st->board.CompleteTask(&st->job);
      }
      st->board.AwaitJob(&st->job);  // must not block: counter already 0
      st->board.Stop();
    });

    sim.OnFinal([st] {
      mc::McAssert(st->drained.load() == 2, "zero-worker board lost a task");
    });
  });
  EXPECT_TRUE(r.ok()) << r.Report();
  EXPECT_TRUE(r.complete) << r.Report();
}

}  // namespace
}  // namespace aim
