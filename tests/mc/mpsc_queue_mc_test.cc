// Exhaustive interleaving checks for MpscQueue — the "network" between the
// simulated tiers — instantiated with the model checker's sync provider
// (the production template, not a re-implementation).
//
// The headline property is the push-vs-destroy lifetime rule the class
// comment documents: because every condvar notification happens while the
// mutex is held, a consumer that pops the final message and destroys the
// queue can never catch the producer still inside a notification on the
// freed condvar. The checker proves that for the real class and derives
// the use-after-destroy interleaving for the notify-after-unlock variant
// it would be tempting to "optimize" into.

#include <deque>
#include <memory>
#include <optional>

#include <gtest/gtest.h>

#include "aim/common/mpsc_queue.h"
#include "aim/mc/checker.h"
#include "aim/mc/shim.h"

namespace aim {
namespace {

using ModelQueue = MpscQueue<int, mc::ModelSyncProvider>;

// ---------------------------------------------------------------------
// Push vs pop-then-destroy: the "pop the final reply, then drop the
// queue" pattern the storage-node RPC path uses. The queue lives in an
// optional so the consumer's destruction is an explicit, checked event
// inside the simulation (shared state itself stays alive).
// ---------------------------------------------------------------------

TEST(MpscQueueMc, PushVsPopThenDestroyIsClean) {
  mc::Options opts;
  opts.preemption_bound = 3;
  mc::Result r = mc::Check(opts, [](mc::Sim& sim) {
    struct State {
      std::optional<ModelQueue> queue{std::in_place};
    };
    auto st = std::make_shared<State>();

    sim.Spawn("producer", [st] {
      mc::McAssert(st->queue->Push(1), "push on open queue failed");
    });
    sim.Spawn("consumer", [st] {
      std::optional<int> v = st->queue->Pop();  // blocks until the push
      mc::McAssert(v.has_value() && *v == 1, "lost the final message");
      // Destroy the queue the moment the reply is in hand. Safe only
      // because Push's notify ran under the mutex — the checker would
      // flag any schedule where the producer still touches the queue.
      st->queue.reset();
    });
  });
  EXPECT_TRUE(r.ok()) << r.Report();
  EXPECT_TRUE(r.complete) << r.Report();
  EXPECT_GT(r.executions, 1u);
}

// ---------------------------------------------------------------------
// The tempting "optimization" — notify after unlock (shorter critical
// section, avoids the wake-into-held-mutex hop) — is exactly the variant
// the class comment forbids. Reproduced here as a test-local specimen;
// the checker derives the use-after-destroy schedule mechanically.
// ---------------------------------------------------------------------

// The storage for the queue object outlives the *lifetime* of the queue
// (it sits in an optional inside the shared state), so the racing
// producer's access is observed by the checker as an operation on a
// destroyed shim object rather than as a wild heap access — the same bug
// that on a real heap-allocated queue is a use-after-free inside
// pthread_cond_signal.
struct BadNotifyQueue {
  mc::Mutex mu;
  mc::CondVar not_empty;
  std::deque<int> items;

  void Push(int v) {
    {
      std::lock_guard<mc::Mutex> lock(mu);
      items.push_back(v);
    }
    // BUG under test: by the time this runs, the consumer may have popped
    // the item and destroyed the queue.
    not_empty.notify_one();
  }

  std::optional<int> TryPop() {
    std::lock_guard<mc::Mutex> lock(mu);
    if (items.empty()) return std::nullopt;
    int v = items.front();
    items.pop_front();
    return v;
  }
};

TEST(MpscQueueMc, NotifyAfterUnlockVariantIsRefuted) {
  mc::Options opts;
  opts.preemption_bound = 3;
  mc::Result r = mc::Check(opts, [](mc::Sim& sim) {
    struct State {
      std::optional<BadNotifyQueue> queue{std::in_place};
    };
    auto st = std::make_shared<State>();

    sim.Spawn("producer", [st] { st->queue->Push(1); });
    sim.Spawn("consumer", [st] {
      while (true) {
        std::optional<int> v = st->queue->TryPop();
        if (v.has_value()) {
          mc::McAssert(*v == 1, "lost the final message");
          break;
        }
        mc::SpinPause();
      }
      st->queue.reset();
    });
  });
  EXPECT_TRUE(r.violation_found) << r.Report();
  EXPECT_NE(r.failure.find("destroyed"), std::string::npos) << r.Report();
  EXPECT_FALSE(r.failing_schedule.empty());
}

// ---------------------------------------------------------------------
// Close racing a blocked producer and a draining consumer: no message
// accepted by Push may be lost, no thread may hang on a closed queue.
// ---------------------------------------------------------------------

TEST(MpscQueueMc, CloseRaceLosesNothing) {
  mc::Options opts;
  opts.preemption_bound = 2;
  mc::Result r = mc::Check(opts, [](mc::Sim& sim) {
    struct State {
      ModelQueue queue;
      mc::Atomic<int> accepted{0};
      mc::Atomic<int> drained{0};
    };
    auto st = std::make_shared<State>();

    sim.Spawn("producer", [st] {
      if (st->queue.Push(1)) st->accepted.fetch_add(1);
    });
    sim.Spawn("closer", [st] { st->queue.Close(); });
    sim.Spawn("consumer", [st] {
      while (st->queue.Pop().has_value()) st->drained.fetch_add(1);
    });

    sim.OnFinal([st] {
      mc::McAssert(st->accepted.load() == st->drained.load(),
                   "accepted message lost (or phantom message drained)");
    });
  });
  EXPECT_TRUE(r.ok()) << r.Report();
  EXPECT_TRUE(r.complete) << r.Report();
}

}  // namespace
}  // namespace aim
