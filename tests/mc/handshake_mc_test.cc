// Exhaustive interleaving checks for the delta-switch writer-quiescence
// handshake — the protocol at the heart of the paper's Algorithm 6/7
// (Appendix A). Three claims, each proved mechanically:
//
//   1. The production epoch-tagged SwapHandshake admits *no* schedule (up
//      to the preemption bound) in which the coordinator's exclusive
//      action runs while the writer is inside a write section, never
//      deadlocks, and never loses an acknowledgement.
//   2. The seed's two-boolean protocol (the paper's literal reading,
//      preserved in legacy_boolean_handshake.h) is refuted: the checker
//      derives its dangling-acknowledgement interleaving and prints it as
//      a concrete, replayable trace.
//   3. The protocol composed with real component code (BasicDenseMap
//      deltas) preserves Put-vs-SwitchDeltas visibility and merge-epoch
//      monotonicity.
//
// These instantiate the exact production templates with the model
// checker's sync provider — not a re-implementation of the protocol.

#include <cstdint>
#include <memory>

#include <gtest/gtest.h>

#include "aim/mc/checker.h"
#include "aim/mc/shim.h"
#include "aim/storage/dense_map.h"
#include "aim/storage/swap_handshake.h"
#include "mc/legacy_boolean_handshake.h"

namespace aim {
namespace {

// ---------------------------------------------------------------------
// The common scenario: a writer alternating checkpoints and write
// sections, a coordinator running rounds of an exclusive action that
// asserts the writer is parked. `Handshake` is either the production
// SwapHandshake or the legacy boolean specimen — same interface.
// ---------------------------------------------------------------------

template <typename Handshake>
mc::Result RunSwapVsCheckpoint(int preemption_bound,
                               const std::string& replay = "") {
  mc::Options opts;
  opts.preemption_bound = preemption_bound;
  opts.replay = replay;
  return mc::Check(opts, [](mc::Sim& sim) {
    struct State {
      Handshake handshake;
      mc::Atomic<int> writing{0};
    };
    auto st = std::make_shared<State>();
    st->handshake.set_writer_attached(true);

    sim.Spawn("esp-writer", [st] {
      for (int i = 0; i < 2; ++i) {
        st->handshake.WriterCheckpoint();
        st->writing.store(1);
        mc::Note("writer inside write section");
        st->writing.store(0);
      }
      // Production shutdown order: the ESP loop detaches when it exits, so
      // a coordinator round that starts after the last checkpoint can
      // escape its wait instead of deadlocking.
      st->handshake.set_writer_attached(false);
    });

    sim.Spawn("rta-coordinator", [st] {
      for (int round = 0; round < 2; ++round) {
        st->handshake.RunExclusive([&] {
          mc::Note("exclusive action runs");
          mc::McAssert(st->writing.load() == 0,
                       "swap against an unparked writer");
        });
      }
    });

    sim.OnFinal([st] {
      mc::McAssert(st->writing.load() == 0, "writer left its write section open");
    });
  });
}

// Claim 1: the production protocol is clean — and the search *completed*,
// i.e. every schedule within the bound was examined, none violated, none
// deadlocked (a lost ack would park the coordinator forever and be
// reported as a deadlock).
TEST(SwapHandshakeMc, ExclusiveActionNeverRacesWriterAtBound2) {
  mc::Result r =
      RunSwapVsCheckpoint<SwapHandshake<mc::ModelSyncProvider>>(2);
  EXPECT_TRUE(r.ok()) << r.Report();
  EXPECT_TRUE(r.complete) << r.Report();
  EXPECT_GT(r.executions, 1u);
}

// The legacy bug needs 3 preemptions; show the epoch protocol stays clean
// at the bound that kills the boolean one.
TEST(SwapHandshakeMc, ExclusiveActionNeverRacesWriterAtBound3) {
  mc::Result r =
      RunSwapVsCheckpoint<SwapHandshake<mc::ModelSyncProvider>>(3);
  EXPECT_TRUE(r.ok()) << r.Report();
  EXPECT_TRUE(r.complete) << r.Report();
}

// Claim 2: the boolean protocol's dangling acknowledgement is found. The
// interleaving: round k parks the writer; the coordinator clears
// esp_waiting_ but is preempted before clearing rta_ready_; the writer
// re-raises esp_waiting_ against the still-set rta_ready_ and parks; the
// coordinator finishes the teardown; the writer wakes, sees ready down,
// and walks into a write section — leaving esp_waiting_ dangling. Round
// k+1 sees the stale flag, skips its wait, and races the writer.
TEST(LegacyBooleanHandshakeMc, DanglingAckRefutedAtBound3) {
  mc::Result r = RunSwapVsCheckpoint<
      mc_tests::LegacyBooleanHandshake<mc::ModelSyncProvider>>(3);
  EXPECT_TRUE(r.violation_found) << r.Report();
  EXPECT_NE(r.failure.find("unparked writer"), std::string::npos)
      << r.Report();
  EXPECT_FALSE(r.failing_schedule.empty());
  // The trace is a concrete interleaving: it must show the write section
  // and the exclusive action overlapping.
  EXPECT_NE(r.trace.find("writer inside write section"), std::string::npos)
      << r.trace;
  EXPECT_NE(r.trace.find("exclusive action runs"), std::string::npos)
      << r.trace;
}

// The refutation is deterministic (same schedule, trace, and search size
// on every run) and the failing schedule replays to the same violation —
// the properties that make the trace a debugging artifact.
TEST(LegacyBooleanHandshakeMc, RefutationIsDeterministicAndReplayable) {
  using Legacy = mc_tests::LegacyBooleanHandshake<mc::ModelSyncProvider>;
  mc::Result r1 = RunSwapVsCheckpoint<Legacy>(3);
  mc::Result r2 = RunSwapVsCheckpoint<Legacy>(3);
  ASSERT_TRUE(r1.violation_found) << r1.Report();
  EXPECT_EQ(r1.failing_schedule, r2.failing_schedule);
  EXPECT_EQ(r1.trace, r2.trace);
  EXPECT_EQ(r1.executions, r2.executions);

  mc::Result replayed =
      RunSwapVsCheckpoint<Legacy>(3, /*replay=*/r1.failing_schedule);
  EXPECT_TRUE(replayed.violation_found) << replayed.Report();
  EXPECT_EQ(replayed.failure, r1.failure);
  EXPECT_EQ(replayed.executions, 1u);
}

// Sanity for the bound itself: at bound 2 the boolean protocol's bug is
// out of reach (it needs 3 switches away from enabled threads), so the
// search must complete clean — evidence the checker is actually bounding
// preemptions rather than exploring everything.
TEST(LegacyBooleanHandshakeMc, BugNeedsThreePreemptions) {
  mc::Result r = RunSwapVsCheckpoint<
      mc_tests::LegacyBooleanHandshake<mc::ModelSyncProvider>>(2);
  EXPECT_TRUE(r.ok()) << r.Report();
  EXPECT_TRUE(r.complete) << r.Report();
}

// Shutdown path: a coordinator round that starts when the writer has
// detached (or detaches mid-wait) must run its action without deadlock.
TEST(SwapHandshakeMc, DetachedWriterNeverBlocksCoordinator) {
  mc::Options opts;
  opts.preemption_bound = 3;
  mc::Result r = mc::Check(opts, [](mc::Sim& sim) {
    struct State {
      SwapHandshake<mc::ModelSyncProvider> handshake;
      mc::Atomic<int> actions{0};
    };
    auto st = std::make_shared<State>();
    st->handshake.set_writer_attached(true);

    // The writer detaches without ever checkpointing: every coordinator
    // round must escape via the attached check.
    sim.Spawn("esp-writer", [st] {
      st->handshake.set_writer_attached(false);
    });
    sim.Spawn("rta-coordinator", [st] {
      st->handshake.RunExclusive([&] { st->actions.fetch_add(1); });
      st->handshake.RunExclusive([&] { st->actions.fetch_add(1); });
    });
    sim.OnFinal([st] {
      mc::McAssert(st->actions.load() == 2, "exclusive action lost");
    });
  });
  EXPECT_TRUE(r.ok()) << r.Report();
  EXPECT_TRUE(r.complete) << r.Report();
}

// ---------------------------------------------------------------------
// Claim 3a: Put-vs-SwitchDeltas visibility, with the production
// BasicDenseMap as the delta index. The writer's Put lands in whichever
// delta is active *at the Put*, the swap can never interleave mid-Put
// (the handshake parks the writer across the swap), and after the merge
// drains the frozen delta the entity is visible in exactly one place.
// ---------------------------------------------------------------------

TEST(DeltaSwitchMc, PutVsSwitchVisibility) {
  mc::Options opts;
  opts.preemption_bound = 2;
  mc::Result r = mc::Check(opts, [](mc::Sim& sim) {
    struct State {
      SwapHandshake<mc::ModelSyncProvider> handshake;
      mc::Atomic<std::uint32_t> active_idx{0};
      BasicDenseMap<mc::ModelSyncProvider> deltas[2]{
          BasicDenseMap<mc::ModelSyncProvider>(4),
          BasicDenseMap<mc::ModelSyncProvider>(4)};
      mc::Atomic<std::uint32_t> main_image{0};  // merged value of entity 7
    };
    auto st = std::make_shared<State>();
    st->handshake.set_writer_attached(true);

    sim.Spawn("esp-writer", [st] {
      st->handshake.WriterCheckpoint();
      // Algorithm 4: write to the active delta. The handshake guarantees
      // the swap cannot run between this index read and the Upsert.
      st->deltas[st->active_idx.load()].Upsert(7, 1);
      st->handshake.WriterCheckpoint();
      // Algorithm 3 visibility: active delta, then frozen, then main.
      std::uint32_t v = st->deltas[st->active_idx.load()].Find(7);
      if (v == DenseMap::kNotFound) {
        v = st->deltas[1 - st->active_idx.load()].Find(7);
      }
      if (v == DenseMap::kNotFound) v = st->main_image.load();
      mc::McAssert(v == 1, "Put invisible to its own writer");
      st->handshake.set_writer_attached(false);
    });

    sim.Spawn("rta-merger", [st] {
      st->handshake.RunExclusive([&] {
        const std::uint32_t cur = st->active_idx.load();
        st->active_idx.store(1 - cur);
      });
      // Merge runs *outside* the exclusive window, concurrently with the
      // writer — exactly as MergeStep does in production.
      BasicDenseMap<mc::ModelSyncProvider>& frozen =
          st->deltas[1 - st->active_idx.load()];
      const std::uint32_t v = frozen.Find(7);
      if (v != DenseMap::kNotFound) st->main_image.store(v);
      frozen.Clear();
    });

    sim.OnFinal([st] {
      const std::uint32_t active = st->active_idx.load();
      int places = 0;
      if (st->deltas[active].Find(7) != DenseMap::kNotFound) ++places;
      if (st->deltas[1 - active].Find(7) != DenseMap::kNotFound) ++places;
      if (st->main_image.load() != 0) ++places;
      mc::McAssert(places == 1, "entity must be visible in exactly one place");
    });
  });
  EXPECT_TRUE(r.ok()) << r.Report();
  EXPECT_TRUE(r.complete) << r.Report();
}

// ---------------------------------------------------------------------
// Claim 3b: merge-epoch monotonicity — the merging_/merge_epoch_
// publication order as MergeStep performs it, observed concurrently.
// ---------------------------------------------------------------------

TEST(DeltaSwitchMc, MergeEpochMonotone) {
  mc::Options opts;
  opts.preemption_bound = 3;
  mc::Result r = mc::Check(opts, [](mc::Sim& sim) {
    struct State {
      mc::Atomic<int> merging{0};
      mc::Atomic<std::uint64_t> merge_epoch{0};
    };
    auto st = std::make_shared<State>();

    sim.Spawn("rta-merger", [st] {
      for (int i = 0; i < 2; ++i) {
        st->merging.store(1);           // SwitchDeltas
        st->merge_epoch.fetch_add(1);   // MergeStep: count first,
        st->merging.store(0);           // then publish completion
      }
    });
    sim.Spawn("observer", [st] {
      std::uint64_t prev = st->merge_epoch.load();
      for (int i = 0; i < 2; ++i) {
        const std::uint64_t e = st->merge_epoch.load();
        mc::McAssert(e >= prev, "merge epoch regressed");
        // Completion implies the epoch already counts this merge: seeing
        // merging==0 after epoch e means a later read can't be < e.
        prev = e;
      }
    });
    sim.OnFinal([st] {
      mc::McAssert(st->merge_epoch.load() == 2, "merge count lost");
      mc::McAssert(st->merging.load() == 0, "merge left open");
    });
  });
  EXPECT_TRUE(r.ok()) << r.Report();
  EXPECT_TRUE(r.complete) << r.Report();
}

}  // namespace
}  // namespace aim
