// Exhaustive interleaving checks for BasicDenseMap's reader-vs-writer
// contract and its table-retirement publication protocol (the part the
// sync-provider parameter exists for): concurrent Finds against a growing
// table are always safe, retired tables may only be reclaimed under the
// swap handshake's quiescent window, and reclaiming without quiescence is
// a detectable use-after-destroy.

#include <cstdint>
#include <memory>
#include <optional>

#include <gtest/gtest.h>

#include "aim/mc/checker.h"
#include "aim/mc/shim.h"
#include "aim/storage/dense_map.h"
#include "aim/storage/swap_handshake.h"

namespace aim {
namespace {

using ModelMap = BasicDenseMap<mc::ModelSyncProvider>;

// A reader probing for an established key while the writer upserts enough
// to trigger growth (capacity 4 -> 8, retiring the old table): the key
// must stay findable through the table swap, and nothing may touch freed
// memory as long as the retired table is merely *retired* (not reclaimed).
TEST(DenseMapMc, FindVsGrowthKeepsEstablishedKeysVisible) {
  mc::Options opts;
  opts.preemption_bound = 2;
  mc::Result r = mc::Check(opts, [](mc::Sim& sim) {
    auto map = std::make_shared<ModelMap>(4);
    map->Upsert(1, 11);  // established before the threads start

    sim.Spawn("writer", [map] {
      map->Upsert(2, 22);
      map->Upsert(3, 33);  // crosses the load factor: grows + retires
    });
    sim.Spawn("reader", [map] {
      mc::McAssert(map->Find(1) == 11, "established key lost during growth");
    });

    sim.OnFinal([map] {
      mc::McAssert(map->Find(1) == 11 && map->Find(2) == 22 &&
                       map->Find(3) == 33,
                   "upserted keys lost after growth");
      mc::McAssert(map->retired_tables() == 1, "growth must retire a table");
    });
  });
  EXPECT_TRUE(r.ok()) << r.Report();
  EXPECT_TRUE(r.complete) << r.Report();
  EXPECT_GT(r.executions, 1u);
}

// The production reclamation pattern: the single map writer (the ESP
// thread, for a delta index) grows the table between checkpoints; the
// coordinator reclaims retired tables only inside the handshake's
// exclusive window, when the writer is parked. Clean and complete.
TEST(DenseMapMc, ReclaimUnderHandshakeQuiescenceIsClean) {
  mc::Options opts;
  opts.preemption_bound = 2;
  mc::Result r = mc::Check(opts, [](mc::Sim& sim) {
    struct State {
      SwapHandshake<mc::ModelSyncProvider> handshake;
      ModelMap map{4};
    };
    auto st = std::make_shared<State>();
    st->handshake.set_writer_attached(true);
    st->map.Upsert(1, 11);

    sim.Spawn("esp-writer", [st] {
      st->handshake.WriterCheckpoint();
      st->map.Upsert(2, 22);
      st->map.Upsert(3, 33);  // grows + retires the 4-slot table
      st->handshake.WriterCheckpoint();
      mc::McAssert(st->map.Find(1) == 11, "key lost across reclaim");
      st->handshake.set_writer_attached(false);
    });
    sim.Spawn("rta-coordinator", [st] {
      st->handshake.RunExclusive([&] { st->map.ReclaimRetired(); });
    });

    sim.OnFinal([st] {
      mc::McAssert(st->map.Find(3) == 33, "upsert lost");
    });
  });
  EXPECT_TRUE(r.ok()) << r.Report();
  EXPECT_TRUE(r.complete) << r.Report();
}

// Reclaiming *without* quiescing readers is the bug the contract forbids.
// Modeled with the checker's shim objects standing in for the old table's
// slots: a real BasicDenseMap reclaim frees the Table from the heap, so a
// racing probe would be a wild read in this very test process before the
// checker could observe it. Here the slot object's storage outlives its
// (checked) lifetime — it sits in an optional whose reset() models the
// free — so the racing reader's probe surfaces as an operation on a
// destroyed object, which is exactly how the real bug would read under
// ASan. The probe sequence is DenseMap::Find's: load the active-table
// pointer, then probe a slot of whichever table that returned.
TEST(DenseMapMc, ReclaimWithoutQuiescenceIsRefuted) {
  mc::Options opts;
  opts.preemption_bound = 2;
  mc::Result r = mc::Check(opts, [](mc::Sim& sim) {
    struct State {
      mc::Atomic<int> active_table{0};  // 0 = old, 1 = new
      std::optional<mc::Atomic<std::uint64_t>> old_slot{std::in_place, 11};
      mc::Atomic<std::uint64_t> new_slot{11};
    };
    auto st = std::make_shared<State>();

    sim.Spawn("reader", [st] {
      // Find(): take the table pointer...
      mc::Atomic<std::uint64_t>* old_slot = &*st->old_slot;
      const int t = st->active_table.load();
      // ...then probe it. Between the two steps the writer may have
      // published the new table *and reclaimed the old one*.
      const std::uint64_t v =
          (t == 0) ? old_slot->load() : st->new_slot.load();
      mc::McAssert(v == 11, "established key lost");
    });
    sim.Spawn("writer", [st] {
      st->active_table.store(1);  // growth publishes the new table
      st->old_slot.reset();       // ReclaimRetired() with no handshake
    });
  });
  EXPECT_TRUE(r.violation_found) << r.Report();
  EXPECT_NE(r.failure.find("destroyed"), std::string::npos) << r.Report();
  EXPECT_FALSE(r.failing_schedule.empty());
}

}  // namespace
}  // namespace aim
