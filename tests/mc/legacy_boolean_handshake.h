#ifndef AIM_TESTS_MC_LEGACY_BOOLEAN_HANDSHAKE_H_
#define AIM_TESTS_MC_LEGACY_BOOLEAN_HANDSHAKE_H_

#include <atomic>

#include "aim/common/sync_provider.h"

namespace aim {
namespace mc_tests {

/// The two-boolean delta-switch handshake exactly as this repo's seed
/// implemented it (and as the paper's Algorithms 6/7 literally read),
/// preserved as a model-checking specimen behind the same sync-provider
/// template and interface as the production SwapHandshake.
///
/// It carries a genuine interleaving bug — the *dangling acknowledgement*:
/// a parked writer that re-raises `esp_waiting_` after the coordinator has
/// cleared it (but before `rta_ready_` comes down) leaves the flag set
/// with nobody parked behind it. The next RunExclusive round then observes
/// the stale flag, skips its wait, and runs the action against a running
/// writer. Note this is a sequentially-consistent interleaving bug: every
/// access below is seq_cst/acquire and the protocol is still wrong.
/// tests/mc/handshake_mc_test.cc makes the checker derive the interleaving
/// mechanically (it needs 3 preemptions); the epoch-tagged SwapHandshake
/// fixes it by making every acknowledgement name the round it answers.
template <typename P = RealSyncProvider>
class LegacyBooleanHandshake {
 public:
  LegacyBooleanHandshake() = default;
  LegacyBooleanHandshake(const LegacyBooleanHandshake&) = delete;
  LegacyBooleanHandshake& operator=(const LegacyBooleanHandshake&) = delete;

  /// Writer side: raise the waiting flag and park while a round is on.
  void WriterCheckpoint() {
    int spins = 0;
    while (rta_ready_.load(std::memory_order_acquire)) {
      // seq_cst: faithful to the seed protocol this specimen preserves
      // (which leaned on a total store/load order — and is buggy anyway).
      esp_waiting_.store(true, std::memory_order_seq_cst);
      P::Pause(++spins);
    }
  }

  void set_writer_attached(bool attached) {
    writer_attached_.store(attached, std::memory_order_release);
  }

  bool writer_attached() const {
    return writer_attached_.load(std::memory_order_acquire);
  }

  /// Coordinator side: announce, wait for the waiting flag, act, tear both
  /// flags down. The teardown window is where the bug lives.
  template <typename Action>
  void RunExclusive(Action&& action) {
    if (!writer_attached()) {
      action();
      return;
    }
    // seq_cst: faithful to the seed protocol (see WriterCheckpoint).
    rta_ready_.store(true, std::memory_order_seq_cst);
    int spins = 0;
    while (!esp_waiting_.load(std::memory_order_acquire)) {
      if (!writer_attached()) break;
      P::Pause(++spins);
    }
    action();
    // seq_cst: faithful to the seed protocol (see WriterCheckpoint).
    esp_waiting_.store(false, std::memory_order_seq_cst);
    rta_ready_.store(false, std::memory_order_seq_cst);
  }

 private:
  typename P::template Atomic<bool> rta_ready_{false};
  typename P::template Atomic<bool> esp_waiting_{false};
  typename P::AtomicBool writer_attached_{false};
};

}  // namespace mc_tests
}  // namespace aim

#endif  // AIM_TESTS_MC_LEGACY_BOOLEAN_HANDSHAKE_H_
