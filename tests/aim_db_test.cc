#include <gtest/gtest.h>

#include "aim/server/aim_db.h"
#include "aim/workload/benchmark_schema.h"
#include "aim/workload/cdr_generator.h"
#include "aim/workload/dimension_data.h"
#include "aim/workload/query_workload.h"
#include "aim/workload/rules_generator.h"
#include "test_util.h"

namespace aim {
namespace {

class AimDbTest : public ::testing::Test {
 protected:
  AimDbTest()
      : schema_(MakeCompactSchema()), dims_(MakeBenchmarkDims()) {
    rules_ = MakePaperTable2Rules(*schema_);
    AimDb::Options opts;
    opts.bucket_size = 64;
    opts.max_records = 1 << 14;
    db_ = std::make_unique<AimDb>(schema_.get(), &dims_.catalog, &rules_,
                                  opts);
  }

  void LoadEntities(std::uint64_t n) {
    std::vector<std::uint8_t> row(schema_->record_size(), 0);
    for (EntityId e = 1; e <= n; ++e) {
      std::fill(row.begin(), row.end(), 0);
      PopulateEntityProfile(*schema_, dims_, e, n, row.data());
      ASSERT_TRUE(db_->LoadEntity(e, row.data()).ok());
    }
  }

  std::unique_ptr<Schema> schema_;
  BenchmarkDims dims_;
  std::vector<Rule> rules_;
  std::unique_ptr<AimDb> db_;
};

TEST_F(AimDbTest, EndToEndEventThenQuery) {
  LoadEntities(100);
  CdrGenerator::Options gopts;
  gopts.num_entities = 100;
  CdrGenerator gen(gopts);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(db_->ProcessEvent(gen.Next(1000 + i)).ok());
  }

  // Total calls today must equal the number of events (all within one day).
  Query q = *QueryBuilder(schema_.get())
                 .Select(AggOp::kSum, "number_of_calls_today")
                 .Build();
  QueryResult r = db_->Execute(q);
  ASSERT_TRUE(r.status.ok());
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(r.rows[0].values[0], 1000.0);
}

TEST_F(AimDbTest, SumOfDurationsMatchesGeneratedEvents) {
  LoadEntities(50);
  CdrGenerator::Options gopts;
  gopts.num_entities = 50;
  CdrGenerator gen(gopts);
  double total_duration = 0;
  for (int i = 0; i < 500; ++i) {
    Event e = gen.Next(5000 + i);
    total_duration += e.duration;
    ASSERT_TRUE(db_->ProcessEvent(e).ok());
  }
  Query q = *QueryBuilder(schema_.get())
                 .Select(AggOp::kSum, "duration_today_sum")
                 .Build();
  QueryResult r = db_->Execute(q);
  EXPECT_NEAR(r.rows[0].values[0], total_duration,
              1e-4 * (1 + total_duration));
}

TEST_F(AimDbTest, GetAttributePointLookup) {
  LoadEntities(10);
  Event e;
  e.caller = 7;
  e.callee = 1;
  e.timestamp = 100;
  e.duration = 42;
  ASSERT_TRUE(db_->ProcessEvent(e).ok());
  StatusOr<Value> v = db_->GetAttribute(7, "duration_today_sum");
  ASSERT_TRUE(v.ok());
  EXPECT_FLOAT_EQ(v->f32(), 42.0f);
  EXPECT_FALSE(db_->GetAttribute(7, "no_attr").ok());
  EXPECT_TRUE(db_->GetAttribute(9999, "duration_today_sum")
                  .status()
                  .IsNotFound());
}

TEST_F(AimDbTest, BatchExecutionMatchesIndividual) {
  LoadEntities(200);
  CdrGenerator::Options gopts;
  gopts.num_entities = 200;
  CdrGenerator gen(gopts);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(db_->ProcessEvent(gen.Next(1000 + i)).ok());
  }

  std::vector<Query> queries;
  queries.push_back(*QueryBuilder(schema_.get())
                         .Select(AggOp::kAvg, "total_duration_this_week")
                         .Where("number_of_local_calls_this_week", CmpOp::kGt,
                                Value::Int32(1))
                         .Build());
  queries.push_back(*QueryBuilder(schema_.get())
                         .SelectSumRatio("total_cost_this_week",
                                         "total_duration_this_week")
                         .GroupByAttr("number_of_calls_this_week")
                         .Limit(100)
                         .Build());
  queries.push_back(*QueryBuilder(schema_.get())
                         .TopK("cost_this_week_max", false, 3)
                         .WithEntityAttr("entity_id")
                         .Build());

  const std::vector<QueryResult> batch = db_->ExecuteBatch(queries);
  ASSERT_EQ(batch.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const QueryResult solo = db_->Execute(queries[i]);
    ASSERT_EQ(batch[i].rows.size(), solo.rows.size());
    for (std::size_t r = 0; r < solo.rows.size(); ++r) {
      for (std::size_t v = 0; v < solo.rows[r].values.size(); ++v) {
        EXPECT_DOUBLE_EQ(batch[i].rows[r].values[v], solo.rows[r].values[v]);
      }
    }
    ASSERT_EQ(batch[i].topk.size(), solo.topk.size());
    for (std::size_t t = 0; t < solo.topk.size(); ++t) {
      ASSERT_EQ(batch[i].topk[t].size(), solo.topk[t].size());
      for (std::size_t k = 0; k < solo.topk[t].size(); ++k) {
        EXPECT_DOUBLE_EQ(batch[i].topk[t][k].value, solo.topk[t][k].value);
      }
    }
  }
}

TEST_F(AimDbTest, RulesFireThroughFacade) {
  LoadEntities(5);
  // Rule 2 (phone misuse): > 30 calls today with avg duration < 10s.
  std::vector<std::uint32_t> fired;
  Event e;
  e.caller = 1;
  e.callee = 2;
  e.duration = 3;
  bool fired_once = false;
  for (int i = 0; i < 40; ++i) {
    e.timestamp = 1000 + i;
    ASSERT_TRUE(db_->ProcessEvent(e, &fired).ok());
    if (!fired.empty()) fired_once = true;
  }
  EXPECT_TRUE(fired_once);
}

TEST_F(AimDbTest, InvalidQueryReportsStatus) {
  LoadEntities(5);
  Query bad;
  bad.id = 77;
  bad.select.push_back(SelectItem::Agg(AggOp::kSum, 9999));
  QueryResult r = db_->Execute(bad);
  EXPECT_FALSE(r.status.ok());
  EXPECT_EQ(r.query_id, 77u);
}

TEST_F(AimDbTest, MergeBeforeQueryGivesFreshness) {
  LoadEntities(5);
  Event e;
  e.caller = 1;
  e.callee = 2;
  e.timestamp = 50;
  e.duration = 10;
  ASSERT_TRUE(db_->ProcessEvent(e).ok());
  // merge_before_query=true (default): the event is visible immediately.
  Query q = *QueryBuilder(schema_.get())
                 .Select(AggOp::kSum, "number_of_calls_today")
                 .Build();
  EXPECT_DOUBLE_EQ(db_->Execute(q).rows[0].values[0], 1.0);
}

TEST(AimDbFreshnessTest, WithoutMergeQueriesSeeSnapshot) {
  auto schema = MakeCompactSchema();
  AimDb::Options opts;
  opts.merge_before_query = false;
  opts.bucket_size = 16;
  opts.max_records = 256;
  AimDb db(schema.get(), nullptr, nullptr, opts);

  std::vector<std::uint8_t> row(schema->record_size(), 0);
  RecordView(schema.get(), row.data())
      .SetAs<std::uint64_t>(schema->FindAttribute("entity_id"), 1);
  ASSERT_TRUE(db.LoadEntity(1, row.data()).ok());

  Event e;
  e.caller = 1;
  e.timestamp = 10;
  e.duration = 5;
  ASSERT_TRUE(db.ProcessEvent(e).ok());

  Query q = *QueryBuilder(schema.get())
                 .Select(AggOp::kSum, "number_of_calls_today")
                 .Build();
  // Event still buffered in the delta: the scan does not see it.
  EXPECT_DOUBLE_EQ(db.Execute(q).rows[0].values[0], 0.0);
  db.Merge();
  EXPECT_DOUBLE_EQ(db.Execute(q).rows[0].values[0], 1.0);
}

}  // namespace
}  // namespace aim
