#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <thread>

#include <gtest/gtest.h>

#include "aim/storage/checkpoint.h"
#include "aim/storage/fs_util.h"
#include "test_util.h"

namespace aim {
namespace {

using testing_util::FillRandomRow;
using testing_util::MakeTinySchema;

class CheckpointTest : public ::testing::Test {
 protected:
  CheckpointTest() : schema_(MakeTinySchema()) {
    entity_attr_ = schema_->FindAttribute("entity_id");
    store_ = MakeStore();
  }

  std::unique_ptr<DeltaMainStore> MakeStore() {
    DeltaMainStore::Options opts;
    opts.bucket_size = 16;
    opts.max_records = 1024;
    return std::make_unique<DeltaMainStore>(schema_.get(), opts);
  }

  void Populate(int n, bool leave_delta_dirty) {
    std::vector<std::uint8_t> row(schema_->record_size());
    for (EntityId e = 1; e <= static_cast<EntityId>(n); ++e) {
      FillRandomRow(*schema_, &rng_, row.data());
      RecordView(schema_.get(), row.data())
          .SetAs<std::uint64_t>(entity_attr_, e);
      ASSERT_TRUE(store_->BulkInsert(e, row.data()).ok());
    }
    // Update a few through the delta; optionally keep them unmerged so the
    // checkpoint has to read through the delta.
    for (EntityId e = 1; e <= 5; ++e) {
      Version v = 0;
      ASSERT_TRUE(store_->Get(e, row.data(), &v).ok());
      RecordView(schema_.get(), row.data())
          .Set(schema_->FindAttribute("calls_today"),
               Value::Int32(static_cast<std::int32_t>(e * 11)));
      ASSERT_TRUE(store_->Put(e, row.data(), v).ok());
    }
    // A brand-new entity only in the delta.
    FillRandomRow(*schema_, &rng_, row.data());
    RecordView(schema_.get(), row.data())
        .SetAs<std::uint64_t>(entity_attr_, 999);
    ASSERT_TRUE(store_->Insert(999, row.data()).ok());
    if (!leave_delta_dirty) store_->Merge();
  }

  void ExpectStoresEqual(DeltaMainStore* a, DeltaMainStore* b, int n) {
    std::vector<std::uint8_t> ra(schema_->record_size());
    std::vector<std::uint8_t> rb(schema_->record_size());
    for (EntityId e = 1; e <= static_cast<EntityId>(n); ++e) {
      Version va = 0, vb = 0;
      ASSERT_TRUE(a->Get(e, ra.data(), &va).ok()) << e;
      ASSERT_TRUE(b->Get(e, rb.data(), &vb).ok()) << e;
      EXPECT_EQ(va, vb) << e;
      EXPECT_EQ(std::memcmp(ra.data(), rb.data(), ra.size()), 0) << e;
    }
    Version v9 = 0;
    ASSERT_TRUE(a->Get(999, ra.data(), &v9).ok());
    ASSERT_TRUE(b->Get(999, rb.data(), &v9).ok());
    EXPECT_EQ(std::memcmp(ra.data(), rb.data(), ra.size()), 0);
  }

  std::unique_ptr<Schema> schema_;
  std::uint16_t entity_attr_;
  std::unique_ptr<DeltaMainStore> store_;
  Random rng_{21};
};

TEST_F(CheckpointTest, RoundTripMergedStore) {
  Populate(50, /*leave_delta_dirty=*/false);
  BinaryWriter writer;
  ASSERT_TRUE(checkpoint::Write(*store_, entity_attr_, &writer).ok());

  auto restored = MakeStore();
  BinaryReader reader(writer.buffer());
  ASSERT_TRUE(checkpoint::Restore(&reader, restored.get()).ok());
  EXPECT_EQ(restored->main_records(), store_->main_records());
  ExpectStoresEqual(store_.get(), restored.get(), 50);
}

TEST_F(CheckpointTest, RoundTripWithDirtyDelta) {
  // The checkpoint captures the *visible* state: delta images shadow main.
  Populate(30, /*leave_delta_dirty=*/true);
  EXPECT_GT(store_->delta_size(), 0u);

  BinaryWriter writer;
  ASSERT_TRUE(checkpoint::Write(*store_, entity_attr_, &writer).ok());
  auto restored = MakeStore();
  BinaryReader reader(writer.buffer());
  ASSERT_TRUE(checkpoint::Restore(&reader, restored.get()).ok());
  ExpectStoresEqual(store_.get(), restored.get(), 30);
  // Restored state is fully merged (all in main).
  EXPECT_EQ(restored->delta_size(), 0u);
  EXPECT_EQ(restored->main_records(), 31u);  // 30 + entity 999
}

TEST_F(CheckpointTest, RestoreRejectsNonEmptyStore) {
  Populate(5, false);
  BinaryWriter writer;
  ASSERT_TRUE(checkpoint::Write(*store_, entity_attr_, &writer).ok());
  BinaryReader reader(writer.buffer());
  EXPECT_TRUE(checkpoint::Restore(&reader, store_.get()).IsConflict());
}

TEST_F(CheckpointTest, RestoreRejectsCorruptHeader) {
  auto restored = MakeStore();
  std::vector<std::uint8_t> garbage = {'X', 'X', 'X'};
  BinaryReader reader(garbage);
  EXPECT_TRUE(
      checkpoint::Restore(&reader, restored.get()).IsInvalidArgument());
}

TEST_F(CheckpointTest, RestoreRejectsTruncatedPayload) {
  Populate(10, false);
  BinaryWriter writer;
  ASSERT_TRUE(checkpoint::Write(*store_, entity_attr_, &writer).ok());
  auto restored = MakeStore();
  BinaryReader reader(writer.buffer().data(), writer.size() - 17);
  EXPECT_TRUE(
      checkpoint::Restore(&reader, restored.get()).IsInvalidArgument());
}

TEST_F(CheckpointTest, FileRoundTrip) {
  Populate(20, false);
  const std::string path = ::testing::TempDir() + "/aim_ckpt_test.bin";
  ASSERT_TRUE(checkpoint::WriteToFile(*store_, entity_attr_, path).ok());
  auto restored = MakeStore();
  ASSERT_TRUE(checkpoint::RestoreFromFile(path, restored.get()).ok());
  ExpectStoresEqual(store_.get(), restored.get(), 20);
  std::remove(path.c_str());
  EXPECT_TRUE(checkpoint::RestoreFromFile(path, MakeStore().get())
                  .IsNotFound());
}

// --- crash-durability regressions -------------------------------------------

TEST_F(CheckpointTest, EveryTruncationPrefixFailsWithEmptyStore) {
  Populate(12, /*leave_delta_dirty=*/true);
  BinaryWriter writer;
  ASSERT_TRUE(checkpoint::Write(*store_, entity_attr_, &writer).ok());
  // A crash mid-write can leave any prefix of the checkpoint on disk. Every
  // one of them must fail cleanly AND leave the target store untouched —
  // a partially populated store after a failed restore would silently serve
  // wrong data.
  for (std::size_t len = 0; len < writer.size(); ++len) {
    auto restored = MakeStore();
    BinaryReader reader(writer.buffer().data(), len);
    const Status st = checkpoint::Restore(&reader, restored.get());
    ASSERT_FALSE(st.ok()) << "prefix length " << len;
    EXPECT_EQ(restored->main_records(), 0u) << "prefix length " << len;
    EXPECT_EQ(restored->delta_size(), 0u) << "prefix length " << len;
  }
}

TEST_F(CheckpointTest, CorruptCountFailsWithEmptyStore) {
  Populate(8, false);
  BinaryWriter writer;
  ASSERT_TRUE(checkpoint::Write(*store_, entity_attr_, &writer).ok());
  // Flip the record-count header (offset 12 = magic 8 + record_size 4) to a
  // huge value: the payload-length pre-check must reject it without a giant
  // allocation or a partial restore.
  std::vector<std::uint8_t> corrupt(writer.buffer().begin(),
                                    writer.buffer().end());
  const std::uint64_t huge = ~std::uint64_t{0} - 7;
  std::memcpy(corrupt.data() + 12, &huge, sizeof(huge));
  auto restored = MakeStore();
  BinaryReader reader(corrupt);
  EXPECT_TRUE(
      checkpoint::Restore(&reader, restored.get()).IsInvalidArgument());
  EXPECT_EQ(restored->main_records(), 0u);
}

TEST_F(CheckpointTest, ReservedEntityIdFailsWithEmptyStore) {
  Populate(8, false);
  BinaryWriter writer;
  ASSERT_TRUE(checkpoint::Write(*store_, entity_attr_, &writer).ok());
  // Overwrite the first record's entity id (offset 20 = magic 8 +
  // record_size 4 + count 8) with the hash index's empty-slot sentinel.
  // Inserting it would corrupt the index; the pre-insert validation pass
  // must reject the whole checkpoint instead (this used to be an
  // AIM_DCHECK abort — pinned by fuzz/corpus/checkpoint_restore/
  // sentinel_entity_id).
  std::vector<std::uint8_t> corrupt(writer.buffer().begin(),
                                    writer.buffer().end());
  const std::uint64_t sentinel = ~std::uint64_t{0};
  std::memcpy(corrupt.data() + 20, &sentinel, sizeof(sentinel));
  auto restored = MakeStore();
  BinaryReader reader(corrupt);
  EXPECT_TRUE(
      checkpoint::Restore(&reader, restored.get()).IsInvalidArgument());
  EXPECT_EQ(restored->main_records(), 0u);
  EXPECT_EQ(restored->delta_size(), 0u);
}

TEST_F(CheckpointTest, DuplicateEntityIdFailsWithEmptyStore) {
  Populate(8, false);
  BinaryWriter writer;
  ASSERT_TRUE(checkpoint::Write(*store_, entity_attr_, &writer).ok());
  // Copy record 0's entity id over record 1's (stride = entity 8 +
  // version 8 + row). All-or-nothing: nothing from the checkpoint may
  // land in the store, not even the records before the duplicate.
  std::vector<std::uint8_t> corrupt(writer.buffer().begin(),
                                    writer.buffer().end());
  const std::size_t stride = 16 + schema_->record_size();
  std::memcpy(corrupt.data() + 20 + stride, corrupt.data() + 20, 8);
  auto restored = MakeStore();
  BinaryReader reader(corrupt);
  EXPECT_TRUE(
      checkpoint::Restore(&reader, restored.get()).IsInvalidArgument());
  EXPECT_EQ(restored->main_records(), 0u);
  EXPECT_EQ(restored->delta_size(), 0u);
}

TEST_F(CheckpointTest, CountBeyondTargetCapacityFailsBeforeInserting) {
  Populate(12, false);
  BinaryWriter writer;
  ASSERT_TRUE(checkpoint::Write(*store_, entity_attr_, &writer).ok());
  // A checkpoint from a bigger deployment must not half-fill a smaller
  // store: the capacity check runs on the announced count, before any
  // record is touched.
  DeltaMainStore::Options opts;
  opts.bucket_size = 16;
  opts.max_records = 4;
  auto small = std::make_unique<DeltaMainStore>(schema_.get(), opts);
  BinaryReader reader(writer.buffer());
  EXPECT_TRUE(checkpoint::Restore(&reader, small.get()).IsInvalidArgument());
  EXPECT_EQ(small->main_records(), 0u);
  EXPECT_EQ(small->delta_size(), 0u);
}

TEST_F(CheckpointTest, HeaderCountMatchesSerializedRecords) {
  // Single-pass write with a backpatched count: the header must agree with
  // the payload exactly (the two-pass version could disagree under a
  // concurrent writer).
  Populate(17, /*leave_delta_dirty=*/true);
  BinaryWriter writer;
  ASSERT_TRUE(checkpoint::Write(*store_, entity_attr_, &writer).ok());
  std::uint64_t count = 0;
  std::memcpy(&count, writer.buffer().data() + 12, sizeof(count));
  EXPECT_EQ(count, 18u);  // 17 + delta-only entity 999
  const std::size_t expected =
      8 + 4 + 8 + count * (16 + schema_->record_size());
  EXPECT_EQ(writer.size(), expected);
}

TEST_F(CheckpointTest, WriteUnderConcurrentPutsStaysStructurallyValid) {
  // Regression for the two-pass count/payload race: checkpoints taken while
  // an ESP-style writer Puts and Inserts must always restore structurally
  // (header count == records serialized), even though record contents are
  // only point-in-time per record. Merges are NOT raced here — checkpoint's
  // contract requires quiescing the merger for a consistent image (an
  // entity mid-merge may be visited in both the delta and the main pass).
  Populate(40, false);
  std::atomic<bool> stop{false};
  std::thread writer_thread([&] {
    std::vector<std::uint8_t> row(schema_->record_size());
    Random rng(77);
    EntityId next_new = 2000;
    while (!stop.load(std::memory_order_acquire)) {
      for (EntityId e = 1; e <= 40; ++e) {
        Version v = 0;
        if (!store_->Get(e, row.data(), &v).ok()) continue;
        store_->Put(e, row.data(), v);
      }
      // Growth too: inserts change the visible count between checkpoints
      // (bounded so neither store hits its record capacity).
      if (next_new < 2200) {
        FillRandomRow(*schema_, &rng, row.data());
        RecordView(schema_.get(), row.data())
            .SetAs<std::uint64_t>(entity_attr_, next_new);
        store_->Insert(next_new++, row.data());
      }
    }
  });
  for (int i = 0; i < 50; ++i) {
    BinaryWriter writer;
    ASSERT_TRUE(checkpoint::Write(*store_, entity_attr_, &writer).ok());
    DeltaMainStore::Options opts;
    opts.bucket_size = 16;
    opts.max_records = 4096;
    DeltaMainStore restored(schema_.get(), opts);
    BinaryReader reader(writer.buffer());
    ASSERT_TRUE(checkpoint::Restore(&reader, &restored).ok()) << i;
    ASSERT_GT(restored.main_records(), 0u) << i;
  }
  stop.store(true, std::memory_order_release);
  writer_thread.join();
}

TEST_F(CheckpointTest, InterruptedWriteLeavesPreviousCheckpointIntact) {
  Populate(10, false);
  const std::string path = ::testing::TempDir() + "/aim_ckpt_atomic.bin";
  ASSERT_TRUE(checkpoint::WriteToFile(*store_, entity_attr_, path).ok());

  // Simulate a write that cannot complete: a directory squatting on the
  // temp path makes fopen fail, standing in for a crash/IO error before the
  // rename commit point. The previous checkpoint must stay restorable.
  const std::string tmp = path + ".tmp";
  ASSERT_EQ(::mkdir(tmp.c_str(), 0700), 0);
  EXPECT_TRUE(
      checkpoint::WriteToFile(*store_, entity_attr_, path).IsInternal());
  ASSERT_EQ(::rmdir(tmp.c_str()), 0);

  auto restored = MakeStore();
  ASSERT_TRUE(checkpoint::RestoreFromFile(path, restored.get()).ok());
  ExpectStoresEqual(store_.get(), restored.get(), 10);
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, LeftoverTmpGarbageDoesNotAffectRestore) {
  Populate(6, false);
  const std::string path = ::testing::TempDir() + "/aim_ckpt_tmp.bin";
  ASSERT_TRUE(checkpoint::WriteToFile(*store_, entity_attr_, path).ok());
  // A crashed writer may leave a garbage .tmp behind; restore reads only
  // the committed file, and the next successful write replaces the garbage.
  std::FILE* f = std::fopen((path + ".tmp").c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a checkpoint", f);
  std::fclose(f);
  auto restored = MakeStore();
  ASSERT_TRUE(checkpoint::RestoreFromFile(path, restored.get()).ok());
  ExpectStoresEqual(store_.get(), restored.get(), 6);
  ASSERT_TRUE(checkpoint::WriteToFile(*store_, entity_attr_, path).ok());
  std::FILE* gone = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(gone, nullptr);  // committed write renamed the tmp away
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, TruncatedFileOnDiskFailsCleanly) {
  Populate(9, false);
  const std::string path = ::testing::TempDir() + "/aim_ckpt_trunc.bin";
  ASSERT_TRUE(checkpoint::WriteToFile(*store_, entity_attr_, path).ok());
  // Truncate the committed file at a few representative lengths (header,
  // mid-record, one byte short) — each must fail with an error and an empty
  // store.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long full = std::ftell(f);
  std::fclose(f);
  for (long len : {long{5}, long{14}, full / 2, full - 1}) {
    ASSERT_EQ(::truncate(path.c_str(), len), 0);
    auto restored = MakeStore();
    EXPECT_FALSE(checkpoint::RestoreFromFile(path, restored.get()).ok())
        << "length " << len;
    EXPECT_EQ(restored->main_records(), 0u) << "length " << len;
    // Re-write the full checkpoint for the next iteration.
    ASSERT_TRUE(checkpoint::WriteToFile(*store_, entity_attr_, path).ok());
  }
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, MissingAndEmptyFilesAreNotFoundNotMalformed) {
  // "No checkpoint yet" (missing or zero-byte file) is a cold start the
  // caller proceeds past; a malformed file is damage the caller must not
  // silently ignore. The two must stay distinguishable.
  const std::string path = ::testing::TempDir() + "/aim_ckpt_kinds.bin";
  std::remove(path.c_str());
  auto restored = MakeStore();
  EXPECT_TRUE(
      checkpoint::RestoreFromFile(path, restored.get()).IsNotFound());

  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fclose(f);  // zero bytes: a crash right after open(O_CREAT)
  EXPECT_TRUE(
      checkpoint::RestoreFromFile(path, restored.get()).IsNotFound());

  f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("definitely not a checkpoint", f);
  std::fclose(f);
  EXPECT_TRUE(
      checkpoint::RestoreFromFile(path, restored.get()).IsInvalidArgument());
  EXPECT_EQ(restored->main_records(), 0u);
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, StaleTmpSweepRemovesOnlyTmpFiles) {
  const std::string dir = ::testing::TempDir() + "/aim_ckpt_sweep";
  ASSERT_TRUE(fs::EnsureDir(dir).ok());
  auto touch = [&](const std::string& name) {
    std::FILE* f = std::fopen((dir + "/" + name).c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("x", f);
    std::fclose(f);
  };
  touch("a.aimckpt.tmp");
  touch("b.tmp");
  touch("keep.aimckpt");
  touch("events.log");
  EXPECT_EQ(fs::RemoveStaleTmpFiles(dir), 2u);
  EXPECT_EQ(fs::RemoveStaleTmpFiles(dir), 0u);  // idempotent
  StatusOr<std::vector<std::string>> left = fs::ListDir(dir);
  ASSERT_TRUE(left.ok());
  std::sort(left->begin(), left->end());
  EXPECT_EQ(*left,
            (std::vector<std::string>{"events.log", "keep.aimckpt"}));
  for (const std::string& n : *left) std::remove((dir + "/" + n).c_str());
  ::rmdir(dir.c_str());
}

TEST_F(CheckpointTest, FailedRenameRemovesItsTmpFile) {
  Populate(6, false);
  // A non-empty directory squatting on the *target* path makes the rename
  // itself fail after the tmp was fully written. The writer must clean up
  // its tmp — otherwise every such failure leaks one until the sweep.
  const std::string path = ::testing::TempDir() + "/aim_ckpt_squat";
  ASSERT_EQ(::mkdir(path.c_str(), 0700), 0);
  std::FILE* inner = std::fopen((path + "/occupant").c_str(), "wb");
  ASSERT_NE(inner, nullptr);
  std::fclose(inner);

  EXPECT_TRUE(
      checkpoint::WriteToFile(*store_, entity_attr_, path).IsInternal());
  std::FILE* leaked = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(leaked, nullptr) << "failed rename left its .tmp behind";
  if (leaked != nullptr) std::fclose(leaked);

  std::remove((path + "/occupant").c_str());
  ::rmdir(path.c_str());
}

}  // namespace
}  // namespace aim
