#include <cstdio>

#include <gtest/gtest.h>

#include "aim/storage/checkpoint.h"
#include "test_util.h"

namespace aim {
namespace {

using testing_util::FillRandomRow;
using testing_util::MakeTinySchema;

class CheckpointTest : public ::testing::Test {
 protected:
  CheckpointTest() : schema_(MakeTinySchema()) {
    entity_attr_ = schema_->FindAttribute("entity_id");
    store_ = MakeStore();
  }

  std::unique_ptr<DeltaMainStore> MakeStore() {
    DeltaMainStore::Options opts;
    opts.bucket_size = 16;
    opts.max_records = 1024;
    return std::make_unique<DeltaMainStore>(schema_.get(), opts);
  }

  void Populate(int n, bool leave_delta_dirty) {
    std::vector<std::uint8_t> row(schema_->record_size());
    for (EntityId e = 1; e <= static_cast<EntityId>(n); ++e) {
      FillRandomRow(*schema_, &rng_, row.data());
      RecordView(schema_.get(), row.data())
          .SetAs<std::uint64_t>(entity_attr_, e);
      ASSERT_TRUE(store_->BulkInsert(e, row.data()).ok());
    }
    // Update a few through the delta; optionally keep them unmerged so the
    // checkpoint has to read through the delta.
    for (EntityId e = 1; e <= 5; ++e) {
      Version v = 0;
      ASSERT_TRUE(store_->Get(e, row.data(), &v).ok());
      RecordView(schema_.get(), row.data())
          .Set(schema_->FindAttribute("calls_today"),
               Value::Int32(static_cast<std::int32_t>(e * 11)));
      ASSERT_TRUE(store_->Put(e, row.data(), v).ok());
    }
    // A brand-new entity only in the delta.
    FillRandomRow(*schema_, &rng_, row.data());
    RecordView(schema_.get(), row.data())
        .SetAs<std::uint64_t>(entity_attr_, 999);
    ASSERT_TRUE(store_->Insert(999, row.data()).ok());
    if (!leave_delta_dirty) store_->Merge();
  }

  void ExpectStoresEqual(DeltaMainStore* a, DeltaMainStore* b, int n) {
    std::vector<std::uint8_t> ra(schema_->record_size());
    std::vector<std::uint8_t> rb(schema_->record_size());
    for (EntityId e = 1; e <= static_cast<EntityId>(n); ++e) {
      Version va = 0, vb = 0;
      ASSERT_TRUE(a->Get(e, ra.data(), &va).ok()) << e;
      ASSERT_TRUE(b->Get(e, rb.data(), &vb).ok()) << e;
      EXPECT_EQ(va, vb) << e;
      EXPECT_EQ(std::memcmp(ra.data(), rb.data(), ra.size()), 0) << e;
    }
    Version v9 = 0;
    ASSERT_TRUE(a->Get(999, ra.data(), &v9).ok());
    ASSERT_TRUE(b->Get(999, rb.data(), &v9).ok());
    EXPECT_EQ(std::memcmp(ra.data(), rb.data(), ra.size()), 0);
  }

  std::unique_ptr<Schema> schema_;
  std::uint16_t entity_attr_;
  std::unique_ptr<DeltaMainStore> store_;
  Random rng_{21};
};

TEST_F(CheckpointTest, RoundTripMergedStore) {
  Populate(50, /*leave_delta_dirty=*/false);
  BinaryWriter writer;
  ASSERT_TRUE(checkpoint::Write(*store_, entity_attr_, &writer).ok());

  auto restored = MakeStore();
  BinaryReader reader(writer.buffer());
  ASSERT_TRUE(checkpoint::Restore(&reader, restored.get()).ok());
  EXPECT_EQ(restored->main_records(), store_->main_records());
  ExpectStoresEqual(store_.get(), restored.get(), 50);
}

TEST_F(CheckpointTest, RoundTripWithDirtyDelta) {
  // The checkpoint captures the *visible* state: delta images shadow main.
  Populate(30, /*leave_delta_dirty=*/true);
  EXPECT_GT(store_->delta_size(), 0u);

  BinaryWriter writer;
  ASSERT_TRUE(checkpoint::Write(*store_, entity_attr_, &writer).ok());
  auto restored = MakeStore();
  BinaryReader reader(writer.buffer());
  ASSERT_TRUE(checkpoint::Restore(&reader, restored.get()).ok());
  ExpectStoresEqual(store_.get(), restored.get(), 30);
  // Restored state is fully merged (all in main).
  EXPECT_EQ(restored->delta_size(), 0u);
  EXPECT_EQ(restored->main_records(), 31u);  // 30 + entity 999
}

TEST_F(CheckpointTest, RestoreRejectsNonEmptyStore) {
  Populate(5, false);
  BinaryWriter writer;
  ASSERT_TRUE(checkpoint::Write(*store_, entity_attr_, &writer).ok());
  BinaryReader reader(writer.buffer());
  EXPECT_TRUE(checkpoint::Restore(&reader, store_.get()).IsConflict());
}

TEST_F(CheckpointTest, RestoreRejectsCorruptHeader) {
  auto restored = MakeStore();
  std::vector<std::uint8_t> garbage = {'X', 'X', 'X'};
  BinaryReader reader(garbage);
  EXPECT_TRUE(
      checkpoint::Restore(&reader, restored.get()).IsInvalidArgument());
}

TEST_F(CheckpointTest, RestoreRejectsTruncatedPayload) {
  Populate(10, false);
  BinaryWriter writer;
  ASSERT_TRUE(checkpoint::Write(*store_, entity_attr_, &writer).ok());
  auto restored = MakeStore();
  BinaryReader reader(writer.buffer().data(), writer.size() - 17);
  EXPECT_TRUE(
      checkpoint::Restore(&reader, restored.get()).IsInvalidArgument());
}

TEST_F(CheckpointTest, FileRoundTrip) {
  Populate(20, false);
  const std::string path = ::testing::TempDir() + "/aim_ckpt_test.bin";
  ASSERT_TRUE(checkpoint::WriteToFile(*store_, entity_attr_, path).ok());
  auto restored = MakeStore();
  ASSERT_TRUE(checkpoint::RestoreFromFile(path, restored.get()).ok());
  ExpectStoresEqual(store_.get(), restored.get(), 20);
  std::remove(path.c_str());
  EXPECT_TRUE(checkpoint::RestoreFromFile(path, MakeStore().get())
                  .IsNotFound());
}

}  // namespace
}  // namespace aim
