// Frame-protocol and TCP-transport tests: codec round trips (including the
// malformed-input paths through BinaryReader's sticky error), the loopback
// end-to-end path TcpClient -> TcpServer -> StorageNode, and the client's
// robustness contract — deadlines, disconnect handling and reconnect.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "aim/common/logging.h"
#include "aim/esp/event.h"
#include "aim/net/coalescing_writer.h"
#include "aim/net/frame.h"
#include "aim/net/frame_assembler.h"
#include "aim/net/socket.h"
#include "aim/net/tcp_client.h"
#include "aim/net/tcp_server.h"
#include "aim/rta/partial_result.h"
#include "aim/server/local_node_channel.h"
#include "aim/server/storage_node.h"
#include "aim/workload/benchmark_schema.h"
#include "aim/workload/cdr_generator.h"
#include "aim/workload/dimension_data.h"
#include "aim/workload/query_workload.h"

namespace aim {
namespace {

using net::BuildFrame;
using net::DecodeFrameHeader;
using net::EncodeFrameHeader;
using net::FrameHeader;
using net::FrameType;
using net::kFrameHeaderSize;
using net::kFrameMagic;

// --- frame assembler --------------------------------------------------------
// The same class the TcpServer read loop and fuzz_frame_stream drive; these
// tests pin the split-tolerance and poison semantics the fuzzer relies on.

TEST(FrameAssemblerTest, ReassemblesFramesFromByteAtATimeDelivery) {
  const std::uint8_t p1[] = {1, 2, 3};
  std::vector<std::uint8_t> stream =
      BuildFrame(FrameType::kHello, 0, 7, p1, sizeof(p1));
  const std::vector<std::uint8_t> f2 =
      BuildFrame(FrameType::kQuery, net::kFlagNoReply, 8, nullptr, 0);
  stream.insert(stream.end(), f2.begin(), f2.end());

  net::FrameAssembler asm_;
  FrameHeader header;
  std::vector<std::uint8_t> payload;
  std::vector<std::pair<FrameHeader, std::vector<std::uint8_t>>> got;
  for (std::uint8_t b : stream) {
    ASSERT_TRUE(asm_.Push(&b, 1).ok());
    while (asm_.Next(&header, &payload)) got.emplace_back(header, payload);
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].first.type, FrameType::kHello);
  EXPECT_EQ(got[0].first.request_id, 7u);
  EXPECT_EQ(got[0].second, std::vector<std::uint8_t>(p1, p1 + sizeof(p1)));
  EXPECT_EQ(got[1].first.type, FrameType::kQuery);
  EXPECT_EQ(got[1].first.flags, net::kFlagNoReply);
  EXPECT_TRUE(got[1].second.empty());
  EXPECT_EQ(asm_.buffered(), 0u);
  EXPECT_TRUE(asm_.ok());
}

TEST(FrameAssemblerTest, HeaderCorruptionPoisonsPermanently) {
  std::vector<std::uint8_t> stream =
      BuildFrame(FrameType::kHello, 0, 1, nullptr, 0);
  stream.resize(stream.size() + kFrameHeaderSize, 0xAB);  // bad magic next

  net::FrameAssembler asm_;
  ASSERT_TRUE(asm_.Push(stream.data(), stream.size()).ok());
  FrameHeader header;
  std::vector<std::uint8_t> payload;
  // The valid frame ahead of the corruption still comes out; the corrupt
  // header then poisons — once framing is lost there is no trustworthy
  // boundary to resume from.
  ASSERT_TRUE(asm_.Next(&header, &payload));
  EXPECT_EQ(header.type, FrameType::kHello);
  EXPECT_FALSE(asm_.Next(&header, &payload));
  EXPECT_FALSE(asm_.ok());
  EXPECT_TRUE(asm_.status().IsInvalidArgument());
  EXPECT_EQ(asm_.buffered(), 0u);  // buffer released on poison
  const std::uint8_t more = 0;
  EXPECT_FALSE(asm_.Push(&more, 1).ok());  // sticky: push is a no-op
  EXPECT_EQ(asm_.buffered(), 0u);
}

TEST(FrameAssemblerTest, OversizePayloadClaimRejectedWithoutBuffering) {
  // A header announcing > kMaxFramePayload must poison at the header, not
  // park the assembler waiting to buffer 64 MiB of attacker bytes.
  FrameHeader h;
  h.type = FrameType::kEvent;
  h.flags = 0;
  h.request_id = 1;
  h.payload_size = net::kMaxFramePayload + 1;
  BinaryWriter w;
  EncodeFrameHeader(h, &w);
  net::FrameAssembler asm_;
  ASSERT_TRUE(asm_.Push(w.buffer().data(), w.size()).ok());
  FrameHeader header;
  std::vector<std::uint8_t> payload;
  EXPECT_FALSE(asm_.Next(&header, &payload));
  EXPECT_FALSE(asm_.ok());
  EXPECT_TRUE(asm_.status().IsInvalidArgument());
  EXPECT_EQ(asm_.buffered(), 0u);  // nothing parked waiting for 64 MiB
  const std::uint8_t more = 0;
  EXPECT_FALSE(asm_.Push(&more, 1).ok());
}

TEST(FrameAssemblerTest, IncompleteFrameStaysParkedUntilPayloadArrives) {
  const std::uint8_t p[] = {9, 9, 9, 9};
  const std::vector<std::uint8_t> frame =
      BuildFrame(FrameType::kEventReply, 0, 3, p, sizeof(p));
  net::FrameAssembler asm_;
  ASSERT_TRUE(asm_.Push(frame.data(), frame.size() - 1).ok());
  FrameHeader header;
  std::vector<std::uint8_t> payload;
  EXPECT_FALSE(asm_.Next(&header, &payload));
  EXPECT_TRUE(asm_.ok());
  EXPECT_EQ(asm_.buffered(), frame.size() - 1);
  ASSERT_TRUE(asm_.Push(&frame.back(), 1).ok());
  ASSERT_TRUE(asm_.Next(&header, &payload));
  EXPECT_EQ(header.type, FrameType::kEventReply);
  EXPECT_EQ(payload, std::vector<std::uint8_t>(p, p + sizeof(p)));
  EXPECT_EQ(asm_.buffered(), 0u);
}

// --- codecs -----------------------------------------------------------------

TEST(FrameCodecTest, HeaderRoundTrip) {
  FrameHeader in;
  in.type = FrameType::kRecordRequest;
  in.flags = net::kFlagNoReply;
  in.request_id = 0x1122334455667788ull;
  in.payload_size = 4096;
  BinaryWriter w;
  EncodeFrameHeader(in, &w);
  ASSERT_EQ(w.size(), kFrameHeaderSize);
  FrameHeader out;
  ASSERT_TRUE(DecodeFrameHeader(w.buffer().data(), &out).ok());
  EXPECT_EQ(out.type, in.type);
  EXPECT_EQ(out.flags, in.flags);
  EXPECT_EQ(out.request_id, in.request_id);
  EXPECT_EQ(out.payload_size, in.payload_size);
}

TEST(FrameCodecTest, HeaderWireLayoutIsLittleEndian) {
  // The wire format is pinned to little-endian (static_assert in
  // binary_io.h); the magic 0x464D4941 must serialize as "AIMF" bytes.
  FrameHeader h;
  h.type = FrameType::kEvent;
  h.request_id = 0x0102030405060708ull;
  h.payload_size = 0x64;
  BinaryWriter w;
  EncodeFrameHeader(h, &w);
  const std::uint8_t* b = w.buffer().data();
  EXPECT_EQ(b[0], 0x41);  // 'A'
  EXPECT_EQ(b[1], 0x49);  // 'I'
  EXPECT_EQ(b[2], 0x4D);  // 'M'
  EXPECT_EQ(b[3], 0x46);  // 'F'
  EXPECT_EQ(b[4], static_cast<std::uint8_t>(FrameType::kEvent));
  EXPECT_EQ(b[8], 0x08);  // request_id little-endian, low byte first
  EXPECT_EQ(b[15], 0x01);
  EXPECT_EQ(b[16], 0x64);  // payload_size low byte
}

TEST(FrameCodecTest, HeaderRejectsGarbage) {
  FrameHeader good;
  good.type = FrameType::kQuery;
  BinaryWriter w;
  EncodeFrameHeader(good, &w);
  FrameHeader out;

  std::vector<std::uint8_t> bad_magic(w.buffer());
  bad_magic[0] ^= 0xFF;
  EXPECT_TRUE(DecodeFrameHeader(bad_magic.data(), &out).IsInvalidArgument());

  std::vector<std::uint8_t> bad_type(w.buffer());
  bad_type[4] = 0;  // below kHello
  EXPECT_TRUE(DecodeFrameHeader(bad_type.data(), &out).IsInvalidArgument());
  bad_type[4] = 99;  // above kRecordReply
  EXPECT_TRUE(DecodeFrameHeader(bad_type.data(), &out).IsInvalidArgument());

  FrameHeader oversized;
  oversized.type = FrameType::kQuery;
  oversized.payload_size = net::kMaxFramePayload + 1;
  BinaryWriter w2;
  EncodeFrameHeader(oversized, &w2);
  EXPECT_TRUE(
      DecodeFrameHeader(w2.buffer().data(), &out).IsInvalidArgument());
}

TEST(FrameCodecTest, StatusPayloadRoundTripsEveryCode) {
  const Status codes[] = {
      Status::OK(),          Status::NotFound("a"),
      Status::Conflict("b"), Status::InvalidArgument("c"),
      Status::Capacity("d"), Status::Unsupported("e"),
      Status::Internal("f"), Status::TimedOut("g"),
      Status::Shutdown("h"), Status::DeadlineExceeded("i"),
  };
  for (const Status& in : codes) {
    BinaryWriter w;
    net::EncodeStatusPayload(in, &w);
    BinaryReader r(w.buffer());
    Status out;
    ASSERT_TRUE(net::DecodeStatusPayload(&r, &out).ok());
    EXPECT_EQ(out.code(), in.code());
    EXPECT_EQ(out.message(), in.message());
  }
}

TEST(FrameCodecTest, EventReplyRoundTripAndTruncation) {
  BinaryWriter w;
  net::EncodeEventReply(Status::OK(), {3, 7, 42}, &w);
  BinaryReader r(w.buffer());
  Status status;
  std::vector<std::uint32_t> fired;
  ASSERT_TRUE(net::DecodeEventReply(&r, &status, &fired).ok());
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(fired, (std::vector<std::uint32_t>{3, 7, 42}));

  // Every truncation must fail through the sticky-error reader, never read
  // out of bounds or return partially parsed data as success.
  for (std::size_t len = 0; len < w.size(); ++len) {
    BinaryReader t(w.buffer().data(), len);
    EXPECT_FALSE(net::DecodeEventReply(&t, &status, &fired).ok())
        << "prefix " << len;
  }
}

TEST(FrameCodecTest, RecordRequestRoundTripAndGarbageSize) {
  RecordRequest in;
  in.kind = RecordRequest::Kind::kPut;
  in.entity = 12345;
  in.expected_version = 9;
  in.row = {1, 2, 3, 4, 5};
  BinaryWriter w;
  net::EncodeRecordRequest(in, &w);
  BinaryReader r(w.buffer());
  RecordRequest out;
  ASSERT_TRUE(net::DecodeRecordRequest(&r, &out).ok());
  EXPECT_EQ(out.kind, in.kind);
  EXPECT_EQ(out.entity, in.entity);
  EXPECT_EQ(out.expected_version, in.expected_version);
  EXPECT_EQ(out.row, in.row);

  // A row size claiming more bytes than the payload holds must be rejected
  // (no giant resize, no out-of-bounds read).
  std::vector<std::uint8_t> corrupt(w.buffer());
  const std::uint32_t huge = 0x7FFFFFFF;
  std::memcpy(corrupt.data() + 17, &huge, sizeof(huge));
  BinaryReader cr(corrupt);
  EXPECT_TRUE(net::DecodeRecordRequest(&cr, &out).IsInvalidArgument());
}

TEST(FrameCodecTest, RecordReplyRoundTripAndTruncation) {
  BinaryWriter w;
  net::EncodeRecordReply(Status::Conflict("ver"), {9, 8, 7}, 17, &w);
  BinaryReader r(w.buffer());
  Status status;
  std::vector<std::uint8_t> row;
  Version version = 0;
  ASSERT_TRUE(net::DecodeRecordReply(&r, &status, &row, &version).ok());
  EXPECT_TRUE(status.IsConflict());
  EXPECT_EQ(version, 17u);
  EXPECT_EQ(row, (std::vector<std::uint8_t>{9, 8, 7}));
  for (std::size_t len = 0; len < w.size(); ++len) {
    BinaryReader t(w.buffer().data(), len);
    EXPECT_FALSE(net::DecodeRecordReply(&t, &status, &row, &version).ok())
        << "prefix " << len;
  }
}

TEST(FrameCodecTest, HelloReplyRejectsVersionSkew) {
  NodeChannel::NodeInfo info;
  info.node_id = 3;
  info.num_partitions = 4;
  info.record_size = 128;
  BinaryWriter w;
  net::EncodeHelloReply(info, &w);
  std::vector<std::uint8_t> skewed(w.buffer());
  skewed[0] += 1;  // bump the version field
  BinaryReader r(skewed);
  NodeChannel::NodeInfo out;
  EXPECT_TRUE(net::DecodeHelloReply(&r, &out).IsUnsupported());
}

TEST(FrameCodecTest, EventBatchRoundTripAndTruncation) {
  std::vector<EventMessage> batch;
  for (int i = 0; i < 3; ++i) {
    EventMessage msg;
    msg.bytes.assign(net::kEventBatchEntrySize,
                     static_cast<std::uint8_t>(i + 1));
    batch.push_back(std::move(msg));
  }
  BinaryWriter w;
  net::EncodeEventBatch(batch, &w);
  ASSERT_EQ(w.size(), 4 + 3 * net::kEventBatchEntrySize);
  BinaryReader r(w.buffer());
  std::vector<std::vector<std::uint8_t>> out;
  ASSERT_TRUE(net::DecodeEventBatch(&r, &out).ok());
  ASSERT_EQ(out.size(), 3u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(out[i], batch[i].bytes);

  // An empty batch is well-formed (count 0, no entries).
  BinaryWriter w0;
  net::EncodeEventBatch({}, &w0);
  BinaryReader r0(w0.buffer());
  ASSERT_TRUE(net::DecodeEventBatch(&r0, &out).ok());
  EXPECT_TRUE(out.empty());

  // Every truncation prefix must fail — the count has to match the payload
  // byte-exactly, so no prefix of a 3-event batch parses as a shorter one.
  for (std::size_t len = 0; len < w.size(); ++len) {
    BinaryReader t(w.buffer().data(), len);
    EXPECT_FALSE(net::DecodeEventBatch(&t, &out).ok()) << "prefix " << len;
  }
  // Trailing excess fails the same way.
  std::vector<std::uint8_t> extra(w.buffer());
  extra.push_back(0);
  BinaryReader re(extra);
  EXPECT_FALSE(net::DecodeEventBatch(&re, &out).ok());
  // A count lying far beyond the payload fails without a giant allocation.
  std::vector<std::uint8_t> lying(w.buffer());
  const std::uint32_t huge = 0x40000000;
  std::memcpy(lying.data(), &huge, sizeof(huge));
  BinaryReader rl(lying);
  EXPECT_FALSE(net::DecodeEventBatch(&rl, &out).ok());
}

TEST(FrameCodecTest, HelloReplyFeatureBitsAndOldPayloadCompat) {
  NodeChannel::NodeInfo info;
  info.node_id = 1;
  info.num_partitions = 2;
  info.record_size = 64;
  info.features = NodeChannel::kFeatureEventBatch;
  BinaryWriter w;
  net::EncodeHelloReply(info, &w);
  BinaryReader r(w.buffer());
  NodeChannel::NodeInfo out;
  ASSERT_TRUE(net::DecodeHelloReply(&r, &out).ok());
  EXPECT_EQ(out.features, NodeChannel::kFeatureEventBatch);

  // An old server's payload stops before the capability word; the decoder
  // must read that as "no optional capabilities", not as an error.
  BinaryReader old(w.buffer().data(), w.size() - 4);
  NodeChannel::NodeInfo from_old;
  ASSERT_TRUE(net::DecodeHelloReply(&old, &from_old).ok());
  EXPECT_EQ(from_old.features, 0u);
  EXPECT_EQ(from_old.record_size, 64u);
}

// --- coalescing writer ------------------------------------------------------

TEST(CoalescingWriterTest, QueuedFramesLeaveInOneWritev) {
  StatusOr<net::Socket> listener = net::TcpListen("127.0.0.1", 0, 4);
  ASSERT_TRUE(listener.ok());
  const std::uint16_t port = *net::LocalPort(*listener);
  StatusOr<net::Socket> sender = net::TcpConnect("127.0.0.1", port, 2000);
  ASSERT_TRUE(sender.ok());
  StatusOr<net::Socket> peer = net::Accept(*listener, 2000);
  ASSERT_TRUE(peer.ok());

  net::CoalescingWriter writer;
  for (std::uint32_t i = 0; i < 10; ++i) {
    BinaryWriter payload;
    payload.PutU32(i);
    bool should_flush = false;
    ASSERT_TRUE(writer.Enqueue(
        BuildFrame(FrameType::kEvent, net::kFlagNoReply, 0,
                   payload.buffer().data(), payload.size()),
        &should_flush));
    // The first enqueue elects this thread; later frames see a flush in
    // flight and just queue behind it.
    EXPECT_EQ(should_flush, i == 0);
  }
  const std::uint64_t syscalls_before = net::SendFramesSyscalls();
  ASSERT_TRUE(writer.Flush(*sender, 2000).ok());
  // The whole backlog left in a single writev: that is the coalescing win.
  EXPECT_EQ(net::SendFramesSyscalls() - syscalls_before, 1u);

  // And the peer still sees ten intact frames, in order.
  for (std::uint32_t i = 0; i < 10; ++i) {
    std::uint8_t header_bytes[kFrameHeaderSize];
    ASSERT_TRUE(
        net::RecvAll(*peer, header_bytes, kFrameHeaderSize, 2000).ok());
    FrameHeader header;
    ASSERT_TRUE(DecodeFrameHeader(header_bytes, &header).ok());
    ASSERT_EQ(header.type, FrameType::kEvent);
    ASSERT_EQ(header.payload_size, 4u);
    std::uint8_t payload[4];
    ASSERT_TRUE(net::RecvAll(*peer, payload, sizeof(payload), 2000).ok());
    std::uint32_t value = 0;
    std::memcpy(&value, payload, sizeof(value));
    EXPECT_EQ(value, i);
  }
}

// --- EventCompletion::WaitFor regression ------------------------------------

TEST(EventCompletionTest, WaitForTimesOutAndCompletes) {
  EventCompletion completion;
  // Nothing completes it: the bounded wait must return false, where Wait()
  // would hang forever (the bug this API fixes for remote peers).
  EXPECT_FALSE(completion.WaitFor(50));

  std::thread completer([&completion] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    completion.done.store(true, std::memory_order_release);
  });
  EXPECT_TRUE(completion.WaitFor(5000));
  completer.join();
}

// --- loopback end-to-end ----------------------------------------------------

class NetLoopbackTest : public ::testing::Test {
 protected:
  NetLoopbackTest() : schema_(MakeCompactSchema()), dims_(MakeBenchmarkDims()) {}

  void StartNode(std::uint64_t entities = 200) {
    StorageNode::Options opts;
    opts.node_id = 0;
    opts.num_partitions = 2;
    opts.bucket_size = 64;
    opts.max_records_per_partition = 1 << 14;
    opts.scan_poll_micros = 200;
    opts.metrics = &metrics_;
    node_ = std::make_unique<StorageNode>(schema_.get(), &dims_.catalog,
                                          &rules_, opts);
    std::vector<std::uint8_t> row(schema_->record_size(), 0);
    for (EntityId e = 1; e <= entities; ++e) {
      std::fill(row.begin(), row.end(), 0);
      PopulateEntityProfile(*schema_, dims_, e, entities, row.data());
      ASSERT_TRUE(node_->BulkLoad(e, row.data()).ok());
    }
    ASSERT_TRUE(node_->Start().ok());
    channel_ = std::make_unique<LocalNodeChannel>(node_.get());
  }

  void StartServer() {
    net::TcpServer::Options opts;
    opts.metrics = &metrics_;
    server_ = std::make_unique<net::TcpServer>(channel_.get(), opts);
    ASSERT_TRUE(server_->Start().ok());
  }

  std::unique_ptr<net::TcpClient> MakeClient(
      std::uint16_t port, std::int64_t request_timeout_millis = 5000) {
    net::TcpClient::Options opts;
    opts.port = port;
    opts.request_timeout_millis = request_timeout_millis;
    opts.backoff_initial_millis = 5;
    opts.metrics = &metrics_;
    return std::make_unique<net::TcpClient>(opts);
  }

  std::vector<std::uint8_t> SerializedEvent(EntityId caller) {
    Event event;
    event.caller = caller;
    event.callee = caller + 1;
    event.timestamp = next_ts_ += 10;
    event.duration = 60;
    event.cost = 1.5f;
    event.data_mb = 0.0f;
    BinaryWriter w;
    event.Serialize(&w);
    return w.TakeBuffer();
  }

  /// Synchronous query through any channel; empty optional on rejection.
  std::vector<std::uint8_t> QueryBytes(NodeChannel* channel, const Query& q) {
    BinaryWriter w;
    q.Serialize(&w);
    std::atomic<bool> done{false};
    std::vector<std::uint8_t> result;
    EXPECT_TRUE(channel->SubmitQuery(
        w.TakeBuffer(), [&](std::vector<std::uint8_t>&& bytes) {
          result = std::move(bytes);
          done.store(true, std::memory_order_release);
        }));
    while (!done.load(std::memory_order_acquire)) std::this_thread::yield();
    return result;
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
    if (node_ != nullptr) node_->Stop();
  }

  std::unique_ptr<Schema> schema_;
  BenchmarkDims dims_;
  std::vector<Rule> rules_;
  MetricsRegistry metrics_;
  std::unique_ptr<StorageNode> node_;
  std::unique_ptr<LocalNodeChannel> channel_;
  std::unique_ptr<net::TcpServer> server_;
  Timestamp next_ts_ = 0;
};

TEST_F(NetLoopbackTest, HandshakeFillsNodeInfo) {
  StartNode();
  StartServer();
  auto client = MakeClient(server_->port());
  ASSERT_TRUE(client->Connect().ok());
  const NodeChannel::NodeInfo info = client->info();
  EXPECT_EQ(info.node_id, 0u);
  EXPECT_EQ(info.num_partitions, 2u);
  EXPECT_EQ(info.record_size, schema_->record_size());
  // Remote routing must agree with the node's own partition function.
  for (EntityId e = 1; e <= 50; ++e) {
    EXPECT_EQ(client->PartitionOf(e), node_->PartitionOf(e)) << e;
  }
  client->Close();
}

TEST_F(NetLoopbackTest, EventRoundTripsMatchInProcessResults) {
  StartNode();
  StartServer();
  auto client = MakeClient(server_->port());

  for (int i = 0; i < 100; ++i) {
    const EntityId caller = 1 + (i % 50);
    ASSERT_TRUE(client->EventRoundTrip(SerializedEvent(caller), nullptr).ok());
  }

  // The same query through the in-process channel and over TCP must settle
  // on identical serialized partials — the loopback deployment answers with
  // the exact same state.
  QueryWorkload workload(schema_.get(), &dims_, 99);
  const Query q = workload.Make(1);
  std::vector<std::uint8_t> local;
  std::vector<std::uint8_t> remote;
  for (int attempt = 0; attempt < 500; ++attempt) {
    local = QueryBytes(channel_.get(), q);
    remote = QueryBytes(client.get(), q);
    if (!local.empty() && local == remote) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_FALSE(local.empty());
  EXPECT_EQ(local, remote);
  BinaryReader r(remote);
  EXPECT_TRUE(PartialResult::Deserialize(&r).ok());
  client->Close();
}

TEST_F(NetLoopbackTest, FireAndForgetEventsAreProcessed) {
  StartNode();
  StartServer();
  auto client = MakeClient(server_->port());
  ASSERT_TRUE(client->Connect().ok());
  constexpr std::uint64_t kEvents = 500;
  for (std::uint64_t i = 0; i < kEvents; ++i) {
    ASSERT_TRUE(
        client->SubmitEvent(SerializedEvent(1 + (i % 100)), nullptr));
  }
  for (int attempt = 0; attempt < 2000; ++attempt) {
    if (node_->stats().events_processed >= kEvents) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(node_->stats().events_processed, kEvents);
  client->Close();
}

TEST_F(NetLoopbackTest, RecordGetPutRoundTrip) {
  StartNode();
  StartServer();
  auto client = MakeClient(server_->port());
  ASSERT_TRUE(client->Connect().ok());

  struct Result {
    std::atomic<bool> done{false};
    Status status;
    std::vector<std::uint8_t> row;
    Version version = 0;
  };
  auto roundtrip = [&](RecordRequest request, Result* out) {
    request.reply = [out](Status st, std::vector<std::uint8_t>&& row,
                          Version v) {
      out->status = std::move(st);
      out->row = std::move(row);
      out->version = v;
      out->done.store(true, std::memory_order_release);
    };
    ASSERT_TRUE(client->SubmitRecordRequest(std::move(request)));
    while (!out->done.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  };

  RecordRequest get;
  get.kind = RecordRequest::Kind::kGet;
  get.entity = 7;
  Result got;
  roundtrip(std::move(get), &got);
  ASSERT_TRUE(got.status.ok());
  ASSERT_EQ(got.row.size(), schema_->record_size());

  // Conditional put with the observed version succeeds; a stale version
  // must come back kConflict over the wire, not just in-process.
  RecordRequest put;
  put.kind = RecordRequest::Kind::kPut;
  put.entity = 7;
  put.row = got.row;
  put.expected_version = got.version;
  Result put_ok;
  roundtrip(std::move(put), &put_ok);
  EXPECT_TRUE(put_ok.status.ok());

  RecordRequest stale;
  stale.kind = RecordRequest::Kind::kPut;
  stale.entity = 7;
  stale.row = got.row;
  stale.expected_version = got.version;  // now one behind
  Result put_stale;
  roundtrip(std::move(stale), &put_stale);
  EXPECT_TRUE(put_stale.status.IsConflict());

  RecordRequest missing;
  missing.kind = RecordRequest::Kind::kGet;
  missing.entity = 999999;
  Result not_found;
  roundtrip(std::move(missing), &not_found);
  EXPECT_TRUE(not_found.status.IsNotFound());
  client->Close();
}

TEST_F(NetLoopbackTest, ServerDropsGarbageConnectionAndKeepsServing) {
  StartNode();
  StartServer();

  StatusOr<net::Socket> raw =
      net::TcpConnect("127.0.0.1", server_->port(), 1000);
  ASSERT_TRUE(raw.ok());
  // Longer than one frame header, so the server's header read completes and
  // fails on the magic instead of waiting out its I/O deadline.
  const char garbage[] = "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n";
  ASSERT_TRUE(
      net::SendAll(*raw, garbage, sizeof(garbage) - 1, 1000).ok());
  // Framing is unrecoverable: the server must close this connection.
  std::uint8_t byte;
  EXPECT_FALSE(net::RecvAll(*raw, &byte, 1, 2000).ok());
  raw->Close();

  // A short frame (partial header, then close) must not wedge a handler.
  StatusOr<net::Socket> shorty =
      net::TcpConnect("127.0.0.1", server_->port(), 1000);
  ASSERT_TRUE(shorty.ok());
  const std::uint8_t partial[] = {0x41, 0x49, 0x4D};
  ASSERT_TRUE(net::SendAll(*shorty, partial, sizeof(partial), 1000).ok());
  shorty->Close();

  // The server keeps serving well-formed clients afterwards.
  auto client = MakeClient(server_->port());
  EXPECT_TRUE(client->EventRoundTrip(SerializedEvent(3), nullptr).ok());
  client->Close();

  Counter* errors = metrics_.GetCounter(
      "aim_net_frame_errors_total",
      {{"role", "server"},
       {"addr", "127.0.0.1:" + std::to_string(server_->port())}});
  EXPECT_GE(errors->Value(), 1u);
}

// Minimal scripted peer: completes the hello handshake, then runs `script`
// on the connection (silence, close, etc.) — for exercising client deadline
// and disconnect paths no real server would take.
class FakeNode {
 public:
  explicit FakeNode(std::function<void(net::Socket&)> script)
      : script_(std::move(script)) {
    StatusOr<net::Socket> listener = net::TcpListen("127.0.0.1", 0, 4);
    AIM_CHECK(listener.ok());
    listener_ = std::move(listener).value();
    port_ = *net::LocalPort(listener_);
    thread_ = std::thread([this] { Run(); });
  }

  ~FakeNode() {
    listener_.ShutdownBoth();
    if (thread_.joinable()) thread_.join();
    listener_.Close();
  }

  std::uint16_t port() const { return port_; }

 private:
  void Run() {
    StatusOr<net::Socket> conn = net::Accept(listener_, 10'000);
    if (!conn.ok()) return;
    // Serve the hello so TcpClient::Connect succeeds.
    std::uint8_t header_bytes[kFrameHeaderSize];
    if (!net::RecvAll(*conn, header_bytes, kFrameHeaderSize, 5000).ok()) {
      return;
    }
    FrameHeader header;
    if (!DecodeFrameHeader(header_bytes, &header).ok()) return;
    std::vector<std::uint8_t> payload(header.payload_size);
    if (!payload.empty() &&
        !net::RecvAll(*conn, payload.data(), payload.size(), 5000).ok()) {
      return;
    }
    NodeChannel::NodeInfo info;
    info.num_partitions = 1;
    BinaryWriter reply;
    net::EncodeHelloReply(info, &reply);
    const std::vector<std::uint8_t> frame =
        BuildFrame(FrameType::kHelloReply, 0, header.request_id,
                   reply.buffer().data(), reply.size());
    if (!net::SendAll(*conn, frame.data(), frame.size(), 5000).ok()) return;
    script_(*conn);
  }

  std::function<void(net::Socket&)> script_;
  net::Socket listener_;
  std::uint16_t port_ = 0;
  std::thread thread_;
};

TEST_F(NetLoopbackTest, ClientTimesOutWhenReplyNeverArrives) {
  std::atomic<bool> release{false};
  FakeNode fake([&release](net::Socket& conn) {
    // Swallow requests, never reply.
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });
  auto client = MakeClient(fake.port(), /*request_timeout_millis=*/200);
  ASSERT_TRUE(client->Connect().ok());

  EventCompletion completion;
  ASSERT_TRUE(client->SubmitEvent(SerializedEvent(1), &completion));
  // The deadline sweep must fail the completion; without it this would
  // hang forever on a lost reply.
  ASSERT_TRUE(completion.WaitFor(5000));
  EXPECT_TRUE(completion.status.IsDeadlineExceeded());

  Counter* timeouts = metrics_.GetCounter(
      "aim_net_timeouts_total",
      {{"role", "client"},
       {"peer", "127.0.0.1:" + std::to_string(fake.port())}});
  EXPECT_GE(timeouts->Value(), 1u);
  release.store(true, std::memory_order_release);
  client->Close();
}

TEST_F(NetLoopbackTest, ClientFailsOutstandingRequestsOnDisconnect) {
  FakeNode fake([](net::Socket& conn) {
    // Read one frame header's worth of the incoming request, then drop the
    // connection mid-request.
    std::uint8_t buf[kFrameHeaderSize];
    net::RecvAll(conn, buf, sizeof(buf), 5000);
    conn.ShutdownBoth();
  });
  auto client = MakeClient(fake.port(), /*request_timeout_millis=*/30'000);
  ASSERT_TRUE(client->Connect().ok());

  EventCompletion completion;
  ASSERT_TRUE(client->SubmitEvent(SerializedEvent(1), &completion));
  // Despite the huge request deadline the completion must fail promptly:
  // the receiver observes the disconnect and fails everything outstanding.
  ASSERT_TRUE(completion.WaitFor(10'000));
  EXPECT_TRUE(completion.status.IsDeadlineExceeded());
  client->Close();
}

TEST_F(NetLoopbackTest, ClientReconnectsAfterServerRestart) {
  StartNode();
  StartServer();
  const std::uint16_t port = server_->port();
  auto client = MakeClient(port);
  ASSERT_TRUE(client->EventRoundTrip(SerializedEvent(1), nullptr).ok());

  server_->Stop();
  server_.reset();
  // Submits while the peer is down fail fast (and arm the backoff).
  for (int i = 0; i < 3; ++i) {
    EventCompletion completion;
    if (client->SubmitEvent(SerializedEvent(1), &completion)) {
      ASSERT_TRUE(completion.WaitFor(5000));
      EXPECT_FALSE(completion.status.ok());
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  net::TcpServer::Options opts;
  opts.port = port;  // same endpoint comes back
  opts.metrics = &metrics_;
  server_ = std::make_unique<net::TcpServer>(channel_.get(), opts);
  ASSERT_TRUE(server_->Start().ok());

  // The next submits reconnect lazily through the capped backoff.
  bool recovered = false;
  for (int attempt = 0; attempt < 500 && !recovered; ++attempt) {
    recovered = client->EventRoundTrip(SerializedEvent(1), nullptr).ok();
    if (!recovered) std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(recovered);

  Counter* reconnects = metrics_.GetCounter(
      "aim_net_reconnects_total",
      {{"role", "client"}, {"peer", "127.0.0.1:" + std::to_string(port)}});
  EXPECT_GE(reconnects->Value(), 1u);
  client->Close();
}

// --- batched ingest over the wire -------------------------------------------

TEST_F(NetLoopbackTest, FireAndForgetBatchLandsAsOneFrame) {
  StartNode();
  StartServer();
  auto client = MakeClient(server_->port());
  ASSERT_TRUE(client->Connect().ok());
  // The loopback server advertises the capability, so the client batches.
  ASSERT_NE(client->info().features & NodeChannel::kFeatureEventBatch, 0u);

  Counter* frames = metrics_.GetCounter(
      "aim_net_frames_received_total",
      {{"role", "server"},
       {"addr", "127.0.0.1:" + std::to_string(server_->port())}});
  const std::uint64_t frames_before = frames->Value();
  const std::uint64_t processed_before = node_->stats().events_processed;

  constexpr std::uint32_t kBatch = 32;
  std::vector<EventMessage> batch;
  for (std::uint32_t i = 0; i < kBatch; ++i) {
    EventMessage msg;
    msg.bytes = SerializedEvent(1 + (i % 8));
    batch.push_back(std::move(msg));
  }
  ASSERT_EQ(client->SubmitEventBatch(std::move(batch)), kBatch);
  for (int attempt = 0; attempt < 2000; ++attempt) {
    if (node_->stats().events_processed >= processed_before + kBatch) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(node_->stats().events_processed, processed_before + kBatch);
  // All 32 events crossed the wire in exactly one EVENT_BATCH frame.
  EXPECT_EQ(frames->Value() - frames_before, 1u);
  client->Close();
}

TEST_F(NetLoopbackTest, MixedBatchesSinglesAndQueriesOnOneConnection) {
  StartNode();
  StartServer();
  auto client = MakeClient(server_->port());
  ASSERT_TRUE(client->Connect().ok());

  // EVENT_BATCH, plain EVENT (both reply-wanted and fire-and-forget) and
  // QUERY frames interleaved on one connection: framing must never skew.
  std::uint64_t sent = 0;
  for (int round = 0; round < 10; ++round) {
    std::vector<EventMessage> batch;
    for (int i = 0; i < 16; ++i) {
      EventMessage msg;
      msg.bytes = SerializedEvent(1 + (sent++ % 100));
      batch.push_back(std::move(msg));
    }
    EventCompletion last;
    batch.back().completion = &last;  // reply-wanted tail splits the batch
    ASSERT_EQ(client->SubmitEventBatch(std::move(batch)), 16u);
    ASSERT_TRUE(
        client->EventRoundTrip(SerializedEvent(1 + (sent++ % 100)), nullptr)
            .ok());
    ASSERT_TRUE(last.WaitFor(10'000)) << "round " << round;
    EXPECT_TRUE(last.status.ok()) << last.status.message();
  }
  for (int attempt = 0; attempt < 2000; ++attempt) {
    if (node_->stats().events_processed >= sent) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(node_->stats().events_processed, sent);

  // After the mixed traffic, queries still answer identically to the
  // in-process channel.
  QueryWorkload workload(schema_.get(), &dims_, 7);
  const Query q = workload.Make(1);
  std::vector<std::uint8_t> local;
  std::vector<std::uint8_t> remote;
  for (int attempt = 0; attempt < 500; ++attempt) {
    local = QueryBytes(channel_.get(), q);
    remote = QueryBytes(client.get(), q);
    if (!local.empty() && local == remote) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_FALSE(local.empty());
  EXPECT_EQ(local, remote);
  client->Close();
}

TEST_F(NetLoopbackTest, NewClientFallsBackToPerEventFramesOnOldServer) {
  std::atomic<int> event_frames{0};
  std::atomic<int> batch_frames{0};
  std::atomic<bool> done{false};

  StatusOr<net::Socket> listener = net::TcpListen("127.0.0.1", 0, 4);
  ASSERT_TRUE(listener.ok());
  const std::uint16_t port = *net::LocalPort(*listener);
  // A pre-EVENT_BATCH server: its hello reply stops at the version-1 fields
  // (no capability word), and it only counts what it receives.
  std::thread old_server([&] {
    StatusOr<net::Socket> conn = net::Accept(*listener, 10'000);
    if (!conn.ok()) return;
    auto read_frame = [&](FrameHeader* header,
                          std::vector<std::uint8_t>* payload) {
      std::uint8_t hb[kFrameHeaderSize];
      if (!net::RecvAll(*conn, hb, kFrameHeaderSize, 5000).ok()) return false;
      if (!DecodeFrameHeader(hb, header).ok()) return false;
      payload->resize(header->payload_size);
      return payload->empty() ||
             net::RecvAll(*conn, payload->data(), payload->size(), 5000).ok();
    };
    FrameHeader header;
    std::vector<std::uint8_t> payload;
    if (!read_frame(&header, &payload)) return;  // hello
    BinaryWriter reply;
    reply.PutU32(net::kProtocolVersion);
    reply.PutU32(0);   // node_id
    reply.PutU32(1);   // num_partitions
    reply.PutU32(64);  // record_size — and nothing after it
    const std::vector<std::uint8_t> frame =
        BuildFrame(FrameType::kHelloReply, 0, header.request_id,
                   reply.buffer().data(), reply.size());
    if (!net::SendAll(*conn, frame.data(), frame.size(), 5000).ok()) return;
    while (!done.load(std::memory_order_acquire)) {
      if (!read_frame(&header, &payload)) return;
      if (header.type == FrameType::kEvent) ++event_frames;
      if (header.type == FrameType::kEventBatch) ++batch_frames;
    }
  });

  auto client = MakeClient(port);
  ASSERT_TRUE(client->Connect().ok());
  EXPECT_EQ(client->info().features, 0u);

  std::vector<EventMessage> batch;
  for (int i = 0; i < 10; ++i) {
    EventMessage msg;
    msg.bytes = SerializedEvent(1 + i);
    batch.push_back(std::move(msg));
  }
  // The feature gate must downgrade the whole batch to per-event frames the
  // old server can parse — never an EVENT_BATCH it would drop on.
  ASSERT_EQ(client->SubmitEventBatch(std::move(batch)), 10u);
  for (int attempt = 0; attempt < 2000 && event_frames.load() < 10;
       ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(event_frames.load(), 10);
  EXPECT_EQ(batch_frames.load(), 0);
  done.store(true, std::memory_order_release);
  client->Close();
  listener->ShutdownBoth();
  old_server.join();
  listener->Close();
}

TEST_F(NetLoopbackTest, OldStylePerEventClientStillServed) {
  StartNode();
  StartServer();
  // Hand-rolled pre-batching client: raw hello, then one reply-wanted
  // kEvent. The upgraded server must serve it exactly as before.
  StatusOr<net::Socket> raw =
      net::TcpConnect("127.0.0.1", server_->port(), 2000);
  ASSERT_TRUE(raw.ok());
  auto read_frame = [&](FrameHeader* header,
                        std::vector<std::uint8_t>* payload) {
    std::uint8_t hb[kFrameHeaderSize];
    ASSERT_TRUE(net::RecvAll(*raw, hb, kFrameHeaderSize, 5000).ok());
    ASSERT_TRUE(DecodeFrameHeader(hb, header).ok());
    payload->resize(header->payload_size);
    if (!payload->empty()) {
      ASSERT_TRUE(
          net::RecvAll(*raw, payload->data(), payload->size(), 5000).ok());
    }
  };

  BinaryWriter hello;
  net::EncodeHello(&hello);
  std::vector<std::uint8_t> frame = BuildFrame(
      FrameType::kHello, 0, 1, hello.buffer().data(), hello.size());
  ASSERT_TRUE(net::SendAll(*raw, frame.data(), frame.size(), 2000).ok());
  FrameHeader header;
  std::vector<std::uint8_t> payload;
  read_frame(&header, &payload);
  ASSERT_EQ(header.type, FrameType::kHelloReply);
  // An old client reads only the version-1 fields and stops; the capability
  // word is strictly appended, so nothing it reads moved.
  BinaryReader r(payload.data(), payload.size());
  EXPECT_EQ(r.GetU32(), net::kProtocolVersion);
  EXPECT_EQ(r.GetU32(), 0u);  // node_id
  EXPECT_EQ(r.GetU32(), 2u);  // num_partitions
  EXPECT_EQ(r.GetU32(), schema_->record_size());
  ASSERT_TRUE(r.ok());

  const std::vector<std::uint8_t> event = SerializedEvent(5);
  frame = BuildFrame(FrameType::kEvent, 0, 2, event.data(), event.size());
  ASSERT_TRUE(net::SendAll(*raw, frame.data(), frame.size(), 2000).ok());
  read_frame(&header, &payload);
  ASSERT_EQ(header.type, FrameType::kEventReply);
  EXPECT_EQ(header.request_id, 2u);
  BinaryReader er(payload.data(), payload.size());
  Status status;
  std::vector<std::uint32_t> fired;
  ASSERT_TRUE(net::DecodeEventReply(&er, &status, &fired).ok());
  EXPECT_TRUE(status.ok()) << status.message();
  raw->Close();
}

TEST_F(NetLoopbackTest, SubmitAfterCloseFails) {
  StartNode();
  StartServer();
  auto client = MakeClient(server_->port());
  ASSERT_TRUE(client->Connect().ok());
  client->Close();
  EventCompletion completion;
  EXPECT_FALSE(client->SubmitEvent(SerializedEvent(1), &completion));
  EXPECT_FALSE(client->SubmitQuery({1, 2, 3}, [](auto&&) {}));
}

}  // namespace
}  // namespace aim
