#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "aim/storage/column_map.h"
#include "test_util.h"

namespace aim {
namespace {

using testing_util::FillRandomRow;
using testing_util::MakeTinySchema;

class ColumnMapParamTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ColumnMapParamTest, InsertMaterializeRoundTrip) {
  auto schema = MakeTinySchema();
  const std::uint32_t bucket_size = GetParam();
  constexpr std::uint32_t kRecords = 300;
  ColumnMap map(schema.get(), bucket_size, kRecords);
  Random rng(11 + bucket_size);

  std::vector<std::vector<std::uint8_t>> rows;
  for (std::uint32_t i = 0; i < kRecords; ++i) {
    std::vector<std::uint8_t> row(schema->record_size(), 0);
    FillRandomRow(*schema, &rng, row.data());
    const EntityId entity = 1000 + i;
    StatusOr<RecordId> id = map.Insert(entity, row.data(), /*version=*/i + 1);
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(*id, i);
    rows.push_back(std::move(row));
  }
  EXPECT_EQ(map.num_records(), kRecords);
  EXPECT_EQ(map.num_buckets(), (kRecords + bucket_size - 1) / bucket_size);

  std::vector<std::uint8_t> out(schema->record_size(), 0);
  for (std::uint32_t i = 0; i < kRecords; ++i) {
    const RecordId id = map.Lookup(1000 + i);
    ASSERT_NE(id, kInvalidRecordId);
    map.MaterializeRow(id, out.data());
    ASSERT_EQ(std::memcmp(out.data(), rows[i].data(), out.size()), 0)
        << "record " << i << " bucket_size " << bucket_size;
    EXPECT_EQ(map.version(id), i + 1);
  }
}

TEST_P(ColumnMapParamTest, ScatterOverwritesInPlace) {
  auto schema = MakeTinySchema();
  ColumnMap map(schema.get(), GetParam(), 100);
  Random rng(5);
  std::vector<std::uint8_t> row(schema->record_size(), 0);
  for (std::uint32_t i = 0; i < 50; ++i) {
    FillRandomRow(*schema, &rng, row.data());
    ASSERT_TRUE(map.Insert(i + 1, row.data(), 1).ok());
  }
  // Overwrite record 17 with new bytes.
  FillRandomRow(*schema, &rng, row.data());
  const RecordId id = map.Lookup(18);
  map.ScatterRow(id, row.data());
  map.set_version(id, 9);

  std::vector<std::uint8_t> out(schema->record_size(), 0);
  map.MaterializeRow(id, out.data());
  EXPECT_EQ(std::memcmp(out.data(), row.data(), out.size()), 0);
  EXPECT_EQ(map.version(id), 9u);
  EXPECT_EQ(map.num_records(), 50u);  // unchanged
}

INSTANTIATE_TEST_SUITE_P(BucketSizes, ColumnMapParamTest,
                         ::testing::Values(1u,       // pure row store
                                           7u,       // odd partial buckets
                                           32u,      // SIMD minimum
                                           300u,     // exactly all records
                                           100000u   // pure column store
                                           ));

TEST(ColumnMapTest, SingleValueReads) {
  auto schema = MakeTinySchema();
  ColumnMap map(schema.get(), 8, 64);
  Random rng(3);
  std::vector<std::uint8_t> row(schema->record_size(), 0);
  FillRandomRow(*schema, &rng, row.data());
  RecordView rec(schema.get(), row.data());
  rec.Set(schema->FindAttribute("calls_today"), Value::Int32(-77));
  ASSERT_TRUE(map.Insert(5, row.data(), 1).ok());

  const RecordId id = map.Lookup(5);
  EXPECT_EQ(map.GetValue(id, schema->FindAttribute("calls_today")).i32(),
            -77);
}

TEST(ColumnMapTest, DuplicateInsertConflicts) {
  auto schema = MakeTinySchema();
  ColumnMap map(schema.get(), 8, 64);
  std::vector<std::uint8_t> row(schema->record_size(), 0);
  ASSERT_TRUE(map.Insert(5, row.data(), 1).ok());
  StatusOr<RecordId> again = map.Insert(5, row.data(), 1);
  EXPECT_FALSE(again.ok());
  EXPECT_TRUE(again.status().IsConflict());
}

TEST(ColumnMapTest, CapacityExhausted) {
  auto schema = MakeTinySchema();
  ColumnMap map(schema.get(), 4, 8);
  std::vector<std::uint8_t> row(schema->record_size(), 0);
  for (EntityId e = 1; e <= 8; ++e) {
    ASSERT_TRUE(map.Insert(e, row.data(), 1).ok());
  }
  StatusOr<RecordId> overflow = map.Insert(9, row.data(), 1);
  EXPECT_FALSE(overflow.ok());
  EXPECT_TRUE(overflow.status().IsCapacity());
}

TEST(ColumnMapTest, LookupMissing) {
  auto schema = MakeTinySchema();
  ColumnMap map(schema.get(), 8, 64);
  EXPECT_EQ(map.Lookup(42), kInvalidRecordId);
}

TEST(ColumnMapTest, BucketRefExposesColumns) {
  auto schema = MakeTinySchema();
  ColumnMap map(schema.get(), 4, 64);
  std::vector<std::uint8_t> row(schema->record_size(), 0);
  RecordView rec(schema.get(), row.data());
  const std::uint16_t calls = schema->FindAttribute("calls_today");
  for (EntityId e = 1; e <= 6; ++e) {
    rec.Set(calls, Value::Int32(static_cast<std::int32_t>(e * 10)));
    ASSERT_TRUE(map.Insert(e, row.data(), 1).ok());
  }
  ASSERT_EQ(map.num_buckets(), 2u);

  const ColumnMap::BucketRef b0 = map.bucket(0);
  EXPECT_EQ(b0.count, 4u);
  EXPECT_EQ(b0.first_record, 0u);
  const auto* col = reinterpret_cast<const std::int32_t*>(
      b0.Column(map, calls));
  EXPECT_EQ(col[0], 10);
  EXPECT_EQ(col[3], 40);

  const ColumnMap::BucketRef b1 = map.bucket(1);
  EXPECT_EQ(b1.count, 2u);  // partial tail bucket
  const auto* col1 = reinterpret_cast<const std::int32_t*>(
      b1.Column(map, calls));
  EXPECT_EQ(col1[0], 50);
  EXPECT_EQ(col1[1], 60);
}

TEST(ColumnMapTest, BucketBytesAccounting) {
  auto schema = MakeTinySchema();
  ColumnMap map(schema.get(), 16, 64);
  std::uint64_t attr_bytes = 0;
  for (std::uint16_t i = 0; i < schema->num_attributes(); ++i) {
    attr_bytes += ValueTypeSize(schema->attribute(i).type);
  }
  EXPECT_EQ(map.bucket_bytes(),
            (attr_bytes + schema->state_area_size()) * 16);
}

}  // namespace
}  // namespace aim
