// Kill-point fault injection (ctest label "durability"): a forked child
// performs durable work with a crash handler armed on one of the named
// AIM_CRASH_POINT sites and dies there via SIGKILL — no destructors, no
// flushes, exactly like a real crash. The parent then recovers from the
// surviving files and asserts the durability contract:
//
//   * no acknowledged event (or record op) is lost,
//   * no half-applied state survives (torn log tails truncate cleanly,
//     interrupted checkpoints never become the restore source),
//   * recovery always lands on a consistent chain tip.
//
// The child and parent share one address space layout (plain fork, no
// exec), so the child replays deterministic work the parent can recompute.

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstring>
#include <map>

#include <gtest/gtest.h>

#include "aim/common/crash_point.h"
#include "aim/server/storage_node.h"
#include "aim/storage/checkpoint.h"
#include "aim/storage/event_log.h"
#include "aim/storage/fs_util.h"
#include "aim/storage/recovery.h"
#include "aim/workload/benchmark_schema.h"
#include "aim/workload/cdr_generator.h"
#include "aim/workload/dimension_data.h"
#include "test_util.h"

namespace aim {
namespace {

using testing_util::FillRandomRow;
using testing_util::MakeTinySchema;
using testing_util::RandomEvent;

// --- crash arming (child side) ---------------------------------------------

const char* g_crash_point = nullptr;
int g_crash_countdown = 0;

void CrashHandler(const char* point) {
  if (g_crash_point == nullptr || std::strcmp(point, g_crash_point) != 0) {
    return;
  }
  if (--g_crash_countdown <= 0) {
    ::raise(SIGKILL);  // die mid-operation: no unwinding, no flushing
  }
}

void ArmCrash(const char* point, int countdown) {
  g_crash_point = point;
  g_crash_countdown = countdown;
  SetCrashPointHandler(&CrashHandler);
}

// Forks, runs `child` (which is expected to die at its armed crash point),
// and returns once the parent has confirmed the SIGKILL death.
template <typename Fn>
void RunChildToCrash(Fn&& child) {
  std::fflush(nullptr);  // don't duplicate buffered test output into the child
  const pid_t pid = ::fork();
  ASSERT_NE(pid, -1);
  if (pid == 0) {
    child();
    // Reaching here means the crash point never fired — fail loudly.
    std::fprintf(stderr, "child survived its crash point\n");
    ::_exit(97);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status)) << "child exited with "
                                   << WEXITSTATUS(status);
  ASSERT_EQ(WTERMSIG(status), SIGKILL);
}

// --- shared helpers ---------------------------------------------------------

using Snapshot =
    std::map<EntityId, std::pair<Version, std::vector<std::uint8_t>>>;

Snapshot Snap(const DeltaMainStore& store, std::uint16_t entity_attr) {
  Snapshot snap;
  store.ForEachVisible(entity_attr,
                       [&](EntityId e, Version v, const std::uint8_t* row) {
                         snap[e] = {v, std::vector<std::uint8_t>(
                                           row, row + store.schema()
                                                          .record_size())};
                       });
  return snap;
}

void RemoveTree(const std::string& dir) {
  StatusOr<std::vector<std::string>> names = fs::ListDir(dir);
  if (names.ok()) {
    for (const std::string& n : *names) std::remove((dir + "/" + n).c_str());
  }
  ::rmdir(dir.c_str());
}

// --- checkpoint kill points -------------------------------------------------

class CheckpointKillTest : public ::testing::TestWithParam<const char*> {
 protected:
  CheckpointKillTest() : schema_(MakeTinySchema()) {
    entity_attr_ = schema_->FindAttribute("entity_id");
    dir_ = ::testing::TempDir() + "/aim_kill_ckpt_" +
           std::to_string(::getpid());
    RemoveTree(dir_);
  }
  ~CheckpointKillTest() override { RemoveTree(dir_); }

  std::unique_ptr<DeltaMainStore> MakeStore() {
    DeltaMainStore::Options opts;
    opts.bucket_size = 8;
    opts.max_records = 1024;
    return std::make_unique<DeltaMainStore>(schema_.get(), opts);
  }

  // The child's deterministic workload, split at the first checkpoint so
  // the parent can recompute "state at epoch 1" and "state at epoch 2".
  void PhaseOne(DeltaMainStore* store) {
    Random rng(7);
    std::vector<std::uint8_t> row(schema_->record_size());
    for (EntityId e = 1; e <= 50; ++e) {
      FillRandomRow(*schema_, &rng, row.data());
      RecordView(schema_.get(), row.data())
          .SetAs<std::uint64_t>(entity_attr_, e);
      ASSERT_TRUE(store->Insert(e, row.data()).ok());
    }
    store->Merge();
  }
  void PhaseTwo(DeltaMainStore* store) {
    std::vector<std::uint8_t> row(schema_->record_size());
    for (EntityId e = 1; e <= 6; ++e) {
      Version v = 0;
      ASSERT_TRUE(store->Get(e, row.data(), &v).ok());
      RecordView(schema_.get(), row.data())
          .Set(schema_->FindAttribute("calls_today"),
               Value::Int32(static_cast<std::int32_t>(e) * 31));
      ASSERT_TRUE(store->Put(e, row.data(), v).ok());
    }
    store->Merge();
  }

  std::unique_ptr<Schema> schema_;
  std::uint16_t entity_attr_;
  std::string dir_;
};

TEST_P(CheckpointKillTest, CrashDuringCommitNeverCorruptsTheChain) {
  const char* point = GetParam();
  RunChildToCrash([&] {
    auto store = MakeStore();
    PhaseOne(store.get());
    checkpoint::WriteChained(store.get(), entity_attr_, dir_, 5).status();
    PhaseTwo(store.get());
    ArmCrash(point, 1);
    (void)checkpoint::WriteChained(store.get(), entity_attr_, dir_, 9);
  });

  // Parent = next process start: sweep orphaned temporaries, then recover.
  const std::size_t swept = fs::RemoveStaleTmpFiles(dir_);
  const bool before_rename =
      std::strcmp(point, "checkpoint.post_rename_pre_dirsync") != 0;
  if (before_rename) {
    EXPECT_EQ(swept, 1u) << "crash before rename must orphan the .tmp";
  } else {
    EXPECT_EQ(swept, 0u) << "crash after rename leaves no .tmp";
  }

  auto recovered = MakeStore();
  StatusOr<checkpoint::ChainTip> tip =
      checkpoint::RecoverChain(dir_, recovered.get());
  ASSERT_TRUE(tip.ok()) << tip.status().ToString();

  // Recompute both consistent states the crash could have landed on.
  auto at_epoch1 = MakeStore();
  PhaseOne(at_epoch1.get());
  auto at_epoch2 = MakeStore();
  PhaseOne(at_epoch2.get());
  PhaseTwo(at_epoch2.get());

  if (before_rename) {
    // The interrupted epoch-2 checkpoint must be invisible.
    EXPECT_EQ(tip->epoch, 1u);
    EXPECT_EQ(tip->log_lsn, 5u);
    EXPECT_EQ(Snap(*recovered, entity_attr_), Snap(*at_epoch1, entity_attr_));
  } else {
    // Renamed and (in this test environment) visible: the epoch-2 image is
    // complete, so recovery lands on it with its replay cursor.
    EXPECT_EQ(tip->epoch, 2u);
    EXPECT_EQ(tip->log_lsn, 9u);
    EXPECT_EQ(Snap(*recovered, entity_attr_), Snap(*at_epoch2, entity_attr_));
  }
  // Either way the directory is ready for the next checkpoint: writing one
  // more must chain cleanly onto the recovered tip.
  StatusOr<checkpoint::ChainTip> next = checkpoint::WriteChained(
      recovered.get(), entity_attr_, dir_, tip->log_lsn);
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next->epoch, tip->epoch + 1);
}

INSTANTIATE_TEST_SUITE_P(AllCommitPoints, CheckpointKillTest,
                         ::testing::Values("checkpoint.pre_fsync",
                                           "checkpoint.post_fsync_pre_rename",
                                           "checkpoint.post_rename_pre_dirsync"));

// --- event-log kill points --------------------------------------------------

class EventLogKillTest : public ::testing::Test {
 protected:
  EventLogKillTest() {
    path_ = ::testing::TempDir() + "/aim_kill_log_" +
            std::to_string(::getpid()) + ".log";
    std::remove(path_.c_str());
  }
  ~EventLogKillTest() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(EventLogKillTest, CrashMidAppendTruncatesToAckedPrefix) {
  RunChildToCrash([&] {
    EventLog log;
    if (!log.Open(path_).ok()) ::_exit(96);
    EventLog::Lsn last = 0;
    for (std::uint8_t i = 1; i <= 3; ++i) {
      std::vector<std::uint8_t> payload(16, i);
      StatusOr<EventLog::Lsn> lsn = log.Append(payload);
      if (!lsn.ok()) ::_exit(96);
      last = *lsn;
    }
    if (!log.Sync(last).ok()) ::_exit(96);  // records 1-3 are acked
    ArmCrash("event_log.mid_append", 1);
    std::vector<std::uint8_t> payload(16, 9);
    (void)log.Append(payload);  // dies with the header written, payload not
  });

  // Recovery: the torn record is cut, the three acked records replay
  // bit-exact, and the log accepts new appends.
  EventLog log;
  StatusOr<EventLog::OpenStats> opened = log.Open(path_);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened->records, 3u);
  EXPECT_TRUE(opened->truncated_tear);
  ASSERT_TRUE(log.Close().ok());
  std::uint64_t seen = 0;
  ASSERT_TRUE(EventLog::Replay(path_, 0,
                               [&](EventLog::Lsn,
                                   std::span<const std::uint8_t> p) {
                                 ++seen;
                                 ASSERT_EQ(p.size(), 16u);
                                 for (std::uint8_t b : p) {
                                   ASSERT_EQ(b, static_cast<std::uint8_t>(seen));
                                 }
                               })
                  .ok());
  EXPECT_EQ(seen, 3u);
}

TEST_F(EventLogKillTest, CrashBeforeFsyncLosesOnlyUnackedRecords) {
  RunChildToCrash([&] {
    EventLog log;
    if (!log.Open(path_).ok()) ::_exit(96);
    std::vector<std::uint8_t> payload(8, 1);
    StatusOr<EventLog::Lsn> lsn = log.Append(payload);
    if (!lsn.ok() || !log.Sync(*lsn).ok()) ::_exit(96);  // record 1 acked
    payload.assign(8, 2);
    lsn = log.Append(payload);
    if (!lsn.ok()) ::_exit(96);
    ArmCrash("event_log.pre_sync", 1);
    (void)log.Sync(*lsn);  // dies before the fsync — record 2 never acked
  });

  // The acked record must replay; the unacked one may or may not (its
  // write() hit the page cache, not certainly the disk) — but whatever
  // replays must be a clean prefix of exactly what was appended.
  std::uint64_t seen = 0;
  ASSERT_TRUE(EventLog::Replay(path_, 0,
                               [&](EventLog::Lsn,
                                   std::span<const std::uint8_t> p) {
                                 ++seen;
                                 ASSERT_LE(seen, 2u);
                                 ASSERT_EQ(p.size(), 8u);
                                 for (std::uint8_t b : p) {
                                   ASSERT_EQ(b, static_cast<std::uint8_t>(seen));
                                 }
                               })
                  .ok());
  EXPECT_GE(seen, 1u);
}

// --- node-level kill: acked events survive ---------------------------------

TEST(NodeKillTest, NoAckedEventIsLostAcrossSigkill) {
  const std::string dir = ::testing::TempDir() + "/aim_kill_node_" +
                          std::to_string(::getpid());
  for (std::uint32_t p = 0; p < 4; ++p) {
    RemoveTree(dir + "/p" + std::to_string(p));
  }
  ::rmdir(dir.c_str());

  std::unique_ptr<Schema> schema = MakeCompactSchema();
  BenchmarkDims dims = MakeBenchmarkDims();
  std::vector<Rule> rules;
  constexpr std::uint64_t kEntities = 48;
  constexpr int kCrashAtAppend = 25;

  auto node_options = [&] {
    StorageNode::Options opts;
    opts.node_id = 0;
    opts.num_partitions = 2;
    opts.num_esp_threads = 2;
    opts.bucket_size = 64;
    opts.max_records_per_partition = 1 << 12;
    opts.scan_poll_micros = 200;
    opts.durability.dir = dir;
    return opts;
  };

  // Child reports each acknowledged event (entity, timestamp) over a pipe
  // the instant its completion fires; SIGKILL then cuts it off mid-stream.
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  std::fflush(nullptr);
  const pid_t pid = ::fork();
  ASSERT_NE(pid, -1);
  if (pid == 0) {
    ::close(fds[0]);
    StorageNode node(schema.get(), &dims.catalog, &rules, node_options());
    if (!node.Recover().ok()) ::_exit(96);
    std::vector<std::uint8_t> row(schema->record_size(), 0);
    for (EntityId e = 1; e <= kEntities; ++e) {
      std::fill(row.begin(), row.end(), 0);
      PopulateEntityProfile(*schema, dims, e, kEntities, row.data());
      if (!node.BulkLoad(e, row.data()).ok()) ::_exit(96);
    }
    if (!node.CheckpointNow().ok()) ::_exit(96);
    if (!node.Start().ok()) ::_exit(96);
    // The ESP threads die at the Nth log append, mid-record.
    ArmCrash("event_log.mid_append", kCrashAtAppend);
    Random rng(11);
    for (int i = 0;; ++i) {
      const EntityId caller = static_cast<EntityId>(i % kEntities) + 1;
      const Timestamp ts = 1000000 + i;
      Event event = RandomEvent(&rng, caller, ts);
      BinaryWriter w;
      event.Serialize(&w);
      EventCompletion done;
      if (!node.SubmitEvent(w.TakeBuffer(), &done)) ::_exit(96);
      done.Wait();  // blocks forever once the ESP thread is dead — fine,
                    // SIGKILL already terminated the process by then
      if (!done.status.ok()) ::_exit(96);
      std::uint64_t acked[2] = {caller, static_cast<std::uint64_t>(ts)};
      if (::write(fds[1], acked, sizeof(acked)) != sizeof(acked)) _exit(96);
    }
  }
  ::close(fds[1]);
  std::map<EntityId, std::int64_t> acked;  // entity -> last acked timestamp
  std::uint64_t buf[2];
  ssize_t n;
  std::size_t acked_events = 0;
  while ((n = ::read(fds[0], buf, sizeof(buf))) == sizeof(buf)) {
    acked[buf[0]] = static_cast<std::int64_t>(buf[1]);
    ++acked_events;
  }
  ::close(fds[0]);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  ASSERT_EQ(WTERMSIG(status), SIGKILL);
  ASSERT_GT(acked_events, 0u) << "crash fired before any event was acked";

  // Restart: every acknowledged event's effect must be visible — the
  // entity's row carries the exact timestamp of its last acked event (an
  // unacked newer event may legitimately have survived too, in which case
  // the timestamp is even newer, never older).
  StorageNode node(schema.get(), &dims.catalog, &rules, node_options());
  StatusOr<StorageNode::RecoveryStats> rec = node.Recover();
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_FALSE(rec->cold_start);
  const std::uint16_t entity_attr = schema->FindAttribute("entity_id");
  const std::uint16_t ts_attr = schema->FindAttribute("last_event_ts");
  Snapshot snap;
  for (std::uint32_t p = 0; p < node_options().num_partitions; ++p) {
    Snapshot part = Snap(node.partition(p), entity_attr);
    snap.insert(part.begin(), part.end());
  }
  EXPECT_EQ(snap.size(), kEntities);
  for (const auto& [entity, want_ts] : acked) {
    auto it = snap.find(entity);
    ASSERT_NE(it, snap.end()) << "acked entity " << entity << " missing";
    const std::int64_t got_ts =
        ConstRecordView(schema.get(), it->second.second.data())
            .GetAs<std::int64_t>(ts_attr);
    EXPECT_GE(got_ts, want_ts) << "entity " << entity
                               << " lost its acked event";
  }

  for (std::uint32_t p = 0; p < 4; ++p) {
    RemoveTree(dir + "/p" + std::to_string(p));
  }
  ::rmdir(dir.c_str());
}

}  // namespace
}  // namespace aim
