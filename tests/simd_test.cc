#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "aim/common/random.h"
#include "aim/rta/simd.h"

namespace aim {
namespace {

constexpr CmpOp kAllOps[] = {CmpOp::kLt, CmpOp::kLe, CmpOp::kGt,
                             CmpOp::kGe, CmpOp::kEq, CmpOp::kNe};
constexpr ValueType kAllTypes[] = {ValueType::kInt32,  ValueType::kUInt32,
                                   ValueType::kInt64,  ValueType::kUInt64,
                                   ValueType::kFloat,  ValueType::kDouble};

/// Random column with repeated values (so kEq/kNe hit) and extremes.
std::vector<std::uint8_t> RandomColumn(ValueType type, std::uint32_t count,
                                       Random* rng) {
  std::vector<std::uint8_t> col(count * ValueTypeSize(type));
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::int64_t small = rng->UniformRange(-20, 20);
    switch (type) {
      case ValueType::kInt32: {
        std::int32_t v = rng->OneIn(20)
                             ? std::numeric_limits<std::int32_t>::min()
                             : static_cast<std::int32_t>(small);
        std::memcpy(col.data() + i * 4, &v, 4);
        break;
      }
      case ValueType::kUInt32: {
        std::uint32_t v = rng->OneIn(20)
                              ? std::numeric_limits<std::uint32_t>::max()
                              : static_cast<std::uint32_t>(small + 20);
        std::memcpy(col.data() + i * 4, &v, 4);
        break;
      }
      case ValueType::kInt64: {
        std::int64_t v = small * 1000000007LL;
        std::memcpy(col.data() + i * 8, &v, 8);
        break;
      }
      case ValueType::kUInt64: {
        std::uint64_t v = static_cast<std::uint64_t>(small + 20) * 999983ULL;
        std::memcpy(col.data() + i * 8, &v, 8);
        break;
      }
      case ValueType::kFloat: {
        float v = static_cast<float>(small) * 0.5f;
        std::memcpy(col.data() + i * 4, &v, 4);
        break;
      }
      case ValueType::kDouble: {
        double v = static_cast<double>(small) * 0.25;
        std::memcpy(col.data() + i * 8, &v, 8);
        break;
      }
    }
  }
  return col;
}

Value ConstantFor(ValueType type, std::int64_t raw) {
  switch (type) {
    case ValueType::kInt32:
      return Value::Int32(static_cast<std::int32_t>(raw));
    case ValueType::kUInt32:
      return Value::UInt32(static_cast<std::uint32_t>(raw + 20));
    case ValueType::kInt64:
      return Value::Int64(raw * 1000000007LL);
    case ValueType::kUInt64:
      return Value::UInt64(static_cast<std::uint64_t>(raw + 20) * 999983ULL);
    case ValueType::kFloat:
      return Value::Float(static_cast<float>(raw) * 0.5f);
    case ValueType::kDouble:
      return Value::Double(static_cast<double>(raw) * 0.25);
  }
  return Value();
}

struct FilterCase {
  ValueType type;
  std::uint32_t count;
};

class SimdFilterTest : public ::testing::TestWithParam<FilterCase> {};

TEST_P(SimdFilterTest, MatchesScalarReference) {
  const FilterCase c = GetParam();
  Random rng(static_cast<std::uint64_t>(c.count) * 31 +
             static_cast<std::uint64_t>(c.type));
  const std::vector<std::uint8_t> col = RandomColumn(c.type, c.count, &rng);

  for (CmpOp op : kAllOps) {
    for (int k = 0; k < 5; ++k) {
      const Value constant = ConstantFor(c.type, rng.UniformRange(-20, 20));
      std::vector<std::uint8_t> m_simd(c.count, 0xcc);
      std::vector<std::uint8_t> m_ref(c.count, 0xcc);
      simd::FilterColumn(c.type, col.data(), c.count, op, constant,
                         m_simd.data(), /*combine_and=*/false);
      simd::FilterColumnScalar(c.type, col.data(), c.count, op, constant,
                               m_ref.data(), false);
      ASSERT_EQ(m_simd, m_ref)
          << ValueTypeName(c.type) << " " << CmpOpName(op) << " n=" << c.count;

      // Combine-and on top of a random prior mask.
      std::vector<std::uint8_t> prior(c.count);
      for (auto& b : prior) b = rng.OneIn(2) ? 0xff : 0x00;
      std::vector<std::uint8_t> a_simd = prior, a_ref = prior;
      simd::FilterColumn(c.type, col.data(), c.count, op, constant,
                         a_simd.data(), /*combine_and=*/true);
      simd::FilterColumnScalar(c.type, col.data(), c.count, op, constant,
                               a_ref.data(), true);
      ASSERT_EQ(a_simd, a_ref);
    }
  }
}

class SimdAggTest : public ::testing::TestWithParam<FilterCase> {};

TEST_P(SimdAggTest, MatchesScalarReference) {
  const FilterCase c = GetParam();
  Random rng(static_cast<std::uint64_t>(c.count) * 77 +
             static_cast<std::uint64_t>(c.type));
  const std::vector<std::uint8_t> col = RandomColumn(c.type, c.count, &rng);
  std::vector<std::uint8_t> mask(c.count);
  for (auto& b : mask) b = rng.OneIn(3) ? 0x00 : 0xff;

  simd::AggAccum fast, ref;
  simd::MaskedAggregate(c.type, col.data(), mask.data(), c.count, &fast);
  simd::MaskedAggregateScalar(c.type, col.data(), mask.data(), c.count,
                              &ref);
  EXPECT_EQ(fast.count, ref.count);
  EXPECT_DOUBLE_EQ(fast.min, ref.min);
  EXPECT_DOUBLE_EQ(fast.max, ref.max);
  const double tol = 1e-9 * (1.0 + std::abs(ref.sum));
  EXPECT_NEAR(fast.sum, ref.sum, tol);
}

INSTANTIATE_TEST_SUITE_P(
    TypesAndSizes, SimdFilterTest,
    ::testing::ValuesIn([] {
      std::vector<FilterCase> cases;
      for (ValueType t : kAllTypes) {
        for (std::uint32_t n : {0u, 1u, 7u, 8u, 9u, 64u, 1000u, 3072u}) {
          cases.push_back({t, n});
        }
      }
      return cases;
    }()));

INSTANTIATE_TEST_SUITE_P(
    TypesAndSizes, SimdAggTest,
    ::testing::ValuesIn([] {
      std::vector<FilterCase> cases;
      for (ValueType t : kAllTypes) {
        for (std::uint32_t n : {0u, 1u, 7u, 8u, 9u, 64u, 1000u, 3072u}) {
          cases.push_back({t, n});
        }
      }
      return cases;
    }()));

TEST(SimdMaskTest, CountMask) {
  Random rng(9);
  for (std::uint32_t n : {0u, 1u, 5u, 8u, 63u, 64u, 1000u}) {
    std::vector<std::uint8_t> mask(n);
    std::uint32_t expected = 0;
    for (auto& b : mask) {
      b = rng.OneIn(2) ? 0xff : 0x00;
      expected += b != 0;
    }
    EXPECT_EQ(simd::CountMask(mask.data(), n), expected) << "n=" << n;
  }
}

TEST(SimdMaskTest, FillAndOr) {
  std::vector<std::uint8_t> a(10, 0x00), b(10, 0x00);
  simd::FillMask(a.data(), 10);
  EXPECT_EQ(simd::CountMask(a.data(), 10), 10u);
  b[3] = 0xff;
  std::vector<std::uint8_t> c(10, 0x00);
  simd::MaskOr(c.data(), b.data(), 10);
  EXPECT_EQ(simd::CountMask(c.data(), 10), 1u);
  EXPECT_EQ(c[3], 0xff);
}

TEST(SimdMaskTest, AggAccumMerge) {
  simd::AggAccum a, b;
  a.sum = 10;
  a.min = 1;
  a.max = 5;
  a.count = 3;
  b.sum = 20;
  b.min = 0.5;
  b.max = 9;
  b.count = 4;
  a.MergeFrom(b);
  EXPECT_DOUBLE_EQ(a.sum, 30.0);
  EXPECT_DOUBLE_EQ(a.min, 0.5);
  EXPECT_DOUBLE_EQ(a.max, 9.0);
  EXPECT_EQ(a.count, 7);
}

TEST(SimdTest, ReportsAvx2Availability) {
  // On the CI machine this is informative; both paths are covered by the
  // reference-equivalence tests either way.
  (void)simd::HasAvx2();
  SUCCEED();
}

}  // namespace
}  // namespace aim
