#include <cmath>
#include <cstdlib>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "aim/common/random.h"
#include "aim/rta/simd.h"

namespace aim {
namespace {

/// Dispatch level in effect at process start, before any test calls
/// SetLevel — what the AIM_SIMD_LEVEL env override (if any) produced.
const simd::SimdLevel kStartupLevel = simd::ActiveLevel();

/// Restores the active dispatch tier on scope exit, so cross-tier tests
/// cannot leak a forced level into later tests.
struct LevelGuard {
  simd::SimdLevel prev = simd::ActiveLevel();
  ~LevelGuard() { simd::SetLevel(prev); }
};

/// Every tier this binary+CPU can actually run (always includes kScalar).
std::vector<simd::SimdLevel> SupportedLevels() {
  std::vector<simd::SimdLevel> levels = {simd::SimdLevel::kScalar};
  if (simd::MaxSupportedLevel() >= simd::SimdLevel::kAvx2) {
    levels.push_back(simd::SimdLevel::kAvx2);
  }
  if (simd::MaxSupportedLevel() >= simd::SimdLevel::kAvx512) {
    levels.push_back(simd::SimdLevel::kAvx512);
  }
  return levels;
}

constexpr CmpOp kAllOps[] = {CmpOp::kLt, CmpOp::kLe, CmpOp::kGt,
                             CmpOp::kGe, CmpOp::kEq, CmpOp::kNe};
constexpr ValueType kAllTypes[] = {ValueType::kInt32,  ValueType::kUInt32,
                                   ValueType::kInt64,  ValueType::kUInt64,
                                   ValueType::kFloat,  ValueType::kDouble};

/// Random column with repeated values (so kEq/kNe hit) and extremes.
std::vector<std::uint8_t> RandomColumn(ValueType type, std::uint32_t count,
                                       Random* rng) {
  std::vector<std::uint8_t> col(count * ValueTypeSize(type));
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::int64_t small = rng->UniformRange(-20, 20);
    switch (type) {
      case ValueType::kInt32: {
        std::int32_t v = rng->OneIn(20)
                             ? std::numeric_limits<std::int32_t>::min()
                             : static_cast<std::int32_t>(small);
        std::memcpy(col.data() + i * 4, &v, 4);
        break;
      }
      case ValueType::kUInt32: {
        std::uint32_t v = rng->OneIn(20)
                              ? std::numeric_limits<std::uint32_t>::max()
                              : static_cast<std::uint32_t>(small + 20);
        std::memcpy(col.data() + i * 4, &v, 4);
        break;
      }
      case ValueType::kInt64: {
        std::int64_t v = small * 1000000007LL;
        std::memcpy(col.data() + i * 8, &v, 8);
        break;
      }
      case ValueType::kUInt64: {
        std::uint64_t v = static_cast<std::uint64_t>(small + 20) * 999983ULL;
        std::memcpy(col.data() + i * 8, &v, 8);
        break;
      }
      case ValueType::kFloat: {
        float v = static_cast<float>(small) * 0.5f;
        std::memcpy(col.data() + i * 4, &v, 4);
        break;
      }
      case ValueType::kDouble: {
        double v = static_cast<double>(small) * 0.25;
        std::memcpy(col.data() + i * 8, &v, 8);
        break;
      }
    }
  }
  return col;
}

Value ConstantFor(ValueType type, std::int64_t raw) {
  switch (type) {
    case ValueType::kInt32:
      return Value::Int32(static_cast<std::int32_t>(raw));
    case ValueType::kUInt32:
      return Value::UInt32(static_cast<std::uint32_t>(raw + 20));
    case ValueType::kInt64:
      return Value::Int64(raw * 1000000007LL);
    case ValueType::kUInt64:
      return Value::UInt64(static_cast<std::uint64_t>(raw + 20) * 999983ULL);
    case ValueType::kFloat:
      return Value::Float(static_cast<float>(raw) * 0.5f);
    case ValueType::kDouble:
      return Value::Double(static_cast<double>(raw) * 0.25);
  }
  return Value();
}

struct FilterCase {
  ValueType type;
  std::uint32_t count;
};

class SimdFilterTest : public ::testing::TestWithParam<FilterCase> {};

TEST_P(SimdFilterTest, MatchesScalarReferenceAtEveryTier) {
  const FilterCase c = GetParam();
  LevelGuard guard;
  for (simd::SimdLevel level : SupportedLevels()) {
    ASSERT_EQ(simd::SetLevel(level), level);
    Random rng(static_cast<std::uint64_t>(c.count) * 31 +
               static_cast<std::uint64_t>(c.type));
    const std::vector<std::uint8_t> col = RandomColumn(c.type, c.count, &rng);

    for (CmpOp op : kAllOps) {
      for (int k = 0; k < 5; ++k) {
        const Value constant = ConstantFor(c.type, rng.UniformRange(-20, 20));
        std::vector<std::uint8_t> m_simd(c.count, 0xcc);
        std::vector<std::uint8_t> m_ref(c.count, 0xcc);
        simd::FilterColumn(c.type, col.data(), c.count, op, constant,
                           m_simd.data(), /*combine_and=*/false);
        simd::FilterColumnScalar(c.type, col.data(), c.count, op, constant,
                                 m_ref.data(), false);
        ASSERT_EQ(m_simd, m_ref)
            << simd::SimdLevelName(level) << " " << ValueTypeName(c.type)
            << " " << CmpOpName(op) << " n=" << c.count;

        // Combine-and on top of a random prior mask.
        std::vector<std::uint8_t> prior(c.count);
        for (auto& b : prior) b = rng.OneIn(2) ? 0xff : 0x00;
        std::vector<std::uint8_t> a_simd = prior, a_ref = prior;
        simd::FilterColumn(c.type, col.data(), c.count, op, constant,
                           a_simd.data(), /*combine_and=*/true);
        simd::FilterColumnScalar(c.type, col.data(), c.count, op, constant,
                                 a_ref.data(), true);
        ASSERT_EQ(a_simd, a_ref) << simd::SimdLevelName(level);
      }
    }
  }
}

class SimdAggTest : public ::testing::TestWithParam<FilterCase> {};

TEST_P(SimdAggTest, MatchesScalarReferenceAtEveryTier) {
  const FilterCase c = GetParam();
  LevelGuard guard;
  for (simd::SimdLevel level : SupportedLevels()) {
    ASSERT_EQ(simd::SetLevel(level), level);
    Random rng(static_cast<std::uint64_t>(c.count) * 77 +
               static_cast<std::uint64_t>(c.type));
    const std::vector<std::uint8_t> col = RandomColumn(c.type, c.count, &rng);
    std::vector<std::uint8_t> mask(c.count);
    for (auto& b : mask) b = rng.OneIn(3) ? 0x00 : 0xff;

    simd::AggAccum fast, ref;
    simd::MaskedAggregate(c.type, col.data(), mask.data(), c.count, &fast);
    simd::MaskedAggregateScalar(c.type, col.data(), mask.data(), c.count,
                                &ref);
    EXPECT_EQ(fast.count, ref.count) << simd::SimdLevelName(level);
    EXPECT_DOUBLE_EQ(fast.min, ref.min) << simd::SimdLevelName(level);
    EXPECT_DOUBLE_EQ(fast.max, ref.max) << simd::SimdLevelName(level);
    const double tol = 1e-9 * (1.0 + std::abs(ref.sum));
    EXPECT_NEAR(fast.sum, ref.sum, tol) << simd::SimdLevelName(level);
  }
}

INSTANTIATE_TEST_SUITE_P(
    TypesAndSizes, SimdFilterTest,
    ::testing::ValuesIn([] {
      std::vector<FilterCase> cases;
      for (ValueType t : kAllTypes) {
        for (std::uint32_t n : {0u, 1u, 7u, 8u, 9u, 64u, 1000u, 3072u}) {
          cases.push_back({t, n});
        }
      }
      return cases;
    }()));

INSTANTIATE_TEST_SUITE_P(
    TypesAndSizes, SimdAggTest,
    ::testing::ValuesIn([] {
      std::vector<FilterCase> cases;
      for (ValueType t : kAllTypes) {
        for (std::uint32_t n : {0u, 1u, 7u, 8u, 9u, 64u, 1000u, 3072u}) {
          cases.push_back({t, n});
        }
      }
      return cases;
    }()));

TEST(SimdMaskTest, CountMask) {
  Random rng(9);
  for (std::uint32_t n : {0u, 1u, 5u, 8u, 63u, 64u, 1000u}) {
    std::vector<std::uint8_t> mask(n);
    std::uint32_t expected = 0;
    for (auto& b : mask) {
      b = rng.OneIn(2) ? 0xff : 0x00;
      expected += b != 0;
    }
    EXPECT_EQ(simd::CountMask(mask.data(), n), expected) << "n=" << n;
  }
}

TEST(SimdMaskTest, FillAndOr) {
  std::vector<std::uint8_t> a(10, 0x00), b(10, 0x00);
  simd::FillMask(a.data(), 10);
  EXPECT_EQ(simd::CountMask(a.data(), 10), 10u);
  b[3] = 0xff;
  std::vector<std::uint8_t> c(10, 0x00);
  simd::MaskOr(c.data(), b.data(), 10);
  EXPECT_EQ(simd::CountMask(c.data(), 10), 1u);
  EXPECT_EQ(c[3], 0xff);
}

TEST(SimdMaskTest, AggAccumMerge) {
  simd::AggAccum a, b;
  a.sum = 10;
  a.min = 1;
  a.max = 5;
  a.count = 3;
  b.sum = 20;
  b.min = 0.5;
  b.max = 9;
  b.count = 4;
  a.MergeFrom(b);
  EXPECT_DOUBLE_EQ(a.sum, 30.0);
  EXPECT_DOUBLE_EQ(a.min, 0.5);
  EXPECT_DOUBLE_EQ(a.max, 9.0);
  EXPECT_EQ(a.count, 7);
}

TEST(SimdTest, ReportsAvx2Availability) {
  // On the CI machine this is informative; both paths are covered by the
  // reference-equivalence tests either way.
  (void)simd::HasAvx2();
  (void)simd::HasAvx512();
  SUCCEED();
}

// ---------------------------------------------------------------------------
// Cross-tier dispatch: special values and the level API itself.
// ---------------------------------------------------------------------------

template <typename T>
std::vector<std::uint8_t> AsBytes(const std::vector<T>& vals) {
  std::vector<std::uint8_t> out(vals.size() * sizeof(T));
  std::memcpy(out.data(), vals.data(), out.size());
  return out;
}

/// NaN / infinity semantics must be bit-identical across tiers: NaN
/// compares false for every ordered op and true for kNe; min/max skip NaN;
/// the sum propagates NaN. Column length 19 exercises a non-vector-width
/// tail at both 8- and 16-lane widths.
TEST(SimdDispatchTest, FloatSpecialValueParityAcrossTiers) {
  const float inf = std::numeric_limits<float>::infinity();
  const float qnan = std::numeric_limits<float>::quiet_NaN();
  std::vector<float> vals = {0.5f, -1.0f, qnan, inf,  -inf, 3.0f, qnan,
                             2.5f, -2.5f, inf,  qnan, 0.0f, -0.0f};
  while (vals.size() < 19) vals.push_back(static_cast<float>(vals.size()));
  const std::vector<std::uint8_t> col = AsBytes(vals);
  const auto n = static_cast<std::uint32_t>(vals.size());

  LevelGuard guard;
  for (simd::SimdLevel level : SupportedLevels()) {
    ASSERT_EQ(simd::SetLevel(level), level);
    for (CmpOp op : kAllOps) {
      for (float cv : {0.0f, 2.5f, inf, -inf}) {
        std::vector<std::uint8_t> got(n, 0xcc), want(n, 0xcc);
        simd::FilterColumn(ValueType::kFloat, col.data(), n, op,
                           Value::Float(cv), got.data(), false);
        simd::FilterColumnScalar(ValueType::kFloat, col.data(), n, op,
                                 Value::Float(cv), want.data(), false);
        ASSERT_EQ(got, want) << simd::SimdLevelName(level) << " "
                             << CmpOpName(op) << " c=" << cv;
      }
    }

    // Aggregation with every row selected: min/max skip the NaNs but keep
    // the infinities; the sum is NaN-poisoned exactly like the scalar ref.
    std::vector<std::uint8_t> mask(n, 0xff);
    simd::AggAccum got, want;
    simd::MaskedAggregate(ValueType::kFloat, col.data(), mask.data(), n,
                          &got);
    simd::MaskedAggregateScalar(ValueType::kFloat, col.data(), mask.data(),
                                n, &want);
    EXPECT_EQ(got.count, want.count) << simd::SimdLevelName(level);
    EXPECT_DOUBLE_EQ(got.min, want.min) << simd::SimdLevelName(level);
    EXPECT_DOUBLE_EQ(got.max, want.max) << simd::SimdLevelName(level);
    EXPECT_TRUE(std::isnan(got.sum) && std::isnan(want.sum))
        << simd::SimdLevelName(level);

    // All-false mask: min/max stay at their sentinels on every tier.
    std::fill(mask.begin(), mask.end(), 0);
    simd::AggAccum none;
    simd::MaskedAggregate(ValueType::kFloat, col.data(), mask.data(), n,
                          &none);
    EXPECT_EQ(none.count, 0) << simd::SimdLevelName(level);
    EXPECT_DOUBLE_EQ(none.min, std::numeric_limits<double>::infinity());
    EXPECT_DOUBLE_EQ(none.max, -std::numeric_limits<double>::infinity());
  }
}

/// Integer extremes: INT32_MIN/MAX (the vector tiers' min/max sentinel
/// values appearing as real data) and UINT32_MAX must aggregate and filter
/// identically on every tier, including with an all-false mask.
TEST(SimdDispatchTest, IntegerSaturationParityAcrossTiers) {
  std::vector<std::int32_t> ivals = {std::numeric_limits<std::int32_t>::max(),
                                     std::numeric_limits<std::int32_t>::min(),
                                     0,
                                     -1,
                                     1,
                                     std::numeric_limits<std::int32_t>::max(),
                                     std::numeric_limits<std::int32_t>::min()};
  while (ivals.size() < 21) {
    ivals.push_back(static_cast<std::int32_t>(ivals.size()) - 10);
  }
  const std::vector<std::uint8_t> col = AsBytes(ivals);
  const auto n = static_cast<std::uint32_t>(ivals.size());

  LevelGuard guard;
  for (simd::SimdLevel level : SupportedLevels()) {
    ASSERT_EQ(simd::SetLevel(level), level);
    for (CmpOp op : kAllOps) {
      for (std::int32_t cv : {std::numeric_limits<std::int32_t>::min(),
                              std::numeric_limits<std::int32_t>::max(), 0}) {
        std::vector<std::uint8_t> got(n, 0xcc), want(n, 0xcc);
        simd::FilterColumn(ValueType::kInt32, col.data(), n, op,
                           Value::Int32(cv), got.data(), false);
        simd::FilterColumnScalar(ValueType::kInt32, col.data(), n, op,
                                 Value::Int32(cv), want.data(), false);
        ASSERT_EQ(got, want) << simd::SimdLevelName(level) << " "
                             << CmpOpName(op) << " c=" << cv;
      }
    }

    for (bool select_all : {true, false}) {
      std::vector<std::uint8_t> mask(n, select_all ? 0xff : 0x00);
      simd::AggAccum got, want;
      simd::MaskedAggregate(ValueType::kInt32, col.data(), mask.data(), n,
                            &got);
      simd::MaskedAggregateScalar(ValueType::kInt32, col.data(), mask.data(),
                                  n, &want);
      EXPECT_EQ(got.count, want.count) << simd::SimdLevelName(level);
      EXPECT_DOUBLE_EQ(got.min, want.min) << simd::SimdLevelName(level);
      EXPECT_DOUBLE_EQ(got.max, want.max) << simd::SimdLevelName(level);
      EXPECT_DOUBLE_EQ(got.sum, want.sum) << simd::SimdLevelName(level);
    }
  }
}

TEST(SimdDispatchTest, LevelNamesRoundTrip) {
  for (simd::SimdLevel level :
       {simd::SimdLevel::kScalar, simd::SimdLevel::kAvx2,
        simd::SimdLevel::kAvx512}) {
    simd::SimdLevel parsed;
    ASSERT_TRUE(simd::ParseSimdLevel(simd::SimdLevelName(level), &parsed));
    EXPECT_EQ(parsed, level);
  }
  simd::SimdLevel out;
  EXPECT_FALSE(simd::ParseSimdLevel("sse9", &out));
  EXPECT_FALSE(simd::ParseSimdLevel(nullptr, &out));
}

TEST(SimdDispatchTest, SetLevelClampsToSupported) {
  LevelGuard guard;
  const simd::SimdLevel max = simd::MaxSupportedLevel();
  // Requesting the highest tier yields at most what the host supports.
  EXPECT_EQ(simd::SetLevel(simd::SimdLevel::kAvx512),
            max >= simd::SimdLevel::kAvx512 ? simd::SimdLevel::kAvx512 : max);
  // Scalar is always available and always honored.
  EXPECT_EQ(simd::SetLevel(simd::SimdLevel::kScalar),
            simd::SimdLevel::kScalar);
  EXPECT_EQ(simd::ActiveLevel(), simd::SimdLevel::kScalar);
}

TEST(SimdDispatchTest, EnvOverrideRespected) {
  const char* env = std::getenv("AIM_SIMD_LEVEL");
  if (env == nullptr) {
    GTEST_SKIP() << "AIM_SIMD_LEVEL not set (CI sets it per dispatch leg)";
  }
  simd::SimdLevel requested;
  if (!simd::ParseSimdLevel(env, &requested)) {
    GTEST_SKIP() << "unrecognized AIM_SIMD_LEVEL spelling: " << env;
  }
  const simd::SimdLevel expect =
      requested > simd::MaxSupportedLevel() ? simd::MaxSupportedLevel()
                                            : requested;
  // kStartupLevel snapshots ActiveLevel before any test forces a tier.
  EXPECT_EQ(kStartupLevel, expect);
}

}  // namespace
}  // namespace aim
