#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>

#include "aim/rta/compiled_query.h"
#include "aim/rta/sql_parser.h"
#include "aim/server/aim_db.h"
#include "aim/workload/benchmark_schema.h"
#include "aim/workload/cdr_generator.h"
#include "aim/workload/dimension_data.h"

namespace aim {
namespace {

class SqlParserTest : public ::testing::Test {
 protected:
  SqlParserTest()
      : schema_(MakeBenchmarkSchema()),
        dims_(MakeBenchmarkDims()),
        parser_(schema_.get(), &dims_.catalog) {}

  Query MustParse(const std::string& sql) {
    StatusOr<Query> q = parser_.Parse(sql);
    AIM_CHECK_MSG(q.ok(), "%s: %s", sql.c_str(),
                  q.status().ToString().c_str());
    return std::move(q).value();
  }

  void ExpectError(const std::string& sql, const std::string& what) {
    StatusOr<Query> q = parser_.Parse(sql);
    ASSERT_FALSE(q.ok()) << sql;
    EXPECT_NE(q.status().message().find(what), std::string::npos)
        << q.status().ToString();
  }

  std::unique_ptr<Schema> schema_;
  BenchmarkDims dims_;
  SqlParser parser_;
};

TEST_F(SqlParserTest, PaperQuery1) {
  const Query q = MustParse(
      "SELECT AVG(total_duration_this_week) FROM AnalyticsMatrix "
      "WHERE number_of_local_calls_this_week > 2;");
  EXPECT_EQ(q.kind, Query::Kind::kAggregate);
  ASSERT_EQ(q.select.size(), 1u);
  EXPECT_EQ(q.select[0].op, AggOp::kAvg);
  EXPECT_EQ(q.select[0].attr,
            schema_->FindAttribute("total_duration_this_week"));
  ASSERT_EQ(q.where.size(), 1u);
  EXPECT_EQ(q.where[0].op, CmpOp::kGt);
  EXPECT_EQ(q.where[0].constant.i32(), 2);
}

TEST_F(SqlParserTest, PaperQuery2) {
  const Query q = MustParse(
      "SELECT MAX(most_expensive_call_this_week) FROM AnalyticsMatrix "
      "WHERE number_of_calls_this_week > 3");
  EXPECT_EQ(q.select[0].op, AggOp::kMax);
}

TEST_F(SqlParserTest, PaperQuery3SumRatioGroupByLimit) {
  const Query q = MustParse(
      "SELECT SUM(total_cost_this_week) / SUM(total_duration_this_week) "
      "AS cost_ratio FROM AnalyticsMatrix "
      "GROUP BY number_of_calls_this_week LIMIT 100");
  EXPECT_EQ(q.kind, Query::Kind::kGroupBy);
  ASSERT_EQ(q.select.size(), 1u);
  EXPECT_TRUE(q.select[0].is_sum_ratio);
  EXPECT_EQ(q.group_by.kind, GroupBy::Kind::kMatrixAttr);
  EXPECT_EQ(q.limit, 100u);
}

TEST_F(SqlParserTest, PaperQuery4DimJoinAndGroupBy) {
  const Query q = MustParse(
      "SELECT city, AVG(number_of_local_calls_this_week), "
      "SUM(total_duration_of_local_calls_this_week) "
      "FROM AnalyticsMatrix, RegionInfo "
      "WHERE number_of_local_calls_this_week > 2 "
      "AND total_duration_of_local_calls_this_week > 20 "
      "AND AnalyticsMatrix.zip = RegionInfo.zip "
      "GROUP BY city");
  EXPECT_EQ(q.kind, Query::Kind::kGroupBy);
  EXPECT_EQ(q.select.size(), 2u);  // the echoed 'city' maps to the group-by
  EXPECT_EQ(q.where.size(), 2u);
  EXPECT_EQ(q.group_by.kind, GroupBy::Kind::kDimColumn);
  EXPECT_EQ(q.group_by.dim_table, dims_.region_info);
  EXPECT_EQ(q.group_by.dim_column, dims_.region_city);
  EXPECT_EQ(q.group_by.fk_attr, schema_->FindAttribute("zip"));
}

TEST_F(SqlParserTest, PaperQuery5AliasesAndLabelPredicates) {
  const Query q = MustParse(
      "SELECT region, "
      "SUM(total_cost_of_local_calls_this_week) AS local, "
      "SUM(total_cost_of_long_distance_calls_this_week) AS long_distance "
      "FROM AnalyticsMatrix a, SubscriptionType t, Category c, RegionInfo r "
      "WHERE t.type = 'prepaid' AND c.category = 'category_2' "
      "AND a.subscription_type = t.id AND a.category = c.id "
      "AND a.zip = r.zip "
      "GROUP BY region");
  EXPECT_EQ(q.kind, Query::Kind::kGroupBy);
  EXPECT_EQ(q.select.size(), 2u);
  ASSERT_EQ(q.dim_where.size(), 2u);
  EXPECT_EQ(q.dim_where[0].str_constant, "prepaid");
  EXPECT_EQ(q.dim_where[0].dim_table, dims_.subscription_type);
  EXPECT_EQ(q.dim_where[0].fk_attr,
            schema_->FindAttribute("subscription_type"));
  EXPECT_EQ(q.dim_where[1].str_constant, "category_2");
  EXPECT_EQ(q.group_by.dim_column, dims_.region_region);
}

TEST_F(SqlParserTest, AllOperatorsAndTypes) {
  const Query q = MustParse(
      "SELECT COUNT(*), MIN(duration_today_min), SUM(cost_today_sum) "
      "FROM AnalyticsMatrix "
      "WHERE number_of_calls_today >= 1 AND number_of_calls_today <= 30 "
      "AND duration_today_sum < 9000.5 AND cost_today_sum > 0 "
      "AND number_of_calls_this_week <> 7 AND zip != 999");
  EXPECT_EQ(q.select.size(), 3u);
  ASSERT_EQ(q.where.size(), 6u);
  EXPECT_EQ(q.where[0].op, CmpOp::kGe);
  EXPECT_EQ(q.where[1].op, CmpOp::kLe);
  EXPECT_EQ(q.where[2].op, CmpOp::kLt);
  EXPECT_EQ(q.where[2].constant.type(), ValueType::kFloat);
  EXPECT_EQ(q.where[4].op, CmpOp::kNe);
  EXPECT_EQ(q.where[5].constant.type(), ValueType::kUInt32);
}

TEST_F(SqlParserTest, NumericDimPredicate) {
  // Population-style numeric predicate goes through the dim path only when
  // the column is qualified with a dim table.
  const Query q = MustParse(
      "SELECT COUNT(*) FROM AnalyticsMatrix, RegionInfo r "
      "WHERE AnalyticsMatrix.zip = r.zip AND r.city = 'city_1'");
  ASSERT_EQ(q.dim_where.size(), 1u);
  EXPECT_EQ(q.dim_where[0].str_constant, "city_1");
}

TEST_F(SqlParserTest, ErrorsAreDiagnosed) {
  ExpectError("FROM x", "expected SELECT");
  ExpectError("SELECT FROM x", "expected select item");
  ExpectError("SELECT COUNT(*)", "expected FROM");
  ExpectError("SELECT COUNT(*) FROM AnalyticsMatrix WHERE nope > 1",
              "cannot resolve column");
  ExpectError("SELECT SUM(no_col) FROM AnalyticsMatrix", "unknown matrix");
  ExpectError(
      "SELECT COUNT(*) FROM AnalyticsMatrix, NoTable WHERE a = 1",
      "unknown dimension table");
  ExpectError(
      "SELECT COUNT(*) FROM AnalyticsMatrix, RegionInfo "
      "WHERE RegionInfo.city = 'x'",
      "requires a join condition");
  ExpectError("SELECT city FROM AnalyticsMatrix", "must match the GROUP BY");
  ExpectError("SELECT COUNT(*) FROM AnalyticsMatrix trailing nonsense",
              "unexpected trailing");
  // Label literal compared against an unjoined matrix column cannot be
  // resolved as a dimension predicate.
  ExpectError("SELECT COUNT(*) FROM AnalyticsMatrix WHERE zip < 'x'",
              "cannot resolve column");
  ExpectError("SELECT COUNT(*) FROM AnalyticsMatrix WHERE zip ~ 3",
              "unexpected character");
  ExpectError("SELECT COUNT(*) FROM AnalyticsMatrix WHERE zip = 'uncl",
              "unterminated string");
}

// SQL arrives over the wire, so the parser must stay well-defined on byte
// values a text editor would never produce. These inputs are also committed
// fuzz seeds (fuzz/corpus/sql_parser/); the assertions here pin the exact
// diagnostics the fuzz harness only checks the shape of.
TEST_F(SqlParserTest, EmbeddedNulIsDiagnosedNotTruncated) {
  std::string sql = "SELECT COUNT(*) FROM AnalyticsMatrix";
  sql += '\0';
  sql += " WHERE zip = 3";
  StatusOr<Query> q = parser_.Parse(sql);
  ASSERT_FALSE(q.ok());
  EXPECT_TRUE(q.status().IsInvalidArgument()) << q.status().ToString();
  // The NUL byte sits at offset 36; the error must name that position and
  // escape the byte rather than embedding it raw (a C-string-truncated
  // parser would instead accept the statement up to the NUL).
  EXPECT_NE(q.status().message().find("offset 36"), std::string::npos)
      << q.status().ToString();
  EXPECT_NE(q.status().message().find("\\x00"), std::string::npos)
      << q.status().ToString();
  EXPECT_EQ(q.status().message().find('\0'), std::string::npos);
}

TEST_F(SqlParserTest, NonAsciiBytesAreDiagnosedWithoutUb) {
  // Bytes >= 0x80 are negative on a signed-char platform; feeding them to
  // std::toupper/isalpha without the unsigned-char cast is UB. The parser
  // must reject them with a position-annotated, fully printable message.
  for (unsigned int b = 0x80; b <= 0xFF; b += 0x15) {
    std::string sql = "SELECT ";
    sql += static_cast<char>(b);
    StatusOr<Query> q = parser_.Parse(sql);
    ASSERT_FALSE(q.ok()) << "byte 0x" << std::hex << b;
    EXPECT_TRUE(q.status().IsInvalidArgument());
    EXPECT_NE(q.status().message().find("offset 7"), std::string::npos)
        << q.status().ToString();
    char esc[8];
    std::snprintf(esc, sizeof(esc), "\\x%02x", b);
    EXPECT_NE(q.status().message().find(esc), std::string::npos)
        << q.status().ToString();
    for (char c : q.status().message()) {
      EXPECT_TRUE(std::isprint(static_cast<unsigned char>(c)) != 0 ||
                  c == ' ')
          << "unprintable byte in error message: " << q.status().ToString();
    }
  }
}

TEST_F(SqlParserTest, ParsedQueriesCompileAndRun) {
  // End-to-end: SQL -> Query -> execution equals builder-made query.
  auto compact = MakeCompactSchema();
  SqlParser parser(compact.get(), &dims_.catalog);
  AimDb::Options opts;
  opts.max_records = 2048;
  AimDb db(compact.get(), &dims_.catalog, nullptr, opts);

  std::vector<std::uint8_t> row(compact->record_size(), 0);
  for (EntityId e = 1; e <= 500; ++e) {
    std::fill(row.begin(), row.end(), 0);
    PopulateEntityProfile(*compact, dims_, e, 500, row.data());
    ASSERT_TRUE(db.LoadEntity(e, row.data()).ok());
  }
  CdrGenerator::Options gopts;
  gopts.num_entities = 500;
  CdrGenerator gen(gopts);
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(db.ProcessEvent(gen.Next(1000 + i * 10)).ok());
  }

  StatusOr<Query> parsed = parser.Parse(
      "SELECT AVG(total_duration_this_week), COUNT(*) "
      "FROM AnalyticsMatrix WHERE number_of_calls_this_week > 4");
  ASSERT_TRUE(parsed.ok());
  const QueryResult from_sql = db.Execute(*parsed);

  const Query built = *QueryBuilder(compact.get())
                           .Select(AggOp::kAvg, "total_duration_this_week")
                           .SelectCount()
                           .Where("number_of_calls_this_week", CmpOp::kGt,
                                  Value::Int32(4))
                           .Build();
  const QueryResult from_builder = db.Execute(built);
  ASSERT_EQ(from_sql.rows.size(), from_builder.rows.size());
  for (std::size_t v = 0; v < from_builder.rows[0].values.size(); ++v) {
    EXPECT_DOUBLE_EQ(from_sql.rows[0].values[v],
                     from_builder.rows[0].values[v]);
  }
  EXPECT_GT(from_sql.rows[0].values[1], 0.0);  // matched something
}

}  // namespace
}  // namespace aim
