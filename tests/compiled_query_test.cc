#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "aim/rta/compiled_query.h"
#include "aim/rta/shared_scan.h"
#include "test_util.h"

namespace aim {
namespace {

using testing_util::MakeTinySchema;

/// Test fixture: a ColumnMap with deterministic pseudo-random rows plus a
/// zip -> city/region dimension table, and a row-wise oracle.
class CompiledQueryTest : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kRecords = 1000;
  static constexpr std::uint32_t kBucketSize = 96;  // forces partial buckets

  CompiledQueryTest() : schema_(MakeTinySchema()) {
    DimensionTable region("RegionInfo");
    city_col_ = region.AddStringColumn("city");
    pop_col_ = region.AddUInt32Column("population");
    // 10 zips (0..9) mapping to 3 cities; zip 9 deliberately missing so the
    // inner-join drop path is exercised.
    for (std::uint32_t zip = 0; zip < 9; ++zip) {
      region.AddRow(zip, {zip * 100}, {"city_" + std::to_string(zip % 3)});
    }
    region_table_ = dims_.AddTable(std::move(region));

    map_ = std::make_unique<ColumnMap>(schema_.get(), kBucketSize, kRecords);
    Random rng(31);
    calls_ = schema_->FindAttribute("calls_today");
    dur_sum_ = schema_->FindAttribute("dur_today_sum");
    cost_sum_ = schema_->FindAttribute("cost_week_sum");
    zip_ = schema_->FindAttribute("zip");
    entity_ = schema_->FindAttribute("entity_id");

    std::vector<std::uint8_t> row(schema_->record_size(), 0);
    for (std::uint32_t i = 0; i < kRecords; ++i) {
      RecordView rec(schema_.get(), row.data());
      rec.Set(entity_, Value::UInt64(i + 1));
      rec.Set(calls_, Value::Int32(static_cast<std::int32_t>(
                          rng.Uniform(20))));
      rec.Set(dur_sum_, Value::Float(static_cast<float>(rng.Uniform(1000))));
      rec.Set(cost_sum_, Value::Float(
                             static_cast<float>(rng.Uniform(500)) / 10.0f));
      rec.Set(zip_, Value::UInt32(static_cast<std::uint32_t>(
                        rng.Uniform(10))));
      rows_.push_back(row);
      AIM_CHECK(map_->Insert(i + 1, row.data(), 1).ok());
    }
  }

  QueryResult Run(const Query& q) {
    StatusOr<CompiledQuery> cq =
        CompiledQuery::Compile(q, schema_.get(), &dims_);
    AIM_CHECK_MSG(cq.ok(), "%s", cq.status().ToString().c_str());
    ScanScratch scratch;
    for (std::uint32_t b = 0; b < map_->num_buckets(); ++b) {
      cq->ProcessBucket(*map_, map_->bucket(b), &scratch);
    }
    return FinalizeResult(q, &dims_, cq->TakePartial());
  }

  double Attr(std::uint32_t rec, std::uint16_t attr) const {
    return ConstRecordView(schema_.get(), rows_[rec].data())
        .Get(attr)
        .AsDouble();
  }

  std::unique_ptr<Schema> schema_;
  DimensionCatalog dims_;
  std::uint16_t region_table_, city_col_, pop_col_;
  std::unique_ptr<ColumnMap> map_;
  std::vector<std::vector<std::uint8_t>> rows_;
  std::uint16_t calls_, dur_sum_, cost_sum_, zip_, entity_;
};

TEST_F(CompiledQueryTest, AggregateWithFilters) {
  StatusOr<Query> q = QueryBuilder(schema_.get())
                          .Select(AggOp::kSum, "dur_today_sum")
                          .Select(AggOp::kAvg, "cost_week_sum")
                          .Select(AggOp::kMin, "dur_today_sum")
                          .Select(AggOp::kMax, "cost_week_sum")
                          .SelectCount()
                          .Where("calls_today", CmpOp::kGt, Value::Int32(5))
                          .Where("dur_today_sum", CmpOp::kLe,
                                 Value::Float(800.0f))
                          .Build();
  ASSERT_TRUE(q.ok());
  const QueryResult result = Run(*q);
  ASSERT_EQ(result.rows.size(), 1u);

  double sum = 0, cost_sum = 0, mn = 1e18, mx = -1e18;
  std::int64_t n = 0;
  for (std::uint32_t i = 0; i < kRecords; ++i) {
    if (Attr(i, calls_) > 5 && Attr(i, dur_sum_) <= 800.0) {
      sum += Attr(i, dur_sum_);
      cost_sum += Attr(i, cost_sum_);
      mn = std::min(mn, Attr(i, dur_sum_));
      mx = std::max(mx, Attr(i, cost_sum_));
      n++;
    }
  }
  ASSERT_GT(n, 0);
  const auto& v = result.rows[0].values;
  ASSERT_EQ(v.size(), 5u);
  EXPECT_NEAR(v[0], sum, 1e-6 * (1 + sum));
  EXPECT_NEAR(v[1], cost_sum / n, 1e-6 * (1 + cost_sum / n));
  EXPECT_DOUBLE_EQ(v[2], mn);
  EXPECT_DOUBLE_EQ(v[3], mx);
  EXPECT_DOUBLE_EQ(v[4], static_cast<double>(n));
}

TEST_F(CompiledQueryTest, NoFilterScansEverything) {
  StatusOr<Query> q =
      QueryBuilder(schema_.get()).SelectCount().Build();
  ASSERT_TRUE(q.ok());
  const QueryResult result = Run(*q);
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(result.rows[0].values[0], kRecords);
}

TEST_F(CompiledQueryTest, EmptySelectionReturnsZeroRow) {
  StatusOr<Query> q = QueryBuilder(schema_.get())
                          .Select(AggOp::kAvg, "dur_today_sum")
                          .Select(AggOp::kMin, "dur_today_sum")
                          .SelectCount()
                          .Where("calls_today", CmpOp::kGt,
                                 Value::Int32(1000000))
                          .Build();
  ASSERT_TRUE(q.ok());
  const QueryResult result = Run(*q);
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(result.rows[0].values[0], 0.0);  // avg of empty = 0
  EXPECT_DOUBLE_EQ(result.rows[0].values[1], 0.0);  // min of empty = 0
  EXPECT_DOUBLE_EQ(result.rows[0].values[2], 0.0);  // count
}

TEST_F(CompiledQueryTest, GroupByMatrixAttr) {
  StatusOr<Query> q = QueryBuilder(schema_.get())
                          .Select(AggOp::kSum, "dur_today_sum")
                          .SelectCount()
                          .GroupByAttr("calls_today")
                          .Build();
  ASSERT_TRUE(q.ok());
  const QueryResult result = Run(*q);

  std::map<std::int64_t, std::pair<double, std::int64_t>> expected;
  for (std::uint32_t i = 0; i < kRecords; ++i) {
    auto& e = expected[static_cast<std::int64_t>(Attr(i, calls_))];
    e.first += Attr(i, dur_sum_);
    e.second++;
  }
  ASSERT_EQ(result.rows.size(), expected.size());
  for (const auto& row : result.rows) {
    const auto it = expected.find(static_cast<std::int64_t>(row.group_key));
    ASSERT_NE(it, expected.end());
    EXPECT_NEAR(row.values[0], it->second.first,
                1e-6 * (1 + it->second.first));
    EXPECT_DOUBLE_EQ(row.values[1], it->second.second);
  }
  // Sorted by key ascending.
  for (std::size_t i = 1; i < result.rows.size(); ++i) {
    EXPECT_LT(result.rows[i - 1].group_key, result.rows[i].group_key);
  }
}

TEST_F(CompiledQueryTest, GroupByLimitTruncates) {
  StatusOr<Query> q = QueryBuilder(schema_.get())
                          .SelectCount()
                          .GroupByAttr("calls_today")
                          .Limit(3)
                          .Build();
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(Run(*q).rows.size(), 3u);
}

TEST_F(CompiledQueryTest, GroupByDimColumnJoins) {
  StatusOr<Query> q = QueryBuilder(schema_.get())
                          .Select(AggOp::kSum, "cost_week_sum")
                          .SelectCount()
                          .GroupByDim("zip", region_table_, city_col_)
                          .Build();
  ASSERT_TRUE(q.ok());
  const QueryResult result = Run(*q);

  std::map<std::string, std::pair<double, std::int64_t>> expected;
  for (std::uint32_t i = 0; i < kRecords; ++i) {
    const std::uint32_t zip = static_cast<std::uint32_t>(Attr(i, zip_));
    if (zip >= 9) continue;  // zip 9 has no dim row: inner join drops it
    auto& e = expected["city_" + std::to_string(zip % 3)];
    e.first += Attr(i, cost_sum_);
    e.second++;
  }
  ASSERT_EQ(result.rows.size(), expected.size());
  for (const auto& row : result.rows) {
    const auto it = expected.find(row.group_label);
    ASSERT_NE(it, expected.end()) << row.group_label;
    EXPECT_NEAR(row.values[0], it->second.first,
                1e-6 * (1 + it->second.first));
    EXPECT_DOUBLE_EQ(row.values[1], it->second.second);
  }
}

TEST_F(CompiledQueryTest, DimFilterRestrictsByLabel) {
  StatusOr<Query> q = QueryBuilder(schema_.get())
                          .SelectCount()
                          .WhereDimLabel("zip", region_table_, city_col_,
                                         "city_1")
                          .Build();
  ASSERT_TRUE(q.ok());
  const QueryResult result = Run(*q);

  std::int64_t n = 0;
  for (std::uint32_t i = 0; i < kRecords; ++i) {
    const std::uint32_t zip = static_cast<std::uint32_t>(Attr(i, zip_));
    if (zip < 9 && zip % 3 == 1) n++;
  }
  EXPECT_DOUBLE_EQ(result.rows[0].values[0], static_cast<double>(n));
}

TEST_F(CompiledQueryTest, DimFilterNumericRange) {
  // population > 400 selects zips 5..8.
  StatusOr<Query> q = QueryBuilder(schema_.get())
                          .SelectCount()
                          .WhereDim("zip", region_table_, pop_col_,
                                    CmpOp::kGt, 400)
                          .Build();
  ASSERT_TRUE(q.ok());
  std::int64_t n = 0;
  for (std::uint32_t i = 0; i < kRecords; ++i) {
    const std::uint32_t zip = static_cast<std::uint32_t>(Attr(i, zip_));
    if (zip >= 5 && zip <= 8) n++;
  }
  EXPECT_DOUBLE_EQ(Run(*q).rows[0].values[0], static_cast<double>(n));
}

TEST_F(CompiledQueryTest, SumRatio) {
  StatusOr<Query> q = QueryBuilder(schema_.get())
                          .SelectSumRatio("cost_week_sum", "dur_today_sum")
                          .Build();
  ASSERT_TRUE(q.ok());
  double num = 0, den = 0;
  for (std::uint32_t i = 0; i < kRecords; ++i) {
    num += Attr(i, cost_sum_);
    den += Attr(i, dur_sum_);
  }
  EXPECT_NEAR(Run(*q).rows[0].values[0], num / den, 1e-6);
}

TEST_F(CompiledQueryTest, TopKDescendingAndRatio) {
  StatusOr<Query> q = QueryBuilder(schema_.get())
                          .TopK("dur_today_sum", /*ascending=*/false, 5)
                          .TopKRatio("cost_week_sum", "dur_today_sum",
                                     /*ascending=*/true, 5)
                          .WithEntityAttr("entity_id")
                          .Build();
  ASSERT_TRUE(q.ok());
  const QueryResult result = Run(*q);
  ASSERT_EQ(result.topk.size(), 2u);

  // Oracle for target 0: top-5 by dur_today_sum.
  std::vector<std::pair<double, std::uint64_t>> by_dur;
  std::vector<std::pair<double, std::uint64_t>> by_ratio;
  for (std::uint32_t i = 0; i < kRecords; ++i) {
    by_dur.push_back({Attr(i, dur_sum_), i + 1});
    const double den = Attr(i, dur_sum_);
    if (den != 0.0) {
      by_ratio.push_back({Attr(i, cost_sum_) / den, i + 1});
    }
  }
  std::sort(by_dur.begin(), by_dur.end(),
            [](auto& a, auto& b) { return a.first > b.first; });
  std::sort(by_ratio.begin(), by_ratio.end());

  ASSERT_EQ(result.topk[0].size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(result.topk[0][i].value, by_dur[i].first) << i;
  }
  ASSERT_EQ(result.topk[1].size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(result.topk[1][i].value, by_ratio[i].first, 1e-9) << i;
  }
  // Top-1 entity must match exactly (values are distinct with overwhelming
  // probability; if tied, entity may differ — check value only above).
}

TEST_F(CompiledQueryTest, SharedBatchMatchesIndividualRuns) {
  // Algorithm 5: a batch processed in one pass must produce exactly the
  // same results as one-at-a-time execution.
  std::vector<Query> queries;
  queries.push_back(*QueryBuilder(schema_.get())
                         .SelectCount()
                         .Where("calls_today", CmpOp::kGt, Value::Int32(9))
                         .Build());
  queries.push_back(*QueryBuilder(schema_.get())
                         .Select(AggOp::kSum, "dur_today_sum")
                         .GroupByAttr("calls_today")
                         .Build());
  queries.push_back(*QueryBuilder(schema_.get())
                         .Select(AggOp::kMax, "cost_week_sum")
                         .Build());

  std::vector<CompiledQuery> batch;
  for (const Query& q : queries) {
    batch.push_back(*CompiledQuery::Compile(q, schema_.get(), &dims_));
  }
  ScanScratch scratch;
  for (std::uint32_t b = 0; b < map_->num_buckets(); ++b) {
    const ColumnMap::BucketRef bucket = map_->bucket(b);
    for (CompiledQuery& cq : batch) {
      cq.ProcessBucket(*map_, bucket, &scratch);
    }
  }
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const QueryResult shared =
        FinalizeResult(queries[i], &dims_, batch[i].TakePartial());
    const QueryResult solo = Run(queries[i]);
    ASSERT_EQ(shared.rows.size(), solo.rows.size()) << i;
    for (std::size_t r = 0; r < solo.rows.size(); ++r) {
      EXPECT_EQ(shared.rows[r].group_key, solo.rows[r].group_key);
      ASSERT_EQ(shared.rows[r].values.size(), solo.rows[r].values.size());
      for (std::size_t v = 0; v < solo.rows[r].values.size(); ++v) {
        EXPECT_DOUBLE_EQ(shared.rows[r].values[v], solo.rows[r].values[v]);
      }
    }
  }
}

TEST_F(CompiledQueryTest, CompileRejectsBadQueries) {
  Query q;
  q.id = 1;
  q.select.push_back(SelectItem::Agg(AggOp::kSum, 9999));
  EXPECT_FALSE(CompiledQuery::Compile(q, schema_.get(), &dims_).ok());

  Query q2;
  q2.select.push_back(SelectItem::Count());
  q2.dim_where.push_back(DimFilter{zip_, 99, 0, CmpOp::kEq, 1, ""});
  EXPECT_FALSE(CompiledQuery::Compile(q2, schema_.get(), &dims_).ok());
}

}  // namespace
}  // namespace aim
