#include <gtest/gtest.h>

#include "aim/server/esp_tier.h"
#include "aim/workload/benchmark_schema.h"
#include "aim/workload/cdr_generator.h"
#include "aim/workload/dimension_data.h"
#include "aim/workload/rules_generator.h"

namespace aim {
namespace {

/// Deployment option (a): a separate ESP tier driving a storage node via
/// its Get/Put record service.
class EspTierTest : public ::testing::Test {
 protected:
  EspTierTest() : schema_(MakeCompactSchema()), dims_(MakeBenchmarkDims()) {
    rules_ = MakePaperTable2Rules(*schema_);
    StorageNode::Options opts;
    opts.num_partitions = 2;
    opts.num_esp_threads = 1;
    opts.bucket_size = 64;
    opts.max_records_per_partition = 1 << 12;
    opts.esp_idle_micros = 20;
    node_ = std::make_unique<StorageNode>(schema_.get(), &dims_.catalog,
                                          &rules_, opts);
  }

  void LoadEntities(std::uint64_t n) {
    std::vector<std::uint8_t> row(schema_->record_size(), 0);
    for (EntityId e = 1; e <= n; ++e) {
      std::fill(row.begin(), row.end(), 0);
      PopulateEntityProfile(*schema_, dims_, e, n, row.data());
      ASSERT_TRUE(node_->BulkLoad(e, row.data()).ok());
    }
  }

  static std::vector<std::uint8_t> Wire(const Event& e) {
    BinaryWriter w;
    e.Serialize(&w);
    return w.TakeBuffer();
  }

  std::unique_ptr<Schema> schema_;
  BenchmarkDims dims_;
  std::vector<Rule> rules_;
  std::unique_ptr<StorageNode> node_;
};

TEST_F(EspTierTest, RecordServiceGetPutRoundTrip) {
  LoadEntities(20);
  ASSERT_TRUE(node_->Start().ok());

  // Remote Get.
  std::atomic<bool> done{false};
  Status status;
  std::vector<std::uint8_t> row;
  Version version = 0;
  RecordRequest get;
  get.kind = RecordRequest::Kind::kGet;
  get.entity = 7;
  get.reply = [&](Status st, std::vector<std::uint8_t>&& bytes, Version v) {
    status = std::move(st);
    row = std::move(bytes);
    version = v;
    done.store(true, std::memory_order_release);
  };
  ASSERT_TRUE(node_->SubmitRecordRequest(std::move(get)));
  while (!done.load(std::memory_order_acquire)) std::this_thread::yield();
  ASSERT_TRUE(status.ok()) << status.ToString();
  ASSERT_EQ(row.size(), schema_->record_size());
  EXPECT_EQ(ConstRecordView(schema_.get(), row.data())
                .Get(schema_->FindAttribute("entity_id"))
                .u64(),
            7u);

  // Remote conditional Put with the fetched version succeeds; a stale
  // retry conflicts.
  RecordView(schema_.get(), row.data())
      .Set(schema_->FindAttribute("number_of_calls_today"), Value::Int32(9));
  for (int round = 0; round < 2; ++round) {
    done.store(false);
    RecordRequest put;
    put.kind = RecordRequest::Kind::kPut;
    put.entity = 7;
    put.row = row;
    put.expected_version = version;
    put.reply = [&](Status st, std::vector<std::uint8_t>&&, Version) {
      status = std::move(st);
      done.store(true, std::memory_order_release);
    };
    ASSERT_TRUE(node_->SubmitRecordRequest(std::move(put)));
    while (!done.load(std::memory_order_acquire)) std::this_thread::yield();
    if (round == 0) {
      EXPECT_TRUE(status.ok()) << status.ToString();
    } else {
      EXPECT_TRUE(status.IsConflict());
    }
  }
  node_->Stop();
}

TEST_F(EspTierTest, TierProcessesEventsRemotely) {
  constexpr std::uint64_t kEntities = 50;
  constexpr int kEvents = 300;
  LoadEntities(kEntities);
  ASSERT_TRUE(node_->Start().ok());

  EspTierNode::Options topts;
  topts.num_threads = 2;
  EspTierNode tier(schema_.get(), node_.get(), &rules_, topts);
  ASSERT_TRUE(tier.Start().ok());

  CdrGenerator::Options gopts;
  gopts.num_entities = kEntities;
  CdrGenerator gen(gopts);
  EventCompletion done;
  for (int i = 0; i < kEvents; ++i) {
    done.Reset();
    ASSERT_TRUE(tier.SubmitEvent(Wire(gen.Next(1000 + i)), &done));
    done.Wait();
    ASSERT_TRUE(done.status.ok()) << done.status.ToString();
  }

  const EspTierNode::Stats stats = tier.stats();
  EXPECT_EQ(stats.events_processed, kEvents);
  EXPECT_EQ(stats.txn_conflicts, 0u);  // sticky entity->worker mapping
  // Each event shipped the record twice (Get reply + Put payload).
  EXPECT_EQ(stats.record_bytes_shipped,
            2ull * kEvents * schema_->record_size());

  tier.Stop();
  node_->Stop();

  // The matrix reflects every event: total calls_today == events.
  std::uint64_t total = 0;
  for (std::uint32_t p = 0; p < 2; ++p) {
    const_cast<DeltaMainStore&>(node_->partition(p)).Merge();
  }
  const std::uint16_t calls = schema_->FindAttribute("number_of_calls_today");
  for (EntityId e = 1; e <= kEntities; ++e) {
    const std::uint32_t p = node_->PartitionOf(e);
    StatusOr<Value> v = node_->partition(p).GetAttribute(e, calls);
    if (v.ok()) total += static_cast<std::uint64_t>(v->i32());
  }
  EXPECT_EQ(total, kEvents);
}

TEST_F(EspTierTest, TierMatchesColocatedResults) {
  // The same stream through option (a) and option (b) must produce the
  // same matrix. Build a second identical node for the co-located run.
  constexpr std::uint64_t kEntities = 40;
  constexpr int kEvents = 200;

  StorageNode::Options opts2;
  opts2.num_partitions = 2;
  opts2.num_esp_threads = 1;
  opts2.bucket_size = 64;
  opts2.max_records_per_partition = 1 << 12;
  StorageNode colocated(schema_.get(), &dims_.catalog, &rules_, opts2);

  std::vector<std::uint8_t> row(schema_->record_size(), 0);
  for (EntityId e = 1; e <= kEntities; ++e) {
    std::fill(row.begin(), row.end(), 0);
    PopulateEntityProfile(*schema_, dims_, e, kEntities, row.data());
    ASSERT_TRUE(node_->BulkLoad(e, row.data()).ok());
    ASSERT_TRUE(colocated.BulkLoad(e, row.data()).ok());
  }
  ASSERT_TRUE(node_->Start().ok());
  ASSERT_TRUE(colocated.Start().ok());

  EspTierNode tier(schema_.get(), node_.get(), &rules_, {});
  ASSERT_TRUE(tier.Start().ok());

  CdrGenerator::Options gopts;
  gopts.num_entities = kEntities;
  CdrGenerator gen(gopts);
  EventCompletion d1, d2;
  for (int i = 0; i < kEvents; ++i) {
    const Event e = gen.Next(1000 + i * 100);
    d1.Reset();
    d2.Reset();
    ASSERT_TRUE(tier.SubmitEvent(Wire(e), &d1));
    ASSERT_TRUE(colocated.SubmitEvent(Wire(e), &d2));
    d1.Wait();
    d2.Wait();
    ASSERT_TRUE(d1.status.ok());
    ASSERT_TRUE(d2.status.ok());
    // Both layouts fire the same rules for the same event.
    EXPECT_EQ(d1.fired_rules, d2.fired_rules) << "event " << i;
  }
  tier.Stop();
  node_->Stop();
  colocated.Stop();

  // Compare a few indicators entity by entity.
  for (std::uint32_t p = 0; p < 2; ++p) {
    const_cast<DeltaMainStore&>(node_->partition(p)).Merge();
    const_cast<DeltaMainStore&>(colocated.partition(p)).Merge();
  }
  for (const char* name :
       {"number_of_calls_today", "duration_this_week_sum",
        "cost_this_week_max"}) {
    const std::uint16_t attr = schema_->FindAttribute(name);
    for (EntityId e = 1; e <= kEntities; ++e) {
      StatusOr<Value> a =
          node_->partition(node_->PartitionOf(e)).GetAttribute(e, attr);
      StatusOr<Value> b = colocated.partition(colocated.PartitionOf(e))
                              .GetAttribute(e, attr);
      ASSERT_EQ(a.ok(), b.ok());
      if (a.ok()) {
        EXPECT_DOUBLE_EQ(a->AsDouble(), b->AsDouble())
            << name << " entity " << e;
      }
    }
  }
}

}  // namespace
}  // namespace aim
