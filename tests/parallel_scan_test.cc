#include <dirent.h>

#include <numeric>

#include <gtest/gtest.h>

#include "aim/rta/parallel_scan.h"
#include "test_util.h"

namespace aim {
namespace {

using testing_util::MakeTinySchema;

class ParallelScanTest : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kRecords = 2000;

  ParallelScanTest() : schema_(MakeTinySchema()) {
    map_ = std::make_unique<ColumnMap>(schema_.get(), /*bucket_size=*/64,
                                       kRecords);
    Random rng(55);
    std::vector<std::uint8_t> row(schema_->record_size(), 0);
    const std::uint16_t calls = schema_->FindAttribute("calls_today");
    const std::uint16_t dur = schema_->FindAttribute("dur_today_sum");
    const std::uint16_t entity = schema_->FindAttribute("entity_id");
    for (EntityId e = 1; e <= kRecords; ++e) {
      RecordView rec(schema_.get(), row.data());
      rec.Set(entity, Value::UInt64(e));
      rec.Set(calls, Value::Int32(static_cast<std::int32_t>(rng.Uniform(20))));
      rec.Set(dur, Value::Float(static_cast<float>(rng.Uniform(5000))));
      AIM_CHECK(map_->Insert(e, row.data(), 1).ok());
    }
  }

  std::vector<Query> MakeBatch() {
    std::vector<Query> batch;
    batch.push_back(*QueryBuilder(schema_.get())
                         .Select(AggOp::kSum, "dur_today_sum")
                         .SelectCount()
                         .Where("calls_today", CmpOp::kGt, Value::Int32(5))
                         .Build());
    batch.push_back(*QueryBuilder(schema_.get())
                         .SelectCount()
                         .GroupByAttr("calls_today")
                         .Build());
    batch.push_back(*QueryBuilder(schema_.get())
                         .TopK("dur_today_sum", false, 3)
                         .WithEntityAttr("entity_id")
                         .Build());
    return batch;
  }

  std::vector<PartialResult> SingleThreadReference(
      const std::vector<Query>& batch) {
    std::vector<PartialResult> out;
    ScanScratch scratch;
    for (const Query& q : batch) {
      CompiledQuery cq = *CompiledQuery::Compile(q, schema_.get(), nullptr);
      for (std::uint32_t b = 0; b < map_->num_buckets(); ++b) {
        cq.ProcessBucket(*map_, map_->bucket(b), &scratch);
      }
      out.push_back(cq.TakePartial());
    }
    return out;
  }

  std::unique_ptr<Schema> schema_;
  std::unique_ptr<ColumnMap> map_;
};

TEST_F(ParallelScanTest, MatchesSingleThreadedResults) {
  const std::vector<Query> batch = MakeBatch();
  const std::vector<PartialResult> want = SingleThreadReference(batch);

  for (std::uint32_t threads : {1u, 2u, 4u}) {
    ParallelSharedScan::Options opts;
    opts.num_threads = threads;
    opts.chunk_buckets = 3;
    StatusOr<std::vector<PartialResult>> got = ParallelSharedScan::Execute(
        *map_, schema_.get(), nullptr, batch, opts);
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(got->size(), batch.size());
    for (std::size_t q = 0; q < batch.size(); ++q) {
      QueryResult rw = FinalizeResult(batch[q], nullptr,
                                      PartialResult((*got)[q]));
      QueryResult rr =
          FinalizeResult(batch[q], nullptr, PartialResult(want[q]));
      ASSERT_EQ(rw.rows.size(), rr.rows.size()) << "threads " << threads;
      for (std::size_t r = 0; r < rr.rows.size(); ++r) {
        EXPECT_EQ(rw.rows[r].group_key, rr.rows[r].group_key);
        for (std::size_t v = 0; v < rr.rows[r].values.size(); ++v) {
          EXPECT_NEAR(rw.rows[r].values[v], rr.rows[r].values[v],
                      1e-3 * (1 + std::abs(rr.rows[r].values[v])));
        }
      }
      ASSERT_EQ(rw.topk.size(), rr.topk.size());
      for (std::size_t t = 0; t < rr.topk.size(); ++t) {
        ASSERT_EQ(rw.topk[t].size(), rr.topk[t].size());
        for (std::size_t k = 0; k < rr.topk[t].size(); ++k) {
          EXPECT_DOUBLE_EQ(rw.topk[t][k].value, rr.topk[t][k].value);
        }
      }
    }
  }
}

TEST_F(ParallelScanTest, EveryChunkProcessedExactlyOnce) {
  const std::vector<Query> batch = {*QueryBuilder(schema_.get())
                                         .SelectCount()
                                         .Build()};
  ParallelSharedScan::Options opts;
  opts.num_threads = 3;
  opts.chunk_buckets = 2;
  std::vector<std::uint32_t> chunks;
  StatusOr<std::vector<PartialResult>> got = ParallelSharedScan::Execute(
      *map_, schema_.get(), nullptr, batch, opts, &chunks);
  ASSERT_TRUE(got.ok());

  // COUNT(*) over all chunks must equal the record count (each chunk
  // visited exactly once).
  QueryResult r = FinalizeResult(batch[0], nullptr,
                                 std::move((*got)[0]));
  EXPECT_DOUBLE_EQ(r.rows[0].values[0], kRecords);

  const std::uint32_t expected_chunks =
      (map_->num_buckets() + opts.chunk_buckets - 1) / opts.chunk_buckets;
  EXPECT_EQ(std::accumulate(chunks.begin(), chunks.end(), 0u),
            expected_chunks);
}

// Number of live threads in this process (Linux: /proc/self/task entries).
std::size_t CountProcessThreads() {
  DIR* dir = opendir("/proc/self/task");
  if (dir == nullptr) return 0;
  std::size_t n = 0;
  while (dirent* entry = readdir(dir)) {
    if (entry->d_name[0] != '.') ++n;
  }
  closedir(dir);
  return n;
}

TEST_F(ParallelScanTest, RepeatedExecuteCreatesNoThreads) {
  const std::vector<Query> batch = MakeBatch();
  ParallelSharedScan::Options opts;
  opts.num_threads = 2;
  opts.chunk_buckets = 2;

  // First call may lazily start the shared pool's persistent workers.
  ASSERT_TRUE(ParallelSharedScan::Execute(*map_, schema_.get(), nullptr,
                                          batch, opts)
                  .ok());
  const std::size_t warm = CountProcessThreads();
  ASSERT_GT(warm, 0u);

  // Thread-churn regression (the pre-pool implementation spawned fresh
  // std::threads on every Execute): repeated calls must reuse the pool.
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ParallelSharedScan::Execute(*map_, schema_.get(), nullptr,
                                            batch, opts)
                    .ok());
    EXPECT_EQ(CountProcessThreads(), warm) << "iteration " << i;
  }
}

TEST_F(ParallelScanTest, RunsOnACallerProvidedPool) {
  const std::vector<Query> batch = MakeBatch();
  ScanPool::Options popts;
  popts.num_threads = 2;
  ScanPool pool(popts);

  ParallelSharedScan::Options opts;
  opts.num_threads = 2;
  opts.chunk_buckets = 2;
  opts.pool = &pool;
  std::vector<std::uint32_t> chunks;
  StatusOr<std::vector<PartialResult>> got = ParallelSharedScan::Execute(
      *map_, schema_.get(), nullptr, batch, opts, &chunks);
  ASSERT_TRUE(got.ok());
  EXPECT_GT(pool.morsels(), 0u);
  // Executor breakdown: two pool workers + the calling thread.
  EXPECT_EQ(chunks.size(), pool.num_threads() + 1);
}

TEST_F(ParallelScanTest, RejectsBadOptions) {
  const std::vector<Query> batch = {*QueryBuilder(schema_.get())
                                         .SelectCount()
                                         .Build()};
  ParallelSharedScan::Options opts;
  opts.num_threads = 0;
  EXPECT_FALSE(ParallelSharedScan::Execute(*map_, schema_.get(), nullptr,
                                           batch, opts)
                   .ok());
}

TEST_F(ParallelScanTest, CompileErrorPropagates) {
  Query bad;
  bad.select.push_back(SelectItem::Agg(AggOp::kSum, 9999));
  ParallelSharedScan::Options opts;
  opts.num_threads = 2;
  EXPECT_FALSE(ParallelSharedScan::Execute(*map_, schema_.get(), nullptr,
                                           {bad}, opts)
                   .ok());
}

}  // namespace
}  // namespace aim
