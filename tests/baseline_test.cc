#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "aim/baselines/cow_store.h"
#include "aim/baselines/indexed_row_store.h"
#include "aim/baselines/pure_column_store.h"
#include "aim/server/aim_db.h"
#include "aim/workload/benchmark_schema.h"
#include "aim/workload/cdr_generator.h"
#include "aim/workload/dimension_data.h"
#include "aim/workload/query_workload.h"

namespace aim {
namespace {

/// Every baseline must produce the same analytics as AIM (AimDb reference)
/// for the same event stream — they differ in *performance*, not results.
class BaselineEquivalenceTest
    : public ::testing::TestWithParam<const char*> {
 protected:
  BaselineEquivalenceTest()
      : schema_(MakeCompactSchema()), dims_(MakeBenchmarkDims()) {}

  std::unique_ptr<BaselineStore> MakeStore(const std::string& which) {
    if (which == "column") {
      PureColumnStore::Options opts;
      opts.max_records = 1 << 14;
      return std::make_unique<PureColumnStore>(schema_.get(), &dims_.catalog,
                                               opts);
    }
    if (which == "row") {
      IndexedRowStore::Options opts;
      opts.max_records = 1 << 14;
      opts.indexed_attrs = {
          schema_->FindAttribute("number_of_calls_this_week")};
      return std::make_unique<IndexedRowStore>(schema_.get(), &dims_.catalog,
                                               opts);
    }
    CowStore::Options opts;
    opts.max_records = 1 << 14;
    opts.rows_per_page = 8;
    return std::make_unique<CowStore>(schema_.get(), &dims_.catalog, opts);
  }

  std::unique_ptr<Schema> schema_;
  BenchmarkDims dims_;
};

TEST_P(BaselineEquivalenceTest, MatchesAimOnBenchmarkQueries) {
  constexpr std::uint64_t kEntities = 150;
  constexpr int kEvents = 1500;

  std::unique_ptr<BaselineStore> baseline = MakeStore(GetParam());
  AimDb::Options ropts;
  ropts.bucket_size = 64;
  ropts.max_records = 1 << 14;
  AimDb reference(schema_.get(), &dims_.catalog, nullptr, ropts);

  std::vector<std::uint8_t> row(schema_->record_size(), 0);
  for (EntityId e = 1; e <= kEntities; ++e) {
    std::fill(row.begin(), row.end(), 0);
    PopulateEntityProfile(*schema_, dims_, e, kEntities, row.data());
    ASSERT_TRUE(baseline->Load(e, row.data()).ok());
    ASSERT_TRUE(reference.LoadEntity(e, row.data()).ok());
  }

  CdrGenerator::Options gopts;
  gopts.num_entities = kEntities;
  CdrGenerator gen(gopts);
  for (int i = 0; i < kEvents; ++i) {
    const Event e = gen.Next(20000 + i);
    ASSERT_TRUE(baseline->ApplyEvent(e).ok());
    ASSERT_TRUE(reference.ProcessEvent(e).ok());
  }

  // A representative query per shape, plus the benchmark's random Q mix.
  std::vector<Query> queries;
  queries.push_back(*QueryBuilder(schema_.get())
                         .Select(AggOp::kAvg, "total_duration_this_week")
                         .Where("number_of_local_calls_this_week", CmpOp::kGt,
                                Value::Int32(1))
                         .Build());
  queries.push_back(*QueryBuilder(schema_.get())
                         .Select(AggOp::kMax, "most_expensive_call_this_week")
                         .Where("number_of_calls_this_week", CmpOp::kGt,
                                Value::Int32(3))
                         .Build());
  queries.push_back(*QueryBuilder(schema_.get())
                         .SelectSumRatio("total_cost_this_week",
                                         "total_duration_this_week")
                         .GroupByAttr("number_of_calls_this_week")
                         .Limit(100)
                         .Build());
  queries.push_back(
      *QueryBuilder(schema_.get())
           .Select(AggOp::kSum, "total_cost_of_local_calls_this_week")
           .GroupByDim("zip", dims_.region_info, dims_.region_region)
           .Build());
  queries.push_back(*QueryBuilder(schema_.get())
                         .TopK("cost_this_week_max", false, 3)
                         .WithEntityAttr("entity_id")
                         .Build());

  for (const Query& q : queries) {
    const QueryResult want = reference.Execute(q);
    const QueryResult got = baseline->Execute(q);
    ASSERT_TRUE(want.status.ok());
    ASSERT_TRUE(got.status.ok()) << got.status.ToString();
    ASSERT_EQ(got.rows.size(), want.rows.size())
        << baseline->name() << ": " << q.ToString(schema_.get());
    for (std::size_t r = 0; r < want.rows.size(); ++r) {
      EXPECT_EQ(got.rows[r].group_key, want.rows[r].group_key);
      for (std::size_t v = 0; v < want.rows[r].values.size(); ++v) {
        EXPECT_NEAR(got.rows[r].values[v], want.rows[r].values[v],
                    1e-3 * (1.0 + std::abs(want.rows[r].values[v])))
            << baseline->name() << " row " << r;
      }
    }
    ASSERT_EQ(got.topk.size(), want.topk.size());
    for (std::size_t t = 0; t < want.topk.size(); ++t) {
      ASSERT_EQ(got.topk[t].size(), want.topk[t].size());
      for (std::size_t k = 0; k < want.topk[t].size(); ++k) {
        EXPECT_NEAR(got.topk[t][k].value, want.topk[t][k].value, 1e-3);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllBaselines, BaselineEquivalenceTest,
                         ::testing::Values("column", "row", "cow"));

TEST(IndexedRowStoreTest, AutoIndexCreatedByAdvisor) {
  auto schema = MakeCompactSchema();
  const BenchmarkDims dims = MakeBenchmarkDims();
  IndexedRowStore::Options opts;
  opts.max_records = 1024;
  IndexedRowStore store(schema.get(), &dims.catalog, opts);
  EXPECT_EQ(store.num_indexes(), 0u);

  std::vector<std::uint8_t> row(schema->record_size(), 0);
  for (EntityId e = 1; e <= 100; ++e) {
    std::fill(row.begin(), row.end(), 0);
    PopulateEntityProfile(*schema, dims, e, 100, row.data());
    ASSERT_TRUE(store.Load(e, row.data()).ok());
  }
  Query q = *QueryBuilder(schema.get())
                 .SelectCount()
                 .Where("number_of_calls_today", CmpOp::kGt, Value::Int32(0))
                 .Build();
  (void)store.Execute(q);
  EXPECT_EQ(store.num_indexes(), 1u);  // advisor built it on first use
}

TEST(CowStoreTest, SnapshotIsolatesFromConcurrentWrites) {
  auto schema = MakeCompactSchema();
  CowStore::Options opts;
  opts.max_records = 256;
  opts.rows_per_page = 4;
  CowStore store(schema.get(), nullptr, opts);

  std::vector<std::uint8_t> row(schema->record_size(), 0);
  for (EntityId e = 1; e <= 20; ++e) {
    RecordView(schema.get(), row.data())
        .SetAs<std::uint64_t>(schema->FindAttribute("entity_id"), e);
    ASSERT_TRUE(store.Load(e, row.data()).ok());
  }

  Event e;
  e.caller = 1;
  e.timestamp = 100;
  e.duration = 30;
  ASSERT_TRUE(store.ApplyEvent(e).ok());
  EXPECT_GE(store.pages_copied(), 0u);

  Query q = *QueryBuilder(schema.get())
                 .Select(AggOp::kSum, "number_of_calls_today")
                 .Build();
  EXPECT_DOUBLE_EQ(store.Execute(q).rows[0].values[0], 1.0);

  // Writes after many snapshots keep working (page clones accumulate).
  for (int i = 0; i < 10; ++i) {
    (void)store.Execute(q);
    ASSERT_TRUE(store.ApplyEvent(e).ok());
  }
  EXPECT_DOUBLE_EQ(store.Execute(q).rows[0].values[0], 11.0);
}

TEST(BaselineNamesTest, Distinct) {
  auto schema = MakeCompactSchema();
  const BenchmarkDims dims = MakeBenchmarkDims();
  PureColumnStore m(schema.get(), &dims.catalog, {});
  IndexedRowStore d(schema.get(), &dims.catalog, {});
  CowStore h(schema.get(), &dims.catalog, {});
  EXPECT_NE(m.name(), d.name());
  EXPECT_NE(m.name(), h.name());
  EXPECT_NE(d.name(), h.name());
}

}  // namespace
}  // namespace aim
