#include <atomic>
#include <cstring>
#include <thread>
#include <unordered_map>

#include <gtest/gtest.h>

#include "aim/storage/delta.h"
#include "aim/storage/delta_main.h"
#include "test_util.h"

namespace aim {
namespace {

using testing_util::FillRandomRow;
using testing_util::MakeTinySchema;

// ---------------------------------------------------------------------------
// Delta
// ---------------------------------------------------------------------------

TEST(DeltaTest, PutGetOverwrite) {
  auto schema = MakeTinySchema();
  Delta delta(schema.get());
  Random rng(1);
  std::vector<std::uint8_t> row(schema->record_size(), 0);

  FillRandomRow(*schema, &rng, row.data());
  delta.Put(5, row.data(), 2);
  EXPECT_EQ(delta.size(), 1u);

  Version v = 0;
  const std::uint8_t* got = delta.Get(5, &v);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(v, 2u);
  EXPECT_EQ(std::memcmp(got, row.data(), row.size()), 0);

  // Overwrite in place: size stays 1 (hot-spot compaction).
  FillRandomRow(*schema, &rng, row.data());
  delta.Put(5, row.data(), 3);
  EXPECT_EQ(delta.size(), 1u);
  got = delta.Get(5, &v);
  EXPECT_EQ(v, 3u);
  EXPECT_EQ(std::memcmp(got, row.data(), row.size()), 0);

  EXPECT_EQ(delta.Get(6, nullptr), nullptr);
}

TEST(DeltaTest, ForEachVisitsAll) {
  auto schema = MakeTinySchema();
  Delta delta(schema.get());
  std::vector<std::uint8_t> row(schema->record_size(), 0);
  for (EntityId e = 1; e <= 2500; ++e) {  // spans multiple arena chunks
    delta.Put(e, row.data(), e);
  }
  std::uint64_t sum = 0, count = 0;
  delta.ForEach([&](EntityId e, Version v, const std::uint8_t*) {
    sum += e;
    EXPECT_EQ(v, e);
    count++;
  });
  EXPECT_EQ(count, 2500u);
  EXPECT_EQ(sum, 2500ull * 2501 / 2);

  delta.Clear();
  EXPECT_TRUE(delta.empty());
  EXPECT_EQ(delta.Get(1, nullptr), nullptr);
}

// ---------------------------------------------------------------------------
// DeltaMainStore
// ---------------------------------------------------------------------------

class DeltaMainTest : public ::testing::Test {
 protected:
  DeltaMainTest() : schema_(MakeTinySchema()) {
    DeltaMainStore::Options opts;
    opts.bucket_size = 8;
    opts.max_records = 4096;
    store_ = std::make_unique<DeltaMainStore>(schema_.get(), opts);
    row_.resize(schema_->record_size());
    out_.resize(schema_->record_size());
  }

  void RandomRow() { FillRandomRow(*schema_, &rng_, row_.data()); }

  std::unique_ptr<Schema> schema_;
  std::unique_ptr<DeltaMainStore> store_;
  Random rng_{17};
  std::vector<std::uint8_t> row_, out_;
};

TEST_F(DeltaMainTest, GetFromMainAfterBulkInsert) {
  RandomRow();
  ASSERT_TRUE(store_->BulkInsert(7, row_.data()).ok());
  Version v = 0;
  ASSERT_TRUE(store_->Get(7, out_.data(), &v).ok());
  EXPECT_EQ(v, 1u);
  EXPECT_EQ(std::memcmp(out_.data(), row_.data(), row_.size()), 0);
  EXPECT_TRUE(store_->Exists(7));
  EXPECT_FALSE(store_->Exists(8));
  EXPECT_TRUE(store_->Get(8, out_.data(), &v).IsNotFound());
}

TEST_F(DeltaMainTest, ConditionalWriteDetectsStaleVersion) {
  RandomRow();
  ASSERT_TRUE(store_->BulkInsert(7, row_.data()).ok());
  Version v = 0;
  ASSERT_TRUE(store_->Get(7, out_.data(), &v).ok());

  // First writer wins.
  RandomRow();
  ASSERT_TRUE(store_->Put(7, row_.data(), v).ok());
  // Second writer with the old version loses.
  EXPECT_TRUE(store_->Put(7, row_.data(), v).IsConflict());
  // Re-read and retry succeeds (version is now v+1).
  Version v2 = 0;
  ASSERT_TRUE(store_->Get(7, out_.data(), &v2).ok());
  EXPECT_EQ(v2, v + 1);
  EXPECT_TRUE(store_->Put(7, row_.data(), v2).ok());
}

TEST_F(DeltaMainTest, PutUnknownEntityIsNotFound) {
  RandomRow();
  EXPECT_TRUE(store_->Put(99, row_.data(), 0).IsNotFound());
}

TEST_F(DeltaMainTest, InsertNewEntityThroughDelta) {
  RandomRow();
  ASSERT_TRUE(store_->Insert(50, row_.data()).ok());
  EXPECT_TRUE(store_->Insert(50, row_.data()).IsConflict());
  Version v = 0;
  ASSERT_TRUE(store_->Get(50, out_.data(), &v).ok());
  EXPECT_EQ(v, 1u);
  EXPECT_EQ(store_->main_records(), 0u);  // not merged yet
  EXPECT_EQ(store_->Merge(), 1u);
  EXPECT_EQ(store_->main_records(), 1u);
  ASSERT_TRUE(store_->Get(50, out_.data(), &v).ok());
  EXPECT_EQ(std::memcmp(out_.data(), row_.data(), row_.size()), 0);
}

TEST_F(DeltaMainTest, DeltaShadowsMainUntilMerge) {
  RandomRow();
  ASSERT_TRUE(store_->BulkInsert(7, row_.data()).ok());
  const std::uint16_t calls = schema_->FindAttribute("calls_today");

  Version v = 0;
  ASSERT_TRUE(store_->Get(7, out_.data(), &v).ok());
  RecordView rec(schema_.get(), out_.data());
  rec.Set(calls, Value::Int32(123));
  ASSERT_TRUE(store_->Put(7, out_.data(), v).ok());

  // Get sees the delta value; the main still has the old one (snapshot
  // isolation for scans).
  EXPECT_EQ(store_->GetAttribute(7, calls)->i32(), 123);
  const RecordId id = store_->main().Lookup(7);
  EXPECT_NE(store_->main().GetValue(id, calls).i32(), 123);

  EXPECT_EQ(store_->Merge(), 1u);
  EXPECT_EQ(store_->main().GetValue(id, calls).i32(), 123);
  EXPECT_EQ(store_->delta_size(), 0u);
}

TEST_F(DeltaMainTest, GetDuringMergeReadsFrozenDelta) {
  RandomRow();
  ASSERT_TRUE(store_->BulkInsert(7, row_.data()).ok());
  const std::uint16_t calls = schema_->FindAttribute("calls_today");
  Version v = 0;
  ASSERT_TRUE(store_->Get(7, out_.data(), &v).ok());
  RecordView(schema_.get(), out_.data()).Set(calls, Value::Int32(55));
  ASSERT_TRUE(store_->Put(7, out_.data(), v).ok());

  // Freeze but don't merge: Algorithm 3 must find the record in the frozen
  // delta.
  store_->SwitchDeltas();
  EXPECT_TRUE(store_->merging());
  EXPECT_EQ(store_->GetAttribute(7, calls)->i32(), 55);
  EXPECT_EQ(store_->delta_size(), 0u);
  EXPECT_EQ(store_->frozen_size(), 1u);

  // Puts during the merge go to the new delta.
  Version v2 = 0;
  ASSERT_TRUE(store_->Get(7, out_.data(), &v2).ok());
  RecordView(schema_.get(), out_.data()).Set(calls, Value::Int32(56));
  ASSERT_TRUE(store_->Put(7, out_.data(), v2).ok());
  EXPECT_EQ(store_->delta_size(), 1u);

  EXPECT_EQ(store_->MergeStep(), 1u);
  EXPECT_FALSE(store_->merging());
  // Newest value still from the (new) delta.
  EXPECT_EQ(store_->GetAttribute(7, calls)->i32(), 56);
  EXPECT_EQ(store_->Merge(), 1u);
  EXPECT_EQ(store_->GetAttribute(7, calls)->i32(), 56);
}

TEST_F(DeltaMainTest, PropertyRandomOpsAgainstReferenceMap) {
  const std::uint16_t calls = schema_->FindAttribute("calls_today");
  std::unordered_map<EntityId, std::int32_t> ref;

  for (int round = 0; round < 10; ++round) {
    for (int op = 0; op < 400; ++op) {
      const EntityId e = rng_.Uniform(200) + 1;
      const std::int32_t val =
          static_cast<std::int32_t>(rng_.Uniform(1 << 20));
      Version v = 0;
      Status got = store_->Get(e, out_.data(), &v);
      if (got.IsNotFound()) {
        std::memset(out_.data(), 0, out_.size());
        RecordView(schema_.get(), out_.data()).Set(calls, Value::Int32(val));
        ASSERT_TRUE(store_->Insert(e, out_.data()).ok());
      } else {
        ASSERT_TRUE(got.ok());
        RecordView(schema_.get(), out_.data()).Set(calls, Value::Int32(val));
        ASSERT_TRUE(store_->Put(e, out_.data(), v).ok());
      }
      ref[e] = val;
    }
    // Interleave merges at random points.
    store_->Merge();
    for (const auto& [e, val] : ref) {
      ASSERT_EQ(store_->GetAttribute(e, calls)->i32(), val);
    }
  }
  EXPECT_EQ(store_->main_records(), ref.size());
}

// ---------------------------------------------------------------------------
// ForEachVisible while a merge is in flight (between SwitchDeltas and
// MergeStep, merging() == true): every entity must be visited exactly once,
// with its newest image — active delta over frozen delta over main. This is
// the snapshot checkpoint::Write relies on for its two-pass count+payload
// protocol, exercised across every shadowing combination at once.
// ---------------------------------------------------------------------------

class DeltaMainVisibilityTest : public DeltaMainTest {
 protected:
  DeltaMainVisibilityTest()
      : entity_attr_(schema_->FindAttribute("entity_id")),
        calls_(schema_->FindAttribute("calls_today")) {}

  // Rows carry their own entity id (the raw attribute ForEachVisible and
  // checkpointing key on), so every helper embeds it like the ESP does.
  void BulkWithCalls(EntityId e, std::int32_t val) {
    std::memset(row_.data(), 0, row_.size());
    RecordView rec(schema_.get(), row_.data());
    rec.Set(entity_attr_, Value::UInt64(e));
    rec.Set(calls_, Value::Int32(val));
    ASSERT_TRUE(store_->BulkInsert(e, row_.data()).ok());
  }

  void InsertWithCalls(EntityId e, std::int32_t val) {
    std::memset(row_.data(), 0, row_.size());
    RecordView rec(schema_.get(), row_.data());
    rec.Set(entity_attr_, Value::UInt64(e));
    rec.Set(calls_, Value::Int32(val));
    ASSERT_TRUE(store_->Insert(e, row_.data()).ok());
  }

  void PutCalls(EntityId e, std::int32_t val) {
    Version v = 0;
    ASSERT_TRUE(store_->Get(e, out_.data(), &v).ok());
    RecordView(schema_.get(), out_.data()).Set(calls_, Value::Int32(val));
    ASSERT_TRUE(store_->Put(e, out_.data(), v).ok());
  }

  /// One full ForEachVisible pass, asserting no entity is visited twice and
  /// that the visited row's embedded entity id matches the callback's.
  std::unordered_map<EntityId, std::int32_t> Snapshot() {
    std::unordered_map<EntityId, std::int32_t> seen;
    store_->ForEachVisible(
        entity_attr_, [&](EntityId e, Version, const std::uint8_t* row) {
          RecordView rec(schema_.get(), const_cast<std::uint8_t*>(row));
          EXPECT_EQ(rec.Get(entity_attr_).u64(), e);
          const bool first =
              seen.emplace(e, rec.Get(calls_).i32()).second;
          EXPECT_TRUE(first) << "entity " << e << " visited twice";
        });
    return seen;
  }

  const std::uint16_t entity_attr_;
  const std::uint16_t calls_;
};

TEST_F(DeltaMainVisibilityTest, MergeInFlightVisitsEachEntityOnceNewestWins) {
  // Every shadowing combination at once:
  //   1: main only                         -> main image
  //   2: main + frozen                     -> frozen shadows main
  //   3: main + active                     -> active shadows main
  //   4: main + frozen + active            -> active shadows both
  //   5: frozen only (new entity)          -> frozen image
  //   6: frozen + active (new, then Put)   -> active shadows frozen
  //   7: active only (new after switch)    -> active image
  BulkWithCalls(1, 10);
  BulkWithCalls(2, 20);
  BulkWithCalls(3, 30);
  BulkWithCalls(4, 40);
  PutCalls(2, 200);
  PutCalls(4, 400);
  InsertWithCalls(5, 500);
  InsertWithCalls(6, 600);

  store_->SwitchDeltas();
  ASSERT_TRUE(store_->merging());
  PutCalls(3, 3000);
  PutCalls(4, 4000);
  PutCalls(6, 6000);
  InsertWithCalls(7, 7000);

  const std::unordered_map<EntityId, std::int32_t> expected = {
      {1, 10},  {2, 200},  {3, 3000}, {4, 4000},
      {5, 500}, {6, 6000}, {7, 7000}};
  EXPECT_EQ(Snapshot(), expected);

  // The snapshot is also merge-invariant: folding the frozen delta into
  // main moves records between layers but must not change what is visible.
  EXPECT_EQ(store_->MergeStep(), 4u);  // entities 2, 4, 5, 6
  ASSERT_FALSE(store_->merging());
  EXPECT_EQ(Snapshot(), expected);
  EXPECT_EQ(store_->Merge(), 4u);  // entities 3, 4, 6, 7
  EXPECT_EQ(Snapshot(), expected);
}

// The frozen delta's shadow check must key on entity id, not presence in
// main: a *new* entity living in both deltas (inserted before the switch,
// updated after) has no main record to skip, and the frozen copy alone must
// yield to the active one.
TEST_F(DeltaMainVisibilityTest, NewEntityInBothDeltasVisitedOnceFromActive) {
  InsertWithCalls(9, 1);
  store_->SwitchDeltas();
  ASSERT_TRUE(store_->merging());
  PutCalls(9, 2);

  const auto snap = Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap.at(9), 2);
  EXPECT_EQ(store_->MergeStep(), 1u);
}

// ---------------------------------------------------------------------------
// Concurrent ESP/RTA stress: one writer thread (ESP role) doing read-modify-
// write cycles with checkpoints, one merger thread (RTA role) doing
// switch+merge cycles. Invariant: the per-entity counter only grows, and the
// final state matches the number of increments.
// ---------------------------------------------------------------------------

TEST_F(DeltaMainTest, ConcurrentEspAndMergeThreads) {
  constexpr EntityId kEntities = 64;
  constexpr int kIncrementsPerEntity = 400;
  const std::uint16_t calls = schema_->FindAttribute("calls_today");

  // Preload.
  for (EntityId e = 1; e <= kEntities; ++e) {
    std::memset(row_.data(), 0, row_.size());
    ASSERT_TRUE(store_->BulkInsert(e, row_.data()).ok());
  }
  store_->set_esp_attached(true);

  std::atomic<bool> esp_done{false};
  std::thread esp([&] {
    std::vector<std::uint8_t> buf(schema_->record_size());
    Random rng(99);
    std::vector<int> done(kEntities + 1, 0);
    std::uint64_t remaining = kEntities * kIncrementsPerEntity;
    while (remaining > 0) {
      store_->EspCheckpoint();
      EntityId e = rng.Uniform(kEntities) + 1;
      if (done[e] >= kIncrementsPerEntity) continue;
      Version v = 0;
      ASSERT_TRUE(store_->Get(e, buf.data(), &v).ok());
      RecordView rec(schema_.get(), buf.data());
      rec.Set(calls, Value::Int32(rec.Get(calls).i32() + 1));
      Status put = store_->Put(e, buf.data(), v);
      // Single-writer: conditional writes must never conflict.
      ASSERT_TRUE(put.ok()) << put.ToString();
      done[e]++;
      remaining--;
    }
    store_->set_esp_attached(false);
    esp_done.store(true, std::memory_order_release);
  });

  std::thread rta([&] {
    std::uint64_t merged = 0;
    while (!esp_done.load(std::memory_order_acquire)) {
      store_->SwitchDeltas();
      merged += store_->MergeStep();
      std::this_thread::yield();
    }
    (void)merged;
  });

  esp.join();
  rta.join();

  // Final merge folds any leftover delta.
  store_->Merge();
  std::uint64_t total = 0;
  for (EntityId e = 1; e <= kEntities; ++e) {
    total += static_cast<std::uint64_t>(
        store_->GetAttribute(e, calls)->i32());
  }
  EXPECT_EQ(total, kEntities * kIncrementsPerEntity);
}

// With no ESP attached there is nobody to acknowledge the swap epoch, so
// SwitchDeltas must take the unsynchronized fast path instead of waiting —
// the startup/shutdown state of every storage node. Single-threaded and
// fully deterministic: a handshake regression here is a hang, not a flake.
TEST_F(DeltaMainTest, SwitchWithoutEspAttachedDoesNotBlock) {
  const std::uint16_t calls = schema_->FindAttribute("calls_today");
  std::memset(row_.data(), 0, row_.size());
  ASSERT_TRUE(store_->BulkInsert(1, row_.data()).ok());

  for (int round = 0; round < 3; ++round) {
    Version v = 0;
    ASSERT_TRUE(store_->Get(1, out_.data(), &v).ok());
    RecordView rec(schema_.get(), out_.data());
    rec.Set(calls, Value::Int32(rec.Get(calls).i32() + 1));
    ASSERT_TRUE(store_->Put(1, out_.data(), v).ok());

    store_->SwitchDeltas();  // must return immediately: no writer to park
    EXPECT_EQ(store_->MergeStep(), 1u);
  }
  EXPECT_EQ(store_->GetAttribute(1, calls)->i32(), 3);
}

// Detach racing an in-flight switch: the RTA side is parked in SwitchDeltas
// waiting for an acknowledgement that will never come, because the ESP
// detaches instead of checkpointing. The detach must release the waiter
// (otherwise this test hangs). The switch itself must still complete so a
// later merge sees the frozen delta.
TEST_F(DeltaMainTest, DetachWhileSwitchWaitingReleasesRta) {
  const std::uint16_t calls = schema_->FindAttribute("calls_today");
  std::memset(row_.data(), 0, row_.size());
  ASSERT_TRUE(store_->BulkInsert(1, row_.data()).ok());

  store_->set_esp_attached(true);
  Version v = 0;
  ASSERT_TRUE(store_->Get(1, out_.data(), &v).ok());
  RecordView rec(schema_.get(), out_.data());
  rec.Set(calls, Value::Int32(7));
  ASSERT_TRUE(store_->Put(1, out_.data(), v).ok());

  // RTA thread blocks in SwitchDeltas: the attached ESP never checkpoints.
  std::thread rta([&] { store_->SwitchDeltas(); });
  // Give the waiter time to actually park before pulling the rug.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  store_->set_esp_attached(false);
  rta.join();  // hangs here if detach does not release the wait loop

  EXPECT_EQ(store_->MergeStep(), 1u);
  EXPECT_EQ(store_->GetAttribute(1, calls)->i32(), 7);
}

}  // namespace
}  // namespace aim
