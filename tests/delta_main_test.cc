#include <atomic>
#include <cstring>
#include <thread>
#include <unordered_map>

#include <gtest/gtest.h>

#include "aim/storage/delta.h"
#include "aim/storage/delta_main.h"
#include "test_util.h"

namespace aim {
namespace {

using testing_util::FillRandomRow;
using testing_util::MakeTinySchema;

// ---------------------------------------------------------------------------
// Delta
// ---------------------------------------------------------------------------

TEST(DeltaTest, PutGetOverwrite) {
  auto schema = MakeTinySchema();
  Delta delta(schema.get());
  Random rng(1);
  std::vector<std::uint8_t> row(schema->record_size(), 0);

  FillRandomRow(*schema, &rng, row.data());
  delta.Put(5, row.data(), 2);
  EXPECT_EQ(delta.size(), 1u);

  Version v = 0;
  const std::uint8_t* got = delta.Get(5, &v);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(v, 2u);
  EXPECT_EQ(std::memcmp(got, row.data(), row.size()), 0);

  // Overwrite in place: size stays 1 (hot-spot compaction).
  FillRandomRow(*schema, &rng, row.data());
  delta.Put(5, row.data(), 3);
  EXPECT_EQ(delta.size(), 1u);
  got = delta.Get(5, &v);
  EXPECT_EQ(v, 3u);
  EXPECT_EQ(std::memcmp(got, row.data(), row.size()), 0);

  EXPECT_EQ(delta.Get(6, nullptr), nullptr);
}

TEST(DeltaTest, ForEachVisitsAll) {
  auto schema = MakeTinySchema();
  Delta delta(schema.get());
  std::vector<std::uint8_t> row(schema->record_size(), 0);
  for (EntityId e = 1; e <= 2500; ++e) {  // spans multiple arena chunks
    delta.Put(e, row.data(), e);
  }
  std::uint64_t sum = 0, count = 0;
  delta.ForEach([&](EntityId e, Version v, const std::uint8_t*) {
    sum += e;
    EXPECT_EQ(v, e);
    count++;
  });
  EXPECT_EQ(count, 2500u);
  EXPECT_EQ(sum, 2500ull * 2501 / 2);

  delta.Clear();
  EXPECT_TRUE(delta.empty());
  EXPECT_EQ(delta.Get(1, nullptr), nullptr);
}

// ---------------------------------------------------------------------------
// DeltaMainStore
// ---------------------------------------------------------------------------

class DeltaMainTest : public ::testing::Test {
 protected:
  DeltaMainTest() : schema_(MakeTinySchema()) {
    DeltaMainStore::Options opts;
    opts.bucket_size = 8;
    opts.max_records = 4096;
    store_ = std::make_unique<DeltaMainStore>(schema_.get(), opts);
    row_.resize(schema_->record_size());
    out_.resize(schema_->record_size());
  }

  void RandomRow() { FillRandomRow(*schema_, &rng_, row_.data()); }

  std::unique_ptr<Schema> schema_;
  std::unique_ptr<DeltaMainStore> store_;
  Random rng_{17};
  std::vector<std::uint8_t> row_, out_;
};

TEST_F(DeltaMainTest, GetFromMainAfterBulkInsert) {
  RandomRow();
  ASSERT_TRUE(store_->BulkInsert(7, row_.data()).ok());
  Version v = 0;
  ASSERT_TRUE(store_->Get(7, out_.data(), &v).ok());
  EXPECT_EQ(v, 1u);
  EXPECT_EQ(std::memcmp(out_.data(), row_.data(), row_.size()), 0);
  EXPECT_TRUE(store_->Exists(7));
  EXPECT_FALSE(store_->Exists(8));
  EXPECT_TRUE(store_->Get(8, out_.data(), &v).IsNotFound());
}

TEST_F(DeltaMainTest, ConditionalWriteDetectsStaleVersion) {
  RandomRow();
  ASSERT_TRUE(store_->BulkInsert(7, row_.data()).ok());
  Version v = 0;
  ASSERT_TRUE(store_->Get(7, out_.data(), &v).ok());

  // First writer wins.
  RandomRow();
  ASSERT_TRUE(store_->Put(7, row_.data(), v).ok());
  // Second writer with the old version loses.
  EXPECT_TRUE(store_->Put(7, row_.data(), v).IsConflict());
  // Re-read and retry succeeds (version is now v+1).
  Version v2 = 0;
  ASSERT_TRUE(store_->Get(7, out_.data(), &v2).ok());
  EXPECT_EQ(v2, v + 1);
  EXPECT_TRUE(store_->Put(7, row_.data(), v2).ok());
}

TEST_F(DeltaMainTest, PutUnknownEntityIsNotFound) {
  RandomRow();
  EXPECT_TRUE(store_->Put(99, row_.data(), 0).IsNotFound());
}

TEST_F(DeltaMainTest, InsertNewEntityThroughDelta) {
  RandomRow();
  ASSERT_TRUE(store_->Insert(50, row_.data()).ok());
  EXPECT_TRUE(store_->Insert(50, row_.data()).IsConflict());
  Version v = 0;
  ASSERT_TRUE(store_->Get(50, out_.data(), &v).ok());
  EXPECT_EQ(v, 1u);
  EXPECT_EQ(store_->main_records(), 0u);  // not merged yet
  EXPECT_EQ(store_->Merge(), 1u);
  EXPECT_EQ(store_->main_records(), 1u);
  ASSERT_TRUE(store_->Get(50, out_.data(), &v).ok());
  EXPECT_EQ(std::memcmp(out_.data(), row_.data(), row_.size()), 0);
}

TEST_F(DeltaMainTest, DeltaShadowsMainUntilMerge) {
  RandomRow();
  ASSERT_TRUE(store_->BulkInsert(7, row_.data()).ok());
  const std::uint16_t calls = schema_->FindAttribute("calls_today");

  Version v = 0;
  ASSERT_TRUE(store_->Get(7, out_.data(), &v).ok());
  RecordView rec(schema_.get(), out_.data());
  rec.Set(calls, Value::Int32(123));
  ASSERT_TRUE(store_->Put(7, out_.data(), v).ok());

  // Get sees the delta value; the main still has the old one (snapshot
  // isolation for scans).
  EXPECT_EQ(store_->GetAttribute(7, calls)->i32(), 123);
  const RecordId id = store_->main().Lookup(7);
  EXPECT_NE(store_->main().GetValue(id, calls).i32(), 123);

  EXPECT_EQ(store_->Merge(), 1u);
  EXPECT_EQ(store_->main().GetValue(id, calls).i32(), 123);
  EXPECT_EQ(store_->delta_size(), 0u);
}

TEST_F(DeltaMainTest, GetDuringMergeReadsFrozenDelta) {
  RandomRow();
  ASSERT_TRUE(store_->BulkInsert(7, row_.data()).ok());
  const std::uint16_t calls = schema_->FindAttribute("calls_today");
  Version v = 0;
  ASSERT_TRUE(store_->Get(7, out_.data(), &v).ok());
  RecordView(schema_.get(), out_.data()).Set(calls, Value::Int32(55));
  ASSERT_TRUE(store_->Put(7, out_.data(), v).ok());

  // Freeze but don't merge: Algorithm 3 must find the record in the frozen
  // delta.
  store_->SwitchDeltas();
  EXPECT_TRUE(store_->merging());
  EXPECT_EQ(store_->GetAttribute(7, calls)->i32(), 55);
  EXPECT_EQ(store_->delta_size(), 0u);
  EXPECT_EQ(store_->frozen_size(), 1u);

  // Puts during the merge go to the new delta.
  Version v2 = 0;
  ASSERT_TRUE(store_->Get(7, out_.data(), &v2).ok());
  RecordView(schema_.get(), out_.data()).Set(calls, Value::Int32(56));
  ASSERT_TRUE(store_->Put(7, out_.data(), v2).ok());
  EXPECT_EQ(store_->delta_size(), 1u);

  EXPECT_EQ(store_->MergeStep(), 1u);
  EXPECT_FALSE(store_->merging());
  // Newest value still from the (new) delta.
  EXPECT_EQ(store_->GetAttribute(7, calls)->i32(), 56);
  EXPECT_EQ(store_->Merge(), 1u);
  EXPECT_EQ(store_->GetAttribute(7, calls)->i32(), 56);
}

TEST_F(DeltaMainTest, PropertyRandomOpsAgainstReferenceMap) {
  const std::uint16_t calls = schema_->FindAttribute("calls_today");
  std::unordered_map<EntityId, std::int32_t> ref;

  for (int round = 0; round < 10; ++round) {
    for (int op = 0; op < 400; ++op) {
      const EntityId e = rng_.Uniform(200) + 1;
      const std::int32_t val =
          static_cast<std::int32_t>(rng_.Uniform(1 << 20));
      Version v = 0;
      Status got = store_->Get(e, out_.data(), &v);
      if (got.IsNotFound()) {
        std::memset(out_.data(), 0, out_.size());
        RecordView(schema_.get(), out_.data()).Set(calls, Value::Int32(val));
        ASSERT_TRUE(store_->Insert(e, out_.data()).ok());
      } else {
        ASSERT_TRUE(got.ok());
        RecordView(schema_.get(), out_.data()).Set(calls, Value::Int32(val));
        ASSERT_TRUE(store_->Put(e, out_.data(), v).ok());
      }
      ref[e] = val;
    }
    // Interleave merges at random points.
    store_->Merge();
    for (const auto& [e, val] : ref) {
      ASSERT_EQ(store_->GetAttribute(e, calls)->i32(), val);
    }
  }
  EXPECT_EQ(store_->main_records(), ref.size());
}

// ---------------------------------------------------------------------------
// Concurrent ESP/RTA stress: one writer thread (ESP role) doing read-modify-
// write cycles with checkpoints, one merger thread (RTA role) doing
// switch+merge cycles. Invariant: the per-entity counter only grows, and the
// final state matches the number of increments.
// ---------------------------------------------------------------------------

TEST_F(DeltaMainTest, ConcurrentEspAndMergeThreads) {
  constexpr EntityId kEntities = 64;
  constexpr int kIncrementsPerEntity = 400;
  const std::uint16_t calls = schema_->FindAttribute("calls_today");

  // Preload.
  for (EntityId e = 1; e <= kEntities; ++e) {
    std::memset(row_.data(), 0, row_.size());
    ASSERT_TRUE(store_->BulkInsert(e, row_.data()).ok());
  }
  store_->set_esp_attached(true);

  std::atomic<bool> esp_done{false};
  std::thread esp([&] {
    std::vector<std::uint8_t> buf(schema_->record_size());
    Random rng(99);
    std::vector<int> done(kEntities + 1, 0);
    std::uint64_t remaining = kEntities * kIncrementsPerEntity;
    while (remaining > 0) {
      store_->EspCheckpoint();
      EntityId e = rng.Uniform(kEntities) + 1;
      if (done[e] >= kIncrementsPerEntity) continue;
      Version v = 0;
      ASSERT_TRUE(store_->Get(e, buf.data(), &v).ok());
      RecordView rec(schema_.get(), buf.data());
      rec.Set(calls, Value::Int32(rec.Get(calls).i32() + 1));
      Status put = store_->Put(e, buf.data(), v);
      // Single-writer: conditional writes must never conflict.
      ASSERT_TRUE(put.ok()) << put.ToString();
      done[e]++;
      remaining--;
    }
    store_->set_esp_attached(false);
    esp_done.store(true, std::memory_order_release);
  });

  std::thread rta([&] {
    std::uint64_t merged = 0;
    while (!esp_done.load(std::memory_order_acquire)) {
      store_->SwitchDeltas();
      merged += store_->MergeStep();
      std::this_thread::yield();
    }
    (void)merged;
  });

  esp.join();
  rta.join();

  // Final merge folds any leftover delta.
  store_->Merge();
  std::uint64_t total = 0;
  for (EntityId e = 1; e <= kEntities; ++e) {
    total += static_cast<std::uint64_t>(
        store_->GetAttribute(e, calls)->i32());
  }
  EXPECT_EQ(total, kEntities * kIncrementsPerEntity);
}

// With no ESP attached there is nobody to acknowledge the swap epoch, so
// SwitchDeltas must take the unsynchronized fast path instead of waiting —
// the startup/shutdown state of every storage node. Single-threaded and
// fully deterministic: a handshake regression here is a hang, not a flake.
TEST_F(DeltaMainTest, SwitchWithoutEspAttachedDoesNotBlock) {
  const std::uint16_t calls = schema_->FindAttribute("calls_today");
  std::memset(row_.data(), 0, row_.size());
  ASSERT_TRUE(store_->BulkInsert(1, row_.data()).ok());

  for (int round = 0; round < 3; ++round) {
    Version v = 0;
    ASSERT_TRUE(store_->Get(1, out_.data(), &v).ok());
    RecordView rec(schema_.get(), out_.data());
    rec.Set(calls, Value::Int32(rec.Get(calls).i32() + 1));
    ASSERT_TRUE(store_->Put(1, out_.data(), v).ok());

    store_->SwitchDeltas();  // must return immediately: no writer to park
    EXPECT_EQ(store_->MergeStep(), 1u);
  }
  EXPECT_EQ(store_->GetAttribute(1, calls)->i32(), 3);
}

// Detach racing an in-flight switch: the RTA side is parked in SwitchDeltas
// waiting for an acknowledgement that will never come, because the ESP
// detaches instead of checkpointing. The detach must release the waiter
// (otherwise this test hangs). The switch itself must still complete so a
// later merge sees the frozen delta.
TEST_F(DeltaMainTest, DetachWhileSwitchWaitingReleasesRta) {
  const std::uint16_t calls = schema_->FindAttribute("calls_today");
  std::memset(row_.data(), 0, row_.size());
  ASSERT_TRUE(store_->BulkInsert(1, row_.data()).ok());

  store_->set_esp_attached(true);
  Version v = 0;
  ASSERT_TRUE(store_->Get(1, out_.data(), &v).ok());
  RecordView rec(schema_.get(), out_.data());
  rec.Set(calls, Value::Int32(7));
  ASSERT_TRUE(store_->Put(1, out_.data(), v).ok());

  // RTA thread blocks in SwitchDeltas: the attached ESP never checkpoints.
  std::thread rta([&] { store_->SwitchDeltas(); });
  // Give the waiter time to actually park before pulling the rug.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  store_->set_esp_attached(false);
  rta.join();  // hangs here if detach does not release the wait loop

  EXPECT_EQ(store_->MergeStep(), 1u);
  EXPECT_EQ(store_->GetAttribute(1, calls)->i32(), 7);
}

}  // namespace
}  // namespace aim
