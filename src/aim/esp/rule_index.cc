#include "aim/esp/rule_index.h"

#include <algorithm>
#include <map>

#include "aim/common/logging.h"

namespace aim {

namespace {

/// Key identifying a dimension (what a predicate's lhs refers to).
struct DimKey {
  Predicate::Lhs lhs;
  std::uint16_t attr;
  EventFieldId field;

  bool operator<(const DimKey& o) const {
    if (lhs != o.lhs) return lhs < o.lhs;
    if (lhs == Predicate::Lhs::kRecordAttr) return attr < o.attr;
    return field < o.field;
  }
};

DimKey KeyOf(const Predicate& p) {
  return DimKey{p.lhs, p.attr, p.field};
}

}  // namespace

RuleIndex::RuleIndex(const std::vector<Rule>* rules) : rules_(rules) {
  // Pass 1: collect conjuncts and bucket indexable predicates per
  // (dimension, op, constant). Deduplication happens naturally through the
  // map: identical atomic predicates from different conjuncts share one
  // threshold entry with a multi-element occurrence list.
  struct PredOccs {
    std::vector<std::uint32_t> conjuncts;
  };
  std::map<DimKey, std::map<std::pair<int, double>, PredOccs>> buckets;

  for (std::uint32_t rp = 0; rp < rules_->size(); ++rp) {
    const Rule& rule = (*rules_)[rp];
    for (const Conjunct& conj : rule.conjuncts) {
      const std::uint32_t cid = static_cast<std::uint32_t>(conjuncts_.size());
      ConjunctInfo info;
      info.rule_id = rule.id;
      info.rule_pos = rp;
      info.indexed_preds = 0;
      for (const Predicate& p : conj.predicates) {
        if (p.op == CmpOp::kNe) {
          info.residual.push_back(p);
          continue;
        }
        buckets[KeyOf(p)][{static_cast<int>(p.op), p.constant}]
            .conjuncts.push_back(cid);
        info.indexed_preds++;
      }
      if (info.indexed_preds == 0) unindexed_conjuncts_.push_back(cid);
      conjuncts_.push_back(std::move(info));
    }
  }

  // Pass 2: freeze dimensions with sorted threshold arrays over the shared
  // occurrence pool.
  for (auto& [key, preds] : buckets) {
    Dimension dim;
    dim.lhs = key.lhs;
    dim.attr = key.attr;
    dim.field = key.field;
    for (auto& [op_const, occs] : preds) {
      ThresholdEntry entry;
      entry.constant = op_const.second;
      entry.occ_begin = static_cast<std::uint32_t>(occurrences_.size());
      occurrences_.insert(occurrences_.end(), occs.conjuncts.begin(),
                          occs.conjuncts.end());
      entry.occ_end = static_cast<std::uint32_t>(occurrences_.size());
      switch (static_cast<CmpOp>(op_const.first)) {
        case CmpOp::kLt:
          dim.lt.push_back(entry);
          break;
        case CmpOp::kLe:
          dim.le.push_back(entry);
          break;
        case CmpOp::kGt:
          dim.gt.push_back(entry);
          break;
        case CmpOp::kGe:
          dim.ge.push_back(entry);
          break;
        case CmpOp::kEq:
          dim.eq[entry.constant] = {entry.occ_begin, entry.occ_end};
          break;
        case CmpOp::kNe:
          AIM_CHECK(false);  // filtered above
      }
    }
    // std::map iteration already yields ascending constants; keep the
    // explicit sort as defense against future refactors.
    auto by_const = [](const ThresholdEntry& a, const ThresholdEntry& b) {
      return a.constant < b.constant;
    };
    std::sort(dim.lt.begin(), dim.lt.end(), by_const);
    std::sort(dim.le.begin(), dim.le.end(), by_const);
    std::sort(dim.gt.begin(), dim.gt.end(), by_const);
    std::sort(dim.ge.begin(), dim.ge.end(), by_const);
    dimensions_.push_back(std::move(dim));
  }
}

double RuleIndex::DimensionValue(const Dimension& d, const Event& e,
                                 const ConstRecordView& r) const {
  Predicate p;
  p.lhs = d.lhs;
  p.attr = d.attr;
  p.field = d.field;
  return p.LhsValue(e, r);
}

void RuleIndex::BumpOccurrences(std::uint32_t occ_begin,
                                std::uint32_t occ_end, const Event& e,
                                const ConstRecordView& r, Scratch* scratch,
                                std::vector<std::uint32_t>* matched) const {
  for (std::uint32_t i = occ_begin; i < occ_end; ++i) {
    const std::uint32_t cid = occurrences_[i];
    if (scratch->conjunct_epoch[cid] != scratch->epoch) {
      scratch->conjunct_epoch[cid] = scratch->epoch;
      scratch->conjunct_count[cid] = 0;
    }
    if (++scratch->conjunct_count[cid] != conjuncts_[cid].indexed_preds) {
      continue;
    }
    // All indexed predicates satisfied: verify residual != predicates, then
    // report the rule (once per event).
    const ConjunctInfo& info = conjuncts_[cid];
    if (scratch->rule_epoch[info.rule_pos] == scratch->epoch) continue;
    bool ok = true;
    for (const Predicate& p : info.residual) {
      if (!p.Evaluate(e, r)) {
        ok = false;
        break;
      }
    }
    if (ok) {
      scratch->rule_epoch[info.rule_pos] = scratch->epoch;
      matched->push_back(info.rule_id);
    }
  }
}

void RuleIndex::Evaluate(const Event& event, const ConstRecordView& record,
                         Scratch* scratch,
                         std::vector<std::uint32_t>* matched) const {
  matched->clear();
  scratch->conjunct_count.resize(conjuncts_.size(), 0);
  scratch->conjunct_epoch.resize(conjuncts_.size(), 0);
  scratch->rule_epoch.resize(rules_->size(), 0);
  scratch->epoch++;
  if (scratch->epoch == 0) {  // epoch wrap: hard reset
    std::fill(scratch->conjunct_epoch.begin(), scratch->conjunct_epoch.end(),
              0);
    std::fill(scratch->rule_epoch.begin(), scratch->rule_epoch.end(), 0);
    scratch->epoch = 1;
  }

  for (const Dimension& dim : dimensions_) {
    const double v = DimensionValue(dim, event, record);

    // v < c: suffix of lt with c > v.
    {
      auto it = std::upper_bound(
          dim.lt.begin(), dim.lt.end(), v,
          [](double x, const ThresholdEntry& t) { return x < t.constant; });
      for (; it != dim.lt.end(); ++it) {
        BumpOccurrences(it->occ_begin, it->occ_end, event, record, scratch,
                        matched);
      }
    }
    // v <= c: suffix of le with c >= v.
    {
      auto it = std::lower_bound(
          dim.le.begin(), dim.le.end(), v,
          [](const ThresholdEntry& t, double x) { return t.constant < x; });
      for (; it != dim.le.end(); ++it) {
        BumpOccurrences(it->occ_begin, it->occ_end, event, record, scratch,
                        matched);
      }
    }
    // v > c: prefix of gt with c < v.
    {
      auto end = std::lower_bound(
          dim.gt.begin(), dim.gt.end(), v,
          [](const ThresholdEntry& t, double x) { return t.constant < x; });
      for (auto it = dim.gt.begin(); it != end; ++it) {
        BumpOccurrences(it->occ_begin, it->occ_end, event, record, scratch,
                        matched);
      }
    }
    // v >= c: prefix of ge with c <= v.
    {
      auto end = std::upper_bound(
          dim.ge.begin(), dim.ge.end(), v,
          [](double x, const ThresholdEntry& t) { return x < t.constant; });
      for (auto it = dim.ge.begin(); it != end; ++it) {
        BumpOccurrences(it->occ_begin, it->occ_end, event, record, scratch,
                        matched);
      }
    }
    // v == c.
    if (!dim.eq.empty()) {
      auto it = dim.eq.find(v);
      if (it != dim.eq.end()) {
        BumpOccurrences(it->second.first, it->second.second, event, record,
                        scratch, matched);
      }
    }
  }

  // Conjuncts made only of != predicates never get counter bumps; check
  // them directly.
  for (std::uint32_t cid : unindexed_conjuncts_) {
    const ConjunctInfo& info = conjuncts_[cid];
    if (scratch->rule_epoch[info.rule_pos] == scratch->epoch) continue;
    bool ok = true;
    for (const Predicate& p : info.residual) {
      if (!p.Evaluate(event, record)) {
        ok = false;
        break;
      }
    }
    if (ok) {
      scratch->rule_epoch[info.rule_pos] = scratch->epoch;
      matched->push_back(info.rule_id);
    }
  }
}

}  // namespace aim
