#ifndef AIM_ESP_EVENT_ARCHIVE_H_
#define AIM_ESP_EVENT_ARCHIVE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "aim/common/types.h"
#include "aim/esp/event.h"
#include "aim/schema/schema.h"

namespace aim {

/// Archive of recent events, the production-AIM feature the paper mentions
/// in §7 and relies on in footnote 1: when all top-N values of a sliding
/// min/max indicator fall out of the window, the *exact* extremum of the
/// current window can only be recovered from the raw events.
///
/// Implementation: per-entity ring of recent events (bounded by a retention
/// horizon), plus a global append order for replay. Events older than the
/// retention horizon are dropped on Append (amortized).
///
/// Single-writer (the owning ESP thread); readers must be quiesced or be
/// the same thread. The horizon should cover the longest sliding window in
/// the schema.
class EventArchive {
 public:
  struct Options {
    /// How long events are retained, relative to the newest appended
    /// timestamp. Defaults to 7 days — the longest sliding window of the
    /// benchmark schema.
    Timestamp retention_ms = kMillisPerWeek;
    /// Hard cap on buffered events per entity (memory guard).
    std::size_t max_events_per_entity = 4096;
  };

  EventArchive() : EventArchive(Options{kMillisPerWeek, 4096}) {}
  explicit EventArchive(const Options& options) : options_(options) {}

  /// Appends one event (keyed by event.caller).
  void Append(const Event& event);

  /// Visits the retained events of one entity, oldest first.
  /// Fn: void(const Event&).
  template <typename Fn>
  void ForEachOf(EntityId entity, Fn&& fn) const {
    auto it = per_entity_.find(entity);
    if (it == per_entity_.end()) return;
    for (const Event& e : it->second) fn(e);
  }

  /// Visits retained events of `entity` with timestamp in [from, to),
  /// oldest first.
  template <typename Fn>
  void ForEachInRange(EntityId entity, Timestamp from, Timestamp to,
                      Fn&& fn) const {
    ForEachOf(entity, [&](const Event& e) {
      if (e.timestamp >= from && e.timestamp < to) fn(e);
    });
  }

  std::size_t TotalEvents() const { return total_events_; }
  std::size_t EventsOf(EntityId entity) const {
    auto it = per_entity_.find(entity);
    return it == per_entity_.end() ? 0 : it->second.size();
  }
  Timestamp newest_timestamp() const { return newest_ts_; }

 private:
  Options options_;
  std::unordered_map<EntityId, std::deque<Event>> per_entity_;
  std::size_t total_events_ = 0;
  Timestamp newest_ts_ = 0;
};

/// Recomputes one attribute group's indicators *exactly* from the archive
/// (footnote 1's recovery path): instead of the pane approximation, the
/// true window [now - window, now] is aggregated over the raw events.
/// Writes the indicators into `record` like the update kernel would.
/// Only meaningful for sliding-window groups; returns kInvalidArgument
/// otherwise.
Status RebuildSlidingFromArchive(const Schema& schema,
                                 std::uint16_t group_id,
                                 const EventArchive& archive,
                                 EntityId entity, Timestamp now,
                                 std::uint8_t* record);

}  // namespace aim

#endif  // AIM_ESP_EVENT_ARCHIVE_H_
