#include "aim/esp/rule.h"

#include <cstdio>

namespace aim {

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
    case CmpOp::kEq:
      return "==";
    case CmpOp::kNe:
      return "!=";
  }
  return "?";
}

const char* EventFieldName(EventFieldId f) {
  switch (f) {
    case EventFieldId::kDuration:
      return "event.duration";
    case EventFieldId::kCost:
      return "event.cost";
    case EventFieldId::kDataVolume:
      return "event.data_mb";
    case EventFieldId::kLongDistance:
      return "event.long_distance";
    case EventFieldId::kInternational:
      return "event.international";
    case EventFieldId::kRoaming:
      return "event.roaming";
  }
  return "?";
}

bool EvaluateCmp(CmpOp op, double lhs, double rhs) {
  switch (op) {
    case CmpOp::kLt:
      return lhs < rhs;
    case CmpOp::kLe:
      return lhs <= rhs;
    case CmpOp::kGt:
      return lhs > rhs;
    case CmpOp::kGe:
      return lhs >= rhs;
    case CmpOp::kEq:
      return lhs == rhs;
    case CmpOp::kNe:
      return lhs != rhs;
  }
  return false;
}

double Predicate::LhsValue(const Event& e, const ConstRecordView& r) const {
  if (lhs == Lhs::kRecordAttr) {
    return r.Get(attr).AsDouble();
  }
  switch (field) {
    case EventFieldId::kDuration:
      return static_cast<double>(e.duration);
    case EventFieldId::kCost:
      return static_cast<double>(e.cost);
    case EventFieldId::kDataVolume:
      return static_cast<double>(e.data_mb);
    case EventFieldId::kLongDistance:
      return e.long_distance() ? 1.0 : 0.0;
    case EventFieldId::kInternational:
      return e.international() ? 1.0 : 0.0;
    case EventFieldId::kRoaming:
      return e.roaming() ? 1.0 : 0.0;
  }
  return 0.0;
}

bool Predicate::Evaluate(const Event& e, const ConstRecordView& r) const {
  return EvaluateCmp(op, LhsValue(e, r), constant);
}

std::string Predicate::ToString(const Schema* schema) const {
  std::string lhs_name;
  if (lhs == Lhs::kRecordAttr) {
    lhs_name = (schema != nullptr && attr < schema->num_attributes())
                   ? schema->attribute(attr).name
                   : "attr#" + std::to_string(attr);
  } else {
    lhs_name = EventFieldName(field);
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), " %s %g", CmpOpName(op), constant);
  return lhs_name + buf;
}

std::string Rule::ToString(const Schema* schema) const {
  std::string out = "Rule " + std::to_string(id) + " (" + name + "): ";
  for (std::size_t c = 0; c < conjuncts.size(); ++c) {
    if (c > 0) out += " OR ";
    out += "(";
    const Conjunct& conj = conjuncts[c];
    for (std::size_t p = 0; p < conj.predicates.size(); ++p) {
      if (p > 0) out += " AND ";
      out += conj.predicates[p].ToString(schema);
    }
    out += ")";
  }
  return out;
}

RuleBuilder::RuleBuilder(std::uint32_t id, std::string name) {
  rule_.id = id;
  rule_.name = std::move(name);
}

RuleBuilder& RuleBuilder::Where(std::uint16_t attr, CmpOp op,
                                double constant) {
  current_.predicates.push_back(Predicate::OnAttr(attr, op, constant));
  return *this;
}

RuleBuilder& RuleBuilder::And(std::uint16_t attr, CmpOp op, double constant) {
  return Where(attr, op, constant);
}

RuleBuilder& RuleBuilder::WhereEvent(EventFieldId field, CmpOp op,
                                     double constant) {
  current_.predicates.push_back(Predicate::OnEvent(field, op, constant));
  return *this;
}

RuleBuilder& RuleBuilder::AndEvent(EventFieldId field, CmpOp op,
                                   double constant) {
  return WhereEvent(field, op, constant);
}

RuleBuilder& RuleBuilder::Or() {
  if (!current_.predicates.empty()) {
    rule_.conjuncts.push_back(std::move(current_));
    current_ = Conjunct{};
  }
  return *this;
}

RuleBuilder& RuleBuilder::WithAction(std::string action) {
  rule_.action = std::move(action);
  return *this;
}

RuleBuilder& RuleBuilder::WithPolicy(FiringPolicy policy) {
  rule_.policy = policy;
  return *this;
}

Rule RuleBuilder::Build() {
  if (!current_.predicates.empty()) {
    rule_.conjuncts.push_back(std::move(current_));
    current_ = Conjunct{};
  }
  return std::move(rule_);
}

}  // namespace aim
