#include "aim/esp/esp_engine.h"

#include <cstring>

#include "aim/common/logging.h"
#include "aim/schema/record.h"

namespace aim {

EspEngine::EspEngine(const Schema* schema, DeltaMainStore* store,
                     const std::vector<Rule>* rules, const SystemAttrs& sys,
                     const Options& options)
    : schema_(schema),
      store_(store),
      rules_(rules),
      sys_(sys),
      options_(options),
      program_(*schema, sys.preferred_number),
      evaluator_(rules),
      row_buf_(schema->record_size(), 0) {
  if (!rules_->empty()) {
    rule_index_ = std::make_unique<RuleIndex>(rules_);
  }
  if (options.keep_event_archive) {
    EventArchive::Options aopts;
    aopts.retention_ms = options.archive_retention_ms;
    archive_ = std::make_unique<EventArchive>(aopts);
  }
}

void EspEngine::InitFreshRecord(EntityId entity, const Event& event) {
  std::memset(row_buf_.data(), 0, row_buf_.size());
  RecordView rec(schema_, row_buf_.data());
  if (sys_.entity_id != kInvalidAttr) {
    rec.SetAs<std::uint64_t>(sys_.entity_id, entity);
  }
}

Status EspEngine::ProcessEvent(const Event& event,
                               std::vector<std::uint32_t>* fired) {
  if (fired != nullptr) fired->clear();
  store_->EspCheckpoint();

  const EntityId entity = event.caller;
  Status result;
  bool updated = false;
  for (int attempt = 0; attempt < options_.max_txn_retries; ++attempt) {
    Version version = 0;
    Status get = store_->Get(entity, row_buf_.data(), &version);
    bool fresh = false;
    if (get.IsNotFound()) {
      if (!options_.create_missing_entities) return get;
      InitFreshRecord(entity, event);
      fresh = true;
    } else if (!get.ok()) {
      return get;
    }

    // Algorithm 1, steps 4-5: every attribute group's compiled update
    // function is applied to the record.
    program_.Apply(event, row_buf_.data());
    RecordView rec(schema_, row_buf_.data());
    if (sys_.last_event_ts != kInvalidAttr) {
      rec.SetAs<std::int64_t>(sys_.last_event_ts, event.timestamp);
    }

    Status put = fresh ? store_->Insert(entity, row_buf_.data())
                       : store_->Put(entity, row_buf_.data(), version);
    if (put.ok()) {
      if (fresh) stats_.entities_created++;
      updated = true;
      break;
    }
    if (put.IsConflict()) {
      // Conditional write lost: restart the single-row transaction.
      stats_.txn_conflicts++;
      continue;
    }
    return put;
  }
  if (!updated) {
    return Status::Conflict("single-row transaction retries exhausted");
  }
  stats_.events_processed++;
  if (archive_ != nullptr) archive_->Append(event);

  // Business rule evaluation against the event and the updated record.
  if (!rules_->empty()) {
    ConstRecordView rec(schema_, row_buf_.data());
    if (options_.use_rule_index && rule_index_ != nullptr) {
      rule_index_->Evaluate(event, rec, &index_scratch_, &matched_buf_);
    } else {
      evaluator_.Evaluate(event, rec, &matched_buf_);
    }
    const std::size_t before = matched_buf_.size();
    policy_tracker_.Filter(*rules_, entity, event.timestamp, &matched_buf_);
    stats_.rules_suppressed += before - matched_buf_.size();
    stats_.rules_fired += matched_buf_.size();
    if (fired != nullptr) {
      fired->assign(matched_buf_.begin(), matched_buf_.end());
    }
  }
  return Status::OK();
}

}  // namespace aim
