#include "aim/esp/esp_engine.h"

#include <cstring>

#include "aim/common/logging.h"
#include "aim/schema/record.h"

namespace aim {

EspEngine::EspEngine(const Schema* schema, DeltaMainStore* store,
                     const std::vector<Rule>* rules, const SystemAttrs& sys,
                     const Options& options)
    : schema_(schema),
      store_(store),
      rules_(rules),
      sys_(sys),
      options_(options),
      program_(*schema, sys.preferred_number),
      evaluator_(rules),
      row_buf_(schema->record_size(), 0) {
  if (!rules_->empty()) {
    rule_index_ = std::make_unique<RuleIndex>(rules_);
  }
  if (options.keep_event_archive) {
    EventArchive::Options aopts;
    aopts.retention_ms = options.archive_retention_ms;
    archive_ = std::make_unique<EventArchive>(aopts);
  }

  MetricsRegistry* metrics = options_.metrics;
  if (metrics == nullptr) {
    own_metrics_ = std::make_unique<MetricsRegistry>();
    metrics = own_metrics_.get();
  }
  const Labels& labels = options_.metric_labels;
  events_ = metrics->GetCounter("aim_esp_events_total", labels);
  txn_conflicts_ = metrics->GetCounter("aim_esp_txn_conflicts_total", labels);
  rules_fired_ = metrics->GetCounter("aim_esp_rules_fired_total", labels);
  rules_suppressed_ =
      metrics->GetCounter("aim_esp_rules_suppressed_total", labels);
  entities_created_ =
      metrics->GetCounter("aim_esp_entities_created_total", labels);
}

EspEngine::Stats EspEngine::stats() const {
  Stats s;
  s.events_processed = events_->Value();
  s.txn_conflicts = txn_conflicts_->Value();
  s.rules_fired = rules_fired_->Value();
  s.rules_suppressed = rules_suppressed_->Value();
  s.entities_created = entities_created_->Value();
  return s;
}

void EspEngine::InitFreshRecord(EntityId entity, const Event& event) {
  std::memset(row_buf_.data(), 0, row_buf_.size());
  RecordView rec(schema_, row_buf_.data());
  if (sys_.entity_id != kInvalidAttr) {
    rec.SetAs<std::uint64_t>(sys_.entity_id, entity);
  }
}

Status EspEngine::ProcessEvent(const Event& event,
                               std::vector<std::uint32_t>* fired) {
  return ProcessOne(event, fired);
}

void EspEngine::ProcessBatch(std::span<const Event> events,
                             BatchResult* result) {
  const std::size_t n = events.size();
  result->Reset(n);
  const std::size_t d =
      options_.prefetch_distance > 0
          ? static_cast<std::size_t>(options_.prefetch_distance)
          : 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (d > 0) {
      // Two-stage group prefetch: warm the hash-index probe chain for the
      // event d ahead, and the record bytes (whose address the now-warm
      // index makes cheap to compute) for the next event. Hints only —
      // the transaction below never depends on them.
      if (i + d < n) store_->PrefetchIndex(events[i + d].caller);
      if (i + 1 < n) {
        store_->PrefetchRecord(events[i + 1].caller,
                               options_.prefetch_main_lines);
      }
    }
    result->statuses[i] = ProcessOne(events[i], &result->fired[i]);
  }
}

Status EspEngine::ProcessOne(const Event& event,
                             std::vector<std::uint32_t>* fired) {
  if (fired != nullptr) fired->clear();
  store_->EspCheckpoint();

  const EntityId entity = event.caller;
  Status result;
  bool updated = false;
  for (int attempt = 0; attempt < options_.max_txn_retries; ++attempt) {
    Version version = 0;
    Status get = store_->Get(entity, row_buf_.data(), &version);
    bool fresh = false;
    if (get.IsNotFound()) {
      if (!options_.create_missing_entities) return get;
      InitFreshRecord(entity, event);
      fresh = true;
    } else if (!get.ok()) {
      return get;
    }

    // Algorithm 1, steps 4-5: every attribute group's compiled update
    // function is applied to the record.
    program_.Apply(event, row_buf_.data());
    RecordView rec(schema_, row_buf_.data());
    if (sys_.last_event_ts != kInvalidAttr) {
      rec.SetAs<std::int64_t>(sys_.last_event_ts, event.timestamp);
    }

    Status put = fresh ? store_->Insert(entity, row_buf_.data())
                       : store_->Put(entity, row_buf_.data(), version);
    if (put.ok()) {
      if (fresh) entities_created_->Add();
      updated = true;
      break;
    }
    if (put.IsConflict()) {
      // Conditional write lost: restart the single-row transaction.
      txn_conflicts_->Add();
      continue;
    }
    return put;
  }
  if (!updated) {
    return Status::Conflict("single-row transaction retries exhausted");
  }
  events_->Add();
  if (archive_ != nullptr) archive_->Append(event);

  // Business rule evaluation against the event and the updated record.
  if (!rules_->empty()) {
    ConstRecordView rec(schema_, row_buf_.data());
    if (options_.use_rule_index && rule_index_ != nullptr) {
      rule_index_->Evaluate(event, rec, &index_scratch_, &matched_buf_);
    } else {
      evaluator_.Evaluate(event, rec, &matched_buf_);
    }
    const std::size_t before = matched_buf_.size();
    policy_tracker_.Filter(*rules_, entity, event.timestamp, &matched_buf_);
    rules_suppressed_->Add(before - matched_buf_.size());
    rules_fired_->Add(matched_buf_.size());
    if (fired != nullptr) {
      fired->assign(matched_buf_.begin(), matched_buf_.end());
    }
  }
  return Status::OK();
}

}  // namespace aim
