#ifndef AIM_ESP_EVENT_H_
#define AIM_ESP_EVENT_H_

#include <cstdint>
#include <string>

#include "aim/common/binary_io.h"
#include "aim/common/types.h"
#include "aim/schema/schema.h"

namespace aim {

/// Call Detail Record event, 64 bytes as in the paper (§4.2: "considerably
/// smaller Events (64 B)"). The entity whose record is updated is `caller`.
struct Event {
  // Event flags (bitmask).
  static constexpr std::uint32_t kLongDistance = 1u << 0;
  static constexpr std::uint32_t kInternational = 1u << 1;
  static constexpr std::uint32_t kRoaming = 1u << 2;

  EntityId caller = 0;       // entity id ("from")
  EntityId callee = 0;       // other party ("to")
  Timestamp timestamp = 0;   // event time, ms
  std::uint32_t duration = 0;  // call duration in seconds
  float cost = 0.0f;           // call cost
  float data_mb = 0.0f;        // data volume in MB
  std::uint32_t flags = 0;
  std::uint64_t sequence = 0;  // generator sequence number (diagnostics)
  std::uint8_t pad[16] = {};   // pad the wire size to 64 bytes

  bool long_distance() const { return (flags & kLongDistance) != 0; }
  bool international() const { return (flags & kInternational) != 0; }
  bool roaming() const { return (flags & kRoaming) != 0; }

  /// Metric extraction used by the update kernel and rule predicates.
  float Metric(EventMetric m) const {
    switch (m) {
      case EventMetric::kDuration:
        return static_cast<float>(duration);
      case EventMetric::kCost:
        return cost;
      case EventMetric::kDataVolume:
        return data_mb;
    }
    return 0.0f;
  }

  void Serialize(BinaryWriter* w) const {
    w->PutU64(caller);
    w->PutU64(callee);
    w->PutI64(timestamp);
    w->PutU32(duration);
    w->PutF32(cost);
    w->PutF32(data_mb);
    w->PutU32(flags);
    w->PutU64(sequence);
    w->PutBytes(pad, sizeof(pad));
  }

  static Event Deserialize(BinaryReader* r) {
    Event e;
    e.caller = r->GetU64();
    e.callee = r->GetU64();
    e.timestamp = r->GetI64();
    e.duration = r->GetU32();
    e.cost = r->GetF32();
    e.data_mb = r->GetF32();
    e.flags = r->GetU32();
    e.sequence = r->GetU64();
    r->GetBytes(e.pad, sizeof(e.pad));
    return e;
  }

  std::string ToString() const;
};

/// 64-byte wire size (8+8+8+4+4+4+4+8+16).
inline constexpr std::size_t kEventWireSize = 64;

}  // namespace aim

#endif  // AIM_ESP_EVENT_H_
