#include "aim/esp/update_kernel.h"

#include <algorithm>
#include <cstring>

#include "aim/common/logging.h"
#include "aim/schema/window.h"

namespace aim {
namespace {

// ---------------------------------------------------------------------------
// Building blocks. Each compiled function is an instantiation of one of the
// Update* templates below over (CallFilter, EventMetric | count-only). This
// mirrors the paper's construction: a "huge nested switch" at group-creation
// time (see CompileFn at the bottom) yielding a branch-lean function pointer
// that is called once per event.
// ---------------------------------------------------------------------------

template <CallFilter F>
inline bool Matches(const Event& e, const std::uint8_t* record,
                    const GroupRuntime& rt) {
  if constexpr (F == CallFilter::kAny) {
    return true;
  } else if constexpr (F == CallFilter::kLocal) {
    return !e.long_distance();
  } else if constexpr (F == CallFilter::kLongDistance) {
    return e.long_distance();
  } else if constexpr (F == CallFilter::kInternational) {
    return e.international();
  } else if constexpr (F == CallFilter::kRoaming) {
    return e.roaming();
  } else {  // kPreferred: record-dependent filter
    if (rt.preferred_off == GroupRuntime::kNoColumn) return false;
    std::uint64_t preferred;
    std::memcpy(&preferred, record + rt.preferred_off, sizeof(preferred));
    return preferred != 0 && preferred == e.callee;
  }
}

template <EventMetric M>
inline float Extract(const Event& e) {
  if constexpr (M == EventMetric::kDuration) {
    return static_cast<float>(e.duration);
  } else if constexpr (M == EventMetric::kCost) {
    return e.cost;
  } else {
    return e.data_mb;
  }
}

inline void StoreI32(std::uint8_t* record, std::uint32_t off,
                     std::int32_t v) {
  if (off != GroupRuntime::kNoColumn) std::memcpy(record + off, &v, 4);
}

inline void StoreF32(std::uint8_t* record, std::uint32_t off, float v) {
  if (off != GroupRuntime::kNoColumn) std::memcpy(record + off, &v, 4);
}

/// Writes the exposed indicator columns from folded aggregate values.
/// Empty windows read as zeroes (matching the zero-initialized record).
inline void WriteIndicators(std::uint8_t* record, const GroupRuntime& rt,
                            std::int32_t count, float sum, float mn,
                            float mx) {
  StoreI32(record, rt.count_off, count);
  StoreF32(record, rt.sum_off, sum);
  const bool empty = count == 0;
  StoreF32(record, rt.min_off, empty ? 0.0f : mn);
  StoreF32(record, rt.max_off, empty ? 0.0f : mx);
  StoreF32(record, rt.avg_off,
           empty ? 0.0f : sum / static_cast<float>(count));
}

// --------------------------- tumbling windows ------------------------------

template <CallFilter F, EventMetric M, bool kHasMetric>
void UpdateTumbling(const Event& e, std::uint8_t* record,
                    const GroupRuntime& rt) {
  if (!Matches<F>(e, record, rt)) return;
  auto* st = reinterpret_cast<TumblingState*>(record + rt.state_offset);
  const std::int64_t ws = WindowSpec::AlignDown(e.timestamp, rt.window_len);
  if (ws > st->window_start) {
    // New window: reset. Late events (ws < window_start) are folded into
    // the current window rather than resurrecting an expired one.
    st->window_start = ws;
    st->count = 0;
    st->sum = 0.0f;
    st->min = 0.0f;
    st->max = 0.0f;
  }
  st->count += 1;
  if constexpr (kHasMetric) {
    const float v = Extract<M>(e);
    st->sum += v;
    if (st->count == 1) {
      st->min = v;
      st->max = v;
    } else {
      st->min = std::min(st->min, v);
      st->max = std::max(st->max, v);
    }
  }
  WriteIndicators(record, rt, st->count, st->sum, st->min, st->max);
}

// ---------------------------- sliding windows ------------------------------

template <CallFilter F, EventMetric M, bool kHasMetric>
void UpdateSliding(const Event& e, std::uint8_t* record,
                   const GroupRuntime& rt) {
  if (!Matches<F>(e, record, rt)) return;
  auto* hdr = reinterpret_cast<SlidingHeader*>(record + rt.state_offset);
  auto* slots = reinterpret_cast<SlidingSlot*>(record + rt.state_offset +
                                               sizeof(SlidingHeader));
  const std::int64_t slot_len = rt.window_len;
  const std::uint32_t num_slots = rt.num_slots;
  const std::int64_t cur = WindowSpec::AlignDown(e.timestamp, slot_len);

  if (cur > hdr->last_slot_start) {
    // Ring advances: clear every slot between the previous head and the new
    // one (they correspond to pane intervals with no events).
    const std::int64_t steps = (cur - hdr->last_slot_start) / slot_len;
    if (steps >= num_slots) {
      std::memset(slots, 0, num_slots * sizeof(SlidingSlot));
    } else {
      std::int64_t s = hdr->last_slot_start;
      for (std::int64_t i = 0; i < steps; ++i) {
        s += slot_len;
        slots[static_cast<std::uint64_t>(s / slot_len) % num_slots] =
            SlidingSlot{};
      }
    }
    hdr->last_slot_start = cur;
  } else if (hdr->last_slot_start - cur >= rt.window_span) {
    // Late event older than the whole window: drop it.
    return;
  }

  SlidingSlot& slot =
      slots[static_cast<std::uint64_t>(cur / slot_len) % num_slots];
  slot.count += 1;
  if constexpr (kHasMetric) {
    const float v = Extract<M>(e);
    slot.sum += v;
    if (slot.count == 1) {
      slot.min = v;
      slot.max = v;
    } else {
      slot.min = std::min(slot.min, v);
      slot.max = std::max(slot.max, v);
    }
  }

  // Fold all live panes into the exposed indicators.
  std::int32_t count = 0;
  float sum = 0.0f, mn = 0.0f, mx = 0.0f;
  bool any = false;
  for (std::uint32_t i = 0; i < num_slots; ++i) {
    const SlidingSlot& s = slots[i];
    if (s.count == 0) continue;
    count += s.count;
    sum += s.sum;
    if (!any) {
      mn = s.min;
      mx = s.max;
      any = true;
    } else {
      mn = std::min(mn, s.min);
      mx = std::max(mx, s.max);
    }
  }
  WriteIndicators(record, rt, count, sum, mn, mx);
}

// --------------------------- event-based windows ---------------------------

template <CallFilter F, EventMetric M, bool kHasMetric>
void UpdateEventRing(const Event& e, std::uint8_t* record,
                     const GroupRuntime& rt) {
  if (!Matches<F>(e, record, rt)) return;
  auto* hdr = reinterpret_cast<EventRingHeader*>(record + rt.state_offset);
  const std::uint32_t n = rt.num_slots;

  if constexpr (!kHasMetric) {
    // Count of the last N matching events saturates at N.
    hdr->filled = std::min(hdr->filled + 1, n);
    StoreI32(record, rt.count_off, static_cast<std::int32_t>(hdr->filled));
    return;
  } else {
    auto* vals = reinterpret_cast<float*>(record + rt.state_offset +
                                          sizeof(EventRingHeader));
    vals[hdr->pos] = Extract<M>(e);
    hdr->pos = (hdr->pos + 1) % n;
    hdr->filled = std::min(hdr->filled + 1, n);

    float sum = 0.0f, mn = vals[0], mx = vals[0];
    for (std::uint32_t i = 0; i < hdr->filled; ++i) {
      sum += vals[i];
      mn = std::min(mn, vals[i]);
      mx = std::max(mx, vals[i]);
    }
    WriteIndicators(record, rt, static_cast<std::int32_t>(hdr->filled), sum,
                    mn, mx);
  }
}

// ------------------------- nested-switch dispatch --------------------------

template <CallFilter F, EventMetric M, bool kHasMetric>
GroupUpdateFn SelectWindow(WindowKind kind) {
  switch (kind) {
    case WindowKind::kTumbling:
      return &UpdateTumbling<F, M, kHasMetric>;
    case WindowKind::kSliding:
      return &UpdateSliding<F, M, kHasMetric>;
    case WindowKind::kEventBased:
      return &UpdateEventRing<F, M, kHasMetric>;
  }
  return nullptr;
}

template <CallFilter F>
GroupUpdateFn SelectMetric(const AttributeGroupSpec& spec) {
  if (!spec.has_metric) {
    return SelectWindow<F, EventMetric::kDuration, false>(spec.window.kind);
  }
  switch (spec.metric) {
    case EventMetric::kDuration:
      return SelectWindow<F, EventMetric::kDuration, true>(spec.window.kind);
    case EventMetric::kCost:
      return SelectWindow<F, EventMetric::kCost, true>(spec.window.kind);
    case EventMetric::kDataVolume:
      return SelectWindow<F, EventMetric::kDataVolume, true>(
          spec.window.kind);
  }
  return nullptr;
}

GroupUpdateFn CompileFn(const AttributeGroupSpec& spec) {
  switch (spec.filter) {
    case CallFilter::kAny:
      return SelectMetric<CallFilter::kAny>(spec);
    case CallFilter::kLocal:
      return SelectMetric<CallFilter::kLocal>(spec);
    case CallFilter::kLongDistance:
      return SelectMetric<CallFilter::kLongDistance>(spec);
    case CallFilter::kInternational:
      return SelectMetric<CallFilter::kInternational>(spec);
    case CallFilter::kRoaming:
      return SelectMetric<CallFilter::kRoaming>(spec);
    case CallFilter::kPreferred:
      return SelectMetric<CallFilter::kPreferred>(spec);
  }
  return nullptr;
}

}  // namespace

UpdateProgram::UpdateProgram(const Schema& schema,
                             std::uint16_t preferred_attr) {
  AIM_CHECK_MSG(schema.finalized(), "schema must be finalized");
  const std::uint32_t preferred_off =
      preferred_attr == kInvalidAttr
          ? GroupRuntime::kNoColumn
          : schema.attribute(preferred_attr).row_offset;

  groups_.reserve(schema.num_groups());
  for (const AttributeGroupSpec& spec : schema.groups()) {
    GroupRuntime rt;
    rt.state_offset = spec.state_offset;
    auto off = [&](std::uint16_t attr) {
      return attr == kInvalidAttr ? GroupRuntime::kNoColumn
                                  : schema.attribute(attr).row_offset;
    };
    rt.count_off = off(spec.count_attr);
    rt.sum_off = off(spec.sum_attr);
    rt.min_off = off(spec.min_attr);
    rt.max_off = off(spec.max_attr);
    rt.avg_off = off(spec.avg_attr);
    rt.num_slots = spec.window.num_slots;
    rt.window_span = spec.window.length_ms;
    rt.window_len = spec.window.kind == WindowKind::kSliding
                        ? spec.window.SlotLengthMs()
                        : spec.window.length_ms;
    rt.preferred_off = preferred_off;
    rt.metric = spec.metric;

    GroupUpdateFn fn = CompileFn(spec);
    AIM_CHECK(fn != nullptr);
    groups_.push_back(CompiledGroup{fn, rt});
  }
}

}  // namespace aim
