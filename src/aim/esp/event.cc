#include "aim/esp/event.h"

#include <cstdio>

namespace aim {

std::string Event::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "Event{caller=%llu callee=%llu ts=%lld dur=%us cost=%.2f "
                "data=%.1fMB%s%s%s}",
                static_cast<unsigned long long>(caller),
                static_cast<unsigned long long>(callee),
                static_cast<long long>(timestamp), duration,
                static_cast<double>(cost), static_cast<double>(data_mb),
                long_distance() ? " LD" : " local",
                international() ? " intl" : "", roaming() ? " roam" : "");
  return std::string(buf);
}

}  // namespace aim
