#ifndef AIM_ESP_FIRING_POLICY_H_
#define AIM_ESP_FIRING_POLICY_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "aim/common/types.h"
#include "aim/esp/rule.h"

namespace aim {

/// Tracks per-(rule, entity) firing counts so that a rule fires at most
/// `policy.max_firings` times per tumbling `policy.window_ms` window for the
/// same entity (paper §2.2). State is only kept for (rule, entity) pairs
/// that actually fired, so memory stays proportional to firing volume, not
/// to #rules x #entities.
///
/// Not thread-safe; each ESP thread owns one tracker (entities are sticky to
/// one ESP thread, so per-thread state is exact).
class FiringPolicyTracker {
 public:
  /// Filters `matched` (rule ids from the evaluator) in place: rules whose
  /// policy suppresses this firing are removed; allowed firings are counted.
  /// `rules` must be the same vector the evaluator used; `now` is the event
  /// timestamp.
  void Filter(const std::vector<Rule>& rules, EntityId entity, Timestamp now,
              std::vector<std::uint32_t>* matched) {
    std::size_t out = 0;
    for (std::size_t i = 0; i < matched->size(); ++i) {
      const std::uint32_t rule_id = (*matched)[i];
      const Rule* rule = FindRule(rules, rule_id);
      if (rule == nullptr || Allow(*rule, entity, now)) {
        (*matched)[out++] = rule_id;
      }
    }
    matched->resize(out);
  }

  /// Decides a single firing. Public for unit tests.
  bool Allow(const Rule& rule, EntityId entity, Timestamp now) {
    if (rule.policy.max_firings == 0) return true;  // unlimited
    const Timestamp window_start =
        WindowSpec::AlignDown(now, rule.policy.window_ms);
    State& st = state_[Key(rule.id, entity)];
    if (st.window_start != window_start) {
      st.window_start = window_start;
      st.count = 0;
    }
    if (st.count >= rule.policy.max_firings) return false;
    st.count++;
    return true;
  }

  std::size_t tracked_pairs() const { return state_.size(); }

  /// Drops state for windows ending before `horizon` (periodic GC).
  void Expire(Timestamp horizon) {
    for (auto it = state_.begin(); it != state_.end();) {
      if (it->second.window_start < horizon) {
        it = state_.erase(it);
      } else {
        ++it;
      }
    }
  }

 private:
  struct State {
    Timestamp window_start = -1;
    std::uint32_t count = 0;
  };

  static std::uint64_t Key(std::uint32_t rule_id, EntityId entity) {
    // Entity ids in practice fit 40 bits; mix to be safe against collisions
    // between (rule, entity) pairs.
    return (static_cast<std::uint64_t>(rule_id) << 40) ^ entity;
  }

  static const Rule* FindRule(const std::vector<Rule>& rules,
                              std::uint32_t rule_id) {
    // Rule ids are usually dense and equal to the position; fall back to a
    // linear scan otherwise.
    if (rule_id < rules.size() && rules[rule_id].id == rule_id) {
      return &rules[rule_id];
    }
    for (const Rule& r : rules) {
      if (r.id == rule_id) return &r;
    }
    return nullptr;
  }

  std::unordered_map<std::uint64_t, State> state_;
};

}  // namespace aim

#endif  // AIM_ESP_FIRING_POLICY_H_
