#ifndef AIM_ESP_RULE_INDEX_H_
#define AIM_ESP_RULE_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "aim/esp/rule.h"

namespace aim {

/// Predicate-counting rule index after Fabre et al. (paper §4.4, [11]).
///
/// Build time: atomic predicates are deduplicated and grouped per dimension
/// (one dimension per distinct record attribute / event field). Within a
/// dimension, inequality predicates are kept in sorted threshold arrays so
/// that all predicates satisfied by a value v form a contiguous range found
/// by one binary search; equality predicates live in a hash map.
///
/// Match time: for each dimension referenced by any rule, the value is
/// extracted once and the satisfied predicate ranges are walked, bumping a
/// per-conjunct counter. A conjunct whose counter reaches its predicate
/// count fires; the first firing conjunct of a rule matches the rule.
/// != predicates are not indexed; they are verified residually when a
/// conjunct's indexed predicates are all satisfied.
///
/// The paper's finding — reproduced by bench_rule_index — is that this only
/// pays off beyond roughly a thousand rules; below that, Algorithm 2 with
/// early abort wins.
class RuleIndex {
 public:
  /// `rules` must outlive the index. Conjuncts with zero indexable
  /// predicates (only != predicates) are always candidate conjuncts.
  explicit RuleIndex(const std::vector<Rule>* rules);

  /// Appends ids of all matched rules to `matched` (cleared first).
  /// Thread-compatible via an external per-thread Scratch.
  struct Scratch {
    std::vector<std::uint32_t> conjunct_count;
    std::vector<std::uint32_t> conjunct_epoch;
    std::vector<std::uint32_t> rule_epoch;
    std::uint32_t epoch = 0;
  };

  void Evaluate(const Event& event, const ConstRecordView& record,
                Scratch* scratch, std::vector<std::uint32_t>* matched) const;

  std::size_t num_dimensions() const { return dimensions_.size(); }
  std::size_t num_conjuncts() const { return conjuncts_.size(); }

 private:
  /// Occurrence: a (deduplicated) atomic predicate appearing in a conjunct.
  /// Stored as flat lists; a threshold entry references its occurrence span.
  struct ThresholdEntry {
    double constant;
    std::uint32_t occ_begin;  // [occ_begin, occ_end) into occurrences_
    std::uint32_t occ_end;
  };

  struct Dimension {
    Predicate::Lhs lhs;
    std::uint16_t attr = 0;
    EventFieldId field = EventFieldId::kDuration;

    // Sorted ascending by constant. Satisfied sets:
    //   lt: v < c  -> suffix (c > v)      le: v <= c -> suffix (c >= v)
    //   gt: v > c  -> prefix (c < v)      ge: v >= c -> prefix (c <= v)
    std::vector<ThresholdEntry> lt, le, gt, ge;
    // Equality predicates, probed by exact value.
    std::unordered_map<double, std::pair<std::uint32_t, std::uint32_t>> eq;
  };

  struct ConjunctInfo {
    std::uint32_t rule_id;
    std::uint32_t rule_pos;       // index into rules_
    std::uint32_t indexed_preds;  // counter target
    std::vector<Predicate> residual;  // != predicates, verified directly
  };

  double DimensionValue(const Dimension& d, const Event& e,
                        const ConstRecordView& r) const;

  void BumpRange(const std::vector<ThresholdEntry>& entries,
                 std::size_t begin, std::size_t end, const Event& e,
                 const ConstRecordView& r, Scratch* scratch,
                 std::vector<std::uint32_t>* matched) const;

  void BumpOccurrences(std::uint32_t occ_begin, std::uint32_t occ_end,
                       const Event& e, const ConstRecordView& r,
                       Scratch* scratch,
                       std::vector<std::uint32_t>* matched) const;

  const std::vector<Rule>* rules_;
  std::vector<Dimension> dimensions_;
  std::vector<ConjunctInfo> conjuncts_;
  std::vector<std::uint32_t> occurrences_;  // conjunct ids
  // Conjuncts with no indexed predicates: always candidates.
  std::vector<std::uint32_t> unindexed_conjuncts_;
};

}  // namespace aim

#endif  // AIM_ESP_RULE_INDEX_H_
