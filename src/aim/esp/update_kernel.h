#ifndef AIM_ESP_UPDATE_KERNEL_H_
#define AIM_ESP_UPDATE_KERNEL_H_

#include <cstdint>
#include <vector>

#include "aim/esp/event.h"
#include "aim/schema/schema.h"

namespace aim {

/// Precomputed per-group constants handed to the compiled update function.
/// Everything the function touches is resolved to raw byte offsets so the
/// per-event path does no schema lookups.
struct GroupRuntime {
  std::uint32_t state_offset = 0;

  static constexpr std::uint32_t kNoColumn = 0xffffffffu;
  std::uint32_t count_off = kNoColumn;  // row offset of count indicator
  std::uint32_t sum_off = kNoColumn;
  std::uint32_t min_off = kNoColumn;
  std::uint32_t max_off = kNoColumn;
  std::uint32_t avg_off = kNoColumn;

  std::int64_t window_len = 0;  // tumbling: period; sliding: slot length
  std::int64_t window_span = 0;  // sliding: total span (late-event cutoff)
  std::uint32_t num_slots = 1;

  // Row offset of the entity's preferred-number attribute; only read by
  // kPreferred-filtered groups.
  std::uint32_t preferred_off = kNoColumn;

  EventMetric metric = EventMetric::kDuration;
};

/// Signature of a compiled attribute-group update function (paper §4.3):
/// applies one event to one group's state inside `record` and refreshes the
/// group's exposed indicator columns. Selected once per group from templated
/// building blocks (filter x metric x window), so the per-event call is a
/// single indirect call with no data-dependent branches beyond the filter
/// test itself.
using GroupUpdateFn = void (*)(const Event& event, std::uint8_t* record,
                               const GroupRuntime& rt);

/// The compiled update program for a schema: one (fn, runtime) pair per
/// attribute group. Thread-compatible: Apply() may run concurrently on
/// different records, never on the same record (the single-writer-per-entity
/// discipline of the ESP layer guarantees this).
class UpdateProgram {
 public:
  /// `preferred_attr` is the raw attribute holding the entity's preferred
  /// number (kInvalidAttr if the schema has none; kPreferred groups then
  /// never match). Schema must be finalized.
  UpdateProgram(const Schema& schema, std::uint16_t preferred_attr);

  /// Applies `event` to every attribute group of `record` (Algorithm 1's
  /// loop body, steps 4-5).
  void Apply(const Event& event, std::uint8_t* record) const {
    for (const CompiledGroup& g : groups_) g.fn(event, record, g.rt);
  }

  /// Applies only group `group_id` (unit tests).
  void ApplyGroup(std::uint16_t group_id, const Event& event,
                  std::uint8_t* record) const {
    const CompiledGroup& g = groups_[group_id];
    g.fn(event, record, g.rt);
  }

  std::size_t num_groups() const { return groups_.size(); }

 private:
  struct CompiledGroup {
    GroupUpdateFn fn;
    GroupRuntime rt;
  };

  std::vector<CompiledGroup> groups_;
};

}  // namespace aim

#endif  // AIM_ESP_UPDATE_KERNEL_H_
