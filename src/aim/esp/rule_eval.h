#ifndef AIM_ESP_RULE_EVAL_H_
#define AIM_ESP_RULE_EVAL_H_

#include <cstdint>
#include <vector>

#include "aim/esp/rule.h"

namespace aim {

/// Straight-forward DNF evaluation over the rule set (paper Algorithm 2),
/// with early abort (predicate false => next conjunct) and early success
/// (conjunct true => rule matched, next rule). The paper found this beats a
/// rule index for small rule sets (< ~1000 rules, §4.4).
class RuleEvaluator {
 public:
  /// Does not take ownership; `rules` must outlive the evaluator.
  explicit RuleEvaluator(const std::vector<Rule>* rules) : rules_(rules) {}

  /// Appends the ids of all matched rules to `matched` (cleared first).
  void Evaluate(const Event& event, const ConstRecordView& record,
                std::vector<std::uint32_t>* matched) const {
    matched->clear();
    for (const Rule& rule : *rules_) {
      for (const Conjunct& conjunct : rule.conjuncts) {
        bool matching = true;
        for (const Predicate& p : conjunct.predicates) {
          if (!p.Evaluate(event, record)) {
            matching = false;
            break;  // early abort: conjunct is false
          }
        }
        if (matching) {
          matched->push_back(rule.id);
          break;  // early success: rule matched
        }
      }
    }
  }

  const std::vector<Rule>& rules() const { return *rules_; }

 private:
  const std::vector<Rule>* rules_;
};

}  // namespace aim

#endif  // AIM_ESP_RULE_EVAL_H_
