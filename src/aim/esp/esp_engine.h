#ifndef AIM_ESP_ESP_ENGINE_H_
#define AIM_ESP_ESP_ENGINE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "aim/common/status.h"
#include "aim/obs/registry.h"
#include "aim/esp/event.h"
#include "aim/esp/event_archive.h"
#include "aim/esp/firing_policy.h"
#include "aim/esp/rule.h"
#include "aim/esp/rule_eval.h"
#include "aim/esp/rule_index.h"
#include "aim/esp/update_kernel.h"
#include "aim/storage/delta_main.h"

namespace aim {

/// Well-known raw attributes the ESP engine maintains besides the
/// indicators. Use kInvalidAttr for attributes a schema does not have.
struct SystemAttrs {
  std::uint16_t entity_id = kInvalidAttr;         // u64
  std::uint16_t last_event_ts = kInvalidAttr;     // i64
  std::uint16_t preferred_number = kInvalidAttr;  // u64 (kPreferred filter)
};

/// Event Stream Processing engine for one store partition (paper §2.2).
/// Per event it runs the single-row transaction of Algorithm 1 — Get,
/// update every attribute group via the compiled update program, Put with
/// conditional write, retry on conflict — and then evaluates the Business
/// Rules against the updated record (Algorithm 2, or the rule index when
/// enabled), applying firing policies.
///
/// One engine instance per ESP thread; not thread-safe (the paper dedicates
/// each entity to exactly one ESP thread, §4.6).
class EspEngine {
 public:
  struct Options {
    int max_txn_retries = 16;
    bool use_rule_index = false;
    /// Auto-create a fresh record when an event references an unknown
    /// entity (the benchmark pre-loads entities; this is the fallback).
    bool create_missing_entities = true;
    /// Keep an event archive (production-AIM feature, paper §7/footnote 1):
    /// every processed event is retained for `archive_retention_ms`,
    /// enabling exact sliding-window rebuilds and recovery-by-replay.
    bool keep_event_archive = false;
    Timestamp archive_retention_ms = kMillisPerWeek;
    /// Registry the engine's counters live in (one source of truth for
    /// monitoring — see docs/OBSERVABILITY.md). When null the engine owns
    /// a private registry, so stats() always works. `metric_labels`
    /// distinguishes engines sharing a registry (e.g. node/partition).
    MetricsRegistry* metrics = nullptr;
    Labels metric_labels;
    /// Group-prefetch lookahead for ProcessBatch: while event i is being
    /// applied, the hash-index slots for event i+prefetch_distance and the
    /// record bytes for event i+1 are prefetched (two-stage pipeline). 0
    /// disables prefetching (scalar batch). Pure hints — batch results are
    /// bit-identical to sequential ProcessEvent calls either way.
    int prefetch_distance = 8;
    /// Cap on per-record prefetch hints along the main (PAX) path, where
    /// every attribute lives on its own column line; the full 546-attribute
    /// schema would otherwise flood the prefetch queue.
    std::uint32_t prefetch_main_lines = 16;
  };

  /// Per-event results of ProcessBatch. Reused across batches: Reset keeps
  /// the vectors' capacity, so steady-state batches allocate nothing.
  struct BatchResult {
    std::vector<Status> statuses;
    std::vector<std::vector<std::uint32_t>> fired;

    void Reset(std::size_t n) {
      statuses.assign(n, Status::OK());
      if (fired.size() < n) fired.resize(n);
      for (std::size_t i = 0; i < n; ++i) fired[i].clear();
    }
  };

  /// Monitoring snapshot of the engine's registry-backed counters. The
  /// counters are atomics updated only by the owning ESP thread; any
  /// thread may take a snapshot concurrently (values may be mutually torn
  /// across fields — monitoring semantics).
  struct Stats {
    std::uint64_t events_processed = 0;
    std::uint64_t txn_conflicts = 0;
    std::uint64_t rules_fired = 0;
    std::uint64_t rules_suppressed = 0;  // by firing policy
    std::uint64_t entities_created = 0;
  };

  /// All pointers must outlive the engine. `rules` may be empty.
  EspEngine(const Schema* schema, DeltaMainStore* store,
            const std::vector<Rule>* rules, const SystemAttrs& sys,
            const Options& options);

  /// Processes one event end-to-end. Appends ids of fired rules (after
  /// policy filtering) to `fired` (cleared first; may be nullptr).
  Status ProcessEvent(const Event& event, std::vector<std::uint32_t>* fired);

  /// Processes `events` in order with software group-prefetching: the
  /// dependent probe chain of event i+prefetch_distance (delta DenseMap
  /// slots, main ColumnMap index) and the record bytes of event i+1 are
  /// prefetched while event i runs its single-row transaction and rule
  /// evaluation. Per-event semantics, ordering and conflict accounting are
  /// exactly those of N sequential ProcessEvent calls (single-writer
  /// discipline unchanged; prefetches are pure hints). Results land in
  /// `result` (Reset first; one status + fired-rule set per event).
  void ProcessBatch(std::span<const Event> events, BatchResult* result);

  Stats stats() const;
  const UpdateProgram& program() const { return program_; }

  /// The engine's live counters (registry-owned; valid for the registry's
  /// lifetime). Exposed so node- and cluster-level monitors can aggregate
  /// without re-deriving metric names.
  const Counter* metric_events() const { return events_; }
  const Counter* metric_txn_conflicts() const { return txn_conflicts_; }
  const Counter* metric_rules_fired() const { return rules_fired_; }

  /// Switches between indexed and straight-forward rule evaluation.
  void set_use_rule_index(bool use) { options_.use_rule_index = use; }

  /// The event archive (null unless Options::keep_event_archive).
  const EventArchive* archive() const { return archive_.get(); }

 private:
  void InitFreshRecord(EntityId entity, const Event& event);

  /// The shared per-event body of ProcessEvent/ProcessBatch (checkpoint,
  /// single-row transaction, rule evaluation).
  Status ProcessOne(const Event& event, std::vector<std::uint32_t>* fired);

  const Schema* schema_;
  DeltaMainStore* store_;
  const std::vector<Rule>* rules_;
  SystemAttrs sys_;
  Options options_;

  UpdateProgram program_;
  RuleEvaluator evaluator_;
  std::unique_ptr<EventArchive> archive_;
  std::unique_ptr<RuleIndex> rule_index_;
  RuleIndex::Scratch index_scratch_;
  FiringPolicyTracker policy_tracker_;

  std::vector<std::uint8_t> row_buf_;
  std::vector<std::uint32_t> matched_buf_;

  // Registry-backed counters (owned by options_.metrics or own_metrics_).
  std::unique_ptr<MetricsRegistry> own_metrics_;
  Counter* events_;
  Counter* txn_conflicts_;
  Counter* rules_fired_;
  Counter* rules_suppressed_;
  Counter* entities_created_;
};

}  // namespace aim

#endif  // AIM_ESP_ESP_ENGINE_H_
