#include "aim/esp/event_archive.h"

#include <algorithm>
#include <cstring>

#include "aim/schema/record.h"

namespace aim {

void EventArchive::Append(const Event& event) {
  std::deque<Event>& ring = per_entity_[event.caller];
  ring.push_back(event);
  ++total_events_;
  newest_ts_ = std::max(newest_ts_, event.timestamp);

  // Amortized trimming: drop events past the retention horizon or over the
  // per-entity cap.
  const Timestamp horizon = newest_ts_ - options_.retention_ms;
  while (!ring.empty() && (ring.front().timestamp < horizon ||
                           ring.size() > options_.max_events_per_entity)) {
    ring.pop_front();
    --total_events_;
  }
}

namespace {

bool EventMatchesFilter(CallFilter filter, const Event& e,
                        std::uint64_t preferred) {
  switch (filter) {
    case CallFilter::kAny:
      return true;
    case CallFilter::kLocal:
      return !e.long_distance();
    case CallFilter::kLongDistance:
      return e.long_distance();
    case CallFilter::kInternational:
      return e.international();
    case CallFilter::kRoaming:
      return e.roaming();
    case CallFilter::kPreferred:
      return preferred != 0 && e.callee == preferred;
  }
  return false;
}

void StoreIndicator(const Schema& schema, std::uint16_t attr,
                    std::uint8_t* record, float v) {
  if (attr == kInvalidAttr) return;
  const Attribute& a = schema.attribute(attr);
  std::memcpy(record + a.row_offset, &v, sizeof(float));
}

}  // namespace

Status RebuildSlidingFromArchive(const Schema& schema,
                                 std::uint16_t group_id,
                                 const EventArchive& archive,
                                 EntityId entity, Timestamp now,
                                 std::uint8_t* record) {
  if (group_id >= schema.num_groups()) {
    return Status::InvalidArgument("group out of range");
  }
  const AttributeGroupSpec& g = schema.group(group_id);
  if (g.window.kind != WindowKind::kSliding) {
    return Status::InvalidArgument("not a sliding-window group");
  }

  std::uint64_t preferred = 0;
  const std::uint16_t pref_attr = schema.FindAttribute("preferred_number");
  if (pref_attr != kInvalidAttr) {
    std::memcpy(&preferred,
                record + schema.attribute(pref_attr).row_offset, 8);
  }

  // Exact window: (now - length, now].
  std::int32_t count = 0;
  float sum = 0, mn = 0, mx = 0;
  archive.ForEachInRange(
      entity, now - g.window.length_ms + 1, now + 1, [&](const Event& e) {
        if (!EventMatchesFilter(g.filter, e, preferred)) return;
        const float v = g.has_metric ? e.Metric(g.metric) : 0.0f;
        if (count == 0) {
          mn = v;
          mx = v;
        } else {
          mn = std::min(mn, v);
          mx = std::max(mx, v);
        }
        sum += v;
        ++count;
      });

  // Write the exposed indicators exactly like the update kernel does.
  if (g.count_attr != kInvalidAttr) {
    const Attribute& a = schema.attribute(g.count_attr);
    std::memcpy(record + a.row_offset, &count, sizeof(count));
  }
  if (g.has_metric) {
    const bool empty = count == 0;
    StoreIndicator(schema, g.sum_attr, record, sum);
    StoreIndicator(schema, g.min_attr, record, empty ? 0.0f : mn);
    StoreIndicator(schema, g.max_attr, record, empty ? 0.0f : mx);
    StoreIndicator(schema, g.avg_attr, record,
                   empty ? 0.0f : sum / static_cast<float>(count));
  }
  return Status::OK();
}

}  // namespace aim
