#ifndef AIM_ESP_RULE_H_
#define AIM_ESP_RULE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "aim/common/types.h"
#include "aim/esp/event.h"
#include "aim/schema/record.h"
#include "aim/schema/schema.h"

namespace aim {

/// Comparison operators for rule predicates.
enum class CmpOp : std::uint8_t {
  kLt = 0,
  kLe = 1,
  kGt = 2,
  kGe = 3,
  kEq = 4,
  kNe = 5,
};

const char* CmpOpName(CmpOp op);

/// Scalar event fields a predicate can reference (the paper's rules test
/// both the updated Entity Record and the event itself, e.g. rule 1 uses
/// "event.duration > 300 secs").
enum class EventFieldId : std::uint8_t {
  kDuration = 0,
  kCost = 1,
  kDataVolume = 2,
  kLongDistance = 3,   // 0/1
  kInternational = 4,  // 0/1
  kRoaming = 5,        // 0/1
};

inline constexpr int kNumEventFields = 6;
const char* EventFieldName(EventFieldId f);

/// Atomic predicate: <lhs> <op> <constant>, where lhs is either an Analytics
/// Matrix attribute of the (already updated) Entity Record or a field of the
/// triggering event. Comparisons happen in the double domain, which covers
/// every column type the matrix supports.
struct Predicate {
  enum class Lhs : std::uint8_t { kRecordAttr = 0, kEventField = 1 };

  Lhs lhs = Lhs::kRecordAttr;
  std::uint16_t attr = 0;  // attribute id (lhs == kRecordAttr)
  EventFieldId field = EventFieldId::kDuration;  // (lhs == kEventField)
  CmpOp op = CmpOp::kGt;
  double constant = 0.0;

  static Predicate OnAttr(std::uint16_t attr, CmpOp op, double constant) {
    Predicate p;
    p.lhs = Lhs::kRecordAttr;
    p.attr = attr;
    p.op = op;
    p.constant = constant;
    return p;
  }

  static Predicate OnEvent(EventFieldId field, CmpOp op, double constant) {
    Predicate p;
    p.lhs = Lhs::kEventField;
    p.field = field;
    p.op = op;
    p.constant = constant;
    return p;
  }

  double LhsValue(const Event& e, const ConstRecordView& r) const;
  bool Evaluate(const Event& e, const ConstRecordView& r) const;

  std::string ToString(const Schema* schema) const;
};

bool EvaluateCmp(CmpOp op, double lhs, double rhs);

/// A conjunct: AND of predicates.
struct Conjunct {
  std::vector<Predicate> predicates;
};

/// Firing policy (paper §2.2): bounds how many times a rule may trigger per
/// entity within a tumbling time window. max_firings == 0 means unlimited.
struct FiringPolicy {
  std::uint32_t max_firings = 0;
  Timestamp window_ms = kMillisPerDay;

  static FiringPolicy Unlimited() { return {0, kMillisPerDay}; }
  static FiringPolicy PerWindow(std::uint32_t max, Timestamp window_ms) {
    return {max, window_ms};
  }
};

/// Business rule in disjunctive normal form: OR of conjuncts. `action` is an
/// opaque label delivered to the client when the rule fires (the production
/// system would send a campaign message / alert).
struct Rule {
  std::uint32_t id = 0;
  std::string name;
  std::string action;
  std::vector<Conjunct> conjuncts;
  FiringPolicy policy = FiringPolicy::Unlimited();

  std::string ToString(const Schema* schema) const;
};

/// Fluent rule builder used by tests, examples and the workload generator.
///
///   Rule r = RuleBuilder(1, "heavy_caller")
///                .Where(attr_calls_today, CmpOp::kGt, 20)
///                .And(attr_cost_today, CmpOp::kGt, 100)
///                .AndEvent(EventFieldId::kDuration, CmpOp::kGt, 300)
///                .Or()                   // start a new conjunct
///                .Where(...)...
///                .Build();
class RuleBuilder {
 public:
  RuleBuilder(std::uint32_t id, std::string name);

  RuleBuilder& Where(std::uint16_t attr, CmpOp op, double constant);
  RuleBuilder& And(std::uint16_t attr, CmpOp op, double constant);
  RuleBuilder& WhereEvent(EventFieldId field, CmpOp op, double constant);
  RuleBuilder& AndEvent(EventFieldId field, CmpOp op, double constant);
  RuleBuilder& Or();
  RuleBuilder& WithAction(std::string action);
  RuleBuilder& WithPolicy(FiringPolicy policy);

  Rule Build();

 private:
  Rule rule_;
  Conjunct current_;
};

}  // namespace aim

#endif  // AIM_ESP_RULE_H_
