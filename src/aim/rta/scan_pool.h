#ifndef AIM_RTA_SCAN_POOL_H_
#define AIM_RTA_SCAN_POOL_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "aim/obs/registry.h"
#include "aim/rta/compiled_query.h"
#include "aim/rta/scan_task_board.h"

namespace aim {

/// Node-wide persistent scan executor (the task-queue model of paper §3.2):
/// a fixed set of worker threads, started once, onto which any number of
/// coordinators — typically the per-partition RTA threads — submit scan
/// *jobs*. A job decomposes one partition's scan step into bucket-range
/// morsels; workers and the submitting coordinator pull morsels from the
/// ScanTaskBoard (own deque first, then steal), each executing against its
/// own clone of the compiled batch, and the coordinator merges the
/// per-executor PartialResults when the last morsel completes. No threads
/// are created per scan cycle, and one pool load-balances all partitions:
/// a skewed partition's morsels spill onto whichever workers are idle.
///
/// The merge step stays with the coordinator (the partition's RTA thread):
/// delta-swap and checkpoint gating are per-partition protocols keyed to
/// that thread's cycle position, and merging mutates the main in place —
/// exactly the one-writer role the ColumnMap scan contract gives the
/// partition owner. The pool parallelizes only the read-only scan side.
///
/// Thread-compatibility: ScanPartition may be called concurrently from any
/// number of coordinator threads (each with its own job); Start/Stop are
/// not concurrent with ScanPartition.
class ScanPool {
 public:
  struct Options {
    /// Worker threads to start. 0 is valid: jobs still work, executed
    /// entirely by the submitting coordinator (the single-threaded path,
    /// minus thread churn).
    std::size_t num_threads = 0;
    /// Registry for morsel/steal counters and per-worker scan histograms;
    /// null disables instrumentation.
    MetricsRegistry* metrics = nullptr;
    /// "node" label value on this pool's metric series.
    std::string node_label = "local";
  };

  /// Per-job knobs.
  struct ScanOptions {
    /// Buckets per morsel. Small enough to steal-balance, large enough to
    /// amortize task acquisition (DESIGN.md "Scan parallelism").
    std::uint32_t morsel_buckets = 8;
    /// When false the coordinator only waits (test hook proving workers
    /// can carry a whole scan). Forced true when the pool has no workers.
    bool coordinator_participates = true;
  };

  /// What happened to one job — the cooperative-execution evidence.
  struct ScanStats {
    std::uint32_t morsels = 0;
    std::uint32_t executed_by_coordinator = 0;
    std::uint32_t executed_by_workers = 0;
    /// Morsel count per executor: [0, num_threads) are pool workers,
    /// [num_threads] is the coordinator (the §3.2 load-balance evidence).
    std::vector<std::uint32_t> per_executor;
  };

  explicit ScanPool(const Options& options);
  ~ScanPool();

  ScanPool(const ScanPool&) = delete;
  ScanPool& operator=(const ScanPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  /// Executes `prototype` (a compiled query batch with freshly-reset
  /// execution state) over every bucket of `main`, cooperatively with the
  /// pool workers. Returns one merged PartialResult per query in
  /// `*results` (sized/overwritten). The caller is the job's coordinator
  /// and blocks until its job is fully executed; `main` and `prototype`
  /// must stay valid and unmodified for the duration.
  ScanStats ScanPartition(const ColumnMap& main,
                          const std::vector<CompiledQuery>& prototype,
                          const ScanOptions& options,
                          std::vector<PartialResult>* results);

  /// Total steals across the pool's lifetime (0 without a registry — the
  /// counter lives in the registry; tests read it from there or here).
  std::uint64_t steals() const;
  std::uint64_t morsels() const;

  /// Process-wide shared pool with hardware_concurrency()-1 workers, for
  /// callers without a node-owned pool (ParallelSharedScan's default).
  /// Created on first use, never destroyed (workers park on the board's
  /// condvar when idle).
  static ScanPool* Shared();

 private:
  using Board = ScanTaskBoard<>;

  struct ExecutorContext;
  struct Job;

  void WorkerLoop(std::size_t worker);
  static void ExecuteMorsel(Job* job, std::uint32_t seq,
                            ExecutorContext* ctx);

  Board board_;
  std::vector<std::thread> workers_;

  // Lifetime totals mirrored into the registry counters (null-safe).
  std::atomic<std::uint64_t> morsels_{0};
  std::atomic<std::uint64_t> steals_{0};

  Counter* morsels_total_ = nullptr;        // aim_scan_morsels_total
  Counter* steals_total_ = nullptr;         // aim_scan_steals_total
  std::vector<AtomicHistogram*> worker_scan_micros_;  // per worker
};

}  // namespace aim

#endif  // AIM_RTA_SCAN_POOL_H_
