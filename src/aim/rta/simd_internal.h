#ifndef AIM_RTA_SIMD_INTERNAL_H_
#define AIM_RTA_SIMD_INTERNAL_H_

// Shared internals of the runtime-dispatched scan kernels (simd.h):
//   * the scalar reference templates every vector tier reuses for tails;
//   * the per-tier kernel tables the dispatchers index.
//
// The vector tiers live in their own translation units (simd_avx2.cc,
// simd_avx512.cc) compiled with the tier's ISA flags regardless of the
// build's -march, so the binary always carries every tier and picks one at
// runtime by CPUID (see simd.cc). A tier compiled out (non-x86 target,
// AIM_SIMD_DISABLE_TIERS under TSan) exposes a null table and dispatch
// falls through to scalar.

#include <cstdint>

#include "aim/rta/simd.h"

namespace aim {
namespace simd {
namespace internal {

// ---------------------------------------------------------------------------
// Scalar reference kernels. Also the semantics contract for the vector
// tiers: min/max skip NaN (every comparison against NaN is false), the sum
// propagates NaN, and an all-false mask leaves min/max untouched.
// ---------------------------------------------------------------------------

template <typename T>
inline bool CmpScalar(CmpOp op, T lhs, T rhs) {
  switch (op) {
    case CmpOp::kLt:
      return lhs < rhs;
    case CmpOp::kLe:
      return lhs <= rhs;
    case CmpOp::kGt:
      return lhs > rhs;
    case CmpOp::kGe:
      return lhs >= rhs;
    case CmpOp::kEq:
      return lhs == rhs;
    case CmpOp::kNe:
      return lhs != rhs;
  }
  return false;
}

template <typename T>
void FilterScalarT(const T* col, std::uint32_t count, CmpOp op, T constant,
                   std::uint8_t* mask, bool combine_and) {
  if (combine_and) {
    for (std::uint32_t i = 0; i < count; ++i) {
      mask[i] &= CmpScalar(op, col[i], constant) ? 0xffu : 0u;
    }
  } else {
    for (std::uint32_t i = 0; i < count; ++i) {
      mask[i] = CmpScalar(op, col[i], constant) ? 0xffu : 0u;
    }
  }
}

template <typename T>
void MaskedAggScalarT(const T* col, const std::uint8_t* mask,
                      std::uint32_t count, AggAccum* acc) {
  double sum = 0.0;
  double mn = acc->min;
  double mx = acc->max;
  std::int64_t n = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    if (mask[i] == 0) continue;
    const double v = static_cast<double>(col[i]);
    sum += v;
    if (v < mn) mn = v;
    if (v > mx) mx = v;
    ++n;
  }
  acc->sum += sum;
  acc->min = mn;
  acc->max = mx;
  acc->count += n;
}

template <typename T>
T ConstantAs(const Value& v);

template <>
inline std::int32_t ConstantAs<std::int32_t>(const Value& v) {
  return static_cast<std::int32_t>(v.AsInt64());
}
template <>
inline std::uint32_t ConstantAs<std::uint32_t>(const Value& v) {
  return static_cast<std::uint32_t>(v.AsInt64());
}
template <>
inline std::int64_t ConstantAs<std::int64_t>(const Value& v) {
  return v.AsInt64();
}
template <>
inline std::uint64_t ConstantAs<std::uint64_t>(const Value& v) {
  return static_cast<std::uint64_t>(v.AsInt64());
}
template <>
inline float ConstantAs<float>(const Value& v) {
  return static_cast<float>(v.AsDouble());
}
template <>
inline double ConstantAs<double>(const Value& v) {
  return v.AsDouble();
}

// ---------------------------------------------------------------------------
// Per-tier kernel tables. Entries are indexed by ValueType; a null entry
// means "this tier has no kernel for the type, use scalar".
// ---------------------------------------------------------------------------

using FilterFn = void (*)(const std::uint8_t* column, std::uint32_t count,
                          CmpOp op, const Value& constant, std::uint8_t* mask,
                          bool combine_and);
using AggFn = void (*)(const std::uint8_t* column, const std::uint8_t* mask,
                       std::uint32_t count, AggAccum* acc);
using CountFn = std::uint32_t (*)(const std::uint8_t* mask,
                                  std::uint32_t count);

struct KernelTable {
  FilterFn filter[kNumValueTypes] = {};
  AggFn agg[kNumValueTypes] = {};
  CountFn count_mask = nullptr;
};

/// Tier tables; null when the tier is compiled out.
const KernelTable* Avx2Kernels();
const KernelTable* Avx512Kernels();

/// Table of the active dispatch level; null means scalar.
const KernelTable* ActiveTable();

inline int TypeIndex(ValueType type) { return static_cast<int>(type); }

}  // namespace internal
}  // namespace simd
}  // namespace aim

#endif  // AIM_RTA_SIMD_INTERNAL_H_
