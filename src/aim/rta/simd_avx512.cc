// AVX-512 tier of the scan kernels (paper §4.7.1, "wider vectors" ROADMAP
// item). Compiled with -mavx512f/bw/dq/vl regardless of the build's -march;
// runtime dispatch (simd.cc) only selects this tier when CPUID reports the
// full feature set. Compiled out under TSan (AIM_SIMD_DISABLE_TIERS).
//
// Where AVX2 composes compares out of cmpgt/cmpeq plus a movemask + LUT
// byte expansion, AVX-512 compares straight into mask registers
// (__mmask16), expands them with one vpmovm2b, and uses masked loads for
// the non-multiple-of-16 bucket tails — no scalar tail loop in the filter
// path. Unsigned and 64-bit compares are native (no sign-bias trick).

#include "aim/rta/simd_internal.h"

#if !defined(AIM_SIMD_DISABLE_TIERS) && defined(__AVX512F__) && \
    defined(__AVX512BW__) && defined(__AVX512DQ__) && defined(__AVX512VL__)

#include <immintrin.h>

#include <limits>

namespace aim {
namespace simd {
namespace internal {
namespace {

// _mm512_*cmp*_mask immediates must be compile-time constants, hence the
// switch per comparison family instead of a runtime imm.

inline __mmask16 CmpMaskEpi32(__mmask16 active, __m512i data, __m512i cnst,
                              CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return _mm512_mask_cmp_epi32_mask(active, data, cnst, _MM_CMPINT_LT);
    case CmpOp::kLe:
      return _mm512_mask_cmp_epi32_mask(active, data, cnst, _MM_CMPINT_LE);
    case CmpOp::kGt:
      return _mm512_mask_cmp_epi32_mask(active, data, cnst, _MM_CMPINT_NLE);
    case CmpOp::kGe:
      return _mm512_mask_cmp_epi32_mask(active, data, cnst, _MM_CMPINT_NLT);
    case CmpOp::kEq:
      return _mm512_mask_cmp_epi32_mask(active, data, cnst, _MM_CMPINT_EQ);
    case CmpOp::kNe:
      return _mm512_mask_cmp_epi32_mask(active, data, cnst, _MM_CMPINT_NE);
  }
  return 0;
}

inline __mmask16 CmpMaskEpu32(__mmask16 active, __m512i data, __m512i cnst,
                              CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return _mm512_mask_cmp_epu32_mask(active, data, cnst, _MM_CMPINT_LT);
    case CmpOp::kLe:
      return _mm512_mask_cmp_epu32_mask(active, data, cnst, _MM_CMPINT_LE);
    case CmpOp::kGt:
      return _mm512_mask_cmp_epu32_mask(active, data, cnst, _MM_CMPINT_NLE);
    case CmpOp::kGe:
      return _mm512_mask_cmp_epu32_mask(active, data, cnst, _MM_CMPINT_NLT);
    case CmpOp::kEq:
      return _mm512_mask_cmp_epu32_mask(active, data, cnst, _MM_CMPINT_EQ);
    case CmpOp::kNe:
      return _mm512_mask_cmp_epu32_mask(active, data, cnst, _MM_CMPINT_NE);
  }
  return 0;
}

inline __mmask8 CmpMaskEpi64(__mmask8 active, __m512i data, __m512i cnst,
                             CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return _mm512_mask_cmp_epi64_mask(active, data, cnst, _MM_CMPINT_LT);
    case CmpOp::kLe:
      return _mm512_mask_cmp_epi64_mask(active, data, cnst, _MM_CMPINT_LE);
    case CmpOp::kGt:
      return _mm512_mask_cmp_epi64_mask(active, data, cnst, _MM_CMPINT_NLE);
    case CmpOp::kGe:
      return _mm512_mask_cmp_epi64_mask(active, data, cnst, _MM_CMPINT_NLT);
    case CmpOp::kEq:
      return _mm512_mask_cmp_epi64_mask(active, data, cnst, _MM_CMPINT_EQ);
    case CmpOp::kNe:
      return _mm512_mask_cmp_epi64_mask(active, data, cnst, _MM_CMPINT_NE);
  }
  return 0;
}

inline __mmask8 CmpMaskEpu64(__mmask8 active, __m512i data, __m512i cnst,
                             CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return _mm512_mask_cmp_epu64_mask(active, data, cnst, _MM_CMPINT_LT);
    case CmpOp::kLe:
      return _mm512_mask_cmp_epu64_mask(active, data, cnst, _MM_CMPINT_LE);
    case CmpOp::kGt:
      return _mm512_mask_cmp_epu64_mask(active, data, cnst, _MM_CMPINT_NLE);
    case CmpOp::kGe:
      return _mm512_mask_cmp_epu64_mask(active, data, cnst, _MM_CMPINT_NLT);
    case CmpOp::kEq:
      return _mm512_mask_cmp_epu64_mask(active, data, cnst, _MM_CMPINT_EQ);
    case CmpOp::kNe:
      return _mm512_mask_cmp_epu64_mask(active, data, cnst, _MM_CMPINT_NE);
  }
  return 0;
}

// Float compares use the same ordered predicates as the AVX2 tier and the
// scalar reference: everything ordered except Ne (NaN != c is true in C).
inline __mmask16 CmpMaskPs(__mmask16 active, __m512 data, __m512 cnst,
                           CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return _mm512_mask_cmp_ps_mask(active, data, cnst, _CMP_LT_OQ);
    case CmpOp::kLe:
      return _mm512_mask_cmp_ps_mask(active, data, cnst, _CMP_LE_OQ);
    case CmpOp::kGt:
      return _mm512_mask_cmp_ps_mask(active, data, cnst, _CMP_GT_OQ);
    case CmpOp::kGe:
      return _mm512_mask_cmp_ps_mask(active, data, cnst, _CMP_GE_OQ);
    case CmpOp::kEq:
      return _mm512_mask_cmp_ps_mask(active, data, cnst, _CMP_EQ_OQ);
    case CmpOp::kNe:
      return _mm512_mask_cmp_ps_mask(active, data, cnst, _CMP_NEQ_UQ);
  }
  return 0;
}

inline __mmask8 CmpMaskPd(__mmask8 active, __m512d data, __m512d cnst,
                          CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return _mm512_mask_cmp_pd_mask(active, data, cnst, _CMP_LT_OQ);
    case CmpOp::kLe:
      return _mm512_mask_cmp_pd_mask(active, data, cnst, _CMP_LE_OQ);
    case CmpOp::kGt:
      return _mm512_mask_cmp_pd_mask(active, data, cnst, _CMP_GT_OQ);
    case CmpOp::kGe:
      return _mm512_mask_cmp_pd_mask(active, data, cnst, _CMP_GE_OQ);
    case CmpOp::kEq:
      return _mm512_mask_cmp_pd_mask(active, data, cnst, _CMP_EQ_OQ);
    case CmpOp::kNe:
      return _mm512_mask_cmp_pd_mask(active, data, cnst, _CMP_NEQ_UQ);
  }
  return 0;
}

/// Selection bits -> 0x00/0xff byte mask, ANDed into / stored over the
/// `active` prefix of `dst` (16 four-byte lanes per step; for the 8-lane
/// 64-bit kernels the high mask bits are simply zero).
inline void StoreMaskBytes(std::uint8_t* dst, __mmask16 active, __mmask16 sel,
                           bool combine_and) {
  __m128i bytes = _mm_movm_epi8(sel);
  if (combine_and) {
    bytes = _mm_and_si128(bytes, _mm_maskz_loadu_epi8(active, dst));
  }
  _mm_mask_storeu_epi8(dst, active, bytes);
}

inline __mmask16 TailMask16(std::uint32_t rem) {
  return rem >= 16 ? static_cast<__mmask16>(0xffff)
                   : static_cast<__mmask16>((1u << rem) - 1);
}

inline __mmask8 TailMask8(std::uint32_t rem) {
  return rem >= 8 ? static_cast<__mmask8>(0xff)
                  : static_cast<__mmask8>((1u << rem) - 1);
}

// --- Filters ---------------------------------------------------------------

void FilterI32(const std::uint8_t* column, std::uint32_t count, CmpOp op,
               const Value& constant, std::uint8_t* mask, bool combine_and) {
  const std::int32_t* col = reinterpret_cast<const std::int32_t*>(column);
  const __m512i cnst = _mm512_set1_epi32(ConstantAs<std::int32_t>(constant));
  for (std::uint32_t i = 0; i < count; i += 16) {
    const __mmask16 active = TailMask16(count - i);
    const __m512i data = _mm512_maskz_loadu_epi32(active, col + i);
    StoreMaskBytes(mask + i, active, CmpMaskEpi32(active, data, cnst, op),
                   combine_and);
  }
}

void FilterU32(const std::uint8_t* column, std::uint32_t count, CmpOp op,
               const Value& constant, std::uint8_t* mask, bool combine_and) {
  const std::uint32_t* col = reinterpret_cast<const std::uint32_t*>(column);
  const __m512i cnst = _mm512_set1_epi32(
      static_cast<int>(ConstantAs<std::uint32_t>(constant)));
  for (std::uint32_t i = 0; i < count; i += 16) {
    const __mmask16 active = TailMask16(count - i);
    const __m512i data = _mm512_maskz_loadu_epi32(active, col + i);
    StoreMaskBytes(mask + i, active, CmpMaskEpu32(active, data, cnst, op),
                   combine_and);
  }
}

void FilterF32(const std::uint8_t* column, std::uint32_t count, CmpOp op,
               const Value& constant, std::uint8_t* mask, bool combine_and) {
  const float* col = reinterpret_cast<const float*>(column);
  const __m512 cnst = _mm512_set1_ps(ConstantAs<float>(constant));
  for (std::uint32_t i = 0; i < count; i += 16) {
    const __mmask16 active = TailMask16(count - i);
    const __m512 data = _mm512_maskz_loadu_ps(active, col + i);
    StoreMaskBytes(mask + i, active, CmpMaskPs(active, data, cnst, op),
                   combine_and);
  }
}

void FilterI64(const std::uint8_t* column, std::uint32_t count, CmpOp op,
               const Value& constant, std::uint8_t* mask, bool combine_and) {
  const std::int64_t* col = reinterpret_cast<const std::int64_t*>(column);
  const __m512i cnst = _mm512_set1_epi64(ConstantAs<std::int64_t>(constant));
  for (std::uint32_t i = 0; i < count; i += 8) {
    const __mmask8 active = TailMask8(count - i);
    const __m512i data = _mm512_maskz_loadu_epi64(active, col + i);
    StoreMaskBytes(mask + i, active, CmpMaskEpi64(active, data, cnst, op),
                   combine_and);
  }
}

void FilterU64(const std::uint8_t* column, std::uint32_t count, CmpOp op,
               const Value& constant, std::uint8_t* mask, bool combine_and) {
  const std::uint64_t* col = reinterpret_cast<const std::uint64_t*>(column);
  const __m512i cnst = _mm512_set1_epi64(
      static_cast<long long>(ConstantAs<std::uint64_t>(constant)));
  for (std::uint32_t i = 0; i < count; i += 8) {
    const __mmask8 active = TailMask8(count - i);
    const __m512i data = _mm512_maskz_loadu_epi64(active, col + i);
    StoreMaskBytes(mask + i, active, CmpMaskEpu64(active, data, cnst, op),
                   combine_and);
  }
}

void FilterF64(const std::uint8_t* column, std::uint32_t count, CmpOp op,
               const Value& constant, std::uint8_t* mask, bool combine_and) {
  const double* col = reinterpret_cast<const double*>(column);
  const __m512d cnst = _mm512_set1_pd(ConstantAs<double>(constant));
  for (std::uint32_t i = 0; i < count; i += 8) {
    const __mmask8 active = TailMask8(count - i);
    const __m512d data = _mm512_maskz_loadu_pd(active, col + i);
    StoreMaskBytes(mask + i, active, CmpMaskPd(active, data, cnst, op),
                   combine_and);
  }
}

// --- Masked aggregation ----------------------------------------------------
//
// Selection arrives as the 0x00/0xff byte mask; vptestmb turns 16 mask
// bytes into a __mmask16 directly. Masked-zero loads leave unselected
// lanes at 0, so the sum path needs no blend; min/max updates are masked
// by selection ANDed with an ordered self-compare so NaN is skipped
// exactly as in the scalar reference (sum still propagates NaN).

void AggI32(const std::uint8_t* column, const std::uint8_t* maskp,
            std::uint32_t count, AggAccum* acc) {
  const std::int32_t* col = reinterpret_cast<const std::int32_t*>(column);
  __m512i vsum = _mm512_setzero_si512();  // 8 x i64 partial sums
  __m512i vmin = _mm512_set1_epi32(std::numeric_limits<std::int32_t>::max());
  __m512i vmax = _mm512_set1_epi32(std::numeric_limits<std::int32_t>::min());
  std::int64_t selected = 0;
  std::uint32_t i = 0;
  for (; i + 16 <= count; i += 16) {
    const __m128i mbytes =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(maskp + i));
    const __mmask16 sel = _mm_test_epi8_mask(mbytes, mbytes);
    const __m512i data = _mm512_maskz_loadu_epi32(sel, col + i);
    // Unselected lanes are zero: free to widen-and-add for the sum.
    vsum = _mm512_add_epi64(
        vsum, _mm512_cvtepi32_epi64(_mm512_castsi512_si256(data)));
    vsum = _mm512_add_epi64(
        vsum, _mm512_cvtepi32_epi64(_mm512_extracti64x4_epi64(data, 1)));
    vmin = _mm512_mask_min_epi32(vmin, sel, vmin, data);
    vmax = _mm512_mask_max_epi32(vmax, sel, vmax, data);
    selected += __builtin_popcount(static_cast<unsigned>(sel));
  }
  acc->sum += static_cast<double>(_mm512_reduce_add_epi64(vsum));
  acc->count += selected;
  if (selected > 0) {
    // Sentinel lanes (never selected) hold INT32_MAX/MIN; with at least one
    // real value they cannot distort the extrema, with zero they must not
    // be folded at all (scalar leaves min/max untouched).
    const std::int32_t mn = _mm512_reduce_min_epi32(vmin);
    const std::int32_t mx = _mm512_reduce_max_epi32(vmax);
    if (static_cast<double>(mn) < acc->min) acc->min = mn;
    if (static_cast<double>(mx) > acc->max) acc->max = mx;
  }
  MaskedAggScalarT(col + i, maskp + i, count - i, acc);
}

void AggU32(const std::uint8_t* column, const std::uint8_t* maskp,
            std::uint32_t count, AggAccum* acc) {
  const std::uint32_t* col = reinterpret_cast<const std::uint32_t*>(column);
  __m512i vsum = _mm512_setzero_si512();  // 8 x u64 partial sums
  __m512i vmin = _mm512_set1_epi32(-1);   // UINT32_MAX sentinel
  __m512i vmax = _mm512_setzero_si512();
  std::int64_t selected = 0;
  std::uint32_t i = 0;
  for (; i + 16 <= count; i += 16) {
    const __m128i mbytes =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(maskp + i));
    const __mmask16 sel = _mm_test_epi8_mask(mbytes, mbytes);
    const __m512i data = _mm512_maskz_loadu_epi32(sel, col + i);
    vsum = _mm512_add_epi64(
        vsum, _mm512_cvtepu32_epi64(_mm512_castsi512_si256(data)));
    vsum = _mm512_add_epi64(
        vsum, _mm512_cvtepu32_epi64(_mm512_extracti64x4_epi64(data, 1)));
    vmin = _mm512_mask_min_epu32(vmin, sel, vmin, data);
    vmax = _mm512_mask_max_epu32(vmax, sel, vmax, data);
    selected += __builtin_popcount(static_cast<unsigned>(sel));
  }
  acc->sum += static_cast<double>(
      static_cast<std::uint64_t>(_mm512_reduce_add_epi64(vsum)));
  acc->count += selected;
  if (selected > 0) {
    const std::uint32_t mn = _mm512_reduce_min_epu32(vmin);
    const std::uint32_t mx = _mm512_reduce_max_epu32(vmax);
    if (static_cast<double>(mn) < acc->min) acc->min = mn;
    if (static_cast<double>(mx) > acc->max) acc->max = mx;
  }
  MaskedAggScalarT(col + i, maskp + i, count - i, acc);
}

void AggF32(const std::uint8_t* column, const std::uint8_t* maskp,
            std::uint32_t count, AggAccum* acc) {
  const float* col = reinterpret_cast<const float*>(column);
  __m512 vsum = _mm512_setzero_ps();
  __m512 vmin = _mm512_set1_ps(std::numeric_limits<float>::infinity());
  __m512 vmax = _mm512_set1_ps(-std::numeric_limits<float>::infinity());
  std::int64_t selected = 0;
  std::uint32_t i = 0;
  for (; i + 16 <= count; i += 16) {
    const __m128i mbytes =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(maskp + i));
    const __mmask16 sel = _mm_test_epi8_mask(mbytes, mbytes);
    const __m512 data = _mm512_maskz_loadu_ps(sel, col + i);
    vsum = _mm512_mask_add_ps(vsum, sel, vsum, data);
    // Ordered self-compare keeps NaN out of min/max (scalar semantics).
    const __mmask16 ord = _mm512_mask_cmp_ps_mask(sel, data, data, _CMP_ORD_Q);
    vmin = _mm512_mask_min_ps(vmin, ord, vmin, data);
    vmax = _mm512_mask_max_ps(vmax, ord, vmax, data);
    selected += __builtin_popcount(static_cast<unsigned>(sel));
  }
  acc->sum += static_cast<double>(_mm512_reduce_add_ps(vsum));
  acc->count += selected;
  // The +/-inf sentinels are idempotent under min/max: no selected-count
  // guard needed (matches the AVX2 tier).
  const float mn = _mm512_reduce_min_ps(vmin);
  const float mx = _mm512_reduce_max_ps(vmax);
  if (mn < acc->min) acc->min = mn;
  if (mx > acc->max) acc->max = mx;
  MaskedAggScalarT(col + i, maskp + i, count - i, acc);
}

void AggF64(const std::uint8_t* column, const std::uint8_t* maskp,
            std::uint32_t count, AggAccum* acc) {
  const double* col = reinterpret_cast<const double*>(column);
  __m512d vsum = _mm512_setzero_pd();
  __m512d vmin = _mm512_set1_pd(std::numeric_limits<double>::infinity());
  __m512d vmax = _mm512_set1_pd(-std::numeric_limits<double>::infinity());
  std::int64_t selected = 0;
  std::uint32_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m128i mbytes =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(maskp + i));
    const __mmask8 sel =
        static_cast<__mmask8>(_mm_test_epi8_mask(mbytes, mbytes));
    const __m512d data = _mm512_maskz_loadu_pd(sel, col + i);
    vsum = _mm512_mask_add_pd(vsum, sel, vsum, data);
    const __mmask8 ord = _mm512_mask_cmp_pd_mask(sel, data, data, _CMP_ORD_Q);
    vmin = _mm512_mask_min_pd(vmin, ord, vmin, data);
    vmax = _mm512_mask_max_pd(vmax, ord, vmax, data);
    selected += __builtin_popcount(static_cast<unsigned>(sel));
  }
  acc->sum += _mm512_reduce_add_pd(vsum);
  acc->count += selected;
  const double mn = _mm512_reduce_min_pd(vmin);
  const double mx = _mm512_reduce_max_pd(vmax);
  if (mn < acc->min) acc->min = mn;
  if (mx > acc->max) acc->max = mx;
  MaskedAggScalarT(col + i, maskp + i, count - i, acc);
}

// --- CountMask -------------------------------------------------------------

std::uint32_t CountMask512(const std::uint8_t* mask, std::uint32_t count) {
  std::uint64_t n = 0;
  std::uint32_t i = 0;
  for (; i + 64 <= count; i += 64) {
    const __m512i bytes =
        _mm512_loadu_si512(reinterpret_cast<const void*>(mask + i));
    n += __builtin_popcountll(
        static_cast<std::uint64_t>(_mm512_test_epi8_mask(bytes, bytes)));
  }
  for (; i < count; ++i) n += mask[i] != 0;
  return static_cast<std::uint32_t>(n);
}

}  // namespace

const KernelTable* Avx512Kernels() {
  static const KernelTable table = [] {
    KernelTable t;
    t.filter[TypeIndex(ValueType::kInt32)] = &FilterI32;
    t.filter[TypeIndex(ValueType::kUInt32)] = &FilterU32;
    t.filter[TypeIndex(ValueType::kInt64)] = &FilterI64;
    t.filter[TypeIndex(ValueType::kUInt64)] = &FilterU64;
    t.filter[TypeIndex(ValueType::kFloat)] = &FilterF32;
    t.filter[TypeIndex(ValueType::kDouble)] = &FilterF64;
    t.agg[TypeIndex(ValueType::kInt32)] = &AggI32;
    t.agg[TypeIndex(ValueType::kUInt32)] = &AggU32;
    t.agg[TypeIndex(ValueType::kFloat)] = &AggF32;
    t.agg[TypeIndex(ValueType::kDouble)] = &AggF64;
    t.count_mask = &CountMask512;
    return t;
  }();
  return &table;
}

}  // namespace internal
}  // namespace simd
}  // namespace aim

#else  // tier compiled out

namespace aim {
namespace simd {
namespace internal {

const KernelTable* Avx512Kernels() { return nullptr; }

}  // namespace internal
}  // namespace simd
}  // namespace aim

#endif
