#ifndef AIM_RTA_PARTIAL_RESULT_H_
#define AIM_RTA_PARTIAL_RESULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "aim/common/binary_io.h"
#include "aim/common/status.h"
#include "aim/rta/dimension.h"
#include "aim/rta/query.h"
#include "aim/rta/simd.h"

namespace aim {

/// One entity in a top-k result.
struct TopKEntry {
  std::uint64_t entity = 0;
  double value = 0.0;
};

/// The partial result a storage node produces for one query over its share
/// of the Analytics Matrix. RTA front-end nodes merge the partials from all
/// storage nodes and finalize (paper §4.2: "merge the partial results before
/// delivering the final result").
///
/// Layout: one AggAccum per aggregate slot per group. Plain aggregate
/// queries are a group-by with the single implicit group key 0. Top-k
/// queries carry per-target candidate lists instead.
struct PartialResult {
  std::uint32_t query_id = 0;

  struct Group {
    std::uint64_t key = 0;
    std::vector<simd::AggAccum> slots;
  };
  std::vector<Group> groups;

  std::vector<std::vector<TopKEntry>> topk;  // per target, locally best k

  /// Merges another node's partial into this one. `num_slots` must match.
  void MergeFrom(const PartialResult& other, const Query& query);

  void Serialize(BinaryWriter* w) const;
  static StatusOr<PartialResult> Deserialize(BinaryReader* r);
};

/// Number of AggAccum slots a query needs per group (ratio items use two).
std::uint32_t NumAggSlots(const Query& query);

/// Final, client-facing result.
struct QueryResult {
  struct Row {
    std::uint64_t group_key = 0;
    std::string group_label;  // resolved dim label (group-by-dim queries)
    std::vector<double> values;  // one per select item
  };

  std::uint32_t query_id = 0;
  Status status;
  std::vector<Row> rows;                     // aggregate: exactly one row
  std::vector<std::vector<TopKEntry>> topk;  // top-k queries

  std::string ToString() const;
};

/// Turns a fully merged partial into the final result: finalizes avg/ratio
/// expressions, resolves dim group labels, sorts groups by key and applies
/// LIMIT, truncates top-k lists to k.
QueryResult FinalizeResult(const Query& query, const DimensionCatalog* dims,
                           PartialResult&& merged);

}  // namespace aim

#endif  // AIM_RTA_PARTIAL_RESULT_H_
