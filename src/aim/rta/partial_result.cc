#include "aim/rta/partial_result.h"

#include <algorithm>
#include <cstdio>
#include <unordered_map>

#include "aim/common/logging.h"

namespace aim {

std::uint32_t NumAggSlots(const Query& query) {
  std::uint32_t n = 0;
  for (const SelectItem& s : query.select) {
    n += s.is_sum_ratio ? 2 : 1;
  }
  return n;
}

void PartialResult::MergeFrom(const PartialResult& other, const Query& query) {
  // Merge group tables: O(n) hash on keys.
  std::unordered_map<std::uint64_t, std::size_t> index;
  index.reserve(groups.size());
  for (std::size_t i = 0; i < groups.size(); ++i) {
    index.emplace(groups[i].key, i);
  }
  for (const Group& g : other.groups) {
    auto it = index.find(g.key);
    if (it == index.end()) {
      groups.push_back(g);
    } else {
      Group& mine = groups[it->second];
      AIM_CHECK(mine.slots.size() == g.slots.size());
      for (std::size_t s = 0; s < g.slots.size(); ++s) {
        mine.slots[s].MergeFrom(g.slots[s]);
      }
    }
  }

  // Merge top-k candidate lists: concatenate, re-rank, truncate.
  if (topk.size() < other.topk.size()) topk.resize(other.topk.size());
  for (std::size_t t = 0; t < other.topk.size(); ++t) {
    auto& mine = topk[t];
    mine.insert(mine.end(), other.topk[t].begin(), other.topk[t].end());
    const bool asc = t < query.topk.size() && query.topk[t].ascending;
    std::sort(mine.begin(), mine.end(),
              [asc](const TopKEntry& a, const TopKEntry& b) {
                return asc ? a.value < b.value : a.value > b.value;
              });
    if (mine.size() > query.k) mine.resize(query.k);
  }
}

void PartialResult::Serialize(BinaryWriter* w) const {
  w->PutU32(query_id);
  w->PutU32(static_cast<std::uint32_t>(groups.size()));
  for (const Group& g : groups) {
    w->PutU64(g.key);
    w->PutU32(static_cast<std::uint32_t>(g.slots.size()));
    for (const simd::AggAccum& a : g.slots) {
      w->PutF64(a.sum);
      w->PutF64(a.min);
      w->PutF64(a.max);
      w->PutI64(a.count);
    }
  }
  w->PutU32(static_cast<std::uint32_t>(topk.size()));
  for (const auto& t : topk) {
    w->PutU32(static_cast<std::uint32_t>(t.size()));
    for (const TopKEntry& e : t) {
      w->PutU64(e.entity);
      w->PutF64(e.value);
    }
  }
}

StatusOr<PartialResult> PartialResult::Deserialize(BinaryReader* r) {
  PartialResult p;
  p.query_id = r->GetU32();
  // Every count is validated against the remaining bytes before any
  // container is sized (GetCountU32 with the minimum encoded element size),
  // so a hostile header cannot pre-allocate more than the payload carries.
  const std::uint32_t ng = r->GetCountU32(12);  // u64 key + u32 slot count
  if (!r->ok()) return Status::InvalidArgument("truncated partial result");
  p.groups.reserve(ng);
  for (std::uint32_t i = 0; i < ng && r->ok(); ++i) {
    PartialResult::Group g;
    g.key = r->GetU64();
    const std::uint32_t ns = r->GetCountU32(32);  // 3 x f64 + i64
    g.slots.reserve(ns);
    for (std::uint32_t s = 0; s < ns && r->ok(); ++s) {
      simd::AggAccum a;
      a.sum = r->GetF64();
      a.min = r->GetF64();
      a.max = r->GetF64();
      a.count = r->GetI64();
      g.slots.push_back(a);
    }
    p.groups.push_back(std::move(g));
  }
  const std::uint32_t nt = r->GetCountU32(4);  // u32 entry count
  p.topk.reserve(nt);
  for (std::uint32_t t = 0; t < nt && r->ok(); ++t) {
    std::vector<TopKEntry> list;
    const std::uint32_t ne = r->GetCountU32(16);  // u64 entity + f64 value
    list.reserve(ne);
    for (std::uint32_t e = 0; e < ne && r->ok(); ++e) {
      TopKEntry entry;
      entry.entity = r->GetU64();
      entry.value = r->GetF64();
      list.push_back(entry);
    }
    p.topk.push_back(std::move(list));
  }
  if (!r->ok()) return Status::InvalidArgument("truncated partial result");
  return p;
}

namespace {

double FinalizeSlot(const SelectItem& item, const simd::AggAccum* slots) {
  const simd::AggAccum& a = slots[0];
  if (item.is_sum_ratio) {
    const double den = slots[1].sum;
    return den == 0.0 ? 0.0 : a.sum / den;
  }
  switch (item.op) {
    case AggOp::kCount:
      return static_cast<double>(a.count);
    case AggOp::kSum:
      return a.sum;
    case AggOp::kMin:
      return a.count == 0 ? 0.0 : a.min;
    case AggOp::kMax:
      return a.count == 0 ? 0.0 : a.max;
    case AggOp::kAvg:
      return a.count == 0 ? 0.0 : a.sum / static_cast<double>(a.count);
  }
  return 0.0;
}

}  // namespace

QueryResult FinalizeResult(const Query& query, const DimensionCatalog* dims,
                           PartialResult&& merged) {
  QueryResult result;
  result.query_id = query.id;

  if (query.kind == Query::Kind::kTopK) {
    result.topk = std::move(merged.topk);
    for (auto& list : result.topk) {
      if (list.size() > query.k) list.resize(query.k);
    }
    result.topk.resize(query.topk.size());
    return result;
  }

  // Deterministic output order: sort groups by key.
  std::sort(merged.groups.begin(), merged.groups.end(),
            [](const PartialResult::Group& a, const PartialResult::Group& b) {
              return a.key < b.key;
            });

  const bool dim_group = query.group_by.kind == GroupBy::Kind::kDimColumn;
  for (const PartialResult::Group& g : merged.groups) {
    if (query.limit > 0 && result.rows.size() >= query.limit) break;
    QueryResult::Row row;
    row.group_key = g.key;
    if (dim_group && dims != nullptr &&
        query.group_by.dim_table < dims->num_tables()) {
      row.group_label = dims->table(query.group_by.dim_table)
                            .GroupLabel(g.key, query.group_by.dim_column);
    }
    std::size_t slot = 0;
    for (const SelectItem& item : query.select) {
      row.values.push_back(FinalizeSlot(item, g.slots.data() + slot));
      slot += item.is_sum_ratio ? 2 : 1;
    }
    result.rows.push_back(std::move(row));
  }

  // Plain aggregates always return one row, even over an empty selection.
  if (query.kind == Query::Kind::kAggregate && result.rows.empty()) {
    QueryResult::Row row;
    simd::AggAccum empty;
    std::vector<simd::AggAccum> zeros(NumAggSlots(query), empty);
    std::size_t slot = 0;
    for (const SelectItem& item : query.select) {
      row.values.push_back(FinalizeSlot(item, zeros.data() + slot));
      slot += item.is_sum_ratio ? 2 : 1;
    }
    result.rows.push_back(std::move(row));
  }
  return result;
}

std::string QueryResult::ToString() const {
  std::string out = "Query " + std::to_string(query_id) + ": ";
  if (!status.ok()) return out + status.ToString();
  if (!topk.empty()) {
    for (std::size_t t = 0; t < topk.size(); ++t) {
      out += "[target " + std::to_string(t) + ":";
      for (const TopKEntry& e : topk[t]) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), " (%llu, %.3f)",
                      static_cast<unsigned long long>(e.entity), e.value);
        out += buf;
      }
      out += "]";
    }
    return out;
  }
  out += std::to_string(rows.size()) + " row(s)";
  const std::size_t show = std::min<std::size_t>(rows.size(), 5);
  for (std::size_t i = 0; i < show; ++i) {
    out += " {";
    if (!rows[i].group_label.empty()) {
      out += rows[i].group_label + ": ";
    } else if (rows.size() > 1) {
      out += std::to_string(rows[i].group_key) + ": ";
    }
    for (std::size_t v = 0; v < rows[i].values.size(); ++v) {
      if (v > 0) out += ", ";
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.4g", rows[i].values[v]);
      out += buf;
    }
    out += "}";
  }
  if (rows.size() > show) out += " ...";
  return out;
}

}  // namespace aim
