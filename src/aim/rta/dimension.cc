#include "aim/rta/dimension.h"

#include "aim/common/logging.h"

namespace aim {

std::uint16_t DimensionTable::AddUInt32Column(const std::string& name) {
  AIM_CHECK_MSG(keys_.empty(), "add columns before rows");
  Column c;
  c.name = name;
  c.type = ColumnType::kUInt32;
  columns_.push_back(std::move(c));
  return static_cast<std::uint16_t>(columns_.size() - 1);
}

std::uint16_t DimensionTable::AddStringColumn(const std::string& name) {
  AIM_CHECK_MSG(keys_.empty(), "add columns before rows");
  Column c;
  c.name = name;
  c.type = ColumnType::kString;
  columns_.push_back(std::move(c));
  return static_cast<std::uint16_t>(columns_.size() - 1);
}

std::uint16_t DimensionTable::FindColumn(const std::string& name) const {
  for (std::uint16_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return kNoColumn;
}

std::uint32_t DimensionTable::AddRow(
    std::uint64_t key, const std::vector<std::uint32_t>& u32_values,
    const std::vector<std::string>& str_values) {
  AIM_CHECK_MSG(key_to_row_.find(key) == key_to_row_.end(),
                "duplicate dimension key");
  const std::uint32_t row = static_cast<std::uint32_t>(keys_.size());
  keys_.push_back(key);
  key_to_row_.emplace(key, row);

  std::size_t ui = 0, si = 0;
  for (Column& c : columns_) {
    if (c.type == ColumnType::kUInt32) {
      AIM_CHECK(ui < u32_values.size());
      c.u32_data.push_back(u32_values[ui++]);
    } else {
      AIM_CHECK(si < str_values.size());
      const std::string& label = str_values[si++];
      auto [it, inserted] =
          c.label_ids.emplace(label, static_cast<std::uint32_t>(
                                         c.labels.size()));
      if (inserted) c.labels.push_back(label);
      c.row_label.push_back(it->second);
      c.str_data.push_back(label);
    }
  }
  return row;
}

std::uint32_t DimensionTable::LookupRow(std::uint64_t key) const {
  auto it = key_to_row_.find(key);
  return it == key_to_row_.end() ? kNoRow : it->second;
}

std::uint64_t DimensionTable::GroupKey(std::uint32_t row,
                                       std::uint16_t col) const {
  const Column& c = columns_[col];
  if (c.type == ColumnType::kUInt32) return c.u32_data[row];
  return c.row_label[row];
}

std::string DimensionTable::GroupLabel(std::uint64_t group_key,
                                       std::uint16_t col) const {
  const Column& c = columns_[col];
  if (c.type == ColumnType::kUInt32) return std::to_string(group_key);
  if (group_key < c.labels.size()) {
    return c.labels[static_cast<std::uint32_t>(group_key)];
  }
  return "<label#" + std::to_string(group_key) + ">";
}

std::uint16_t DimensionCatalog::AddTable(DimensionTable table) {
  const std::uint16_t id = static_cast<std::uint16_t>(tables_.size());
  name_to_table_.emplace(table.name(), id);
  tables_.push_back(std::move(table));
  return id;
}

std::uint16_t DimensionCatalog::FindTable(const std::string& name) const {
  auto it = name_to_table_.find(name);
  return it == name_to_table_.end() ? kNoTable : it->second;
}

}  // namespace aim
