// AVX2 tier of the scan kernels. Compiled with -mavx2 regardless of the
// build's -march (runtime dispatch guarantees it only runs on capable
// CPUs); compiled out entirely under TSan (AIM_SIMD_DISABLE_TIERS), which
// does not model all vector codegen.

#include "aim/rta/simd_internal.h"

#if !defined(AIM_SIMD_DISABLE_TIERS) && defined(__AVX2__)

#include <immintrin.h>

#include <cstring>
#include <limits>

namespace aim {
namespace simd {
namespace internal {
namespace {

// ---------------------------------------------------------------------------
// Comparisons produce per-lane masks; _mm256_movemask_* distills them into
// one bit per lane, which a 256-entry lookup table expands into the byte
// mask (8 lanes -> one u64 write).
// ---------------------------------------------------------------------------

struct ByteExpandLut {
  std::uint64_t v[256];
  constexpr ByteExpandLut() : v() {
    for (int b = 0; b < 256; ++b) {
      std::uint64_t x = 0;
      for (int i = 0; i < 8; ++i) {
        if (b & (1 << i)) x |= 0xffULL << (8 * i);
      }
      v[b] = x;
    }
  }
};
constexpr ByteExpandLut kExpand{};

inline void WriteMask8(std::uint8_t* dst, unsigned bits, bool combine_and) {
  std::uint64_t expanded = kExpand.v[bits & 0xff];
  if (combine_and) {
    std::uint64_t cur;
    std::memcpy(&cur, dst, 8);
    expanded &= cur;
  }
  std::memcpy(dst, &expanded, 8);
}

/// i32 comparison via cmpgt/cmpeq composition. Returns movemask bits (one
/// per 32-bit lane, 8 lanes).
inline unsigned CmpMaskI32(__m256i data, __m256i cnst, CmpOp op) {
  __m256i m = _mm256_setzero_si256();
  switch (op) {
    case CmpOp::kLt:
      m = _mm256_cmpgt_epi32(cnst, data);
      break;
    case CmpOp::kLe:
      m = _mm256_cmpgt_epi32(data, cnst);
      return ~static_cast<unsigned>(_mm256_movemask_ps(
                 _mm256_castsi256_ps(m))) &
             0xffu;
    case CmpOp::kGt:
      m = _mm256_cmpgt_epi32(data, cnst);
      break;
    case CmpOp::kGe:
      m = _mm256_cmpgt_epi32(cnst, data);
      return ~static_cast<unsigned>(_mm256_movemask_ps(
                 _mm256_castsi256_ps(m))) &
             0xffu;
    case CmpOp::kEq:
      m = _mm256_cmpeq_epi32(data, cnst);
      break;
    case CmpOp::kNe:
      m = _mm256_cmpeq_epi32(data, cnst);
      return ~static_cast<unsigned>(_mm256_movemask_ps(
                 _mm256_castsi256_ps(m))) &
             0xffu;
  }
  return static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(m)));
}

void FilterI32Avx2(const std::int32_t* col, std::uint32_t count, CmpOp op,
                   std::int32_t constant, std::uint8_t* mask,
                   bool combine_and) {
  const __m256i cnst = _mm256_set1_epi32(constant);
  std::uint32_t i = 0;
  for (; i + 8 <= count; i += 8) {
    __m256i data =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(col + i));
    WriteMask8(mask + i, CmpMaskI32(data, cnst, op), combine_and);
  }
  FilterScalarT(col + i, count - i, op, constant, mask + i, combine_and);
}

/// u32: bias by 0x80000000 to reuse signed compares.
void FilterU32Avx2(const std::uint32_t* col, std::uint32_t count, CmpOp op,
                   std::uint32_t constant, std::uint8_t* mask,
                   bool combine_and) {
  const __m256i bias = _mm256_set1_epi32(static_cast<int>(0x80000000u));
  const __m256i cnst = _mm256_xor_si256(
      _mm256_set1_epi32(static_cast<int>(constant)), bias);
  std::uint32_t i = 0;
  for (; i + 8 <= count; i += 8) {
    __m256i data = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(col + i)), bias);
    WriteMask8(mask + i, CmpMaskI32(data, cnst, op), combine_and);
  }
  FilterScalarT(col + i, count - i, op, constant, mask + i, combine_and);
}

inline unsigned CmpMaskF32(__m256 data, __m256 cnst, CmpOp op) {
  __m256 m;
  switch (op) {
    case CmpOp::kLt:
      m = _mm256_cmp_ps(data, cnst, _CMP_LT_OQ);
      break;
    case CmpOp::kLe:
      m = _mm256_cmp_ps(data, cnst, _CMP_LE_OQ);
      break;
    case CmpOp::kGt:
      m = _mm256_cmp_ps(data, cnst, _CMP_GT_OQ);
      break;
    case CmpOp::kGe:
      m = _mm256_cmp_ps(data, cnst, _CMP_GE_OQ);
      break;
    case CmpOp::kEq:
      m = _mm256_cmp_ps(data, cnst, _CMP_EQ_OQ);
      break;
    case CmpOp::kNe:
      m = _mm256_cmp_ps(data, cnst, _CMP_NEQ_UQ);
      break;
    default:
      m = _mm256_setzero_ps();
  }
  return static_cast<unsigned>(_mm256_movemask_ps(m));
}

void FilterF32Avx2(const float* col, std::uint32_t count, CmpOp op,
                   float constant, std::uint8_t* mask, bool combine_and) {
  const __m256 cnst = _mm256_set1_ps(constant);
  std::uint32_t i = 0;
  for (; i + 8 <= count; i += 8) {
    __m256 data = _mm256_loadu_ps(col + i);
    WriteMask8(mask + i, CmpMaskF32(data, cnst, op), combine_and);
  }
  FilterScalarT(col + i, count - i, op, constant, mask + i, combine_and);
}

/// Masked f32 aggregation: expand 8 mask bytes to 32-bit lanes, AND with the
/// data (masked-out lanes become +0.0f for the sum) and blend +/-inf for
/// min/max.
void MaskedAggF32Avx2(const float* col, const std::uint8_t* mask,
                      std::uint32_t count, AggAccum* acc) {
  __m256 vsum = _mm256_setzero_ps();
  __m256 vmin = _mm256_set1_ps(std::numeric_limits<float>::infinity());
  __m256 vmax = _mm256_set1_ps(-std::numeric_limits<float>::infinity());
  __m256i vcount = _mm256_setzero_si256();
  const __m256i ones = _mm256_set1_epi32(1);

  std::uint32_t i = 0;
  for (; i + 8 <= count; i += 8) {
    // Sign-extending 0xff bytes yields 0xffffffff lanes: already a full
    // 32-bit lane mask.
    __m256i lane = _mm256_cvtepi8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(mask + i)));
    __m256 lanef = _mm256_castsi256_ps(lane);

    __m256 data = _mm256_loadu_ps(col + i);
    vsum = _mm256_add_ps(vsum, _mm256_and_ps(data, lanef));
    // min/max must skip NaN like the scalar reference (whose comparisons
    // against NaN are all false). minps/maxps instead return their second
    // operand on NaN, so a selected NaN would absorb the lane's running
    // extremum; AND the selection with an ordered self-compare to drop NaN
    // lanes from the min/max path (the sum still propagates NaN above).
    __m256 lane_ord =
        _mm256_and_ps(lanef, _mm256_cmp_ps(data, data, _CMP_ORD_Q));
    vmin = _mm256_min_ps(vmin, _mm256_blendv_ps(
                                   _mm256_set1_ps(
                                       std::numeric_limits<float>::infinity()),
                                   data, lane_ord));
    vmax = _mm256_max_ps(
        vmax, _mm256_blendv_ps(
                  _mm256_set1_ps(-std::numeric_limits<float>::infinity()),
                  data, lane_ord));
    vcount = _mm256_add_epi32(vcount, _mm256_and_si256(ones, lane));
  }

  alignas(32) float tmp[8];
  alignas(32) std::int32_t tmpi[8];
  _mm256_store_ps(tmp, vsum);
  for (int k = 0; k < 8; ++k) acc->sum += tmp[k];
  _mm256_store_ps(tmp, vmin);
  for (int k = 0; k < 8; ++k) {
    if (tmp[k] < acc->min) acc->min = tmp[k];
  }
  _mm256_store_ps(tmp, vmax);
  for (int k = 0; k < 8; ++k) {
    if (tmp[k] > acc->max) acc->max = tmp[k];
  }
  _mm256_store_si256(reinterpret_cast<__m256i*>(tmpi), vcount);
  for (int k = 0; k < 8; ++k) acc->count += tmpi[k];

  MaskedAggScalarT(col + i, mask + i, count - i, acc);
}

/// Masked i32 aggregation: widen selected lanes, accumulate in i64 pairs
/// for the sum; min/max via blends with sentinels.
void MaskedAggI32Avx2(const std::int32_t* col, const std::uint8_t* mask,
                      std::uint32_t count, AggAccum* acc) {
  __m256i vsum = _mm256_setzero_si256();  // 4 x i64 partial sums
  __m256i vmin = _mm256_set1_epi32(std::numeric_limits<std::int32_t>::max());
  __m256i vmax = _mm256_set1_epi32(std::numeric_limits<std::int32_t>::min());
  __m256i vcount = _mm256_setzero_si256();
  const __m256i ones = _mm256_set1_epi32(1);

  std::uint32_t i = 0;
  for (; i + 8 <= count; i += 8) {
    __m256i lane = _mm256_cvtepi8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(mask + i)));

    __m256i data =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(col + i));
    __m256i masked = _mm256_and_si256(data, lane);
    // Widen the two 128-bit halves to i64 and accumulate.
    vsum = _mm256_add_epi64(
        vsum, _mm256_cvtepi32_epi64(_mm256_castsi256_si128(masked)));
    vsum = _mm256_add_epi64(
        vsum, _mm256_cvtepi32_epi64(_mm256_extracti128_si256(masked, 1)));

    vmin = _mm256_min_epi32(
        vmin, _mm256_blendv_epi8(
                  _mm256_set1_epi32(std::numeric_limits<std::int32_t>::max()),
                  data, lane));
    vmax = _mm256_max_epi32(
        vmax, _mm256_blendv_epi8(
                  _mm256_set1_epi32(std::numeric_limits<std::int32_t>::min()),
                  data, lane));
    vcount = _mm256_add_epi32(vcount, _mm256_and_si256(ones, lane));
  }

  alignas(32) std::int64_t tmp64[4];
  alignas(32) std::int32_t tmp32[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(tmp64), vsum);
  for (int k = 0; k < 4; ++k) acc->sum += static_cast<double>(tmp64[k]);
  _mm256_store_si256(reinterpret_cast<__m256i*>(tmp32), vcount);
  std::int64_t selected = 0;
  for (int k = 0; k < 8; ++k) selected += tmp32[k];
  acc->count += selected;
  if (selected > 0) {
    // With at least one selected element the INT32_MAX/MIN sentinels of
    // unselected lanes cannot distort the result; with zero we must not
    // fold them at all.
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp32), vmin);
    for (int k = 0; k < 8; ++k) {
      if (static_cast<double>(tmp32[k]) < acc->min) acc->min = tmp32[k];
    }
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp32), vmax);
    for (int k = 0; k < 8; ++k) {
      if (static_cast<double>(tmp32[k]) > acc->max) acc->max = tmp32[k];
    }
  }

  MaskedAggScalarT(col + i, mask + i, count - i, acc);
}

// --- KernelTable adapters (untyped byte-pointer signatures) ----------------

void FilterI32(const std::uint8_t* column, std::uint32_t count, CmpOp op,
               const Value& constant, std::uint8_t* mask, bool combine_and) {
  FilterI32Avx2(reinterpret_cast<const std::int32_t*>(column), count, op,
                ConstantAs<std::int32_t>(constant), mask, combine_and);
}
void FilterU32(const std::uint8_t* column, std::uint32_t count, CmpOp op,
               const Value& constant, std::uint8_t* mask, bool combine_and) {
  FilterU32Avx2(reinterpret_cast<const std::uint32_t*>(column), count, op,
                ConstantAs<std::uint32_t>(constant), mask, combine_and);
}
void FilterF32(const std::uint8_t* column, std::uint32_t count, CmpOp op,
               const Value& constant, std::uint8_t* mask, bool combine_and) {
  FilterF32Avx2(reinterpret_cast<const float*>(column), count, op,
                ConstantAs<float>(constant), mask, combine_and);
}
void AggI32(const std::uint8_t* column, const std::uint8_t* mask,
            std::uint32_t count, AggAccum* acc) {
  MaskedAggI32Avx2(reinterpret_cast<const std::int32_t*>(column), mask, count,
                   acc);
}
void AggF32(const std::uint8_t* column, const std::uint8_t* mask,
            std::uint32_t count, AggAccum* acc) {
  MaskedAggF32Avx2(reinterpret_cast<const float*>(column), mask, count, acc);
}

}  // namespace

const KernelTable* Avx2Kernels() {
  static const KernelTable table = [] {
    KernelTable t;
    t.filter[TypeIndex(ValueType::kInt32)] = &FilterI32;
    t.filter[TypeIndex(ValueType::kUInt32)] = &FilterU32;
    t.filter[TypeIndex(ValueType::kFloat)] = &FilterF32;
    t.agg[TypeIndex(ValueType::kInt32)] = &AggI32;
    t.agg[TypeIndex(ValueType::kFloat)] = &AggF32;
    return t;
  }();
  return &table;
}

}  // namespace internal
}  // namespace simd
}  // namespace aim

#else  // tier compiled out

namespace aim {
namespace simd {
namespace internal {

const KernelTable* Avx2Kernels() { return nullptr; }

}  // namespace internal
}  // namespace simd
}  // namespace aim

#endif
