#ifndef AIM_RTA_PARALLEL_SCAN_H_
#define AIM_RTA_PARALLEL_SCAN_H_

#include <vector>

#include "aim/rta/compiled_query.h"

namespace aim {

/// The alternative thread model of paper §3.2: instead of a fixed
/// thread-to-partition assignment, the data is split into many small chunks
/// at scan start and idle threads continuously grab the next chunk — work
/// stealing, which balances skewed loads at the cost of chunk management.
///
/// Executes a query batch over one ColumnMap with `num_threads` workers
/// pulling `chunk_buckets`-sized bucket ranges from a shared cursor. Each
/// worker runs its own compiled copy of the batch; per-query partials are
/// merged at the end (the same merge path node-level partials use).
class ParallelSharedScan {
 public:
  struct Options {
    std::uint32_t num_threads = 2;
    std::uint32_t chunk_buckets = 1;  // chunk granularity
  };

  /// Returns one merged PartialResult per query (empty partials for
  /// queries that fail to compile). `chunks_per_worker`, if non-null, is
  /// filled with how many chunks each worker processed — the
  /// load-balancing evidence the §3.2 discussion is about.
  static StatusOr<std::vector<PartialResult>> Execute(
      const ColumnMap& main, const Schema* schema,
      const DimensionCatalog* dims, const std::vector<Query>& batch,
      const Options& options,
      std::vector<std::uint32_t>* chunks_per_worker = nullptr);
};

}  // namespace aim

#endif  // AIM_RTA_PARALLEL_SCAN_H_
