#ifndef AIM_RTA_PARALLEL_SCAN_H_
#define AIM_RTA_PARALLEL_SCAN_H_

#include <vector>

#include "aim/rta/compiled_query.h"
#include "aim/rta/scan_pool.h"

namespace aim {

/// The alternative thread model of paper §3.2: instead of a fixed
/// thread-to-partition assignment, the data is split into many small chunks
/// at scan start and idle threads continuously grab the next chunk — work
/// stealing, which balances skewed loads at the cost of chunk management.
///
/// A thin client of ScanPool: the batch is compiled once, the scan is
/// submitted as one pool job with `chunk_buckets`-sized morsels, and the
/// calling thread coordinates (participates in the scan, merges the
/// per-executor partials). Repeated Execute calls create no threads — the
/// pool's workers are persistent (regression-tested by
/// tests/parallel_scan_test.cc's thread-count probe).
class ParallelSharedScan {
 public:
  struct Options {
    /// Kept for interface compatibility as a concurrency *hint*: must be
    /// non-zero (validation), but actual parallelism is the pool's worker
    /// count + the calling thread.
    std::uint32_t num_threads = 2;
    std::uint32_t chunk_buckets = 1;  // chunk (morsel) granularity
    /// Pool to run on; null uses the process-wide ScanPool::Shared().
    ScanPool* pool = nullptr;
  };

  /// Returns one merged PartialResult per query. `chunks_per_worker`, if
  /// non-null, is filled with how many chunks each executor processed
  /// (pool workers first, calling thread last) — the load-balancing
  /// evidence the §3.2 discussion is about.
  static StatusOr<std::vector<PartialResult>> Execute(
      const ColumnMap& main, const Schema* schema,
      const DimensionCatalog* dims, const std::vector<Query>& batch,
      const Options& options,
      std::vector<std::uint32_t>* chunks_per_worker = nullptr);
};

}  // namespace aim

#endif  // AIM_RTA_PARALLEL_SCAN_H_
