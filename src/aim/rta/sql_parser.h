#ifndef AIM_RTA_SQL_PARSER_H_
#define AIM_RTA_SQL_PARSER_H_

#include <string>

#include "aim/common/status.h"
#include "aim/rta/dimension.h"
#include "aim/rta/query.h"

namespace aim {

/// SQL front-end for the RTA layer (the paper's queries are SQL, Table 5).
/// Parses the subset the Analytics Matrix workload needs:
///
///   SELECT <item> [, <item>]*
///   FROM AnalyticsMatrix [, <DimTable> [alias]]*
///   [WHERE <condition> [AND <condition>]*]
///   [GROUP BY <column>]
///   [LIMIT <n>]
///
///   <item>      := COUNT(*) | SUM(col) | AVG(col) | MIN(col) | MAX(col)
///                | SUM(col) / SUM(col) [AS name]
///                | <group-by column>            (echoed dim/attr column)
///   <condition> := col <op> <number>            (matrix predicate)
///                | tbl.col <op> <number>        (dimension predicate)
///                | tbl.col = '<label>'          (dimension label predicate)
///                | col = tbl.<key-col>          (join: FK = dim key)
///   <op>        := < | <= | > | >= | = | <> | !=
///
/// Dimension predicates / GROUP BY on dimension columns require a join
/// condition connecting the matrix FK attribute to the table's key; the
/// paper's Q4 "AnalyticsMatrix.zip = RegionInfo.zip" works verbatim. Table
/// aliases from the FROM list are accepted anywhere a table name is.
///
/// Identifiers resolve against the Schema (including aliases like
/// total_duration_this_week) and the DimensionCatalog. Keywords are
/// case-insensitive; identifiers are case-sensitive like the schema.
///
/// Top-k queries (paper Q6/Q7) are not expressible in this subset — the
/// paper itself gives them in prose only; build them with QueryBuilder.
class SqlParser {
 public:
  /// `dims` may be null when no dimension tables are referenced.
  SqlParser(const Schema* schema, const DimensionCatalog* dims)
      : schema_(schema), dims_(dims) {}

  /// Parses one statement into a Query. Returns kInvalidArgument with a
  /// position-annotated message on any syntax or resolution error.
  StatusOr<Query> Parse(const std::string& sql) const;

 private:
  const Schema* schema_;
  const DimensionCatalog* dims_;
};

}  // namespace aim

#endif  // AIM_RTA_SQL_PARSER_H_
