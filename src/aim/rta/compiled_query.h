#ifndef AIM_RTA_COMPILED_QUERY_H_
#define AIM_RTA_COMPILED_QUERY_H_

#include <cstdint>
#include <memory>
#include <new>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "aim/common/logging.h"
#include "aim/common/status.h"
#include "aim/rta/dimension.h"
#include "aim/rta/partial_result.h"
#include "aim/rta/query.h"
#include "aim/rta/simd.h"
#include "aim/storage/column_map.h"

namespace aim {

/// Reusable per-thread scan scratch (selection mask sized to bucket_size).
/// The mask buffer is 64-byte aligned and its capacity is a multiple of 64:
/// the SIMD filter kernels read/write the mask in full vector registers
/// (up to 64 mask bytes per AVX-512 CountMask step), and cacheline-aligned
/// scratch keeps each pool worker's mask traffic off its neighbors' lines.
struct ScanScratch {
  std::uint8_t* MaskFor(std::uint32_t n) {
    if (capacity_ < n) {
      const std::size_t cap = (n + 63u) & ~std::size_t{63};
      mask_.reset(static_cast<std::uint8_t*>(
          ::operator new(cap, std::align_val_t{64})));
      capacity_ = cap;
      AIM_DCHECK(reinterpret_cast<std::uintptr_t>(mask_.get()) % 64 == 0);
    }
    return mask_.get();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  struct AlignedDelete {
    void operator()(std::uint8_t* p) const {
      ::operator delete(p, std::align_val_t{64});
    }
  };
  std::unique_ptr<std::uint8_t[], AlignedDelete> mask_;
  std::size_t capacity_ = 0;
};

/// A query compiled against a schema + dimension catalog, ready to consume
/// ColumnMap buckets. Compilation resolves:
///   * WHERE predicates into typed SIMD column filters;
///   * dimension predicates into FK membership sets (the "join happens at
///     the storage node" strategy of §3.4 — dimension tables are small,
///     static and replicated, so semi-join reduction is exact);
///   * GROUP BY dim columns into an FK -> group-key hash;
///   * select items into aggregate slots.
///
/// Usage per scan: Reset(), ProcessBucket() for every bucket, TakePartial().
/// One CompiledQuery instance is owned by one scan thread (not shared).
class CompiledQuery {
 public:
  static StatusOr<CompiledQuery> Compile(const Query& query,
                                         const Schema* schema,
                                         const DimensionCatalog* dims);

  const Query& query() const { return query_; }

  /// Clears accumulated state for a fresh scan pass.
  void Reset();

  /// Consumes one bucket (Algorithm 5's process_bucket(bucket, query)).
  void ProcessBucket(const ColumnMap& map, const ColumnMap::BucketRef& bucket,
                     ScanScratch* scratch);

  /// Moves the accumulated partial result out (ends the pass).
  PartialResult TakePartial();

 private:
  CompiledQuery() = default;

  struct ColumnFilter {
    std::uint16_t attr;
    ValueType type;
    CmpOp op;
    Value constant;
  };

  /// FK membership test from resolved dimension predicates: the record
  /// passes iff its FK value is in `matching` (inner-join + predicate
  /// semantics folded together).
  struct FkSetFilter {
    std::uint16_t attr;  // u32 FK column
    std::unordered_set<std::uint32_t> matching;
  };

  void AggregateBucket(const ColumnMap& map,
                       const ColumnMap::BucketRef& bucket,
                       const std::uint8_t* mask, std::uint32_t count);
  void GroupByBucket(const ColumnMap& map, const ColumnMap::BucketRef& bucket,
                     const std::uint8_t* mask, std::uint32_t count);
  void TopKBucket(const ColumnMap& map, const ColumnMap::BucketRef& bucket,
                  const std::uint8_t* mask, std::uint32_t count);

  PartialResult::Group* GroupFor(std::uint64_t key);

  Query query_;
  const Schema* schema_ = nullptr;
  const DimensionCatalog* dims_ = nullptr;

  std::vector<ColumnFilter> filters_;
  std::vector<FkSetFilter> fk_filters_;

  // Aggregate slots: (select item, slot index, attr, type). Ratio items
  // produce two slot entries.
  struct AggSlot {
    std::uint32_t slot;
    std::uint16_t attr;  // kInvalidAttr = COUNT(*)
    ValueType type;
  };
  std::vector<AggSlot> agg_slots_;
  std::uint32_t num_slots_ = 0;

  // GROUP BY state.
  bool group_by_dim_ = false;
  std::uint16_t group_attr_ = kInvalidAttr;  // matrix-attr grouping
  ValueType group_attr_type_ = ValueType::kInt32;
  std::uint16_t group_fk_attr_ = kInvalidAttr;  // dim grouping
  std::unordered_map<std::uint32_t, std::uint64_t> fk_to_group_;

  // Execution state.
  PartialResult partial_;
  std::unordered_map<std::uint64_t, std::uint32_t> group_index_;

  struct TopKState {
    std::vector<TopKEntry> entries;  // kept loosely sorted, trimmed lazily
  };
  std::vector<TopKState> topk_state_;
};

}  // namespace aim

#endif  // AIM_RTA_COMPILED_QUERY_H_
