#ifndef AIM_RTA_QUERY_H_
#define AIM_RTA_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "aim/common/binary_io.h"
#include "aim/common/status.h"
#include "aim/esp/rule.h"  // CmpOp
#include "aim/schema/schema.h"

namespace aim {

/// Aggregate operators of the RTA query language.
enum class AggOp : std::uint8_t {
  kCount = 0,
  kSum = 1,
  kMin = 2,
  kMax = 3,
  kAvg = 4,
};

const char* AggOpName(AggOp op);

/// One output expression: AGG(attr), COUNT(*), or SUM(attr)/SUM(den_attr)
/// (the ratio form needed by Q3's cost_ratio).
struct SelectItem {
  AggOp op = AggOp::kCount;
  std::uint16_t attr = kInvalidAttr;
  bool is_sum_ratio = false;
  std::uint16_t den_attr = kInvalidAttr;

  static SelectItem Count() { return SelectItem{}; }
  static SelectItem Agg(AggOp op, std::uint16_t attr) {
    SelectItem s;
    s.op = op;
    s.attr = attr;
    return s;
  }
  static SelectItem SumRatio(std::uint16_t num, std::uint16_t den) {
    SelectItem s;
    s.op = AggOp::kSum;
    s.attr = num;
    s.is_sum_ratio = true;
    s.den_attr = den;
    return s;
  }
};

/// Predicate on an Analytics Matrix attribute (SIMD-scannable).
struct ScanFilter {
  std::uint16_t attr = 0;
  CmpOp op = CmpOp::kGt;
  Value constant;
};

/// Predicate on a dimension column, reached through a matrix FK attribute
/// (e.g. "t.type = X AND a.subscription_type = t.id"). Resolved at compile
/// time into a set of matching FK values, since dimension tables are small,
/// static and replicated (paper §3.4).
struct DimFilter {
  std::uint16_t fk_attr = 0;    // matrix attribute holding the FK
  std::uint16_t dim_table = 0;  // DimensionCatalog id
  std::uint16_t dim_column = 0;
  CmpOp op = CmpOp::kEq;
  std::uint32_t constant = 0;  // numeric columns
  std::string str_constant;    // string columns (equality only)
};

/// GROUP BY target: a matrix attribute, or a dimension column via FK join.
struct GroupBy {
  enum class Kind : std::uint8_t { kNone = 0, kMatrixAttr = 1, kDimColumn = 2 };
  Kind kind = Kind::kNone;
  std::uint16_t attr = 0;       // kMatrixAttr
  std::uint16_t fk_attr = 0;    // kDimColumn
  std::uint16_t dim_table = 0;  // kDimColumn
  std::uint16_t dim_column = 0;  // kDimColumn
};

/// Top-k target (Q6/Q7): report entities extremal in `attr` (or the ratio
/// attr/den_attr, skipping records with a zero denominator).
struct TopKTarget {
  std::uint16_t attr = 0;
  std::uint16_t den_attr = kInvalidAttr;  // kInvalidAttr: plain attribute
  bool ascending = false;                 // false = largest first
};

/// An RTA query. Shape: SELECT <select...> FROM AnalyticsMatrix [join dims]
/// WHERE <where AND dim_where> [GROUP BY <group_by>] [LIMIT limit], or the
/// top-k form. Serializable, since RTA front-ends ship queries to every
/// storage node.
struct Query {
  enum class Kind : std::uint8_t { kAggregate = 0, kGroupBy = 1, kTopK = 2 };

  std::uint32_t id = 0;
  Kind kind = Kind::kAggregate;
  std::vector<SelectItem> select;
  std::vector<ScanFilter> where;
  std::vector<DimFilter> dim_where;
  GroupBy group_by;
  std::uint32_t limit = 0;  // 0 = unlimited (group-by rows)

  std::vector<TopKTarget> topk;
  std::uint32_t k = 1;                       // results per top-k target
  std::uint16_t entity_attr = kInvalidAttr;  // entity-id column for top-k

  void Serialize(BinaryWriter* w) const;
  static StatusOr<Query> Deserialize(BinaryReader* r);

  std::string ToString(const Schema* schema) const;
};

/// Fluent builder for queries, mirroring the SQL in Table 5 of the paper:
///
///   Query q = QueryBuilder(schema).Select(AggOp::kAvg, "total_duration_w")
///                .Where("local_calls_w", CmpOp::kGt, Value::Int32(2))
///                .Build();
class QueryBuilder {
 public:
  explicit QueryBuilder(const Schema* schema) : schema_(schema) {}

  QueryBuilder& WithId(std::uint32_t id);
  QueryBuilder& SelectCount();
  QueryBuilder& Select(AggOp op, const std::string& attr);
  QueryBuilder& SelectSumRatio(const std::string& num, const std::string& den);
  QueryBuilder& Where(const std::string& attr, CmpOp op, const Value& v);
  QueryBuilder& WhereDim(const std::string& fk_attr, std::uint16_t dim_table,
                         std::uint16_t dim_column, CmpOp op,
                         std::uint32_t constant);
  QueryBuilder& WhereDimLabel(const std::string& fk_attr,
                              std::uint16_t dim_table,
                              std::uint16_t dim_column,
                              const std::string& label);
  QueryBuilder& GroupByAttr(const std::string& attr);
  QueryBuilder& GroupByDim(const std::string& fk_attr,
                           std::uint16_t dim_table, std::uint16_t dim_column);
  QueryBuilder& Limit(std::uint32_t limit);
  QueryBuilder& TopK(const std::string& attr, bool ascending,
                     std::uint32_t k = 1);
  QueryBuilder& TopKRatio(const std::string& num, const std::string& den,
                          bool ascending, std::uint32_t k = 1);
  QueryBuilder& WithEntityAttr(const std::string& attr);

  /// Returns kInvalidArgument if any attribute name did not resolve.
  StatusOr<Query> Build();

 private:
  std::uint16_t Resolve(const std::string& name);

  const Schema* schema_;
  Query query_;
  bool failed_ = false;
  std::string error_;
};

}  // namespace aim

#endif  // AIM_RTA_QUERY_H_
