#include "aim/rta/parallel_scan.h"

#include <utility>

namespace aim {

StatusOr<std::vector<PartialResult>> ParallelSharedScan::Execute(
    const ColumnMap& main, const Schema* schema, const DimensionCatalog* dims,
    const std::vector<Query>& batch, const Options& options,
    std::vector<std::uint32_t>* chunks_per_worker) {
  if (options.num_threads == 0 || options.chunk_buckets == 0) {
    return Status::InvalidArgument("bad parallel scan options");
  }

  std::vector<CompiledQuery> prototype;
  prototype.reserve(batch.size());
  for (const Query& q : batch) {
    StatusOr<CompiledQuery> cq = CompiledQuery::Compile(q, schema, dims);
    if (!cq.ok()) {
      return Status::InvalidArgument("query failed to compile");
    }
    prototype.push_back(std::move(cq).value());
  }

  ScanPool* pool = options.pool != nullptr ? options.pool : ScanPool::Shared();
  ScanPool::ScanOptions scan_options;
  scan_options.morsel_buckets = options.chunk_buckets;

  std::vector<PartialResult> merged;
  const ScanPool::ScanStats stats =
      pool->ScanPartition(main, prototype, scan_options, &merged);

  if (chunks_per_worker != nullptr) *chunks_per_worker = stats.per_executor;
  return merged;
}

}  // namespace aim
