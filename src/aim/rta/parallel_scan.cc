#include "aim/rta/parallel_scan.h"

#include <algorithm>
#include <atomic>
#include <thread>

namespace aim {

StatusOr<std::vector<PartialResult>> ParallelSharedScan::Execute(
    const ColumnMap& main, const Schema* schema, const DimensionCatalog* dims,
    const std::vector<Query>& batch, const Options& options,
    std::vector<std::uint32_t>* chunks_per_worker) {
  if (options.num_threads == 0 || options.chunk_buckets == 0) {
    return Status::InvalidArgument("bad parallel scan options");
  }
  const std::uint32_t num_buckets = main.num_buckets();
  const std::uint32_t num_chunks =
      (num_buckets + options.chunk_buckets - 1) / options.chunk_buckets;

  std::atomic<std::uint32_t> cursor{0};
  // partials[worker][query]
  std::vector<std::vector<PartialResult>> partials(options.num_threads);
  std::vector<std::uint32_t> chunk_counts(options.num_threads, 0);
  std::atomic<bool> compile_failed{false};

  auto worker_fn = [&](std::uint32_t worker) {
    // Every worker compiles its own batch copy (compiled queries carry
    // mutable execution state).
    std::vector<CompiledQuery> compiled;
    compiled.reserve(batch.size());
    for (const Query& q : batch) {
      StatusOr<CompiledQuery> cq = CompiledQuery::Compile(q, schema, dims);
      if (!cq.ok()) {
        compile_failed.store(true, std::memory_order_release);
        return;
      }
      compiled.push_back(std::move(cq).value());
    }
    ScanScratch scratch;
    while (true) {
      // relaxed: the ticket value alone partitions the work; workers read
      // only immutable scan inputs, published before thread start.
      const std::uint32_t chunk =
          cursor.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= num_chunks) break;
      chunk_counts[worker]++;
      const std::uint32_t first = chunk * options.chunk_buckets;
      const std::uint32_t last =
          std::min(first + options.chunk_buckets, num_buckets);
      for (std::uint32_t b = first; b < last; ++b) {
        const ColumnMap::BucketRef bucket = main.bucket(b);
        for (CompiledQuery& cq : compiled) {
          cq.ProcessBucket(main, bucket, &scratch);
        }
      }
    }
    partials[worker].reserve(compiled.size());
    for (CompiledQuery& cq : compiled) {
      partials[worker].push_back(cq.TakePartial());
    }
  };

  std::vector<std::thread> threads;
  for (std::uint32_t w = 1; w < options.num_threads; ++w) {
    threads.emplace_back(worker_fn, w);
  }
  worker_fn(0);  // the calling thread participates
  for (std::thread& t : threads) t.join();

  if (compile_failed.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("query failed to compile");
  }

  std::vector<PartialResult> merged(batch.size());
  for (std::size_t q = 0; q < batch.size(); ++q) {
    bool first = true;
    for (std::uint32_t w = 0; w < options.num_threads; ++w) {
      if (partials[w].size() <= q) continue;  // worker bailed early
      if (first) {
        merged[q] = std::move(partials[w][q]);
        first = false;
      } else {
        merged[q].MergeFrom(partials[w][q], batch[q]);
      }
    }
  }
  if (chunks_per_worker != nullptr) *chunks_per_worker = chunk_counts;
  return merged;
}

}  // namespace aim
