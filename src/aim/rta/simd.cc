#include "aim/rta/simd.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "aim/rta/simd_internal.h"

namespace aim {
namespace simd {

using internal::KernelTable;
using internal::TypeIndex;

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool ParseSimdLevel(const char* name, SimdLevel* out) {
  if (name == nullptr) return false;
  if (std::strcmp(name, "scalar") == 0) {
    *out = SimdLevel::kScalar;
    return true;
  }
  if (std::strcmp(name, "avx2") == 0) {
    *out = SimdLevel::kAvx2;
    return true;
  }
  if (std::strcmp(name, "avx512") == 0) {
    *out = SimdLevel::kAvx512;
    return true;
  }
  return false;
}

namespace {

SimdLevel DetectMaxLevel() {
#if defined(__x86_64__) || defined(__i386__)
  // A tier counts only when its kernels are compiled in AND the CPU can run
  // them; the AVX-512 tier needs the full F+BW+DQ+VL set its TU is built
  // with (BW/VL for the mask<->byte moves, DQ for 64-bit compares).
  if (internal::Avx512Kernels() != nullptr &&
      __builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512bw") &&
      __builtin_cpu_supports("avx512dq") &&
      __builtin_cpu_supports("avx512vl")) {
    return SimdLevel::kAvx512;
  }
  if (internal::Avx2Kernels() != nullptr && __builtin_cpu_supports("avx2")) {
    return SimdLevel::kAvx2;
  }
#endif
  return SimdLevel::kScalar;
}

SimdLevel ClampToSupported(SimdLevel level, SimdLevel max) {
  return static_cast<int>(level) > static_cast<int>(max) ? max : level;
}

struct LevelState {
  SimdLevel max;
  std::atomic<int> active;
};

LevelState& State() {
  static LevelState state = [] {
    const SimdLevel max = DetectMaxLevel();
    SimdLevel active = max;
    if (const char* env = std::getenv("AIM_SIMD_LEVEL")) {
      SimdLevel requested;
      if (ParseSimdLevel(env, &requested)) {
        active = ClampToSupported(requested, max);
      } else {
        std::fprintf(stderr,
                     "AIM_SIMD_LEVEL=%s not recognized "
                     "(scalar|avx2|avx512); using %s\n",
                     env, SimdLevelName(active));
      }
    }
    return LevelState{max, {static_cast<int>(active)}};
  }();
  return state;
}

}  // namespace

SimdLevel MaxSupportedLevel() { return State().max; }

SimdLevel ActiveLevel() {
  // relaxed: the level is configuration, not synchronization — kernels
  // reached through any tier read only immutable tables and caller data.
  return static_cast<SimdLevel>(State().active.load(std::memory_order_relaxed));
}

SimdLevel SetLevel(SimdLevel level) {
  LevelState& s = State();
  const SimdLevel clamped = ClampToSupported(level, s.max);
  // relaxed: see ActiveLevel.
  s.active.store(static_cast<int>(clamped), std::memory_order_relaxed);
  return clamped;
}

bool HasAvx2() { return ActiveLevel() >= SimdLevel::kAvx2; }
bool HasAvx512() { return ActiveLevel() >= SimdLevel::kAvx512; }

namespace internal {

const KernelTable* ActiveTable() {
  switch (ActiveLevel()) {
    case SimdLevel::kAvx512:
      return Avx512Kernels();
    case SimdLevel::kAvx2:
      return Avx2Kernels();
    case SimdLevel::kScalar:
      break;
  }
  return nullptr;
}

}  // namespace internal

void FilterColumnScalar(ValueType type, const std::uint8_t* column,
                        std::uint32_t count, CmpOp op, const Value& constant,
                        std::uint8_t* mask, bool combine_and) {
  using internal::ConstantAs;
  using internal::FilterScalarT;
  switch (type) {
    case ValueType::kInt32:
      FilterScalarT(reinterpret_cast<const std::int32_t*>(column), count, op,
                    ConstantAs<std::int32_t>(constant), mask, combine_and);
      break;
    case ValueType::kUInt32:
      FilterScalarT(reinterpret_cast<const std::uint32_t*>(column), count, op,
                    ConstantAs<std::uint32_t>(constant), mask, combine_and);
      break;
    case ValueType::kInt64:
      FilterScalarT(reinterpret_cast<const std::int64_t*>(column), count, op,
                    ConstantAs<std::int64_t>(constant), mask, combine_and);
      break;
    case ValueType::kUInt64:
      FilterScalarT(reinterpret_cast<const std::uint64_t*>(column), count, op,
                    ConstantAs<std::uint64_t>(constant), mask, combine_and);
      break;
    case ValueType::kFloat:
      FilterScalarT(reinterpret_cast<const float*>(column), count, op,
                    ConstantAs<float>(constant), mask, combine_and);
      break;
    case ValueType::kDouble:
      FilterScalarT(reinterpret_cast<const double*>(column), count, op,
                    ConstantAs<double>(constant), mask, combine_and);
      break;
  }
}

void FilterColumn(ValueType type, const std::uint8_t* column,
                  std::uint32_t count, CmpOp op, const Value& constant,
                  std::uint8_t* mask, bool combine_and) {
  if (const KernelTable* t = internal::ActiveTable()) {
    if (internal::FilterFn fn = t->filter[TypeIndex(type)]) {
      fn(column, count, op, constant, mask, combine_and);
      return;
    }
  }
  FilterColumnScalar(type, column, count, op, constant, mask, combine_and);
}

void MaskOr(std::uint8_t* mask, const std::uint8_t* other,
            std::uint32_t count) {
  for (std::uint32_t i = 0; i < count; ++i) mask[i] |= other[i];
}

std::uint32_t CountMask(const std::uint8_t* mask, std::uint32_t count) {
  if (const KernelTable* t = internal::ActiveTable()) {
    if (t->count_mask != nullptr) return t->count_mask(mask, count);
  }
  std::uint32_t n = 0;
  std::uint32_t i = 0;
  // Byte mask values are 0x00/0xff: popcount of 8 bytes at once / 8 bits.
  for (; i + 8 <= count; i += 8) {
    std::uint64_t w;
    std::memcpy(&w, mask + i, 8);
    n += static_cast<std::uint32_t>(__builtin_popcountll(w)) / 8;
  }
  for (; i < count; ++i) n += mask[i] != 0;
  return n;
}

void FillMask(std::uint8_t* mask, std::uint32_t count) {
  std::memset(mask, 0xff, count);
}

void MaskedAggregateScalar(ValueType type, const std::uint8_t* column,
                           const std::uint8_t* mask, std::uint32_t count,
                           AggAccum* acc) {
  using internal::MaskedAggScalarT;
  switch (type) {
    case ValueType::kInt32:
      MaskedAggScalarT(reinterpret_cast<const std::int32_t*>(column), mask,
                       count, acc);
      break;
    case ValueType::kUInt32:
      MaskedAggScalarT(reinterpret_cast<const std::uint32_t*>(column), mask,
                       count, acc);
      break;
    case ValueType::kInt64:
      MaskedAggScalarT(reinterpret_cast<const std::int64_t*>(column), mask,
                       count, acc);
      break;
    case ValueType::kUInt64:
      MaskedAggScalarT(reinterpret_cast<const std::uint64_t*>(column), mask,
                       count, acc);
      break;
    case ValueType::kFloat:
      MaskedAggScalarT(reinterpret_cast<const float*>(column), mask, count,
                       acc);
      break;
    case ValueType::kDouble:
      MaskedAggScalarT(reinterpret_cast<const double*>(column), mask, count,
                       acc);
      break;
  }
}

void MaskedAggregate(ValueType type, const std::uint8_t* column,
                     const std::uint8_t* mask, std::uint32_t count,
                     AggAccum* acc) {
  if (const KernelTable* t = internal::ActiveTable()) {
    if (internal::AggFn fn = t->agg[TypeIndex(type)]) {
      fn(column, mask, count, acc);
      return;
    }
  }
  MaskedAggregateScalar(type, column, mask, count, acc);
}

}  // namespace simd
}  // namespace aim
