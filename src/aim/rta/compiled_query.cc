#include "aim/rta/compiled_query.h"

#include <algorithm>

#include "aim/common/logging.h"

namespace aim {

namespace {

/// Loads one column value as double (group-by keys, top-k values).
inline double LoadDouble(ValueType t, const std::uint8_t* col,
                         std::uint32_t idx) {
  switch (t) {
    case ValueType::kInt32: {
      std::int32_t v;
      std::memcpy(&v, col + idx * 4u, 4);
      return v;
    }
    case ValueType::kUInt32: {
      std::uint32_t v;
      std::memcpy(&v, col + idx * 4u, 4);
      return v;
    }
    case ValueType::kInt64: {
      std::int64_t v;
      std::memcpy(&v, col + idx * 8u, 8);
      return static_cast<double>(v);
    }
    case ValueType::kUInt64: {
      std::uint64_t v;
      std::memcpy(&v, col + idx * 8u, 8);
      return static_cast<double>(v);
    }
    case ValueType::kFloat: {
      float v;
      std::memcpy(&v, col + idx * 4u, 4);
      return v;
    }
    case ValueType::kDouble: {
      double v;
      std::memcpy(&v, col + idx * 8u, 8);
      return v;
    }
  }
  return 0.0;
}

/// Loads one column value as a u64 group key (sign-extended for ints so
/// ordering by key stays sensible for non-negative values).
inline std::uint64_t LoadKey(ValueType t, const std::uint8_t* col,
                             std::uint32_t idx) {
  switch (t) {
    case ValueType::kInt32: {
      std::int32_t v;
      std::memcpy(&v, col + idx * 4u, 4);
      return static_cast<std::uint64_t>(static_cast<std::int64_t>(v));
    }
    case ValueType::kUInt32: {
      std::uint32_t v;
      std::memcpy(&v, col + idx * 4u, 4);
      return v;
    }
    case ValueType::kInt64:
    case ValueType::kUInt64: {
      std::uint64_t v;
      std::memcpy(&v, col + idx * 8u, 8);
      return v;
    }
    case ValueType::kFloat: {
      // Group floats by bit pattern (exact-value grouping).
      std::uint32_t v;
      std::memcpy(&v, col + idx * 4u, 4);
      return v;
    }
    case ValueType::kDouble: {
      std::uint64_t v;
      std::memcpy(&v, col + idx * 8u, 8);
      return v;
    }
  }
  return 0;
}

bool CmpU32(CmpOp op, std::uint32_t lhs, std::uint32_t rhs) {
  switch (op) {
    case CmpOp::kLt:
      return lhs < rhs;
    case CmpOp::kLe:
      return lhs <= rhs;
    case CmpOp::kGt:
      return lhs > rhs;
    case CmpOp::kGe:
      return lhs >= rhs;
    case CmpOp::kEq:
      return lhs == rhs;
    case CmpOp::kNe:
      return lhs != rhs;
  }
  return false;
}

}  // namespace

StatusOr<CompiledQuery> CompiledQuery::Compile(const Query& query,
                                               const Schema* schema,
                                               const DimensionCatalog* dims) {
  CompiledQuery cq;
  cq.query_ = query;
  cq.schema_ = schema;
  cq.dims_ = dims;

  // WHERE predicates on matrix columns.
  for (const ScanFilter& f : query.where) {
    if (f.attr >= schema->num_attributes()) {
      return Status::InvalidArgument("filter attribute out of range");
    }
    cq.filters_.push_back(ColumnFilter{
        f.attr, schema->attribute(f.attr).type, f.op, f.constant});
  }

  // Dimension predicates -> FK membership sets. Several predicates through
  // the same FK intersect into one set.
  for (const DimFilter& f : query.dim_where) {
    if (dims == nullptr || f.dim_table >= dims->num_tables()) {
      return Status::InvalidArgument("unknown dimension table");
    }
    const DimensionTable& table = dims->table(f.dim_table);
    if (f.dim_column >= table.num_columns()) {
      return Status::InvalidArgument("unknown dimension column");
    }
    if (f.fk_attr >= schema->num_attributes() ||
        schema->attribute(f.fk_attr).type != ValueType::kUInt32) {
      return Status::InvalidArgument("dim FK must be a uint32 attribute");
    }
    std::unordered_set<std::uint32_t> matching;
    const bool is_string =
        table.column_type(f.dim_column) == DimensionTable::ColumnType::kString;
    for (std::uint32_t row = 0; row < table.num_rows(); ++row) {
      bool pass;
      if (is_string) {
        if (f.op != CmpOp::kEq && f.op != CmpOp::kNe) {
          return Status::InvalidArgument(
              "string dim predicates support ==/!= only");
        }
        const bool eq = table.string_value(row, f.dim_column) ==
                        f.str_constant;
        pass = (f.op == CmpOp::kEq) ? eq : !eq;
      } else {
        pass = CmpU32(f.op, table.u32_value(row, f.dim_column), f.constant);
      }
      if (pass) {
        matching.insert(static_cast<std::uint32_t>(table.row_key(row)));
      }
    }
    // Intersect with an existing set on the same FK, if any.
    bool merged = false;
    for (FkSetFilter& existing : cq.fk_filters_) {
      if (existing.attr == f.fk_attr) {
        std::erase_if(existing.matching, [&](std::uint32_t v) {
          return matching.find(v) == matching.end();
        });
        merged = true;
        break;
      }
    }
    if (!merged) {
      cq.fk_filters_.push_back(FkSetFilter{f.fk_attr, std::move(matching)});
    }
  }

  // Aggregate slots.
  std::uint32_t slot = 0;
  for (const SelectItem& s : query.select) {
    const bool count_star = s.attr == kInvalidAttr && s.op == AggOp::kCount;
    if (!count_star && s.attr >= schema->num_attributes()) {
      return Status::InvalidArgument("aggregate over invalid attribute");
    }
    const ValueType t =
        count_star ? ValueType::kInt32 : schema->attribute(s.attr).type;
    cq.agg_slots_.push_back(
        AggSlot{slot++, count_star ? kInvalidAttr : s.attr, t});
    if (s.is_sum_ratio) {
      if (s.den_attr >= schema->num_attributes()) {
        return Status::InvalidArgument("ratio denominator out of range");
      }
      cq.agg_slots_.push_back(AggSlot{slot++, s.den_attr,
                                      schema->attribute(s.den_attr).type});
    }
  }
  cq.num_slots_ = slot;

  // GROUP BY.
  if (query.group_by.kind == GroupBy::Kind::kMatrixAttr) {
    if (query.group_by.attr >= schema->num_attributes()) {
      return Status::InvalidArgument("group-by attribute out of range");
    }
    cq.group_attr_ = query.group_by.attr;
    cq.group_attr_type_ = schema->attribute(cq.group_attr_).type;
  } else if (query.group_by.kind == GroupBy::Kind::kDimColumn) {
    if (dims == nullptr || query.group_by.dim_table >= dims->num_tables()) {
      return Status::InvalidArgument("unknown group-by dimension table");
    }
    const DimensionTable& table = dims->table(query.group_by.dim_table);
    cq.group_by_dim_ = true;
    cq.group_fk_attr_ = query.group_by.fk_attr;
    if (cq.group_fk_attr_ >= schema->num_attributes() ||
        schema->attribute(cq.group_fk_attr_).type != ValueType::kUInt32) {
      return Status::InvalidArgument("group-by FK must be uint32");
    }
    for (std::uint32_t row = 0; row < table.num_rows(); ++row) {
      cq.fk_to_group_.emplace(
          static_cast<std::uint32_t>(table.row_key(row)),
          table.GroupKey(row, query.group_by.dim_column));
    }
  }

  // Top-k sanity.
  if (query.kind == Query::Kind::kTopK) {
    for (const TopKTarget& t : query.topk) {
      if (t.attr >= schema->num_attributes() ||
          (t.den_attr != kInvalidAttr &&
           t.den_attr >= schema->num_attributes())) {
        return Status::InvalidArgument("top-k attribute out of range");
      }
    }
    if (query.entity_attr >= schema->num_attributes()) {
      return Status::InvalidArgument("top-k entity attribute out of range");
    }
  }

  cq.Reset();
  return cq;
}

void CompiledQuery::Reset() {
  partial_ = PartialResult{};
  partial_.query_id = query_.id;
  group_index_.clear();
  topk_state_.assign(query_.topk.size(), TopKState{});
}

PartialResult::Group* CompiledQuery::GroupFor(std::uint64_t key) {
  auto [it, inserted] = group_index_.emplace(
      key, static_cast<std::uint32_t>(partial_.groups.size()));
  if (inserted) {
    PartialResult::Group g;
    g.key = key;
    g.slots.assign(num_slots_, simd::AggAccum{});
    partial_.groups.push_back(std::move(g));
  }
  return &partial_.groups[it->second];
}

void CompiledQuery::ProcessBucket(const ColumnMap& map,
                                  const ColumnMap::BucketRef& bucket,
                                  ScanScratch* scratch) {
  const std::uint32_t count = bucket.count;
  if (count == 0) return;
  std::uint8_t* mask = scratch->MaskFor(count);

  // Selection: SIMD column filters, then FK membership filters.
  if (filters_.empty()) {
    simd::FillMask(mask, count);
  } else {
    for (std::size_t i = 0; i < filters_.size(); ++i) {
      const ColumnFilter& f = filters_[i];
      simd::FilterColumn(f.type, bucket.Column(map, f.attr), count, f.op,
                         f.constant, mask, /*combine_and=*/i > 0);
    }
  }
  for (const FkSetFilter& f : fk_filters_) {
    const std::uint8_t* col = bucket.Column(map, f.attr);
    for (std::uint32_t i = 0; i < count; ++i) {
      if (mask[i] == 0) continue;
      std::uint32_t fk;
      std::memcpy(&fk, col + i * 4u, 4);
      if (f.matching.find(fk) == f.matching.end()) mask[i] = 0;
    }
  }

  switch (query_.kind) {
    case Query::Kind::kAggregate:
      AggregateBucket(map, bucket, mask, count);
      break;
    case Query::Kind::kGroupBy:
      GroupByBucket(map, bucket, mask, count);
      break;
    case Query::Kind::kTopK:
      TopKBucket(map, bucket, mask, count);
      break;
  }
}

void CompiledQuery::AggregateBucket(const ColumnMap& map,
                                    const ColumnMap::BucketRef& bucket,
                                    const std::uint8_t* mask,
                                    std::uint32_t count) {
  PartialResult::Group* g = GroupFor(0);
  for (const AggSlot& slot : agg_slots_) {
    simd::AggAccum* acc = &g->slots[slot.slot];
    if (slot.attr == kInvalidAttr) {
      acc->count += simd::CountMask(mask, count);  // COUNT(*)
      continue;
    }
    simd::MaskedAggregate(slot.type, bucket.Column(map, slot.attr), mask,
                          count, acc);
  }
}

void CompiledQuery::GroupByBucket(const ColumnMap& map,
                                  const ColumnMap::BucketRef& bucket,
                                  const std::uint8_t* mask,
                                  std::uint32_t count) {
  const std::uint8_t* key_col =
      group_by_dim_ ? bucket.Column(map, group_fk_attr_)
                    : bucket.Column(map, group_attr_);

  // Pre-resolve aggregate columns for the scalar per-record loop.
  struct ColPtr {
    const std::uint8_t* data;
    ValueType type;
    std::uint32_t slot;
    bool is_count_star;
  };
  std::vector<ColPtr> cols;
  cols.reserve(agg_slots_.size());
  for (const AggSlot& slot : agg_slots_) {
    cols.push_back(ColPtr{
        slot.attr == kInvalidAttr ? nullptr : bucket.Column(map, slot.attr),
        slot.type, slot.slot, slot.attr == kInvalidAttr});
  }

  for (std::uint32_t i = 0; i < count; ++i) {
    if (mask[i] == 0) continue;
    std::uint64_t key;
    if (group_by_dim_) {
      std::uint32_t fk;
      std::memcpy(&fk, key_col + i * 4u, 4);
      auto it = fk_to_group_.find(fk);
      if (it == fk_to_group_.end()) continue;  // inner join: no dim row
      key = it->second;
    } else {
      key = LoadKey(group_attr_type_, key_col, i);
    }
    PartialResult::Group* g = GroupFor(key);
    for (const ColPtr& c : cols) {
      simd::AggAccum& acc = g->slots[c.slot];
      if (c.is_count_star) {
        acc.count++;
        continue;
      }
      const double v = LoadDouble(c.type, c.data, i);
      acc.sum += v;
      if (v < acc.min) acc.min = v;
      if (v > acc.max) acc.max = v;
      acc.count++;
    }
  }
}

void CompiledQuery::TopKBucket(const ColumnMap& map,
                               const ColumnMap::BucketRef& bucket,
                               const std::uint8_t* mask,
                               std::uint32_t count) {
  const std::uint8_t* entity_col = bucket.Column(map, query_.entity_attr);
  const ValueType entity_type = schema_->attribute(query_.entity_attr).type;

  for (std::size_t t = 0; t < query_.topk.size(); ++t) {
    const TopKTarget& target = query_.topk[t];
    TopKState& state = topk_state_[t];
    const std::uint8_t* num_col = bucket.Column(map, target.attr);
    const ValueType num_type = schema_->attribute(target.attr).type;
    const std::uint8_t* den_col =
        target.den_attr == kInvalidAttr ? nullptr
                                        : bucket.Column(map, target.den_attr);
    const ValueType den_type = target.den_attr == kInvalidAttr
                                   ? ValueType::kFloat
                                   : schema_->attribute(target.den_attr).type;

    for (std::uint32_t i = 0; i < count; ++i) {
      if (mask[i] == 0) continue;
      double v = LoadDouble(num_type, num_col, i);
      if (den_col != nullptr) {
        const double den = LoadDouble(den_type, den_col, i);
        if (den == 0.0) continue;  // undefined ratio: skip record
        v /= den;
      }
      TopKEntry entry;
      entry.entity = LoadKey(entity_type, entity_col, i);
      entry.value = v;
      state.entries.push_back(entry);
      // Trim lazily to bound memory: keep 4x k candidates between trims.
      if (state.entries.size() >= static_cast<std::size_t>(query_.k) * 4 + 16) {
        const bool asc = target.ascending;
        std::nth_element(state.entries.begin(),
                         state.entries.begin() + query_.k - 1,
                         state.entries.end(),
                         [asc](const TopKEntry& a, const TopKEntry& b) {
                           return asc ? a.value < b.value : a.value > b.value;
                         });
        state.entries.resize(query_.k);
      }
    }
  }
}

PartialResult CompiledQuery::TakePartial() {
  // Final trim + sort of top-k candidates.
  partial_.topk.clear();
  for (std::size_t t = 0; t < topk_state_.size(); ++t) {
    auto& entries = topk_state_[t].entries;
    const bool asc = query_.topk[t].ascending;
    std::sort(entries.begin(), entries.end(),
              [asc](const TopKEntry& a, const TopKEntry& b) {
                return asc ? a.value < b.value : a.value > b.value;
              });
    if (entries.size() > query_.k) entries.resize(query_.k);
    partial_.topk.push_back(std::move(entries));
  }
  PartialResult out = std::move(partial_);
  Reset();
  return out;
}

}  // namespace aim
