#include "aim/rta/query.h"

#include <cstdio>

namespace aim {

const char* AggOpName(AggOp op) {
  switch (op) {
    case AggOp::kCount:
      return "COUNT";
    case AggOp::kSum:
      return "SUM";
    case AggOp::kMin:
      return "MIN";
    case AggOp::kMax:
      return "MAX";
    case AggOp::kAvg:
      return "AVG";
  }
  return "?";
}

namespace {

void SerializeValue(BinaryWriter* w, const Value& v) {
  w->PutU8(static_cast<std::uint8_t>(v.type()));
  w->PutU64(v.type() == ValueType::kDouble || v.type() == ValueType::kFloat
                ? [&] {
                    double d = v.AsDouble();
                    std::uint64_t bits;
                    std::memcpy(&bits, &d, 8);
                    return bits;
                  }()
                : static_cast<std::uint64_t>(v.AsInt64()));
}

Value DeserializeValue(BinaryReader* r) {
  const std::uint8_t raw_type = r->GetU8();
  const std::uint64_t bits = r->GetU64();
  if (raw_type >= kNumValueTypes) {
    r->Fail();  // unknown type tag: poison the reader like any short read
    return Value();
  }
  const ValueType t = static_cast<ValueType>(raw_type);
  switch (t) {
    case ValueType::kInt32:
      return Value::Int32(static_cast<std::int32_t>(bits));
    case ValueType::kUInt32:
      return Value::UInt32(static_cast<std::uint32_t>(bits));
    case ValueType::kInt64:
      return Value::Int64(static_cast<std::int64_t>(bits));
    case ValueType::kUInt64:
      return Value::UInt64(bits);
    case ValueType::kFloat: {
      double d;
      std::memcpy(&d, &bits, 8);
      return Value::Float(static_cast<float>(d));
    }
    case ValueType::kDouble: {
      double d;
      std::memcpy(&d, &bits, 8);
      return Value::Double(d);
    }
  }
  return Value();
}

}  // namespace

void Query::Serialize(BinaryWriter* w) const {
  w->PutU32(id);
  w->PutU8(static_cast<std::uint8_t>(kind));

  w->PutU32(static_cast<std::uint32_t>(select.size()));
  for (const SelectItem& s : select) {
    w->PutU8(static_cast<std::uint8_t>(s.op));
    w->PutU16(s.attr);
    w->PutU8(s.is_sum_ratio ? 1 : 0);
    w->PutU16(s.den_attr);
  }

  w->PutU32(static_cast<std::uint32_t>(where.size()));
  for (const ScanFilter& f : where) {
    w->PutU16(f.attr);
    w->PutU8(static_cast<std::uint8_t>(f.op));
    SerializeValue(w, f.constant);
  }

  w->PutU32(static_cast<std::uint32_t>(dim_where.size()));
  for (const DimFilter& f : dim_where) {
    w->PutU16(f.fk_attr);
    w->PutU16(f.dim_table);
    w->PutU16(f.dim_column);
    w->PutU8(static_cast<std::uint8_t>(f.op));
    w->PutU32(f.constant);
    w->PutString(f.str_constant);
  }

  w->PutU8(static_cast<std::uint8_t>(group_by.kind));
  w->PutU16(group_by.attr);
  w->PutU16(group_by.fk_attr);
  w->PutU16(group_by.dim_table);
  w->PutU16(group_by.dim_column);
  w->PutU32(limit);

  w->PutU32(static_cast<std::uint32_t>(topk.size()));
  for (const TopKTarget& t : topk) {
    w->PutU16(t.attr);
    w->PutU16(t.den_attr);
    w->PutU8(t.ascending ? 1 : 0);
  }
  w->PutU32(k);
  w->PutU16(entity_attr);
}

namespace {

/// Reads a one-byte enum tag, poisoning the reader when the wire value is
/// outside [0, max]. Out-of-range tags would otherwise flow into switches
/// downstream (query compilation, scan dispatch) as unnameable enum values.
template <typename E>
E GetEnum8(BinaryReader* r, E max) {
  const std::uint8_t raw = r->GetU8();
  if (raw > static_cast<std::uint8_t>(max)) r->Fail();
  return static_cast<E>(r->ok() ? raw : 0);
}

}  // namespace

StatusOr<Query> Query::Deserialize(BinaryReader* r) {
  Query q;
  q.id = r->GetU32();
  q.kind = GetEnum8(r, Kind::kTopK);

  // All element counts are validated against the remaining bytes before the
  // first element is read (GetCountU32 with the minimum encoded element
  // size), so a hostile count can neither loop nor pre-allocate.
  const std::uint32_t ns = r->GetCountU32(6);  // u8 + u16 + u8 + u16
  q.select.reserve(ns);
  for (std::uint32_t i = 0; i < ns && r->ok(); ++i) {
    SelectItem s;
    s.op = GetEnum8(r, AggOp::kAvg);
    s.attr = r->GetU16();
    s.is_sum_ratio = r->GetU8() != 0;
    s.den_attr = r->GetU16();
    q.select.push_back(s);
  }

  const std::uint32_t nw = r->GetCountU32(12);  // u16 + u8 + value(9)
  q.where.reserve(nw);
  for (std::uint32_t i = 0; i < nw && r->ok(); ++i) {
    ScanFilter f;
    f.attr = r->GetU16();
    f.op = GetEnum8(r, CmpOp::kNe);
    f.constant = DeserializeValue(r);
    q.where.push_back(f);
  }

  const std::uint32_t nd = r->GetCountU32(15);  // 3*u16 + u8 + u32 + string
  q.dim_where.reserve(nd);
  for (std::uint32_t i = 0; i < nd && r->ok(); ++i) {
    DimFilter f;
    f.fk_attr = r->GetU16();
    f.dim_table = r->GetU16();
    f.dim_column = r->GetU16();
    f.op = GetEnum8(r, CmpOp::kNe);
    f.constant = r->GetU32();
    f.str_constant = r->GetString();
    q.dim_where.push_back(std::move(f));
  }

  q.group_by.kind = GetEnum8(r, GroupBy::Kind::kDimColumn);
  q.group_by.attr = r->GetU16();
  q.group_by.fk_attr = r->GetU16();
  q.group_by.dim_table = r->GetU16();
  q.group_by.dim_column = r->GetU16();
  q.limit = r->GetU32();

  const std::uint32_t nt = r->GetCountU32(5);  // u16 + u16 + u8
  q.topk.reserve(nt);
  for (std::uint32_t i = 0; i < nt && r->ok(); ++i) {
    TopKTarget t;
    t.attr = r->GetU16();
    t.den_attr = r->GetU16();
    t.ascending = r->GetU8() != 0;
    q.topk.push_back(t);
  }
  q.k = r->GetU32();
  q.entity_attr = r->GetU16();

  if (!r->ok()) return Status::InvalidArgument("truncated query message");
  return q;
}

std::string Query::ToString(const Schema* schema) const {
  auto attr_name = [&](std::uint16_t a) -> std::string {
    if (schema != nullptr && a < schema->num_attributes()) {
      return schema->attribute(a).name;
    }
    return "attr#" + std::to_string(a);
  };
  std::string out = "SELECT ";
  if (kind == Kind::kTopK) {
    out += "TOP-" + std::to_string(k) + " ";
    for (std::size_t i = 0; i < topk.size(); ++i) {
      if (i > 0) out += ", ";
      out += attr_name(topk[i].attr);
      if (topk[i].den_attr != kInvalidAttr) {
        out += "/" + attr_name(topk[i].den_attr);
      }
      out += topk[i].ascending ? " ASC" : " DESC";
    }
  } else {
    for (std::size_t i = 0; i < select.size(); ++i) {
      if (i > 0) out += ", ";
      const SelectItem& s = select[i];
      if (s.op == AggOp::kCount && s.attr == kInvalidAttr) {
        out += "COUNT(*)";
      } else if (s.is_sum_ratio) {
        out += "SUM(" + attr_name(s.attr) + ")/SUM(" +
               attr_name(s.den_attr) + ")";
      } else {
        out += std::string(AggOpName(s.op)) + "(" + attr_name(s.attr) + ")";
      }
    }
  }
  out += " FROM AnalyticsMatrix";
  if (!where.empty() || !dim_where.empty()) {
    out += " WHERE ";
    bool first = true;
    for (const ScanFilter& f : where) {
      if (!first) out += " AND ";
      first = false;
      out += attr_name(f.attr) + " " + CmpOpName(f.op) + " " +
             f.constant.ToString();
    }
    for (const DimFilter& f : dim_where) {
      if (!first) out += " AND ";
      first = false;
      out += "dim[" + std::to_string(f.dim_table) + "." +
             std::to_string(f.dim_column) + " via " + attr_name(f.fk_attr) +
             "] " + CmpOpName(f.op) + " " +
             (f.str_constant.empty() ? std::to_string(f.constant)
                                     : f.str_constant);
    }
  }
  if (group_by.kind == GroupBy::Kind::kMatrixAttr) {
    out += " GROUP BY " + attr_name(group_by.attr);
  } else if (group_by.kind == GroupBy::Kind::kDimColumn) {
    out += " GROUP BY dim[" + std::to_string(group_by.dim_table) + "." +
           std::to_string(group_by.dim_column) + "]";
  }
  if (limit > 0) out += " LIMIT " + std::to_string(limit);
  return out;
}

// ---------------------------------------------------------------------------
// QueryBuilder
// ---------------------------------------------------------------------------

std::uint16_t QueryBuilder::Resolve(const std::string& name) {
  const std::uint16_t id = schema_->FindAttribute(name);
  if (id == kInvalidAttr && !failed_) {
    failed_ = true;
    error_ = "unknown attribute: " + name;
  }
  return id;
}

QueryBuilder& QueryBuilder::WithId(std::uint32_t id) {
  query_.id = id;
  return *this;
}

QueryBuilder& QueryBuilder::SelectCount() {
  query_.select.push_back(SelectItem::Count());
  return *this;
}

QueryBuilder& QueryBuilder::Select(AggOp op, const std::string& attr) {
  query_.select.push_back(SelectItem::Agg(op, Resolve(attr)));
  return *this;
}

QueryBuilder& QueryBuilder::SelectSumRatio(const std::string& num,
                                           const std::string& den) {
  query_.select.push_back(SelectItem::SumRatio(Resolve(num), Resolve(den)));
  return *this;
}

QueryBuilder& QueryBuilder::Where(const std::string& attr, CmpOp op,
                                  const Value& v) {
  query_.where.push_back(ScanFilter{Resolve(attr), op, v});
  return *this;
}

QueryBuilder& QueryBuilder::WhereDim(const std::string& fk_attr,
                                     std::uint16_t dim_table,
                                     std::uint16_t dim_column, CmpOp op,
                                     std::uint32_t constant) {
  DimFilter f;
  f.fk_attr = Resolve(fk_attr);
  f.dim_table = dim_table;
  f.dim_column = dim_column;
  f.op = op;
  f.constant = constant;
  query_.dim_where.push_back(std::move(f));
  return *this;
}

QueryBuilder& QueryBuilder::WhereDimLabel(const std::string& fk_attr,
                                          std::uint16_t dim_table,
                                          std::uint16_t dim_column,
                                          const std::string& label) {
  DimFilter f;
  f.fk_attr = Resolve(fk_attr);
  f.dim_table = dim_table;
  f.dim_column = dim_column;
  f.op = CmpOp::kEq;
  f.str_constant = label;
  query_.dim_where.push_back(std::move(f));
  return *this;
}

QueryBuilder& QueryBuilder::GroupByAttr(const std::string& attr) {
  query_.kind = Query::Kind::kGroupBy;
  query_.group_by.kind = GroupBy::Kind::kMatrixAttr;
  query_.group_by.attr = Resolve(attr);
  return *this;
}

QueryBuilder& QueryBuilder::GroupByDim(const std::string& fk_attr,
                                       std::uint16_t dim_table,
                                       std::uint16_t dim_column) {
  query_.kind = Query::Kind::kGroupBy;
  query_.group_by.kind = GroupBy::Kind::kDimColumn;
  query_.group_by.fk_attr = Resolve(fk_attr);
  query_.group_by.dim_table = dim_table;
  query_.group_by.dim_column = dim_column;
  return *this;
}

QueryBuilder& QueryBuilder::Limit(std::uint32_t limit) {
  query_.limit = limit;
  return *this;
}

QueryBuilder& QueryBuilder::TopK(const std::string& attr, bool ascending,
                                 std::uint32_t k) {
  query_.kind = Query::Kind::kTopK;
  query_.topk.push_back(TopKTarget{Resolve(attr), kInvalidAttr, ascending});
  query_.k = k;
  return *this;
}

QueryBuilder& QueryBuilder::TopKRatio(const std::string& num,
                                      const std::string& den, bool ascending,
                                      std::uint32_t k) {
  query_.kind = Query::Kind::kTopK;
  query_.topk.push_back(TopKTarget{Resolve(num), Resolve(den), ascending});
  query_.k = k;
  return *this;
}

QueryBuilder& QueryBuilder::WithEntityAttr(const std::string& attr) {
  query_.entity_attr = Resolve(attr);
  return *this;
}

StatusOr<Query> QueryBuilder::Build() {
  if (failed_) return Status::InvalidArgument(error_);
  if (query_.kind == Query::Kind::kTopK) {
    if (query_.entity_attr == kInvalidAttr) {
      return Status::InvalidArgument("top-k query needs WithEntityAttr()");
    }
    if (query_.topk.empty()) {
      return Status::InvalidArgument("top-k query has no targets");
    }
  } else if (query_.select.empty()) {
    return Status::InvalidArgument("query selects nothing");
  }
  for (const SelectItem& s : query_.select) {
    if (s.is_sum_ratio && s.den_attr == kInvalidAttr) {
      return Status::InvalidArgument("sum-ratio without denominator");
    }
  }
  return query_;
}

}  // namespace aim
