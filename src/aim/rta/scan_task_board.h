#ifndef AIM_RTA_SCAN_TASK_BOARD_H_
#define AIM_RTA_SCAN_TASK_BOARD_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "aim/common/annotated_mutex.h"
#include "aim/common/sync_provider.h"

namespace aim {

/// Work-distribution protocol of the scan pool (paper §3.2 morsel-driven
/// style): tasks are morsels of a *job* (one partition's scan step), dealt
/// round-robin onto per-worker deques; a worker pops its own deque from the
/// front and, when empty, steals from the back of the fullest victim —
/// owner and thief touch opposite ends, so a steal rarely collides with the
/// hot end of the deque. A job's completion is tracked by a countdown
/// ticket the submitting coordinator waits on; the pool stays up across
/// jobs (ScanPool is node-wide and persistent), only tickets come and go.
///
/// One mutex guards every deque. That is deliberate: the unit of work is a
/// morsel of several buckets (microseconds of scanning per acquire), so the
/// board is traversed a few hundred times per scan cycle, not millions —
/// lock-free Chase-Lev deques would buy nothing measurable here and cost
/// the exhaustive model-checking story (tests/mc/scan_pool_mc_test.cc runs
/// this exact class under the checker via the P parameter, like MpscQueue).
///
/// Completion signaling follows the MpscQueue notify-under-lock rule: the
/// final CompleteTask notifies done_cv_ while holding mu_, so a coordinator
/// that wakes in AwaitJob and immediately destroys its job/ticket cannot
/// free state the notifier is still touching.
///
/// Condvar waits are explicit predicate loops, not wait(lock, pred)
/// lambdas, for the same thread-safety-analysis reason as MpscQueue.
template <typename P = RealSyncProvider>
class ScanTaskBoard {
 public:
  /// Per-job countdown. `remaining` is armed by Distribute before any task
  /// is published and hits zero exactly when every task of the job has been
  /// Complete()d. `owner` carries the job context pointer for the executor.
  struct JobTicket {
    typename P::template Atomic<std::uint32_t> remaining{0};
    void* owner = nullptr;
  };

  /// One morsel: `seq` indexes the morsel within its job (the executor maps
  /// it to a bucket range).
  struct Task {
    JobTicket* job = nullptr;
    std::uint32_t seq = 0;
  };

  explicit ScanTaskBoard(std::size_t num_workers)
      : deques_(num_workers == 0 ? 1 : num_workers) {}

  ScanTaskBoard(const ScanTaskBoard&) = delete;
  ScanTaskBoard& operator=(const ScanTaskBoard&) = delete;

  std::size_t num_queues() const { return deques_.size(); }

  /// Publishes `num_tasks` morsels of `job`, dealt round-robin across the
  /// worker deques starting at `job->owner`-independent position 0. The
  /// ticket is armed before the first task becomes visible, so a worker
  /// can never complete a task of a ticket that still reads zero.
  void Distribute(JobTicket* job, std::uint32_t num_tasks) {
    // relaxed: armed before the tasks are published; the mutex release
    // below is what makes the tasks (and this store) visible to workers.
    job->remaining.store(num_tasks, std::memory_order_relaxed);
    if (num_tasks == 0) return;
    typename P::UniqueLock lock(mu_);
    for (std::uint32_t seq = 0; seq < num_tasks; ++seq) {
      deques_[seq % deques_.size()].push_back(Task{job, seq});
    }
    work_cv_.notify_all();
  }

  /// Blocking acquire for pool workers. Pops the front of the worker's own
  /// deque; if empty, steals from the back of the fullest other deque
  /// (incrementing `*stolen` if non-null); otherwise waits. Returns false
  /// only once the board is stopped and empty.
  bool AcquireTask(std::size_t worker, Task* out, std::uint64_t* stolen) {
    typename P::UniqueLock lock(mu_);
    for (;;) {
      if (PopLocked(worker, out, stolen)) return true;
      if (stopped_) return false;
      work_cv_.wait(lock);
    }
  }

  /// Non-blocking acquire restricted to tasks of `job`. Lets the submitting
  /// coordinator burn down its own job instead of idling in AwaitJob — and
  /// is the whole pool when the pool has zero workers. Scans every deque
  /// (coordinators have no own deque); returns false when no task of `job`
  /// is queued, which does NOT mean the job is done — workers may still be
  /// executing acquired tasks.
  bool AcquireJobTask(JobTicket* job, Task* out) {
    typename P::UniqueLock lock(mu_);
    for (auto& dq : deques_) {
      for (auto it = dq.begin(); it != dq.end(); ++it) {
        if (it->job == job) {
          *out = *it;
          dq.erase(it);
          return true;
        }
      }
    }
    return false;
  }

  /// Marks one task of `job` finished. The executor calls this after the
  /// morsel's results are written to its context. When the final task
  /// completes, waiters in AwaitJob are notified under mu_ (see header
  /// comment for why under the lock).
  void CompleteTask(JobTicket* job) {
    // release: pairs with the acquire load in AwaitJob — every context
    // write an executor made before CompleteTask happens-before the
    // coordinator's merge. The RMW release sequence extends this to all
    // executors, whichever one finishes last.
    if (job->remaining.fetch_sub(1, std::memory_order_release) == 1) {
      typename P::UniqueLock lock(mu_);
      done_cv_.notify_all();
    }
  }

  /// Blocks until every task of `job` has completed. No lost wakeup: the
  /// final CompleteTask notifies while holding mu_, so the counter cannot
  /// drop to zero between this predicate check and the wait.
  void AwaitJob(JobTicket* job) {
    typename P::UniqueLock lock(mu_);
    // acquire: pairs with the release fetch_sub in CompleteTask (see there).
    while (job->remaining.load(std::memory_order_acquire) != 0) {
      done_cv_.wait(lock);
    }
  }

  /// True once every task of `job` has completed (coordinator fast path).
  bool JobDone(JobTicket* job) const {
    // acquire: pairs with the release fetch_sub in CompleteTask.
    return job->remaining.load(std::memory_order_acquire) == 0;
  }

  /// Wakes all workers and makes AcquireTask return false once the board
  /// drains. Idempotent. The pool joins its workers after this.
  void Stop() {
    typename P::UniqueLock lock(mu_);
    stopped_ = true;
    work_cv_.notify_all();
  }

  std::size_t queued() const {
    typename P::UniqueLock lock(mu_);
    std::size_t n = 0;
    for (const auto& dq : deques_) n += dq.size();
    return n;
  }

 private:
  /// Own-front pop, then biggest-victim back steal. Caller holds mu_.
  bool PopLocked(std::size_t worker, Task* out, std::uint64_t* stolen)
      AIM_REQUIRES(mu_) {
    auto& own = deques_[worker];
    if (!own.empty()) {
      *out = own.front();
      own.pop_front();
      return true;
    }
    std::size_t victim = deques_.size();
    std::size_t victim_size = 0;
    for (std::size_t q = 0; q < deques_.size(); ++q) {
      if (q != worker && deques_[q].size() > victim_size) {
        victim = q;
        victim_size = deques_[q].size();
      }
    }
    if (victim == deques_.size()) return false;
    *out = deques_[victim].back();
    deques_[victim].pop_back();
    if (stolen != nullptr) ++*stolen;
    return true;
  }

  mutable typename P::Mutex mu_;
  typename P::CondVar work_cv_;
  typename P::CondVar done_cv_;
  std::vector<std::deque<Task>> deques_ AIM_GUARDED_BY(mu_);
  bool stopped_ AIM_GUARDED_BY(mu_) = false;
};

}  // namespace aim

#endif  // AIM_RTA_SCAN_TASK_BOARD_H_
