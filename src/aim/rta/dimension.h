#ifndef AIM_RTA_DIMENSION_H_
#define AIM_RTA_DIMENSION_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "aim/common/status.h"

namespace aim {

/// A small, static dimension table (paper §2.3 / §3.4): RegionInfo,
/// SubscriptionType, Category, ... Replicated at every storage node, so
/// joins with the Analytics Matrix execute locally during the scan.
///
/// Rows are keyed by an application key (e.g. zip code) mapped to a dense
/// row id; columns are either numeric (u32) or labels (strings, used as
/// group-by output). Built once, immutable afterwards — which is what makes
/// replication cheap (paper §4.1(d)).
class DimensionTable {
 public:
  enum class ColumnType : std::uint8_t { kUInt32 = 0, kString = 1 };

  explicit DimensionTable(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Schema building (before any AddRow).
  std::uint16_t AddUInt32Column(const std::string& name);
  std::uint16_t AddStringColumn(const std::string& name);

  /// Returns the column id, or kNoColumn.
  static constexpr std::uint16_t kNoColumn = 0xffff;
  std::uint16_t FindColumn(const std::string& name) const;
  std::uint16_t num_columns() const {
    return static_cast<std::uint16_t>(columns_.size());
  }
  ColumnType column_type(std::uint16_t col) const {
    return columns_[col].type;
  }
  const std::string& column_name(std::uint16_t col) const {
    return columns_[col].name;
  }

  /// Adds a row; `u32_values` / `str_values` must match the declared
  /// columns in order (u32 columns consume from u32_values, string columns
  /// from str_values). Returns the dense row id.
  std::uint32_t AddRow(std::uint64_t key,
                       const std::vector<std::uint32_t>& u32_values,
                       const std::vector<std::string>& str_values);

  std::uint32_t num_rows() const {
    return static_cast<std::uint32_t>(keys_.size());
  }

  static constexpr std::uint32_t kNoRow = 0xffffffffu;
  /// Dense row id for an application key (FK value), or kNoRow.
  std::uint32_t LookupRow(std::uint64_t key) const;

  std::uint64_t row_key(std::uint32_t row) const { return keys_[row]; }
  std::uint32_t u32_value(std::uint32_t row, std::uint16_t col) const {
    return columns_[col].u32_data[row];
  }
  const std::string& string_value(std::uint32_t row,
                                  std::uint16_t col) const {
    return columns_[col].str_data[row];
  }

  /// Group-by key for a column value: u32 columns group by value, string
  /// columns group by a dense label id (resolved back via GroupLabel).
  std::uint64_t GroupKey(std::uint32_t row, std::uint16_t col) const;
  std::string GroupLabel(std::uint64_t group_key, std::uint16_t col) const;

 private:
  struct Column {
    std::string name;
    ColumnType type;
    std::vector<std::uint32_t> u32_data;
    std::vector<std::string> str_data;
    // For string columns: label -> dense label id (shared labels group
    // together, e.g. many zips in one city).
    std::unordered_map<std::string, std::uint32_t> label_ids;
    std::vector<std::string> labels;         // label id -> text
    std::vector<std::uint32_t> row_label;    // row -> label id
  };

  std::string name_;
  std::vector<Column> columns_;
  std::vector<std::uint64_t> keys_;
  std::unordered_map<std::uint64_t, std::uint32_t> key_to_row_;
};

/// The set of dimension tables replicated at a node (or front-end).
class DimensionCatalog {
 public:
  static constexpr std::uint16_t kNoTable = 0xffff;

  /// Takes ownership. Returns the table id.
  std::uint16_t AddTable(DimensionTable table);

  std::uint16_t FindTable(const std::string& name) const;
  const DimensionTable& table(std::uint16_t id) const { return tables_[id]; }
  std::uint16_t num_tables() const {
    return static_cast<std::uint16_t>(tables_.size());
  }

 private:
  std::vector<DimensionTable> tables_;
  std::unordered_map<std::string, std::uint16_t> name_to_table_;
};

}  // namespace aim

#endif  // AIM_RTA_DIMENSION_H_
