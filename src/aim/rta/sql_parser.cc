#include "aim/rta/sql_parser.h"

#include <cctype>
#include <cstdio>
#include <unordered_map>
#include <vector>

namespace aim {

namespace {

// ---------------------------------------------------------------------------
// Tokenizer.
// ---------------------------------------------------------------------------

struct Token {
  enum class Kind : std::uint8_t {
    kIdent,
    kNumber,
    kString,  // '...' literal (quotes stripped)
    kSymbol,  // ( ) , . / * = < > <= >= <> !=
    kEnd,
  };
  Kind kind = Kind::kEnd;
  std::string text;
  std::size_t pos = 0;  // byte offset, for error messages
};

Status TokenizeError(std::size_t pos, const std::string& what) {
  return Status::InvalidArgument("SQL error at offset " + std::to_string(pos) +
                                 ": " + what);
}

/// Printable rendering of one input byte for error messages. SQL arrives
/// over the wire, so the byte may be NUL, a control character, or a
/// non-ASCII value — embedding it raw would put unprintable (or invisible)
/// bytes into a position-annotated message that operators read in logs.
std::string EscapeChar(char c) {
  const auto u = static_cast<unsigned char>(c);
  if (std::isprint(u) != 0) return std::string(1, c);
  char buf[8];
  std::snprintf(buf, sizeof(buf), "\\x%02x", u);
  return buf;
}

std::string EscapeString(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) out += EscapeChar(c);
  return out;
}

StatusOr<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  while (i < sql.size()) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c)) || c == ';') {
      ++i;
      continue;
    }
    Token t;
    t.pos = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i;
      while (j < sql.size() && (std::isalnum(static_cast<unsigned char>(
                                    sql[j])) ||
                                sql[j] == '_')) {
        ++j;
      }
      t.kind = Token::Kind::kIdent;
      t.text = sql.substr(i, j - i);
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '-' && i + 1 < sql.size() &&
                std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      std::size_t j = i + 1;
      while (j < sql.size() && (std::isdigit(static_cast<unsigned char>(
                                    sql[j])) ||
                                sql[j] == '.')) {
        ++j;
      }
      t.kind = Token::Kind::kNumber;
      t.text = sql.substr(i, j - i);
      i = j;
    } else if (c == '\'') {
      std::size_t j = i + 1;
      while (j < sql.size() && sql[j] != '\'') ++j;
      if (j >= sql.size()) return TokenizeError(i, "unterminated string");
      t.kind = Token::Kind::kString;
      t.text = sql.substr(i + 1, j - i - 1);
      i = j + 1;
    } else if (c == '<' || c == '>' || c == '!') {
      std::size_t j = i + 1;
      if (j < sql.size() && (sql[j] == '=' || (c == '<' && sql[j] == '>'))) {
        ++j;
      }
      t.kind = Token::Kind::kSymbol;
      t.text = sql.substr(i, j - i);
      i = j;
    } else if (std::string("(),./*=").find(c) != std::string::npos) {
      t.kind = Token::Kind::kSymbol;
      t.text = std::string(1, c);
      ++i;
    } else {
      return TokenizeError(i,
                           "unexpected character '" + EscapeChar(c) + "'");
    }
    tokens.push_back(std::move(t));
  }
  Token end;
  end.pos = sql.size();
  tokens.push_back(end);
  return tokens;
}

std::string Upper(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    // The unsigned-char cast matters: passing a raw char with the high bit
    // set (any non-ASCII byte on a signed-char platform) to std::toupper is
    // undefined behavior per the C standard.
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------------

/// A reference that may be `name` or `qualifier.name`.
struct ColumnRef {
  std::string qualifier;  // empty if unqualified
  std::string name;
  std::size_t pos = 0;

  std::string ToString() const {
    return qualifier.empty() ? name : qualifier + "." + name;
  }
};

/// Pending select item before resolution.
struct PendingItem {
  enum class Kind { kCountStar, kAgg, kSumRatio, kEcho };
  Kind kind = Kind::kEcho;
  AggOp op = AggOp::kCount;
  ColumnRef column;  // kAgg / kEcho; ratio numerator
  ColumnRef den;     // kSumRatio denominator
};

class Parser {
 public:
  Parser(const Schema* schema, const DimensionCatalog* dims,
         std::vector<Token> tokens)
      : schema_(schema), dims_(dims), tokens_(std::move(tokens)) {}

  StatusOr<Query> Run();

 private:
  const Token& Peek(int ahead = 0) const {
    const std::size_t i = pos_ + static_cast<std::size_t>(ahead);
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Next() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }

  bool AcceptKeyword(const char* kw) {
    if (Peek().kind == Token::Kind::kIdent && Upper(Peek().text) == kw) {
      Next();
      return true;
    }
    return false;
  }
  bool AcceptSymbol(const char* sym) {
    if (Peek().kind == Token::Kind::kSymbol && Peek().text == sym) {
      Next();
      return true;
    }
    return false;
  }

  Status Error(const std::string& what) const {
    return TokenizeError(Peek().pos, what);
  }

  Status ExpectKeyword(const char* kw) {
    if (!AcceptKeyword(kw)) {
      return Error(std::string("expected ") + kw);
    }
    return Status::OK();
  }
  Status ExpectSymbol(const char* sym) {
    if (!AcceptSymbol(sym)) {
      return Error(std::string("expected '") + sym + "'");
    }
    return Status::OK();
  }

  StatusOr<std::string> ExpectIdent() {
    if (Peek().kind != Token::Kind::kIdent) return Error("expected name");
    return Next().text;
  }

  StatusOr<ColumnRef> ParseColumnRef() {
    ColumnRef ref;
    ref.pos = Peek().pos;
    StatusOr<std::string> first = ExpectIdent();
    if (!first.ok()) return first.status();
    if (AcceptSymbol(".")) {
      StatusOr<std::string> second = ExpectIdent();
      if (!second.ok()) return second.status();
      ref.qualifier = *first;
      ref.name = *second;
    } else {
      ref.name = *first;
    }
    return ref;
  }

  StatusOr<CmpOp> ParseCmpOp() {
    if (Peek().kind != Token::Kind::kSymbol) return Error("expected operator");
    const std::string op = Next().text;
    if (op == "<") return CmpOp::kLt;
    if (op == "<=") return CmpOp::kLe;
    if (op == ">") return CmpOp::kGt;
    if (op == ">=") return CmpOp::kGe;
    if (op == "=") return CmpOp::kEq;
    if (op == "<>" || op == "!=") return CmpOp::kNe;
    return Error("unknown operator '" + op + "'");
  }

  // Resolution ------------------------------------------------------------

  bool IsMatrixQualifier(const std::string& q) const {
    return q.empty() || q == matrix_name_ || q == matrix_alias_;
  }

  /// Dimension table id for a qualifier (name or alias), kNoTable if none.
  std::uint16_t TableOf(const std::string& qualifier) const {
    auto it = table_aliases_.find(qualifier);
    if (it != table_aliases_.end()) return it->second;
    if (dims_ != nullptr) return dims_->FindTable(qualifier);
    return DimensionCatalog::kNoTable;
  }

  /// Resolves a ColumnRef as a matrix attribute; kInvalidAttr if not one.
  std::uint16_t MatrixAttr(const ColumnRef& ref) const {
    if (!IsMatrixQualifier(ref.qualifier)) return kInvalidAttr;
    return schema_->FindAttribute(ref.name);
  }

  Status ParseSelectList();
  Status ParseFromList();
  Status ParseWhere();
  Status ParseGroupBy();
  Status Assemble(Query* query);

  const Schema* schema_;
  const DimensionCatalog* dims_;
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;

  // Gathered clauses.
  std::vector<PendingItem> items_;
  std::string matrix_name_ = "AnalyticsMatrix";
  std::string matrix_alias_;
  std::unordered_map<std::string, std::uint16_t> table_aliases_;

  struct RawFilter {
    ColumnRef column;
    CmpOp op;
    bool is_label = false;
    std::string label;
    double number = 0;
  };
  std::vector<RawFilter> filters_;

  struct RawJoin {
    ColumnRef fk;   // matrix side
    ColumnRef key;  // dimension side (table.key)
  };
  std::vector<RawJoin> joins_;

  bool has_group_by_ = false;
  ColumnRef group_by_;
  std::uint32_t limit_ = 0;
};

Status Parser::ParseSelectList() {
  while (true) {
    PendingItem item;
    const Token& t = Peek();
    if (t.kind != Token::Kind::kIdent) return Error("expected select item");
    const std::string upper = Upper(t.text);
    if (upper == "FROM" || upper == "WHERE" || upper == "GROUP" ||
        upper == "LIMIT") {
      return Error("expected select item");
    }
    if (upper == "COUNT" || upper == "SUM" || upper == "AVG" ||
        upper == "MIN" || upper == "MAX") {
      Next();
      Status st = ExpectSymbol("(");
      if (!st.ok()) return st;
      if (upper == "COUNT") {
        if (AcceptSymbol("*")) {
          item.kind = PendingItem::Kind::kCountStar;
        } else {
          StatusOr<ColumnRef> ref = ParseColumnRef();
          if (!ref.ok()) return ref.status();
          item.kind = PendingItem::Kind::kAgg;
          item.op = AggOp::kCount;
          item.column = *ref;
        }
      } else {
        StatusOr<ColumnRef> ref = ParseColumnRef();
        if (!ref.ok()) return ref.status();
        item.kind = PendingItem::Kind::kAgg;
        item.op = upper == "SUM"   ? AggOp::kSum
                  : upper == "AVG" ? AggOp::kAvg
                  : upper == "MIN" ? AggOp::kMin
                                   : AggOp::kMax;
        item.column = *ref;
      }
      st = ExpectSymbol(")");
      if (!st.ok()) return st;
      // SUM(a)/SUM(b) ratio form.
      if (item.op == AggOp::kSum && AcceptSymbol("/")) {
        Status st2 = ExpectKeyword("SUM");
        if (!st2.ok()) return st2;
        st2 = ExpectSymbol("(");
        if (!st2.ok()) return st2;
        StatusOr<ColumnRef> den = ParseColumnRef();
        if (!den.ok()) return den.status();
        st2 = ExpectSymbol(")");
        if (!st2.ok()) return st2;
        item.kind = PendingItem::Kind::kSumRatio;
        item.den = *den;
      }
    } else {
      // Bare column: echoed group-by column.
      StatusOr<ColumnRef> ref = ParseColumnRef();
      if (!ref.ok()) return ref.status();
      item.kind = PendingItem::Kind::kEcho;
      item.column = *ref;
    }
    if (AcceptKeyword("AS")) {
      StatusOr<std::string> name = ExpectIdent();  // accepted, not stored
      if (!name.ok()) return name.status();
    }
    items_.push_back(std::move(item));
    if (!AcceptSymbol(",")) break;
  }
  if (items_.empty()) return Error("empty select list");
  return Status::OK();
}

Status Parser::ParseFromList() {
  bool first = true;
  while (true) {
    StatusOr<std::string> table = ExpectIdent();
    if (!table.ok()) return table.status();
    // Optional alias: a bare ident that is not a clause keyword.
    std::string alias;
    if (Peek().kind == Token::Kind::kIdent) {
      const std::string upper = Upper(Peek().text);
      if (upper != "WHERE" && upper != "GROUP" && upper != "LIMIT") {
        alias = Next().text;
      }
    }
    if (first) {
      matrix_name_ = *table;
      matrix_alias_ = alias;
      first = false;
    } else {
      if (dims_ == nullptr) return Error("no dimension catalog available");
      const std::uint16_t id = dims_->FindTable(*table);
      if (id == DimensionCatalog::kNoTable) {
        return Error("unknown dimension table '" + *table + "'");
      }
      table_aliases_[*table] = id;
      if (!alias.empty()) table_aliases_[alias] = id;
    }
    if (!AcceptSymbol(",")) break;
  }
  return Status::OK();
}

Status Parser::ParseWhere() {
  while (true) {
    StatusOr<ColumnRef> lhs = ParseColumnRef();
    if (!lhs.ok()) return lhs.status();
    StatusOr<CmpOp> op = ParseCmpOp();
    if (!op.ok()) return op.status();

    const Token& rhs = Peek();
    if (rhs.kind == Token::Kind::kNumber) {
      Next();
      RawFilter f;
      f.column = *lhs;
      f.op = *op;
      f.number = std::strtod(rhs.text.c_str(), nullptr);
      filters_.push_back(std::move(f));
    } else if (rhs.kind == Token::Kind::kString) {
      Next();
      RawFilter f;
      f.column = *lhs;
      f.op = *op;
      f.is_label = true;
      f.label = rhs.text;
      filters_.push_back(std::move(f));
    } else if (rhs.kind == Token::Kind::kIdent) {
      StatusOr<ColumnRef> rref = ParseColumnRef();
      if (!rref.ok()) return rref.status();
      if (*op != CmpOp::kEq) {
        return Error("join conditions must use '='");
      }
      // One side must be a matrix attribute, the other a dim key column.
      const bool lhs_matrix = MatrixAttr(*lhs) != kInvalidAttr;
      const bool rhs_matrix = MatrixAttr(*rref) != kInvalidAttr;
      RawJoin join;
      if (lhs_matrix && !rhs_matrix) {
        join.fk = *lhs;
        join.key = *rref;
      } else if (rhs_matrix && !lhs_matrix) {
        join.fk = *rref;
        join.key = *lhs;
      } else {
        return Error("join must connect a matrix column to a table key");
      }
      if (TableOf(join.key.qualifier) == DimensionCatalog::kNoTable) {
        return Error("unknown table in join: '" + join.key.qualifier + "'");
      }
      joins_.push_back(std::move(join));
    } else {
      return Error("expected literal or column after operator");
    }
    if (!AcceptKeyword("AND")) break;
  }
  return Status::OK();
}

Status Parser::ParseGroupBy() {
  Status st = ExpectKeyword("BY");
  if (!st.ok()) return st;
  StatusOr<ColumnRef> ref = ParseColumnRef();
  if (!ref.ok()) return ref.status();
  has_group_by_ = true;
  group_by_ = *ref;
  return Status::OK();
}

Status Parser::Assemble(Query* query) {
  // Join map: dim table -> matrix FK attribute.
  std::unordered_map<std::uint16_t, std::uint16_t> join_fk;
  for (const RawJoin& join : joins_) {
    const std::uint16_t table = TableOf(join.key.qualifier);
    const std::uint16_t fk = MatrixAttr(join.fk);
    if (fk == kInvalidAttr) {
      return TokenizeError(join.fk.pos,
                           "unknown matrix column '" + join.fk.ToString() +
                               "'");
    }
    join_fk[table] = fk;
  }

  /// Finds (table, column) for a qualified dimension reference; also
  /// handles unqualified names by searching joined tables.
  auto resolve_dim = [&](const ColumnRef& ref, std::uint16_t* table,
                         std::uint16_t* column) -> bool {
    if (dims_ == nullptr) return false;
    if (!ref.qualifier.empty() && !IsMatrixQualifier(ref.qualifier)) {
      const std::uint16_t t = TableOf(ref.qualifier);
      if (t == DimensionCatalog::kNoTable) return false;
      const std::uint16_t c = dims_->table(t).FindColumn(ref.name);
      if (c == DimensionTable::kNoColumn) return false;
      *table = t;
      *column = c;
      return true;
    }
    for (const auto& [t, fk] : join_fk) {
      const std::uint16_t c = dims_->table(t).FindColumn(ref.name);
      if (c != DimensionTable::kNoColumn) {
        *table = t;
        *column = c;
        return true;
      }
    }
    return false;
  };

  // GROUP BY first (echo items validate against it).
  if (has_group_by_) {
    const std::uint16_t attr = MatrixAttr(group_by_);
    if (attr != kInvalidAttr) {
      query->kind = Query::Kind::kGroupBy;
      query->group_by.kind = GroupBy::Kind::kMatrixAttr;
      query->group_by.attr = attr;
    } else {
      std::uint16_t table = 0, column = 0;
      if (!resolve_dim(group_by_, &table, &column)) {
        return TokenizeError(group_by_.pos, "cannot resolve GROUP BY column '" +
                                                group_by_.ToString() + "'");
      }
      auto it = join_fk.find(table);
      if (it == join_fk.end()) {
        return TokenizeError(group_by_.pos,
                             "GROUP BY on '" + group_by_.ToString() +
                                 "' requires a join condition for its table");
      }
      query->kind = Query::Kind::kGroupBy;
      query->group_by.kind = GroupBy::Kind::kDimColumn;
      query->group_by.fk_attr = it->second;
      query->group_by.dim_table = table;
      query->group_by.dim_column = column;
    }
  }

  // Select items.
  for (const PendingItem& item : items_) {
    switch (item.kind) {
      case PendingItem::Kind::kCountStar:
        query->select.push_back(SelectItem::Count());
        break;
      case PendingItem::Kind::kAgg: {
        const std::uint16_t attr = MatrixAttr(item.column);
        if (attr == kInvalidAttr) {
          return TokenizeError(item.column.pos, "unknown matrix column '" +
                                                    item.column.ToString() +
                                                    "'");
        }
        query->select.push_back(SelectItem::Agg(item.op, attr));
        break;
      }
      case PendingItem::Kind::kSumRatio: {
        const std::uint16_t num = MatrixAttr(item.column);
        const std::uint16_t den = MatrixAttr(item.den);
        if (num == kInvalidAttr || den == kInvalidAttr) {
          return TokenizeError(item.column.pos, "unknown column in ratio");
        }
        query->select.push_back(SelectItem::SumRatio(num, den));
        break;
      }
      case PendingItem::Kind::kEcho: {
        // Must match the GROUP BY column (its value comes back as the
        // row's group key/label).
        if (!has_group_by_ || group_by_.name != item.column.name) {
          return TokenizeError(item.column.pos,
                               "bare column '" + item.column.ToString() +
                                   "' must match the GROUP BY column");
        }
        break;
      }
    }
  }
  if (query->select.empty()) {
    return Status::InvalidArgument("SQL error: no aggregates selected");
  }

  // Filters.
  for (const RawFilter& f : filters_) {
    const std::uint16_t attr = MatrixAttr(f.column);
    if (attr != kInvalidAttr && !f.is_label) {
      ScanFilter sf;
      sf.attr = attr;
      sf.op = f.op;
      switch (schema_->attribute(attr).type) {
        case ValueType::kInt32:
          sf.constant = Value::Int32(static_cast<std::int32_t>(f.number));
          break;
        case ValueType::kUInt32:
          sf.constant = Value::UInt32(static_cast<std::uint32_t>(f.number));
          break;
        case ValueType::kInt64:
          sf.constant = Value::Int64(static_cast<std::int64_t>(f.number));
          break;
        case ValueType::kUInt64:
          sf.constant = Value::UInt64(static_cast<std::uint64_t>(f.number));
          break;
        case ValueType::kFloat:
          sf.constant = Value::Float(static_cast<float>(f.number));
          break;
        case ValueType::kDouble:
          sf.constant = Value::Double(f.number);
          break;
      }
      query->where.push_back(sf);
      continue;
    }
    // Dimension predicate.
    std::uint16_t table = 0, column = 0;
    if (!resolve_dim(f.column, &table, &column)) {
      return TokenizeError(f.column.pos, "cannot resolve column '" +
                                             f.column.ToString() + "'");
    }
    auto it = join_fk.find(table);
    if (it == join_fk.end()) {
      return TokenizeError(f.column.pos,
                           "predicate on '" + f.column.ToString() +
                               "' requires a join condition for its table");
    }
    DimFilter df;
    df.fk_attr = it->second;
    df.dim_table = table;
    df.dim_column = column;
    df.op = f.op;
    if (f.is_label) {
      df.str_constant = f.label;
    } else {
      df.constant = static_cast<std::uint32_t>(f.number);
    }
    query->dim_where.push_back(std::move(df));
  }

  query->limit = limit_;
  return Status::OK();
}

StatusOr<Query> Parser::Run() {
  Status st = ExpectKeyword("SELECT");
  if (!st.ok()) return st;
  st = ParseSelectList();
  if (!st.ok()) return st;
  st = ExpectKeyword("FROM");
  if (!st.ok()) return st;
  st = ParseFromList();
  if (!st.ok()) return st;
  if (AcceptKeyword("WHERE")) {
    st = ParseWhere();
    if (!st.ok()) return st;
  }
  if (AcceptKeyword("GROUP")) {
    st = ParseGroupBy();
    if (!st.ok()) return st;
  }
  if (AcceptKeyword("LIMIT")) {
    if (Peek().kind != Token::Kind::kNumber) return Error("expected number");
    limit_ = static_cast<std::uint32_t>(
        std::strtoul(Next().text.c_str(), nullptr, 10));
  }
  if (Peek().kind != Token::Kind::kEnd) {
    // The token may be a string literal carrying arbitrary bytes; escape it
    // so the error message itself stays printable.
    return Error("unexpected trailing input '" + EscapeString(Peek().text) +
                 "'");
  }

  Query query;
  st = Assemble(&query);
  if (!st.ok()) return st;
  return query;
}

}  // namespace

StatusOr<Query> SqlParser::Parse(const std::string& sql) const {
  StatusOr<std::vector<Token>> tokens = Tokenize(sql);
  if (!tokens.ok()) return tokens.status();
  Parser parser(schema_, dims_, std::move(tokens).value());
  return parser.Run();
}

}  // namespace aim
