#ifndef AIM_RTA_SHARED_SCAN_H_
#define AIM_RTA_SHARED_SCAN_H_

#include <vector>

#include "aim/rta/compiled_query.h"
#include "aim/storage/delta_main.h"

namespace aim {

/// Shared-scan executor for one data partition (paper §4.7, Algorithm 5 and
/// Figure 6). The owning RTA thread alternates:
///
///   scan step   — one pass over every bucket of the partition's main,
///                 feeding each bucket to every query in the current batch;
///   merge step  — SwitchDeltas() + MergeStep() on the partition's store,
///                 folding the frozen delta into the main in place.
///
/// Interleaving the two gives snapshot-consistent queries (the main is
/// read-only during the scan step) with bounded staleness (t_fresh is one
/// scan+merge cycle).
class SharedScan {
 public:
  explicit SharedScan(DeltaMainStore* store) : store_(store) {}

  /// Scan step: runs `batch` over the whole main. Each CompiledQuery
  /// accumulates its partial result internally (TakePartial() to collect).
  void ScanStep(std::vector<CompiledQuery>& batch) {
    const ColumnMap& main = store_->main();
    const std::uint32_t buckets = main.num_buckets();
    for (std::uint32_t b = 0; b < buckets; ++b) {
      const ColumnMap::BucketRef bucket = main.bucket(b);
      for (CompiledQuery& query : batch) {
        query.ProcessBucket(main, bucket, &scratch_);
      }
    }
  }

  /// Merge step. Returns the number of delta records folded into the main.
  std::size_t MergeStep() {
    store_->SwitchDeltas();
    return store_->MergeStep();
  }

  /// One full cycle: scan the batch, then merge (Figure 6's loop body).
  std::size_t ScanAndMerge(std::vector<CompiledQuery>& batch) {
    ScanStep(batch);
    return MergeStep();
  }

  DeltaMainStore* store() { return store_; }

 private:
  DeltaMainStore* store_;
  ScanScratch scratch_;
};

}  // namespace aim

#endif  // AIM_RTA_SHARED_SCAN_H_
