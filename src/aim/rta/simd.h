#ifndef AIM_RTA_SIMD_H_
#define AIM_RTA_SIMD_H_

#include <cstdint>
#include <limits>

#include "aim/esp/rule.h"  // CmpOp
#include "aim/schema/value.h"

namespace aim {
namespace simd {

/// Scan kernels (paper §4.7.1): vectorized filtering producing a byte mask
/// (0xff = selected, 0x00 = filtered out) and masked aggregation over
/// columns, the two building blocks of the shared scan.
///
/// AVX2 paths cover the hot column types of the benchmark schema (int32 and
/// float indicators, uint32 foreign keys); the remaining types use scalar
/// loops. Every kernel has a *Scalar reference twin used for correctness
/// tests and for the SIMD-vs-scalar ablation bench.

/// True when the AVX2 paths are compiled in and used.
bool HasAvx2();

// ---------------------------------------------------------------------------
// Filtering. If `combine_and` is true, the comparison result is ANDed into
// `mask` (conjunctive WHERE clauses); otherwise `mask` is overwritten.
// ---------------------------------------------------------------------------

void FilterColumn(ValueType type, const std::uint8_t* column,
                  std::uint32_t count, CmpOp op, const Value& constant,
                  std::uint8_t* mask, bool combine_and);

void FilterColumnScalar(ValueType type, const std::uint8_t* column,
                        std::uint32_t count, CmpOp op, const Value& constant,
                        std::uint8_t* mask, bool combine_and);

/// mask[i] |= other[i] (disjunctive predicate groups).
void MaskOr(std::uint8_t* mask, const std::uint8_t* other,
            std::uint32_t count);

/// Number of selected records in the mask.
std::uint32_t CountMask(const std::uint8_t* mask, std::uint32_t count);

/// Sets all `count` bytes to 0xff (queries without a WHERE clause).
void FillMask(std::uint8_t* mask, std::uint32_t count);

// ---------------------------------------------------------------------------
// Masked aggregation. Accumulates sum/min/max/count of the selected values
// into `acc` (across calls — initialize acc once per query, feed it every
// bucket).
// ---------------------------------------------------------------------------

struct AggAccum {
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  std::int64_t count = 0;

  void MergeFrom(const AggAccum& o) {
    sum += o.sum;
    if (o.min < min) min = o.min;
    if (o.max > max) max = o.max;
    count += o.count;
  }
};

void MaskedAggregate(ValueType type, const std::uint8_t* column,
                     const std::uint8_t* mask, std::uint32_t count,
                     AggAccum* acc);

void MaskedAggregateScalar(ValueType type, const std::uint8_t* column,
                           const std::uint8_t* mask, std::uint32_t count,
                           AggAccum* acc);

}  // namespace simd
}  // namespace aim

#endif  // AIM_RTA_SIMD_H_
