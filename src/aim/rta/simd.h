#ifndef AIM_RTA_SIMD_H_
#define AIM_RTA_SIMD_H_

#include <cstdint>
#include <limits>

#include "aim/esp/rule.h"  // CmpOp
#include "aim/schema/value.h"

namespace aim {
namespace simd {

/// Scan kernels (paper §4.7.1): vectorized filtering producing a byte mask
/// (0xff = selected, 0x00 = filtered out) and masked aggregation over
/// columns, the two building blocks of the shared scan.
///
/// The kernels come in three tiers — scalar, AVX2 and AVX-512 — selected at
/// runtime through function-pointer tables. Each vector tier is compiled in
/// its own translation unit with that tier's ISA flags (independent of the
/// build's -march), so one binary carries every tier and picks the best the
/// CPU supports by CPUID at startup. Every kernel has a *Scalar reference
/// twin used for correctness tests and the SIMD-vs-scalar ablation bench;
/// the vector tiers implement the scalar semantics exactly: bit-identical
/// masks, NaN skipped by min/max, NaN propagated into the sum.

/// Dispatch tiers, in strictly increasing capability order.
enum class SimdLevel : int {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,  // requires F+BW+DQ+VL (Skylake-SP and later)
};

/// "scalar" / "avx2" / "avx512".
const char* SimdLevelName(SimdLevel level);

/// Parses a level name (the AIM_SIMD_LEVEL spellings). Returns false and
/// leaves `*out` untouched on an unknown name.
bool ParseSimdLevel(const char* name, SimdLevel* out);

/// Highest tier that is both compiled into this binary and supported by
/// the running CPU. Independent of any override.
SimdLevel MaxSupportedLevel();

/// The tier dispatch currently uses. Defaults to MaxSupportedLevel(),
/// lowered by the AIM_SIMD_LEVEL environment variable if set (evaluated
/// once, clamped to MaxSupportedLevel — the override can only select a
/// tier the host can actually run).
SimdLevel ActiveLevel();

/// Forces the dispatch tier (clamped to MaxSupportedLevel()); returns the
/// level now in effect. Test/bench hook for cross-tier parity checks; not
/// intended to race in-flight scans (a racing scan would merely mix tiers,
/// all of which produce identical masks).
SimdLevel SetLevel(SimdLevel level);

/// True when dispatch currently uses at least the AVX2 / AVX-512 tier.
bool HasAvx2();
bool HasAvx512();

// ---------------------------------------------------------------------------
// Filtering. If `combine_and` is true, the comparison result is ANDed into
// `mask` (conjunctive WHERE clauses); otherwise `mask` is overwritten.
// ---------------------------------------------------------------------------

void FilterColumn(ValueType type, const std::uint8_t* column,
                  std::uint32_t count, CmpOp op, const Value& constant,
                  std::uint8_t* mask, bool combine_and);

void FilterColumnScalar(ValueType type, const std::uint8_t* column,
                        std::uint32_t count, CmpOp op, const Value& constant,
                        std::uint8_t* mask, bool combine_and);

/// mask[i] |= other[i] (disjunctive predicate groups).
void MaskOr(std::uint8_t* mask, const std::uint8_t* other,
            std::uint32_t count);

/// Number of selected records in the mask.
std::uint32_t CountMask(const std::uint8_t* mask, std::uint32_t count);

/// Sets all `count` bytes to 0xff (queries without a WHERE clause).
void FillMask(std::uint8_t* mask, std::uint32_t count);

// ---------------------------------------------------------------------------
// Masked aggregation. Accumulates sum/min/max/count of the selected values
// into `acc` (across calls — initialize acc once per query, feed it every
// bucket).
// ---------------------------------------------------------------------------

struct AggAccum {
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  std::int64_t count = 0;

  void MergeFrom(const AggAccum& o) {
    sum += o.sum;
    if (o.min < min) min = o.min;
    if (o.max > max) max = o.max;
    count += o.count;
  }
};

void MaskedAggregate(ValueType type, const std::uint8_t* column,
                     const std::uint8_t* mask, std::uint32_t count,
                     AggAccum* acc);

void MaskedAggregateScalar(ValueType type, const std::uint8_t* column,
                           const std::uint8_t* mask, std::uint32_t count,
                           AggAccum* acc);

}  // namespace simd
}  // namespace aim

#endif  // AIM_RTA_SIMD_H_
