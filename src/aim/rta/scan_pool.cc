#include "aim/rta/scan_pool.h"

#include <algorithm>
#include <utility>

#include "aim/common/clock.h"
#include "aim/common/logging.h"

namespace aim {

/// One executor's private view of a job: a lazily-materialized clone of
/// the compiled batch plus scan scratch. Slot w belongs to pool worker w;
/// the extra slot [num_threads] belongs to the job's coordinator — no two
/// threads ever share a context, so morsel execution needs no locking
/// beyond the board's task handoff.
struct ScanPool::ExecutorContext {
  std::vector<CompiledQuery> queries;
  ScanScratch scratch;
  bool used = false;
  std::uint32_t morsels = 0;
};

struct ScanPool::Job {
  Board::JobTicket ticket;
  const ColumnMap* map = nullptr;
  const std::vector<CompiledQuery>* prototype = nullptr;
  std::uint32_t morsel_buckets = 1;
  std::uint32_t num_buckets = 0;
  std::vector<ExecutorContext> contexts;  // workers + 1 coordinator slot
};

ScanPool::ScanPool(const Options& options)
    : board_(options.num_threads == 0 ? 1 : options.num_threads) {
  if (options.metrics != nullptr) {
    const Labels node_labels = {{"node", options.node_label}};
    morsels_total_ =
        options.metrics->GetCounter("aim_scan_morsels_total", node_labels);
    steals_total_ =
        options.metrics->GetCounter("aim_scan_steals_total", node_labels);
    worker_scan_micros_.reserve(options.num_threads);
    for (std::size_t w = 0; w < options.num_threads; ++w) {
      Labels labels = node_labels;
      labels.emplace_back("worker", std::to_string(w));
      worker_scan_micros_.push_back(options.metrics->GetHistogram(
          "aim_scan_worker_morsel_micros", std::move(labels)));
    }
  }
  workers_.reserve(options.num_threads);
  for (std::size_t w = 0; w < options.num_threads; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ScanPool::~ScanPool() {
  board_.Stop();
  for (std::thread& t : workers_) t.join();
}

void ScanPool::ExecuteMorsel(Job* job, std::uint32_t seq,
                             ExecutorContext* ctx) {
  if (!ctx->used) {
    // First morsel this executor takes from this job: clone the compiled
    // batch (compiled queries carry mutable accumulation state, one clone
    // per executor) straight from the coordinator's reset prototype.
    ctx->queries = *job->prototype;
    ctx->used = true;
  }
  ++ctx->morsels;
  const std::uint32_t first = seq * job->morsel_buckets;
  const std::uint32_t last =
      std::min(first + job->morsel_buckets, job->num_buckets);
  for (std::uint32_t b = first; b < last; ++b) {
    const ColumnMap::BucketRef bucket = job->map->bucket(b);
    for (CompiledQuery& cq : ctx->queries) {
      cq.ProcessBucket(*job->map, bucket, &ctx->scratch);
    }
  }
}

void ScanPool::WorkerLoop(std::size_t worker) {
  AtomicHistogram* hist =
      worker < worker_scan_micros_.size() ? worker_scan_micros_[worker] : nullptr;
  Board::Task task;
  std::uint64_t stolen = 0;
  while (board_.AcquireTask(worker, &task, &stolen)) {
    if (stolen != 0) {
      // relaxed: monotonic statistic, no ordering required.
      steals_.fetch_add(stolen, std::memory_order_relaxed);
      if (steals_total_ != nullptr) steals_total_->Add(stolen);
      stolen = 0;
    }
    Job* job = static_cast<Job*>(task.job->owner);
    Stopwatch timer;
    ExecuteMorsel(job, task.seq, &job->contexts[worker]);
    if (hist != nullptr) hist->Record(timer.ElapsedMicros());
    board_.CompleteTask(task.job);
  }
}

ScanPool::ScanStats ScanPool::ScanPartition(
    const ColumnMap& main, const std::vector<CompiledQuery>& prototype,
    const ScanOptions& options, std::vector<PartialResult>* results) {
  Job job;
  job.map = &main;
  job.prototype = &prototype;
  job.morsel_buckets = std::max<std::uint32_t>(1, options.morsel_buckets);
  job.num_buckets = main.num_buckets();
  job.contexts.resize(workers_.size() + 1);
  job.ticket.owner = &job;

  const std::uint32_t num_morsels =
      (job.num_buckets + job.morsel_buckets - 1) / job.morsel_buckets;

  ScanStats stats;
  stats.morsels = num_morsels;
  // relaxed: monotonic statistic, no ordering required.
  morsels_.fetch_add(num_morsels, std::memory_order_relaxed);
  if (morsels_total_ != nullptr) morsels_total_->Add(num_morsels);

  board_.Distribute(&job.ticket, num_morsels);

  // The coordinator burns down its own job alongside the workers (and IS
  // the whole pool when there are no workers). It only takes tasks still
  // on the board; once those run out it waits for in-flight morsels.
  if (options.coordinator_participates || workers_.empty()) {
    ExecutorContext* ctx = &job.contexts[workers_.size()];
    Board::Task task;
    while (board_.AcquireJobTask(&job.ticket, &task)) {
      ExecuteMorsel(&job, task.seq, ctx);
      board_.CompleteTask(&job.ticket);
    }
  }
  // AwaitJob's acquire pairs with the workers' release CompleteTasks:
  // every context (morsel counts included) is coherent to read from here.
  board_.AwaitJob(&job.ticket);
  stats.per_executor.reserve(job.contexts.size());
  for (std::size_t c = 0; c < job.contexts.size(); ++c) {
    const std::uint32_t n = job.contexts[c].morsels;
    stats.per_executor.push_back(n);
    if (c == workers_.size()) {
      stats.executed_by_coordinator = n;
    } else {
      stats.executed_by_workers += n;
    }
  }
  AIM_DCHECK(stats.executed_by_coordinator + stats.executed_by_workers ==
             num_morsels);

  // Merge step (coordinator-owned, see header): fold every executor's
  // per-query partial into one result per query. An executor that took no
  // morsel has no clone and contributes nothing; if *no* executor ran
  // (empty partition), clone the prototype once so queries still produce
  // their well-formed empty partials.
  results->clear();
  results->resize(prototype.size());
  std::vector<bool> first(prototype.size(), true);
  bool any_used = false;
  for (ExecutorContext& ctx : job.contexts) {
    if (!ctx.used) continue;
    any_used = true;
    for (std::size_t q = 0; q < prototype.size(); ++q) {
      PartialResult p = ctx.queries[q].TakePartial();
      if (first[q]) {
        (*results)[q] = std::move(p);
        first[q] = false;
      } else {
        (*results)[q].MergeFrom(p, prototype[q].query());
      }
    }
  }
  if (!any_used && !prototype.empty()) {
    std::vector<CompiledQuery> clone = prototype;
    for (std::size_t q = 0; q < clone.size(); ++q) {
      (*results)[q] = clone[q].TakePartial();
    }
  }
  return stats;
}

std::uint64_t ScanPool::steals() const {
  // relaxed: monotonic statistic, no ordering required.
  return steals_.load(std::memory_order_relaxed);
}

std::uint64_t ScanPool::morsels() const {
  // relaxed: monotonic statistic, no ordering required.
  return morsels_.load(std::memory_order_relaxed);
}

ScanPool* ScanPool::Shared() {
  static ScanPool* pool = [] {
    Options options;
    const unsigned hw = std::thread::hardware_concurrency();
    options.num_threads = hw > 1 ? hw - 1 : 0;
    return new ScanPool(options);
  }();
  return pool;
}

}  // namespace aim
