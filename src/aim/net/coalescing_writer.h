#ifndef AIM_NET_COALESCING_WRITER_H_
#define AIM_NET_COALESCING_WRITER_H_

#include <cstdint>
#include <vector>

#include "aim/common/annotated_mutex.h"
#include "aim/common/status.h"
#include "aim/net/socket.h"
#include "aim/obs/histogram.h"
#include "aim/obs/metric.h"

namespace aim {
namespace net {

/// Write-side frame coalescer for one connection. Threads Enqueue complete
/// frames; the first enqueuer while no write is in flight is elected the
/// flusher and must call Flush, which repeatedly swaps out everything
/// queued so far and gather-writes it with one writev (SendFrames). Frames
/// queued by other threads while a write is in flight are therefore
/// flushed together by the already-elected flusher — under concurrent
/// submit load the syscall count drops from one per frame to one per
/// batch, without delaying a lone frame by even a scheduler tick (no
/// timers, no Nagle-style waiting).
///
/// Failure model: the first write error latches the writer failed and
/// drops everything queued (framing on a broken stream is meaningless);
/// Enqueue then refuses new frames until Reset() rearms it for a new
/// connection. Callers own connection teardown — the writer never touches
/// the socket except inside Flush.
///
/// Thread-safe. The elected flusher calls Flush outside any caller lock,
/// so slow sends never block threads that merely enqueue.
class CoalescingWriter {
 public:
  struct Metrics {
    Counter* frames_sent = nullptr;
    Counter* bytes_sent = nullptr;
    /// Frames per writev — the observable coalescing win.
    AtomicHistogram* frames_coalesced = nullptr;
  };

  CoalescingWriter() = default;
  CoalescingWriter(const CoalescingWriter&) = delete;
  CoalescingWriter& operator=(const CoalescingWriter&) = delete;

  /// Attach metrics before first use (pointers may be null; must outlive
  /// the writer).
  void AttachMetrics(const Metrics& metrics) { metrics_ = metrics; }

  /// Queues one complete frame. Returns false if the writer has failed
  /// (frame dropped). On true, `*should_flush` says whether this thread
  /// was elected flusher and must call Flush() now.
  bool Enqueue(std::vector<std::uint8_t> frame, bool* should_flush)
      AIM_EXCLUDES(mu_);

  /// The elected flusher's duty: drain-and-send until the queue is empty,
  /// then stand down. Returns the first write error (writer is then
  /// failed) or OK. Sends run outside mu_, so enqueuers never block on a
  /// slow socket.
  Status Flush(const Socket& socket, std::int64_t timeout_millis)
      AIM_EXCLUDES(mu_);

  /// True between a flusher's election and its stand-down.
  bool busy() const AIM_EXCLUDES(mu_);

  /// True once a write error latched (until Reset).
  bool failed() const AIM_EXCLUDES(mu_);

  /// Blocks until no flush is in flight (failed or drained). The caller
  /// must ensure no further Enqueue elections race with its next step
  /// (e.g. TcpClient holds its submit mutex).
  void WaitIdle() AIM_EXCLUDES(mu_);

  /// Rearm for a fresh connection: clears the failure latch and any
  /// stranded frames. Only legal while not busy.
  void Reset() AIM_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  CondVar idle_cv_;
  std::vector<std::vector<std::uint8_t>> queue_ AIM_GUARDED_BY(mu_);
  bool in_flight_ AIM_GUARDED_BY(mu_) = false;
  bool failed_ AIM_GUARDED_BY(mu_) = false;
  /// Set once via AttachMetrics before first use, read without mu_ by the
  /// flusher — not guarded by design (pointers are immutable after
  /// attach; the metric objects themselves are lock-free).
  Metrics metrics_;
};

}  // namespace net
}  // namespace aim

#endif  // AIM_NET_COALESCING_WRITER_H_
