#ifndef AIM_NET_NODE_CHANNEL_H_
#define AIM_NET_NODE_CHANNEL_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "aim/common/hash.h"
#include "aim/common/types.h"
#include "aim/net/message.h"

namespace aim {

/// Transport-neutral handle to one storage node. The three Submit calls
/// mirror StorageNode's service surface (events, queries, record Get/Put);
/// the paper's tiers — ESP nodes, RTA front-ends, drivers — talk to storage
/// exclusively through this interface, so the same tier code runs against
/// an in-process node (server/LocalNodeChannel) or a remote one over TCP
/// (net/TcpClient) unchanged.
///
/// Submit semantics (identical to StorageNode):
///  - return false when the request was not accepted (peer stopped or
///    unreachable); the caller's completion/reply is then never invoked.
///  - return true when accepted: the completion/reply is invoked exactly
///    once. Remote channels additionally bound that promise with a
///    deadline — a lost reply completes with Status::DeadlineExceeded
///    (events, records) or an empty payload (queries).
class NodeChannel {
 public:
  /// Optional-capability bits carried in NodeInfo::features. A peer that
  /// predates a bit simply never sets it (the hello-reply codec tolerates
  /// the shorter payload), so capabilities degrade gracefully across
  /// mixed-version deployments.
  static constexpr std::uint32_t kFeatureEventBatch = 1u << 0;

  /// Identity the channel learned about its node (TCP: via the hello
  /// handshake). record_size lets remote peers sanity-check their schema.
  struct NodeInfo {
    NodeId node_id = 0;
    std::uint32_t num_partitions = 1;
    std::uint32_t record_size = 0;
    /// kFeature* capability bits the node supports (0 from old peers).
    std::uint32_t features = 0;
  };

  virtual ~NodeChannel() = default;

  virtual NodeInfo info() const = 0;

  /// Enqueues a serialized event (64-byte wire format). `completion` may be
  /// null (fire-and-forget; remote channels then ship it without a reply).
  virtual bool SubmitEvent(std::vector<std::uint8_t> event_bytes,
                           EventCompletion* completion) = 0;

  /// Enqueues a whole batch of serialized events in order. Returns the
  /// number of events accepted — always a prefix of `batch` (the first
  /// rejected event stops the submission; completions of unaccepted events
  /// are never invoked, same contract as SubmitEvent). Channels override
  /// this to amortize per-event costs (one queue lock, one EVENT_BATCH
  /// frame); the default forwards event-at-a-time.
  virtual std::size_t SubmitEventBatch(std::vector<EventMessage>&& batch) {
    std::size_t accepted = 0;
    for (EventMessage& msg : batch) {
      if (!SubmitEvent(std::move(msg.bytes), msg.completion)) break;
      ++accepted;
    }
    return accepted;
  }

  /// Enqueues a serialized query; `reply` receives the node's serialized
  /// PartialResult (empty payload on shutdown or lost connection).
  virtual bool SubmitQuery(
      std::vector<std::uint8_t> query_bytes,
      std::function<void(std::vector<std::uint8_t>&&)> reply) = 0;

  /// Record-level Get/Put service (paper §4.2 deployment option a).
  virtual bool SubmitRecordRequest(RecordRequest request) = 0;

  /// Which partition of the node an entity lives in — pure function of the
  /// node identity (two-level routing, §4.8), so remote channels can route
  /// without a round trip.
  std::uint32_t PartitionOf(EntityId entity) const {
    const NodeInfo i = info();
    return PartitionHash(entity, i.node_id, i.num_partitions);
  }
};

}  // namespace aim

#endif  // AIM_NET_NODE_CHANNEL_H_
