#include "aim/net/tcp_server.h"

#include <chrono>

#include "aim/common/logging.h"
#include "aim/common/thread_name.h"
#include "aim/esp/event.h"
#include "aim/net/frame_assembler.h"

namespace aim {
namespace net {

namespace {
/// How often blocked accept/read loops wake up to notice Stop().
constexpr std::int64_t kStopPollMillis = 100;

/// Receive chunk: big enough that a full event batch rarely takes more
/// than a few reads, small enough to live on the handler stack.
constexpr std::size_t kRecvChunk = 64 * 1024;

std::int64_t MonoMillis() {
  using namespace std::chrono;
  return duration_cast<milliseconds>(steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

TcpServer::TcpServer(NodeChannel* node, const Options& options)
    : node_(node), options_(options) {
  metrics_ = options_.metrics;
  if (metrics_ == nullptr) {
    own_metrics_ = std::make_unique<MetricsRegistry>();
    metrics_ = own_metrics_.get();
  }
}

TcpServer::~TcpServer() { Stop(); }

Status TcpServer::Start() {
  if (running()) return Status::InvalidArgument("already running");

  StatusOr<Socket> listener = TcpListen(options_.host, options_.port, 128);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(listener).value();
  StatusOr<std::uint16_t> port = LocalPort(listener_);
  if (!port.ok()) return port.status();
  port_ = *port;

  const Labels labels = {{"role", "server"},
                         {"addr", options_.host + ":" +
                                      std::to_string(port_)}};
  frames_received_ =
      metrics_->GetCounter("aim_net_frames_received_total", labels);
  frames_sent_ = metrics_->GetCounter("aim_net_frames_sent_total", labels);
  bytes_received_ =
      metrics_->GetCounter("aim_net_bytes_received_total", labels);
  bytes_sent_ = metrics_->GetCounter("aim_net_bytes_sent_total", labels);
  frame_errors_ = metrics_->GetCounter("aim_net_frame_errors_total", labels);
  connections_total_ =
      metrics_->GetCounter("aim_net_connections_total", labels);
  connections_gauge_ = metrics_->GetGauge("aim_net_connections", labels);
  frames_coalesced_ =
      metrics_->GetHistogram("aim_net_frames_coalesced", labels);

  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void TcpServer::Stop() {
  if (!running()) return;
  running_.store(false, std::memory_order_release);
  listener_.ShutdownBoth();
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();

  std::vector<Connection> connections;
  {
    MutexLock lock(connections_mu_);
    connections.swap(connections_);
  }
  for (Connection& conn : connections) {
    conn.state->open.store(false, std::memory_order_release);
    conn.state->sock.ShutdownBoth();
  }
  for (Connection& conn : connections) {
    if (conn.thread.joinable()) conn.thread.join();
  }
  connections_gauge_->Set(0);
}

void TcpServer::PruneFinished() {
  MutexLock lock(connections_mu_);
  for (std::size_t i = 0; i < connections_.size();) {
    if (connections_[i].state->done.load(std::memory_order_acquire)) {
      if (connections_[i].thread.joinable()) connections_[i].thread.join();
      connections_.erase(connections_.begin() +
                         static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
  connections_gauge_->Set(static_cast<std::int64_t>(connections_.size()));
}

void TcpServer::AcceptLoop() {
  SetCurrentThreadName("aim-accept");
  while (running()) {
    StatusOr<Socket> accepted = Accept(listener_, kStopPollMillis);
    if (!accepted.ok()) {
      if (accepted.status().IsDeadlineExceeded()) {
        PruneFinished();
        continue;
      }
      if (!running()) return;
      continue;  // transient accept error; keep serving
    }
    PruneFinished();
    std::size_t active;
    {
      MutexLock lock(connections_mu_);
      active = connections_.size();
    }
    if (active >= options_.max_connections) {
      // Refuse by closing: the client sees a clean EOF and backs off via
      // its reconnect path instead of wedging a handler slot.
      continue;
    }
    auto state = std::make_shared<ConnectionState>();
    state->sock = std::move(accepted).value();
    CoalescingWriter::Metrics wm;
    wm.frames_sent = frames_sent_;
    wm.bytes_sent = bytes_sent_;
    wm.frames_coalesced = frames_coalesced_;
    state->writer.AttachMetrics(wm);
    connections_total_->Add();
    Connection conn;
    conn.state = state;
    conn.thread = std::thread([this, state] { ServeConnection(state); });
    {
      MutexLock lock(connections_mu_);
      connections_.push_back(std::move(conn));
      connections_gauge_->Set(static_cast<std::int64_t>(connections_.size()));
    }
  }
}

void TcpServer::WriteFrame(ConnectionState* state, FrameType type,
                           std::uint64_t request_id,
                           const BinaryWriter& payload) {
  if (!state->open.load(std::memory_order_acquire)) return;
  bool should_flush = false;
  if (!state->writer.Enqueue(
          BuildFrame(type, 0, request_id, payload.buffer().data(),
                     payload.size()),
          &should_flush)) {
    return;  // writer already failed; the connection is going down
  }
  if (!should_flush) return;  // an active flusher will carry this frame
  Status st = state->writer.Flush(state->sock, options_.io_timeout_millis);
  if (!st.ok()) {
    state->open.store(false, std::memory_order_release);
    state->sock.ShutdownBoth();
  }
}

void TcpServer::ServeConnection(std::shared_ptr<ConnectionState> state) {
  SetCurrentThreadName("aim-conn");
  // All received bytes flow through the FrameAssembler — the same class
  // the stream fuzz harness drives with arbitrary byte splits, so the
  // path exercised here is byte-for-byte the one certified there.
  FrameAssembler assembler;
  std::uint8_t chunk[kRecvChunk];
  FrameHeader header;
  std::vector<std::uint8_t> payload;
  // Wall-clock start of the currently incomplete frame (-1 = none). The
  // io timeout is enforced from the first byte of a frame to its last, so
  // a byte-trickler cannot hold a handler slot forever by keeping the
  // socket technically active.
  std::int64_t partial_since = -1;

  while (running() && state->open.load(std::memory_order_acquire)) {
    StatusOr<std::size_t> got =
        RecvSome(state->sock, chunk, sizeof(chunk), kStopPollMillis);
    if (!got.ok()) {
      if (got.status().IsDeadlineExceeded()) {
        if (partial_since >= 0 &&
            MonoMillis() - partial_since > options_.io_timeout_millis) {
          frame_errors_->Add();  // frame started but never finished
          break;
        }
        continue;
      }
      if (got.status().IsShutdown()) {
        // EOF between frames is an orderly close; EOF inside one is a
        // truncated frame.
        if (assembler.buffered() > 0) frame_errors_->Add();
        break;
      }
      frame_errors_->Add();
      break;
    }
    assembler.Push(chunk, *got);

    bool drop = false;
    while (assembler.Next(&header, &payload)) {
      frames_received_->Add();
      bytes_received_->Add(kFrameHeaderSize + payload.size());
      HandleFrame(state, header, std::move(payload));
      payload.clear();
    }
    if (!assembler.ok()) {
      // Garbage on the wire: framing is lost, drop the connection.
      frame_errors_->Add();
      drop = true;
    }
    if (drop) break;

    if (assembler.buffered() > 0) {
      if (partial_since < 0) partial_since = MonoMillis();
      if (MonoMillis() - partial_since > options_.io_timeout_millis) {
        frame_errors_->Add();
        break;
      }
    } else {
      partial_since = -1;
    }
  }

  state->open.store(false, std::memory_order_release);
  state->sock.ShutdownBoth();
  // The gauge is corrected by the accept loop's next PruneFinished — doing
  // it here would need connections_mu_, which PruneFinished holds while
  // joining this very thread.
  state->done.store(true, std::memory_order_release);
}

void TcpServer::HandleFrame(const std::shared_ptr<ConnectionState>& state,
                            const FrameHeader& header,
                            std::vector<std::uint8_t>&& payload) {
  switch (header.type) {
    case FrameType::kHello: {
      std::uint32_t version = 0;
      BinaryReader in(payload);
      if (!DecodeHello(&in, &version).ok() || version != kProtocolVersion) {
        frame_errors_->Add();
        state->open.store(false, std::memory_order_release);
        break;
      }
      BinaryWriter reply;
      // Advertise the transport's own capabilities on top of the node's:
      // this server decodes EVENT_BATCH whatever channel backs it.
      NodeChannel::NodeInfo info = node_->info();
      info.features |= NodeChannel::kFeatureEventBatch;
      EncodeHelloReply(info, &reply);
      WriteFrame(state.get(), FrameType::kHelloReply, header.request_id,
                 reply);
      break;
    }

    case FrameType::kEvent: {
      if (payload.size() != kEventWireSize) {
        // The node would reject a short event anyway, but with a status
        // ("node stopped") that misdiagnoses the problem — and an
        // oversized one would silently drop the trailing bytes. Reject
        // here with the honest verdict; framing is intact, so the
        // connection survives.
        frame_errors_->Add();
        if ((header.flags & kFlagNoReply) == 0) {
          BinaryWriter reply;
          EncodeEventReply(Status::InvalidArgument("malformed event"), {},
                           &reply);
          WriteFrame(state.get(), FrameType::kEventReply, header.request_id,
                     reply);
        }
        break;
      }
      if ((header.flags & kFlagNoReply) != 0) {
        node_->SubmitEvent(std::move(payload), nullptr);
        break;
      }
      EventCompletion completion;
      BinaryWriter reply;
      if (!node_->SubmitEvent(std::move(payload), &completion)) {
        EncodeEventReply(Status::Shutdown("node stopped"), {}, &reply);
      } else {
        // Unbounded wait is safe here: the channel is the in-process
        // node, which always drains its queue (even through Stop), so
        // the completion cannot be abandoned. The *client* bounds the
        // round trip with its own request deadline.
        completion.Wait();
        EncodeEventReply(completion.status, completion.fired_rules, &reply);
      }
      WriteFrame(state.get(), FrameType::kEventReply, header.request_id,
                 reply);
      break;
    }

    case FrameType::kEventBatch: {
      BinaryReader in(payload);
      std::vector<std::vector<std::uint8_t>> events;
      if (!DecodeEventBatch(&in, &events).ok()) {
        // Count/size mismatch inside the payload: framing-level garbage.
        frame_errors_->Add();
        state->open.store(false, std::memory_order_release);
        break;
      }
      if ((header.flags & kFlagNoReply) != 0) {
        std::vector<EventMessage> batch;
        batch.reserve(events.size());
        for (std::vector<std::uint8_t>& bytes : events) {
          EventMessage msg;
          msg.bytes = std::move(bytes);
          batch.push_back(std::move(msg));
        }
        node_->SubmitEventBatch(std::move(batch));
        break;
      }
      // Reply-wanted batch: per-event completions on the node, one
      // aggregated kEventReply (first failure's status, no fired rules
      // — clients needing per-event replies use per-event frames).
      std::vector<EventCompletion> completions(events.size());
      std::vector<EventMessage> batch;
      batch.reserve(events.size());
      for (std::size_t i = 0; i < events.size(); ++i) {
        EventMessage msg;
        msg.bytes = std::move(events[i]);
        msg.completion = &completions[i];
        batch.push_back(std::move(msg));
      }
      const std::size_t accepted = node_->SubmitEventBatch(std::move(batch));
      Status agg = accepted == completions.size()
                       ? Status::OK()
                       : Status::Shutdown("node stopped");
      for (std::size_t i = 0; i < accepted; ++i) {
        completions[i].Wait();  // in-process node: guaranteed to drain
        if (agg.ok() && !completions[i].status.ok()) {
          agg = completions[i].status;
        }
      }
      BinaryWriter reply;
      EncodeEventReply(agg, {}, &reply);
      WriteFrame(state.get(), FrameType::kEventReply, header.request_id,
                 reply);
      break;
    }

    case FrameType::kQuery: {
      // Replies are written asynchronously from the node's RTA
      // coordinator thread; the shared_ptr keeps the connection state
      // alive however late the reply lands.
      const std::uint64_t request_id = header.request_id;
      const bool accepted = node_->SubmitQuery(
          std::move(payload),
          [this, state, request_id](std::vector<std::uint8_t>&& bytes) {
            BinaryWriter reply;
            if (!bytes.empty()) reply.PutBytes(bytes.data(), bytes.size());
            WriteFrame(state.get(), FrameType::kQueryReply, request_id,
                       reply);
          });
      if (!accepted) {
        WriteFrame(state.get(), FrameType::kQueryReply, header.request_id,
                   BinaryWriter());
      }
      break;
    }

    case FrameType::kRecordRequest: {
      RecordRequest request;
      BinaryReader in(payload);
      if (!DecodeRecordRequest(&in, &request).ok()) {
        frame_errors_->Add();
        BinaryWriter reply;
        EncodeRecordReply(Status::InvalidArgument("malformed record request"),
                          {}, 0, &reply);
        WriteFrame(state.get(), FrameType::kRecordReply, header.request_id,
                   reply);
        break;
      }
      const std::uint64_t request_id = header.request_id;
      request.reply = [this, state, request_id](
                          Status st_reply, std::vector<std::uint8_t>&& row,
                          Version version) {
        BinaryWriter reply;
        EncodeRecordReply(st_reply, row, version, &reply);
        WriteFrame(state.get(), FrameType::kRecordReply, request_id, reply);
      };
      if (!node_->SubmitRecordRequest(std::move(request))) {
        BinaryWriter reply;
        EncodeRecordReply(Status::Shutdown("node stopped"), {}, 0, &reply);
        WriteFrame(state.get(), FrameType::kRecordReply, header.request_id,
                   reply);
      }
      break;
    }

    default:
      // A reply type arriving at the server is a protocol violation.
      frame_errors_->Add();
      state->open.store(false, std::memory_order_release);
      break;
  }
}

}  // namespace net
}  // namespace aim
