#include "aim/net/tcp_server.h"

#include "aim/common/logging.h"
#include "aim/common/thread_name.h"

namespace aim {
namespace net {

namespace {
/// How often blocked accept/read loops wake up to notice Stop().
constexpr std::int64_t kStopPollMillis = 100;
}  // namespace

TcpServer::TcpServer(NodeChannel* node, const Options& options)
    : node_(node), options_(options) {
  metrics_ = options_.metrics;
  if (metrics_ == nullptr) {
    own_metrics_ = std::make_unique<MetricsRegistry>();
    metrics_ = own_metrics_.get();
  }
}

TcpServer::~TcpServer() { Stop(); }

Status TcpServer::Start() {
  if (running()) return Status::InvalidArgument("already running");

  StatusOr<Socket> listener = TcpListen(options_.host, options_.port, 128);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(listener).value();
  StatusOr<std::uint16_t> port = LocalPort(listener_);
  if (!port.ok()) return port.status();
  port_ = *port;

  const Labels labels = {{"role", "server"},
                         {"addr", options_.host + ":" +
                                      std::to_string(port_)}};
  frames_received_ =
      metrics_->GetCounter("aim_net_frames_received_total", labels);
  frames_sent_ = metrics_->GetCounter("aim_net_frames_sent_total", labels);
  bytes_received_ =
      metrics_->GetCounter("aim_net_bytes_received_total", labels);
  bytes_sent_ = metrics_->GetCounter("aim_net_bytes_sent_total", labels);
  frame_errors_ = metrics_->GetCounter("aim_net_frame_errors_total", labels);
  connections_total_ =
      metrics_->GetCounter("aim_net_connections_total", labels);
  connections_gauge_ = metrics_->GetGauge("aim_net_connections", labels);
  frames_coalesced_ =
      metrics_->GetHistogram("aim_net_frames_coalesced", labels);

  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void TcpServer::Stop() {
  if (!running()) return;
  running_.store(false, std::memory_order_release);
  listener_.ShutdownBoth();
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();

  std::vector<Connection> connections;
  {
    MutexLock lock(connections_mu_);
    connections.swap(connections_);
  }
  for (Connection& conn : connections) {
    conn.state->open.store(false, std::memory_order_release);
    conn.state->sock.ShutdownBoth();
  }
  for (Connection& conn : connections) {
    if (conn.thread.joinable()) conn.thread.join();
  }
  connections_gauge_->Set(0);
}

void TcpServer::PruneFinished() {
  MutexLock lock(connections_mu_);
  for (std::size_t i = 0; i < connections_.size();) {
    if (connections_[i].state->done.load(std::memory_order_acquire)) {
      if (connections_[i].thread.joinable()) connections_[i].thread.join();
      connections_.erase(connections_.begin() +
                         static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
  connections_gauge_->Set(static_cast<std::int64_t>(connections_.size()));
}

void TcpServer::AcceptLoop() {
  SetCurrentThreadName("aim-accept");
  while (running()) {
    StatusOr<Socket> accepted = Accept(listener_, kStopPollMillis);
    if (!accepted.ok()) {
      if (accepted.status().IsDeadlineExceeded()) {
        PruneFinished();
        continue;
      }
      if (!running()) return;
      continue;  // transient accept error; keep serving
    }
    PruneFinished();
    std::size_t active;
    {
      MutexLock lock(connections_mu_);
      active = connections_.size();
    }
    if (active >= options_.max_connections) {
      // Refuse by closing: the client sees a clean EOF and backs off via
      // its reconnect path instead of wedging a handler slot.
      continue;
    }
    auto state = std::make_shared<ConnectionState>();
    state->sock = std::move(accepted).value();
    CoalescingWriter::Metrics wm;
    wm.frames_sent = frames_sent_;
    wm.bytes_sent = bytes_sent_;
    wm.frames_coalesced = frames_coalesced_;
    state->writer.AttachMetrics(wm);
    connections_total_->Add();
    Connection conn;
    conn.state = state;
    conn.thread = std::thread([this, state] { ServeConnection(state); });
    {
      MutexLock lock(connections_mu_);
      connections_.push_back(std::move(conn));
      connections_gauge_->Set(static_cast<std::int64_t>(connections_.size()));
    }
  }
}

void TcpServer::WriteFrame(ConnectionState* state, FrameType type,
                           std::uint64_t request_id,
                           const BinaryWriter& payload) {
  if (!state->open.load(std::memory_order_acquire)) return;
  bool should_flush = false;
  if (!state->writer.Enqueue(
          BuildFrame(type, 0, request_id, payload.buffer().data(),
                     payload.size()),
          &should_flush)) {
    return;  // writer already failed; the connection is going down
  }
  if (!should_flush) return;  // an active flusher will carry this frame
  Status st = state->writer.Flush(state->sock, options_.io_timeout_millis);
  if (!st.ok()) {
    state->open.store(false, std::memory_order_release);
    state->sock.ShutdownBoth();
  }
}

void TcpServer::ServeConnection(std::shared_ptr<ConnectionState> state) {
  SetCurrentThreadName("aim-conn");
  std::uint8_t header_bytes[kFrameHeaderSize];
  std::vector<std::uint8_t> payload;

  while (running() && state->open.load(std::memory_order_acquire)) {
    Status readable = WaitReadable(state->sock, kStopPollMillis);
    if (readable.IsDeadlineExceeded()) continue;
    if (!readable.ok()) break;

    Status st = RecvAll(state->sock, header_bytes, kFrameHeaderSize,
                        options_.io_timeout_millis);
    if (st.IsShutdown()) break;  // orderly close
    if (!st.ok()) {
      frame_errors_->Add();
      break;
    }
    FrameHeader header;
    st = DecodeFrameHeader(header_bytes, &header);
    if (!st.ok()) {
      // Garbage on the wire: framing is lost, drop the connection.
      frame_errors_->Add();
      break;
    }
    payload.resize(header.payload_size);
    if (header.payload_size > 0) {
      st = RecvAll(state->sock, payload.data(), payload.size(),
                   options_.io_timeout_millis);
      if (!st.ok()) {
        frame_errors_->Add();
        break;
      }
    }
    frames_received_->Add();
    bytes_received_->Add(kFrameHeaderSize + payload.size());

    switch (header.type) {
      case FrameType::kHello: {
        std::uint32_t version = 0;
        BinaryReader in(payload);
        if (!DecodeHello(&in, &version).ok() ||
            version != kProtocolVersion) {
          frame_errors_->Add();
          state->open.store(false, std::memory_order_release);
          break;
        }
        BinaryWriter reply;
        // Advertise the transport's own capabilities on top of the node's:
        // this server decodes EVENT_BATCH whatever channel backs it.
        NodeChannel::NodeInfo info = node_->info();
        info.features |= NodeChannel::kFeatureEventBatch;
        EncodeHelloReply(info, &reply);
        WriteFrame(state.get(), FrameType::kHelloReply, header.request_id,
                   reply);
        break;
      }

      case FrameType::kEvent: {
        if ((header.flags & kFlagNoReply) != 0) {
          node_->SubmitEvent(std::move(payload), nullptr);
          payload = {};
          break;
        }
        EventCompletion completion;
        BinaryWriter reply;
        if (!node_->SubmitEvent(std::move(payload), &completion)) {
          payload = {};
          EncodeEventReply(Status::Shutdown("node stopped"), {}, &reply);
        } else {
          payload = {};
          // Unbounded wait is safe here: the channel is the in-process
          // node, which always drains its queue (even through Stop), so
          // the completion cannot be abandoned. The *client* bounds the
          // round trip with its own request deadline.
          completion.Wait();
          EncodeEventReply(completion.status, completion.fired_rules,
                           &reply);
        }
        WriteFrame(state.get(), FrameType::kEventReply, header.request_id,
                   reply);
        break;
      }

      case FrameType::kEventBatch: {
        BinaryReader in(payload);
        std::vector<std::vector<std::uint8_t>> events;
        if (!DecodeEventBatch(&in, &events).ok()) {
          // Count/size mismatch inside the payload: framing-level garbage.
          frame_errors_->Add();
          state->open.store(false, std::memory_order_release);
          break;
        }
        if ((header.flags & kFlagNoReply) != 0) {
          std::vector<EventMessage> batch;
          batch.reserve(events.size());
          for (std::vector<std::uint8_t>& bytes : events) {
            EventMessage msg;
            msg.bytes = std::move(bytes);
            batch.push_back(std::move(msg));
          }
          node_->SubmitEventBatch(std::move(batch));
          break;
        }
        // Reply-wanted batch: per-event completions on the node, one
        // aggregated kEventReply (first failure's status, no fired rules
        // — clients needing per-event replies use per-event frames).
        std::vector<EventCompletion> completions(events.size());
        std::vector<EventMessage> batch;
        batch.reserve(events.size());
        for (std::size_t i = 0; i < events.size(); ++i) {
          EventMessage msg;
          msg.bytes = std::move(events[i]);
          msg.completion = &completions[i];
          batch.push_back(std::move(msg));
        }
        const std::size_t accepted =
            node_->SubmitEventBatch(std::move(batch));
        Status agg = accepted == completions.size()
                         ? Status::OK()
                         : Status::Shutdown("node stopped");
        for (std::size_t i = 0; i < accepted; ++i) {
          completions[i].Wait();  // in-process node: guaranteed to drain
          if (agg.ok() && !completions[i].status.ok()) {
            agg = completions[i].status;
          }
        }
        BinaryWriter reply;
        EncodeEventReply(agg, {}, &reply);
        WriteFrame(state.get(), FrameType::kEventReply, header.request_id,
                   reply);
        break;
      }

      case FrameType::kQuery: {
        // Replies are written asynchronously from the node's RTA
        // coordinator thread; the shared_ptr keeps the connection state
        // alive however late the reply lands.
        const std::uint64_t request_id = header.request_id;
        const bool accepted = node_->SubmitQuery(
            std::move(payload),
            [this, state, request_id](std::vector<std::uint8_t>&& bytes) {
              BinaryWriter reply;
              if (!bytes.empty()) reply.PutBytes(bytes.data(), bytes.size());
              WriteFrame(state.get(), FrameType::kQueryReply, request_id,
                         reply);
            });
        payload = {};
        if (!accepted) {
          WriteFrame(state.get(), FrameType::kQueryReply, header.request_id,
                     BinaryWriter());
        }
        break;
      }

      case FrameType::kRecordRequest: {
        RecordRequest request;
        BinaryReader in(payload);
        if (!DecodeRecordRequest(&in, &request).ok()) {
          frame_errors_->Add();
          BinaryWriter reply;
          EncodeRecordReply(
              Status::InvalidArgument("malformed record request"), {}, 0,
              &reply);
          WriteFrame(state.get(), FrameType::kRecordReply, header.request_id,
                     reply);
          break;
        }
        const std::uint64_t request_id = header.request_id;
        request.reply = [this, state, request_id](
                            Status st_reply, std::vector<std::uint8_t>&& row,
                            Version version) {
          BinaryWriter reply;
          EncodeRecordReply(st_reply, row, version, &reply);
          WriteFrame(state.get(), FrameType::kRecordReply, request_id,
                     reply);
        };
        if (!node_->SubmitRecordRequest(std::move(request))) {
          BinaryWriter reply;
          EncodeRecordReply(Status::Shutdown("node stopped"), {}, 0, &reply);
          WriteFrame(state.get(), FrameType::kRecordReply, header.request_id,
                     reply);
        }
        break;
      }

      default:
        // A reply type arriving at the server is a protocol violation.
        frame_errors_->Add();
        state->open.store(false, std::memory_order_release);
        break;
    }
  }

  state->open.store(false, std::memory_order_release);
  state->sock.ShutdownBoth();
  // The gauge is corrected by the accept loop's next PruneFinished — doing
  // it here would need connections_mu_, which PruneFinished holds while
  // joining this very thread.
  state->done.store(true, std::memory_order_release);
}

}  // namespace net
}  // namespace aim
