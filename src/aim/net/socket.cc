#include "aim/net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>

namespace aim {
namespace net {

namespace {

std::int64_t NowMillis() {
  using namespace std::chrono;
  return duration_cast<milliseconds>(steady_clock::now().time_since_epoch())
      .count();
}

/// Remaining budget for a deadline computed up front; -1 passes through.
int RemainingMillis(std::int64_t deadline_millis) {
  if (deadline_millis < 0) return -1;
  const std::int64_t left = deadline_millis - NowMillis();
  if (left <= 0) return 0;
  // Cap each poll slice so a clock jump cannot wedge us for minutes.
  return static_cast<int>(left > 60000 ? 60000 : left);
}

Status ErrnoStatus(const char* op) {
  return Status::Internal(std::string(op) + ": " + std::strerror(errno));
}

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

Status PollFor(int fd, short events, std::int64_t deadline_millis) {
  for (;;) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    const int timeout = RemainingMillis(deadline_millis);
    if (timeout == 0) return Status::DeadlineExceeded("poll deadline");
    const int rc = ::poll(&pfd, 1, timeout);
    if (rc > 0) return Status::OK();
    if (rc == 0) {
      if (RemainingMillis(deadline_millis) == 0) {
        return Status::DeadlineExceeded("poll deadline");
      }
      continue;
    }
    if (errno == EINTR) continue;
    return ErrnoStatus("poll");
  }
}

}  // namespace

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

StatusOr<Socket> TcpConnect(const std::string& host, std::uint16_t port,
                            std::int64_t timeout_millis) {
  const std::int64_t deadline =
      timeout_millis < 0 ? -1 : NowMillis() + timeout_millis;

  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* result = nullptr;
  const std::string port_str = std::to_string(port);
  if (::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &result) != 0 ||
      result == nullptr) {
    if (result != nullptr) ::freeaddrinfo(result);
    return Status::Internal("cannot resolve " + host);
  }

  Socket sock(::socket(result->ai_family, SOCK_STREAM, 0));
  if (!sock.valid()) {
    ::freeaddrinfo(result);
    return ErrnoStatus("socket");
  }

  // Non-blocking connect so the handshake honours the deadline, then back
  // to blocking mode (all further I/O deadlines are enforced via poll).
  const int flags = ::fcntl(sock.fd(), F_GETFL, 0);
  ::fcntl(sock.fd(), F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(sock.fd(), result->ai_addr,
                     static_cast<socklen_t>(result->ai_addrlen));
  ::freeaddrinfo(result);
  if (rc != 0 && errno != EINPROGRESS) return ErrnoStatus("connect");
  if (rc != 0) {
    Status ready = PollFor(sock.fd(), POLLOUT, deadline);
    if (!ready.ok()) return ready;
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(sock.fd(), SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
        err != 0) {
      return Status::Internal(std::string("connect: ") +
                              std::strerror(err != 0 ? err : errno));
    }
  }
  ::fcntl(sock.fd(), F_SETFL, flags);
  SetNoDelay(sock.fd());
  return sock;
}

StatusOr<Socket> TcpListen(const std::string& host, std::uint16_t port,
                           int backlog) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return ErrnoStatus("socket");
  int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (host.empty() || host == "0.0.0.0") {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
  } else if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad listen address " + host);
  }
  if (::bind(sock.fd(), reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return ErrnoStatus("bind");
  }
  if (::listen(sock.fd(), backlog) != 0) return ErrnoStatus("listen");
  return sock;
}

StatusOr<std::uint16_t> LocalPort(const Socket& socket) {
  struct sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (::getsockname(socket.fd(), reinterpret_cast<struct sockaddr*>(&addr),
                    &len) != 0) {
    return ErrnoStatus("getsockname");
  }
  return static_cast<std::uint16_t>(ntohs(addr.sin_port));
}

StatusOr<Socket> Accept(const Socket& listener, std::int64_t timeout_millis) {
  const std::int64_t deadline =
      timeout_millis < 0 ? -1 : NowMillis() + timeout_millis;
  Status ready = PollFor(listener.fd(), POLLIN, deadline);
  if (!ready.ok()) return ready;
  const int fd = ::accept(listener.fd(), nullptr, nullptr);
  if (fd < 0) return ErrnoStatus("accept");
  SetNoDelay(fd);
  return Socket(fd);
}

Status WaitReadable(const Socket& socket, std::int64_t timeout_millis) {
  const std::int64_t deadline =
      timeout_millis < 0 ? -1 : NowMillis() + timeout_millis;
  return PollFor(socket.fd(), POLLIN, deadline);
}

Status SendAll(const Socket& socket, const void* data, std::size_t size,
               std::int64_t timeout_millis) {
  const std::int64_t deadline =
      timeout_millis < 0 ? -1 : NowMillis() + timeout_millis;
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n =
        ::send(socket.fd(), p + sent, size - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      Status ready = PollFor(socket.fd(), POLLOUT, deadline);
      if (!ready.ok()) return ready;
      continue;
    }
    return ErrnoStatus("send");
  }
  return Status::OK();
}

namespace {
// relaxed everywhere below: a monotone process-wide syscall counter for
// test observability; no data is published through it.
std::atomic<std::uint64_t> g_sendframes_syscalls{0};
}  // namespace

std::uint64_t SendFramesSyscalls() {
  // relaxed: monotone counter, see above.
  return g_sendframes_syscalls.load(std::memory_order_relaxed);
}

Status SendFrames(const Socket& socket,
                  const std::vector<std::vector<std::uint8_t>>& frames,
                  std::int64_t timeout_millis) {
  const std::int64_t deadline =
      timeout_millis < 0 ? -1 : NowMillis() + timeout_millis;
  // Modest iovec batch: far below any platform IOV_MAX, and 64 frames per
  // syscall already amortizes the per-write cost to noise.
  constexpr std::size_t kMaxIov = 64;
  struct iovec iov[kMaxIov];

  std::size_t next = 0;       // first frame not yet fully sent
  std::size_t offset = 0;     // bytes of frames[next] already sent
  while (next < frames.size()) {
    std::size_t niov = 0;
    for (std::size_t i = next; i < frames.size() && niov < kMaxIov; ++i) {
      const std::vector<std::uint8_t>& f = frames[i];
      const std::size_t skip = (i == next) ? offset : 0;
      if (f.size() <= skip) continue;  // empty (or fully sent) frame
      iov[niov].iov_base =
          const_cast<std::uint8_t*>(f.data() + skip);
      iov[niov].iov_len = f.size() - skip;
      ++niov;
    }
    if (niov == 0) break;  // only empty frames left

    struct msghdr msg;
    std::memset(&msg, 0, sizeof(msg));
    msg.msg_iov = iov;
    msg.msg_iovlen = niov;
    const ssize_t n = ::sendmsg(socket.fd(), &msg, MSG_NOSIGNAL);
    if (n > 0) {
      // relaxed: monotone counter, see above.
      g_sendframes_syscalls.fetch_add(1, std::memory_order_relaxed);
      // Advance (next, offset) past the n bytes the kernel accepted.
      std::size_t left = static_cast<std::size_t>(n);
      while (next < frames.size() && left > 0) {
        const std::size_t pending = frames[next].size() - offset;
        if (left < pending) {
          offset += left;
          left = 0;
        } else {
          left -= pending;
          ++next;
          offset = 0;
        }
      }
      while (next < frames.size() && frames[next].size() == offset) {
        ++next;
        offset = 0;
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      Status ready = PollFor(socket.fd(), POLLOUT, deadline);
      if (!ready.ok()) return ready;
      continue;
    }
    return ErrnoStatus("sendmsg");
  }
  return Status::OK();
}

StatusOr<std::size_t> RecvSome(const Socket& socket, void* data,
                               std::size_t max, std::int64_t timeout_millis) {
  const std::int64_t deadline =
      timeout_millis < 0 ? -1 : NowMillis() + timeout_millis;
  for (;;) {
    Status ready = PollFor(socket.fd(), POLLIN, deadline);
    if (!ready.ok()) return ready;
    const ssize_t n = ::recv(socket.fd(), data, max, 0);
    if (n > 0) return static_cast<std::size_t>(n);
    if (n == 0) return Status::Shutdown("connection closed");
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return ErrnoStatus("recv");
  }
}

Status RecvAll(const Socket& socket, void* data, std::size_t size,
               std::int64_t timeout_millis) {
  const std::int64_t deadline =
      timeout_millis < 0 ? -1 : NowMillis() + timeout_millis;
  auto* p = static_cast<std::uint8_t*>(data);
  std::size_t got = 0;
  while (got < size) {
    Status ready = PollFor(socket.fd(), POLLIN, deadline);
    if (!ready.ok()) return ready;
    const ssize_t n = ::recv(socket.fd(), p + got, size - got, 0);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) {
      return got == 0 ? Status::Shutdown("connection closed")
                      : Status::Internal("connection closed mid-message");
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return ErrnoStatus("recv");
  }
  return Status::OK();
}

}  // namespace net
}  // namespace aim
