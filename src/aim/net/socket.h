#ifndef AIM_NET_SOCKET_H_
#define AIM_NET_SOCKET_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "aim/common/status.h"

namespace aim {
namespace net {

/// Move-only RAII wrapper over a POSIX socket fd. All I/O helpers below
/// take deadlines in milliseconds relative to the call (-1 = block
/// forever) and map failures onto Status:
///   kDeadlineExceeded  the deadline elapsed before the operation finished
///   kShutdown          the peer closed the connection (orderly EOF)
///   kInternal          any other socket error (errno in the message)
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void Close();

  /// Half-closes both directions without releasing the fd — wakes any
  /// thread blocked in poll/recv on this socket (used for shutdown
  /// signalling; the fd itself stays reserved until Close so late readers
  /// cannot hit a recycled descriptor).
  void ShutdownBoth();

 private:
  int fd_ = -1;
};

/// Connects to host:port (numeric IPv4 or a resolvable name) within
/// `timeout_millis`. The returned socket is blocking with TCP_NODELAY set.
StatusOr<Socket> TcpConnect(const std::string& host, std::uint16_t port,
                            std::int64_t timeout_millis);

/// Binds + listens on host:port. port 0 picks an ephemeral port; read it
/// back with LocalPort.
StatusOr<Socket> TcpListen(const std::string& host, std::uint16_t port,
                           int backlog);

/// The locally bound port of a listening socket.
StatusOr<std::uint16_t> LocalPort(const Socket& socket);

/// Accepts one connection, waiting at most `timeout_millis`
/// (kDeadlineExceeded when none arrived). The connection gets TCP_NODELAY.
StatusOr<Socket> Accept(const Socket& listener, std::int64_t timeout_millis);

/// Waits until the socket is readable (kDeadlineExceeded on timeout).
Status WaitReadable(const Socket& socket, std::int64_t timeout_millis);

/// Writes exactly `size` bytes (poll+send loop, SIGPIPE suppressed).
Status SendAll(const Socket& socket, const void* data, std::size_t size,
               std::int64_t timeout_millis);

/// Gather-writes every buffer in `frames` back to back (vectored writev
/// loop honouring IOV_MAX and partial writes; SIGPIPE suppressed). One
/// syscall typically carries many frames — the transmit half of the
/// coalescing writer (docs/NETWORKING.md). Empty buffers are skipped.
Status SendFrames(const Socket& socket,
                  const std::vector<std::vector<std::uint8_t>>& frames,
                  std::int64_t timeout_millis);

/// Number of writev calls SendFrames has issued process-wide (test
/// observability for the coalescing contract; relaxed counter).
std::uint64_t SendFramesSyscalls();

/// Reads exactly `size` bytes (poll+recv loop). Orderly EOF before the
/// first byte reports kShutdown; EOF mid-message reports kInternal (a
/// truncated frame is a protocol violation, not a clean close).
Status RecvAll(const Socket& socket, void* data, std::size_t size,
               std::int64_t timeout_millis);

/// Reads whatever is available, up to `max` bytes, returning the byte
/// count (> 0). Orderly EOF reports kShutdown — whether that EOF is clean
/// or mid-frame is the caller's to judge (the stream reassembler knows,
/// this function does not).
StatusOr<std::size_t> RecvSome(const Socket& socket, void* data,
                               std::size_t max, std::int64_t timeout_millis);

}  // namespace net
}  // namespace aim

#endif  // AIM_NET_SOCKET_H_
